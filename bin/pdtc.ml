(* pdtc: the PDT compiler driver — C++ source in, program database out.
   Plays the role of "C++ Front End + IL Analyzer" in Figure 2. *)

open Cmdliner

let language_of source =
  match String.lowercase_ascii (Filename.extension source) with
  | ".f90" | ".f95" | ".f" -> `Fortran
  | ".java" -> `Java
  | _ -> `Cpp

let run source includes output mapping no_used fixed_spec =
  match language_of source with
  | (`Fortran | `Java) as lang -> begin
    (* the Fortran 90 / Java IL Analyzers (paper §6) feed the same PDB *)
    let diags = Pdt_util.Diag.create () in
    let ic = open_in_bin source in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let prog =
      match lang with
      | `Fortran -> Pdt_f90.F90_sema.compile_string ~file:source ~diags src
      | `Java -> Pdt_java.Java_sema.compile_string ~file:source ~diags src
    in
    let diag_text = Pdt_util.Diag.to_string diags in
    if diag_text <> "" then prerr_endline diag_text;
    if Pdt_util.Diag.has_errors diags then 1
    else begin
      let pdb = Pdt_analyzer.Analyzer.run prog in
      let out =
        match output with
        | Some o -> o
        | None -> Filename.remove_extension (Filename.basename source) ^ ".pdb"
      in
      Pdt_pdb.Pdb_write.to_file pdb out;
      Printf.printf "wrote %s (%d items)\n" out (Pdt_pdb.Pdb.item_count pdb);
      0
    end
  end
  | `Cpp -> begin
  let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let opts =
    { Pdt_sema.Sema.instantiate_used = not no_used;
      map_specializations = fixed_spec }
  in
  let c = Pdt.compile ~opts ~vfs source in
  let diag_text = Pdt_util.Diag.to_string c.Pdt.diags in
  if diag_text <> "" then prerr_endline diag_text;
  if Pdt_util.Diag.has_errors c.Pdt.diags then 1
  else begin
    let aopts =
      { Pdt_analyzer.Analyzer.default_options with
        mapping =
          (if mapping = "ids" then Pdt_analyzer.Analyzer.Il_ids
           else Pdt_analyzer.Analyzer.Location_based) }
    in
    let pdb = Pdt_analyzer.Analyzer.run ~opts:aopts c.Pdt.program in
    let out =
      match output with
      | Some o -> o
      | None -> Filename.remove_extension (Filename.basename source) ^ ".pdb"
    in
    Pdt_pdb.Pdb_write.to_file pdb out;
    Printf.printf "wrote %s (%d items)\n" out (Pdt_pdb.Pdb.item_count pdb);
    0
  end
  end

let source =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"C++ source file")

let includes =
  Arg.(value & opt_all dir [] & info [ "I"; "include" ] ~docv:"DIR" ~doc:"Include search directory")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output PDB file")

let mapping =
  Arg.(value & opt string "location"
       & info [ "template-mapping" ] ~docv:"MODE"
           ~doc:"Template back-mapping: 'location' (the paper's algorithm) or 'ids' (the fixed mode)")

let no_used =
  Arg.(value & flag
       & info [ "no-used-instantiation" ]
           ~doc:"Disable used-mode instantiation (records requests only, like the automatic scheme)")

let fixed_spec =
  Arg.(value & flag
       & info [ "map-specializations" ]
           ~doc:"Carry template ids through the IL so specializations map to their primary template")

let cmd =
  let doc = "compile C++ source into a program database (PDB)" in
  Cmd.v (Cmd.info "pdtc" ~doc)
    Term.(const run $ source $ includes $ output $ mapping $ no_used $ fixed_spec)

let () = exit (Cmd.eval' cmd)
