(* pdtc: the PDT compiler driver — C++ source in, program database out.
   Plays the role of "C++ Front End + IL Analyzer" in Figure 2. *)

open Cmdliner

let language_of source =
  match String.lowercase_ascii (Filename.extension source) with
  | ".f90" | ".f95" | ".f" -> `Fortran
  | ".java" -> `Java
  | _ -> `Cpp

(* Fold --max-errors and every --limit name=value override into the
   front-end budget record; usage errors exit like other CLI mistakes. *)
let resolve_budgets ~tool max_errors limit_specs =
  let b = Pdt_util.Limits.default_budgets in
  let b =
    match max_errors with
    | Some n -> { b with Pdt_util.Limits.max_errors = n }
    | None -> b
  in
  List.fold_left
    (fun b spec ->
      match Pdt_util.Limits.set_budget b spec with
      | Ok b -> b
      | Error msg ->
          Printf.eprintf "%s: %s\n" tool msg;
          exit 124)
    b limit_specs

(* --project: hand the source list to the parallel incremental build driver
   (the pdbbuild engine) and write one merged PDB. *)
let run_project sources includes output jobs incremental no_used fixed_spec
    mapping budgets =
  let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let options =
    { Pdt_build.Build.default_options with
      domains = jobs;
      sema =
        { Pdt_sema.Sema.instantiate_used = not no_used;
          map_specializations = fixed_spec };
      mapping =
        (if mapping = "ids" then Pdt_analyzer.Analyzer.Il_ids
         else Pdt_analyzer.Analyzer.Location_based);
      limits = budgets }
  in
  let out = Option.value ~default:"merged.pdb" output in
  if incremental then begin
    let module I = Pdt_build.Incremental in
    let r = I.build ~options:{ I.default_options with build = options } ~vfs sources in
    List.iter
      (fun (u : I.unit_info) ->
        match u.I.disposition with
        | I.Failed m -> Printf.eprintf "pdtc: %s failed:\n%s\n" u.I.source m
        | I.Degraded m -> Printf.eprintf "pdtc: %s degraded:\n%s\n" u.I.source m
        | _ -> ())
      r.I.units;
    Pdt_pdb.Pdb_write.to_file r.I.merged out;
    print_endline (I.stats_line r);
    Printf.printf "wrote %s (%d items)\n" out (Pdt_pdb.Pdb.item_count r.I.merged);
    let failed =
      List.length
        (List.filter
           (fun u -> match u.I.disposition with I.Failed _ | I.Degraded _ -> true | _ -> false)
           r.I.units)
    in
    if failed = 0 then 0
    else if failed < List.length r.I.units then 2
    else 1
  end
  else begin
    let r = Pdt_build.Build.build ~options ~vfs sources in
    List.iter
      (fun (source, msg) -> Printf.eprintf "pdtc: %s failed:\n%s\n" source msg)
      (Pdt_build.Build.failures r);
    List.iter
      (fun (source, msg) -> Printf.eprintf "pdtc: %s degraded:\n%s\n" source msg)
      (Pdt_build.Build.degraded_units r);
    Pdt_pdb.Pdb_write.to_file r.merged out;
    print_endline (Pdt_build.Build.summary r);
    Printf.printf "wrote %s (%d items)\n" out (Pdt_pdb.Pdb.item_count r.merged);
    if r.failed = 0 && r.degraded = 0 then 0
    else if r.compiled + r.cached + r.degraded > 0 then 2
    else 1
  end

let run_single source includes output mapping no_used fixed_spec budgets =
  match language_of source with
  | (`Fortran | `Java) as lang -> begin
    (* the Fortran 90 / Java IL Analyzers (paper §6) feed the same PDB *)
    match
      let ic = open_in_bin source in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      src
    with
    | exception Sys_error msg ->
        Printf.eprintf "pdtc: %s\n" msg;
        1
    | src ->
    let diags = Pdt_util.Diag.create () in
    let prog =
      match lang with
      | `Fortran -> Pdt_f90.F90_sema.compile_string ~file:source ~diags src
      | `Java -> Pdt_java.Java_sema.compile_string ~file:source ~diags src
    in
    let diag_text = Pdt_util.Diag.to_string diags in
    if diag_text <> "" then prerr_endline diag_text;
    if Pdt_util.Diag.has_errors diags then 1
    else begin
      let pdb = Pdt_analyzer.Analyzer.run prog in
      let out =
        match output with
        | Some o -> o
        | None -> Filename.remove_extension (Filename.basename source) ^ ".pdb"
      in
      Pdt_pdb.Pdb_write.to_file pdb out;
      Printf.printf "wrote %s (%d items)\n" out (Pdt_pdb.Pdb.item_count pdb);
      0
    end
  end
  | `Cpp -> begin
  let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let opts =
    { Pdt_sema.Sema.instantiate_used = not no_used;
      map_specializations = fixed_spec }
  in
  let limits = Pdt_util.Limits.create ~budgets () in
  match Pdt.compile ~opts ~limits ~vfs source with
  | exception Pdt_util.Diag.Error d ->
      Printf.eprintf "pdtc: %s\n"
        (Format.asprintf "%a" Pdt_util.Diag.pp_diagnostic d);
      1
  | exception Sys_error msg ->
      Printf.eprintf "pdtc: %s\n" msg;
      1
  | c ->
    let diag_text = Pdt_util.Diag.to_string c.Pdt.diags in
    if diag_text <> "" then prerr_endline diag_text;
    let aopts =
      { Pdt_analyzer.Analyzer.default_options with
        mapping =
          (if mapping = "ids" then Pdt_analyzer.Analyzer.Il_ids
           else Pdt_analyzer.Analyzer.Location_based) }
    in
    let pdb = Pdt_analyzer.Analyzer.run ~opts:aopts c.Pdt.program in
    let degraded = Pdt_util.Diag.has_errors c.Pdt.diags in
    if degraded then begin
      (* degraded compilation: the partial PDB is still written, marked
         incomplete so downstream tools and merges can tell *)
      pdb.Pdt_pdb.Pdb.incomplete <- true;
      pdb.Pdt_pdb.Pdb.diag_count <- Pdt_util.Diag.error_count c.Pdt.diags
    end;
    let out =
      match output with
      | Some o -> o
      | None -> Filename.remove_extension (Filename.basename source) ^ ".pdb"
    in
    Pdt_pdb.Pdb_write.to_file pdb out;
    Printf.printf "wrote %s (%d items%s)\n" out (Pdt_pdb.Pdb.item_count pdb)
      (if degraded then ", incomplete" else "");
    if degraded then 1 else 0
  end

let run sources includes output mapping no_used fixed_spec project jobs
    incremental trace max_errors limit_specs =
  let budgets = resolve_budgets ~tool:"pdtc" max_errors limit_specs in
  if trace <> None then Pdt_util.Trace.start ();
  let code =
    match (project, sources) with
    | true, _ ->
        run_project sources includes output jobs incremental no_used fixed_spec
          mapping budgets
    | false, [ source ] ->
        run_single source includes output mapping no_used fixed_spec budgets
    | false, [] -> prerr_endline "pdtc: missing SOURCE argument"; 124
    | false, _ :: _ :: _ ->
        prerr_endline "pdtc: several sources given; use --project to build them into one merged PDB";
        124
  in
  Option.iter
    (fun path ->
      Pdt_util.Trace.stop ();
      let oc = open_out path in
      output_string oc (Pdt_util.Trace.chrome_json ());
      close_out oc)
    trace;
  code

let sources =
  Arg.(non_empty & pos_all file []
       & info [] ~docv:"SOURCE" ~doc:"Source file(s); several require $(b,--project)")

let includes =
  Arg.(value & opt_all dir [] & info [ "I"; "include" ] ~docv:"DIR" ~doc:"Include search directory")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output PDB file")

let mapping =
  Arg.(value & opt string "location"
       & info [ "template-mapping" ] ~docv:"MODE"
           ~doc:"Template back-mapping: 'location' (the paper's algorithm) or 'ids' (the fixed mode)")

let no_used =
  Arg.(value & flag
       & info [ "no-used-instantiation" ]
           ~doc:"Disable used-mode instantiation (records requests only, like the automatic scheme)")

let fixed_spec =
  Arg.(value & flag
       & info [ "map-specializations" ]
           ~doc:"Carry template ids through the IL so specializations map to their primary template")

let project =
  Arg.(value & flag
       & info [ "project" ]
           ~doc:"Build all sources as one project: compile each translation unit \
                 in parallel (see $(b,--jobs)), through the incremental cache, and \
                 merge the PDBs (alias for the pdbbuild driver)")

let jobs =
  Arg.(value & opt int (Pdt_build.Scheduler.default_domains ())
       & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for --project builds")

let incremental =
  Arg.(value & flag
       & info [ "incremental" ]
           ~doc:"With $(b,--project): incremental re-analysis — reuse units \
                 whose dependency fingerprint is unchanged, re-analyze the \
                 rest, splice the delta through memoized partial merges; \
                 prints $(b,reanalyzed=N reused=M).  Byte-identical to a \
                 from-scratch build.")

let trace =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a structured trace of the compilation (per-include, \
                 per-parse, per-template-instantiation spans) and write it as \
                 Chrome trace_event JSON, loadable in chrome://tracing or \
                 https://ui.perfetto.dev")

let max_errors =
  Arg.(value & opt (some int) None
       & info [ "max-errors" ] ~docv:"N"
           ~doc:"Stop error recovery after N syntax errors per translation \
                 unit (shorthand for $(b,--limit errors=N))")

let limit_specs =
  Arg.(value & opt_all string []
       & info [ "limit" ] ~docv:"NAME=N"
           ~doc:"Override a front-end resource budget; repeatable.  Known \
                 limits: include-depth, macro-depth, tokens, parse-depth, \
                 instantiation-depth, errors.")

let cmd =
  let doc = "compile C++ source into a program database (PDB)" in
  Cmd.v (Cmd.info "pdtc" ~doc)
    Term.(const run $ sources $ includes $ output $ mapping $ no_used $ fixed_spec
          $ project $ jobs $ incremental $ trace $ max_errors $ limit_specs)

let () = exit (Cmd.eval' cmd)
