(* pdtc: the PDT compiler driver — C++ source in, program database out.
   Plays the role of "C++ Front End + IL Analyzer" in Figure 2. *)

open Cmdliner

let language_of source =
  match String.lowercase_ascii (Filename.extension source) with
  | ".f90" | ".f95" | ".f" -> `Fortran
  | ".java" -> `Java
  | _ -> `Cpp

(* --project: hand the source list to the parallel incremental build driver
   (the pdbbuild engine) and write one merged PDB. *)
let run_project sources includes output jobs no_used fixed_spec mapping =
  let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let options =
    { Pdt_build.Build.default_options with
      domains = jobs;
      sema =
        { Pdt_sema.Sema.instantiate_used = not no_used;
          map_specializations = fixed_spec };
      mapping =
        (if mapping = "ids" then Pdt_analyzer.Analyzer.Il_ids
         else Pdt_analyzer.Analyzer.Location_based) }
  in
  let r = Pdt_build.Build.build ~options ~vfs sources in
  List.iter
    (fun (source, msg) -> Printf.eprintf "pdtc: %s failed:\n%s\n" source msg)
    (Pdt_build.Build.failures r);
  let out = Option.value ~default:"merged.pdb" output in
  Pdt_pdb.Pdb_write.to_file r.merged out;
  print_endline (Pdt_build.Build.summary r);
  Printf.printf "wrote %s (%d items)\n" out (Pdt_pdb.Pdb.item_count r.merged);
  if r.failed = 0 then 0 else if r.failed < List.length r.units then 2 else 1

let run_single source includes output mapping no_used fixed_spec =
  match language_of source with
  | (`Fortran | `Java) as lang -> begin
    (* the Fortran 90 / Java IL Analyzers (paper §6) feed the same PDB *)
    let diags = Pdt_util.Diag.create () in
    let ic = open_in_bin source in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let prog =
      match lang with
      | `Fortran -> Pdt_f90.F90_sema.compile_string ~file:source ~diags src
      | `Java -> Pdt_java.Java_sema.compile_string ~file:source ~diags src
    in
    let diag_text = Pdt_util.Diag.to_string diags in
    if diag_text <> "" then prerr_endline diag_text;
    if Pdt_util.Diag.has_errors diags then 1
    else begin
      let pdb = Pdt_analyzer.Analyzer.run prog in
      let out =
        match output with
        | Some o -> o
        | None -> Filename.remove_extension (Filename.basename source) ^ ".pdb"
      in
      Pdt_pdb.Pdb_write.to_file pdb out;
      Printf.printf "wrote %s (%d items)\n" out (Pdt_pdb.Pdb.item_count pdb);
      0
    end
  end
  | `Cpp -> begin
  let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let opts =
    { Pdt_sema.Sema.instantiate_used = not no_used;
      map_specializations = fixed_spec }
  in
  let c = Pdt.compile ~opts ~vfs source in
  let diag_text = Pdt_util.Diag.to_string c.Pdt.diags in
  if diag_text <> "" then prerr_endline diag_text;
  if Pdt_util.Diag.has_errors c.Pdt.diags then 1
  else begin
    let aopts =
      { Pdt_analyzer.Analyzer.default_options with
        mapping =
          (if mapping = "ids" then Pdt_analyzer.Analyzer.Il_ids
           else Pdt_analyzer.Analyzer.Location_based) }
    in
    let pdb = Pdt_analyzer.Analyzer.run ~opts:aopts c.Pdt.program in
    let out =
      match output with
      | Some o -> o
      | None -> Filename.remove_extension (Filename.basename source) ^ ".pdb"
    in
    Pdt_pdb.Pdb_write.to_file pdb out;
    Printf.printf "wrote %s (%d items)\n" out (Pdt_pdb.Pdb.item_count pdb);
    0
  end
  end

let run sources includes output mapping no_used fixed_spec project jobs =
  match (project, sources) with
  | true, _ -> run_project sources includes output jobs no_used fixed_spec mapping
  | false, [ source ] -> run_single source includes output mapping no_used fixed_spec
  | false, [] -> prerr_endline "pdtc: missing SOURCE argument"; 124
  | false, _ :: _ :: _ ->
      prerr_endline "pdtc: several sources given; use --project to build them into one merged PDB";
      124

let sources =
  Arg.(non_empty & pos_all file []
       & info [] ~docv:"SOURCE" ~doc:"Source file(s); several require $(b,--project)")

let includes =
  Arg.(value & opt_all dir [] & info [ "I"; "include" ] ~docv:"DIR" ~doc:"Include search directory")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output PDB file")

let mapping =
  Arg.(value & opt string "location"
       & info [ "template-mapping" ] ~docv:"MODE"
           ~doc:"Template back-mapping: 'location' (the paper's algorithm) or 'ids' (the fixed mode)")

let no_used =
  Arg.(value & flag
       & info [ "no-used-instantiation" ]
           ~doc:"Disable used-mode instantiation (records requests only, like the automatic scheme)")

let fixed_spec =
  Arg.(value & flag
       & info [ "map-specializations" ]
           ~doc:"Carry template ids through the IL so specializations map to their primary template")

let project =
  Arg.(value & flag
       & info [ "project" ]
           ~doc:"Build all sources as one project: compile each translation unit \
                 in parallel (see $(b,--jobs)), through the incremental cache, and \
                 merge the PDBs (alias for the pdbbuild driver)")

let jobs =
  Arg.(value & opt int (Pdt_build.Scheduler.default_domains ())
       & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for --project builds")

let cmd =
  let doc = "compile C++ source into a program database (PDB)" in
  Cmd.v (Cmd.info "pdtc" ~doc)
    Term.(const run $ sources $ includes $ output $ mapping $ no_used $ fixed_spec
          $ project $ jobs)

let () = exit (Cmd.eval' cmd)
