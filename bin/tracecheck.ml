(* tracecheck: validate a Chrome trace_event JSON file produced by
   [pdbbuild --trace] / [pdtc --trace] against the subset of the
   trace_event schema the exporter emits, and against the structural
   invariants the trace tests rely on:

   - the document parses as JSON and is {"traceEvents": [...]};
   - every event has ph in {B, E, i, M}, integer pid/tid, a string name,
     and (for non-metadata events) a numeric ts and a string cat;
   - per track (tid), B/E events balance and nest: every E matches the
     name of the innermost open B, and no B is left open at the end;
   - with --require a,b,c: each named span occurs somewhere in the trace.

   Exit code 0 when the trace validates, 1 with a diagnostic otherwise. *)

open Cmdliner
module J = Pdt_util.Json

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let validate_event i (ev : J.t) =
  let get k = J.member k ev in
  match get "ph" with
  | Some (J.Str ph) when List.mem ph [ "B"; "E"; "i"; "M" ] -> (
      match (get "pid", get "tid", get "name") with
      | Some (J.Num _), Some (J.Num tid), Some (J.Str name) ->
          if ph = "M" then Ok (int_of_float tid, ph, name)
          else (
            match (get "ts", get "cat") with
            | Some (J.Num _), Some (J.Str _) -> Ok (int_of_float tid, ph, name)
            | None, _ -> fail "event %d: missing ts" i
            | _, None -> fail "event %d: missing cat" i
            | _ -> fail "event %d: ts/cat have wrong types" i)
      | _ -> fail "event %d: missing or mistyped pid/tid/name" i
    )
  | Some (J.Str ph) -> fail "event %d: unknown ph %S" i ph
  | _ -> fail "event %d: missing ph" i

let check_nesting (events : (int * string * string) list) =
  (* per-tid stack of open B names, in document order *)
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let err = ref None in
  List.iter
    (fun (tid, ph, name) ->
      if !err = None then
        let stack = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
        match ph with
        | "B" -> Hashtbl.replace stacks tid (name :: stack)
        | "E" -> (
            match stack with
            | top :: rest when top = name -> Hashtbl.replace stacks tid rest
            | top :: _ ->
                err := Some (Printf.sprintf
                               "tid %d: E %S closes open span %S" tid name top)
            | [] ->
                err := Some (Printf.sprintf "tid %d: E %S with no open span" tid name))
        | _ -> ())
    events;
  (match !err with
   | None ->
       Hashtbl.iter
         (fun tid stack ->
           match stack with
           | [] -> ()
           | top :: _ when !err = None ->
               err := Some (Printf.sprintf "tid %d: span %S never closed" tid top)
           | _ -> ())
         stacks
   | Some _ -> ());
  match !err with None -> Ok () | Some m -> Error m

let run file requires =
  let required =
    List.concat_map (String.split_on_char ',') requires
    |> List.filter (fun s -> s <> "")
  in
  let content =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let result =
    match J.parse content with
    | Error msg -> Error (Printf.sprintf "not valid JSON: %s" msg)
    | Ok doc -> (
        match J.member "traceEvents" doc with
        | Some (J.List events) -> (
            let rec check i acc = function
              | [] -> Ok (List.rev acc)
              | ev :: rest -> (
                  match validate_event i ev with
                  | Ok e -> check (i + 1) (e :: acc) rest
                  | Error m -> Error m)
            in
            match check 0 [] events with
            | Error m -> Error m
            | Ok parsed -> (
                match check_nesting parsed with
                | Error m -> Error m
                | Ok () -> (
                    let seen name =
                      List.exists (fun (_, ph, n) -> ph <> "M" && n = name) parsed
                    in
                    match List.filter (fun n -> not (seen n)) required with
                    | [] ->
                        let spans =
                          List.length (List.filter (fun (_, ph, _) -> ph = "B") parsed)
                        in
                        let tids =
                          List.sort_uniq compare (List.map (fun (t, _, _) -> t) parsed)
                        in
                        Printf.printf "%s: OK (%d events, %d spans, %d tracks)\n"
                          file (List.length parsed) spans (List.length tids);
                        Ok ()
                    | missing ->
                        Error (Printf.sprintf "missing required spans: %s"
                                 (String.concat ", " missing)))))
        | _ -> Error "top level is not {\"traceEvents\": [...]}")
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Printf.eprintf "tracecheck: %s: %s\n" file msg;
      1

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Chrome trace_event JSON file")

let requires =
  Arg.(value & opt_all string []
       & info [ "require" ] ~docv:"NAMES"
           ~doc:"Comma-separated span names that must occur in the trace; repeatable")

let cmd =
  let doc = "validate a Chrome trace_event file produced by pdbbuild/pdtc --trace" in
  Cmd.v (Cmd.info "tracecheck" ~doc) Term.(const run $ file $ requires)

let () = exit (Cmd.eval' cmd)
