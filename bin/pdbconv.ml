(* pdbconv: converts the compact PDB format into a more readable form
   (Table 2), validates it with --check, or translates between the ASCII
   interchange format and the PDB-B binary container with
   --to-binary/--to-ascii.  Input format is sniffed, so every mode
   accepts both containers. *)

open Cmdliner

let write_output out data =
  match out with
  | None ->
      set_binary_mode_out stdout true;
      print_string data
  | Some path ->
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc

let run pdb_file check to_binary to_ascii out trace =
  if check && (to_binary || to_ascii) then begin
    Printf.eprintf "pdbconv: --check cannot be combined with a conversion mode\n";
    2
  end
  else if to_binary && to_ascii then begin
    Printf.eprintf "pdbconv: --to-binary and --to-ascii are mutually exclusive\n";
    2
  end
  else begin
    if trace <> None then Pdt_util.Trace.start ();
    let finish code =
      (match trace with
      | None -> ()
      | Some path ->
          Pdt_util.Trace.stop ();
          let oc = open_out_bin path in
          output_string oc (Pdt_util.Trace.chrome_json ());
          close_out oc);
      code
    in
    finish
    @@
    match Pdt_ductape.Ductape.of_file pdb_file with
    | exception Pdt_pdb.Pdb_parse.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: not a valid PDB file: %s\n" pdb_file line msg;
        1
    | exception Pdt_pdb.Pdb_bin.Format_error msg ->
        Printf.eprintf "%s: not a valid PDB-B file: %s\n" pdb_file msg;
        1
    | exception Sys_error msg ->
        Printf.eprintf "pdbconv: %s\n" msg;
        1
    | d ->
        if check then begin
          match Pdt_tools.Pdbconv.check d with
          | [] ->
              Printf.printf "PDB is consistent (%s container)\n"
                (Pdt_pdb.Pdb_io.format_name (Pdt_pdb.Pdb_io.sniff_file pdb_file));
              0
          | problems ->
              List.iter prerr_endline problems;
              1
        end
        else if to_binary then begin
          write_output out (Pdt_pdb.Pdb_bin.to_string (Pdt_ductape.Ductape.pdb d));
          0
        end
        else if to_ascii then begin
          write_output out (Pdt_pdb.Pdb_write.to_string (Pdt_ductape.Ductape.pdb d));
          0
        end
        else begin
          print_string (Pdt_tools.Pdbconv.convert d);
          0
        end
  end

let pdb_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PDB" ~doc:"Program database file (ASCII or PDB-B; format is sniffed)")

let check =
  Arg.(value & flag & info [ "c"; "check" ] ~doc:"Validate only: container integrity (magic, version, section bounds, string/aux offsets) and cross-references")

let to_binary =
  Arg.(value & flag & info [ "to-binary" ] ~doc:"Emit the PDB-B binary container instead of the readable form")

let to_ascii =
  Arg.(value & flag & info [ "to-ascii" ] ~doc:"Emit the canonical ASCII interchange format instead of the readable form")

let out =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write conversion output to $(docv) (default: stdout)")

let trace =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a structured trace of the load/convert (container \
                 spans: $(b,pdb.parse), $(b,pdb.bin_read), $(b,pdb.bin_write), \
                 $(b,pdb.mmap_index)) and write it as Chrome trace_event JSON")

let cmd =
  let doc = "convert, translate or validate a PDB file" in
  Cmd.v (Cmd.info "pdbconv" ~doc)
    Term.(const run $ pdb_file $ check $ to_binary $ to_ascii $ out $ trace)

let () = exit (Cmd.eval' cmd)
