(* pdbconv: converts the compact PDB format into a more readable form
   (Table 2), or validates it with --check. *)

open Cmdliner

let run pdb_file check =
  match Pdt_ductape.Ductape.of_file pdb_file with
  | exception Pdt_pdb.Pdb_parse.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: not a valid PDB file: %s\n" pdb_file line msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "pdbconv: %s\n" msg;
      1
  | d ->
  if check then begin
    match Pdt_tools.Pdbconv.check d with
    | [] ->
        print_endline "PDB is consistent";
        0
    | problems ->
        List.iter prerr_endline problems;
        1
  end
  else begin
    print_string (Pdt_tools.Pdbconv.convert d);
    0
  end

let pdb_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PDB" ~doc:"Program database file")

let check =
  Arg.(value & flag & info [ "c"; "check" ] ~doc:"Validate cross-references only")

let cmd =
  let doc = "convert a PDB file into a readable format" in
  Cmd.v (Cmd.info "pdbconv" ~doc) Term.(const run $ pdb_file $ check)

let () = exit (Cmd.eval' cmd)
