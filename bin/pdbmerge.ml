(* pdbmerge: merges PDB files from separate compilations into one PDB file,
   eliminating duplicate template instantiations in the process (Table 2). *)

open Cmdliner

let run pdb_files output =
  match
    List.map
      (fun f ->
        (* load one at a time so errors name the offending file; the
           container format (ASCII or PDB-B) is sniffed per file *)
        match Pdt_pdb.Pdb_io.of_file f with
        | pdb -> pdb
        | exception Pdt_pdb.Pdb_parse.Parse_error (line, msg) ->
            Printf.eprintf "%s:%d: not a valid PDB file: %s\n" f line msg;
            exit 1
        | exception Pdt_pdb.Pdb_bin.Format_error msg ->
            Printf.eprintf "%s: not a valid PDB-B file: %s\n" f msg;
            exit 1)
      pdb_files
  with
  | exception Sys_error msg ->
      Printf.eprintf "pdbmerge: %s\n" msg;
      1
  | pdbs -> (
      let merged, stats = Pdt_tools.Pdbmerge.merge pdbs in
      match Pdt_pdb.Pdb_write.to_file merged output with
      | () ->
          print_endline (Pdt_tools.Pdbmerge.stats_to_string stats);
          Printf.printf "wrote %s\n" output;
          0
      | exception Sys_error msg ->
          Printf.eprintf "pdbmerge: %s\n" msg;
          1)

let pdb_files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"PDB" ~doc:"Program database files")

let output =
  Arg.(value & opt string "merged.pdb" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")

let cmd =
  let doc = "merge PDB files, eliminating duplicate template instantiations" in
  Cmd.v (Cmd.info "pdbmerge" ~doc) Term.(const run $ pdb_files $ output)

let () = exit (Cmd.eval' cmd)
