(* pdbstats: static software metrics over a program database (a fifth tool
   demonstrating how cheaply DUCTAPE supports new analyses). *)

open Cmdliner

let run pdb_file =
  match Pdt_ductape.Ductape.of_file pdb_file with
  | exception Pdt_pdb.Pdb_parse.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: not a valid PDB file: %s\n" pdb_file line msg;
      1
  | exception Pdt_pdb.Pdb_bin.Format_error msg ->
      Printf.eprintf "%s: not a valid PDB-B file: %s\n" pdb_file msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "pdbstats: %s\n" msg;
      1
  | d ->
  Option.iter prerr_endline (Pdt_tools.Duct.semantics_note d);
  print_string (Pdt_tools.Pdbstats.report d);
  0

let pdb_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PDB" ~doc:"Program database file")

let cmd =
  let doc = "static software metrics (fan-in/out, coupling, dead code) from a PDB" in
  Cmd.v (Cmd.info "pdbstats" ~doc) Term.(const run $ pdb_file)

let () = exit (Cmd.eval' cmd)
