(* pdbd: the snapshot-isolated PDB query daemon (ROADMAP item 1).

   Loads a merged PDB — or builds one from project sources through the
   incremental build machinery — into an immutable DUCTAPE snapshot, then
   answers line-oriented JSON queries on a Unix socket until a client
   sends {"verb":"shutdown"} or the process gets SIGINT/SIGTERM.  The
   protocol is specified in DESIGN.md §7; try it by hand with

     pdbd project.pdb --socket /tmp/pdb.sock &
     printf '{"verb":"stats"}\n' | nc -U /tmp/pdb.sock

   The reader loop runs on the main domain so signals surface as EINTR
   in select; `--domains` sizes the worker pool that evaluates queries
   in parallel, each against the snapshot it grabbed at dispatch. *)

open Cmdliner

let is_pdb_path p =
  match Filename.extension p with ".pdb" | ".pdbb" -> true | _ -> false

let run inputs socket domains max_line max_conns includes jobs cache_dir
    no_cache trace stats =
  if inputs = [] then begin
    prerr_endline "pdbd: nothing to serve (give a PDB file or source files)";
    2
  end
  else begin
    let tracing = trace <> None in
    if tracing then Pdt_util.Trace.start ();
    let source =
      match inputs with
      | [ one ] when is_pdb_path one -> Pdt_serve.Snapshot.Pdb_file one
      | sources ->
          let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
          Pdt_util.Vfs.set_disk_fallback vfs true;
          let build_options =
            { Pdt_build.Build.default_options with
              domains = jobs;
              cache_dir = (if no_cache then None else Some cache_dir) }
          in
          Pdt_serve.Snapshot.Project
            { vfs; sources;
              options =
                { Pdt_build.Incremental.default_options with
                  build = build_options } }
    in
    match Pdt_serve.Snapshot.load source with
    | exception e ->
        Printf.eprintf "pdbd: cannot load initial snapshot: %s\n"
          (match e with
           | Pdt_pdb.Pdb_parse.Parse_error (line, m) ->
               Printf.sprintf "line %d: %s" line m
           | Pdt_pdb.Pdb_bin.Format_error m -> m
           | Sys_error m -> m
           | e -> Printexc.to_string e);
        1
    | holder ->
        let config =
          { Pdt_serve.Daemon.socket_path = socket; domains; max_line;
            max_conns }
        in
        let t = Pdt_serve.Daemon.create ~config holder in
        let snap = Pdt_serve.Snapshot.current holder in
        Printf.eprintf "pdbd: serving %s (%s, gen %d) on %s, %d worker domain%s\n%!"
          snap.Pdt_serve.Snapshot.label snap.Pdt_serve.Snapshot.format
          snap.Pdt_serve.Snapshot.gen socket domains
          (if domains = 1 then "" else "s");
        let on_signal _ = Pdt_serve.Daemon.request_stop t in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        Pdt_serve.Daemon.serve_foreground t;
        if stats then prerr_string (Pdt_util.Perf.report ());
        if tracing then begin
          Pdt_util.Trace.stop ();
          Option.iter
            (fun path ->
              let oc = open_out_bin path in
              output_string oc (Pdt_util.Trace.chrome_json ());
              close_out oc)
            trace
        end;
        prerr_endline "pdbd: stopped";
        0
  end

let inputs =
  Arg.(value & pos_all string []
       & info [] ~docv:"INPUT"
           ~doc:"A merged PDB file (.pdb or .pdbb), or project source files \
                 to build and serve")

let socket =
  Arg.(value & opt string "pdbd.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on")

let domains =
  Arg.(value & opt int (Pdt_build.Scheduler.default_domains ())
       & info [ "domains" ] ~docv:"N" ~doc:"Worker domains answering queries")

let max_line =
  Arg.(value & opt int (1 lsl 20)
       & info [ "max-line" ] ~docv:"BYTES"
           ~doc:"Largest accepted request line; longer requests get a \
                 structured too-large error and the connection is closed")

let max_conns =
  Arg.(value & opt int Pdt_serve.Daemon.default_config.Pdt_serve.Daemon.max_conns
       & info [ "max-conns" ] ~docv:"N"
           ~doc:"Most simultaneous client connections accepted; extra \
                 connections get a structured too-many-connections error \
                 and are closed immediately, keeping the select loop under \
                 the FD_SETSIZE ceiling")

let includes =
  Arg.(value & opt_all string []
       & info [ "I"; "include" ] ~docv:"DIR"
           ~doc:"Include search path (project-source mode)")

let jobs =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Build worker domains (project-source mode)")

let cache_dir =
  Arg.(value & opt string Pdt_build.Cache.default_dir
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Unit-PDB cache directory (project-source mode)")

let no_cache =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the unit-PDB cache")

let trace =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace of accept/parse/query/respond spans \
                 on exit")

let stats =
  Arg.(value & flag
       & info [ "stats" ] ~doc:"Print perf counters (per-verb latency) on exit")

let cmd =
  let doc = "serve DUCTAPE queries from an immutable PDB snapshot over a Unix socket" in
  Cmd.v (Cmd.info "pdbd" ~doc)
    Term.(const run $ inputs $ socket $ domains $ max_line $ max_conns
          $ includes $ jobs $ cache_dir $ no_cache $ trace $ stats)

let () = exit (Cmd.eval' cmd)
