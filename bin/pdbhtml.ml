(* pdbhtml: creates web-based documentation enabling navigation of the code
   via HTML links (Table 2). *)

open Cmdliner

let run pdb_file outdir =
  match Pdt_ductape.Ductape.of_file pdb_file with
  | exception Pdt_pdb.Pdb_parse.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: not a valid PDB file: %s\n" pdb_file line msg;
      1
  | exception Pdt_pdb.Pdb_bin.Format_error msg ->
      Printf.eprintf "%s: not a valid PDB-B file: %s\n" pdb_file msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "pdbhtml: %s\n" msg;
      1
  | d -> (
      match Pdt_tools.Pdbhtml.generate_to_dir d outdir with
      | n ->
          Printf.printf "wrote %d pages to %s/\n" n outdir;
          0
      | exception Sys_error msg ->
          Printf.eprintf "pdbhtml: %s\n" msg;
          1)

let pdb_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PDB" ~doc:"Program database file")

let outdir =
  Arg.(value & opt string "html" & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory")

let cmd =
  let doc = "generate HTML documentation from a PDB file" in
  Cmd.v (Cmd.info "pdbhtml" ~doc) Term.(const run $ pdb_file $ outdir)

let () = exit (Cmd.eval' cmd)
