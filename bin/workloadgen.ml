(* workloadgen: dump a generated multi-TU workload project to disk, so the
   command-line drivers (pdbbuild, pdtc --project) can be exercised against
   a reproducible on-disk tree — CI builds one with --trace and validates
   the resulting Chrome trace with tracecheck. *)

open Cmdliner

let run dir n_tus seed depth =
  let cfg =
    { Pdt_workloads.Generator.default_config with seed; chain_depth = depth }
  in
  let sources = Pdt_workloads.Generator.write_project ~cfg ~n_tus ~dir () in
  List.iter print_endline sources;
  0

let dir =
  Arg.(value & opt string "workload" & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory")

let n_tus =
  Arg.(value & opt int 6 & info [ "tus" ] ~docv:"N" ~doc:"Number of generated translation units (plus main.cpp)")

let seed =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.seed
       & info [ "seed" ] ~docv:"N" ~doc:"Generator seed")

let depth =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.chain_depth
       & info [ "depth" ] ~docv:"N" ~doc:"Template instantiation chain depth")

let cmd =
  let doc = "write a generated workload project to a directory, printing its source files" in
  Cmd.v (Cmd.info "workloadgen" ~doc)
    Term.(const run $ dir $ n_tus $ seed $ depth)

let () = exit (Cmd.eval' cmd)
