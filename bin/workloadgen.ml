(* workloadgen: dump a generated multi-TU workload project to disk, so the
   command-line drivers (pdbbuild, pdtc --project) can be exercised against
   a reproducible on-disk tree — CI builds one with --trace and validates
   the resulting Chrome trace with tracecheck.

   The shape knobs (--templates, --methods, --types, ...) scale the
   per-TU weight and --tus the breadth, so one command can synthesize
   anything from an 8-unit smoke project to a thousands-of-TU tree whose
   merged PDB runs to hundreds of MB. *)

open Cmdliner

let run dir n_tus seed depth templates methods types fn_templates plain =
  let cfg =
    { Pdt_workloads.Generator.seed;
      chain_depth = depth;
      n_class_templates = templates;
      methods_per_class = methods;
      n_instantiation_types = types;
      n_function_templates = fn_templates;
      n_plain_classes = plain }
  in
  let sources = Pdt_workloads.Generator.write_project ~cfg ~n_tus ~dir () in
  List.iter print_endline sources;
  let bytes =
    List.fold_left
      (fun acc (_, contents) -> acc + String.length contents)
      0
      (Pdt_workloads.Generator.project_files ~cfg ~n_tus ())
  in
  Printf.eprintf
    "workloadgen: %d TUs + main, %d class templates x %d methods, %d bytes of source\n"
    n_tus templates methods bytes;
  0

let dir =
  Arg.(value & opt string "workload" & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory")

let n_tus =
  Arg.(value & opt int 6 & info [ "tus" ] ~docv:"N" ~doc:"Number of generated translation units (plus main.cpp); thousands are fine — generation is linear")

let seed =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.seed
       & info [ "seed" ] ~docv:"N" ~doc:"Generator seed")

let depth =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.chain_depth
       & info [ "depth" ] ~docv:"N" ~doc:"Template instantiation chain depth")

let templates =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.n_class_templates
       & info [ "templates" ] ~docv:"N" ~doc:"Number of distinct class templates in the shared header")

let methods =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.methods_per_class
       & info [ "methods" ] ~docv:"N" ~doc:"Member functions per class template")

let types =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.n_instantiation_types
       & info [ "types" ] ~docv:"N" ~doc:"Distinct instantiation type arguments per TU (max 5)")

let fn_templates =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.n_function_templates
       & info [ "fn-templates" ] ~docv:"N" ~doc:"Number of function templates")

let plain =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.n_plain_classes
       & info [ "plain" ] ~docv:"N" ~doc:"Number of plain (non-template) classes")

let cmd =
  let doc = "write a generated workload project to a directory, printing its source files" in
  Cmd.v (Cmd.info "workloadgen" ~doc)
    Term.(const run $ dir $ n_tus $ seed $ depth $ templates $ methods $ types
          $ fn_templates $ plain)

let () = exit (Cmd.eval' cmd)
