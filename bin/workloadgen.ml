(* workloadgen: dump a generated multi-TU workload project to disk, so the
   command-line drivers (pdbbuild, pdtc --project) can be exercised against
   a reproducible on-disk tree — CI builds one with --trace and validates
   the resulting Chrome trace with tracecheck.

   The shape knobs (--templates, --methods, --types, ...) scale the
   per-TU weight and --tus the breadth, so one command can synthesize
   anything from an 8-unit smoke project to a thousands-of-TU tree whose
   merged PDB runs to hundreds of MB.

   Since PR 8 it is also the pdbd load generator (bench B11): with
   --bench-pdb (serve a PDB in-process) or --bench-socket (attack an
   already-running daemon), it runs the scripted-client mix at each
   --clients level — every client performs the handshake and --queries
   round trips while reloads swap the snapshot under them — and writes
   the p50/p90/p99 latency and queries/sec curve to --out
   (BENCH_pdbd.json).  Any failed query fails the run: the snapshot swap
   must be invisible to clients. *)

open Cmdliner

module J = Pdt_util.Json

(* ---------------- project generation (the original mode) ------------ *)

let generate dir n_tus seed depth templates methods types fn_templates plain =
  let cfg =
    { Pdt_workloads.Generator.seed;
      chain_depth = depth;
      n_class_templates = templates;
      methods_per_class = methods;
      n_instantiation_types = types;
      n_function_templates = fn_templates;
      n_plain_classes = plain }
  in
  let sources = Pdt_workloads.Generator.write_project ~cfg ~n_tus ~dir () in
  List.iter print_endline sources;
  let bytes =
    List.fold_left
      (fun acc (_, contents) -> acc + String.length contents)
      0
      (Pdt_workloads.Generator.project_files ~cfg ~n_tus ())
  in
  Printf.eprintf
    "workloadgen: %d TUs + main, %d class templates x %d methods, %d bytes of source\n"
    n_tus templates methods bytes;
  0

(* ---------------- pdbd load generation (bench B11) ------------------ *)

(* the scripted per-client query mix: cheap lookups, an indexed find, a
   graph slice, and the stats rollup — the shapes ROADMAP item 1 names *)
let script k =
  let id = ("id", J.Num (float_of_int k)) in
  match k mod 6 with
  | 0 -> J.Obj [ id; ("verb", J.Str "info") ]
  | 1 -> J.Obj [ id; ("verb", J.Str "find"); ("kind", J.Str "routine");
                 ("name", J.Str "main") ]
  | 2 -> J.Obj [ id; ("verb", J.Str "list"); ("kind", J.Str "routine");
                 ("limit", J.Num 5.) ]
  | 3 -> J.Obj [ id; ("verb", J.Str "callgraph"); ("depth", J.Num 2.) ]
  | 4 -> J.Obj [ id; ("verb", J.Str "stats") ]
  | _ -> J.Obj [ id; ("verb", J.Str "ping") ]

let is_ok (reply : J.t option) : bool =
  match reply with
  | Some r -> J.member "ok" r = Some (J.Bool true)
  | None -> false

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

(* One load level: [clients] concurrent connections x [queries] round
   trips, with [reloads] snapshot swaps spread through the run.  Returns
   (level json, failed count). *)
let run_level ~socket ~clients ~queries ~reloads : J.t * int =
  let total = clients * queries in
  let done_count = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let reload_failed = Atomic.make 0 in
  let latencies = Array.make_matrix clients queries 0.0 in
  let client_body c () =
    match Pdt_serve.Client.connect socket with
    | exception _ -> Atomic.fetch_and_add failed queries |> ignore
    | conn ->
        let hello = J.Obj [ ("verb", J.Str "hello"); ("protocol", J.Num 1.) ] in
        if not (is_ok (Pdt_serve.Client.request_json conn hello)) then
          Atomic.incr failed;
        for q = 0 to queries - 1 do
          let t0 = Pdt_util.Trace.now_ns () in
          let ok = is_ok (Pdt_serve.Client.request_json conn (script ((c * 7) + q))) in
          let t1 = Pdt_util.Trace.now_ns () in
          latencies.(c).(q) <- float_of_int (t1 - t0) /. 1e3;
          if not ok then Atomic.incr failed;
          Atomic.incr done_count
        done;
        Pdt_serve.Client.close conn
  in
  (* the reload driver paces swaps by progress, not wall time, so every
     level really does overlap queries with >= [reloads] swaps *)
  let reloader () =
    match Pdt_serve.Client.connect socket with
    | exception _ -> Atomic.fetch_and_add reload_failed reloads |> ignore
    | conn ->
        for k = 1 to reloads do
          let threshold = k * total / (reloads + 1) in
          while Atomic.get done_count < threshold do Thread.yield () done;
          let req = J.Obj [ ("verb", J.Str "reload") ] in
          if not (is_ok (Pdt_serve.Client.request_json conn req)) then
            Atomic.incr reload_failed
        done;
        Pdt_serve.Client.close conn
  in
  let t0 = Pdt_util.Trace.now_ns () in
  let reload_thread = if reloads > 0 then Some (Thread.create reloader ()) else None in
  let threads = List.init clients (fun c -> Thread.create (client_body c) ()) in
  List.iter Thread.join threads;
  Option.iter Thread.join reload_thread;
  let elapsed_s = float_of_int (Pdt_util.Trace.now_ns () - t0) /. 1e9 in
  let all = Array.concat (Array.to_list latencies) in
  Array.sort compare all;
  let failures = Atomic.get failed + Atomic.get reload_failed in
  ( J.Obj
      [ ("clients", J.Num (float_of_int clients));
        ("queries", J.Num (float_of_int total));
        ("reloads", J.Num (float_of_int reloads));
        ("failed", J.Num (float_of_int failures));
        ("elapsed_s", J.Num elapsed_s);
        ("qps", J.Num (float_of_int total /. Float.max 1e-9 elapsed_s));
        ("p50_us", J.Num (percentile all 0.50));
        ("p90_us", J.Num (percentile all 0.90));
        ("p99_us", J.Num (percentile all 0.99)) ],
    failures )

let parse_clients (s : string) : int list =
  List.filter_map int_of_string_opt (String.split_on_char ',' s)

let bench bench_pdb bench_socket clients_spec queries reloads bench_domains out
    bench_shutdown =
  let levels = parse_clients clients_spec in
  if levels = [] then begin
    prerr_endline "workloadgen: --clients needs a comma-separated int list";
    2
  end
  else begin
    (* either fork a daemon process over the given PDB, or attack an
       external socket.  Forked, not in-process: at the 512-client level
       one process would hold >1024 fds (both socket ends), past what
       the daemon's select can watch — and a separate process is what a
       real deployment looks like anyway *)
    let daemon_pid, socket =
      match (bench_pdb, bench_socket) with
      | Some pdb, sock_opt ->
          let socket =
            match sock_opt with
            | Some s -> s
            | None -> Filename.temp_file "pdbd-bench" ".sock"
          in
          (try Sys.remove socket with Sys_error _ -> ());
          (match Unix.fork () with
           | 0 ->
               let holder =
                 Pdt_serve.Snapshot.load (Pdt_serve.Snapshot.Pdb_file pdb)
               in
               let config =
                 { Pdt_serve.Daemon.default_config with
                   socket_path = socket; domains = bench_domains }
               in
               let d = Pdt_serve.Daemon.create ~config holder in
               Pdt_serve.Daemon.serve_foreground d;
               Stdlib.exit 0
           | pid ->
               (* wait for the child to bind and listen *)
               let deadline = Unix.gettimeofday () +. 30.0 in
               let rec poll () =
                 match Pdt_serve.Client.connect socket with
                 | conn -> Pdt_serve.Client.close conn
                 | exception _ ->
                     if Unix.gettimeofday () > deadline then
                       failwith "workloadgen: daemon did not come up in 30s"
                     else begin
                       ignore (Unix.select [] [] [] 0.05);
                       poll ()
                     end
               in
               poll ();
               (Some pid, socket))
      | None, Some socket -> (None, socket)
      | None, None -> assert false
    in
    let results =
      List.map
        (fun clients ->
          Printf.eprintf "workloadgen: level %d clients x %d queries...\n%!"
            clients queries;
          let level, failures = run_level ~socket ~clients ~queries ~reloads in
          if failures > 0 then
            Printf.eprintf "workloadgen: %d FAILED queries at %d clients\n%!"
              failures clients;
          (level, failures))
        levels
    in
    let send_shutdown () =
      match Pdt_serve.Client.connect socket with
      | exception _ -> ()
      | conn ->
          ignore
            (Pdt_serve.Client.request_json conn
               (J.Obj [ ("verb", J.Str "shutdown") ]));
          Pdt_serve.Client.close conn
    in
    (match daemon_pid with
     | Some pid ->
         send_shutdown ();
         ignore (Unix.waitpid [] pid)
     | None -> if bench_shutdown then send_shutdown ());
    let doc =
      J.Obj
        [ ("bench", J.Str "B11");
          ("pdb", J.Str (Option.value ~default:("socket:" ^ socket) bench_pdb));
          ("queries_per_client", J.Num (float_of_int queries));
          ("reloads_per_level", J.Num (float_of_int reloads));
          ("server_domains", J.Num (float_of_int bench_domains));
          ("host_cores", J.Num (float_of_int (Domain.recommended_domain_count ())));
          ("levels", J.List (List.map fst results)) ]
    in
    let oc = open_out_bin out in
    output_string oc (J.to_string doc);
    output_string oc "\n";
    close_out oc;
    let failed = List.fold_left (fun acc (_, f) -> acc + f) 0 results in
    Printf.eprintf "workloadgen: wrote %s (%d levels, %d failed queries)\n%!"
      out (List.length results) failed;
    if failed > 0 then 1 else 0
  end

(* ---------------- CLI ------------------------------------------------ *)

let run dir n_tus seed depth templates methods types fn_templates plain
    bench_pdb bench_socket clients queries reloads bench_domains out
    bench_shutdown =
  if bench_pdb <> None || bench_socket <> None then
    bench bench_pdb bench_socket clients queries reloads bench_domains out
      bench_shutdown
  else generate dir n_tus seed depth templates methods types fn_templates plain

let dir =
  Arg.(value & opt string "workload" & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory")

let n_tus =
  Arg.(value & opt int 6 & info [ "tus" ] ~docv:"N" ~doc:"Number of generated translation units (plus main.cpp); thousands are fine — generation is linear")

let seed =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.seed
       & info [ "seed" ] ~docv:"N" ~doc:"Generator seed")

let depth =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.chain_depth
       & info [ "depth" ] ~docv:"N" ~doc:"Template instantiation chain depth")

let templates =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.n_class_templates
       & info [ "templates" ] ~docv:"N" ~doc:"Number of distinct class templates in the shared header")

let methods =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.methods_per_class
       & info [ "methods" ] ~docv:"N" ~doc:"Member functions per class template")

let types =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.n_instantiation_types
       & info [ "types" ] ~docv:"N" ~doc:"Distinct instantiation type arguments per TU (max 5)")

let fn_templates =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.n_function_templates
       & info [ "fn-templates" ] ~docv:"N" ~doc:"Number of function templates")

let plain =
  Arg.(value & opt int Pdt_workloads.Generator.default_config.n_plain_classes
       & info [ "plain" ] ~docv:"N" ~doc:"Number of plain (non-template) classes")

let bench_pdb =
  Arg.(value & opt (some file) None
       & info [ "bench-pdb" ] ~docv:"PDB"
           ~doc:"Load-test pdbd: serve this merged PDB from an in-process \
                 daemon and run the scripted-client benchmark (B11)")

let bench_socket =
  Arg.(value & opt (some string) None
       & info [ "bench-socket" ] ~docv:"PATH"
           ~doc:"Load-test an already-running pdbd on this Unix socket \
                 (with --bench-pdb: bind the in-process daemon here)")

let clients =
  Arg.(value & opt string "1,8,64,512"
       & info [ "clients" ] ~docv:"LIST"
           ~doc:"Concurrent-client levels for the daemon benchmark")

let queries =
  Arg.(value & opt int 50
       & info [ "queries" ] ~docv:"M" ~doc:"Queries per client per level")

let reloads =
  Arg.(value & opt int 3
       & info [ "bench-reloads" ] ~docv:"K"
           ~doc:"Snapshot reloads interleaved with each level's queries")

let bench_domains =
  Arg.(value & opt int (Pdt_build.Scheduler.default_domains ())
       & info [ "bench-domains" ] ~docv:"N"
           ~doc:"Worker domains for the in-process daemon")

let out =
  Arg.(value & opt string "BENCH_pdbd.json"
       & info [ "out" ] ~docv:"FILE" ~doc:"Benchmark result file (B11)")

let bench_shutdown =
  Arg.(value & flag
       & info [ "bench-shutdown" ]
           ~doc:"Send the shutdown verb to the external daemon when done")

let cmd =
  let doc = "write a generated workload project to a directory, or load-test a pdbd daemon" in
  Cmd.v (Cmd.info "workloadgen" ~doc)
    Term.(const run $ dir $ n_tus $ seed $ depth $ templates $ methods $ types
          $ fn_templates $ plain $ bench_pdb $ bench_socket $ clients $ queries
          $ reloads $ bench_domains $ out $ bench_shutdown)

let () = exit (Cmd.eval' cmd)
