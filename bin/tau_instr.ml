(* tau_instr: the TAU instrumentor driver (paper §4.1).

   Compiles a source file, plans instrumentation from its PDB (Figure 6),
   rewrites the sources with TAU_PROFILE macros, and — with --run —
   recompiles and executes the instrumented program on the interpreter,
   printing the pprof-style profile (Figure 7). *)

open Cmdliner

let run source includes outdir do_run trace select mhp_only =
  let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  Pdt_workloads.Ministl.mount vfs;
  let c = Pdt.compile ~vfs source in
  let diag_text = Pdt_util.Diag.to_string c.Pdt.diags in
  if diag_text <> "" then prerr_endline diag_text;
  if Pdt_util.Diag.has_errors c.Pdt.diags then 1
  else begin
    let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
    let d = Pdt_ductape.Ductape.index pdb in
    let plan = Pdt_tau.Instrument.plan d in
    let plan =
      if mhp_only then begin
        let filtered = Pdt_tau.Instrument.mhp_only d plan in
        Printf.printf "mhp-only: %d of %d instrumentation points concurrent\n"
          (List.length filtered) (List.length plan);
        filtered
      end
      else plan
    in
    let plan =
      match select with
      | None -> plan
      | Some path ->
          let ic = open_in_bin path in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Pdt_tau.Instrument.apply_selection
            (Pdt_tau.Instrument.parse_selection text) plan
    in
    Printf.printf "planned %d instrumentation points\n" (List.length plan);
    let vfs2, n = Pdt_tau.Instrument.instrument_vfs vfs plan in
    Printf.printf "instrumented %d source files\n" n;
    (match outdir with
     | Some dir ->
         if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
         let files = List.sort_uniq compare (List.map (fun ir -> ir.Pdt_tau.Instrument.ir_file) plan) in
         List.iter
           (fun f ->
             match Pdt_util.Vfs.read_raw vfs2 f with
             | Some src ->
                 let out = Filename.concat dir (Filename.basename f) in
                 let oc = open_out out in
                 output_string oc src;
                 close_out oc;
                 Printf.printf "wrote %s\n" out
             | None -> ())
           files
     | None -> ());
    if do_run then begin
      let c2 = Pdt.compile ~vfs:vfs2 source in
      if Pdt_util.Diag.has_errors c2.Pdt.diags then begin
        prerr_endline (Pdt_util.Diag.to_string c2.Pdt.diags);
        1
      end
      else begin
        let r = Pdt_tau.Interp.run ~tracing:trace c2.Pdt.program in
        print_string r.output;
        Printf.printf "\n(exit code %d, %Ld virtual cycles)\n\n" r.exit_code r.cycles;
        print_string (Pdt_tau.Pprof.format r.profile);
        if trace then begin
          print_endline "\nEvent trace:";
          print_string (Pdt_tau.Pprof.format_trace r.profile)
        end;
        0
      end
    end
    else 0
  end

let source =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"C++ source file")

let includes =
  Arg.(value & opt_all dir [] & info [ "I"; "include" ] ~docv:"DIR" ~doc:"Include directory")

let outdir =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Write instrumented sources here")

let do_run =
  Arg.(value & flag & info [ "run" ] ~doc:"Run the instrumented program and print the profile")

let trace =
  Arg.(value & flag & info [ "trace" ] ~doc:"Also collect and print the event trace")

let select =
  Arg.(value & opt (some file) None
       & info [ "select" ] ~docv:"FILE"
           ~doc:"Selective instrumentation file (BEGIN_EXCLUDE_LIST / BEGIN_INCLUDE_LIST)")

let mhp_only =
  Arg.(value & flag
       & info [ "mhp-only" ]
           ~doc:"Instrument only routines the may-happen-in-parallel analysis \
                 marks as possibly concurrent (spawn/join extension)")

let cmd =
  let doc = "instrument C++ source with TAU measurement macros via PDT" in
  Cmd.v (Cmd.info "tau_instr" ~doc)
    Term.(const run $ source $ includes $ outdir $ do_run $ trace $ select $ mhp_only)

let () = exit (Cmd.eval' cmd)
