(* pdbduct: navigate the semantic analyses stored in a PDB — define-use
   chains (defs-of, uses-of, chain walks) and the spawn/MHP side
   (spawn sites, may-happen-in-parallel pairs). *)

open Cmdliner
module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape
module T = Pdt_tools.Duct

let need_routine d key =
  match T.find_routine d key with
  | Some r -> Ok r
  | None ->
      Printf.eprintf "pdbduct: no routine %S\n" key;
      Error 1

let need_var r name =
  match T.var_in r name with
  | Some v -> Ok v
  | None ->
      Printf.eprintf "pdbduct: no define-use data for variable %S in %s\n" name
        r.P.ro_name;
      Error 1

let run pdb_file cmd routine var =
  match Pdt_ductape.Ductape.of_file pdb_file with
  | exception Pdt_pdb.Pdb_parse.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: not a valid PDB file: %s\n" pdb_file line msg;
      1
  | exception Pdt_pdb.Pdb_bin.Format_error msg ->
      Printf.eprintf "%s: not a valid PDB-B file: %s\n" pdb_file msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "pdbduct: %s\n" msg;
      1
  | d -> (
      Option.iter prerr_endline (T.semantics_note d);
      let with_routine f =
        match routine with
        | None ->
            Printf.eprintf "pdbduct: %s needs a ROUTINE argument\n" cmd;
            1
        | Some key -> (
            match need_routine d key with
            | Error rc -> rc
            | Ok r -> f r)
      in
      let with_var f =
        with_routine (fun r ->
            match var with
            | None ->
                Printf.eprintf "pdbduct: %s needs a VAR argument\n" cmd;
                1
            | Some name -> (
                match need_var r name with
                | Error rc -> rc
                | Ok v -> f r v))
      in
      match cmd with
      | "vars" -> with_routine (fun r -> print_string (T.vars_text d r); 0)
      | "defs" -> with_var (fun r v -> print_string (T.defs_text d r v); 0)
      | "uses" -> with_var (fun r v -> print_string (T.uses_text d r v); 0)
      | "chain" -> with_var (fun r v -> print_string (T.chain_text d r v); 0)
      | "spawns" -> with_routine (fun r -> print_string (T.spawns_text d r); 0)
      | "mhp" -> print_string (T.mhp_text d); 0
      | c ->
          Printf.eprintf
            "pdbduct: unknown command %S (expected vars|defs|uses|chain|spawns|mhp)\n" c;
          1)

let pdb_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PDB" ~doc:"Program database file")

let cmd_arg =
  Arg.(required & pos 1 (some string) None
       & info [] ~docv:"CMD" ~doc:"vars, defs, uses, chain, spawns, or mhp")

let routine_arg =
  Arg.(value & pos 2 (some string) None
       & info [] ~docv:"ROUTINE" ~doc:"Routine: name, qualified name, or ro#N")

let var_arg =
  Arg.(value & pos 3 (some string) None & info [] ~docv:"VAR" ~doc:"Variable name")

let cmd =
  let doc = "navigate define-use chains and spawn/MHP data in a program database" in
  Cmd.v (Cmd.info "pdbduct" ~doc)
    Term.(const run $ pdb_file $ cmd_arg $ routine_arg $ var_arg)

let () = exit (Cmd.eval' cmd)
