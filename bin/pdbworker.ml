(* pdbworker — one build-farm worker process.

   Spawned by the farm driver (lib/build/farm.ml) with a socketpair on
   stdin/stdout; speaks the Farm_proto frame protocol (DESIGN.md §8).
   Lifecycle: read Config → send Hello → loop {read Unit → build → send
   Result} → Quit.  A heartbeat thread ticks every heartbeat_ms so the
   driver can tell "compiling a big unit" from "wedged".

   The worker is crash-only: any protocol confusion, I/O error or internal
   failure exits immediately — no cleanup, no handshake.  The driver
   treats the EOF as a crash, requeues the in-flight unit and respawns;
   the cache's tmp+rename discipline and the driver's stale-tmp sweep make
   that safe.  Fault schedules arrive via PDT_FAULT_SPEC (the process
   cannot be armed by function call), enabling the worker-kill axis of the
   robustness matrix:

     farm.worker.kill   SIGKILL self mid-unit (checked before and after
                        the compile, so both halves of the window fire)
     farm.worker.wedge  stop heartbeating and hang — the driver's
                        liveness timeout must kill us
     farm.worker.torn   write half a Result frame and exit — the driver
                        must treat the torn frame as a crash

   plus every in-process site (cache.write.torn, vfs.read, ...) armed by
   the same schedule, now running under real process isolation. *)

open Pdt_util
module P = Pdt_build.Farm_proto
module B = Pdt_build.Build

let in_fd = Unix.stdin
let out_fd = Unix.stdout

(* all frame writes (results + heartbeats) go through one mutex so frames
   never interleave *)
let write_mutex = Mutex.create ()

let send (m : P.msg) : unit =
  Mutex.lock write_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock write_mutex)
    (fun () -> P.write_frame out_fd (P.encode m))

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "pdbworker[%d]: %s\n%!" (Unix.getpid ()) msg;
      exit 2)
    fmt

(* a wedged worker stops heartbeating; the flag is read by the heartbeat
   thread between ticks *)
let wedged = Atomic.make false

(* unit in flight, for heartbeat frames; P.no_unit when idle *)
let current_unit = Atomic.make P.no_unit

let heartbeat_loop period_s =
  while true do
    Thread.delay period_s;
    if not (Atomic.get wedged) then begin
      match send (P.Heartbeat { unit_id = Atomic.get current_unit }) with
      | () -> ()
      | exception (Unix.Unix_error _ | Sys_error _) ->
          (* driver is gone; nothing left to live for *)
          exit 0
    end
  done

let self_kill () =
  (* SIGKILL, not exit: no OCaml at_exit, no buffers flushed — the real
     crash the farm claims to survive *)
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* unreachable; keep the type checker honest *)
  exit 2

let wedge () =
  Atomic.set wedged true;
  (* hang well past any deadline the driver could be configured with *)
  Unix.sleep 3600;
  exit 2

(* write a deliberately torn Result frame: the 4-byte length promises more
   than we deliver, then the process exits.  The driver's assembler never
   completes the frame; EOF lands first → crash path. *)
let torn_result (payload : string) =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr (n land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 3 (Char.chr ((n lsr 24) land 0xff));
  let half = Bytes.cat hdr (Bytes.of_string (String.sub payload 0 (n / 2))) in
  Mutex.lock write_mutex;
  (try
     let rec w off len =
       if len > 0 then
         let k = Unix.write out_fd half off len in
         w (off + k) (len - k)
     in
     w 0 (Bytes.length half)
   with Unix.Unix_error _ -> ());
  exit 2

let () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  ignore (Fault.arm_from_env ());
  let config =
    match P.read_frame in_fd with
    | Some payload -> (
        match P.decode payload with
        | P.Config c -> c
        | _ -> die "first frame is not Config")
    | None -> exit 0
    | exception P.Proto_error msg -> die "bad Config frame: %s" msg
  in
  let options = P.options_of_config config in
  let vfs = P.vfs_of_config config in
  let cache =
    Option.map (fun dir -> Pdt_build.Cache.create ~dir ()) options.B.cache_dir
  in
  let period_s = float_of_int (max 1 config.P.c_heartbeat_ms) /. 1000.0 in
  ignore (Thread.create heartbeat_loop period_s);
  (try send (P.Hello { version = P.version; pid = Unix.getpid () })
   with Unix.Unix_error _ | Sys_error _ -> exit 0);
  let rec serve () =
    match P.read_frame in_fd with
    | None -> exit 0 (* driver closed: done *)
    | exception P.Proto_error msg -> die "bad frame from driver: %s" msg
    | Some payload -> (
        match P.decode payload with
        | exception P.Proto_error msg -> die "undecodable frame: %s" msg
        | P.Quit -> exit 0
        | P.Unit { id; source } ->
            Atomic.set current_unit id;
            (* mid-unit fault window, first half: after dispatch, before
               any work *)
            if Fault.should "farm.worker.kill" then self_kill ();
            if Fault.should "farm.worker.wedge" then wedge ();
            let u = B.build_unit options cache ~vfs source in
            (* second half: work done, result not yet delivered *)
            if Fault.should "farm.worker.kill" then self_kill ();
            let status, message =
              match u.B.status with
              | B.Compiled -> (P.S_compiled, "")
              | B.Cached -> (P.S_cached, "")
              | B.Degraded m -> (P.S_degraded, m)
              | B.Failed m -> (P.S_failed, m)
              | B.Skipped -> (P.S_failed, "worker: unit skipped unexpectedly")
            in
            let pdb =
              Option.map (Pdt_pdb.Pdb_io.to_string options.B.pdb_format) u.B.pdb
            in
            let result =
              P.Result
                { id; status; message; pdb; seconds = u.B.seconds;
                  deps = u.B.deps; cone_truncated = u.B.cone_truncated }
            in
            if Fault.should "farm.worker.torn" then
              torn_result (P.encode result);
            (try send result
             with Unix.Unix_error _ | Sys_error _ -> exit 0);
            Atomic.set current_unit P.no_unit;
            serve ()
        | P.Config _ | P.Hello _ | P.Result _ | P.Heartbeat _ ->
            die "unexpected frame tag from driver")
  in
  serve ()
