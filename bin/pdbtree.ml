(* pdbtree: displays file inclusion, class hierarchy, and call graph trees
   (Table 2, Figure 5). *)

open Cmdliner

let run pdb_file which root =
  match Pdt_ductape.Ductape.of_file pdb_file with
  | exception Pdt_pdb.Pdb_parse.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: not a valid PDB file: %s\n" pdb_file line msg;
      1
  | exception Pdt_pdb.Pdb_bin.Format_error msg ->
      Printf.eprintf "%s: not a valid PDB-B file: %s\n" pdb_file msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "pdbtree: %s\n" msg;
      1
  | d ->
  Option.iter prerr_endline (Pdt_tools.Pdbtree.incomplete_note d);
  Option.iter prerr_endline (Pdt_tools.Duct.semantics_note d);
  let root_routine =
    Option.bind root (fun name ->
        List.find_opt
          (fun (r : Pdt_pdb.Pdb.routine_item) -> r.ro_name = name)
          (Pdt_ductape.Ductape.routines d))
  in
  (match which with
   | "include" -> print_string (Pdt_tools.Pdbtree.include_tree d)
   | "class" -> print_string (Pdt_tools.Pdbtree.class_hierarchy d)
   | "call" -> print_string (Pdt_tools.Pdbtree.call_graph ?root:root_routine d)
   | _ ->
       print_endline "=== File inclusion tree ===";
       print_string (Pdt_tools.Pdbtree.include_tree d);
       print_endline "=== Class hierarchy ===";
       print_string (Pdt_tools.Pdbtree.class_hierarchy d);
       print_endline "=== Static call graph ===";
       print_string (Pdt_tools.Pdbtree.call_graph ?root:root_routine d));
  0

let pdb_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PDB" ~doc:"Program database file")

let which =
  Arg.(value & opt string "all"
       & info [ "t"; "tree" ] ~docv:"KIND" ~doc:"Tree to display: include, class, call, or all")

let root =
  Arg.(value & opt (some string) None
       & info [ "r"; "root" ] ~docv:"ROUTINE" ~doc:"Call-graph root routine (default: main)")

let cmd =
  let doc = "display file inclusion, class hierarchy, and call graph trees" in
  Cmd.v (Cmd.info "pdbtree" ~doc) Term.(const run $ pdb_file $ which $ root)

let () = exit (Cmd.eval' cmd)
