(* pdbbuild: the parallel incremental project driver — many source files in
   (C++ / Fortran 90 / Java, mixed), one merged PDB out.

   Each translation unit compiles to its own PDB on a pool of OCaml 5
   domains; unchanged units are served from the content-hash cache under
   .pdt-cache/; the per-unit PDBs merge deterministically (the merge is
   input-order independent, so the output is byte-identical to a
   sequential pdtc + pdbmerge build).  A unit that fails to compile is
   reported and skipped — the remaining units still merge. *)

open Cmdliner

let resolve_budgets max_errors limit_specs =
  let b = Pdt_util.Limits.default_budgets in
  let b =
    match max_errors with
    | Some n -> { b with Pdt_util.Limits.max_errors = n }
    | None -> b
  in
  List.fold_left
    (fun b spec ->
      match Pdt_util.Limits.set_budget b spec with
      | Ok b -> b
      | Error msg ->
          Printf.eprintf "pdbbuild: %s\n" msg;
          exit 124)
    b limit_specs

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* The trace's flat-profile export rides on TAU's own pprof layout
   (lib/tau/pprof.ml) — the toolkit profiles itself in the report format
   it generates for instrumented programs.  %Time is relative to the
   longest recorded span (the outermost build phase). *)
let write_pprof path =
  let rows = Pdt_util.Trace.profile_rows () in
  let total =
    List.fold_left
      (fun a (r : Pdt_util.Trace.profile_row) -> max a r.inclusive_ns)
      0L rows
  in
  write_file path
    (Pdt_tau.Pprof.format_rows ~title:"pdbbuild self-profile" ~total
       (List.map
          (fun (r : Pdt_util.Trace.profile_row) ->
            { Pdt_tau.Pprof.r_name = r.pname; r_calls = r.calls;
              r_child_calls = r.child_calls; r_exclusive = r.exclusive_ns;
              r_inclusive = r.inclusive_ns })
          rows))

let run sources includes output jobs farm cache_dir no_cache incremental
    retries fail_fast verbose stats trace trace_pprof max_errors limit_specs
    pdb_format =
  let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let tracing = trace <> None || trace_pprof <> None in
  if tracing then Pdt_util.Trace.start ();
  let options =
    { Pdt_build.Build.default_options with
      domains = jobs;
      cache_dir = (if no_cache then None else Some cache_dir);
      retries;
      fail_fast;
      limits = resolve_budgets max_errors limit_specs;
      pdb_format }
  in
  (* --farm N: supervised worker processes instead of in-process domains.
     Incompatible with --incremental (the delta driver is
     orchestration-heavy, not compile-heavy) and unavailable without the
     pdbworker binary — both degrade to the Domain pool with a warning,
     never a refusal. *)
  let farm_config =
    match farm with
    | Some n when n > 0 ->
        if incremental then begin
          Printf.eprintf
            "pdbbuild: --farm is not supported with --incremental; using \
             in-process domains\n%!";
          None
        end
        else if Pdt_build.Farm.find_worker () = None then begin
          Printf.eprintf
            "pdbbuild: pdbworker binary not found; falling back to \
             in-process domains\n%!";
          None
        end
        else Some { Pdt_build.Farm.default_config with workers = n }
    | _ -> None
  in
  (* all drivers converge on the same epilogue: merged PDB + per-unit
     failure report + summary line(s) + counts for the exit code *)
  let merged, summary_lines, n_failed, n_degraded, n_skipped, n_ok =
    if incremental then begin
      let module I = Pdt_build.Incremental in
      let iopts = { I.default_options with build = options } in
      let r = I.build ~options:iopts ~vfs sources in
      List.iter
        (fun (u : I.unit_info) ->
          match u.disposition with
          | I.Failed m ->
              Printf.eprintf "pdbbuild: %s failed:\n%s\n" u.source m
          | I.Degraded m ->
              Printf.eprintf "pdbbuild: %s degraded:\n%s\n" u.source m
          | _ -> ())
        r.I.units;
      if verbose then
        List.iter
          (fun (u : I.unit_info) ->
            Printf.printf "  %-30s %-10s %.3fs  %s\n" u.source
              (match u.disposition with
               | I.Reused -> "reused"
               | I.Loaded -> "loaded"
               | I.Recompiled -> "compiled"
               | I.Degraded _ -> "DEGRADED"
               | I.Failed _ -> "FAILED")
              u.seconds u.reason)
          r.I.units;
      let count p = List.length (List.filter p r.I.units) in
      let failed =
        count (fun u -> match u.I.disposition with I.Failed _ -> true | _ -> false)
      and degraded =
        count (fun u -> match u.I.disposition with I.Degraded _ -> true | _ -> false)
      in
      ( r.I.merged,
        [ I.stats_line r;
          Printf.sprintf "%d reanalyzed, %d reused, %d failed%s | %.3fs wall"
            r.I.reanalyzed r.I.reused failed
            (if degraded > 0 then Printf.sprintf ", %d degraded" degraded else "")
            r.I.wall_seconds ],
        failed, degraded, 0,
        List.length r.I.units - failed )
    end
    else begin
      let r =
        match farm_config with
        | Some config -> (
            try Pdt_build.Farm.build ~config ~options ~vfs sources
            with Pdt_build.Farm.Farm_unavailable msg ->
              Printf.eprintf
                "pdbbuild: %s; falling back to in-process domains\n%!" msg;
              Pdt_build.Build.build ~options ~vfs sources)
        | None -> Pdt_build.Build.build ~options ~vfs sources
      in
      List.iter
        (fun (source, msg) -> Printf.eprintf "pdbbuild: %s failed:\n%s\n" source msg)
        (Pdt_build.Build.failures r);
      List.iter
        (fun (source, msg) -> Printf.eprintf "pdbbuild: %s degraded:\n%s\n" source msg)
        (Pdt_build.Build.degraded_units r);
      if verbose then
        List.iter
          (fun (u : Pdt_build.Build.unit_result) ->
            Printf.printf "  %-30s %-8s %.3fs\n" u.source
              (match u.status with
               | Compiled -> "compiled" | Cached -> "cached"
               | Degraded _ -> "DEGRADED"
               | Failed _ -> "FAILED" | Skipped -> "skipped")
              u.seconds)
          r.units;
      ( r.merged, [ Pdt_build.Build.summary r ], r.failed, r.degraded,
        r.skipped, r.compiled + r.cached + r.degraded )
    end
  in
  (* serialize the merged PDB once in the requested container; the
     reported digest is always over the canonical ASCII serialization, so
     it is identical for both containers (and to the digests the
     incremental cache keys on) *)
  let serialized = Pdt_pdb.Pdb_io.to_string pdb_format merged in
  let digest =
    match pdb_format with
    | Pdt_pdb.Pdb_io.Ascii -> Pdt_pdb.Pdb_digest.of_string serialized
    | Pdt_pdb.Pdb_io.Binary -> Pdt_pdb.Pdb_digest.of_pdb merged
  in
  if tracing then begin
    Pdt_util.Trace.stop ();
    Option.iter (fun p -> write_file p (Pdt_util.Trace.chrome_json ())) trace;
    Option.iter write_pprof trace_pprof
  end;
  let oc = open_out_bin output in
  output_string oc serialized;
  close_out oc;
  List.iter print_endline summary_lines;
  Printf.printf "wrote %s (%d items, %s container, digest %s)\n" output
    (Pdt_pdb.Pdb.item_count merged)
    (Pdt_pdb.Pdb_io.format_name pdb_format)
    digest;
  if stats then begin
    let report = Pdt_util.Perf.report () in
    if report <> "" then print_string report;
    let s = Pdt_util.Intern.stats () in
    Printf.printf "intern: %d entries, %d hits, %d misses (%.1f%% hit rate)\n"
      s.Pdt_util.Intern.entries s.Pdt_util.Intern.hits s.Pdt_util.Intern.misses
      (100.0 *. Pdt_util.Intern.hit_rate ())
  end;
  (* structured exit codes — failures don't sink the build (under
     --keep-going), but they must not go unnoticed either:
       0 = clean
       1 = total failure: no unit produced a PDB
       2 = partial: some units failed or compiled degraded; the merged
           PDB of everything that produced output was written
       3 = aborted: --fail-fast stopped the build, units were skipped *)
  if n_skipped > 0 then 3
  else if n_failed = 0 && n_degraded = 0 then 0
  else if n_ok > 0 then 2
  else 1

let sources =
  Arg.(non_empty & pos_all file []
       & info [] ~docv:"SOURCE" ~doc:"Source files (C++, .f90/.f95/.f, .java)")

let includes =
  Arg.(value & opt_all dir [] & info [ "I"; "include" ] ~docv:"DIR" ~doc:"Include search directory")

let output =
  Arg.(value & opt string "merged.pdb" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output merged PDB file")

let jobs =
  Arg.(value & opt int (Pdt_build.Scheduler.default_domains ())
       & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains (1 = sequential)")

let farm =
  Arg.(value & opt (some int) None
       & info [ "farm" ] ~docv:"N"
           ~doc:"Build on N supervised $(b,pdbworker) processes instead of \
                 in-process domains.  Workers are crash-only: one killed, \
                 wedged or crashing mid-unit is reaped and respawned (with \
                 backoff) and its unit retried, so a misbehaving translation \
                 unit cannot take the build down.  Falls back to domains \
                 when the worker binary is unavailable or with \
                 $(b,--incremental).")

let cache_dir =
  Arg.(value & opt string Pdt_build.Cache.default_dir
       & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Incremental PDB cache directory")

let no_cache =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the incremental cache")

let incremental =
  Arg.(value & flag
       & info [ "incremental" ]
           ~doc:"Incremental re-analysis: reuse every unit whose dependency \
                 fingerprint (source + transitive include cone, recorded \
                 during the previous compile) is unchanged, re-analyze only \
                 the rest, and splice the delta through memoized partial \
                 merges.  Prints $(b,reanalyzed=N reused=M); byte-identical \
                 to a from-scratch build.  Requires the cache; any delta-path \
                 failure falls back to a full remerge.")

let retries =
  Arg.(value & opt int Pdt_build.Build.default_options.retries
       & info [ "retries" ] ~docv:"N"
           ~doc:"Extra attempts per unit on transient failures (I/O errors, \
                 flaky workers).  Deterministic compile errors never retry.")

let fail_fast =
  let fail = Arg.info [ "fail-fast" ]
      ~doc:"Stop scheduling new units after the first failure (exit code 3); \
            units already running finish."
  and keep = Arg.info [ "keep-going" ]
      ~doc:"Compile every unit despite failures and merge the survivors \
            (default; exit code 2 on partial failure)."
  in
  Arg.(value & vflag false [ (true, fail); (false, keep) ])

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-unit status and timing")

let stats =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print per-phase wall-time counters (parse, compile, merge, \
                 cache I/O) and string-interning statistics after the build")

let trace =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a structured trace of the whole build (per-include, \
                 per-parse, per-instantiation, cache and scheduler spans; one \
                 track per worker domain) and write it as Chrome trace_event \
                 JSON, loadable in chrome://tracing or https://ui.perfetto.dev")

let trace_pprof =
  Arg.(value & opt (some string) None
       & info [ "trace-pprof" ] ~docv:"FILE"
           ~doc:"Write the recorded trace as a TAU pprof-style flat profile \
                 (exclusive/inclusive time per span name)")

let max_errors =
  Arg.(value & opt (some int) None
       & info [ "max-errors" ] ~docv:"N"
           ~doc:"Stop error recovery after N syntax errors per translation \
                 unit (shorthand for $(b,--limit errors=N))")

let pdb_format =
  Arg.(value
       & opt
           (enum
              [ ("ascii", Pdt_pdb.Pdb_io.Ascii);
                ("binary", Pdt_pdb.Pdb_io.Binary) ])
           Pdt_pdb.Pdb_io.Ascii
       & info [ "pdb-format" ] ~docv:"FORMAT"
           ~doc:"Container format for the output PDB and fresh cache \
                 entries: $(b,ascii) (the paper's interchange format, \
                 default) or $(b,binary) (PDB-B, mmap-loadable).  Cache \
                 keys and digests are format-independent, so switching \
                 formats never invalidates the cache.")

let limit_specs =
  Arg.(value & opt_all string []
       & info [ "limit" ] ~docv:"NAME=N"
           ~doc:"Override a front-end resource budget; repeatable.  Known \
                 limits: include-depth, macro-depth, tokens, parse-depth, \
                 instantiation-depth, errors.")

let cmd =
  let doc = "compile a project to one merged program database, in parallel and incrementally" in
  Cmd.v (Cmd.info "pdbbuild" ~doc)
    Term.(const run $ sources $ includes $ output $ jobs $ farm $ cache_dir
          $ no_cache $ incremental $ retries $ fail_fast $ verbose $ stats
          $ trace $ trace_pprof $ max_errors $ limit_specs $ pdb_format)

let () = exit (Cmd.eval' cmd)
