(* siloon_gen: the SILOON glue-code generator (paper §4.2, Figure 8).

   Parses a C++ library with PDT and generates the Perl and Python wrapper
   modules plus the C++ bridge code. *)

open Cmdliner

let run source includes outdir module_name list_templates =
  let vfs = Pdt_util.Vfs.create ~include_paths:includes () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  Pdt_workloads.Ministl.mount vfs;
  let c = Pdt.compile ~vfs source in
  let diag_text = Pdt_util.Diag.to_string c.Pdt.diags in
  if diag_text <> "" then prerr_endline diag_text;
  if Pdt_util.Diag.has_errors c.Pdt.diags then 1
  else begin
    let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
    let d = Pdt_ductape.Ductape.index pdb in
    if list_templates then begin
      (* the §4.2 proposed extension: list templates with instantiation counts *)
      print_endline "templates available in the library:";
      List.iter
        (fun ((te : Pdt_pdb.Pdb.template_item), n) ->
          Printf.printf "  %s (%s): %d instantiation(s)\n" te.te_name te.te_kind n)
        (Pdt_siloon.Siloon.template_inventory d);
      0
    end
    else begin
      let plan = Pdt_siloon.Siloon.plan d in
      if not (Sys.file_exists outdir) then Unix.mkdir outdir 0o755;
      let write name contents =
        let path = Filename.concat outdir name in
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n" path
      in
      write (module_name ^ "_bridge.cc") (Pdt_siloon.Siloon.generate_bridge d plan);
      write (module_name ^ ".pm") (Pdt_siloon.Siloon.generate_perl d plan ~module_name);
      write (module_name ^ ".py") (Pdt_siloon.Siloon.generate_python d plan ~module_name);
      Printf.printf "exported %d classes, %d functions\n"
        (List.length plan.Pdt_siloon.Siloon.classes)
        (List.length plan.Pdt_siloon.Siloon.functions);
      0
    end
  end

let source =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"C++ source file")

let includes =
  Arg.(value & opt_all dir [] & info [ "I"; "include" ] ~docv:"DIR" ~doc:"Include directory")

let outdir =
  Arg.(value & opt string "siloon_out" & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory")

let module_name =
  Arg.(value & opt string "Library" & info [ "m"; "module" ] ~docv:"NAME" ~doc:"Module name")

let list_templates =
  Arg.(value & flag
       & info [ "list-templates" ]
           ~doc:"List the library's templates and instantiation counts instead of generating")

let cmd =
  let doc = "generate Perl/Python bindings for a C++ library via PDT" in
  Cmd.v (Cmd.info "siloon_gen" ~doc)
    Term.(const run $ source $ includes $ outdir $ module_name $ list_templates)

let () = exit (Cmd.eval' cmd)
