(* Quickstart: the full PDT pipeline on the paper's Figure 1 Stack program.

   Compiles the templated Stack corpus, prints the PDB (the Figure 3
   artifact), and then uses DUCTAPE to answer the questions the paper's
   Figure 3 caption walks through: which files include which, which template
   each instantiation came from, what a routine's signature and call sites
   are.

   Run with:  dune exec examples/quickstart.exe *)

module D = Pdt_ductape.Ductape
module P = Pdt_pdb.Pdb

let () =
  (* 1. compile: preprocess -> parse -> semantic analysis (used-mode
     template instantiation) -> IL *)
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in

  (* 2. the IL Analyzer produces the program database *)
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  print_endline "===== PDB (Figure 3 artifact) =====";
  print_string (Pdt_pdb.Pdb_write.to_string pdb);

  (* 3. DUCTAPE: navigate the program information *)
  let d = D.index pdb in
  print_endline "===== DUCTAPE queries =====";

  (* which template produced each instantiated class? *)
  List.iter
    (fun (cl : P.class_item) ->
      match cl.cl_templ with
      | Some te_id ->
          let te = Option.get (D.template d te_id) in
          Printf.printf "class %-14s instantiates template '%s' (defined at so#%d line %d)\n"
            cl.cl_name te.te_name te.te_loc.P.lfile te.te_loc.P.lline
      | None -> ())
    (D.classes d);

  (* the instantiations of each template, via the pdbTemplateItem list *)
  List.iter
    (fun (te : P.template_item) ->
      match D.instantiations d te with
      | [] -> ()
      | insts ->
          Printf.printf "template %-10s (%s) -> %s\n" te.te_name te.te_kind
            (String.concat ", " (List.map (D.item_name d) insts)))
    (D.templates d);

  (* a routine's signature, callees and the used-mode definition state *)
  print_endline "\nmember functions of Stack<int>:";
  (match List.find_opt (fun (c : P.class_item) -> c.cl_name = "Stack<int>") (D.classes d) with
   | Some stack ->
       List.iter
         (fun (r : P.routine_item) ->
           Printf.printf "  %-12s : %-24s %s\n" r.ro_name
             (D.typeref_name d r.ro_sig)
             (if r.ro_defined then "(instantiated)" else "(declared only — unused)"))
         (D.member_functions d stack)
   | None -> print_endline "  Stack<int> not found!");

  print_endline "\ncalls made by main():";
  (match List.find_opt (fun (r : P.routine_item) -> r.ro_name = "main") (D.routines d) with
   | Some main ->
       List.iter
         (fun ((call : P.call), callee) ->
           Printf.printf "  %s%s at line %d\n"
             (D.routine_full_name d callee)
             (if call.c_virt then " (virtual)" else "")
             call.c_loc.P.lline)
         (D.callees d main)
   | None -> ())
