(* Parallel profiling of an SPMD stencil code.

   The paper's home turf is parallel scientific software; TAU's profiles
   aggregate over nodes.  Native MPI is outside this container, so the
   interpreter simulates SPMD execution: the instrumented program runs once
   per rank with mpi_rank()/mpi_size() answering differently, and the
   per-rank profiles are summarized pprof -s style (mean/min/max, imbalance).

   The stencil workload decomposes its domain unevenly on purpose, so the
   profile exposes the load imbalance — exactly the insight a developer at
   the ACL would use TAU for.

   Run with:  dune exec examples/parallel_profile.exe *)

let () =
  let vfs = Pdt_workloads.Parallel_stencil.vfs () in
  let main = Pdt_workloads.Parallel_stencil.main_file in
  (* compile, instrument, recompile *)
  let c = Pdt.compile_exn ~vfs main in
  let d = Pdt_ductape.Ductape.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = Pdt_tau.Instrument.plan d in
  let vfs2, _ = Pdt_tau.Instrument.instrument_vfs vfs plan in
  let prog = (Pdt.compile_exn ~vfs:vfs2 main).Pdt.program in

  (* run on 4 simulated ranks *)
  let rs = Pdt_tau.Parallel.run_ranks ~nranks:4 prog in
  print_endline "per-rank program output:";
  List.iter
    (fun (rr : Pdt_tau.Parallel.rank_result) -> print_string rr.result.output)
    rs;

  print_newline ();
  print_string
    (Pdt_tau.Parallel.format_summary
       ~title:"TAU parallel profile: 1-D Jacobi stencil, 4 ranks" rs);

  (* per-rank detail for the worst rank *)
  let worst =
    List.fold_left
      (fun acc (rr : Pdt_tau.Parallel.rank_result) ->
        match acc with
        | None -> Some rr
        | Some best ->
            if rr.result.cycles > best.Pdt_tau.Parallel.result.cycles then Some rr
            else acc)
      None rs
  in
  match worst with
  | Some rr ->
      Printf.printf "\nheaviest rank: %d (%Ld cycles)\n" rr.rank rr.result.cycles;
      print_string
        (Pdt_tau.Pprof.format
           ~title:(Printf.sprintf "rank %d profile" rr.rank)
           rr.result.profile)
  | None -> ()
