(* Static-analysis trees (the pdbtree utility, paper Table 2 / Figure 5).

   Builds a class library with inheritance and virtual functions, compiles
   it, and prints the three trees pdbtree offers: file inclusion, class
   hierarchy, and the static call graph — including the "(VIRTUAL)" call
   annotations and recursion cut-offs ("...") of Figure 5.

   Run with:  dune exec examples/callgraph.exe *)

let shapes_source =
  {|#include <iostream.h>

class Shape {
public:
    Shape( ) { }
    virtual double area( ) const { return 0.0; }
    virtual ~Shape( ) { }
    void describe( ) const {
        cout << "area=" << area( ) << endl;
    }
};

class Circle : public Shape {
public:
    Circle( double r ) : radius_( r ) { }
    virtual double area( ) const { return 3.14159265 * radius_ * radius_; }
private:
    double radius_;
};

class Square : public Shape {
public:
    Square( double s ) : side_( s ) { }
    virtual double area( ) const { return side_ * side_; }
private:
    double side_;
};

int factorial( int n ) {
    if( n <= 1 )
        return 1;
    return n * factorial( n - 1 );
}

int main( ) {
    Circle c( 2.0 );
    Square s( 3.0 );
    c.describe( );
    s.describe( );
    cout << factorial( 5 ) << endl;
    return 0;
}
|}

let () =
  let vfs = Pdt_util.Vfs.create () in
  Pdt_workloads.Ministl.mount vfs;
  Pdt_util.Vfs.add_file vfs "shapes.cpp" shapes_source;
  let c = Pdt.compile_exn ~vfs "shapes.cpp" in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let d = Pdt_ductape.Ductape.index pdb in
  print_endline "=== File inclusion tree ===";
  print_string (Pdt_tools.Pdbtree.include_tree d);
  print_endline "\n=== Class hierarchy ===";
  print_string (Pdt_tools.Pdbtree.class_hierarchy d);
  print_endline "\n=== Static call graph (Figure 5 algorithm) ===";
  print_string (Pdt_tools.Pdbtree.call_graph d)
