(* The Fortran 90 IL Analyzer (paper §6, implemented future work).

   The paper closes with the plan to extend PDT beyond C++: "Fortran derived
   types and modules will correspond to C++ classes/structs/unions, while
   Fortran interfaces will correspond to routines with aliases.  Fortran
   array features will be specified with new attributes."

   This example compiles a Fortran 90 module with the second front end and
   shows that the very same PDB format and DUCTAPE tools apply unchanged —
   the toolkit's language-uniformity goal.

   Run with:  dune exec examples/fortran_demo.exe *)

let () =
  let diags = Pdt_util.Diag.create () in
  let prog =
    Pdt_f90.F90_sema.compile_string ~file:"linear_algebra.f90" ~diags
      Pdt_workloads.Fortran_demo.linear_algebra_f90
  in
  if Pdt_util.Diag.has_errors diags then begin
    prerr_endline (Pdt_util.Diag.to_string diags);
    exit 1
  end;
  let pdb = Pdt_analyzer.Analyzer.run prog in
  print_endline "===== PDB for the Fortran module =====";
  print_string (Pdt_pdb.Pdb_write.to_string pdb);

  let d = Pdt_ductape.Ductape.index pdb in
  print_endline "===== the same DUCTAPE tools, unchanged =====";
  print_endline "\nmodule -> namespace; derived types -> classes:";
  List.iter
    (fun (c : Pdt_pdb.Pdb.class_item) ->
      Printf.printf "  %s %s (%d components)\n" c.cl_kind c.cl_name
        (List.length c.cl_members))
    (Pdt_ductape.Ductape.classes d);
  print_endline "\nstatic call graph of the program unit:";
  (match
     List.find_opt
       (fun (r : Pdt_pdb.Pdb.routine_item) -> r.ro_name = "demo")
       (Pdt_ductape.Ductape.routines d)
   with
   | Some root -> print_string (Pdt_tools.Pdbtree.call_graph ~root d)
   | None -> ());
  print_endline "\n(the call through the generic interface 'norm' resolves to";
  print_endline " the specific procedure norm_vec3 — \"routines with aliases\")"
