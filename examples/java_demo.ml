(* The Java IL Analyzer (paper §6, implemented future work).

   Compiles a small Java package with the third front end and shows the same
   PDB format and DUCTAPE tools applying unchanged: packages appear as
   nested namespaces, interfaces as classes with pure-virtual methods, and
   Java's virtual dispatch shows up as (VIRTUAL) call sites in pdbtree.

   Run with:  dune exec examples/java_demo.exe *)

let source =
  {|package org.acl.demo;

public interface Shape {
    double area();
}

public class Circle implements Shape {
    private double radius;
    public Circle(double r) { radius = r; }
    public double area() { return 3.14159265 * radius * radius; }
}

public class Report {
    public double total(Circle c, int copies) {
        double sum = 0.0;
        for (int i = 0; i < copies; i++) {
            sum = sum + c.area();
        }
        return sum;
    }
}
|}

let () =
  let diags = Pdt_util.Diag.create () in
  let prog = Pdt_java.Java_sema.compile_string ~file:"Demo.java" ~diags source in
  if Pdt_util.Diag.has_errors diags then begin
    prerr_endline (Pdt_util.Diag.to_string diags);
    exit 1
  end;
  let pdb = Pdt_analyzer.Analyzer.run prog in
  print_endline "===== PDB for the Java package =====";
  print_string (Pdt_pdb.Pdb_write.to_string pdb);
  let d = Pdt_ductape.Ductape.index pdb in
  print_endline "===== the same DUCTAPE tools, unchanged =====";
  print_endline "\nclass hierarchy (interface -> implementation):";
  print_string (Pdt_tools.Pdbtree.class_hierarchy d);
  print_endline "\ncall graph of Report.total (note Java virtual dispatch):";
  (match
     List.find_opt
       (fun (r : Pdt_pdb.Pdb.routine_item) -> r.ro_name = "total")
       (Pdt_ductape.Ductape.routines d)
   with
   | Some root -> print_string (Pdt_tools.Pdbtree.call_graph ~root d)
   | None -> ())
