(* TAU performance profiling of the Krylov solver (paper §4.1 / Figure 7).

   The workflow the paper describes for POOMA, end to end:

     1. compile the template-heavy solver framework with PDT;
     2. the TAU instrumentor iterates the PDB's templates and functions
        (Figure 6 logic) and rewrites the sources, inserting TAU_PROFILE
        macros with CT( *this ) for member templates;
     3. the instrumented sources are recompiled;
     4. the executable runs — here on the IL interpreter — collecting
        run-time statistics;
     5. pprof displays time spent per instantiated routine.

   Run with:  dune exec examples/tau_krylov.exe *)

let () =
  (* 1. compile the original sources *)
  let vfs = Pdt_workloads.Pooma_like.vfs ~n:24 () in
  let main = Pdt_workloads.Pooma_like.main_file in
  let c = Pdt.compile_exn ~vfs main in

  (* 2. plan + rewrite (the Figure 6 instrumentor) *)
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let d = Pdt_ductape.Ductape.index pdb in
  let plan = Pdt_tau.Instrument.plan d in
  Printf.printf "instrumentation plan (%d entities):\n" (List.length plan);
  List.iter
    (fun (ir : Pdt_tau.Instrument.item_ref) ->
      Printf.printf "  %-14s %s:%d  %s\n" ir.ir_name ir.ir_file ir.ir_line
        (if ir.ir_use_ct_this then "[CT(*this)]" else ""))
    plan;
  let vfs', nfiles = Pdt_tau.Instrument.instrument_vfs vfs plan in
  Printf.printf "rewrote %d source files\n\n" nfiles;

  (* 3-4. recompile and run the instrumented program *)
  let c' = Pdt.compile_exn ~vfs:vfs' main in
  let r = Pdt_tau.Interp.run c'.Pdt.program in
  print_endline "program output:";
  print_string r.output;
  Printf.printf "\n(%Ld virtual cycles)\n\n" r.cycles;

  (* 5. the profile display (Figure 7) *)
  print_string
    (Pdt_tau.Pprof.format ~title:"TAU profile: Krylov solver (CG, n=24)" r.profile)
