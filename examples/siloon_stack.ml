(* SILOON scripting bindings for the Stack library (paper §4.2 / Figure 8).

   Parses the templated Stack library with PDT, extracts the interfaces of
   the classes and methods that were instantiated, and generates:

     - the C++ bridging code that registers routines with SILOON's routine
       management structures and marshals calls,
     - a Perl wrapper module, and
     - a Python wrapper module,

   with mangled names carrying the template-instantiation type information.

   Run with:  dune exec examples/siloon_stack.exe *)

let () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let d = Pdt_ductape.Ductape.index pdb in

  (* the §4.2 extension: list templates so a user could pick more to
     instantiate *)
  print_endline "=== template inventory ===";
  List.iter
    (fun ((te : Pdt_pdb.Pdb.template_item), n) ->
      Printf.printf "  %-12s %-8s %d instantiation(s)\n" te.te_name te.te_kind n)
    (Pdt_siloon.Siloon.template_inventory d);

  let plan = Pdt_siloon.Siloon.plan d in
  Printf.printf "\nexporting %d classes, %d free functions\n\n"
    (List.length plan.Pdt_siloon.Siloon.classes)
    (List.length plan.Pdt_siloon.Siloon.functions);

  print_endline "=== C++ bridge (excerpt) ===";
  let bridge = Pdt_siloon.Siloon.generate_bridge d plan in
  String.split_on_char '\n' bridge
  |> List.filteri (fun i _ -> i < 40)
  |> List.iter print_endline;

  print_endline "\n=== Perl wrapper (excerpt) ===";
  let perl = Pdt_siloon.Siloon.generate_perl d plan ~module_name:"StackLib" in
  String.split_on_char '\n' perl
  |> List.filteri (fun i _ -> i < 30)
  |> List.iter print_endline;

  print_endline "\n=== Python wrapper (excerpt) ===";
  let py = Pdt_siloon.Siloon.generate_python d plan ~module_name:"StackLib" in
  String.split_on_char '\n' py
  |> List.filteri (fun i _ -> i < 30)
  |> List.iter print_endline
