(* Incremental re-analysis: the Goblint-style patch-pair suite.

   Each case under test/incremental/<name>/ is a checked-in corpus
   program (its base files), a unified-diff edit (edit.patch) and an
   EXPECT line stating what incremental re-analysis may and may not
   recompute after the edit:

     reanalyzed=N reused=M

   The oracle has two halves.  The *stats* half pins the dirty-cone
   computation: a header edit must re-analyze exactly the units whose
   include cone contains the header; a whitespace-only edit must
   re-analyze nothing.  The *bytes* half pins soundness: the incremental
   merged PDB must be byte-identical to a cold from-scratch build of the
   same (patched) tree — reuse is only ever an optimization, never an
   observable behavior.

   Adding a pair: create test/incremental/<name>/ with the base files,
   an edit.patch produced by `diff -u` (labels a/<file> and b/<file>;
   /dev/null for additions and deletions), an EXPECT line, a glob line
   in test/dune, and the case name in `cases` below.  See
   EXPERIMENTS.md. *)

module B = Pdt_build.Build
module I = Pdt_build.Incremental
module D = Pdt_ductape.Ductape

let pdb_string = Pdt_pdb.Pdb_write.to_string

let domains =
  match Option.bind (Sys.getenv_opt "PDT_TEST_DOMAINS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 1

(* ---------------- corpus discovery (same walk as test_golden) ---------------- *)

let project_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "README.md")
       && Sys.is_directory (Filename.concat dir "test")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let corpus_dir () =
  match project_root () with
  | Some root -> Filename.concat (Filename.concat root "test") "incremental"
  | None -> "incremental"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fresh_dir () =
  let f = Filename.temp_file "pdt-incr-test" ".cache" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* ---------------- a minimal unified-diff applier ---------------- *)

(* Just enough of the format for the corpus patches: file sections with
   `--- a/<path>` / `+++ b/<path>` labels (/dev/null for add/delete) and
   `@@ -l[,n] +l[,n] @@` hunks of ' '/'-'/'+' lines.  Context and
   deletion lines are verified against the base text, so a stale patch
   fails loudly instead of silently testing the wrong program. *)

let split_lines s =
  let ls = String.split_on_char '\n' s in
  match List.rev ls with "" :: rest -> List.rev rest | _ -> ls

let join_lines ls = String.concat "\n" ls ^ "\n"

let strip_label l =
  (* "a/util.h" -> "util.h"; "/dev/null" stays *)
  if l = "/dev/null" then l
  else match String.index_opt l '/' with
    | Some i when i <= 2 -> String.sub l (i + 1) (String.length l - i - 1)
    | _ -> l

let parse_hunk_header line =
  try Scanf.sscanf line "@@ -%d%s@!" (fun a rest ->
      (* rest is ",n +c[,d] @@" or " +c[,d] @@" — only the old start
         matters for application *)
      ignore rest; Some a)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

type section = { s_old : string; s_new : string; s_lines : string list }

let parse_sections (patch : string) : section list =
  let rec go acc cur = function
    | [] -> List.rev (match cur with Some s -> s :: acc | None -> acc)
    | line :: rest ->
        if String.length line >= 4 && String.sub line 0 4 = "--- " then
          let old_label = strip_label (String.sub line 4 (String.length line - 4)) in
          (match rest with
           | new_line :: rest' when String.length new_line >= 4
                                    && String.sub new_line 0 4 = "+++ " ->
               let new_label =
                 strip_label (String.sub new_line 4 (String.length new_line - 4))
               in
               let acc = match cur with Some s -> s :: acc | None -> acc in
               go acc (Some { s_old = old_label; s_new = new_label; s_lines = [] }) rest'
           | _ -> Alcotest.fail "patch: --- not followed by +++")
        else
          (match cur with
           | None -> go acc cur rest  (* preamble *)
           | Some s -> go acc (Some { s with s_lines = line :: s.s_lines }) rest)
  in
  go [] None (split_lines patch)
  |> List.map (fun s -> { s with s_lines = List.rev s.s_lines })

let apply_section (files : (string * string) list) (s : section) :
    (string * string) list =
  if s.s_new = "/dev/null" then List.remove_assoc s.s_old files
  else begin
    let old_lines =
      if s.s_old = "/dev/null" then []
      else
        match List.assoc_opt s.s_old files with
        | Some c -> split_lines c
        | None -> Alcotest.fail ("patch: no such base file " ^ s.s_old)
    in
    let old_arr = Array.of_list old_lines in
    let out = Buffer.create 256 in
    let emit l = Buffer.add_string out l; Buffer.add_char out '\n' in
    let cursor = ref 0 in
    let expect_old tag l =
      if !cursor >= Array.length old_arr || old_arr.(!cursor) <> l then
        Alcotest.fail
          (Printf.sprintf "patch: %s line %S does not match %s:%d" tag l
             s.s_old (!cursor + 1));
      incr cursor
    in
    List.iter
      (fun line ->
        match parse_hunk_header line with
        | Some a ->
            let upto = max 0 (a - 1) in
            while !cursor < upto do
              emit old_arr.(!cursor);
              incr cursor
            done
        | None ->
            if line = "" then emit ""  (* empty context line *)
            else
              let tag = line.[0] in
              let body = String.sub line 1 (String.length line - 1) in
              (match tag with
               | ' ' -> expect_old "context" body; emit body
               | '-' -> expect_old "deletion" body
               | '+' -> emit body
               | '\\' -> ()  (* "\ No newline at end of file" *)
               | _ -> Alcotest.fail ("patch: unexpected line " ^ line)))
      s.s_lines;
    while !cursor < Array.length old_arr do
      emit old_arr.(!cursor);
      incr cursor
    done;
    let content = Buffer.contents out in
    let content =
      (* join_lines discipline: Buffer already ends each line with \n *)
      if content = "" then "" else join_lines (split_lines content)
    in
    (s.s_new, content) :: List.remove_assoc s.s_new files
  end

let apply_patch files patch =
  List.fold_left apply_section files (parse_sections patch)

(* ---------------- running one pair ---------------- *)

let is_source f =
  List.mem (Filename.extension f) [ ".cpp"; ".cc"; ".f90"; ".java" ]

let vfs_of files =
  let vfs = Pdt_util.Vfs.create () in
  List.iter (fun (p, c) -> Pdt_util.Vfs.add_file vfs p c) files;
  vfs

let sources_of files =
  List.filter is_source (List.map fst files) |> List.sort compare

(* cold oracle: a cacheless from-scratch build of the same tree *)
let cold_bytes files =
  let r =
    B.build
      ~options:{ B.default_options with domains; cache_dir = None }
      ~vfs:(vfs_of files) (sources_of files)
  in
  Alcotest.(check int) "cold build has no failures" 0 r.B.failed;
  pdb_string r.B.merged

let load_case name =
  let dir = Filename.concat (corpus_dir ()) name in
  if not (Sys.file_exists dir) then
    Alcotest.fail ("missing patch-pair corpus dir " ^ dir);
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> f <> "edit.patch" && f <> "EXPECT")
    |> List.map (fun f -> (f, read_file (Filename.concat dir f)))
  in
  let patch = read_file (Filename.concat dir "edit.patch") in
  let expect =
    let line = String.trim (read_file (Filename.concat dir "EXPECT")) in
    try Scanf.sscanf line "reanalyzed=%d reused=%d" (fun a b -> (a, b))
    with _ -> Alcotest.fail ("bad EXPECT in " ^ name ^ ": " ^ line)
  in
  (files, patch, expect)

let incr_build ~cache_dir files =
  I.build
    ~options:
      { I.default_options with
        build = { B.default_options with domains; cache_dir = Some cache_dir } }
    ~vfs:(vfs_of files) (sources_of files)

let check_pair name () =
  let files0, patch, (exp_re, exp_used) = load_case name in
  let cache = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf cache) @@ fun () ->
  (* run 1: cold — everything re-analyzes, bytes match from scratch *)
  let r1 = incr_build ~cache_dir:cache files0 in
  Alcotest.(check int) "cold run reuses nothing" 0 r1.I.reused;
  Alcotest.(check int)
    "cold run re-analyzes every unit"
    (List.length (sources_of files0))
    r1.I.reanalyzed;
  Alcotest.(check string) "cold incremental bytes = from-scratch bytes"
    (cold_bytes files0) (pdb_string r1.I.merged);
  (* apply the patch, run 2: the delta *)
  let files1 = apply_patch files0 patch in
  let r2 = incr_build ~cache_dir:cache files1 in
  Alcotest.(check bool) "delta path did not fall back" false r2.I.fallback;
  Alcotest.(check (pair int int))
    "reanalyzed/reused stats"
    (exp_re, exp_used)
    (r2.I.reanalyzed, r2.I.reused);
  Alcotest.(check int)
    "reanalyzed + reused = total units"
    (List.length (sources_of files1))
    (r2.I.reanalyzed + r2.I.reused);
  Alcotest.(check string) "patched incremental bytes = from-scratch bytes"
    (cold_bytes files1) (pdb_string r2.I.merged)

(* a third run with no further edit must reuse everything *)
let check_quiescent () =
  let files0, patch, _ = load_case "header_edit" in
  let cache = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf cache) @@ fun () ->
  ignore (incr_build ~cache_dir:cache files0);
  let files1 = apply_patch files0 patch in
  ignore (incr_build ~cache_dir:cache files1);
  let r3 = incr_build ~cache_dir:cache files1 in
  Alcotest.(check (pair int int))
    "quiescent rebuild reuses everything"
    (0, List.length (sources_of files1))
    (r3.I.reanalyzed, r3.I.reused);
  Alcotest.(check bool) "groups served from partial-merge cache" true
    (r3.I.groups_reused >= 1)

(* corrupt state file: the driver must degrade to re-analysis, not crash
   and not trust the bytes *)
let check_corrupt_state () =
  let files0, _, _ = load_case "tu_edit" in
  let cache = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf cache) @@ fun () ->
  ignore (incr_build ~cache_dir:cache files0);
  let state = Filename.concat cache "incremental.state" in
  let oc = open_out_bin state in
  output_string oc "PDT-INCR v1 digest=deadbeef\ngarbage\tlines\n";
  close_out oc;
  let r = incr_build ~cache_dir:cache files0 in
  Alcotest.(check bool) "no fallback needed" false r.I.fallback;
  Alcotest.(check string) "bytes still correct"
    (cold_bytes files0) (pdb_string r.I.merged)

(* ---------------- Ductape.Delta: the in-memory delta merge ---------------- *)

let unit_pdbs files =
  let r =
    B.build
      ~options:{ B.default_options with domains = 1; cache_dir = None }
      ~vfs:(vfs_of files) (sources_of files)
  in
  List.filter_map
    (fun (u : B.unit_result) ->
      Option.map (fun p -> (u.B.source, p)) u.B.pdb)
    r.B.units

let check_delta_splice () =
  let files0, patch, _ = load_case "header_edit" in
  let files1 = apply_patch files0 patch in
  let units0 = unit_pdbs files0 and units1 = unit_pdbs files1 in
  let d0 = D.Delta.create ~group_size:2 units0 in
  Alcotest.(check string) "delta merged = flat merge"
    (pdb_string (D.merge (List.map snd units0)))
    (pdb_string (D.Delta.merged d0));
  (* splice each changed unit's new contribution over the stale one *)
  let d1 =
    List.fold_left (fun d (n, p) -> D.Delta.set d n p) d0 units1
  in
  Alcotest.(check string) "spliced delta = flat merge of new units"
    (pdb_string (D.merge (List.map snd units1)))
    (pdb_string (D.Delta.merged d1));
  (* removal drops the contribution *)
  let victim = fst (List.hd units1) in
  let d2 = D.Delta.remove d1 victim in
  Alcotest.(check string) "removal = flat merge without the unit"
    (pdb_string (D.merge (List.filter_map
                            (fun (n, p) -> if n = victim then None else Some p)
                            units1)))
    (pdb_string (D.Delta.merged d2));
  (* repeated merges are stable and reuse groups *)
  let again = pdb_string (D.Delta.merged d2) in
  Alcotest.(check string) "merged is stable across calls"
    again (pdb_string (D.Delta.merged d2));
  Alcotest.(check bool) "second call reuses every group" true
    (D.Delta.last_remerged d2 = 0 && D.Delta.last_reused d2 >= 1)

let cases =
  [ "header_edit"; "tu_edit"; "template_edit"; "whitespace_noop";
    "add_delete" ]

let suite =
  List.map
    (fun name ->
      Alcotest.test_case ("patch pair: " ^ name) `Quick (check_pair name))
    cases
  @ [ Alcotest.test_case "quiescent rebuild reuses everything" `Quick
        check_quiescent;
      Alcotest.test_case "corrupt state degrades cleanly" `Quick
        check_corrupt_state;
      Alcotest.test_case "Ductape.Delta splice/remove byte-identity" `Quick
        check_delta_splice ]
