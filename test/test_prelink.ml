(* Prelink (automatic instantiation) simulation tests — the §2 comparison. *)

module PL = Pdt_prelink.Prelink

let simulate ?(cfg = Pdt_workloads.Generator.default_config) () =
  let src = Pdt_workloads.Generator.single_file_program ~cfg () in
  let c = Pdt.compile_string src in
  if Pdt_util.Diag.has_errors c.Pdt.diags then
    Alcotest.failf "compile errors:\n%s" (Pdt_util.Diag.to_string c.Pdt.diags);
  PL.simulate c.Pdt.program

let test_rounds_track_chain_depth () =
  (* deeper template chains need more prelink rounds *)
  let shallow =
    simulate ~cfg:{ Pdt_workloads.Generator.default_config with
                    n_class_templates = 6; chain_depth = 1 } ()
  in
  let deep =
    simulate ~cfg:{ Pdt_workloads.Generator.default_config with
                    n_class_templates = 6; chain_depth = 4 } ()
  in
  Alcotest.(check bool) "deep chains need more rounds" true
    (deep.PL.rounds > shallow.PL.rounds);
  Alcotest.(check bool) "multiple rounds for chained templates" true
    (deep.PL.rounds >= 3)

let test_stack_corpus_rounds () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  let rep = PL.simulate c.Pdt.program in
  (* main uses Stack<int>; Stack<int>'s members use vector<int>: 2+ rounds *)
  Alcotest.(check bool) "at least 2 rounds" true (rep.PL.rounds >= 2);
  Alcotest.(check bool) "recompiles >= rounds" true (rep.PL.recompiles >= rep.PL.rounds)

let test_il_visibility_comparison () =
  let rep = simulate () in
  (* the paper's point: used mode exposes instantiations in the IL, the
     automatic scheme exposes none *)
  Alcotest.(check bool) "used mode exposes entities" true
    (rep.PL.used_mode_il_entities > 0);
  Alcotest.(check int) "automatic mode exposes none" 0
    rep.PL.automatic_mode_il_entities

let test_requests_sum () =
  let rep = simulate () in
  Alcotest.(check int) "per-round requests sum to total"
    rep.PL.total_instantiations
    (List.fold_left ( + ) 0 rep.PL.requests_per_round)

let test_no_templates_no_rounds () =
  let c = Pdt.compile_string "int f() { return 1; }\nint main() { return f(); }" in
  let rep = PL.simulate c.Pdt.program in
  Alcotest.(check int) "no instantiations" 0 rep.PL.total_instantiations;
  Alcotest.(check int) "no rounds" 0 rep.PL.rounds

let test_deferred_requests_mode () =
  (* with used-mode off, sema records requests instead of instantiating *)
  let src =
    "template <class T> class B { public: T v; };\n\
     int main() { B<int> b; b.v = 1; return b.v; }"
  in
  let opts = { Pdt_sema.Sema.default_options with instantiate_used = false } in
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.add_file vfs "main.cpp" src;
  let diags = Pdt_util.Diag.create () in
  let pp = Pdt_pp.Preproc.run ~vfs ~diags "main.cpp" in
  let tu = Pdt_parse.Parser.parse_translation_unit ~diags ~file:"main.cpp" pp.tokens in
  let t = Pdt_sema.Sema.analyze_full ~opts ~diags pp tu in
  let reqs = Pdt_sema.Sema.deferred_requests t in
  Alcotest.(check bool) "request recorded" true
    (List.exists (fun r -> r = "B<int>") reqs)

let test_report_string () =
  let rep = simulate () in
  let s = PL.report_to_string rep in
  Alcotest.(check bool) "mentions rounds" true (String.length s > 40)

let suite =
  [ Alcotest.test_case "rounds track chain depth" `Quick test_rounds_track_chain_depth;
    Alcotest.test_case "stack corpus rounds" `Quick test_stack_corpus_rounds;
    Alcotest.test_case "IL visibility: used vs automatic" `Quick test_il_visibility_comparison;
    Alcotest.test_case "requests sum to total" `Quick test_requests_sum;
    Alcotest.test_case "template-free program" `Quick test_no_templates_no_rounds;
    Alcotest.test_case "deferred requests mode" `Quick test_deferred_requests_mode;
    Alcotest.test_case "report string" `Quick test_report_string ]
