(* Project-build tests: the Domain-pool scheduler, the content-hash PDB
   cache, and the parallel incremental build driver (pdbbuild's engine).

   The invariants locked in here are the ones the driver's determinism
   story rests on: parallel output is byte-identical to sequential output,
   the merge is input-order independent and idempotent, a warm cache
   recompiles nothing and changes nothing, and neither a failing unit nor
   a corrupt cache entry can sink the build. *)

module B = Pdt_build.Build
module C = Pdt_build.Cache
module S = Pdt_build.Scheduler
module D = Pdt_ductape.Ductape
module P = Pdt_pdb.Pdb
module G = Pdt_workloads.Generator

let pdb_string = Pdt_pdb.Pdb_write.to_string

(* a unique, not-yet-created directory for a test's cache *)
let fresh_dir () =
  let f = Filename.temp_file "pdt-build-test" ".cache" in
  Sys.remove f;
  f

let n_tus = 5

let project () = G.project_vfs ~n_tus ()

let build ?cache_dir ~domains (vfs, sources) =
  B.build ~options:{ B.default_options with domains; cache_dir } ~vfs sources

(* ---------------- scheduler ---------------- *)

let test_scheduler_map () =
  let items = Array.init 50 (fun i -> i) in
  let r = S.parallel_map ~domains:4 (fun i -> i * i) items in
  Array.iteri
    (fun i -> function
      | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v
      | Error _ -> Alcotest.fail "unexpected error slot")
    r

let test_scheduler_isolates_exceptions () =
  let items = Array.init 20 (fun i -> i) in
  let r =
    S.parallel_map ~domains:4
      (fun i -> if i mod 7 = 3 then failwith "boom" else i)
      items
  in
  Array.iteri
    (fun i -> function
      | Ok v -> Alcotest.(check bool) "ok slot" true (v = i && i mod 7 <> 3)
      | Error e ->
          Alcotest.(check bool) "error slot" true
            (i mod 7 = 3 && e = Failure "boom"))
    r

(* A worker-domain death (as opposed to a task exception, which run1
   captures per-slot) must not be swallowed: the job the dead worker had
   popped surfaces as that exact exception, not as an anonymous "lost
   job", and every other slot still completes.  [should_stop] runs
   outside run1's try, so raising from it is a deliberate worker crash. *)
let test_scheduler_worker_crash_surfaces () =
  let fired = Atomic.make false in
  let crash () =
    if Atomic.compare_and_set fired false true then
      failwith "deliberate worker crash"
    else false
  in
  let items = Array.init 24 (fun i -> i) in
  let r = S.parallel_map ~domains:4 ~should_stop:crash (fun i -> i) items in
  let crashed =
    Array.to_list r
    |> List.filter (function
         | Error (Failure m) -> m = "deliberate worker crash"
         | _ -> false)
  in
  Alcotest.(check int) "exactly one slot carries the worker's exception" 1
    (List.length crashed);
  Array.iteri
    (fun i -> function
      | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) i v
      | Error (Failure m) when m = "deliberate worker crash" -> ()
      | Error e -> Alcotest.fail ("unexpected error: " ^ Printexc.to_string e))
    r

(* ---------------- parallel = sequential ---------------- *)

let test_parallel_equals_sequential () =
  let seq = build ~domains:1 (project ()) in
  let par = build ~domains:4 (project ()) in
  Alcotest.(check int) "no failures (seq)" 0 seq.B.failed;
  Alcotest.(check int) "no failures (par)" 0 par.B.failed;
  Alcotest.(check string) "byte-identical merged PDB"
    (pdb_string seq.B.merged) (pdb_string par.B.merged)

let test_build_equals_compile_project () =
  (* the driver reproduces the library's sequential compile-then-merge path *)
  let vfs, sources = project () in
  let merged, _ = Pdt.compile_project ~vfs sources in
  let r = build ~domains:4 (project ()) in
  Alcotest.(check string) "same as Pdt.compile_project"
    (pdb_string merged) (pdb_string r.B.merged)

(* ---------------- merge determinism ---------------- *)

let project_pdbs () =
  let vfs, sources = project () in
  List.map
    (fun f -> Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs f).Pdt.program)
    sources

let test_merge_order_independent () =
  let pdbs = project_pdbs () in
  let reference = pdb_string (D.merge pdbs) in
  let permutations =
    [ List.rev pdbs;
      (match pdbs with [] -> [] | x :: rest -> rest @ [ x ]);
      List.sort
        (fun a b -> compare (P.item_count b) (P.item_count a))
        pdbs ]
  in
  List.iteri
    (fun i perm ->
      Alcotest.(check string)
        (Printf.sprintf "permutation %d merges identically" i)
        reference (pdb_string (D.merge perm)))
    permutations

let test_merge_idempotent_normalized () =
  let pdbs = project_pdbs () in
  let merged = D.merge pdbs in
  Alcotest.(check string) "merge [merged] = merged"
    (pdb_string merged)
    (pdb_string (D.merge [ merged ]));
  let single = List.hd pdbs in
  let normalized = D.merge [ single ] in
  Alcotest.(check string) "merge [p] is a fixpoint"
    (pdb_string normalized)
    (pdb_string (D.merge [ normalized ]))

(* ---------------- parallel tree merge ---------------- *)

module MP = Pdt_build.Merge_par

(* The tree merge is only correct because D.merge is canonical, i.e. its
   output does not depend on how the inputs were grouped into partial
   merges.  Pin that property directly with hand-built trees. *)
let test_merge_grouping_independent () =
  let pdbs = project_pdbs () in
  let reference = pdb_string (D.merge pdbs) in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let drop n l = List.filteri (fun i _ -> i >= n) l in
  let balanced = D.merge [ D.merge (take 3 pdbs); D.merge (drop 3 pdbs) ] in
  Alcotest.(check string) "balanced tree = flat merge" reference
    (pdb_string balanced);
  let skewed =
    List.fold_left
      (fun acc p -> D.merge [ acc; p ])
      (List.hd pdbs) (List.tl pdbs)
  in
  Alcotest.(check string) "left-skewed tree = flat merge" reference
    (pdb_string skewed)

let test_parallel_merge_byte_identical () =
  let pdbs = project_pdbs () in
  let reference = pdb_string (D.merge pdbs) in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "tree merge with %d domains" d)
        reference
        (pdb_string (MP.merge ~domains:d pdbs)))
    [ 1; 2; 8 ]

let test_parallel_merge_order_independent () =
  let pdbs = project_pdbs () in
  let reference = pdb_string (D.merge pdbs) in
  let permutations =
    [ List.rev pdbs;
      (match pdbs with [] -> [] | x :: rest -> rest @ [ x ]) ]
  in
  List.iteri
    (fun i perm ->
      Alcotest.(check string)
        (Printf.sprintf "tree merge of permutation %d" i)
        reference
        (pdb_string (MP.merge ~domains:2 perm)))
    permutations

(* A declaration in one PDB and the definition in another must merge to
   the same bytes whichever input, chunk, or tree level sees them first —
   and the definition must survive. *)
let test_parallel_merge_decl_def () =
  let mini ~defined =
    let p = P.create () in
    p.P.files <- [ { P.so_id = 1; so_name = "a.h"; so_includes = [] } ];
    p.P.types <-
      [ { P.ty_id = 2; ty_name = "int"; ty_loc = P.null_loc;
          ty_parent = P.Pnone; ty_acs = "NA";
          ty_info = P.Ybuiltin { yikind = "int" }; ty_names = [] };
        { P.ty_id = 3; ty_name = ""; ty_loc = P.null_loc;
          ty_parent = P.Pnone; ty_acs = "NA";
          ty_info =
            P.Yfunc
              { rett = P.Tyref 2; args = []; ellipsis = false;
                cqual = false; exceptions = None };
          ty_names = [] } ];
    p.P.routines <-
      [ { P.ro_id = 4; ro_name = "f";
          ro_loc = { P.lfile = 1; lline = 3; lcol = 1 };
          ro_parent = P.Pnone; ro_acs = "NA"; ro_sig = P.Tyref 3;
          ro_link = "C++"; ro_store = "NA"; ro_virt = "no"; ro_kind = "NA";
          ro_static = false; ro_inline = false; ro_templ = None;
          ro_calls = []; ro_spawns = []; ro_du = []; ro_pos = P.null_extent; ro_defined = defined } ];
    p
  in
  let decl = mini ~defined:false and def = mini ~defined:true in
  let a = pdb_string (D.merge [ decl; def ]) in
  let b = pdb_string (D.merge [ def; decl ]) in
  Alcotest.(check string) "decl/def order irrelevant" a b;
  let grouped = pdb_string (D.merge [ D.merge [ decl ]; D.merge [ def ] ]) in
  Alcotest.(check string) "decl/def grouping irrelevant" a grouped;
  let merged = D.merge [ decl; def ] in
  match merged.P.routines with
  | [ r ] -> Alcotest.(check bool) "definition survives" true r.P.ro_defined
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected 1 merged routine, got %d" (List.length rs))

(* ---------------- the incremental cache ---------------- *)

let test_warm_cache_recompiles_nothing () =
  let cache_dir = fresh_dir () in
  let cold = build ~cache_dir ~domains:4 (project ()) in
  Alcotest.(check int) "cold: all compiled" (n_tus + 1) cold.B.compiled;
  Alcotest.(check int) "cold: none cached" 0 cold.B.cached;
  let warm = build ~cache_dir ~domains:4 (project ()) in
  Alcotest.(check int) "warm: none compiled" 0 warm.B.compiled;
  Alcotest.(check int) "warm: all cached" (n_tus + 1) warm.B.cached;
  Alcotest.(check string) "warm merged PDB identical"
    (pdb_string cold.B.merged) (pdb_string warm.B.merged)

let test_edit_invalidates_one_entry () =
  let cache_dir = fresh_dir () in
  let _ = build ~cache_dir ~domains:2 (project ()) in
  let vfs, sources = project () in
  (* a source edit that changes the PDB of tu1 only *)
  Pdt_util.Vfs.add_file vfs "tu1.cpp"
    (G.translation_unit G.default_config ~tu_index:1
     ^ "\nint tu1_extra( ) { return 41; }\n");
  let r = build ~cache_dir ~domains:2 (vfs, sources) in
  Alcotest.(check int) "exactly one recompile" 1 r.B.compiled;
  Alcotest.(check int) "the rest served from cache" n_tus r.B.cached;
  Alcotest.(check bool) "edited routine present" true
    (List.exists (fun (ro : P.routine_item) -> ro.P.ro_name = "tu1_extra")
       r.B.merged.P.routines)

let test_header_edit_invalidates_includers () =
  (* the key covers the include closure: touching generated.h invalidates
     every C++ unit that includes it *)
  let cache_dir = fresh_dir () in
  let _ = build ~cache_dir ~domains:2 (project ()) in
  let vfs, sources = project () in
  Pdt_util.Vfs.add_file vfs "generated.h"
    (G.header G.default_config ^ "\n// touched\n");
  let r = build ~cache_dir ~domains:2 (vfs, sources) in
  Alcotest.(check int) "every includer recompiled" (n_tus + 1) r.B.compiled;
  Alcotest.(check int) "nothing cached" 0 r.B.cached

let test_corrupt_cache_recompiles () =
  let cache_dir = fresh_dir () in
  let cold = build ~cache_dir ~domains:2 (project ()) in
  (* truncate / garble every entry on disk — recursively, since v4
     shards entries under objects/<hh>/ *)
  let rec garble dir =
    Array.iter
      (fun f ->
        let path = Filename.concat dir f in
        if Sys.is_directory path then garble path
        else if Filename.check_suffix path ".pdb" then begin
          let oc = open_out_bin path in
          output_string oc "garbage, not a cache entry";
          close_out oc
        end)
      (Sys.readdir dir)
  in
  garble cache_dir;
  let r = build ~cache_dir ~domains:2 (project ()) in
  Alcotest.(check int) "corrupt entries recompiled" (n_tus + 1) r.B.compiled;
  Alcotest.(check int) "no corrupt entry served" 0 r.B.cached;
  Alcotest.(check string) "merged PDB unaffected"
    (pdb_string cold.B.merged) (pdb_string r.B.merged)

let test_cache_load_rejects_stale_version () =
  let cache_dir = fresh_dir () in
  let vfs, sources = project () in
  let source = List.hd sources in
  let pdb = Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs source).Pdt.program in
  let cache = C.create ~dir:cache_dir () in
  let key = C.key ~vfs ~options:"opts" source in
  C.store cache key pdb;
  (match C.load cache key with
   | Some loaded ->
       Alcotest.(check string) "store/load roundtrip" (pdb_string pdb)
         (pdb_string loaded)
   | None -> Alcotest.fail "freshly stored entry must load");
  (* rewrite the entry with a wrong-version header: stale, not crash *)
  let path = C.entry_path cache key
  and body = pdb_string pdb in
  let oc = open_out_bin path in
  Printf.fprintf oc "PDT-CACHE v%d key=%s\n%s" (C.format_version + 1) key body;
  close_out oc;
  Alcotest.(check bool) "stale version is a miss" true (C.load cache key = None)

let test_cache_key_covers_options () =
  let vfs, sources = project () in
  let source = List.hd sources in
  let k1 = C.key ~vfs ~options:"a" source in
  let k2 = C.key ~vfs ~options:"b" source in
  let k1' = C.key ~vfs ~options:"a" source in
  Alcotest.(check string) "key is deterministic" k1 k1';
  Alcotest.(check bool) "options change the key" true (k1 <> k2)

(* ---------------- failure isolation ---------------- *)

let test_failed_unit_does_not_sink_build () =
  let vfs, sources = project () in
  (* an unreadable unit is a hard failure (I/O), not a degraded compile *)
  let r = build ~domains:4 (vfs, sources @ [ "missing.cpp" ]) in
  Alcotest.(check int) "one unit failed" 1 r.B.failed;
  Alcotest.(check int) "the rest compiled" (n_tus + 1) r.B.compiled;
  (match B.failures r with
   | [ (source, msg) ] ->
       Alcotest.(check string) "failure names the unit" "missing.cpp" source;
       Alcotest.(check bool) "failure carries diagnostics" true (msg <> "")
   | _ -> Alcotest.fail "expected exactly one failure");
  (* the merged PDB equals the build without the failed unit *)
  let clean = build ~domains:4 (project ()) in
  Alcotest.(check string) "merged PDB excludes only the failed unit"
    (pdb_string clean.B.merged) (pdb_string r.B.merged)

let test_degraded_unit_still_merges () =
  let vfs, sources = project () in
  Pdt_util.Vfs.add_file vfs "broken.cpp" (G.broken_unit ~tu_index:9);
  let r = build ~domains:4 (vfs, sources @ [ "broken.cpp" ]) in
  Alcotest.(check int) "one unit degraded" 1 r.B.degraded;
  Alcotest.(check int) "no unit failed" 0 r.B.failed;
  Alcotest.(check int) "the rest compiled" (n_tus + 1) r.B.compiled;
  (match B.degraded_units r with
   | [ (source, msg) ] ->
       Alcotest.(check string) "report names the unit" "broken.cpp" source;
       Alcotest.(check bool) "report carries diagnostics" true (msg <> "")
   | _ -> Alcotest.fail "expected exactly one degraded unit");
  (* the partial PDB is merged in, and its marker propagates *)
  Alcotest.(check bool) "merged PDB marked incomplete" true
    r.B.merged.P.incomplete;
  Alcotest.(check bool) "merged PDB counts the diagnostics" true
    (r.B.merged.P.diag_count > 0);
  let clean = build ~domains:4 (project ()) in
  Alcotest.(check bool) "merge contains at least the clean units' items" true
    (P.item_count r.B.merged >= P.item_count clean.B.merged)

(* ---------------- mixed-language projects ---------------- *)

let test_mixed_language_project () =
  let vfs, sources = G.mixed_project_vfs ~n_tus:2 () in
  let r = build ~domains:4 (vfs, sources) in
  Alcotest.(check int) "no failures" 0 r.B.failed;
  Alcotest.(check int) "all units compiled" (List.length sources) r.B.compiled;
  let routine_names =
    List.map (fun (ro : P.routine_item) -> ro.P.ro_name) r.B.merged.P.routines
  in
  Alcotest.(check bool) "C++ routine present" true
    (List.mem "tu0_driver" routine_names);
  Alcotest.(check bool) "Fortran routine present" true
    (List.exists
       (fun n ->
         let sub = "gen0_scale" in
         let ln = String.length n and ls = String.length sub in
         let rec go i = i + ls <= ln && (String.sub n i ls = sub || go (i + 1)) in
         go 0)
       routine_names);
  Alcotest.(check bool) "Java class present" true
    (List.exists (fun (c : P.class_item) -> c.P.cl_name = "Gen0")
       r.B.merged.P.classes)

let suite =
  [ Alcotest.test_case "scheduler: map preserves order" `Quick test_scheduler_map;
    Alcotest.test_case "scheduler: exceptions stay per-slot" `Quick
      test_scheduler_isolates_exceptions;
    Alcotest.test_case "scheduler: worker crash surfaces, not swallowed" `Quick
      test_scheduler_worker_crash_surfaces;
    Alcotest.test_case "parallel = sequential bytes" `Quick
      test_parallel_equals_sequential;
    Alcotest.test_case "driver = compile_project" `Quick
      test_build_equals_compile_project;
    Alcotest.test_case "merge is input-order independent" `Quick
      test_merge_order_independent;
    Alcotest.test_case "merge is idempotent (normalized)" `Quick
      test_merge_idempotent_normalized;
    Alcotest.test_case "merge is grouping independent" `Quick
      test_merge_grouping_independent;
    Alcotest.test_case "tree merge byte-identical (1/2/8 domains)" `Quick
      test_parallel_merge_byte_identical;
    Alcotest.test_case "tree merge input-order independent" `Quick
      test_parallel_merge_order_independent;
    Alcotest.test_case "tree merge decl/def pairs" `Quick
      test_parallel_merge_decl_def;
    Alcotest.test_case "warm cache recompiles nothing" `Quick
      test_warm_cache_recompiles_nothing;
    Alcotest.test_case "edit invalidates exactly one entry" `Quick
      test_edit_invalidates_one_entry;
    Alcotest.test_case "header edit invalidates includers" `Quick
      test_header_edit_invalidates_includers;
    Alcotest.test_case "corrupt cache entries recompile" `Quick
      test_corrupt_cache_recompiles;
    Alcotest.test_case "stale cache version is a miss" `Quick
      test_cache_load_rejects_stale_version;
    Alcotest.test_case "cache key covers options" `Quick
      test_cache_key_covers_options;
    Alcotest.test_case "failed unit does not sink the build" `Quick
      test_failed_unit_does_not_sink_build;
    Alcotest.test_case "degraded unit still merges" `Quick
      test_degraded_unit_still_merges;
    Alcotest.test_case "mixed C++/Fortran/Java project" `Quick
      test_mixed_language_project ]
