(* SILOON tests (paper §4.2, Figure 8): mangling, planning, generation. *)

module D = Pdt_ductape.Ductape
module S = Pdt_siloon.Siloon
module M = Pdt_siloon.Mangle

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let stack_plan () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  (d, S.plan d)

(* ---------------- mangling ---------------- *)

let test_mangle_basics () =
  Alcotest.(check string) "plain" "push" (M.mangle "push");
  Alcotest.(check string) "template" "Stack_Lint_G" (M.mangle "Stack<int>");
  Alcotest.(check string) "scope" "Stack_Lint_G__push" (M.mangle "Stack<int>::push");
  Alcotest.(check string) "operators" "operator_lb_rb" (M.mangle "operator[]");
  Alcotest.(check string) "spaces removed" "constint_r" (M.mangle "const int &")

let test_mangle_valid_identifiers () =
  let ok name =
    name <> ""
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9') || c = '_')
         name
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("valid: " ^ M.mangle n) true (ok (M.mangle n)))
    [ "Stack<int>::push"; "vector<Stack<double> >"; "operator+"; "operator()";
      "~Stack"; "a::b::c<x, y>"; "operator<<"; "f(int, const char *)" ]

let prop_mangle_valid =
  QCheck.Test.make ~count:200 ~name:"mangled names are always identifiers"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 1 30) QCheck.Gen.printable)
    (fun s ->
      let m = M.mangle s in
      String.for_all
        (fun c ->
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9') || c = '_'
          (* characters we do not map pass through; restrict the property to
             the C++-name alphabet *)
          || not (String.contains "<>,: *&[]()~+-=!/%^|" c))
        m)

let test_mangle_overloads_distinct () =
  let m1 = M.mangle_routine ~full_name:"ostream::operator<<" ~param_types:[ "int" ] in
  let m2 = M.mangle_routine ~full_name:"ostream::operator<<" ~param_types:[ "double" ] in
  Alcotest.(check bool) "overloads get distinct names" true (m1 <> m2)

(* ---------------- planning ---------------- *)

let test_plan_covers_instantiations () =
  let _, plan = stack_plan () in
  let names =
    List.map (fun ec -> ec.S.ec_class.Pdt_pdb.Pdb.cl_name) plan.S.classes
  in
  Alcotest.(check bool) "Stack<int> exported" true (List.mem "Stack<int>" names);
  Alcotest.(check bool) "vector<int> exported" true (List.mem "vector<int>" names);
  let stack = List.find (fun ec -> ec.S.ec_class.Pdt_pdb.Pdb.cl_name = "Stack<int>") plan.S.classes in
  let kinds = List.map (fun em -> em.S.em_kind) stack.S.ec_methods in
  Alcotest.(check bool) "has ctor" true (List.mem `Ctor kinds);
  Alcotest.(check bool) "has dtor" true (List.mem `Dtor kinds);
  Alcotest.(check bool) "has methods" true (List.mem `Method kinds)

let test_plan_skips_private () =
  let src =
    "class Sec {\npublic:\n  int open() { return 1; }\nprivate:\n  int hidden() { return 2; }\n};\n\
     int main() { Sec s; return s.open(); }"
  in
  let c = Pdt.compile_string src in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = S.plan d in
  let sec = List.find (fun ec -> ec.S.ec_class.Pdt_pdb.Pdb.cl_name = "Sec") plan.S.classes in
  let names = List.map (fun em -> em.S.em_routine.Pdt_pdb.Pdb.ro_name) sec.S.ec_methods in
  Alcotest.(check bool) "open exported" true (List.mem "open" names);
  Alcotest.(check bool) "hidden not exported" false (List.mem "hidden" names)

let test_abstract_class_no_ctor_bridge () =
  let src =
    "class Abstract {\npublic:\n  Abstract() { }\n  virtual int f() = 0;\n};\n\
     class Conc : public Abstract {\npublic:\n  virtual int f() { return 1; }\n};\n\
     int main() { Conc c; return c.f(); }"
  in
  let c = Pdt.compile_string src in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = S.plan d in
  let abs = List.find (fun ec -> ec.S.ec_class.Pdt_pdb.Pdb.cl_name = "Abstract") plan.S.classes in
  Alcotest.(check bool) "marked abstract" true abs.S.ec_abstract;
  let bridge = S.generate_bridge d plan in
  Alcotest.(check bool) "abstract ctor guarded" true
    (contains bridge "class Abstract is abstract")

(* ---------------- generation ---------------- *)

let test_bridge_structure () =
  let d, plan = stack_plan () in
  let bridge = S.generate_bridge d plan in
  Alcotest.(check bool) "extern C functions" true (contains bridge "extern \"C\" siloon_value");
  Alcotest.(check bool) "ctor creates object" true (contains bridge "new Stack<int>(");
  Alcotest.(check bool) "method dispatch" true (contains bridge "obj->push(");
  Alcotest.(check bool) "registration function" true (contains bridge "siloon_register_all");
  Alcotest.(check bool) "registrations present" true (contains bridge "siloon_register(reg, \"")

let test_perl_structure () =
  let d, plan = stack_plan () in
  let perl = S.generate_perl d plan ~module_name:"StackLib" in
  Alcotest.(check bool) "package per class" true (contains perl "package StackLib::Stack_Lint_G;");
  Alcotest.(check bool) "constructor blesses" true (contains perl "bless { _handle =>");
  Alcotest.(check bool) "DESTROY" true (contains perl "sub DESTROY");
  Alcotest.(check bool) "siloon_call dispatch" true (contains perl "siloon_call('");
  Alcotest.(check bool) "arity check from default args" true (contains perl "expected 0..1 args")

let test_python_structure () =
  let d, plan = stack_plan () in
  let py = S.generate_python d plan ~module_name:"StackLib" in
  Alcotest.(check bool) "class per class" true (contains py "class Stack_Lint_G(object):");
  Alcotest.(check bool) "init calls bridge" true (contains py "def __init__(self, *args):");
  Alcotest.(check bool) "del calls dtor" true (contains py "def __del__(self):");
  Alcotest.(check bool) "operator[] becomes __getitem__" true (contains py "__getitem__");
  Alcotest.(check bool) "methods present" true (contains py "def push(self, *args):")

let test_template_inventory () =
  let d, _ = stack_plan () in
  let inv = S.template_inventory d in
  let stack_class =
    List.find
      (fun ((te : Pdt_pdb.Pdb.template_item), _) ->
        te.te_name = "Stack" && te.te_kind = "class")
      inv
  in
  Alcotest.(check bool) "Stack has instantiations" true (snd stack_class >= 1);
  (* uninstantiated member templates are listed with count 0: the paper's
     proposed extension needs exactly this *)
  let pop =
    List.find
      (fun ((te : Pdt_pdb.Pdb.template_item), _) ->
        te.te_name = "pop" && te.te_kind = "memfunc")
      inv
  in
  Alcotest.(check int) "pop uninstantiated" 0 (snd pop)

let suite =
  [ Alcotest.test_case "mangle basics" `Quick test_mangle_basics;
    Alcotest.test_case "mangle produces identifiers" `Quick test_mangle_valid_identifiers;
    QCheck_alcotest.to_alcotest prop_mangle_valid;
    Alcotest.test_case "overload mangling distinct" `Quick test_mangle_overloads_distinct;
    Alcotest.test_case "plan covers instantiations" `Quick test_plan_covers_instantiations;
    Alcotest.test_case "plan skips private members" `Quick test_plan_skips_private;
    Alcotest.test_case "abstract classes guarded" `Quick test_abstract_class_no_ctor_bridge;
    Alcotest.test_case "bridge structure" `Quick test_bridge_structure;
    Alcotest.test_case "perl wrapper structure" `Quick test_perl_structure;
    Alcotest.test_case "python wrapper structure" `Quick test_python_structure;
    Alcotest.test_case "template inventory" `Quick test_template_inventory ]
