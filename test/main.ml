let () =
  Alcotest.run "pdt"
    [ ("lexer", Test_lexer.suite);
      ("preproc", Test_preproc.suite);
      ("parser", Test_parser.suite);
      ("sema", Test_sema.suite);
      ("templates", Test_templates.suite);
      ("analyzer", Test_analyzer.suite);
      ("duchains", Test_duchains.suite);
      ("mhp", Test_mhp.suite);
      ("pdb", Test_pdb.suite);
      ("ductape", Test_ductape.suite);
      ("interp", Test_interp.suite);
      ("tools", Test_tools.suite);
      ("tau", Test_tau.suite);
      ("siloon", Test_siloon.suite);
      ("prelink", Test_prelink.suite);
      ("f90", Test_f90.suite);
      ("properties", Test_properties.suite);
      ("parser-edge", Test_parser_edge.suite);
      ("extensions", Test_extensions.suite);
      ("parallel", Test_parallel.suite);
      ("il", Test_il.suite);
      ("build", Test_build.suite);
      ("faults", Test_faults.suite);
      ("farm", Test_farm.suite);
      ("diag", Test_diag.suite);
      ("fuzz", Test_fuzz.suite);
      ("integration", Test_integration.suite);
      ("java", Test_java.suite);
      ("trace", Test_trace.suite);
      ("golden", Test_golden.suite);
      ("pdb-bin", Test_pdb_bin.suite);
      ("incremental", Test_incremental.suite);
      ("json", Test_json.suite);
      ("pdbd", Test_pdbd.suite) ]
