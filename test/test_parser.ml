(* Unit tests for the C++ parser. *)

open Pdt_util
open Pdt_ast.Ast

let parse src =
  let diags = Diag.create () in
  let toks = Pdt_lex.Lexer.tokenize ~diags ~file:"t.cpp" src in
  let tu = Pdt_parse.Parser.parse_translation_unit ~diags ~file:"t.cpp" toks in
  (tu, diags)

let parse_ok src =
  let tu, diags = parse src in
  if Diag.has_errors diags then
    Alcotest.failf "parse errors:\n%s" (Diag.to_string diags);
  tu

let decl_kinds tu =
  List.map
    (fun d ->
      match d.d with
      | DNamespace _ -> "namespace"
      | DClass _ -> "class"
      | DEnum _ -> "enum"
      | DTypedef _ -> "typedef"
      | DFunction _ -> "function"
      | DVar _ -> "var"
      | DTemplate _ -> "template"
      | DUsing _ -> "using"
      | DAccess _ -> "access"
      | DFriend _ -> "friend"
      | DExplicitInst _ -> "inst"
      | DEmpty -> "empty")
    tu.tu_decls

let test_simple_function () =
  let tu = parse_ok "int add(int a, int b) { return a + b; }" in
  match tu.tu_decls with
  | [ { d = DFunction f; _ } ] ->
      Alcotest.(check string) "name" "add" (qual_name_to_string f.f_name);
      Alcotest.(check int) "params" 2 (List.length f.f_params);
      Alcotest.(check bool) "has body" true (f.f_body <> None)
  | _ -> Alcotest.failf "decls: %s" (String.concat "," (decl_kinds tu))

let test_class () =
  let tu =
    parse_ok
      "class Point {\npublic:\n  Point(int x, int y);\n  int getX() const;\n\
       private:\n  int x_;\n  int y_;\n};"
  in
  match tu.tu_decls with
  | [ { d = DClass c; _ } ] ->
      Alcotest.(check string) "name" "Point"
        (match c.c_name with Some p -> p.id | None -> "?");
      (* members: access, ctor, method, access, 2 fields *)
      Alcotest.(check int) "member count" 6 (List.length c.c_members);
      let kinds =
        List.map
          (fun d ->
            match d.d with
            | DAccess _ -> "access"
            | DFunction { f_kind = Fk_ctor; _ } -> "ctor"
            | DFunction _ -> "fn"
            | DVar _ -> "var"
            | _ -> "?")
          c.c_members
      in
      Alcotest.(check (list string)) "member kinds"
        [ "access"; "ctor"; "fn"; "access"; "var"; "var" ] kinds
  | _ -> Alcotest.failf "decls: %s" (String.concat "," (decl_kinds tu))

let test_inheritance () =
  let tu = parse_ok "class A {}; class B {}; class C : public A, private virtual B {};" in
  match List.nth tu.tu_decls 2 with
  | { d = DClass c; _ } ->
      Alcotest.(check int) "bases" 2 (List.length c.c_bases);
      let b0 = List.nth c.c_bases 0 and b1 = List.nth c.c_bases 1 in
      Alcotest.(check bool) "b0 public" true (b0.b_access = Some Public);
      Alcotest.(check bool) "b1 virtual" true b1.b_virtual
  | _ -> Alcotest.fail "expected class C"

let test_class_template () =
  let tu =
    parse_ok
      "template <class T>\nclass Stack {\npublic:\n  void push(const T & x);\n\
       \  T pop();\nprivate:\n  int top_;\n};"
  in
  match tu.tu_decls with
  | [ { d = DTemplate ([ TP_type ("T", None) ], { d = DClass c; _ }, text); _ } ] ->
      Alcotest.(check string) "name" "Stack"
        (match c.c_name with Some p -> p.id | None -> "?");
      Alcotest.(check bool) "text captured" true
        (String.length text > 20 &&
         String.sub text 0 8 = "template")
  | _ -> Alcotest.failf "decls: %s" (String.concat "," (decl_kinds tu))

let test_out_of_line_member_template () =
  let tu =
    parse_ok
      "template <class T> class Stack { public: void push(const T & x); };\n\
       template <class T>\nvoid Stack<T>::push(const T & x) { }"
  in
  match List.nth tu.tu_decls 1 with
  | { d = DTemplate (_, { d = DFunction f; _ }, _); _ } ->
      Alcotest.(check string) "qualified name" "Stack<T>::push"
        (qual_name_to_string f.f_name);
      Alcotest.(check bool) "body" true (f.f_body <> None)
  | _ -> Alcotest.fail "expected out-of-line member template"

let test_nested_template_args () =
  let tu = parse_ok
      "template <class T> class vector {};\n\
       template <class T> class Stack {};\n\
       vector<Stack<int> > a;\nvector<Stack<int>> b;"
  in
  (match List.nth tu.tu_decls 2 with
   | { d = DVar v; _ } ->
       Alcotest.(check string) "spaced" "vector<Stack<int>>" (type_to_string v.v_type)
   | _ -> Alcotest.fail "expected var a");
  match List.nth tu.tu_decls 3 with
  | { d = DVar v; _ } ->
      Alcotest.(check string) "gtgt split" "vector<Stack<int>>" (type_to_string v.v_type)
  | _ -> Alcotest.fail "expected var b"

let test_function_template () =
  let tu = parse_ok "template <class T> T max2(T a, T b) { if (a < b) return b; return a; }" in
  match tu.tu_decls with
  | [ { d = DTemplate ([ TP_type ("T", None) ], { d = DFunction f; _ }, _); _ } ] ->
      Alcotest.(check string) "name" "max2" (qual_name_to_string f.f_name)
  | _ -> Alcotest.failf "decls: %s" (String.concat "," (decl_kinds tu))

let test_specialization () =
  let tu =
    parse_ok
      "template <class T> class Box {};\ntemplate <> class Box<char> { public: int c; };"
  in
  match List.nth tu.tu_decls 1 with
  | { d = DTemplate ([], { d = DClass c; _ }, _); _ } -> (
      match c.c_name with
      | Some { id = "Box"; targs = Some [ TA_type (TBuiltin { base = `Char; _ }) ] } -> ()
      | _ -> Alcotest.fail "expected Box<char> name")
  | _ -> Alcotest.fail "expected explicit specialization"

let test_namespaces () =
  let tu = parse_ok "namespace N { int x; namespace M { int y; } }" in
  match tu.tu_decls with
  | [ { d = DNamespace (Some "N", [ { d = DVar _; _ }; { d = DNamespace (Some "M", _, _); _ } ], _); _ } ] -> ()
  | _ -> Alcotest.failf "decls: %s" (String.concat "," (decl_kinds tu))

let test_enum_typedef () =
  let tu = parse_ok "enum Color { Red, Green = 5, Blue };\ntypedef unsigned long size_type;\nsize_type s;" in
  (match List.nth tu.tu_decls 0 with
   | { d = DEnum (Some "Color", items); _ } ->
       Alcotest.(check int) "items" 3 (List.length items)
   | _ -> Alcotest.fail "enum");
  match List.nth tu.tu_decls 2 with
  | { d = DVar v; _ } -> Alcotest.(check string) "typedef used" "size_type" (type_to_string v.v_type)
  | _ -> Alcotest.fail "var of typedef type"

let test_operators () =
  let tu =
    parse_ok
      "class Complex {\npublic:\n  Complex operator+(const Complex & o) const;\n\
       \  bool operator==(const Complex & o) const;\n};\n\
       Complex Complex::operator+(const Complex & o) const { return o; }"
  in
  match List.nth tu.tu_decls 1 with
  | { d = DFunction f; _ } ->
      Alcotest.(check string) "qualified op" "Complex::operator+"
        (qual_name_to_string f.f_name);
      (match f.f_kind with
       | Fk_operator "operator+" -> ()
       | _ -> Alcotest.fail "kind should be operator+")
  | _ -> Alcotest.fail "expected out-of-line operator"

let test_ctor_inits_and_default_args () =
  let tu =
    parse_ok
      "class V { public: V(int n = 10, double f = 0.5) : n_(n), f_(f) { } int n_; double f_; };"
  in
  match tu.tu_decls with
  | [ { d = DClass c; _ } ] -> (
      match List.filter_map (fun d -> match d.d with DFunction f -> Some f | _ -> None) c.c_members with
      | [ f ] ->
          Alcotest.(check int) "inits" 2 (List.length f.f_inits);
          Alcotest.(check bool) "default args" true
            (List.for_all (fun p -> p.pdefault <> None) f.f_params)
      | _ -> Alcotest.fail "one ctor expected")
  | _ -> Alcotest.fail "class expected"

let test_stmts () =
  let tu =
    parse_ok
      "int f(int n) {\n\
       \  int s = 0;\n\
       \  for (int i = 0; i < n; i++) s += i;\n\
       \  while (s > 100) { s -= 10; }\n\
       \  do { s++; } while (s < 0);\n\
       \  switch (n) { case 0: return 0; default: break; }\n\
       \  if (s == 7) return 1; else return s;\n\
       }"
  in
  match tu.tu_decls with
  | [ { d = DFunction { f_body = Some { s = SCompound stmts; _ }; _ }; _ } ] ->
      Alcotest.(check int) "stmt count" 6 (List.length stmts)
  | _ -> Alcotest.fail "function with body"

let test_try_throw () =
  let tu =
    parse_ok
      "class Overflow {};\n\
       int f(int x) {\n\
       \  try { if (x > 0) throw Overflow(); } catch (Overflow & e) { return 1; } catch (...) { return 2; }\n\
       \  return 0;\n}"
  in
  match List.nth tu.tu_decls 1 with
  | { d = DFunction { f_body = Some { s = SCompound (s0 :: _); _ }; _ }; _ } -> (
      match s0.s with
      | STry (_, handlers) -> Alcotest.(check int) "handlers" 2 (List.length handlers)
      | _ -> Alcotest.fail "expected try")
  | _ -> Alcotest.fail "expected function"

let test_expr_precedence () =
  let tu = parse_ok "int x = 1 + 2 * 3 - 4 / 2;" in
  match tu.tu_decls with
  | [ { d = DVar { v_init = EqInit e; _ }; _ } ] ->
      Alcotest.(check string) "tree" "((1 + (2 * 3)) - (4 / 2))" (expr_to_string e)
  | _ -> Alcotest.fail "var expected"

let test_new_delete () =
  let tu = parse_ok "class T{}; void f() { T *p = new T(); delete p; int *a = new int[10]; delete[] a; }" in
  match List.nth tu.tu_decls 1 with
  | { d = DFunction { f_body = Some { s = SCompound stmts; _ }; _ }; _ } ->
      Alcotest.(check int) "stmts" 4 (List.length stmts)
  | _ -> Alcotest.fail "function expected"

let test_virtual_pure () =
  let tu = parse_ok "class Shape { public: virtual double area() const = 0; virtual ~Shape() { } };" in
  match tu.tu_decls with
  | [ { d = DClass c; _ } ] -> (
      let fns = List.filter_map (fun d -> match d.d with DFunction f -> Some f | _ -> None) c.c_members in
      match fns with
      | [ area; dtor ] ->
          Alcotest.(check bool) "virtual" true area.f_quals.q_virtual;
          Alcotest.(check bool) "pure" true area.f_quals.q_pure;
          Alcotest.(check bool) "dtor virtual" true dtor.f_quals.q_virtual;
          Alcotest.(check bool) "dtor kind" true (dtor.f_kind = Fk_dtor)
      | _ -> Alcotest.fail "two functions expected")
  | _ -> Alcotest.fail "class expected"

let test_member_call_not_template () =
  (* 'a < b' where a is not a template must stay a comparison *)
  let tu = parse_ok "int f(int a, int b) { return a < b; }" in
  match tu.tu_decls with
  | [ { d = DFunction { f_body = Some { s = SCompound [ { s = SReturn (Some e); _ } ]; _ }; _ }; _ } ] ->
      Alcotest.(check string) "comparison" "(a < b)" (expr_to_string e)
  | _ -> Alcotest.fail "function expected"

let test_explicit_instantiation () =
  let tu = parse_ok "template <class T> class Stack {};\ntemplate class Stack<int>;" in
  match List.nth tu.tu_decls 1 with
  | { d = DExplicitInst { d = DClass c; _ }; _ } -> (
      match c.c_name with
      | Some { id = "Stack"; targs = Some [ TA_type (TBuiltin { base = `Int; _ }) ] } -> ()
      | _ -> Alcotest.fail "Stack<int> expected")
  | _ -> Alcotest.fail "explicit instantiation expected"

let test_figure1_stack () =
  (* the complete Figure 1 program parses without error *)
  let src =
    "template <class T> class vector { public: int size() const; T & operator[](int i); };\n\
     class Overflow {};\nclass Underflow {};\n\
     template <class Object>\n\
     class Stack {\n\
     public:\n\
     \  explicit Stack( int capacity = 10 );\n\
     \  bool isEmpty( ) const;\n\
     \  bool isFull( ) const;\n\
     \  const Object & top( ) const;\n\
     \  void makeEmpty( );\n\
     \  void pop( );\n\
     \  void push( const Object & x );\n\
     \  Object topAndPop( );\n\
     private:\n\
     \  vector<Object> theArray;\n\
     \  int topOfStack;\n\
     };\n\
     template <class Object>\n\
     bool Stack<Object>::isFull( ) const {\n\
     \  return topOfStack == theArray.size( ) - 1;\n\
     }\n\
     template <class Object>\n\
     void Stack<Object>::push( const Object & x ) {\n\
     \  if( isFull( ) )\n\
     \    throw Overflow( );\n\
     \  theArray[ ++topOfStack ] = x;\n\
     }\n\
     template <class Object>\n\
     Object Stack<Object>::topAndPop( ) {\n\
     \  if( isEmpty( ) )\n\
     \    throw Underflow( );\n\
     \  return theArray[ topOfStack-- ];\n\
     }\n\
     int main( ) {\n\
     \  Stack<int> s;\n\
     \  for( int i = 0; i < 10; i++ )\n\
     \    s.push( i );\n\
     \  while( !s.isEmpty( ) )\n\
     \    s.topAndPop( );\n\
     \  return 0;\n\
     }\n"
  in
  let tu = parse_ok src in
  Alcotest.(check int) "toplevel decls" 8 (List.length tu.tu_decls)

let suite =
  [ Alcotest.test_case "simple function" `Quick test_simple_function;
    Alcotest.test_case "class with members" `Quick test_class;
    Alcotest.test_case "inheritance" `Quick test_inheritance;
    Alcotest.test_case "class template" `Quick test_class_template;
    Alcotest.test_case "out-of-line member template" `Quick test_out_of_line_member_template;
    Alcotest.test_case "nested template args (>>)" `Quick test_nested_template_args;
    Alcotest.test_case "function template" `Quick test_function_template;
    Alcotest.test_case "explicit specialization" `Quick test_specialization;
    Alcotest.test_case "namespaces" `Quick test_namespaces;
    Alcotest.test_case "enum and typedef" `Quick test_enum_typedef;
    Alcotest.test_case "operator overloading" `Quick test_operators;
    Alcotest.test_case "ctor inits and default args" `Quick test_ctor_inits_and_default_args;
    Alcotest.test_case "statements" `Quick test_stmts;
    Alcotest.test_case "try/catch/throw" `Quick test_try_throw;
    Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
    Alcotest.test_case "new/delete" `Quick test_new_delete;
    Alcotest.test_case "virtual and pure virtual" `Quick test_virtual_pure;
    Alcotest.test_case "a<b is comparison" `Quick test_member_call_not_template;
    Alcotest.test_case "explicit instantiation" `Quick test_explicit_instantiation;
    Alcotest.test_case "Figure 1 Stack program" `Quick test_figure1_stack ]
