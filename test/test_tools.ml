(* Tests for the Table 2 utilities: pdbconv, pdbhtml, pdbmerge, pdbtree. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let stack_d () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  D.index (Pdt_analyzer.Analyzer.run c.Pdt.program)

(* ---------------- pdbconv ---------------- *)

let test_pdbconv_sections () =
  let d = stack_d () in
  let out = Pdt_tools.Pdbconv.convert d in
  List.iter
    (fun sec -> Alcotest.(check bool) (sec ^ " section") true (contains out sec))
    [ "=== Source files"; "=== Namespaces"; "=== Templates"; "=== Classes";
      "=== Routines"; "=== Types"; "=== Macros" ];
  Alcotest.(check bool) "resolves names" true (contains out "Stack<int>");
  Alcotest.(check bool) "template provenance" true
    (contains out "instantiated from template");
  Alcotest.(check bool) "signatures printed" true (contains out "void (const int &)")

let test_pdbconv_check_clean () =
  let d = stack_d () in
  Alcotest.(check (list string)) "no problems" [] (Pdt_tools.Pdbconv.check d)

let test_pdbconv_check_detects_dangling () =
  let pdb = P.create () in
  pdb.P.routines <-
    [ { P.ro_id = 1; ro_name = "f"; ro_loc = P.null_loc; ro_parent = P.Pnone;
        ro_acs = "NA"; ro_sig = P.Tyref 99; ro_link = "C++"; ro_store = "NA";
        ro_virt = "no"; ro_kind = "NA"; ro_static = false; ro_inline = false;
        ro_templ = Some 7;
        ro_calls = [ { P.c_callee = 42; c_virt = false; c_loc = P.null_loc } ];
        ro_spawns = []; ro_du = []; ro_pos = P.null_extent; ro_defined = false } ];
  let d = D.index pdb in
  let problems = Pdt_tools.Pdbconv.check d in
  Alcotest.(check int) "three dangling refs" 3 (List.length problems)

(* ---------------- pdbtree ---------------- *)

let test_pdbtree_call_graph_figure5 () =
  let d = stack_d () in
  let out = Pdt_tools.Pdbtree.call_graph d in
  Alcotest.(check bool) "rooted at main" true
    (String.length out > 4 && String.sub out 0 4 = "main");
  Alcotest.(check bool) "arrow formatting" true (contains out "`--> Stack<int>::push");
  Alcotest.(check bool) "nested callee" true (contains out "`--> Stack<int>::isFull")

let test_pdbtree_virtual_and_recursion () =
  let src =
    "class B {\npublic:\n  virtual int v() { return 0; }\n};\n\
     int rec(int n) { if (n == 0) return 0; return rec(n - 1); }\n\
     int main() { B b; rec(3); return b.v(); }"
  in
  let c = Pdt.compile_string src in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let out = Pdt_tools.Pdbtree.call_graph d in
  Alcotest.(check bool) "VIRTUAL tag" true (contains out "(VIRTUAL)");
  Alcotest.(check bool) "recursion cut with ..." true (contains out "rec ...")

let test_pdbtree_include_and_class () =
  let d = stack_d () in
  let inc = Pdt_tools.Pdbtree.include_tree d in
  Alcotest.(check bool) "include tree has nesting" true
    (contains inc "`--> StackAr.h");
  let ch = Pdt_tools.Pdbtree.class_hierarchy d in
  Alcotest.(check bool) "classes listed" true (contains ch "Stack<int>")

(* ---------------- pdbmerge ---------------- *)

let test_pdbmerge_stats () =
  let vfs, files = Pdt_workloads.Generator.project_vfs ~n_tus:3 () in
  let pdbs =
    List.map
      (fun f ->
        let c = Pdt.compile_exn ~vfs f in
        Pdt_analyzer.Analyzer.run c.Pdt.program)
      files
  in
  let _, stats = Pdt_tools.Pdbmerge.merge pdbs in
  Alcotest.(check int) "inputs" 4 stats.Pdt_tools.Pdbmerge.inputs;
  Alcotest.(check bool) "shrunk" true
    (stats.Pdt_tools.Pdbmerge.items_after < stats.Pdt_tools.Pdbmerge.items_before);
  Alcotest.(check bool) "duplicates eliminated" true
    (stats.Pdt_tools.Pdbmerge.duplicate_instantiations > 0);
  Alcotest.(check bool) "report string" true
    (contains (Pdt_tools.Pdbmerge.stats_to_string stats) "duplicate template instantiations")

(* ---------------- pdbhtml ---------------- *)

let test_pdbhtml_pages () =
  let d = stack_d () in
  let pages = Pdt_tools.Pdbhtml.generate d in
  let names = List.map fst pages in
  Alcotest.(check bool) "index page" true (List.mem "index.html" names);
  Alcotest.(check bool) "routines page" true (List.mem "routines.html" names);
  let n_classes = List.length (D.classes d) in
  let class_pages = List.filter (fun n -> String.length n > 6 && String.sub n 0 6 = "class_") names in
  Alcotest.(check int) "one page per class" n_classes (List.length class_pages);
  let index = List.assoc "index.html" pages in
  Alcotest.(check bool) "index links classes" true (contains index "Stack&lt;int&gt;");
  Alcotest.(check bool) "escaped angle brackets" true
    (not (contains index "<int>"));
  (* class page content *)
  let stack_cl =
    List.find (fun (c : P.class_item) -> c.cl_name = "Stack<int>") (D.classes d)
  in
  let page = List.assoc (Printf.sprintf "class_%d.html" stack_cl.P.cl_id) pages in
  Alcotest.(check bool) "members table" true (contains page "theArray");
  Alcotest.(check bool) "template provenance" true (contains page "instantiated from template")

let test_pdbhtml_links_resolve () =
  let d = stack_d () in
  let pages = Pdt_tools.Pdbhtml.generate d in
  let names = List.map fst pages in
  (* every href="..." in every page points to a generated page or anchor *)
  let re = Str.regexp "href=\"\\([^\"#]*\\)" in
  List.iter
    (fun (_, body) ->
      let rec scan pos =
        match Str.search_forward re body pos with
        | exception Not_found -> ()
        | i ->
            let target = Str.matched_group 1 body in
            if target <> "" then
              Alcotest.(check bool) ("link target exists: " ^ target) true
                (List.mem target names);
            scan (i + 1)
      in
      scan 0)
    pages

(* ---------------- degraded (incomplete) PDBs ---------------- *)

(* a PDB written after recovered front-end errors: header says
   "incomplete <n>"; the tools must surface that instead of silently
   presenting a partial program as whole *)
let degraded_d ?(diags = 3) () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  pdb.P.incomplete <- true;
  pdb.P.diag_count <- diags;
  pdb

let test_pdbstats_flags_incomplete () =
  let out = Pdt_tools.Pdbstats.report (D.index (degraded_d ())) in
  Alcotest.(check bool) "warning present" true
    (contains out "WARNING: incomplete PDB (3 diagnostics recorded during compilation)");
  Alcotest.(check bool) "scope caveat" true
    (contains out "the statistics below describe the recovered portion only");
  Alcotest.(check bool) "numbers still reported" true (contains out "routines");
  let singular = Pdt_tools.Pdbstats.report (D.index (degraded_d ~diags:1 ())) in
  Alcotest.(check bool) "singular form" true
    (contains singular "(1 diagnostic recorded");
  let clean = Pdt_tools.Pdbstats.report (stack_d ()) in
  Alcotest.(check bool) "clean PDB has no warning" true
    (not (contains clean "WARNING"))

let test_pdbtree_incomplete_note () =
  (match Pdt_tools.Pdbtree.incomplete_note (D.index (degraded_d ())) with
   | None -> Alcotest.fail "no incomplete note for a degraded PDB"
   | Some note ->
       Alcotest.(check bool) "names the diag count" true
         (contains note "incomplete PDB (3 diagnostics");
       Alcotest.(check bool) "warns trees may be partial" true
         (contains note "trees may be partial"));
  Alcotest.(check bool) "clean PDB has no note" true
    (Pdt_tools.Pdbtree.incomplete_note (stack_d ()) = None)

let test_incomplete_flag_survives_disk () =
  (* the tools read the flag from the serialized header, which is how the
     pdbstats/pdbtree executables see a degraded artifact *)
  let text = Pdt_pdb.Pdb_write.to_string (degraded_d ~diags:2 ()) in
  let d = D.index (Pdt_pdb.Pdb_parse.of_string text) in
  let out = Pdt_tools.Pdbstats.report d in
  Alcotest.(check bool) "warning after round-trip" true
    (contains out "WARNING: incomplete PDB (2 diagnostics");
  Alcotest.(check bool) "tree note after round-trip" true
    (Pdt_tools.Pdbtree.incomplete_note d <> None)

let suite =
  [ Alcotest.test_case "pdbconv sections" `Quick test_pdbconv_sections;
    Alcotest.test_case "pdbconv check clean" `Quick test_pdbconv_check_clean;
    Alcotest.test_case "pdbconv check dangling" `Quick test_pdbconv_check_detects_dangling;
    Alcotest.test_case "pdbtree call graph (Fig 5)" `Quick test_pdbtree_call_graph_figure5;
    Alcotest.test_case "pdbtree VIRTUAL and recursion" `Quick test_pdbtree_virtual_and_recursion;
    Alcotest.test_case "pdbtree include/class trees" `Quick test_pdbtree_include_and_class;
    Alcotest.test_case "pdbmerge statistics" `Quick test_pdbmerge_stats;
    Alcotest.test_case "pdbhtml pages" `Quick test_pdbhtml_pages;
    Alcotest.test_case "pdbhtml links resolve" `Quick test_pdbhtml_links_resolve;
    Alcotest.test_case "pdbstats flags incomplete PDBs" `Quick
      test_pdbstats_flags_incomplete;
    Alcotest.test_case "pdbtree incomplete note" `Quick test_pdbtree_incomplete_note;
    Alcotest.test_case "incomplete flag survives disk" `Quick
      test_incomplete_flag_survives_disk ]
