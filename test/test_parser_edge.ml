(* Parser edge cases: the gnarly corners of the C++ subset. *)

open Pdt_util
open Pdt_ast.Ast

let parse src =
  let diags = Diag.create () in
  let toks = Pdt_lex.Lexer.tokenize ~diags ~file:"t.cpp" src in
  let tu = Pdt_parse.Parser.parse_translation_unit ~diags ~file:"t.cpp" toks in
  (tu, diags)

let parse_ok src =
  let tu, diags = parse src in
  if Diag.has_errors diags then
    Alcotest.failf "parse errors:\n%s" (Diag.to_string diags);
  tu

let compile_ok src =
  let c = Pdt.compile_string src in
  if Diag.has_errors c.Pdt.diags then
    Alcotest.failf "compile errors:\n%s" (Diag.to_string c.Pdt.diags);
  c.Pdt.program

let test_triple_nested_templates () =
  let prog =
    compile_ok
      "template <class T> class A { public: T v; };\n\
       int main() { A<A<A<int> > > x; x.v.v.v = 3; return x.v.v.v; }"
  in
  let names = List.map (fun c -> c.Pdt_il.Il.cl_name) (Pdt_il.Il.classes prog) in
  Alcotest.(check bool) "deepest" true (List.mem "A<A<A<int>>>" names)

let test_gtgt_everywhere () =
  (* >> in template context splits; >> in expressions shifts *)
  let prog =
    compile_ok
      "template <class T> class B { public: T v; };\n\
       int main() { B<B<int>> b; int x = 64 >> 2; b.v.v = x >> 1; return b.v.v; }"
  in
  ignore prog

let test_template_arg_expression_gt () =
  (* parenthesized '>' inside a template argument *)
  let tu =
    parse_ok
      "template <int N> class C {};\nC<(4 > 2)> c1;\nC<(1 + 2) * 3> c2;"
  in
  Alcotest.(check int) "three decls" 3 (List.length tu.tu_decls)

let test_comments_inside_decls () =
  let tu =
    parse_ok
      "template </* comment */ class T> // trailing\nclass D { /* body */ public: T v; };"
  in
  Alcotest.(check int) "one decl" 1 (List.length tu.tu_decls)

let test_cv_pointer_combinations () =
  let tu =
    parse_ok
      "void f(const int * p1, int * const p2, const int * const p3, const int ** pp);"
  in
  match tu.tu_decls with
  | [ { d = DFunction fd; _ } ] ->
      let tys = List.map (fun p -> type_to_string p.ptype) fd.f_params in
      Alcotest.(check (list string)) "declarators"
        [ "const int *"; "const int *"; "const const int *"; "const int * *" ]
        (* note: 'int * const' folds the const onto the pointer; rendering is
           canonical rather than source-faithful *)
        tys
  | _ -> Alcotest.fail "expected function"

let test_chained_else_if () =
  let prog =
    compile_ok
      "int cls(int x) {\n\
       \  if (x < 0) return -1;\n\
       \  else if (x == 0) return 0;\n\
       \  else if (x < 10) return 1;\n\
       \  else return 2;\n}\nint main() { return cls(5); }"
  in
  let r = Pdt_tau.Interp.run prog in
  Alcotest.(check int) "chained else-if evaluates" 1 r.exit_code

let test_anonymous_namespace () =
  let tu = parse_ok "namespace { int hidden() { return 1; } }" in
  match tu.tu_decls with
  | [ { d = DNamespace (None, [ _ ], _); _ } ] -> ()
  | _ -> Alcotest.fail "expected anonymous namespace"

let test_extern_c_block () =
  let tu = parse_ok "extern \"C\" {\n  int c_fn(int x);\n}" in
  Alcotest.(check bool) "parsed" true (List.length tu.tu_decls >= 1)

let test_operator_arrow_and_call () =
  let tu =
    parse_ok
      "class It {\npublic:\n  int operator()(int x) { return x; }\n\
       \  bool operator!=(const It & o) const { return false; }\n\
       \  It & operator++() { return *this; }\n};"
  in
  match tu.tu_decls with
  | [ { d = DClass c; _ } ] ->
      let ops =
        List.filter_map
          (fun m -> match m.d with DFunction f -> Some (last_part f.f_name).id | _ -> None)
          c.c_members
      in
      Alcotest.(check (list string)) "operator names"
        [ "operator()"; "operator!="; "operator++" ] ops
  | _ -> Alcotest.fail "class expected"

let test_constructor_with_default_template_arg_value () =
  let prog =
    compile_ok
      "template <class T> class Opt {\npublic:\n  Opt() : v_(T()), set_(false) { }\n\
       \  void set(const T & v) { v_ = v; set_ = true; }\n\
       \  bool has() const { return set_; }\nprivate:\n  T v_;\n  bool set_;\n};\n\
       int main() { Opt<double> o; o.set(2.5); return o.has() ? 0 : 1; }"
  in
  let r = Pdt_tau.Interp.run prog in
  Alcotest.(check int) "T() default in ctor init" 0 r.exit_code

let test_multidim_arrays () =
  let prog =
    compile_ok
      "int main() {\n  int grid[3][4];\n  for (int i = 0; i < 3; i++)\n\
       \    for (int j = 0; j < 4; j++)\n      grid[i][j] = i * 4 + j;\n\
       \  return grid[2][3];\n}"
  in
  let r = Pdt_tau.Interp.run prog in
  Alcotest.(check int) "2-D array" 11 r.exit_code

let test_string_escapes_roundtrip () =
  let tu = parse_ok {|const char *s = "line1\nline2\ttab \"quoted\"";|} in
  match tu.tu_decls with
  | [ { d = DVar { v_init = EqInit { e = StringE s; _ }; _ }; _ } ] ->
      Alcotest.(check string) "cooked value" "line1\nline2\ttab \"quoted\"" s
  | _ -> Alcotest.fail "expected string var"

let test_error_recovery () =
  (* a broken declaration must not prevent later ones from parsing *)
  let tu, diags = parse "int = 4;\nint ok() { return 1; }\n" in
  Alcotest.(check bool) "errors reported" true (Diag.has_errors diags);
  let names =
    List.filter_map
      (fun d ->
        match d.d with DFunction f -> Some (qual_name_to_string f.f_name) | _ -> None)
      tu.tu_decls
  in
  Alcotest.(check bool) "recovered to ok()" true (List.mem "ok" names)

let test_deep_expression_nesting () =
  let depth = 200 in
  let open Buffer in
  let b = create 1024 in
  add_string b "int main() { return ";
  for _ = 1 to depth do add_string b "(1 + " done;
  add_string b "0";
  for _ = 1 to depth do add_string b ")" done;
  add_string b "; }";
  let prog = compile_ok (contents b) in
  let r = Pdt_tau.Interp.run prog in
  Alcotest.(check int) "deep nesting" 200 r.exit_code

let test_many_toplevel_decls () =
  let b = Buffer.create 4096 in
  for i = 0 to 299 do
    Buffer.add_string b (Printf.sprintf "int f%d() { return %d; }\n" i i)
  done;
  let tu = parse_ok (Buffer.contents b) in
  Alcotest.(check int) "300 decls" 300 (List.length tu.tu_decls)

let suite =
  [ Alcotest.test_case "triple-nested templates" `Quick test_triple_nested_templates;
    Alcotest.test_case ">> split vs shift" `Quick test_gtgt_everywhere;
    Alcotest.test_case "parenthesized > in template arg" `Quick
      test_template_arg_expression_gt;
    Alcotest.test_case "comments inside declarations" `Quick test_comments_inside_decls;
    Alcotest.test_case "cv/pointer combinations" `Quick test_cv_pointer_combinations;
    Alcotest.test_case "chained else-if" `Quick test_chained_else_if;
    Alcotest.test_case "anonymous namespace" `Quick test_anonymous_namespace;
    Alcotest.test_case "extern C block" `Quick test_extern_c_block;
    Alcotest.test_case "operator()/!=/++" `Quick test_operator_arrow_and_call;
    Alcotest.test_case "T() in ctor initializers" `Quick
      test_constructor_with_default_template_arg_value;
    Alcotest.test_case "multidimensional arrays" `Quick test_multidim_arrays;
    Alcotest.test_case "string escapes" `Quick test_string_escapes_roundtrip;
    Alcotest.test_case "error recovery" `Quick test_error_recovery;
    Alcotest.test_case "deep expression nesting" `Quick test_deep_expression_nesting;
    Alcotest.test_case "many top-level decls" `Quick test_many_toplevel_decls ]
