(* Unit tests for the C++ lexer. *)

open Pdt_util
open Pdt_lex

let lex src =
  let diags = Diag.create () in
  let toks = Lexer.tokenize ~diags ~file:"t.cpp" src in
  (toks, diags)

let kinds src = List.map (fun (t : Token.tok) -> t.tok) (fst (lex src))

let spellings src = List.map Token.spelling (kinds src)

let check_spellings msg src expected =
  Alcotest.(check (list string)) msg expected (spellings src)

let test_idents_keywords () =
  check_spellings "mix" "class Stack int foo _bar x9"
    [ "class"; "Stack"; "int"; "foo"; "_bar"; "x9" ];
  match kinds "class Stack" with
  | [ Token.Kw "class"; Token.Ident "Stack" ] -> ()
  | _ -> Alcotest.fail "keyword/ident classification"

let test_numbers () =
  (match kinds "42 0x1F 3.14 1e10 2.5e-3 10L 7u 1.5f" with
   | [ Token.IntLit (_, 42L); Token.IntLit (_, 0x1FL); Token.FloatLit (_, f1);
       Token.FloatLit (_, f2); Token.FloatLit (_, f3); Token.IntLit (_, 10L);
       Token.IntLit (_, 7L); Token.FloatLit (_, f4) ] ->
       Alcotest.(check (float 1e-9)) "pi" 3.14 f1;
       Alcotest.(check (float 1e0)) "1e10" 1e10 f2;
       Alcotest.(check (float 1e-9)) "exp" 2.5e-3 f3;
       Alcotest.(check (float 1e-9)) "f suffix" 1.5 f4
   | ts ->
       Alcotest.failf "wrong tokens: %s"
         (String.concat " " (List.map Token.describe ts)))

let test_strings_chars () =
  (match kinds {|"hello" 'a' '\n' "tab\there"|} with
   | [ Token.StringLit (_, "hello"); Token.CharLit (_, 97); Token.CharLit (_, 10);
       Token.StringLit (_, "tab\there") ] -> ()
   | ts ->
       Alcotest.failf "wrong tokens: %s"
         (String.concat " " (List.map Token.describe ts)))

let test_punctuators () =
  check_spellings "maximal munch" "a<<=b >>= -> ->* ... :: ++ -- << >> <= >= == != && ||"
    [ "a"; "<<="; "b"; ">>="; "->"; "->*"; "..."; "::"; "++"; "--"; "<<"; ">>";
      "<="; ">="; "=="; "!="; "&&"; "||" ];
  check_spellings "angle brackets kept merged" "vector<Stack<int>> v"
    [ "vector"; "<"; "Stack"; "<"; "int"; ">>"; "v" ]

let test_comments () =
  check_spellings "line comment" "a // comment here\nb" [ "a"; "b" ];
  check_spellings "block comment" "a /* x\ny */ b" [ "a"; "b" ];
  check_spellings "comment inside expr" "1 +/*c*/ 2" [ "1"; "+"; "2" ]

let test_positions () =
  let toks, _ = lex "ab cd\n  ef" in
  let locs = List.map (fun (t : Token.tok) -> (t.loc.Srcloc.line, t.loc.Srcloc.col)) toks in
  Alcotest.(check (list (pair int int))) "positions" [ (1, 1); (1, 4); (2, 3) ] locs;
  let bols = List.map (fun (t : Token.tok) -> t.bol) toks in
  Alcotest.(check (list bool)) "bol flags" [ true; false; true ] bols

let test_line_splice () =
  check_spellings "backslash-newline" "foo\\\nbar" [ "foo"; "bar" ];
  let toks, _ = lex "#define X \\\n 1\nY" in
  (* the spliced line keeps X and 1 on one logical line for the PP, but the
     lexer just skips the splice *)
  Alcotest.(check int) "token count" 5 (List.length toks)

let test_unterminated () =
  let diags = Diag.create () in
  (try ignore (Lexer.tokenize ~diags ~file:"t.cpp" "\"abc") with Diag.Error _ -> ());
  Alcotest.(check bool) "error recorded" true (Diag.has_errors diags)

let test_text_reconstruction () =
  let toks, _ = lex "template <class T> class Stack { };" in
  Alcotest.(check string) "roundtrip text"
    "template <class T> class Stack { };"
    (Token.text_of_toks toks)

let suite =
  [ Alcotest.test_case "idents and keywords" `Quick test_idents_keywords;
    Alcotest.test_case "numeric literals" `Quick test_numbers;
    Alcotest.test_case "string and char literals" `Quick test_strings_chars;
    Alcotest.test_case "punctuators" `Quick test_punctuators;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "source positions" `Quick test_positions;
    Alcotest.test_case "line splices" `Quick test_line_splice;
    Alcotest.test_case "unterminated literal" `Quick test_unterminated;
    Alcotest.test_case "text reconstruction" `Quick test_text_reconstruction ]
