(* Direct IL unit tests: interning, naming, queries, stats. *)

open Pdt_il.Il

let test_type_interning () =
  let p = create_program () in
  let i1 = ty_int p in
  let i2 = ty_int p in
  Alcotest.(check int) "builtins interned" i1 i2;
  let ptr1 = intern_type p (Tptr i1) in
  let ptr2 = intern_type p (Tptr i2) in
  Alcotest.(check int) "derived types interned" ptr1 ptr2;
  Alcotest.(check bool) "distinct types distinct" true (ptr1 <> i1)

let test_type_names () =
  let p = create_program () in
  let int_ = ty_int p in
  let cint = intern_type p (Tqual { base = int_; q_const = true; q_volatile = false }) in
  let cint_ref = intern_type p (Tref cint) in
  Alcotest.(check string) "const int &" "const int &" (type_name p cint_ref);
  let arr = intern_type p (Tarray (intern_type p (Tarray (int_, Some 4)), Some 3)) in
  Alcotest.(check string) "nested array" "int [4] [3]" (type_name p arr);
  let fn =
    intern_type p
      (Tfunc { rett = ty_bool p; params = [ (cint_ref, false) ]; ellipsis = false;
               cqual = true; exceptions = None })
  in
  Alcotest.(check string) "member function type" "bool (const int &) const"
    (type_name p fn);
  let variadic =
    intern_type p
      (Tfunc { rett = ty_void p; params = []; ellipsis = true; cqual = false;
               exceptions = None })
  in
  Alcotest.(check string) "variadic" "void (...)" (type_name p variadic)

let test_strip_and_class_of () =
  let p = create_program () in
  let c = add_class p ~name:"K" ~kind:Ckind_class ~loc:Pdt_util.Srcloc.dummy
      ~parent:Pnone ~access:Acc_na in
  let cls = intern_type p (Tclass c.cl_id) in
  let wrapped =
    intern_type p
      (Tref (intern_type p (Tqual { base = cls; q_const = true; q_volatile = false })))
  in
  Alcotest.(check int) "strip_qual_ref" cls (strip_qual_ref p wrapped);
  Alcotest.(check (option int)) "class_of_type through ptr" (Some c.cl_id)
    (class_of_type p (intern_type p (Tptr cls)))

let test_full_names () =
  let p = create_program () in
  let ns = add_namespace p ~name:"outer" ~loc:Pdt_util.Srcloc.dummy ~parent:Pnone in
  let inner = add_namespace p ~name:"inner" ~loc:Pdt_util.Srcloc.dummy
      ~parent:(Pnamespace ns.na_id) in
  let c = add_class p ~name:"C" ~kind:Ckind_class ~loc:Pdt_util.Srcloc.dummy
      ~parent:(Pnamespace inner.na_id) ~access:Acc_na in
  let sig_ = intern_type p (Tfunc { rett = ty_void p; params = []; ellipsis = false;
                                    cqual = false; exceptions = None }) in
  let r = add_routine p ~name:"m" ~loc:Pdt_util.Srcloc.dummy ~parent:(Pclass c.cl_id)
      ~access:Pub ~sig_ in
  Alcotest.(check string) "class full name" "outer::inner::C" (class_full_name p c);
  Alcotest.(check string) "routine full name" "outer::inner::C::m"
    (routine_full_name p r)

let test_overloads_and_member_lookup () =
  let p = create_program () in
  let c = add_class p ~name:"C" ~kind:Ckind_class ~loc:Pdt_util.Srcloc.dummy
      ~parent:Pnone ~access:Acc_na in
  let mk_sig args =
    intern_type p
      (Tfunc { rett = ty_void p; params = List.map (fun a -> (a, false)) args;
               ellipsis = false; cqual = false; exceptions = None })
  in
  let r1 = add_routine p ~name:"f" ~loc:Pdt_util.Srcloc.dummy ~parent:(Pclass c.cl_id)
      ~access:Pub ~sig_:(mk_sig []) in
  let r2 = add_routine p ~name:"f" ~loc:Pdt_util.Srcloc.dummy ~parent:(Pclass c.cl_id)
      ~access:Pub ~sig_:(mk_sig [ ty_int p ]) in
  c.cl_funcs <- [ r1.ro_id; r2.ro_id ];
  Alcotest.(check int) "both overloads found" 2
    (List.length (find_member_funcs p c "f"));
  Alcotest.(check bool) "overload keys differ" true
    (overload_key p r1 <> overload_key p r2)

let test_calls_order () =
  let p = create_program () in
  let sig_ = intern_type p (Tfunc { rett = ty_void p; params = []; ellipsis = false;
                                    cqual = false; exceptions = None }) in
  let a = add_routine p ~name:"a" ~loc:Pdt_util.Srcloc.dummy ~parent:Pnone
      ~access:Acc_na ~sig_ in
  let b = add_routine p ~name:"b" ~loc:Pdt_util.Srcloc.dummy ~parent:Pnone
      ~access:Acc_na ~sig_ in
  (* ro_calls stores reversed; calls returns source order *)
  a.ro_calls <- [ { cs_callee = b.ro_id; cs_virtual = false; cs_loc = Pdt_util.Srcloc.dummy } ];
  a.ro_calls <-
    { cs_callee = a.ro_id; cs_virtual = false; cs_loc = Pdt_util.Srcloc.dummy } :: a.ro_calls;
  let order = List.map (fun cs -> cs.cs_callee) (calls a) in
  Alcotest.(check (list int)) "source order" [ b.ro_id; a.ro_id ] order

let test_stats_fields () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  let s = stats c.Pdt.program in
  Alcotest.(check bool) "defined <= routines" true (s.n_defined_routines <= s.n_routines);
  Alcotest.(check bool) "instantiated <= classes" true
    (s.n_instantiated_classes <= s.n_classes);
  Alcotest.(check int) "files" 6 s.n_files

let suite =
  [ Alcotest.test_case "type interning" `Quick test_type_interning;
    Alcotest.test_case "type names" `Quick test_type_names;
    Alcotest.test_case "strip/class_of helpers" `Quick test_strip_and_class_of;
    Alcotest.test_case "full names through parents" `Quick test_full_names;
    Alcotest.test_case "overloads and member lookup" `Quick test_overloads_and_member_lookup;
    Alcotest.test_case "call-site ordering" `Quick test_calls_order;
    Alcotest.test_case "stats fields" `Quick test_stats_fields ]
