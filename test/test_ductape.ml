(* DUCTAPE tests: the Figure 4 hierarchy, navigation, trees, merge. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

let stack_d () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  D.index (Pdt_analyzer.Analyzer.run c.Pdt.program)

let test_hierarchy_predicates () =
  let d = stack_d () in
  let items = D.items d in
  List.iter
    (fun it ->
      (* pdbFile is a pdbSimpleItem but not a pdbItem *)
      (match it with
       | D.File _ ->
           Alcotest.(check bool) "file is not item" false (D.is_item it);
           Alcotest.(check bool) "file has no location" true (D.item_location it = None)
       | _ -> Alcotest.(check bool) "non-file is item" true (D.is_item it));
      (* pdbFatItems: templates, namespaces, classes, routines *)
      (match it with
       | D.Template _ | D.Namespace _ | D.Class _ | D.Routine _ ->
           Alcotest.(check bool) "fat item" true (D.is_fat_item it)
       | D.File _ | D.Macro _ | D.Type _ ->
           Alcotest.(check bool) "not fat" false (D.is_fat_item it));
      (* pdbTemplateItems: classes and routines only *)
      match it with
      | D.Class _ | D.Routine _ ->
          Alcotest.(check bool) "template item" true (D.is_template_item it)
      | _ -> Alcotest.(check bool) "not template item" false (D.is_template_item it))
    items;
  Alcotest.(check bool) "has items" true (List.length items > 20)

let test_template_item_list () =
  (* list<pdbTemplateItem> can hold all template instantiations *)
  let d = stack_d () in
  let insts = D.template_items d in
  let names = List.map (D.item_name d) insts in
  Alcotest.(check bool) "Stack<int> in list" true (List.mem "Stack<int>" names);
  Alcotest.(check bool) "push instantiation in list" true (List.mem "push" names);
  List.iter
    (fun it ->
      Alcotest.(check bool) "every entry has template_of" true
        (D.item_template_of it <> None))
    insts

let test_callees_callers () =
  let d = stack_d () in
  let main = List.find (fun (r : P.routine_item) -> r.ro_name = "main") (D.routines d) in
  let callees = D.callees d main in
  Alcotest.(check bool) "main has callees" true (List.length callees >= 5);
  let push =
    List.find (fun (r : P.routine_item) -> r.ro_name = "push") (D.routines d)
  in
  let callers = D.callers d push in
  Alcotest.(check (list string)) "push called by main" [ "main" ]
    (List.map (fun (r : P.routine_item) -> r.ro_name) callers)

let test_include_tree () =
  let d = stack_d () in
  match D.include_tree d with
  | Some t ->
      Alcotest.(check string) "root" "TestStackAr.cpp" t.D.node.P.so_name;
      let names = List.map (fun c -> c.D.node.P.so_name) t.D.children in
      Alcotest.(check bool) "StackAr.h child" true (List.mem "StackAr.h" names)
  | None -> Alcotest.fail "no include tree"

let test_call_tree () =
  let d = stack_d () in
  match D.call_tree d with
  | Some t ->
      Alcotest.(check string) "rooted at main" "main" t.D.node.P.ro_name;
      Alcotest.(check bool) "has children" true (t.D.children <> [])
  | None -> Alcotest.fail "no call tree"

let test_class_hierarchy_forest () =
  let src =
    "class A {}; class B : public A {}; class C : public B {}; class D : public A {};"
  in
  let c = Pdt.compile_string src in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let forest = D.class_hierarchy d in
  let a = List.find (fun t -> t.D.node.P.cl_name = "A") forest in
  let kids = List.map (fun t -> t.D.node.P.cl_name) a.D.children in
  Alcotest.(check (list string)) "A's children" [ "B"; "D" ] kids;
  let b = List.find (fun t -> t.D.node.P.cl_name = "B") a.D.children in
  Alcotest.(check (list string)) "B's children" [ "C" ]
    (List.map (fun t -> t.D.node.P.cl_name) b.D.children)

(* ---------------- merge ---------------- *)

let compile_pdb vfs file =
  let c = Pdt.compile ~vfs file in
  if Pdt_util.Diag.has_errors c.Pdt.diags then
    Alcotest.failf "compile errors in %s:\n%s" file (Pdt_util.Diag.to_string c.Pdt.diags);
  Pdt_analyzer.Analyzer.run c.Pdt.program

let test_merge_dedups_instantiations () =
  let vfs, files = Pdt_workloads.Generator.project_vfs ~n_tus:3 () in
  let pdbs = List.map (compile_pdb vfs) files in
  let merged = D.merge pdbs in
  (* every class name appears exactly once *)
  let names =
    List.map (fun (c : P.class_item) -> P.class_full_name merged c) merged.P.classes
  in
  let sorted = List.sort compare names in
  let rec dups = function
    | a :: (b :: _ as rest) -> if a = b then a :: dups rest else dups rest
    | _ -> []
  in
  Alcotest.(check (list string)) "no duplicate classes" [] (dups sorted);
  (* merged is smaller than the concatenation *)
  let before = List.fold_left (fun a p -> a + P.item_count p) 0 pdbs in
  Alcotest.(check bool) "smaller than sum" true (P.item_count merged < before)

let test_merge_declaration_definition () =
  (* TU1 declares f, TU2 defines it: merged PDB has the definition *)
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.add_file vfs "f.h" "int f(int x);\n";
  Pdt_util.Vfs.add_file vfs "a.cpp" "#include \"f.h\"\nint use() { return f(1); }\n";
  Pdt_util.Vfs.add_file vfs "b.cpp" "#include \"f.h\"\nint f(int x) { return x + 1; }\n";
  let pa = compile_pdb vfs "a.cpp" and pb = compile_pdb vfs "b.cpp" in
  let merged = D.merge [ pa; pb ] in
  let fs =
    List.filter (fun (r : P.routine_item) -> r.ro_name = "f") merged.P.routines
  in
  Alcotest.(check int) "one f" 1 (List.length fs);
  Alcotest.(check bool) "defined" true (List.hd fs).P.ro_defined

let test_merge_consistency () =
  let vfs, files = Pdt_workloads.Generator.project_vfs ~n_tus:4 () in
  let pdbs = List.map (compile_pdb vfs) files in
  let merged = D.merge pdbs in
  let d = D.index merged in
  Alcotest.(check (list string)) "no dangling references" []
    (Pdt_tools.Pdbconv.check d)

let test_merge_roundtrip () =
  let vfs, files = Pdt_workloads.Generator.project_vfs ~n_tus:2 () in
  let pdbs = List.map (compile_pdb vfs) files in
  let merged = D.merge pdbs in
  let s = Pdt_pdb.Pdb_write.to_string merged in
  let s' = Pdt_pdb.Pdb_write.to_string (Pdt_pdb.Pdb_parse.of_string s) in
  Alcotest.(check string) "merged pdb roundtrips" s s'

let test_merge_idempotent () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let pdb = compile_pdb vfs Pdt_workloads.Stack.main_file in
  let m1 = D.merge [ pdb ] in
  let m2 = D.merge [ m1; m1 ] in
  Alcotest.(check int) "merge with self adds nothing" (P.item_count m1)
    (P.item_count m2)

let suite =
  [ Alcotest.test_case "Figure 4 hierarchy predicates" `Quick test_hierarchy_predicates;
    Alcotest.test_case "template item list" `Quick test_template_item_list;
    Alcotest.test_case "callees and callers" `Quick test_callees_callers;
    Alcotest.test_case "include tree" `Quick test_include_tree;
    Alcotest.test_case "call tree" `Quick test_call_tree;
    Alcotest.test_case "class hierarchy forest" `Quick test_class_hierarchy_forest;
    Alcotest.test_case "merge dedups instantiations" `Quick test_merge_dedups_instantiations;
    Alcotest.test_case "merge decl + def" `Quick test_merge_declaration_definition;
    Alcotest.test_case "merge reference consistency" `Quick test_merge_consistency;
    Alcotest.test_case "merge output roundtrips" `Quick test_merge_roundtrip;
    Alcotest.test_case "merge idempotent" `Quick test_merge_idempotent ]
