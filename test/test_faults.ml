(* Robustness tests: the deterministic fault-injection layer
   (Pdt_util.Fault) and the crash-safety invariants the build pipeline
   must uphold under it.

   The headline is the injection matrix: for a seeded sweep of >= 200
   injection schedules (site set x rate x seed x domain count), a project
   build under fire must either

     - succeed, with a merged PDB byte-identical to the fault-free build,
     - or fail with a structured per-unit diagnostic,

   and in both cases leave no escaped exception, no residual .tmp.* file
   in the cache directory, and no corrupt entry that a later build would
   trust (pinned by a fault-free rebuild over the surviving cache).

   Around the matrix: direct coverage for the self-healing cache
   (truncated / bit-flipped / wrong-key / wrong-version entries are
   quarantined and rebuilt), the retry policy (transient failures retry,
   deterministic diagnostics do not), fail-fast vs keep-going, and the
   Scheduler.parallel_map edge cases. *)

module B = Pdt_build.Build
module C = Pdt_build.Cache
module S = Pdt_build.Scheduler
module F = Pdt_util.Fault
module G = Pdt_workloads.Generator
module P = Pdt_pdb.Pdb

let pdb_string = Pdt_pdb.Pdb_write.to_string

(* a unique, not-yet-created directory for a test's cache *)
let fresh_dir () =
  let f = Filename.temp_file "pdt-fault-test" ".cache" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* recursive: v4 caches shard entries under objects/<hh>/, and a flat
   copy would seed an empty warm template *)
let rec copy_dir src dst =
  C.mkdir_p dst;
  Array.iter
    (fun f ->
      let s = Filename.concat src f in
      let d = Filename.concat dst f in
      if Sys.is_directory s then copy_dir s d
      else begin
        let ic = open_in_bin s in
        let c = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let oc = open_out_bin d in
        output_string oc c;
        close_out oc
      end)
    (Sys.readdir src)

(* every regular file under [dir], any depth *)
let rec walk_files dir acc =
  Array.fold_left
    (fun acc f ->
      let p = Filename.concat dir f in
      if Sys.is_directory p then walk_files p acc else p :: acc)
    acc (Sys.readdir dir)

(* keep the matrix project small: n_tus + 1 = 4 units per build *)
let n_tus = 3

let project () = G.project_vfs ~n_tus ()

let build ?cache_dir ?(retries = 2) ?(fail_fast = false) ~domains
    (vfs, sources) =
  B.build
    ~options:
      { B.default_options with domains; cache_dir; retries; fail_fast }
    ~vfs sources

(* fault-free sequential merged bytes: the byte-identity reference *)
let reference =
  lazy (pdb_string (build ~domains:1 (project ())).B.merged)

let perf_calls name =
  match
    List.find_opt (fun (n, _, _) -> n = name) (Pdt_util.Perf.snapshot ())
  with
  | Some (_, calls, _) -> calls
  | None -> 0

(* ---------------- the injection matrix ---------------- *)

(* Which cache state a site set needs to actually fire: write-path sites
   need stores (cold cache), read-path sites need entries to load (warm
   cache seeded from a fault-free template). *)
type start = Cold | Warm

let site_sets =
  [ ("vfs.read", Some [ "vfs.read" ], Warm);
    ("cache.read", Some [ "cache.read" ], Warm);
    ("cache.load.corrupt", Some [ "cache.load.corrupt" ], Warm);
    ("pdb.parse", Some [ "pdb.parse" ], Warm);
    ("scheduler.worker", Some [ "scheduler.worker" ], Warm);
    ("cache.write.torn", Some [ "cache.write.torn" ], Cold);
    ("cache.write.crash", Some [ "cache.write.crash" ], Cold);
    (* crash mid define-use pass: fires on the compile path, so a cold
       cache is required; the invariant is the usual one — retry to the
       reference bytes or a structured diagnostic, never a half-written
       attribute *)
    ("analyzer.du", Some [ "analyzer.du" ], Cold);
    ("all", None, Cold) ]

let rates = [ 0.05; 0.25 ]

let matrix_domains =
  (* CI sweeps the matrix under forced domain counts; locally both the
     sequential and a parallel schedule run *)
  match Option.bind (Sys.getenv_opt "PDT_TEST_DOMAINS") int_of_string_opt with
  | Some n when n > 0 -> [ n ]
  | _ -> [ 1; 4 ]

(* 9 site sets x 2 rates x seeds x domain counts; sized so a sweep is
   always >= 200 schedules even when CI forces a single domain count *)
let seeds =
  List.init (if List.length matrix_domains = 1 then 13 else 7) (fun i -> i + 1)

let no_residual_tmp dir =
  List.for_all
    (fun path ->
      (* a live entry is objects/<hh>/<key>.pdb; quarantine/ holds failed
         entries; locks/ holds shard locks; nothing else may survive a
         build — checked recursively since v4 shards the entry tree *)
      let f = Filename.basename path in
      let has_sub sub s =
        let ls = String.length sub and ln = String.length s in
        let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
        go 0
      in
      not (has_sub ".tmp." f))
    (walk_files dir [])

(* Run one schedule and return how many faults it injected.  [F.disarm]
   clears the injection counter, so it is captured inside the armed
   window. *)
let check_schedule ~template ~label ~sites ~start ~rate ~seed ~domains () =
  let dir = fresh_dir () in
  (match start with Warm -> copy_dir template dir | Cold -> ());
  let fail fmt = Printf.ksprintf (fun m -> Alcotest.fail m) fmt in
  let injected = ref 0 in
  let under_fire =
    try
      F.with_faults ?sites ~seed ~rate (fun () ->
          let r = build ~cache_dir:dir ~domains (project ()) in
          injected := F.injected_count ();
          r)
    with e ->
      F.disarm ();
      fail "%s: escaped exception %s" label (Printexc.to_string e)
  in
  (* 1. every unit resolved to a structured status; failures carry a
     nonempty diagnostic and name their unit *)
  List.iter
    (fun (u : B.unit_result) ->
      match u.B.status with
      | B.Compiled | B.Cached -> ()
      | B.Failed msg ->
          if msg = "" then fail "%s: empty diagnostic for %s" label u.B.source
      | B.Degraded _ ->
          (* I/O faults must surface as Failed, never as a partial PDB *)
          fail "%s: degraded unit on well-formed input" label
      | B.Skipped -> fail "%s: skipped unit without fail-fast" label)
    under_fire.B.units;
  (* 2. success => byte-identical to the fault-free build *)
  if under_fire.B.failed = 0 then begin
    let got = pdb_string under_fire.B.merged in
    if got <> Lazy.force reference then
      fail "%s: clean build diverged from the fault-free PDB" label
  end;
  (* 3. no residual temp file, whatever happened *)
  if Sys.file_exists dir && not (no_residual_tmp dir) then
    fail "%s: residual .tmp.* file in cache dir" label;
  (* 4. the surviving cache serves no corrupt entry: a fault-free build
     over it must converge to the reference bytes *)
  let recovered =
    try build ~cache_dir:dir ~domains:1 (project ())
    with e -> fail "%s: recovery build raised %s" label (Printexc.to_string e)
  in
  if recovered.B.failed <> 0 then
    fail "%s: recovery build failed over the surviving cache" label;
  if pdb_string recovered.B.merged <> Lazy.force reference then
    fail "%s: recovery build diverged from the fault-free PDB" label;
  rm_rf dir;
  !injected

let test_fault_matrix () =
  (* seed a warm-cache template once per run *)
  let template = fresh_dir () in
  let seeded = build ~cache_dir:template ~domains:1 (project ()) in
  Alcotest.(check int) "template build clean" 0 seeded.B.failed;
  let schedules = ref 0 in
  let injected_total = ref 0 in
  List.iter
    (fun (name, sites, start) ->
      List.iter
        (fun rate ->
          List.iter
            (fun seed ->
              List.iter
                (fun domains ->
                  incr schedules;
                  let label =
                    Printf.sprintf "%s rate=%.2f seed=%d domains=%d" name rate
                      seed domains
                  in
                  injected_total :=
                    !injected_total
                    + check_schedule ~template ~label ~sites ~start ~rate ~seed
                        ~domains ())
                matrix_domains)
            seeds)
        rates)
    site_sets;
  rm_rf template;
  Alcotest.(check bool)
    (Printf.sprintf "matrix swept >= 200 schedules (ran %d)" !schedules)
    true (!schedules >= 200);
  Alcotest.(check bool)
    (Printf.sprintf "the sweep was not vacuous (%d faults injected)"
       !injected_total)
    true
    (!injected_total > 0)

(* ---------------- faults mid-incremental-build ---------------- *)

module I = Pdt_build.Incremental

(* The delta-merge invariant under fire: an incremental rebuild hit by
   faults mid-build must never produce a half-spliced PDB.  Either the
   delta path completes (bytes identical to the fault-free build of the
   edited tree), or it falls back to a full remerge cleanly, or units
   report structured failures — but a *successful* result always carries
   exactly the from-scratch bytes, and the surviving cache/state serve a
   convergent fault-free rebuild afterwards. *)

let edited_project () =
  let vfs, sources = project () in
  (match Pdt_util.Vfs.read_raw vfs "tu1.cpp" with
   | Some src ->
       Pdt_util.Vfs.add_file vfs "tu1.cpp"
         (src ^ "\nint fault_matrix_edit() { return 42; }\n")
   | None -> Alcotest.fail "tu1.cpp missing from generated project");
  (vfs, sources)

let edited_reference =
  lazy (pdb_string (build ~domains:1 (edited_project ())).B.merged)

let incr_build ~cache_dir ~domains (vfs, sources) =
  I.build
    ~options:
      { I.default_options with
        build =
          { B.default_options with domains; cache_dir = Some cache_dir } }
    ~vfs sources

let check_incremental_schedule ~label ~sites ~rate ~seed ~domains () =
  let dir = fresh_dir () in
  let fail fmt = Printf.ksprintf (fun m -> Alcotest.fail m) fmt in
  (* warm, fault-free base build: unit cache + group partials + state *)
  let base = incr_build ~cache_dir:dir ~domains (project ()) in
  if base.I.reanalyzed = 0 then fail "%s: base build reused everything" label;
  let injected = ref 0 in
  (* build the edited tree before arming: Vfs.read_raw is itself a fault
     site, and the harness must not trip it *)
  let edited = edited_project () in
  let under_fire =
    try
      F.with_faults ?sites ~seed ~rate (fun () ->
          let r = incr_build ~cache_dir:dir ~domains edited in
          injected := F.injected_count ();
          r)
    with e ->
      F.disarm ();
      fail "%s: escaped exception %s" label (Printexc.to_string e)
  in
  let failed =
    List.length
      (List.filter
         (fun u ->
           match u.I.disposition with I.Failed _ -> true | _ -> false)
         under_fire.I.units)
  in
  (* 1. the stats always partition the units *)
  if under_fire.I.reanalyzed + under_fire.I.reused
     <> List.length under_fire.I.units
  then fail "%s: reanalyzed + reused <> total" label;
  (* 2. success => byte-identical to the fault-free edited build — a
     half-spliced merge (stale contribution left in, new one lost, group
     double-counted) can never masquerade as success *)
  if failed = 0 then begin
    let got = pdb_string under_fire.I.merged in
    if got <> Lazy.force edited_reference then
      fail "%s: clean incremental build diverged (half-spliced delta?)" label
  end;
  (* 3. no residual temp file from entries, group partials or the state *)
  if Sys.file_exists dir && not (no_residual_tmp dir) then
    fail "%s: residual .tmp.* file in cache dir" label;
  (* 4. the surviving cache + state serve a convergent fault-free rebuild *)
  let recovered =
    try incr_build ~cache_dir:dir ~domains:1 (edited_project ())
    with e -> fail "%s: recovery raised %s" label (Printexc.to_string e)
  in
  if pdb_string recovered.I.merged <> Lazy.force edited_reference then
    fail "%s: recovery diverged from the fault-free PDB" label;
  rm_rf dir;
  !injected

let test_incremental_fault_matrix () =
  let schedules = ref 0 and injected_total = ref 0 in
  List.iter
    (fun (name, sites, _start) ->
      List.iter
        (fun seed ->
          List.iter
            (fun domains ->
              incr schedules;
              let label =
                Printf.sprintf "incr %s seed=%d domains=%d" name seed domains
              in
              injected_total :=
                !injected_total
                + check_incremental_schedule ~label ~sites ~rate:0.25 ~seed
                    ~domains ())
            matrix_domains)
        [ 1; 2; 3 ])
    site_sets;
  Alcotest.(check bool)
    (Printf.sprintf "incremental sweep ran %d schedules" !schedules)
    true (!schedules >= 16);
  Alcotest.(check bool)
    (Printf.sprintf "the sweep was not vacuous (%d faults injected)"
       !injected_total)
    true (!injected_total > 0)

(* a fault that kills the whole delta path must surface as the fallback
   counter plus a full-remerge result, not as an error *)
let test_incremental_fallback_counted () =
  let dir = fresh_dir () in
  ignore (incr_build ~cache_dir:dir ~domains:1 (project ()));
  let before = perf_calls "incr.fallback" in
  (* rate 1.0 on vfs.read: the planner's very first fingerprint read
     faults, which aborts the delta path before any per-unit retry *)
  let edited = edited_project () in
  let r =
    F.with_faults ~sites:[ "vfs.read" ] ~seed:7 ~rate:1.0 ~max_faults:1
      (fun () -> incr_build ~cache_dir:dir ~domains:1 edited)
  in
  Alcotest.(check bool) "fallback taken" true r.I.fallback;
  Alcotest.(check bool) "fallback counted" true
    (perf_calls "incr.fallback" > before);
  Alcotest.(check string) "fallback result is the full-remerge bytes"
    (Lazy.force edited_reference)
    (pdb_string r.I.merged);
  rm_rf dir

(* ---------------- retry policy ---------------- *)

let test_retry_recovers_transient () =
  let before = perf_calls "build.retry" in
  let r =
    F.with_faults ~sites:[ "vfs.read" ] ~seed:1 ~rate:1.0 ~max_faults:1
      (fun () -> build ~domains:1 (project ()))
  in
  Alcotest.(check int) "no failures after retry" 0 r.B.failed;
  Alcotest.(check string) "merged PDB identical" (Lazy.force reference)
    (pdb_string r.B.merged);
  Alcotest.(check bool) "a retry was counted" true
    (perf_calls "build.retry" > before)

let test_retries_are_bounded () =
  (* every vfs read fails: each unit exhausts 1 + retries attempts and
     reports a structured transient diagnostic — no crash, no hang *)
  let r =
    F.with_faults ~sites:[ "vfs.read" ] ~seed:1 ~rate:1.0 (fun () ->
        build ~domains:2 ~retries:1 (project ()))
  in
  Alcotest.(check int) "every unit failed" (n_tus + 1) r.B.failed;
  List.iter
    (fun (_, msg) ->
      Alcotest.(check bool) "diagnostic names the transient" true
        (String.length msg > 0))
    (B.failures r)

let test_deterministic_failure_never_retries () =
  let vfs, sources = project () in
  Pdt_util.Vfs.add_file vfs "broken.cpp" (G.broken_unit ~tu_index:9);
  let before = perf_calls "build.retry" in
  let r = build ~domains:1 (vfs, sources @ [ "broken.cpp" ]) in
  Alcotest.(check int) "one unit degraded" 1 r.B.degraded;
  Alcotest.(check int) "no hard failures" 0 r.B.failed;
  Alcotest.(check int) "compile errors burned no retries" before
    (perf_calls "build.retry")

(* ---------------- fail-fast vs keep-going ---------------- *)

let test_fail_fast_skips_rest () =
  let vfs, sources = project () in
  Pdt_util.Vfs.add_file vfs "broken.cpp" (G.broken_unit ~tu_index:9);
  let r = build ~domains:1 ~fail_fast:true (vfs, "broken.cpp" :: sources) in
  Alcotest.(check int) "one failure" 1 r.B.failed;
  Alcotest.(check int) "everything after it skipped" (n_tus + 1) r.B.skipped;
  Alcotest.(check int) "nothing compiled" 0 r.B.compiled;
  List.iter
    (fun (u : B.unit_result) ->
      match u.B.status with
      | B.Skipped -> Alcotest.(check bool) "skipped has no pdb" true (u.B.pdb = None)
      | _ -> ())
    r.B.units

let test_keep_going_merges_survivors () =
  let vfs, sources = project () in
  Pdt_util.Vfs.add_file vfs "broken.cpp" (G.broken_unit ~tu_index:9);
  let r = build ~domains:1 (vfs, "broken.cpp" :: sources) in
  Alcotest.(check int) "the broken unit degraded" 1 r.B.degraded;
  Alcotest.(check int) "no hard failures" 0 r.B.failed;
  Alcotest.(check int) "no skips" 0 r.B.skipped;
  (* the merged PDB carries the partial unit: marked incomplete, and at
     least everything the clean reference build has *)
  Alcotest.(check bool) "merged PDB marked incomplete" true
    r.B.merged.Pdt_pdb.Pdb.incomplete;
  let ref_pdb = Pdt_pdb.Pdb_parse.of_string (Lazy.force reference) in
  Alcotest.(check bool) "merge contains at least the reference items" true
    (Pdt_pdb.Pdb.item_count r.B.merged >= Pdt_pdb.Pdb.item_count ref_pdb)

(* ---------------- the self-healing cache ---------------- *)

(* Store one entry, corrupt it with [mutate path], then check: the load is
   a miss, the live entry is gone (quarantined, not re-probed), the
   quarantine holds it, and a re-store serves cleanly again. *)
let corruption_case name mutate () =
  let dir = fresh_dir () in
  let vfs, sources = project () in
  let source = List.hd sources in
  let pdb =
    Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs source).Pdt.program
  in
  let cache = C.create ~dir () in
  let key = C.key ~vfs ~options:"opts" source in
  C.store cache key pdb;
  (match C.load cache key with
  | Some _ -> ()
  | None -> Alcotest.fail (name ^ ": fresh entry must load"));
  let path = C.entry_path cache key in
  mutate path;
  Alcotest.(check bool) (name ^ " is a miss") true (C.load cache key = None);
  Alcotest.(check bool) (name ^ " left no live entry") false
    (Sys.file_exists path);
  Alcotest.(check bool) (name ^ " was quarantined") true
    (Sys.file_exists
       (Filename.concat (C.quarantine_dir cache) (Filename.basename path)));
  C.store cache key pdb;
  (match C.load cache key with
  | Some loaded ->
      Alcotest.(check string) (name ^ ": rebuilt entry loads cleanly")
        (pdb_string pdb) (pdb_string loaded)
  | None -> Alcotest.fail (name ^ ": rebuilt entry must load"));
  rm_rf dir

let read_file path =
  let ic = open_in_bin path in
  let c = really_input_string ic (in_channel_length ic) in
  close_in ic;
  c

let write_file path c =
  let oc = open_out_bin path in
  output_string oc c;
  close_out oc

let test_corrupt_truncated =
  corruption_case "truncated entry" (fun path ->
      let c = read_file path in
      write_file path (String.sub c 0 (String.length c / 2)))

let test_corrupt_bitflip =
  corruption_case "bit-flipped entry" (fun path ->
      let c = Bytes.of_string (read_file path) in
      let i = Bytes.length c / 2 in
      Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor 0x20));
      write_file path (Bytes.to_string c))

let magic_prefix = Printf.sprintf "PDT-CACHE v%d" C.format_version

let test_corrupt_wrong_version =
  corruption_case "wrong-version entry" (fun path ->
      let c = read_file path in
      (* a structurally perfect entry from a future format version: only
         the version number in the header changes *)
      write_file path
        (Printf.sprintf "PDT-CACHE v%d%s" (C.format_version + 1)
           (String.sub c (String.length magic_prefix)
              (String.length c - String.length magic_prefix))))

let test_corrupt_wrong_key () =
  (* a valid entry misfiled under another unit's key *)
  let dir = fresh_dir () in
  let vfs, sources = project () in
  let s1 = List.hd sources and s2 = List.nth sources 1 in
  let pdb =
    Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs s1).Pdt.program
  in
  let cache = C.create ~dir () in
  let k1 = C.key ~vfs ~options:"opts" s1 in
  let k2 = C.key ~vfs ~options:"opts" s2 in
  C.store cache k1 pdb;
  (* k2 may land in a shard no store has created yet *)
  C.mkdir_p (Filename.dirname (C.entry_path cache k2));
  write_file (C.entry_path cache k2) (read_file (C.entry_path cache k1));
  Alcotest.(check bool) "misfiled entry is a miss" true
    (C.load cache k2 = None);
  Alcotest.(check bool) "misfiled entry quarantined" true
    (Sys.file_exists
       (Filename.concat (C.quarantine_dir cache) (k2 ^ ".pdb")));
  (match C.load cache k1 with
  | Some _ -> ()
  | None -> Alcotest.fail "the correctly-filed entry still loads");
  rm_rf dir

(* PDB-B axis of the corruption matrix: binary (PDB-B) cache entries have
   two lines of defense, and both must hold.  (a) Truncating the entry
   file breaks the digest header, same as for ASCII entries.  (b) An
   entry whose digest is *valid* but whose body is a truncated PDB-B
   container sails past the digest check — the format-sniffing parse is
   the last defense, and it must quarantine (Format_error caught), never
   crash the build. *)
let test_corrupt_truncated_binary () =
  let dir = fresh_dir () in
  let vfs, sources = project () in
  let source = List.hd sources in
  let pdb =
    Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs source).Pdt.program
  in
  let cache = C.create ~dir () in
  let key = C.key ~vfs ~options:"opts" source in
  let body = Pdt_pdb.Pdb_io.to_string Pdt_pdb.Pdb_io.Binary pdb in
  C.store_serialized cache key body;
  (match C.load cache key with
  | Some loaded ->
      Alcotest.(check string) "binary entry loads losslessly"
        (pdb_string pdb) (pdb_string loaded)
  | None -> Alcotest.fail "fresh binary entry must load");
  let path = C.entry_path cache key in
  (* (a) raw file truncation: caught by the digest header *)
  let content = read_file path in
  write_file path (String.sub content 0 (String.length content / 2));
  Alcotest.(check bool) "truncated binary entry is a miss" true
    (C.load cache key = None);
  Alcotest.(check bool) "truncated binary entry quarantined" true
    (Sys.file_exists
       (Filename.concat (C.quarantine_dir cache) (Filename.basename path)));
  (* (b) digest-valid header over a truncated PDB-B body: only the parse
     can catch this one *)
  List.iter
    (fun frac ->
      let cut = String.sub body 0 (String.length body / frac) in
      write_file path
        (C.header key (Pdt_util.Hashutil.string cut) ^ "\n" ^ cut);
      Alcotest.(check bool)
        (Printf.sprintf "1/%d PDB-B body is a miss, not a crash" frac)
        true
        (C.load cache key = None);
      Alcotest.(check bool)
        (Printf.sprintf "1/%d PDB-B body quarantined" frac)
        false (Sys.file_exists path))
    [ 2; 4; 16 ];
  C.store_serialized cache key body;
  (match C.load cache key with
  | Some _ -> ()
  | None -> Alcotest.fail "re-stored binary entry must load");
  rm_rf dir

let test_corrupt_counter_reported () =
  let before = perf_calls "cache.corrupt" in
  corruption_case "counted corruption" (fun path ->
      write_file path "garbage, not a cache entry")
    ();
  Alcotest.(check bool) "cache.corrupt counter advanced" true
    (perf_calls "cache.corrupt" > before)

let test_torn_write_heals () =
  let dir = fresh_dir () in
  let vfs, sources = project () in
  let source = List.hd sources in
  let pdb =
    Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs source).Pdt.program
  in
  let cache = C.create ~dir () in
  let key = C.key ~vfs ~options:"opts" source in
  F.with_faults ~sites:[ "cache.write.torn" ] ~seed:1 ~rate:1.0 ~max_faults:1
    (fun () -> C.store cache key pdb);
  Alcotest.(check bool) "torn entry reached the final path" true
    (Sys.file_exists (C.entry_path cache key));
  Alcotest.(check bool) "torn entry is a miss" true (C.load cache key = None);
  Alcotest.(check bool) "torn entry quarantined" false
    (Sys.file_exists (C.entry_path cache key));
  C.store cache key pdb;
  Alcotest.(check bool) "healed entry loads" true (C.load cache key <> None);
  rm_rf dir

let test_crashed_write_leaves_no_tmp () =
  let dir = fresh_dir () in
  let vfs, sources = project () in
  let source = List.hd sources in
  let pdb =
    Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs source).Pdt.program
  in
  let cache = C.create ~dir () in
  let key = C.key ~vfs ~options:"opts" source in
  (try
     F.with_faults ~sites:[ "cache.write.crash" ] ~seed:1 ~rate:1.0
       ~max_faults:1 (fun () -> C.store cache key pdb)
   with F.Injected _ -> ());
  Alcotest.(check bool) "no entry written" false
    (Sys.file_exists (C.entry_path cache key));
  Alcotest.(check bool) "no residual tmp file" true (no_residual_tmp dir);
  rm_rf dir

let test_mkdir_p_nested () =
  (* --cache-dir more than two missing levels deep must just work *)
  let base = fresh_dir () in
  let deep = Filename.concat (Filename.concat (Filename.concat base "a") "b") "c" in
  let vfs, sources = project () in
  let r = build ~cache_dir:deep ~domains:1 (vfs, sources) in
  Alcotest.(check int) "build into a/b/c cache is clean" 0 r.B.failed;
  Alcotest.(check bool) "entries actually stored" true
    (Sys.file_exists deep
     && List.exists
          (fun f -> Filename.check_suffix f ".pdb")
          (walk_files deep []));
  let warm = build ~cache_dir:deep ~domains:1 (project ()) in
  Alcotest.(check int) "warm build all cached" (n_tus + 1) warm.B.cached;
  rm_rf base

let test_concurrent_processes_share_cache () =
  (* two pdbbuild processes racing on one cache dir, both cold: every
     unit's entry is stored twice, concurrently.  With pid-qualified temp
     names neither process can write the other's temp file, so the final
     entries are whole, both builds exit 0, and a third (in-process) build
     over the shared cache is fully served from it. *)
  (* main.exe lives in _build/default/test; the driver in _build/default/bin
     (a declared dep of this test).  Resolve from the test binary, not the
     cwd, so dune exec and dune runtest both find it. *)
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      (Filename.concat "bin" "pdbbuild.exe")
  in
  let dir = fresh_dir () in
  C.mkdir_p dir;
  let cache = Filename.concat dir "cache" in
  let sources = G.write_project ~n_tus ~dir () in
  let spawn out =
    let log = Unix.openfile (out ^ ".log")
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let pid =
      Unix.create_process exe
        (Array.of_list
           ((exe :: sources)
           @ [ "-o"; out; "--cache-dir"; cache; "-j"; "2" ]))
        Unix.stdin log log
    in
    Unix.close log;
    pid
  in
  let out1 = Filename.concat dir "m1.pdb"
  and out2 = Filename.concat dir "m2.pdb" in
  let p1 = spawn out1 in
  let p2 = spawn out2 in
  let code pid =
    match snd (Unix.waitpid [] pid) with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> Alcotest.fail (Printf.sprintf "killed by signal %d" s)
    | Unix.WSTOPPED _ -> Alcotest.fail "stopped"
  in
  Alcotest.(check int) "first process exits clean" 0 (code p1);
  Alcotest.(check int) "second process exits clean" 0 (code p2);
  Alcotest.(check string) "both processes produced identical bytes"
    (read_file out1) (read_file out2);
  Alcotest.(check bool) "no residual tmp file" true (no_residual_tmp cache);
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let r = build ~cache_dir:cache ~domains:1 (vfs, sources) in
  Alcotest.(check int) "shared cache serves everything" (n_tus + 1) r.B.cached;
  Alcotest.(check string) "and the same bytes" (read_file out1)
    (pdb_string r.B.merged);
  rm_rf dir

(* ---------------- vfs disk races ---------------- *)

let test_vfs_vanished_file_is_none () =
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let path = Filename.temp_file "pdt-fault-vfs" ".h" in
  Sys.remove path;
  (* exists-check passed long ago, file is gone now: must be None *)
  Alcotest.(check bool) "vanished file reads as None" true
    (Pdt_util.Vfs.read_raw vfs path = None)

let test_vfs_directory_is_none () =
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  Alcotest.(check bool) "directory reads as None" true
    (Pdt_util.Vfs.read_raw vfs "." = None)

(* ---------------- scheduler edge cases ---------------- *)

let test_scheduler_empty_input () =
  List.iter
    (fun domains ->
      Alcotest.(check int)
        (Printf.sprintf "empty input, %d domains" domains)
        0
        (Array.length (S.parallel_map ~domains (fun x -> x) [||])))
    [ 1; 4 ]

let test_scheduler_more_domains_than_items () =
  let items = [| 10; 20; 30 |] in
  let r = S.parallel_map ~domains:8 (fun x -> x + 1) items in
  Alcotest.(check int) "three slots" 3 (Array.length r);
  Array.iteri
    (fun i -> function
      | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (items.(i) + 1) v
      | Error _ -> Alcotest.fail "unexpected error slot")
    r

let test_scheduler_order_deterministic_across_domains () =
  let items = Array.init 64 (fun i -> i) in
  let f i = (i * 37) + (i mod 5) in
  let runs =
    List.map (fun d -> S.parallel_map ~domains:d f items) [ 1; 2; 8 ]
  in
  let as_list r =
    Array.to_list r
    |> List.map (function Ok v -> v | Error _ -> Alcotest.fail "error slot")
  in
  match runs with
  | [ a; b; c ] ->
      Alcotest.(check (list int)) "1 = 2 domains" (as_list a) (as_list b);
      Alcotest.(check (list int)) "1 = 8 domains" (as_list a) (as_list c)
  | _ -> assert false

let test_scheduler_worker_fault_isolated () =
  let items = Array.init 16 (fun i -> i) in
  (* exactly two occurrences fault: with one domain those are the first
     two slots; with more domains the count still holds *)
  let r =
    F.with_faults ~sites:[ "scheduler.worker" ] ~seed:1 ~rate:1.0 ~max_faults:2
      (fun () -> S.parallel_map ~domains:1 (fun i -> i) items)
  in
  Array.iteri
    (fun i -> function
      | Error (F.Injected _) ->
          Alcotest.(check bool) "faulted slot is an early one" true (i < 2)
      | Error e -> Alcotest.fail (Printexc.to_string e)
      | Ok v -> Alcotest.(check int) "clean slot" i v)
    r;
  let par =
    F.with_faults ~sites:[ "scheduler.worker" ] ~seed:1 ~rate:1.0 ~max_faults:2
      (fun () -> S.parallel_map ~domains:4 (fun i -> i) items)
  in
  let errors =
    Array.to_list par
    |> List.filter (function Error _ -> true | Ok _ -> false)
    |> List.length
  in
  Alcotest.(check int) "exactly two faulted slots under 4 domains" 2 errors

let test_scheduler_cancellation () =
  let stop = Atomic.make false in
  let items = Array.init 10 (fun i -> i) in
  let r =
    S.parallel_map ~domains:1
      ~should_stop:(fun () -> Atomic.get stop)
      (fun i ->
        if i = 0 then Atomic.set stop true;
        i)
      items
  in
  (match r.(0) with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "slot 0 ran before the stop");
  Array.iteri
    (fun i slot ->
      if i > 0 then
        match slot with
        | Error S.Cancelled -> ()
        | _ -> Alcotest.fail (Printf.sprintf "slot %d should be cancelled" i))
    r

(* ---------------- pdbd: daemon killed mid-reload ---------------- *)

(* The serve.reload fault site fires inside Snapshot.reload, after the
   request is accepted but before the new snapshot is published — the
   in-process stand-in for a daemon killed mid-reload.  The invariants:
   the client gets a structured reload-failed reply (or clean EOF if the
   stop races the reply), the old snapshot keeps answering, stopping the
   daemon unlinks the socket, and the incremental state file is intact —
   a fresh daemon over the same project reuses every unit. *)
let test_daemon_killed_mid_reload () =
  let cache_dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf cache_dir; F.disarm ()) @@ fun () ->
  let vfs, sources = project () in
  let options =
    { Pdt_build.Incremental.default_options with
      build = { B.default_options with cache_dir = Some cache_dir } }
  in
  let holder =
    Pdt_serve.Snapshot.load (Pdt_serve.Snapshot.Project { vfs; sources; options })
  in
  let n_units = List.length sources in
  let socket = Filename.temp_file "pdbd-fault" ".sock" in
  Sys.remove socket;
  let config = { Pdt_serve.Daemon.default_config with socket_path = socket } in
  let t = Pdt_serve.Daemon.start ~config holder in
  let rec connect tries =
    match Pdt_serve.Client.connect socket with
    | c -> c
    | exception _ when tries > 0 ->
        ignore (Unix.select [] [] [] 0.02);
        connect (tries - 1)
  in
  let c = connect 200 in
  let reply_of = function
    | Some line -> Pdt_util.Json.parse line
    | None -> Error "connection dropped"
  in
  let is_ok = function
    | Ok j -> Pdt_util.Json.member "ok" j = Some (Pdt_util.Json.Bool true)
    | Error _ -> false
  in
  (* 1: reload dies at the fault site; the reply is structured and the
     daemon keeps serving generation 1 *)
  F.arm ~sites:[ "serve.reload" ] ~seed:7 ~rate:1.0 ();
  let r = reply_of (Pdt_serve.Client.request c {|{"id":1,"verb":"reload"}|}) in
  F.disarm ();
  (match r with
   | Ok j ->
       Alcotest.(check bool) "reload failed structurally" false
         (Pdt_util.Json.member "ok" j = Some (Pdt_util.Json.Bool true));
       (match
          Option.bind (Pdt_util.Json.member "error" j) (fun e ->
              Pdt_util.Json.member "code" e)
        with
        | Some (Pdt_util.Json.Str "reload-failed") -> ()
        | _ -> Alcotest.fail "expected code reload-failed")
   | Error e -> Alcotest.failf "no structured reply: %s" e);
  Alcotest.(check bool) "old snapshot still serves" true
    (is_ok (reply_of (Pdt_serve.Client.request c {|{"id":2,"verb":"ping"}|})));
  Alcotest.(check int) "still generation 1" 1
    (Pdt_serve.Snapshot.current holder).Pdt_serve.Snapshot.gen;
  (* 2: kill the daemon while a reload is dying at the same site *)
  F.arm ~sites:[ "serve.reload" ] ~seed:8 ~rate:1.0 ();
  Pdt_serve.Client.send_line c {|{"id":3,"verb":"reload"}|};
  Pdt_serve.Daemon.stop t;
  F.disarm ();
  (* the in-flight reply either arrived (structured) or the socket
     closed cleanly — never a hang, never a half-line *)
  (match Pdt_serve.Client.recv_line c with
   | None -> ()
   | Some line -> (
       match Pdt_util.Json.parse line with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "torn reply after kill: %S (%s)" line e));
  Pdt_serve.Client.close c;
  Alcotest.(check bool) "socket unlinked on stop" false (Sys.file_exists socket);
  (* 3: the state files survived — a fresh daemon over the same project
     reuses every unit instead of reanalyzing *)
  let holder2 =
    Pdt_serve.Snapshot.load (Pdt_serve.Snapshot.Project { vfs; sources; options })
  in
  (match Pdt_serve.Snapshot.reload holder2 with
   | Ok (_, stats) ->
       Alcotest.(check int) "no unit reanalyzed" 0 stats.Pdt_serve.Snapshot.reanalyzed;
       Alcotest.(check int) "every unit reused" n_units
         stats.Pdt_serve.Snapshot.reused
   | Error e -> Alcotest.failf "state files damaged: fresh reload failed: %s" e)

(* ---------------- fault layer determinism ---------------- *)

let test_fault_schedule_deterministic () =
  let record () =
    F.with_faults ~sites:[ "x" ] ~seed:42 ~rate:0.3 (fun () ->
        List.init 50 (fun _ -> F.should "x"))
  in
  Alcotest.(check (list bool)) "same seed, same schedule" (record ()) (record ());
  let other =
    F.with_faults ~sites:[ "x" ] ~seed:43 ~rate:0.3 (fun () ->
        List.init 50 (fun _ -> F.should "x"))
  in
  Alcotest.(check bool) "different seed, different schedule" true
    (other <> record ())

let test_fault_disarmed_is_inert () =
  Alcotest.(check bool) "should is false when disarmed" false (F.should "x");
  F.check "x";
  (* and sites not in the armed set never fire *)
  F.with_faults ~sites:[ "only.this" ] ~seed:1 ~rate:1.0 (fun () ->
      Alcotest.(check bool) "unarmed site is inert" false (F.should "other");
      Alcotest.(check bool) "armed site fires" true (F.should "only.this"))

(* ---------------- environment-carried schedules ---------------- *)

let test_fault_spec_roundtrip () =
  let spec =
    F.spec_string ~sites:[ "a"; "b" ] ~max_faults:3 ~skip:17 ~seed:42
      ~rate:0.25 ()
  in
  (match F.parse_spec spec with
  | Ok (Some (42, r, Some [ "a"; "b" ], Some 3, 17))
    when Float.abs (r -. 0.25) < 1e-9 ->
      ()
  | _ -> Alcotest.failf "spec did not round-trip: %s" spec);
  (match F.parse_spec "" with
  | Ok None -> ()
  | _ -> Alcotest.fail "empty spec must parse as no schedule");
  (match F.parse_spec "seed=1;rate=0.5" with
  | Ok (Some (1, _, None, None, 0)) -> ()
  | _ -> Alcotest.fail "minimal spec defaults skip to 0");
  List.iter
    (fun bad ->
      match F.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed spec %S accepted" bad)
    [ "rate=0.5"; "seed=1"; "seed=1;rate=2.0"; "seed=x;rate=0.5";
      "seed=1;rate=0.5;skip=-1"; "seed=1;rate=0.5;bogus=1" ];
  (* later fields win on duplicates — the farm driver relies on this to
     append a fresh skip= per worker spawn without parsing the spec *)
  match F.parse_spec "seed=1;rate=0.5;skip=3;skip=9" with
  | Ok (Some (_, _, _, _, 9)) -> ()
  | _ -> Alcotest.fail "later skip= must win"

let test_fault_skip_shifts_window () =
  (* arming with skip=k must judge occurrence n as occurrence n+k: the
     respawned-worker contract that keeps a seeded kill schedule from
     replaying its fatal prefix on every successor process *)
  let sample ~skip n =
    F.arm ~sites:[ "w" ] ~skip ~seed:5 ~rate:0.3 ();
    let l = List.init n (fun _ -> F.should "w") in
    F.disarm ();
    l
  in
  let full = sample ~skip:0 30 in
  let shifted = sample ~skip:10 20 in
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  Alcotest.(check (list bool)) "skip k == occurrences k+1.." (drop 10 full)
    shifted

let suite =
  [ Alcotest.test_case "injection matrix: >=200 seeded schedules" `Slow
      test_fault_matrix;
    Alcotest.test_case "incremental matrix: no half-spliced delta" `Slow
      test_incremental_fault_matrix;
    Alcotest.test_case "incremental: delta-path fault falls back cleanly"
      `Quick test_incremental_fallback_counted;
    Alcotest.test_case "retry recovers a transient fault" `Quick
      test_retry_recovers_transient;
    Alcotest.test_case "retries are bounded, failure is structured" `Quick
      test_retries_are_bounded;
    Alcotest.test_case "compile errors never retry" `Quick
      test_deterministic_failure_never_retries;
    Alcotest.test_case "fail-fast skips the rest" `Quick
      test_fail_fast_skips_rest;
    Alcotest.test_case "keep-going merges the survivors" `Quick
      test_keep_going_merges_survivors;
    Alcotest.test_case "truncated entry quarantined and rebuilt" `Quick
      test_corrupt_truncated;
    Alcotest.test_case "bit-flipped entry quarantined and rebuilt" `Quick
      test_corrupt_bitflip;
    Alcotest.test_case "wrong-version entry quarantined and rebuilt" `Quick
      test_corrupt_wrong_version;
    Alcotest.test_case "wrong-key entry quarantined, right key intact" `Quick
      test_corrupt_wrong_key;
    Alcotest.test_case "truncated PDB-B entry quarantined and rebuilt" `Quick
      test_corrupt_truncated_binary;
    Alcotest.test_case "corruption shows in the cache.corrupt counter" `Quick
      test_corrupt_counter_reported;
    Alcotest.test_case "torn write self-heals" `Quick test_torn_write_heals;
    Alcotest.test_case "crashed write leaves no tmp file" `Quick
      test_crashed_write_leaves_no_tmp;
    Alcotest.test_case "cache dir a/b/c is created recursively" `Quick
      test_mkdir_p_nested;
    Alcotest.test_case "two processes share one cache dir safely" `Quick
      test_concurrent_processes_share_cache;
    Alcotest.test_case "vfs: vanished file is None, not a crash" `Quick
      test_vfs_vanished_file_is_none;
    Alcotest.test_case "vfs: directory path is None" `Quick
      test_vfs_directory_is_none;
    Alcotest.test_case "scheduler: empty input" `Quick
      test_scheduler_empty_input;
    Alcotest.test_case "scheduler: more domains than items" `Quick
      test_scheduler_more_domains_than_items;
    Alcotest.test_case "scheduler: slot order deterministic (1/2/8)" `Quick
      test_scheduler_order_deterministic_across_domains;
    Alcotest.test_case "scheduler: injected worker faults stay per-slot" `Quick
      test_scheduler_worker_fault_isolated;
    Alcotest.test_case "scheduler: cancellation marks remaining slots" `Quick
      test_scheduler_cancellation;
    Alcotest.test_case "daemon killed mid-reload" `Quick
      test_daemon_killed_mid_reload;
    Alcotest.test_case "fault schedules are seed-deterministic" `Quick
      test_fault_schedule_deterministic;
    Alcotest.test_case "disarmed fault layer is inert" `Quick
      test_fault_disarmed_is_inert;
    Alcotest.test_case "PDT_FAULT_SPEC round-trips and rejects garbage" `Quick
      test_fault_spec_roundtrip;
    Alcotest.test_case "skip= offsets the occurrence window" `Quick
      test_fault_skip_shifts_window ]
