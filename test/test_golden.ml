(* Golden-corpus regression harness.

   Each workload in the corpus is compiled exactly the way the pdtc driver
   compiles a single translation unit (Pdt.compile with default options,
   Analyzer.run with Location_based mapping, Pdb_write.to_string) and the
   serialized PDB is compared BYTE-FOR-BYTE against a checked-in golden
   file under test/golden/.  Any change to the lexer, parser, sema,
   analyzer, or PDB writer that alters output for real programs fails here
   with a unified diff, so intentional format changes leave a reviewable
   trail in version control.

   Regenerating after an intentional change:

     PDT_GOLDEN_REGEN=1 dune exec test/main.exe -- test golden

   rewrites the goldens in the source tree (test/golden/ relative to the
   repo root; override the destination with PDT_GOLDEN_DIR), then commit
   the diff.  The test fails when regenerating so a stale
   PDT_GOLDEN_REGEN in the environment cannot silently greenlight CI. *)

module A = Pdt_analyzer.Analyzer
module W = Pdt_pdb.Pdb_write

let pdb_of_cpp ~vfs main : string =
  let c = Pdt.compile ~vfs main in
  if Pdt_util.Diag.has_errors c.Pdt.diags then
    Alcotest.fail
      (main ^ " no longer compiles clean:\n" ^ Pdt_util.Diag.to_string c.Pdt.diags);
  W.to_string (A.run c.Pdt.program)

(* ministl ships only headers; give it the same kind of driver the paper's
   Table 1 measurements used: a main that instantiates the containers *)
let ministl_driver =
  {|#include <vector.h>
#include <list.h>
#include <pair.h>
#include <algorithm.h>

int count_evens(const vector<int>& v) {
  int n = 0;
  for (int i = 0; i < v.size(); i = i + 1)
    if (v[i] % 2 == 0) n = n + 1;
  return n;
}

int main() {
  vector<int> v;
  v.push_back(3);
  v.push_back(4);
  list<double> l;
  l.push_back(2.5);
  pair<int, double> p(v.size(), l.front());
  return count_evens(v) + p.first;
}
|}

let ministl_pdb () =
  let vfs = Pdt_util.Vfs.create () in
  Pdt_workloads.Ministl.mount vfs;
  Pdt_util.Vfs.add_file vfs "ministl_main.cpp" ministl_driver;
  pdb_of_cpp ~vfs "ministl_main.cpp"

let fortran_pdb () =
  let diags = Pdt_util.Diag.create () in
  let prog =
    Pdt_f90.F90_sema.compile_string ~file:Pdt_workloads.Fortran_demo.main_file
      ~diags Pdt_workloads.Fortran_demo.linear_algebra_f90
  in
  if Pdt_util.Diag.has_errors diags then
    Alcotest.fail ("fortran demo no longer compiles clean:\n" ^ Pdt_util.Diag.to_string diags);
  W.to_string (A.run prog)

let corpus : (string * (unit -> string)) list =
  [ ("stack", fun () ->
        pdb_of_cpp ~vfs:(Pdt_workloads.Stack.vfs ()) Pdt_workloads.Stack.main_file);
    ("ministl", ministl_pdb);
    ("pooma_like", fun () ->
        pdb_of_cpp ~vfs:(Pdt_workloads.Pooma_like.vfs ())
          Pdt_workloads.Pooma_like.main_file);
    ("parallel_stencil", fun () ->
        pdb_of_cpp ~vfs:(Pdt_workloads.Parallel_stencil.vfs ())
          Pdt_workloads.Parallel_stencil.main_file);
    ("fortran_demo", fortran_pdb);
    ("duchain_demo", fun () ->
        pdb_of_cpp ~vfs:(Pdt_workloads.Duchain_demo.vfs ())
          Pdt_workloads.Duchain_demo.main_file);
    ("parallel_spawn", fun () ->
        pdb_of_cpp ~vfs:(Pdt_workloads.Parallel_spawn.vfs ())
          Pdt_workloads.Parallel_spawn.main_file) ]

(* Under `dune runtest` the cwd is _build/default/test and dune has copied
   the goldens here via the glob dep; under `dune exec test/main.exe` from
   the repo root they are read from the source tree directly.  Walk up to
   the project root (source root or its _build/default mirror — both carry
   README.md next to a test/ directory) so both invocations agree. *)
let project_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "README.md")
       && Sys.is_directory (Filename.concat dir "test")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let golden_dir () =
  match Sys.getenv_opt "PDT_GOLDEN_DIR" with
  | Some d -> d
  | None -> (
      match project_root () with
      | Some root -> Filename.concat (Filename.concat root "test") "golden"
      | None -> "golden")

let golden_read_path name = Filename.concat (golden_dir ()) (name ^ ".pdb")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* a compact unified-style diff: everything up to the first differing line
   is context, then +/- lines until the streams re-converge or the window
   closes — enough to see *what* changed without an LCS pass *)
let diff (expected : string) (actual : string) : string =
  let e = String.split_on_char '\n' expected |> Array.of_list in
  let a = String.split_on_char '\n' actual |> Array.of_list in
  let n = min (Array.length e) (Array.length a) in
  let first = ref 0 in
  while !first < n && e.(!first) = a.(!first) do incr first done;
  let b = Buffer.create 1024 in
  Printf.bprintf b "--- golden\n+++ actual\n@@ line %d @@\n" (!first + 1);
  for i = max 0 (!first - 2) to !first - 1 do
    Printf.bprintf b " %s\n" e.(i)
  done;
  let window = 20 in
  for i = !first to min (Array.length e - 1) (!first + window) do
    Printf.bprintf b "-%s\n" e.(i)
  done;
  if Array.length e - !first > window + 1 then
    Printf.bprintf b "-... (%d more golden lines)\n" (Array.length e - !first - window - 1);
  for i = !first to min (Array.length a - 1) (!first + window) do
    Printf.bprintf b "+%s\n" a.(i)
  done;
  if Array.length a - !first > window + 1 then
    Printf.bprintf b "+... (%d more actual lines)\n" (Array.length a - !first - window - 1);
  Buffer.contents b

let check_golden (name, produce) () =
  let actual = produce () in
  if Sys.getenv_opt "PDT_GOLDEN_REGEN" = Some "1" then begin
    let dir = golden_dir () in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".pdb") in
    write_file path actual;
    Alcotest.fail
      (Printf.sprintf "regenerated %s (%d bytes) — unset PDT_GOLDEN_REGEN and rerun"
         path (String.length actual))
  end
  else begin
    let path = golden_read_path name in
    if not (Sys.file_exists path) then
      Alcotest.fail
        (Printf.sprintf
           "missing golden %s — run PDT_GOLDEN_REGEN=1 dune exec test/main.exe -- test golden"
           path);
    let expected = read_file path in
    if expected <> actual then
      Alcotest.fail
        (Printf.sprintf
           "%s: PDB output changed (golden %d bytes, actual %d bytes)\n%s" name
           (String.length expected) (String.length actual) (diff expected actual))
  end

(* the corpus goldens must also still parse and round-trip, so a golden
   can never go stale in a way the rest of the suite would miss *)
let test_goldens_roundtrip () =
  List.iter
    (fun (name, _) ->
      let path = golden_read_path name in
      if Sys.file_exists path then begin
        let text = read_file path in
        let pdb = Pdt_pdb.Pdb_parse.of_string text in
        Alcotest.(check string) (name ^ " round-trips") text (W.to_string pdb)
      end)
    corpus

let suite =
  List.map
    (fun (name, produce) ->
      Alcotest.test_case ("golden: " ^ name) `Quick (check_golden (name, produce)))
    corpus
  @ [ Alcotest.test_case "goldens parse and round-trip" `Quick test_goldens_roundtrip ]
