(* Unit tests for the Json module's trust-boundary guarantees (PR 8).

   Since pdbd, Json.parse consumes bytes straight off a Unix socket, so
   the strictness fixes get direct coverage here: exactly-4-hex-digit
   \uXXXX escapes, surrogate-pair combination, lone-surrogate rejection,
   accurate offsets for raw control characters, the nesting-depth guard,
   and the canonical printer the wire replies and goldens depend on. *)

module J = Pdt_util.Json

let ok (s : string) : J.t =
  match J.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "%S should parse, got: %s" s e

let str_of (s : string) : string =
  match ok s with J.Str v -> v | j -> Alcotest.failf "%S gave %s" s (J.to_string j)

let err (s : string) : string =
  match J.parse s with
  | Ok _ -> Alcotest.failf "%S should NOT parse" s
  | Error e -> e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------------- \uXXXX strictness ---------------- *)

let test_unicode_escape_basic () =
  Alcotest.(check string) "ASCII escape" "A" (str_of {|"\u0041"|});
  Alcotest.(check string) "two-byte UTF-8" "\xc3\xa9" (str_of {|"\u00e9"|});
  Alcotest.(check string) "three-byte UTF-8" "\xe2\x82\xac" (str_of {|"\u20ac"|});
  Alcotest.(check string) "NUL escape" "\x00" (str_of {|"\u0000"|});
  Alcotest.(check string) "uppercase hex" "\xe2\x82\xac" (str_of {|"\u20AC"|})

let test_unicode_escape_exactly_four_digits () =
  ignore (err {|"\u12"|});
  ignore (err {|"\u123"|});
  ignore (err {|"\u123g"|});
  (* int_of_string would happily take OCaml literal syntax; JSON must not *)
  ignore (err {|"\u1_23"|});
  ignore (err {|"\u+123"|});
  ignore (err {|"\u0x12"|});
  (* 4 good digits followed by another digit is fine — the extra is text *)
  Alcotest.(check string) "no greedy digits" "A5" (str_of {|"\u00415"|})

let test_surrogate_pairs () =
  (* U+1F600, the canonical astral example *)
  Alcotest.(check string) "astral pair combines" "\xf0\x9f\x98\x80"
    (str_of {|"\uD83D\uDE00"|});
  (* U+10000, the lowest astral code point *)
  Alcotest.(check string) "lowest astral" "\xf0\x90\x80\x80"
    (str_of {|"\uD800\uDC00"|});
  (* U+10FFFF, the highest *)
  Alcotest.(check string) "highest astral" "\xf4\x8f\xbf\xbf"
    (str_of {|"\uDBFF\uDFFF"|})

let test_lone_surrogates_rejected () =
  Alcotest.(check bool) "lone high at end" true
    (contains (err {|"\uD83D"|}) "surrogate");
  Alcotest.(check bool) "high + ordinary text" true
    (contains (err {|"\uD83Dxyz"|}) "surrogate");
  Alcotest.(check bool) "high + non-surrogate escape" true
    (contains (err {|"\uD83D\n"|}) "surrogate");
  Alcotest.(check bool) "high + high" true
    (contains (err {|"\uD83D\uD83D"|}) "surrogate");
  Alcotest.(check bool) "lone low" true
    (contains (err {|"\uDE00"|}) "surrogate")

(* ---------------- control characters ---------------- *)

let test_raw_control_char_rejected_with_offset () =
  (* "ab<TAB>c" — the tab sits at offset 3 (after the opening quote) *)
  let e = err "\"ab\tc\"" in
  Alcotest.(check bool) "names the problem" true (contains e "control char");
  Alcotest.(check bool) "points at the char, not past it" true
    (contains e "offset 3");
  let e2 = err "\"\x01\"" in
  Alcotest.(check bool) "offset 1 for first char" true (contains e2 "offset 1")

let test_escaped_control_chars_ok () =
  Alcotest.(check string) "backslash escapes" "a\n\t\r\b\012\\\"/z"
    (str_of {|"a\n\t\r\b\f\\\"\/z"|})

(* ---------------- depth guard ---------------- *)

let test_depth_guard () =
  (* well under the bound: fine *)
  let nest n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match J.parse (nest 100) with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "depth 100 should parse: %s" e);
  (* past the bound: a structured error, not a stack overflow *)
  Alcotest.(check bool) "600 deep fails" true
    (contains (err (nest 600)) "nesting too deep");
  (* the classic bracket bomb: 100k opens, no closes *)
  Alcotest.(check bool) "bracket bomb fails fast" true
    (contains (err (String.make 100_000 '[')) "nesting too deep");
  (* objects count too *)
  let obombs = String.concat "" (List.init 600 (fun _ -> {|{"k":|})) in
  Alcotest.(check bool) "object bomb fails" true
    (contains (err (obombs ^ "1")) "nesting too deep");
  (* the bound is a parameter *)
  (match J.parse ~max_depth:8 (nest 20) with
   | Ok _ -> Alcotest.fail "max_depth:8 should reject depth 20"
   | Error _ -> ());
  match J.parse ~max_depth:32 (nest 20) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "max_depth:32 should accept depth 20: %s" e

(* ---------------- printer ---------------- *)

let test_printer_canonical () =
  let v =
    J.Obj
      [ ("id", J.Num 7.); ("ok", J.Bool true); ("who", J.Str "a\"b\nc");
        ("xs", J.List [ J.Num 1.; J.Num 2.5; J.Null ]) ]
  in
  Alcotest.(check string) "one canonical line"
    {|{"id":7,"ok":true,"who":"a\"b\nc","xs":[1,2.5,null]}|}
    (J.to_string v)

let test_printer_numbers () =
  Alcotest.(check string) "integral, no fraction" "42" (J.to_string (J.Num 42.));
  Alcotest.(check string) "negative integral" "-3" (J.to_string (J.Num (-3.)));
  Alcotest.(check string) "zero" "0" (J.to_string (J.Num 0.));
  Alcotest.(check string) "simple fraction" "2.5" (J.to_string (J.Num 2.5));
  (* 0.1 is not exactly representable; the printer must still round-trip *)
  List.iter
    (fun f ->
      match J.parse (J.to_string (J.Num f)) with
      | Ok (J.Num g) when g = f -> ()
      | Ok j -> Alcotest.failf "%h printed as %s" f (J.to_string j)
      | Error e -> Alcotest.failf "%h print->parse failed: %s" f e)
    [ 0.1; 1.0 /. 3.0; 1e-9; 6.02e23; -0.25; 123456789.125 ]

let test_print_parse_roundtrip () =
  let values =
    [ J.Null; J.Bool false; J.Num 3.25; J.Str "plain";
      J.Str "esc\"\\\n\t\x01\x1f";
      J.List []; J.Obj [];
      J.Obj [ ("nested", J.List [ J.Obj [ ("deep", J.Str "ok") ] ]) ] ]
  in
  List.iter
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' when v' = v -> ()
      | Ok v' ->
          Alcotest.failf "round-trip changed %s into %s" (J.to_string v)
            (J.to_string v')
      | Error e ->
          Alcotest.failf "round-trip of %s failed: %s" (J.to_string v) e)
    values

let test_escaped_output_reparses () =
  (* every byte 0..255 as a single-char string: print, reparse, compare *)
  for code = 0 to 255 do
    let s = String.make 1 (Char.chr code) in
    match J.parse (J.to_string (J.Str s)) with
    | Ok (J.Str s') when s' = s -> ()
    | Ok j -> Alcotest.failf "byte %d reparsed as %s" code (J.to_string j)
    | Error e -> Alcotest.failf "byte %d failed: %s" code e
  done

let suite =
  [ Alcotest.test_case "unicode escape basics" `Quick test_unicode_escape_basic;
    Alcotest.test_case "\\u needs exactly 4 hex digits" `Quick
      test_unicode_escape_exactly_four_digits;
    Alcotest.test_case "surrogate pairs combine" `Quick test_surrogate_pairs;
    Alcotest.test_case "lone surrogates rejected" `Quick
      test_lone_surrogates_rejected;
    Alcotest.test_case "raw control chars: offset" `Quick
      test_raw_control_char_rejected_with_offset;
    Alcotest.test_case "escaped control chars ok" `Quick
      test_escaped_control_chars_ok;
    Alcotest.test_case "nesting depth guard" `Quick test_depth_guard;
    Alcotest.test_case "canonical printer" `Quick test_printer_canonical;
    Alcotest.test_case "number printing" `Quick test_printer_numbers;
    Alcotest.test_case "print/parse round-trip" `Quick
      test_print_parse_roundtrip;
    Alcotest.test_case "all bytes escape+reparse" `Quick
      test_escaped_output_reparses ]
