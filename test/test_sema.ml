(* Semantic-analysis tests: entities, scopes, call edges, overloads. *)

open Pdt_il.Il

let compile ?(with_stl = false) src =
  let vfs = Pdt_util.Vfs.create () in
  if with_stl then Pdt_workloads.Ministl.mount vfs;
  let c = Pdt.compile_string ~vfs src in
  (c.Pdt.program, c.Pdt.diags)

let compile_ok ?with_stl src =
  let prog, diags = compile ?with_stl src in
  if Pdt_util.Diag.has_errors diags then
    Alcotest.failf "compile errors:\n%s" (Pdt_util.Diag.to_string diags);
  prog

let find_class prog name =
  match List.find_opt (fun c -> c.cl_name = name) (classes prog) with
  | Some c -> c
  | None -> Alcotest.failf "class %s not found" name

let find_routine prog full =
  match
    List.find_opt (fun r -> routine_full_name prog r = full) (routines prog)
  with
  | Some r -> r
  | None -> Alcotest.failf "routine %s not found" full

let callee_names prog r =
  List.map (fun cs -> routine_full_name prog (routine prog cs.cs_callee)) (calls r)

(* ---------------------------------------------------------------- *)

let test_class_members () =
  let prog =
    compile_ok
      "class P {\npublic:\n  P(int x, int y) : x_(x), y_(y) { }\n  int x() const { return x_; }\n\
       protected:\n  int y_;\nprivate:\n  int x_;\n};"
  in
  let c = find_class prog "P" in
  Alcotest.(check int) "funcs" 2 (List.length c.cl_funcs);
  Alcotest.(check int) "members" 2 (List.length c.cl_members);
  let y = List.find (fun m -> m.dm_name = "y_") c.cl_members in
  Alcotest.(check string) "protected" "prot" (access_to_string y.dm_access);
  let x = List.find (fun m -> m.dm_name = "x_") c.cl_members in
  Alcotest.(check string) "private" "priv" (access_to_string x.dm_access)

let test_struct_default_access () =
  let prog = compile_ok "struct S { int a; void f() { } };" in
  let c = find_class prog "S" in
  Alcotest.(check string) "struct member is public" "pub"
    (access_to_string (List.hd c.cl_members).dm_access);
  let f = routine prog (List.hd c.cl_funcs) in
  Alcotest.(check string) "struct func is public" "pub" (access_to_string f.ro_access)

let test_call_edges () =
  let prog =
    compile_ok
      "int helper(int a) { return a * 2; }\n\
       int helper(double d) { return 1; }\n\
       int main() { int x = helper(21); double y = 1.5; return helper(y); }"
  in
  let main = find_routine prog "main" in
  Alcotest.(check int) "two calls" 2 (List.length (calls main));
  (* overload resolution picked the right ones *)
  let cs = calls main in
  let sig0 = type_name prog (routine prog (List.nth cs 0).cs_callee).ro_sig in
  let sig1 = type_name prog (routine prog (List.nth cs 1).cs_callee).ro_sig in
  Alcotest.(check string) "int overload" "int (int)" sig0;
  Alcotest.(check string) "double overload" "int (double)" sig1

let test_member_call_edges () =
  let prog =
    compile_ok
      "class A {\npublic:\n  int f() { return g() + 1; }\n  int g() { return 2; }\n};\n\
       int main() { A a; return a.f(); }"
  in
  let f = find_routine prog "A::f" in
  Alcotest.(check (list string)) "f calls g" [ "A::g" ] (callee_names prog f);
  let main = find_routine prog "main" in
  (* ctor (implicit), a.f(), implicit dtor *)
  let names = callee_names prog main in
  Alcotest.(check bool) "calls A::f" true (List.mem "A::f" names);
  Alcotest.(check bool) "implicit ctor edge" true (List.mem "A::A" names);
  Alcotest.(check bool) "implicit dtor edge" true (List.mem "A::~A" names)

let test_ctor_dtor_lifetimes () =
  let prog =
    compile_ok
      "class R {\npublic:\n  R() { }\n  ~R() { }\n};\n\
       void f() { R r1; { R r2; } }"
  in
  let f = find_routine prog "f" in
  let names = callee_names prog f in
  Alcotest.(check int) "2 ctors + 2 dtors" 4 (List.length names);
  Alcotest.(check int) "two dtor calls" 2
    (List.length (List.filter (fun n -> n = "R::~R") names))

let test_virtual_override () =
  let prog =
    compile_ok
      "class B {\npublic:\n  virtual int f() { return 1; }\n};\n\
       class D : public B {\npublic:\n  int f() { return 2; }\n};\n\
       int main() { D d; return d.f(); }"
  in
  let df = find_routine prog "D::f" in
  Alcotest.(check string) "override is virtual" "virt" (virt_to_string df.ro_virt);
  let main = find_routine prog "main" in
  let virtual_calls = List.filter (fun cs -> cs.cs_virtual) (calls main) in
  Alcotest.(check int) "virtual call site" 1 (List.length virtual_calls)

let test_bases_and_derived () =
  let prog =
    compile_ok
      "class A {}; class B {}; class C : public A, private virtual B {};"
  in
  let c = find_class prog "C" in
  Alcotest.(check int) "2 bases" 2 (List.length c.cl_bases);
  let b1 = List.nth c.cl_bases 1 in
  Alcotest.(check bool) "virtual base" true b1.ba_virtual;
  Alcotest.(check string) "private base" "priv" (access_to_string b1.ba_access);
  let a = find_class prog "A" in
  Alcotest.(check (list int)) "derived backlink" [ c.cl_id ] a.cl_derived

let test_namespaces () =
  let prog =
    compile_ok
      "namespace outer {\n  int f() { return 1; }\n  namespace inner { int g() { return 2; } }\n}\n\
       int main() { return outer::f() + outer::inner::g(); }"
  in
  Alcotest.(check int) "two namespaces" 2 (List.length (namespaces prog));
  let main = find_routine prog "main" in
  Alcotest.(check (list string)) "qualified calls resolved"
    [ "outer::f"; "outer::inner::g" ] (callee_names prog main)

let test_using_namespace () =
  let prog =
    compile_ok
      "namespace N { int f() { return 1; } }\nusing namespace N;\n\
       int main() { return f(); }"
  in
  let main = find_routine prog "main" in
  Alcotest.(check (list string)) "call through using" [ "N::f" ] (callee_names prog main)

let test_enum_constants () =
  let prog =
    compile_ok
      "enum Color { Red, Green = 5, Blue };\nint main() { return Blue; }"
  in
  let enum =
    List.find_opt
      (fun ty -> match ty.ty_kind with Tenum _ -> true | _ -> false)
      (types prog)
  in
  match enum with
  | Some { ty_kind = Tenum { constants; _ }; _ } ->
      Alcotest.(check (list (pair string int)))
        "values"
        [ ("Red", 0); ("Green", 5); ("Blue", 6) ]
        (List.map (fun (n, v, _) -> (n, Int64.to_int v)) constants)
  | _ -> Alcotest.fail "enum type not found"

let test_typedef () =
  let prog =
    compile_ok "typedef unsigned long size_type;\nsize_type f() { return 0; }"
  in
  let f = find_routine prog "f" in
  Alcotest.(check string) "underlying type in signature" "unsigned long ()"
    (type_name prog f.ro_sig)

let test_signature_types () =
  let prog =
    compile_ok
      "class T {\npublic:\n  const int & get(const double * p, bool b = true) const;\n};"
  in
  let get = find_routine prog "T::get" in
  Alcotest.(check string) "signature" "const int & (const double *, bool) const"
    (type_name prog get.ro_sig);
  Alcotest.(check bool) "default arg flagged" true
    (List.exists (fun p -> p.pi_has_default) get.ro_params)

let test_exception_spec () =
  let prog = compile_ok "class E {};\nvoid f() throw(E);" in
  let f = find_routine prog "f" in
  match (type_ prog f.ro_sig).ty_kind with
  | Tfunc { exceptions = Some [ e ]; _ } ->
      Alcotest.(check string) "exception class" "E" (type_name prog e)
  | _ -> Alcotest.fail "exception spec not recorded"

let test_static_members () =
  let prog =
    compile_ok
      "class C {\npublic:\n  static int count() { return 0; }\n  static int total;\n};"
  in
  let count = find_routine prog "C::count" in
  Alcotest.(check bool) "static method" true count.ro_static;
  Alcotest.(check string) "storage" "static" count.ro_store;
  let c = find_class prog "C" in
  let total = List.find (fun m -> m.dm_name = "total") c.cl_members in
  Alcotest.(check bool) "static member" true total.dm_static

let test_operator_calls () =
  let prog =
    compile_ok
      "class V {\npublic:\n  V(int x) : x_(x) { }\n  V operator+(const V & o) const { return V(x_ + o.x_); }\n\
       \  bool operator<(const V & o) const { return x_ < o.x_; }\nprivate:\n  int x_;\n};\n\
       int main() { V a(1); V b(2); V c = a + b; if (a < b) return 1; return 0; }"
  in
  let main = find_routine prog "main" in
  let names = callee_names prog main in
  Alcotest.(check bool) "operator+ edge" true (List.mem "V::operator+" names);
  Alcotest.(check bool) "operator< edge" true (List.mem "V::operator<" names)

let test_out_of_line_definition () =
  let prog =
    compile_ok
      "class C {\npublic:\n  int f(int x);\n};\nint C::f(int x) { return x + 1; }"
  in
  let f = find_routine prog "C::f" in
  Alcotest.(check bool) "defined" true f.ro_defined;
  Alcotest.(check bool) "has body" true (f.ro_body <> None);
  (* only one routine entity for decl+def *)
  let all_f = List.filter (fun r -> r.ro_name = "f") (routines prog) in
  Alcotest.(check int) "merged decl/def" 1 (List.length all_f)

let test_forward_declaration () =
  let prog = compile_ok "class F;\nclass F { public: int x; };\nF *p;" in
  let fs = List.filter (fun c -> c.cl_name = "F") (classes prog) in
  Alcotest.(check int) "one class entity" 1 (List.length fs);
  Alcotest.(check bool) "complete" true (List.hd fs).cl_complete

let test_conversion_operator () =
  let prog =
    compile_ok
      "class Meters {\npublic:\n  Meters(double v) : v_(v) { }\n  operator double() const { return v_; }\n\
       private:\n  double v_;\n};"
  in
  let conv =
    List.find_opt (fun r -> r.ro_kind = Rk_conversion) (routines prog)
  in
  Alcotest.(check bool) "conversion op exists" true (conv <> None)

let test_inheritance_member_lookup () =
  let prog =
    compile_ok
      "class Base {\npublic:\n  int common() { return 1; }\n  int data;\n};\n\
       class Derived : public Base {\npublic:\n  int use() { return common() + data; }\n};\n\
       int main() { Derived d; return d.use(); }"
  in
  let use = find_routine prog "Derived::use" in
  Alcotest.(check (list string)) "inherited member call" [ "Base::common" ]
    (callee_names prog use)

let test_global_vars () =
  let prog = compile_ok "int counter = 5;\nint main() { return counter; }" in
  Alcotest.(check int) "one global" 1 (List.length (globals prog));
  Alcotest.(check string) "name" "counter" (List.hd (globals prog)).gv_name

let test_stats () =
  let prog = compile_ok ~with_stl:true
      "#include <vector.h>\nint main() { vector<int> v; v.push_back(1); return v.size(); }"
  in
  let s = stats prog in
  Alcotest.(check bool) "instantiated classes > 0" true (s.n_instantiated_classes >= 1);
  Alcotest.(check bool) "call edges" true (s.n_call_edges >= 3)

let suite =
  [ Alcotest.test_case "class members and access" `Quick test_class_members;
    Alcotest.test_case "struct default access" `Quick test_struct_default_access;
    Alcotest.test_case "call edges and overloads" `Quick test_call_edges;
    Alcotest.test_case "member call edges" `Quick test_member_call_edges;
    Alcotest.test_case "ctor/dtor lifetime edges" `Quick test_ctor_dtor_lifetimes;
    Alcotest.test_case "virtual override detection" `Quick test_virtual_override;
    Alcotest.test_case "bases and derived links" `Quick test_bases_and_derived;
    Alcotest.test_case "namespaces" `Quick test_namespaces;
    Alcotest.test_case "using namespace" `Quick test_using_namespace;
    Alcotest.test_case "enum constants" `Quick test_enum_constants;
    Alcotest.test_case "typedef resolution" `Quick test_typedef;
    Alcotest.test_case "signature types" `Quick test_signature_types;
    Alcotest.test_case "exception specification" `Quick test_exception_spec;
    Alcotest.test_case "static members" `Quick test_static_members;
    Alcotest.test_case "operator call edges" `Quick test_operator_calls;
    Alcotest.test_case "out-of-line definition" `Quick test_out_of_line_definition;
    Alcotest.test_case "forward declaration" `Quick test_forward_declaration;
    Alcotest.test_case "conversion operator" `Quick test_conversion_operator;
    Alcotest.test_case "inherited member lookup" `Quick test_inheritance_member_lookup;
    Alcotest.test_case "global variables" `Quick test_global_vars;
    Alcotest.test_case "program statistics" `Quick test_stats ]
