(* Interpreter tests: the dynamic-analysis substrate. *)

let run ?(with_stl = true) src =
  let vfs = Pdt_util.Vfs.create () in
  if with_stl then Pdt_workloads.Ministl.mount vfs;
  let c = Pdt.compile_string ~vfs src in
  if Pdt_util.Diag.has_errors c.Pdt.diags then
    Alcotest.failf "compile errors:\n%s" (Pdt_util.Diag.to_string c.Pdt.diags);
  Pdt_tau.Interp.run c.Pdt.program

let check_exit msg src expected =
  let r = run src in
  Alcotest.(check int) msg expected r.exit_code

let check_output msg src expected =
  let r = run src in
  Alcotest.(check string) msg expected r.output

let test_casts_convert () =
  (* regression: C-style and named casts must actually convert scalars *)
  check_exit "double->int truncates" "int main() { double d = 2.9; return (int)d; }" 2;
  check_exit "cast in expression" "int main() { return (int)2.5 + 10 * (int)2.5; }" 22;
  check_exit "static_cast" "int main() { double d = 7.7; return static_cast<int>(d); }" 7;
  check_exit "int->double->int" "int main() { int x = 3; double d = (double)x / 2.0; return (int)(d * 4.0); }" 6;
  check_exit "bool cast" "int main() { return (bool)42 ? 1 : 0; }" 1;
  check_exit "char cast wraps" "int main() { return (char)321; }" 65

let test_arithmetic () =
  check_exit "int arith" "int main() { return (2 + 3) * 4 - 20 / 2; }" 10;
  check_exit "modulo" "int main() { return 17 % 5; }" 2;
  check_exit "shifts" "int main() { return (1 << 4) | 3; }" 19;
  check_exit "double to int" "int main() { double d = 3.9; return (int)d; }" 3;
  check_exit "comparison chain" "int main() { return (3 < 4) + (4 <= 4) + (5 > 6); }" 2

let test_control_flow () =
  check_exit "if/else" "int main() { int x = 5; if (x > 3) return 1; else return 2; }" 1;
  check_exit "while" "int main() { int s = 0; int i = 0; while (i < 5) { s += i; i++; } return s; }" 10;
  check_exit "do-while" "int main() { int n = 0; do { n++; } while (n < 3); return n; }" 3;
  check_exit "for with break/continue"
    "int main() { int s = 0; for (int i = 0; i < 10; i++) { if (i == 7) break; if (i % 2) continue; s += i; } return s; }"
    12;
  check_exit "switch"
    "int main() { int x = 2; switch (x) { case 1: return 10; case 2: return 20; default: return 30; } }"
    20;
  check_exit "switch fallthrough"
    "int main() { int s = 0; switch (1) { case 1: s += 1; case 2: s += 2; break; case 3: s += 4; } return s; }"
    3

let test_recursion () =
  check_exit "factorial" "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\nint main() { return fact(5); }" 120;
  check_exit "fibonacci" "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\nint main() { return fib(10); }" 55

let test_references () =
  check_exit "ref param" "void bump(int & x) { x = x + 1; }\nint main() { int v = 41; bump(v); return v; }" 42;
  check_exit "swap"
    "void swp(int & a, int & b) { int t = a; a = b; b = t; }\nint main() { int x = 3; int y = 7; swp(x, y); return x * 10 + y; }"
    73;
  check_exit "ref local" "int main() { int a = 5; int & r = a; r = 9; return a; }" 9

let test_default_args () =
  check_exit "defaults" "int f(int a, int b = 10, int c = 100) { return a + b + c; }\nint main() { return f(1) - f(1, 2) - f(1, 2, 3); }" 2

let test_objects () =
  check_exit "fields and methods"
    "class Counter {\npublic:\n  Counter() : n_(0) { }\n  void add(int k) { n_ += k; }\n  int get() const { return n_; }\nprivate:\n  int n_;\n};\n\
     int main() { Counter c; c.add(3); c.add(4); return c.get(); }"
    7;
  check_exit "ctor args and member init"
    "class P {\npublic:\n  P(int x, int y) : x_(x), y_(y) { }\n  int sum() { return x_ + y_; }\nprivate:\n  int x_;\n  int y_;\n};\n\
     int main() { P p(30, 12); return p.sum(); }"
    42;
  check_exit "copy semantics"
    "class B {\npublic:\n  B() : v(1) { }\n  int v;\n};\n\
     int main() { B a; B b = a; b.v = 99; return a.v; }"
    1

let test_virtual_dispatch () =
  check_exit "dynamic dispatch through base pointer"
    "class Base {\npublic:\n  virtual int id() { return 1; }\n  virtual ~Base() { }\n};\n\
     class Derived : public Base {\npublic:\n  virtual int id() { return 2; }\n};\n\
     int main() { Base *p = new Derived(); int r = p->id(); delete p; return r; }"
    2;
  check_exit "inherited fields"
    "class A {\npublic:\n  A() : x(5) { }\n  int x;\n};\n\
     class B : public A {\npublic:\n  int twice() { return x * 2; }\n};\n\
     int main() { B b; return b.twice(); }"
    10

let test_exceptions () =
  check_exit "throw and catch by class"
    "class Oops { };\nint main() { try { throw Oops(); } catch (Oops & e) { return 7; } return 0; }"
    7;
  check_exit "catch all"
    "int main() { try { throw 42; } catch (...) { return 1; } return 0; }" 1;
  check_exit "unwinds nested calls"
    "class E { };\nvoid deep(int n) { if (n == 0) throw E(); deep(n - 1); }\n\
     int main() { try { deep(5); } catch (E & e) { return 3; } return 0; }"
    3;
  check_exit "derived caught as base"
    "class Base { };\nclass Derived : public Base { };\n\
     int main() { try { throw Derived(); } catch (Base & e) { return 1; } return 0; }"
    1

let test_vector_builtin () =
  check_exit "push_back and size"
    "#include <vector.h>\nint main() { vector<int> v; for (int i = 0; i < 5; i++) v.push_back(i * i); return v[4]; }"
    16;
  check_exit "subscript write" "#include <vector.h>\nint main() { vector<int> v(3); v[1] = 42; return v[1]; }" 42;
  check_exit "pop_back and empty"
    "#include <vector.h>\nint main() { vector<int> v; v.push_back(1); v.pop_back(); return v.empty() ? 5 : 6; }"
    5

let test_iostream () =
  check_output "cout chain" "#include <iostream.h>\nint main() { cout << \"x=\" << 42 << endl; return 0; }" "x=42\n";
  check_output "doubles" "#include <iostream.h>\nint main() { cout << 2.5 << endl; return 0; }" "2.5\n";
  check_output "bools print as ints" "#include <iostream.h>\nint main() { cout << true << false << endl; return 0; }" "10\n"

let test_stack_program_output () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  let r = Pdt_tau.Interp.run c.Pdt.program in
  Alcotest.(check int) "exit 0" 0 r.exit_code;
  Alcotest.(check string) "LIFO output" "9\n8\n7\n6\n5\n4\n3\n2\n1\n0\n" r.output

let test_stack_overflow_exception () =
  let vfs = Pdt_workloads.Stack.vfs () in
  Pdt_util.Vfs.add_file vfs "TestStackAr.cpp"
    "#include \"StackAr.h\"\nint main() {\n  Stack<int> s(2);\n  try {\n    for (int i = 0; i < 5; i++)\n      s.push(i);\n  } catch (Overflow & e) {\n    return 42;\n  }\n  return 0;\n}\n";
  let c = Pdt.compile_exn ~vfs "TestStackAr.cpp" in
  let r = Pdt_tau.Interp.run c.Pdt.program in
  Alcotest.(check int) "Overflow thrown at capacity" 42 r.exit_code

let test_krylov_converges () =
  let vfs = Pdt_workloads.Pooma_like.vfs ~n:8 () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Pooma_like.main_file in
  let r = Pdt_tau.Interp.run c.Pdt.program in
  Alcotest.(check int) "exit 0" 0 r.exit_code;
  (* for the 1-D Laplacian with b = 1: x_1 = n/2 *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "converged" true
    (contains r.output "converged=1" && contains r.output "x0=4")

let test_determinism () =
  let src = Pdt_workloads.Generator.single_file_program () in
  let r1 = run src and r2 = run src in
  Alcotest.(check int) "same exit" r1.exit_code r2.exit_code;
  Alcotest.(check int64) "same cycles" r1.cycles r2.cycles

let test_step_limit () =
  let c = Pdt.compile_string "int main() { while (true) { } return 0; }" in
  match Pdt_tau.Interp.run ~max_steps:10_000L c.Pdt.program with
  | exception Pdt_tau.Interp.Runtime_error msg ->
      Alcotest.(check bool) "step limit message" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected step limit"

let test_globals_initialized () =
  check_exit "global init order"
    "int a = 10;\nint b = a + 5;\nint main() { return b; }" 15

let test_operator_overloading_runtime () =
  check_exit "operator+ and operator=="
    "class C {\npublic:\n  C(int v) : v_(v) { }\n  C operator+(const C & o) const { return C(v_ + o.v_); }\n\
     \  bool operator==(const C & o) const { return v_ == o.v_; }\n  int val() const { return v_; }\nprivate:\n  int v_;\n};\n\
     int main() { C a(20); C b(22); C c = a + b; if (c == C(42)) return c.val(); return 0; }"
    42

let test_function_template_runtime () =
  check_exit "instantiated templates compute"
    "template <class T> T max2(T a, T b) { if (a < b) return b; return a; }\n\
     int main() { return max2(3, 9) + (int)max2(1.5, 2.5); }"
    11

let suite =
  [ Alcotest.test_case "casts convert" `Quick test_casts_convert;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "references" `Quick test_references;
    Alcotest.test_case "default arguments" `Quick test_default_args;
    Alcotest.test_case "objects" `Quick test_objects;
    Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch;
    Alcotest.test_case "exceptions" `Quick test_exceptions;
    Alcotest.test_case "vector builtin" `Quick test_vector_builtin;
    Alcotest.test_case "iostream output" `Quick test_iostream;
    Alcotest.test_case "Stack program output" `Quick test_stack_program_output;
    Alcotest.test_case "Stack overflow exception" `Quick test_stack_overflow_exception;
    Alcotest.test_case "Krylov solver converges" `Quick test_krylov_converges;
    Alcotest.test_case "deterministic execution" `Quick test_determinism;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "global initialization" `Quick test_globals_initialized;
    Alcotest.test_case "operator overloading at runtime" `Quick test_operator_overloading_runtime;
    Alcotest.test_case "function templates at runtime" `Quick test_function_template_runtime ]
