(* Java front-end tests: the paper's §6 Java IL Analyzer. *)

open Pdt_il.Il

let demo_src =
  {|package org.acl.solvers;

import java.util.List;

public interface Solver {
    double solve(double rhs);
}

public class Vector3 {
    private double x;
    private double y;
    private double z;

    public Vector3(double x, double y, double z) {
        this.x = x;
        this.y = y;
        this.z = z;
    }

    public double dot(Vector3 other) {
        return x * other.x + y * other.y + z * other.z;
    }

    public double normSquared() {
        return this.dot(this);
    }

    public static Vector3 zero() {
        return new Vector3(0.0, 0.0, 0.0);
    }
}

public class JacobiSolver implements Solver {
    private Vector3 state;
    private int iterations;

    public JacobiSolver() {
        state = Vector3.zero();
        iterations = 0;
    }

    public double solve(double rhs) {
        double residual = rhs;
        while (residual > 0.001) {
            residual = residual / 2.0;
            iterations = iterations + 1;
        }
        return state.normSquared() + residual;
    }

    public final int getIterations() {
        return iterations;
    }
}
|}

let compile_ok src =
  let diags = Pdt_util.Diag.create () in
  let prog = Pdt_java.Java_sema.compile_string ~diags src in
  if Pdt_util.Diag.has_errors diags then
    Alcotest.failf "Java compile errors:\n%s" (Pdt_util.Diag.to_string diags);
  prog

let demo () = compile_ok demo_src

let find_class prog name =
  match List.find_opt (fun c -> c.cl_name = name) (classes prog) with
  | Some c -> c
  | None -> Alcotest.failf "class %s not found" name

let find_routine prog full =
  match List.find_opt (fun r -> routine_full_name prog r = full) (routines prog) with
  | Some r -> r
  | None -> Alcotest.failf "routine %s not found" full

let callee_names prog r =
  List.map (fun cs -> routine_full_name prog (routine prog cs.cs_callee)) (calls r)

let test_package_to_namespaces () =
  let prog = demo () in
  let names = List.map (fun n -> n.na_name) (namespaces prog) in
  Alcotest.(check (list string)) "dotted package nests" [ "org"; "acl"; "solvers" ] names;
  let solvers = List.nth (namespaces prog) 2 in
  (match solvers.na_parent with
   | Pnamespace p -> Alcotest.(check string) "parent" "acl" (namespace prog p).na_name
   | _ -> Alcotest.fail "solvers should nest in acl");
  let v3 = find_class prog "Vector3" in
  Alcotest.(check string) "class in package" "org::acl::solvers::Vector3"
    (class_full_name prog v3)

let test_interface_and_implements () =
  let prog = demo () in
  let solver = find_class prog "Solver" in
  let solve_decl = routine prog (List.hd solver.cl_funcs) in
  Alcotest.(check string) "interface method pure" "pure" (virt_to_string solve_decl.ro_virt);
  Alcotest.(check bool) "declared only" false solve_decl.ro_defined;
  let jacobi = find_class prog "JacobiSolver" in
  Alcotest.(check int) "implements as base" 1 (List.length jacobi.cl_bases);
  Alcotest.(check (list int)) "derived backlink" [ jacobi.cl_id ] solver.cl_derived

let test_fields_and_modifiers () =
  let prog = demo () in
  let v3 = find_class prog "Vector3" in
  Alcotest.(check int) "3 fields" 3 (List.length v3.cl_members);
  Alcotest.(check string) "private field" "priv"
    (access_to_string (List.hd v3.cl_members).dm_access);
  let zero = find_routine prog "org::acl::solvers::Vector3::zero" in
  Alcotest.(check bool) "static factory" true zero.ro_static;
  Alcotest.(check string) "not virtual" "no" (virt_to_string zero.ro_virt);
  let get = find_routine prog "org::acl::solvers::JacobiSolver::getIterations" in
  Alcotest.(check string) "final method not virtual" "no" (virt_to_string get.ro_virt);
  let dot = find_routine prog "org::acl::solvers::Vector3::dot" in
  Alcotest.(check string) "instance methods virtual (Java dispatch)" "virt"
    (virt_to_string dot.ro_virt);
  Alcotest.(check string) "Java linkage" "Java" dot.ro_link

let test_call_edges () =
  let prog = demo () in
  let norm = find_routine prog "org::acl::solvers::Vector3::normSquared" in
  Alcotest.(check (list string)) "this.dot(this)"
    [ "org::acl::solvers::Vector3::dot" ] (callee_names prog norm);
  let ctor = find_routine prog "org::acl::solvers::JacobiSolver::JacobiSolver" in
  Alcotest.(check bool) "ctor calls static zero() through class name" true
    (List.mem "org::acl::solvers::Vector3::zero" (callee_names prog ctor));
  let solve = find_routine prog "org::acl::solvers::JacobiSolver::solve" in
  Alcotest.(check bool) "field-receiver call" true
    (List.mem "org::acl::solvers::Vector3::normSquared" (callee_names prog solve));
  (* zero() calls the Vector3 constructor through new *)
  let zero = find_routine prog "org::acl::solvers::Vector3::zero" in
  Alcotest.(check (list string)) "new -> ctor edge"
    [ "org::acl::solvers::Vector3::Vector3" ] (callee_names prog zero)

let test_ctor_kind () =
  let prog = demo () in
  let ctor = find_routine prog "org::acl::solvers::Vector3::Vector3" in
  Alcotest.(check bool) "constructor kind" true (ctor.ro_kind = Rk_ctor);
  Alcotest.(check string) "signature" "void (double, double, double)"
    (type_name prog ctor.ro_sig)

let test_pdb_and_tools () =
  let prog = demo () in
  let pdb = Pdt_analyzer.Analyzer.run prog in
  let s = Pdt_pdb.Pdb_write.to_string pdb in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "Java rlink in PDB" true (contains "rlink Java");
  Alcotest.(check bool) "namespaces emitted" true (contains "na#");
  let s' = Pdt_pdb.Pdb_write.to_string (Pdt_pdb.Pdb_parse.of_string s) in
  Alcotest.(check string) "roundtrip" s s';
  let d = Pdt_ductape.Ductape.index pdb in
  Alcotest.(check (list string)) "consistent" [] (Pdt_tools.Pdbconv.check d);
  (* call graph through the common tools *)
  let solve =
    List.find
      (fun (r : Pdt_pdb.Pdb.routine_item) ->
        r.ro_name = "solve" && Pdt_pdb.Pdb.routine_full_name (Pdt_ductape.Ductape.pdb d) r
                               <> "org::acl::solvers::Solver::solve")
      (Pdt_ductape.Ductape.routines d)
  in
  let out = Pdt_tools.Pdbtree.call_graph ~root:solve d in
  let contains_out sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "tree over Java PDB" true (contains_out "normSquared")

let test_exceptions_and_throws () =
  let prog =
    compile_ok
      "public class Risky {\n\
       \  public void danger() throws java.io.IOException {\n\
       \    throw new RuntimeException();\n  }\n\
       \  public int safe() {\n\
       \    try { danger(); return 1; } catch (Exception e) { return 0; }\n  }\n\
       }"
  in
  let danger = find_routine prog "Risky::danger" in
  (match (type_ prog danger.ro_sig).ty_kind with
   | Tfunc { exceptions = Some [ _ ]; _ } -> ()
   | _ -> Alcotest.fail "throws clause not in signature");
  let safe = find_routine prog "Risky::safe" in
  Alcotest.(check (list string)) "call inside try" [ "Risky::danger" ]
    (callee_names prog safe)

let suite =
  [ Alcotest.test_case "package -> nested namespaces" `Quick test_package_to_namespaces;
    Alcotest.test_case "interface and implements" `Quick test_interface_and_implements;
    Alcotest.test_case "fields and modifiers" `Quick test_fields_and_modifiers;
    Alcotest.test_case "call edges" `Quick test_call_edges;
    Alcotest.test_case "constructor kind" `Quick test_ctor_kind;
    Alcotest.test_case "PDB and tools over Java" `Quick test_pdb_and_tools;
    Alcotest.test_case "throws and try/catch" `Quick test_exceptions_and_throws ]
