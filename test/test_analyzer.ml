(* IL Analyzer tests: PDB emission, Figure 3 structure, template mapping. *)

module P = Pdt_pdb.Pdb
module A = Pdt_analyzer.Analyzer

let stack_pdb ?opts () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  if Pdt_util.Diag.has_errors c.Pdt.diags then
    Alcotest.failf "compile errors:\n%s" (Pdt_util.Diag.to_string c.Pdt.diags);
  A.run ?opts c.Pdt.program

let find_class pdb name =
  match List.find_opt (fun (c : P.class_item) -> c.cl_name = name) pdb.P.classes with
  | Some c -> c
  | None -> Alcotest.failf "class %s not in PDB" name

let find_file pdb name =
  match List.find_opt (fun (f : P.source_file) -> f.so_name = name) pdb.P.files with
  | Some f -> f
  | None -> Alcotest.failf "file %s not in PDB" name

let find_routine pdb name parent_name =
  match
    List.find_opt
      (fun (r : P.routine_item) ->
        r.ro_name = name && P.parent_prefix pdb r.ro_parent = parent_name)
      pdb.P.routines
  with
  | Some r -> r
  | None -> Alcotest.failf "routine %s%s not in PDB" parent_name name

(* Figure 3, item (2)/(5)/(6): the file structure with sinc lines *)
let test_fig3_files () =
  let pdb = stack_pdb () in
  let header = find_file pdb "StackAr.h" in
  let incs =
    List.map
      (fun i -> (Option.get (P.find_file pdb i)).P.so_name)
      header.P.so_includes
  in
  Alcotest.(check (list string)) "StackAr.h includes (Fig 3 (2))"
    [ "/pdt/include/kai/vector.h"; "dsexceptions.h"; "StackAr.cpp" ] incs;
  let main = find_file pdb "TestStackAr.cpp" in
  let incs =
    List.map (fun i -> (Option.get (P.find_file pdb i)).P.so_name) main.P.so_includes
  in
  Alcotest.(check bool) "main includes StackAr.h (Fig 3 (6))" true
    (List.mem "StackAr.h" incs)

(* Figure 3 (7)/(8): the class template and a memfunc template with text *)
let test_fig3_templates () =
  let pdb = stack_pdb () in
  let stack_te =
    List.find
      (fun (te : P.template_item) -> te.te_name = "Stack" && te.te_kind = "class")
      pdb.P.templates
  in
  Alcotest.(check bool) "ttext recorded" true
    (String.length stack_te.te_text > 40);
  Alcotest.(check bool) "tloc in StackAr.h" true
    ((Option.get (P.find_file pdb stack_te.te_loc.P.lfile)).P.so_name = "StackAr.h");
  let push_te =
    List.find
      (fun (te : P.template_item) -> te.te_name = "push" && te.te_kind = "memfunc")
      pdb.P.templates
  in
  Alcotest.(check bool) "push memfunc in StackAr.cpp" true
    ((Option.get (P.find_file pdb push_te.te_loc.P.lfile)).P.so_name = "StackAr.cpp")

(* Figure 3 (9): push with rclass, racs, rsig, rtempl, rcall, rpos *)
let test_fig3_routine_push () =
  let pdb = stack_pdb () in
  let push = find_routine pdb "push" "Stack<int>::" in
  Alcotest.(check string) "racs pub" "pub" push.P.ro_acs;
  Alcotest.(check string) "rlink C++" "C++" push.P.ro_link;
  Alcotest.(check string) "rstore NA" "NA" push.P.ro_store;
  Alcotest.(check string) "rvirt no" "no" push.P.ro_virt;
  Alcotest.(check string) "signature" "void (const int &)"
    (P.typeref_name pdb push.P.ro_sig);
  (* rtempl points at the memfunc template push *)
  (match push.P.ro_templ with
   | Some te ->
       let te = Option.get (P.find_template pdb te) in
       Alcotest.(check string) "rtempl name" "push" te.P.te_name;
       Alcotest.(check string) "rtempl kind" "memfunc" te.P.te_kind
   | None -> Alcotest.fail "push has no rtempl");
  (* rcall: isFull, Overflow ctor, vector::operator[] *)
  let callees =
    List.map
      (fun (c : P.call) ->
        P.routine_full_name pdb (Option.get (P.find_routine pdb c.c_callee)))
      push.P.ro_calls
  in
  Alcotest.(check bool) "calls isFull" true (List.mem "Stack<int>::isFull" callees);
  Alcotest.(check bool) "calls Overflow ctor" true
    (List.mem "Overflow::Overflow" callees);
  (* rpos: header and body recorded, in StackAr.cpp *)
  Alcotest.(check bool) "rpos body set" true (push.P.ro_pos.P.bstart <> P.null_loc);
  Alcotest.(check string) "body in StackAr.cpp" "StackAr.cpp"
    (Option.get (P.find_file pdb push.P.ro_pos.P.bstart.P.lfile)).P.so_name

(* Figure 3 (12): Stack<int> with ckind, ctempl, cfunc, cmem *)
let test_fig3_class_stack_int () =
  let pdb = stack_pdb () in
  let cl = find_class pdb "Stack<int>" in
  Alcotest.(check string) "ckind class" "class" cl.P.cl_kind;
  (match cl.P.cl_templ with
   | Some te ->
       Alcotest.(check string) "ctempl is Stack" "Stack"
         (Option.get (P.find_template pdb te)).P.te_name
   | None -> Alcotest.fail "Stack<int> has no ctempl");
  Alcotest.(check bool) "cfunc list present" true (List.length cl.P.cl_funcs >= 8);
  let members = List.map (fun m -> m.P.m_name) cl.P.cl_members in
  Alcotest.(check (list string)) "cmem (Fig 3: theArray, topOfStack)"
    [ "theArray"; "topOfStack" ] members;
  let the_array = List.hd cl.P.cl_members in
  Alcotest.(check string) "cmacs priv" "priv" the_array.P.m_acs;
  Alcotest.(check string) "cmkind var" "var" the_array.P.m_kind;
  (* cmtype points at the instantiated vector class (a cl# reference) *)
  (match the_array.P.m_type with
   | P.Clref id ->
       Alcotest.(check string) "cmtype cl# vector<int>" "vector<int>"
         (Option.get (P.find_class pdb id)).P.cl_name
   | P.Tyref _ -> Alcotest.fail "theArray's type should be a cl# reference")

(* Figure 3 (13)-(18): the type chain const int & -> ref -> tref -> int *)
let test_fig3_type_chain () =
  let pdb = stack_pdb () in
  let by_name n =
    List.find_opt
      (fun (ty : P.type_item) -> P.typeref_name pdb (P.Tyref ty.P.ty_id) = n)
      pdb.P.types
  in
  (match by_name "const int &" with
   | Some { P.ty_info = P.Yref target; _ } -> (
       match target with
       | P.Tyref id -> (
           let t = Option.get (P.find_type pdb id) in
           Alcotest.(check string) "ref -> const int" "const int"
             (P.typeref_name pdb (P.Tyref id));
           match t.P.ty_info with
           | P.Ytref { target = P.Tyref inner; yconst = true; _ } ->
               Alcotest.(check string) "tref -> int" "int"
                 (P.typeref_name pdb (P.Tyref inner))
           | _ -> Alcotest.fail "const int should be a tref")
       | _ -> Alcotest.fail "ref should point at a ty#")
   | _ -> Alcotest.fail "const int & not found or not a ref");
  (* (17): bool () const *)
  (match by_name "bool () const" with
   | Some { P.ty_info = P.Yfunc { cqual = true; args = []; _ }; _ } -> ()
   | _ -> Alcotest.fail "bool () const not found");
  (* (18): void (const int &) *)
  match by_name "void (const int &)" with
  | Some { P.ty_info = P.Yfunc { args = [ _ ]; _ }; _ } -> ()
  | _ -> Alcotest.fail "void (const int &) not found"

(* Table 1: all item kinds appear with their prefixes *)
let test_table1_coverage () =
  let pdb = stack_pdb () in
  let s = Pdt_pdb.Pdb_write.to_string pdb in
  Alcotest.(check bool) "header" true
    (String.length s > 10 && String.sub s 0 9 = "<PDB 1.1>");
  List.iter
    (fun prefix ->
      let re = Str.regexp (Str.quote (prefix ^ "#")) in
      Alcotest.(check bool) (prefix ^ "# present") true
        (try ignore (Str.search_forward re s 0); true with Not_found -> false))
    [ "so"; "ro"; "cl"; "ty"; "te"; "ma" ]

(* location-based vs id-based template mapping for specializations *)
let spec_src =
  "template <class T> class Traits {\npublic:\n  int size() { return 1; }\n};\n\
   template <> class Traits<char> {\npublic:\n  int size() { return 99; }\n};\n\
   int main() { Traits<int> a; Traits<char> b; return a.size() + b.size(); }"

let test_specialization_mapping_modes () =
  let opts = { Pdt_sema.Sema.default_options with map_specializations = true } in
  let c = Pdt.compile_string ~opts spec_src in
  (* location-based: specialization's location is outside the primary
     template's definition, so it cannot be mapped (the §3.1 limitation) *)
  let pdb_loc =
    A.run ~opts:{ A.default_options with mapping = A.Location_based } c.Pdt.program
  in
  let spec_loc = find_class pdb_loc "Traits<char>" in
  Alcotest.(check bool) "location mode: spec unmapped" true (spec_loc.P.cl_templ = None);
  let prim_loc = find_class pdb_loc "Traits<int>" in
  Alcotest.(check bool) "location mode: primary mapped" true (prim_loc.P.cl_templ <> None);
  (* id mode (the paper's proposed fix): both are mapped *)
  let pdb_ids = A.run ~opts:{ A.default_options with mapping = A.Il_ids } c.Pdt.program in
  let spec_ids = find_class pdb_ids "Traits<char>" in
  Alcotest.(check bool) "id mode: spec mapped via cstempl" true
    (spec_ids.P.cl_stempl <> None || spec_ids.P.cl_templ <> None)

let test_traversal_selection () =
  let pdb =
    stack_pdb ~opts:{ A.default_options with emit_types = false; emit_macros = false } ()
  in
  Alcotest.(check int) "no types emitted" 0 (List.length pdb.P.types);
  Alcotest.(check int) "no macros emitted" 0 (List.length pdb.P.pdb_macros);
  Alcotest.(check bool) "classes still there" true (pdb.P.classes <> [])

let test_defined_flag () =
  let pdb = stack_pdb () in
  let push = find_routine pdb "push" "Stack<int>::" in
  Alcotest.(check bool) "push defined" true push.P.ro_defined;
  let pop = find_routine pdb "pop" "Stack<int>::" in
  Alcotest.(check bool) "pop only declared (used mode)" false pop.P.ro_defined

let test_ids_dense_and_unique () =
  let pdb = stack_pdb () in
  let check_ids name ids =
    let sorted = List.sort compare ids in
    Alcotest.(check (list int)) name (List.init (List.length ids) (fun i -> i + 1)) sorted
  in
  check_ids "so ids" (List.map (fun f -> f.P.so_id) pdb.P.files);
  check_ids "cl ids" (List.map (fun (c : P.class_item) -> c.P.cl_id) pdb.P.classes);
  check_ids "ro ids" (List.map (fun (r : P.routine_item) -> r.P.ro_id) pdb.P.routines);
  check_ids "te ids" (List.map (fun (t : P.template_item) -> t.P.te_id) pdb.P.templates)

let suite =
  [ Alcotest.test_case "Fig 3: file inclusion records" `Quick test_fig3_files;
    Alcotest.test_case "Fig 3: template items" `Quick test_fig3_templates;
    Alcotest.test_case "Fig 3: routine push attributes" `Quick test_fig3_routine_push;
    Alcotest.test_case "Fig 3: class Stack<int>" `Quick test_fig3_class_stack_int;
    Alcotest.test_case "Fig 3: type chain" `Quick test_fig3_type_chain;
    Alcotest.test_case "Table 1: item kind coverage" `Quick test_table1_coverage;
    Alcotest.test_case "specialization mapping modes" `Quick test_specialization_mapping_modes;
    Alcotest.test_case "traversal selection" `Quick test_traversal_selection;
    Alcotest.test_case "used-mode defined flags" `Quick test_defined_flag;
    Alcotest.test_case "dense unique ids" `Quick test_ids_dense_and_unique ]
