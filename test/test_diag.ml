(* Diagnostic engine behavior the resilient front end leans on: recording
   order, severity counting, and the fatal / fatal_note split. *)

module D = Pdt_util.Diag
module S = Pdt_util.Srcloc

let loc line = S.make ~file:"t.cpp" ~line ~col:1

let test_ordering () =
  let eng = D.create () in
  D.warn eng (loc 1) "first";
  D.error eng (loc 2) "second";
  D.warn eng (loc 3) "third";
  D.error eng (loc 4) "fourth";
  let messages = List.map (fun (d : D.diagnostic) -> d.D.message) (D.diagnostics eng) in
  Alcotest.(check (list string)) "diagnostics come back in recording order"
    [ "first"; "second"; "third"; "fourth" ] messages

let test_mixed_severity_counts () =
  let eng = D.create () in
  D.warn eng (loc 1) "w1";
  D.error eng (loc 2) "e1";
  D.fatal_note eng (loc 3) "f1";
  D.warn eng (loc 4) "w2";
  D.error eng (loc 5) "e2";
  Alcotest.(check int) "error_count counts Error and Fatal" 3 (D.error_count eng);
  Alcotest.(check int) "warning_count counts Warning only" 2 (D.warning_count eng);
  Alcotest.(check bool) "has_errors" true (D.has_errors eng);
  Alcotest.(check int) "five diagnostics total" 5
    (List.length (D.diagnostics eng))

let test_fatal_records_before_raising () =
  let eng = D.create () in
  (match D.fatal eng (loc 7) "boom %d" 42 with
   | () -> Alcotest.fail "fatal must raise"
   | exception D.Error d ->
       Alcotest.(check string) "raised diagnostic carries the message" "boom 42"
         d.D.message);
  (* the diagnostic is on record even though fatal raised *)
  match D.diagnostics eng with
  | [ d ] ->
      Alcotest.(check bool) "recorded as Fatal" true (d.D.severity = D.Fatal);
      Alcotest.(check int) "fatal line" 7 d.D.loc.S.line;
      Alcotest.(check int) "counts as an error" 1 (D.error_count eng)
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 diagnostic, got %d" (List.length ds))

let test_fatal_note_does_not_raise () =
  let eng = D.create () in
  D.fatal_note eng (loc 9) "budget breached";
  Alcotest.(check int) "recorded" 1 (List.length (D.diagnostics eng));
  Alcotest.(check bool) "severity is Fatal" true
    (match D.diagnostics eng with
     | [ d ] -> d.D.severity = D.Fatal
     | _ -> false);
  Alcotest.(check bool) "counts toward has_errors" true (D.has_errors eng)

let test_empty_engine () =
  let eng = D.create () in
  Alcotest.(check bool) "no errors" false (D.has_errors eng);
  Alcotest.(check int) "no warnings" 0 (D.warning_count eng);
  Alcotest.(check string) "to_string is empty" "" (D.to_string eng)

let suite =
  [ Alcotest.test_case "recording order" `Quick test_ordering;
    Alcotest.test_case "mixed severity counts" `Quick test_mixed_severity_counts;
    Alcotest.test_case "fatal records before raising" `Quick
      test_fatal_records_before_raising;
    Alcotest.test_case "fatal_note records without raising" `Quick
      test_fatal_note_does_not_raise;
    Alcotest.test_case "empty engine" `Quick test_empty_engine ]
