(* Tests for the extensions beyond the paper's four utilities:
   selective instrumentation, pdbstats, compile_project. *)

module D = Pdt_ductape.Ductape
module I = Pdt_tau.Instrument

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------------- selective instrumentation ---------------- *)

let test_glob () =
  Alcotest.(check bool) "exact" true (I.glob_match "push" "push");
  Alcotest.(check bool) "star suffix" true (I.glob_match "vector*" "vector_grow");
  Alcotest.(check bool) "star prefix" true (I.glob_match "*Pop" "topAndPop");
  Alcotest.(check bool) "middle star" true (I.glob_match "is*ty" "isEmpty");
  Alcotest.(check bool) "no match" false (I.glob_match "push" "pusher");
  Alcotest.(check bool) "star matches empty" true (I.glob_match "a*b" "ab")

let test_parse_selection () =
  let sel =
    I.parse_selection
      "# comment\nBEGIN_EXCLUDE_LIST\nmatvec\nvector*\nEND_EXCLUDE_LIST\n\
       BEGIN_INCLUDE_LIST\nsolve\ndot\nEND_INCLUDE_LIST\n"
  in
  Alcotest.(check (list string)) "exclude" [ "matvec"; "vector*" ] sel.I.sel_exclude;
  Alcotest.(check (option (list string))) "include" (Some [ "solve"; "dot" ])
    sel.I.sel_include_only

let test_selection_filters_plan () =
  let vfs = Pdt_workloads.Pooma_like.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Pooma_like.main_file in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = I.plan d in
  let sel =
    I.parse_selection "BEGIN_EXCLUDE_LIST\nmatvec\noperator*\nEND_EXCLUDE_LIST\n"
  in
  let filtered = I.apply_selection sel plan in
  Alcotest.(check bool) "matvec excluded" false
    (List.exists (fun ir -> ir.I.ir_name = "matvec") filtered);
  Alcotest.(check bool) "operator[] excluded" false
    (List.exists (fun ir -> ir.I.ir_name = "operator[]") filtered);
  Alcotest.(check bool) "dot kept" true
    (List.exists (fun ir -> ir.I.ir_name = "dot") filtered);
  Alcotest.(check bool) "plan shrank" true (List.length filtered < List.length plan)

let test_include_only () =
  let sel = { I.sel_exclude = []; sel_include_only = Some [ "solve" ] } in
  Alcotest.(check bool) "solve in" true (I.selected sel "solve");
  Alcotest.(check bool) "others out" false (I.selected sel "matvec")

let test_selective_profile () =
  (* excluding the hot accessors shrinks the profile to the selected timers *)
  let vfs = Pdt_workloads.Pooma_like.vfs ~n:8 () in
  let main = Pdt_workloads.Pooma_like.main_file in
  let c = Pdt.compile_exn ~vfs main in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let sel =
    I.parse_selection
      "BEGIN_EXCLUDE_LIST\noperator*\nat\ncols\nrows\nsize\nEND_EXCLUDE_LIST\n"
  in
  let plan = I.apply_selection sel (I.plan d) in
  let vfs2, _ = I.instrument_vfs vfs plan in
  let c2 = Pdt.compile_exn ~vfs:vfs2 main in
  let r = Pdt_tau.Interp.run c2.Pdt.program in
  let names = List.map (fun (n, _, _, _, _, _) -> n) (Pdt_tau.Pprof.rows r.profile) in
  Alcotest.(check bool) "no accessor timers" false
    (List.exists (fun n -> contains n "at [") names);
  Alcotest.(check bool) "solver timers present" true
    (List.exists (fun n -> contains n "solve") names)

(* ---------------- pdbstats ---------------- *)

let stack_d () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  D.index (Pdt_analyzer.Analyzer.run c.Pdt.program)

let test_pdbstats_summary () =
  let d = stack_d () in
  let s = Pdt_tools.Pdbstats.summary d in
  Alcotest.(check bool) "routines counted" true (s.n_routines > 20);
  Alcotest.(check bool) "instantiations counted" true (s.n_instantiations >= 2);
  Alcotest.(check bool) "call edges" true (s.n_call_edges >= 15);
  (* main has the largest fan-out in this program *)
  let rs = Pdt_tools.Pdbstats.routine_stats d in
  let main = List.find (fun r -> r.Pdt_tools.Pdbstats.rs_name = "main") rs in
  Alcotest.(check int) "main fan-out equals max" s.max_fan_out
    main.Pdt_tools.Pdbstats.rs_fan_out

let test_pdbstats_inheritance_depth () =
  let src =
    "class A {}; class B : public A {}; class C : public B {};\n\
     int main() { C c; return 0; }"
  in
  let c = Pdt.compile_string src in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let cs = Pdt_tools.Pdbstats.class_stats d in
  let depth name =
    (List.find (fun x -> x.Pdt_tools.Pdbstats.cs_name = name) cs).Pdt_tools.Pdbstats.cs_depth
  in
  Alcotest.(check int) "A depth" 0 (depth "A");
  Alcotest.(check int) "B depth" 1 (depth "B");
  Alcotest.(check int) "C depth" 2 (depth "C")

let test_pdbstats_dead_code () =
  let src =
    "int used() { return 1; }\nint dead() { return 2; }\n\
     int main() { return used(); }"
  in
  let c = Pdt.compile_string src in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let s = Pdt_tools.Pdbstats.summary d in
  Alcotest.(check int) "one unreachable routine" 1 s.unreachable_from_main

let test_pdbstats_report () =
  let d = stack_d () in
  let out = Pdt_tools.Pdbstats.report d in
  Alcotest.(check bool) "has summary" true (contains out "Program statistics");
  Alcotest.(check bool) "lists Stack<int>" true (contains out "Stack<int>")

(* ---------------- compile_project ---------------- *)

let test_compile_project () =
  let vfs, files = Pdt_workloads.Generator.project_vfs ~n_tus:3 () in
  let merged, compilations = Pdt.compile_project ~vfs files in
  Alcotest.(check int) "all TUs compiled" 4 (List.length compilations);
  List.iter
    (fun c ->
      Alcotest.(check bool) "no errors" false (Pdt_util.Diag.has_errors c.Pdt.diags))
    compilations;
  let d = D.index merged in
  Alcotest.(check (list string)) "merged PDB consistent" []
    (Pdt_tools.Pdbconv.check d);
  (* the merged call graph crosses TU boundaries: main calls every driver *)
  let main =
    List.find (fun (r : Pdt_pdb.Pdb.routine_item) -> r.ro_name = "main")
      (D.routines d)
  in
  Alcotest.(check bool) "cross-TU edges resolved after merge" true
    (List.length (D.callees d main) >= 3)

let suite =
  [ Alcotest.test_case "glob matching" `Quick test_glob;
    Alcotest.test_case "selection file parsing" `Quick test_parse_selection;
    Alcotest.test_case "selection filters plan" `Quick test_selection_filters_plan;
    Alcotest.test_case "include-only list" `Quick test_include_only;
    Alcotest.test_case "selective profile" `Quick test_selective_profile;
    Alcotest.test_case "pdbstats summary" `Quick test_pdbstats_summary;
    Alcotest.test_case "pdbstats inheritance depth" `Quick test_pdbstats_inheritance_depth;
    Alcotest.test_case "pdbstats dead code" `Quick test_pdbstats_dead_code;
    Alcotest.test_case "pdbstats report" `Quick test_pdbstats_report;
    Alcotest.test_case "compile_project merge" `Quick test_compile_project ]
