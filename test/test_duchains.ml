(* Define-use chain battery (the static half of the semantic analyses).

   The reaching-definitions pass in lib/analyzer/duchain.ml is pinned
   three ways: hand-checked oracles over the duchain_demo workload (every
   def site, every use, every reach set, the maybe-uninitialized flag),
   a QCheck property over generated programs (every recorded use is
   reached by at least one definition or carries the uninitialized flag,
   and the pass is deterministic), and byte-identity of the attribute
   through every persistence and build path: ASCII (both parsers), PDB-B,
   Ductape.merge, the Domain pool, the process farm, and the incremental
   engine.  The pdbduct renderings are byte-pinned inline because they
   are also the pdbd [text] fields — the wire protocol in another hat. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape
module A = Pdt_analyzer.Analyzer
module W = Pdt_pdb.Pdb_write
module B = Pdt_build.Build
module I = Pdt_build.Incremental
module Farm = Pdt_build.Farm
module F = Pdt_util.Fault
module G = Pdt_workloads.Generator
module Demo = Pdt_workloads.Duchain_demo

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let demo_pdb () =
  let c = Pdt.compile_exn ~vfs:(Demo.vfs ()) Demo.main_file in
  A.run c.Pdt.program

let demo_d () = D.index (demo_pdb ())

let routine pdb name =
  match
    List.find_opt (fun (r : P.routine_item) -> r.P.ro_name = name) pdb.P.routines
  with
  | Some r -> r
  | None -> Alcotest.failf "routine %s not in PDB" name

let var (r : P.routine_item) name =
  match List.find_opt (fun (v : P.du_var) -> v.P.v_name = name) r.P.ro_du with
  | Some v -> v
  | None -> Alcotest.failf "no define-use data for %s in %s" name r.P.ro_name

(* every location in duchain_demo is in the single source file, so a
   (line, col) pair identifies it *)
let lc (l : P.loc) = (l.P.lline, l.P.lcol)

let use_at (v : P.du_var) (line, col) =
  match
    List.find_opt (fun (u : P.du_use) -> lc u.P.u_loc = (line, col)) v.P.v_uses
  with
  | Some u -> u
  | None -> Alcotest.failf "%s has no use at %d:%d" v.P.v_name line col

(* ---------------- hand-checked oracles (duchain_demo) ---------------- *)

let test_inventory () =
  let branchy = routine (demo_pdb ()) "branchy" in
  Alcotest.(check (list string)) "variables in declaration order"
    [ "a"; "b"; "x"; "y"; "z"; "i" ]
    (List.map (fun (v : P.du_var) -> v.P.v_name) branchy.P.ro_du);
  let counts =
    List.map
      (fun (v : P.du_var) ->
        (v.P.v_name, List.length v.P.v_defs, List.length v.P.v_uses))
      branchy.P.ro_du
  in
  Alcotest.(check (list (triple string int int))) "def/use counts"
    [ ("a", 1, 3); ("b", 1, 2); ("x", 2, 1); ("y", 1, 1); ("z", 2, 2);
      ("i", 2, 3) ]
    counts

let test_param_defs () =
  let a = var (routine (demo_pdb ()) "branchy") "a" in
  Alcotest.(check (list (pair int int))) "parameter is a def at its pi_loc"
    [ (3, 14) ] (List.map lc a.P.v_defs);
  List.iter
    (fun (u : P.du_use) ->
      Alcotest.(check (list int)) "every use reaches only the parameter def"
        [ 0 ] u.P.u_reach;
      Alcotest.(check bool) "parameters are never uninitialized" false
        u.P.u_uninit)
    a.P.v_uses;
  Alcotest.(check (list (pair int int))) "use sites of a"
    [ (4, 13); (6, 9); (11, 25) ]
    (List.map (fun (u : P.du_use) -> lc u.P.u_loc) a.P.v_uses)

let test_branch_merge () =
  (* x is defined unconditionally at 4:9 and conditionally at 7:9; the
     use after the if sees both (union at the merge point) *)
  let x = var (routine (demo_pdb ()) "branchy") "x" in
  Alcotest.(check (list (pair int int))) "defs of x"
    [ (4, 9); (7, 9) ] (List.map lc x.P.v_defs);
  let u = use_at x (10, 13) in
  Alcotest.(check (list int)) "both arms reach the merge" [ 0; 1 ] u.P.u_reach;
  Alcotest.(check bool) "x is never uninitialized" false u.P.u_uninit

let test_uninit_flag () =
  (* y is declared without an initializer and only assigned in one branch:
     the use after the if is reached by that def AND may be uninitialized *)
  let y = var (routine (demo_pdb ()) "branchy") "y" in
  Alcotest.(check (list (pair int int))) "single conditional def of y"
    [ (8, 9) ] (List.map lc y.P.v_defs);
  let u = use_at y (10, 17) in
  Alcotest.(check (list int)) "conditional def reaches the use" [ 0 ] u.P.u_reach;
  Alcotest.(check bool) "flagged maybe-uninitialized" true u.P.u_uninit;
  (* and y is the only flagged variable in the whole workload *)
  List.iter
    (fun (r : P.routine_item) ->
      List.iter
        (fun (v : P.du_var) ->
          List.iter
            (fun (u : P.du_use) ->
              if u.P.u_uninit then
                Alcotest.(check string) "only y is flagged" "y" v.P.v_name)
            v.P.v_uses)
        r.P.ro_du)
    (demo_pdb ()).P.routines

let test_compound_assign () =
  (* z += i reads z before writing it: 12:9 is both a use (reached by the
     init and the loop's own def, via the fixpoint) and a def *)
  let z = var (routine (demo_pdb ()) "branchy") "z" in
  Alcotest.(check (list (pair int int))) "defs of z"
    [ (10, 9); (12, 9) ] (List.map lc z.P.v_defs);
  let u = use_at z (12, 9) in
  Alcotest.(check (list int)) "loop-carried reach includes both defs"
    [ 0; 1 ] u.P.u_reach;
  let ret = use_at z (13, 12) in
  Alcotest.(check (list int)) "return sees init and loop def" [ 0; 1 ]
    ret.P.u_reach

let test_loop_fixpoint () =
  (* i's increment def (11:28) flows around the loop back edge into the
     condition and body uses — only a fixpoint finds that *)
  let i = var (routine (demo_pdb ()) "branchy") "i" in
  Alcotest.(check (list (pair int int))) "init and increment defs"
    [ (11, 14); (11, 28) ] (List.map lc i.P.v_defs);
  List.iter
    (fun at ->
      Alcotest.(check (list int))
        (Printf.sprintf "use at %d:%d sees both defs" (fst at) (snd at))
        [ 0; 1 ] (use_at i at).P.u_reach)
    [ (11, 21); (12, 14); (11, 28) ]

let test_straight_line () =
  let main = routine (demo_pdb ()) "main" in
  let s = var main "s" and t = var main "t" in
  Alcotest.(check (list (pair int int))) "s: one def" [ (17, 9) ]
    (List.map lc s.P.v_defs);
  Alcotest.(check (list int)) "s use reaches it" [ 0 ]
    (use_at s (18, 22)).P.u_reach;
  Alcotest.(check (list int)) "t use reaches its def" [ 0 ]
    (use_at t (19, 12)).P.u_reach

let test_no_locals_no_attribute () =
  Alcotest.(check int) "source has no tracked variables" 0
    (List.length (routine (demo_pdb ()) "source").P.ro_du)

(* ---------------- persistence ---------------- *)

let test_ascii_roundtrip_both_parsers () =
  let text = W.to_string (demo_pdb ()) in
  Alcotest.(check bool) "rdu block emitted" true (contains text "rdu y\n");
  Alcotest.(check bool) "uninit spec emitted" true
    (contains text "rduuse so#1 10 17 0,u");
  let fast = Pdt_pdb.Pdb_parse.of_string text in
  let ref_ = Pdt_pdb.Pdb_parse_ref.of_string text in
  Alcotest.(check string) "fast parser round-trips" text (W.to_string fast);
  Alcotest.(check string) "reference parser agrees" text (W.to_string ref_);
  Alcotest.(check bool) "du survives the trip" true
    ((routine fast "branchy").P.ro_du = (routine (demo_pdb ()) "branchy").P.ro_du)

let test_pdbb_roundtrip () =
  let pdb = demo_pdb () in
  let bin = Pdt_pdb.Pdb_bin.to_string pdb in
  let back = Pdt_pdb.Pdb_bin.of_string bin in
  Alcotest.(check string) "PDB-B preserves the semantic attributes"
    (W.to_string pdb) (W.to_string back)

let test_old_pdb_reads_empty () =
  (* a 1.0 file (no rdu lines) still loads; the attribute is absent, not
     an error, and tools surface the caveat instead of crashing *)
  let text = W.to_string (demo_pdb ()) in
  let stripped =
    String.split_on_char '\n' text
    |> List.filter (fun l ->
           not
             (contains l "rdu" || contains l "rspawn"))
    |> List.map (fun l -> if l = "<PDB 1.1>" then "<PDB 1.0>" else l)
    |> String.concat "\n"
  in
  let pdb = Pdt_pdb.Pdb_parse.of_string stripped in
  Alcotest.(check bool) "version marks missing semantics" true
    (P.lacks_semantics pdb);
  List.iter
    (fun (r : P.routine_item) ->
      Alcotest.(check int) "no du read" 0 (List.length r.P.ro_du))
    pdb.P.routines;
  let d = D.index pdb in
  (match Pdt_tools.Duct.semantics_note d with
   | None -> Alcotest.fail "old PDB must carry the semantics caveat"
   | Some note ->
       Alcotest.(check bool) "note names the version" true
         (contains note "version 1.0"));
  Alcotest.(check bool) "pdbstats reports absence, not zeros" true
    (contains (Pdt_tools.Pdbstats.report d) "not present");
  ignore (Pdt_tools.Pdbtree.call_graph d);
  Alcotest.(check bool) "current PDBs carry no caveat" true
    (Pdt_tools.Duct.semantics_note (demo_d ()) = None)

let test_merge_preserves_and_is_deterministic () =
  let a = demo_pdb () in
  let b =
    A.run (Pdt.compile_exn ~vfs:(Pdt_workloads.Stack.vfs ())
             Pdt_workloads.Stack.main_file).Pdt.program
  in
  let merged = D.merge [ a; b ] in
  let m1 = W.to_string merged in
  let m2 = W.to_string (D.merge [ demo_pdb (); b ]) in
  Alcotest.(check string) "merge is deterministic" m1 m2;
  (* file ids are remapped by the merge; the chain itself survives *)
  let y = var (routine merged "branchy") "y" in
  let u = use_at y (10, 17) in
  Alcotest.(check (list int)) "reach survives the merge" [ 0 ] u.P.u_reach;
  Alcotest.(check bool) "uninit flag survives the merge" true u.P.u_uninit;
  Alcotest.(check string) "use location file still duchain_demo.cpp"
    "duchain_demo.cpp"
    (Option.get (P.find_file merged u.P.u_loc.P.lfile)).P.so_name

(* ---------------- pdbduct renderings (= pdbd text fields) ------------ *)

let test_duct_find_routine () =
  let d = demo_d () in
  let branchy = routine (demo_pdb ()) "branchy" in
  (match Pdt_tools.Duct.find_routine d "branchy" with
   | Some r -> Alcotest.(check int) "by name" branchy.P.ro_id r.P.ro_id
   | None -> Alcotest.fail "find by name");
  (match Pdt_tools.Duct.find_routine d (Printf.sprintf "ro#%d" branchy.P.ro_id) with
   | Some r -> Alcotest.(check int) "by id" branchy.P.ro_id r.P.ro_id
   | None -> Alcotest.fail "find by ro#N");
  Alcotest.(check bool) "unknown name is None" true
    (Pdt_tools.Duct.find_routine d "nonexistent" = None)

let test_duct_vars_text () =
  let d = demo_d () in
  let branchy = Option.get (Pdt_tools.Duct.find_routine d "branchy") in
  Alcotest.(check string) "vars rendering"
    "define-use variables of branchy:\n\
    \  a: 1 def, 3 uses\n\
    \  b: 1 def, 2 uses\n\
    \  x: 2 defs, 1 use\n\
    \  y: 1 def, 1 use\n\
    \  z: 2 defs, 2 uses\n\
    \  i: 2 defs, 3 uses\n"
    (Pdt_tools.Duct.vars_text d branchy)

let test_duct_defs_uses_text () =
  let d = demo_d () in
  let branchy = Option.get (Pdt_tools.Duct.find_routine d "branchy") in
  let x = Option.get (Pdt_tools.Duct.var_in branchy "x") in
  Alcotest.(check string) "defs rendering"
    "defs of x in branchy:\n\
    \  [0] duchain_demo.cpp:4:9\n\
    \  [1] duchain_demo.cpp:7:9\n"
    (Pdt_tools.Duct.defs_text d branchy x);
  let y = Option.get (Pdt_tools.Duct.var_in branchy "y") in
  Alcotest.(check string) "uses rendering carries the uninit marker"
    "uses of y in branchy:\n\
    \  duchain_demo.cpp:10:17 <- defs [0] (maybe uninitialized)\n"
    (Pdt_tools.Duct.uses_text d branchy y)

let test_duct_chain_text () =
  let d = demo_d () in
  let branchy = Option.get (Pdt_tools.Duct.find_routine d "branchy") in
  let y = Option.get (Pdt_tools.Duct.var_in branchy "y") in
  Alcotest.(check string) "chain rendering"
    "define-use chains of y in branchy:\n\
    \  [0] duchain_demo.cpp:8:9\n\
    \    -> duchain_demo.cpp:10:17 (maybe uninitialized)\n\
    \  ! duchain_demo.cpp:10:17 may be used uninitialized\n"
    (Pdt_tools.Duct.chain_text d branchy y)

let test_duct_walks_agree () =
  (* the forward walk (uses_of_def) and backward walk (defs_of_use) are
     inverse views of the same relation *)
  List.iter
    (fun (r : P.routine_item) ->
      List.iter
        (fun (v : P.du_var) ->
          List.iteri
            (fun i _ ->
              List.iter
                (fun (u : P.du_use) ->
                  Alcotest.(check bool) "forward = backward" true
                    (List.mem i u.P.u_reach
                     = List.exists (fun (j, _) -> j = i)
                         (Pdt_tools.Duct.defs_of_use v u)))
                (Pdt_tools.Duct.uses_of_def v i))
            v.P.v_defs)
        r.P.ro_du)
    (demo_pdb ()).P.routines

let test_pdbstats_du_lines () =
  let out = Pdt_tools.Pdbstats.report (demo_d ()) in
  Alcotest.(check bool) "var/use totals" true
    (contains out "define-use        : 8 vars, 14 uses (1 possibly uninitialized)")

(* ---------------- the property ---------------- *)

(* Over generated workloads: every recorded use is reached by at least
   one definition or flagged maybe-uninitialized; reach indices are
   well-formed; and the pass is deterministic (two runs, equal bytes). *)
let prop_uses_reached =
  QCheck.Test.make ~count:20 ~name:"duchain: every use reached or flagged"
    QCheck.(make Gen.(int_range 1 1000))
    (fun seed ->
      let cfg = { G.default_config with G.seed } in
      let vfs = Pdt_util.Vfs.create () in
      Pdt_util.Vfs.add_file vfs "gen.cpp" (G.single_file_program ~cfg ());
      let c = Pdt.compile ~vfs "gen.cpp" in
      let pdb = A.run c.Pdt.program in
      let pdb2 = A.run c.Pdt.program in
      if W.to_string pdb <> W.to_string pdb2 then
        QCheck.Test.fail_report "du pass is nondeterministic";
      List.iter
        (fun (r : P.routine_item) ->
          List.iter
            (fun (v : P.du_var) ->
              let ndefs = List.length v.P.v_defs in
              List.iter
                (fun (u : P.du_use) ->
                  if u.P.u_reach = [] && not u.P.u_uninit then
                    QCheck.Test.fail_reportf
                      "%s.%s use at %d:%d reached by nothing and not flagged"
                      r.P.ro_name v.P.v_name u.P.u_loc.P.lline u.P.u_loc.P.lcol;
                  List.iter
                    (fun i ->
                      if i < 0 || i >= ndefs then
                        QCheck.Test.fail_reportf "%s.%s: reach index %d out of %d"
                          r.P.ro_name v.P.v_name i ndefs)
                    u.P.u_reach)
                v.P.v_uses)
            r.P.ro_du)
        pdb.P.routines;
      true)

(* ---------------- build-path byte identity ---------------- *)

let fresh_dir () =
  let f = Filename.temp_file "pdt-du-test" ".cache" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let test_build_paths_byte_identical () =
  let reference =
    Pdt_pdb.Pdb_write.to_string
      (B.build ~options:{ B.default_options with domains = 1 }
         ~vfs:(Demo.vfs ()) [ Demo.main_file ])
        .B.merged
  in
  let pool =
    B.build ~options:{ B.default_options with domains = 2 }
      ~vfs:(Demo.vfs ()) [ Demo.main_file ]
  in
  Alcotest.(check string) "Domain pool bytes" reference
    (Pdt_pdb.Pdb_write.to_string pool.B.merged);
  let farm =
    Farm.build
      ~config:{ Farm.default_config with Farm.workers = 2 }
      ~options:B.default_options ~vfs:(Demo.vfs ()) [ Demo.main_file ]
  in
  Alcotest.(check string) "farm bytes" reference
    (Pdt_pdb.Pdb_write.to_string farm.B.merged);
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let incr =
    I.build
      ~options:
        { I.default_options with
          build = { B.default_options with domains = 1; cache_dir = Some dir } }
      ~vfs:(Demo.vfs ()) [ Demo.main_file ]
  in
  Alcotest.(check string) "incremental cold bytes" reference
    (Pdt_pdb.Pdb_write.to_string incr.I.merged);
  let warm =
    I.build
      ~options:
        { I.default_options with
          build = { B.default_options with domains = 1; cache_dir = Some dir } }
      ~vfs:(Demo.vfs ()) [ Demo.main_file ]
  in
  Alcotest.(check string) "incremental warm bytes" reference
    (Pdt_pdb.Pdb_write.to_string warm.I.merged)

(* ---------------- the pdbduct executable ---------------- *)

let pdbduct_exe () =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "pdbduct.exe")

let run_pdbduct args =
  let out = Filename.temp_file "pdt-duct" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove out) @@ fun () ->
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null"
      (Filename.quote (pdbduct_exe ()))
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  (code, Test_golden.read_file out)

let test_cli_smoke_over_corpus () =
  if not (Sys.file_exists (pdbduct_exe ())) then
    Alcotest.failf "pdbduct.exe not built at %s" (pdbduct_exe ());
  (* every golden PDB answers vars/spawns/mhp for its first routine *)
  List.iter
    (fun (name, _) ->
      let path = Test_golden.golden_read_path name in
      if Sys.file_exists path then begin
        let pdb = Pdt_pdb.Pdb_parse.of_string (Test_golden.read_file path) in
        match pdb.P.routines with
        | [] -> ()
        | r :: _ ->
            let key = Printf.sprintf "ro#%d" r.P.ro_id in
            List.iter
              (fun cmd ->
                let code, _ = run_pdbduct [ path; cmd; key ] in
                Alcotest.(check int)
                  (Printf.sprintf "%s %s %s exits 0" name cmd key)
                  0 code)
              [ "vars"; "spawns" ];
            let code, _ = run_pdbduct [ path; "mhp" ] in
            Alcotest.(check int) (name ^ " mhp exits 0") 0 code
      end)
    Test_golden.corpus

let test_cli_answers_match_oracle () =
  let path = Test_golden.golden_read_path "duchain_demo" in
  if not (Sys.file_exists path) then
    Alcotest.fail "duchain_demo golden missing — regenerate the corpus";
  let code, out = run_pdbduct [ path; "chain"; "branchy"; "y" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "CLI output = library rendering"
    "define-use chains of y in branchy:\n\
    \  [0] duchain_demo.cpp:8:9\n\
    \    -> duchain_demo.cpp:10:17 (maybe uninitialized)\n\
    \  ! duchain_demo.cpp:10:17 may be used uninitialized\n"
    out

let test_cli_errors () =
  let path = Test_golden.golden_read_path "duchain_demo" in
  if not (Sys.file_exists path) then
    Alcotest.fail "duchain_demo golden missing — regenerate the corpus";
  let code, _ = run_pdbduct [ path; "vars"; "nonexistent" ] in
  Alcotest.(check int) "unknown routine exits 1" 1 code;
  let code, _ = run_pdbduct [ path; "defs"; "branchy"; "nosuchvar" ] in
  Alcotest.(check int) "unknown variable exits 1" 1 code;
  let code, _ = run_pdbduct [ path; "frobnicate" ] in
  Alcotest.(check int) "unknown command exits 1" 1 code

(* ---------------- the fault site ---------------- *)

let test_du_fault_is_clean () =
  (* a crash mid-pass surfaces as the injection exception — never a
     half-written attribute: the retry produces reference bytes *)
  let reference = W.to_string (demo_pdb ()) in
  (match
     F.with_faults ~sites:[ "analyzer.du" ] ~seed:3 ~rate:1.0 ~max_faults:1
       (fun () -> demo_pdb ())
   with
  | exception F.Injected _ -> ()
  | _ -> Alcotest.fail "armed du fault did not fire");
  Alcotest.(check string) "retry converges to reference bytes" reference
    (W.to_string (demo_pdb ()))

let suite =
  [ Alcotest.test_case "oracle: variable inventory" `Quick test_inventory;
    Alcotest.test_case "oracle: parameters are defs" `Quick test_param_defs;
    Alcotest.test_case "oracle: branch merge unions reach" `Quick
      test_branch_merge;
    Alcotest.test_case "oracle: maybe-uninitialized flag" `Quick
      test_uninit_flag;
    Alcotest.test_case "oracle: compound assign is use-then-def" `Quick
      test_compound_assign;
    Alcotest.test_case "oracle: loop back edge (fixpoint)" `Quick
      test_loop_fixpoint;
    Alcotest.test_case "oracle: straight-line main" `Quick test_straight_line;
    Alcotest.test_case "no locals, no attribute" `Quick
      test_no_locals_no_attribute;
    Alcotest.test_case "ASCII round-trip, both parsers" `Quick
      test_ascii_roundtrip_both_parsers;
    Alcotest.test_case "PDB-B round-trip" `Quick test_pdbb_roundtrip;
    Alcotest.test_case "1.0 PDBs read as absent, tools warn" `Quick
      test_old_pdb_reads_empty;
    Alcotest.test_case "merge preserves du, deterministically" `Quick
      test_merge_preserves_and_is_deterministic;
    Alcotest.test_case "pdbduct routine lookup" `Quick test_duct_find_routine;
    Alcotest.test_case "pdbduct vars rendering" `Quick test_duct_vars_text;
    Alcotest.test_case "pdbduct defs/uses renderings" `Quick
      test_duct_defs_uses_text;
    Alcotest.test_case "pdbduct chain rendering" `Quick test_duct_chain_text;
    Alcotest.test_case "forward and backward walks agree" `Quick
      test_duct_walks_agree;
    Alcotest.test_case "pdbstats du summary" `Quick test_pdbstats_du_lines;
    QCheck_alcotest.to_alcotest prop_uses_reached;
    Alcotest.test_case "pool/farm/incremental byte identity" `Quick
      test_build_paths_byte_identical;
    Alcotest.test_case "CLI smoke over the golden corpus" `Quick
      test_cli_smoke_over_corpus;
    Alcotest.test_case "CLI answers match the oracle" `Quick
      test_cli_answers_match_oracle;
    Alcotest.test_case "CLI error paths" `Quick test_cli_errors;
    Alcotest.test_case "fault mid-pass stays clean" `Quick
      test_du_fault_is_clean ]
