(* Deterministic mutation fuzzing of the resilient front end.

   Thousands of seeded mutants of the workload corpus run through the full
   preprocess -> lex -> parse -> sema -> PDB pipeline.  The invariant under
   test: the front end either produces a PDB (possibly partial) or clean
   diagnostics — never an escaped exception, stack overflow, or hang.  Any
   PDB produced must re-parse through both PDB parsers.  Failing inputs are
   written to fuzz-failures/ so CI can upload them as an artifact.

   The mutant count defaults to 2000 and can be overridden with the
   PDT_FUZZ_MUTANTS environment variable. *)

module G = Pdt_workloads.Generator
module Stack = Pdt_workloads.Stack
module Ministl = Pdt_workloads.Ministl
module L = Pdt_util.Limits
module P = Pdt_pdb.Pdb

(* xorshift64* PRNG, the same idiom as the workload generator: fully
   deterministic from the seed, no global state *)
type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int ((seed * 2654435761) + 99991) }

let next r =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFL)

let pick r lst = List.nth lst (next r mod List.length lst)

(* ---------------- mutation operators ---------------- *)

let nasty_chars = [ '{'; '}'; '('; ')'; ';'; '<'; '>'; '"'; '\''; '\\'; '#'; '*'; ','; ':' ]

let nasty_tokens =
  [ "{"; "}"; "("; ")"; ";"; "<"; ">"; "::"; "..."; "\"";
    "/*"; "*/"; "//"; "template <class T>"; "template <";
    "#include \"StackAr.h\""; "#include \"nosuch.h\"";
    "#define X X X"; "#define"; "#if"; "#endif"; "#error boom";
    "((((((((("; ")))))"; "<<<<<"; ">>"; "operator"; "~";
    "spawn"; "join"; "spawn f("; "join ;"; "spawn spawn"; "join join f" ]

let mutate_once r s =
  let n = String.length s in
  if n = 0 then pick r nasty_tokens
  else
    match next r mod 6 with
    | 0 ->
        (* delete a span *)
        let i = next r mod n in
        let len = min (1 + (next r mod 60)) (n - i) in
        String.sub s 0 i ^ String.sub s (i + len) (n - i - len)
    | 1 ->
        (* duplicate a span *)
        let i = next r mod n in
        let len = min (1 + (next r mod 40)) (n - i) in
        String.sub s 0 (i + len) ^ String.sub s i (n - i)
    | 2 ->
        (* insert a structural character *)
        let i = next r mod (n + 1) in
        String.sub s 0 i
        ^ String.make 1 (pick r nasty_chars)
        ^ String.sub s i (n - i)
    | 3 ->
        (* replace one character *)
        let i = next r mod n in
        let b = Bytes.of_string s in
        Bytes.set b i (pick r nasty_chars);
        Bytes.to_string b
    | 4 ->
        (* truncate *)
        String.sub s 0 (next r mod n)
    | _ ->
        (* insert a nasty token *)
        let i = next r mod (n + 1) in
        String.sub s 0 i ^ pick r nasty_tokens ^ String.sub s i (n - i)

let mutate r s =
  let rounds = 1 + (next r mod 3) in
  let rec go s k = if k = 0 then s else go (mutate_once r s) (k - 1) in
  go s rounds

(* ---------------- corpus ---------------- *)

(* Each entry: label, files to mount, main to compile, file to mutate.
   Mutating a header (not the main file) exercises recovery across the
   preprocessor's include machinery too. *)
let corpus () =
  let gen_files = G.project_files ~n_tus:2 () in
  [ ("stack-main", Stack.files, Stack.main_file, Stack.main_file);
    ("stack-header", Stack.files, Stack.main_file, "StackAr.h");
    ("gen-tu", gen_files, "tu0.cpp", "tu0.cpp");
    ("gen-header", gen_files, "main.cpp", "generated.h");
    (* spawn/join in the seed puts every mutation on top of the
       contextual-keyword productions *)
    ("spawn", Pdt_workloads.Parallel_spawn.files,
     Pdt_workloads.Parallel_spawn.main_file,
     Pdt_workloads.Parallel_spawn.main_file) ]

let build_vfs files =
  let vfs = Pdt_util.Vfs.create () in
  Ministl.mount vfs;
  List.iter (fun (p, c) -> Pdt_util.Vfs.add_file vfs p c) files;
  vfs

(* Tight token/error budgets keep pathological mutants fast while still
   driving every limit code path; the breach is a recorded Fatal, which is
   an acceptable outcome. *)
let fuzz_budgets =
  { L.default_budgets with L.max_tokens = 200_000; max_errors = 32 }

let failures_dir = "fuzz-failures"

let dump_failure ~label ~seed ~path ~src ~reason =
  if not (Sys.file_exists failures_dir) then Unix.mkdir failures_dir 0o755;
  let base = Printf.sprintf "%s/%s-seed%d" failures_dir label seed in
  let oc = open_out (base ^ ".input") in
  output_string oc src;
  close_out oc;
  let oc = open_out (base ^ ".txt") in
  Printf.fprintf oc "corpus: %s\nseed: %d\nmutated file: %s\nreason: %s\n"
    label seed path reason;
  close_out oc;
  Printf.sprintf "%s (input saved to %s.input)" reason base

let n_mutants () =
  match Sys.getenv_opt "PDT_FUZZ_MUTANTS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2000)
  | None -> 2000

(* One mutant through the whole pipeline.  Returns None on success, or
   Some reason on an invariant violation. *)
let run_one ~label ~files ~main ~target ~seed : string option =
  let r = rng seed in
  let base = List.assoc target files in
  let mutant = mutate r base in
  let files = (target, mutant) :: List.remove_assoc target files in
  let vfs = build_vfs files in
  let limits = L.create ~budgets:fuzz_budgets () in
  let t0 = Unix.gettimeofday () in
  let outcome =
    match Pdt.compile ~limits ~vfs main with
    | c -> (
        (* a compilation came back: its PDB must serialize and re-parse
           through both parsers, partial or not *)
        let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
        if Pdt_util.Diag.has_errors c.Pdt.diags then begin
          pdb.P.incomplete <- true;
          pdb.P.diag_count <- Pdt_util.Diag.error_count c.Pdt.diags
        end;
        let s = Pdt_pdb.Pdb_write.to_string pdb in
        match (Pdt_pdb.Pdb_parse.of_string s, Pdt_pdb.Pdb_parse_ref.of_string s) with
        | p1, p2 ->
            if p1.P.incomplete <> pdb.P.incomplete
               || p2.P.incomplete <> pdb.P.incomplete then
              Some "incomplete marker lost in PDB round-trip"
            else None
        | exception e ->
            Some ("emitted PDB failed to re-parse: " ^ Printexc.to_string e))
    | exception Pdt_util.Diag.Error _ ->
        (* clean diagnostics path (unreadable main file) *)
        None
    | exception Stack_overflow -> Some "stack overflow escaped the front end"
    | exception e -> Some ("escaped exception: " ^ Printexc.to_string e)
  in
  let dt = Unix.gettimeofday () -. t0 in
  match outcome with
  | Some reason -> Some (dump_failure ~label ~seed ~path:target ~src:mutant ~reason)
  | None when dt > 10.0 ->
      Some
        (dump_failure ~label ~seed ~path:target ~src:mutant
           ~reason:(Printf.sprintf "mutant took %.1fs (wall-clock bound 10s)" dt))
  | None -> None

let test_fuzz_matrix () =
  let total = n_mutants () in
  let entries = corpus () in
  let n_entries = List.length entries in
  let failures = ref [] in
  for i = 0 to total - 1 do
    let label, files, main, target = List.nth entries (i mod n_entries) in
    match run_one ~label ~files ~main ~target ~seed:i with
    | None -> ()
    | Some msg -> failures := msg :: !failures
  done;
  match !failures with
  | [] -> ()
  | msgs ->
      Alcotest.fail
        (Printf.sprintf "%d/%d mutants violated the no-crash invariant:\n%s"
           (List.length msgs) total
           (String.concat "\n" (List.rev msgs)))

(* ---------------- hand-written recovery cases ---------------- *)

let compile_src ?budgets src =
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.add_file vfs "main.cpp" src;
  let limits =
    match budgets with
    | Some b -> L.create ~budgets:b ()
    | None -> L.default ()
  in
  Pdt.compile ~limits ~vfs "main.cpp"

let routine_names pdb =
  List.map (fun (ro : P.routine_item) -> ro.P.ro_name) pdb.P.routines

(* k recoverable syntax errors: >= min(k, max-errors) diagnostics, and the
   PDB still contains every declaration outside the damaged regions. *)
let k_errors_src =
  {|
int good1( ) { return 1; }
int bad1( ) { int x = ; return 0; }
int good2( ) { return 2; }
class Good3 {
public:
    int method3( ) { return 3; }
};
int bad2( ) { return (1 + ; }
int good4( ) { return good1( ) + good2( ); }
int bad3( ) { ] ; return 0; }
int good5( ) { return 5; }
|}

let test_recovery_collects_k_errors () =
  let c = compile_src k_errors_src in
  let n_errors = Pdt_util.Diag.error_count c.Pdt.diags in
  Alcotest.(check bool)
    (Printf.sprintf "3 damaged regions yield >= 3 diagnostics (got %d)" n_errors)
    true (n_errors >= 3);
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let names = routine_names pdb in
  List.iter
    (fun good ->
      Alcotest.(check bool)
        (Printf.sprintf "%s survives recovery" good)
        true (List.mem good names))
    [ "good1"; "good2"; "good4"; "good5"; "method3" ];
  Alcotest.(check bool) "class Good3 survives recovery" true
    (List.exists (fun (cl : P.class_item) -> cl.P.cl_name = "Good3") pdb.P.classes)

let test_max_errors_stops_recovery () =
  let budgets = { L.default_budgets with L.max_errors = 2 } in
  let c = compile_src ~budgets k_errors_src in
  let diags = Pdt_util.Diag.diagnostics c.Pdt.diags in
  Alcotest.(check bool) "at least the budget's diagnostics recorded" true
    (Pdt_util.Diag.error_count c.Pdt.diags >= 2);
  Alcotest.(check bool) "the bail-out is itself recorded" true
    (List.exists
       (fun (d : Pdt_util.Diag.diagnostic) ->
         d.Pdt_util.Diag.severity = Pdt_util.Diag.Fatal)
       diags)

(* every mangled shape of the contextual spawn/join syntax: the parser
   must fall back to ordinary statement parsing (degrade), never raise —
   and a recovered compilation must still serialize and re-parse *)
let test_spawn_join_mutants_degrade () =
  let shapes =
    [ "spawn;"; "spawn"; "spawn ("; "spawn f("; "spawn f()"; "spawn 42;";
      "spawn f(;"; "spawn f() g();"; "spawn spawn f();"; "spawn ::;";
      "join"; "join ("; "join f"; "join f();"; "join 42;"; "join ::;";
      "join f g;"; "join; join; join;"; "spawn f(); join f; join f;";
      "spawn f(1,;"; "spawn class;"; "join template;" ]
  in
  List.iter
    (fun shape ->
      let src =
        Printf.sprintf "int f() { return 1; }\nint main() { %s return 0; }"
          shape
      in
      match compile_src src with
      | c -> (
          let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
          let s = Pdt_pdb.Pdb_write.to_string pdb in
          match Pdt_pdb.Pdb_parse.of_string s with
          | _ -> ()
          | exception e ->
              Alcotest.failf "%S: emitted PDB failed to re-parse: %s" shape
                (Printexc.to_string e))
      | exception Pdt_util.Diag.Error _ -> ()
      | exception e ->
          Alcotest.failf "%S escaped the front end: %s" shape
            (Printexc.to_string e))
    shapes

(* deep expression nesting: the parser-recursion budget turns a would-be
   stack overflow into a recorded Fatal and a partial AST *)
let test_parse_depth_limit () =
  let n = 5_000 in
  let src =
    "int deep( ) { return "
    ^ String.concat "" (List.init n (fun _ -> "("))
    ^ "1"
    ^ String.concat "" (List.init n (fun _ -> ")"))
    ^ "; }\nint after( ) { return 2; }\n"
  in
  let c = compile_src src in
  Alcotest.(check bool) "depth breach recorded" true
    (Pdt_util.Diag.has_errors c.Pdt.diags)

(* a #define chain deeper than the macro budget: recorded, not crashed *)
let test_macro_depth_limit () =
  let n = 300 in
  let b = Buffer.create 4096 in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "#define A%d A%d\n" i (i + 1))
  done;
  Buffer.add_string b (Printf.sprintf "#define A%d 1\n" n);
  Buffer.add_string b "int x = A0;\n";
  let c = compile_src (Buffer.contents b) in
  Alcotest.(check bool) "macro depth breach recorded" true
    (Pdt_util.Diag.has_errors c.Pdt.diags)

(* token-count budget: an exponential macro expansion is cut short *)
let test_token_limit () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "#define T0 x x\n";
  for i = 1 to 24 do
    Buffer.add_string b (Printf.sprintf "#define T%d T%d T%d\n" i (i - 1) (i - 1))
  done;
  Buffer.add_string b "int y = T24;\n";
  let budgets = { L.default_budgets with L.max_tokens = 10_000 } in
  let c = compile_src ~budgets (Buffer.contents b) in
  Alcotest.(check bool) "token blowup recorded" true
    (Pdt_util.Diag.has_errors c.Pdt.diags)

(* the include-depth diagnostic names the actual cycle *)
let test_include_cycle_reports_chain () =
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.add_file vfs "a.h" "#include \"b.h\"\n";
  Pdt_util.Vfs.add_file vfs "b.h" "#include \"a.h\"\n";
  Pdt_util.Vfs.add_file vfs "main.cpp" "#include \"a.h\"\nint main( ) { return 0; }\n";
  let limits = L.create ~budgets:{ L.default_budgets with L.max_include_depth = 8 } () in
  let c = Pdt.compile ~limits ~vfs "main.cpp" in
  let has_sub s sub =
    let ls = String.length sub and ln = String.length s in
    let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
    go 0
  in
  let text = Pdt_util.Diag.to_string c.Pdt.diags in
  Alcotest.(check bool) "breach recorded" true (Pdt_util.Diag.has_errors c.Pdt.diags);
  Alcotest.(check bool) "message shows the include chain" true
    (has_sub text "include chain:");
  Alcotest.(check bool) "chain names both headers" true
    (has_sub text "a.h" && has_sub text "b.h")

(* a partial PDB re-parses cleanly and merges; the merge keeps the marker
   and sums the diagnostic counts *)
let test_partial_pdb_merges () =
  let c = compile_src k_errors_src in
  let partial = Pdt_analyzer.Analyzer.run c.Pdt.program in
  partial.P.incomplete <- true;
  partial.P.diag_count <- Pdt_util.Diag.error_count c.Pdt.diags;
  let clean =
    let c = compile_src "int clean( ) { return 0; }\n" in
    Pdt_analyzer.Analyzer.run c.Pdt.program
  in
  let reparsed = Pdt_pdb.Pdb_parse.of_string (Pdt_pdb.Pdb_write.to_string partial) in
  Alcotest.(check bool) "round-trip keeps incomplete" true reparsed.P.incomplete;
  Alcotest.(check int) "round-trip keeps the diag count" partial.P.diag_count
    reparsed.P.diag_count;
  let merged = Pdt_ductape.Ductape.merge [ clean; reparsed ] in
  Alcotest.(check bool) "merge is incomplete" true merged.P.incomplete;
  Alcotest.(check int) "merge sums diag counts" partial.P.diag_count
    merged.P.diag_count;
  Alcotest.(check bool) "merge kept the clean unit's routine" true
    (List.mem "clean" (routine_names merged));
  (* a complete PDB stays byte-identical to the pre-attribute format:
     no header marker, parses with diag_count 0 *)
  let s = Pdt_pdb.Pdb_write.to_string clean in
  Alcotest.(check bool) "complete PDB has no incomplete marker" false
    (let has_sub s sub =
       let ls = String.length sub and ln = String.length s in
       let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
       go 0
     in
     has_sub s "incomplete")

(* lexer never raises: unterminated constructs become diagnostics *)
let test_lexer_recovers () =
  List.iter
    (fun (label, src) ->
      let c = compile_src src in
      Alcotest.(check bool) (label ^ " recorded") true
        (Pdt_util.Diag.has_errors c.Pdt.diags))
    [ ("unterminated comment", "int a;\n/* no end");
      ("unterminated string", "char const *s = \"no end;\nint b;\n");
      ("unterminated char", "int c = 'x\n;\n") ]

(* --limit name=value parsing used by the pdtc/pdbbuild flags *)
let test_set_budget_parsing () =
  (match L.set_budget L.default_budgets "parse-depth=17" with
   | Ok b -> Alcotest.(check int) "parse-depth applied" 17 b.L.max_parse_depth
   | Error e -> Alcotest.fail e);
  (match L.set_budget L.default_budgets "errors=3" with
   | Ok b -> Alcotest.(check int) "errors applied" 3 b.L.max_errors
   | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match L.set_budget L.default_budgets bad with
      | Ok _ -> Alcotest.fail ("accepted malformed limit " ^ bad)
      | Error _ -> ())
    [ "nosuch=1"; "errors=x"; "errors"; "errors=0"; "errors=-2" ]

let suite =
  [ Alcotest.test_case "seeded mutation matrix (>= 2000 mutants)" `Slow
      test_fuzz_matrix;
    Alcotest.test_case "k errors -> k diagnostics, survivors in PDB" `Quick
      test_recovery_collects_k_errors;
    Alcotest.test_case "--max-errors stops recovery" `Quick
      test_max_errors_stops_recovery;
    Alcotest.test_case "spawn/join mutants degrade" `Quick
      test_spawn_join_mutants_degrade;
    Alcotest.test_case "parser recursion budget" `Quick test_parse_depth_limit;
    Alcotest.test_case "macro expansion budget" `Quick test_macro_depth_limit;
    Alcotest.test_case "token count budget" `Quick test_token_limit;
    Alcotest.test_case "include cycle names the chain" `Quick
      test_include_cycle_reports_chain;
    Alcotest.test_case "partial PDB round-trips and merges" `Quick
      test_partial_pdb_merges;
    Alcotest.test_case "lexer never raises" `Quick test_lexer_recovers;
    Alcotest.test_case "--limit parsing" `Quick test_set_budget_parsing ]
