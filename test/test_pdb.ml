(* PDB format tests: writer/parser roundtrip, escaping, property tests. *)

module P = Pdt_pdb.Pdb
module W = Pdt_pdb.Pdb_write
module R = Pdt_pdb.Pdb_parse

let roundtrip pdb =
  let s = W.to_string pdb in
  let pdb' = R.of_string s in
  let s' = W.to_string pdb' in
  (s, s')

let test_empty () =
  let s, s' = roundtrip (P.create ()) in
  Alcotest.(check string) "empty roundtrip" s s'

let test_stack_roundtrip () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let s, s' = roundtrip pdb in
  Alcotest.(check string) "stack roundtrip" s s'

let test_krylov_roundtrip () =
  let vfs = Pdt_workloads.Pooma_like.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Pooma_like.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let s, s' = roundtrip pdb in
  Alcotest.(check string) "krylov roundtrip" s s'

let test_text_escaping () =
  Alcotest.(check string) "escape" "a\\nb\\\\c" (W.escape_text "a\nb\\c");
  Alcotest.(check string) "unescape" "a\nb\\c" (W.unescape_text "a\\nb\\\\c");
  let prop s = W.unescape_text (W.escape_text s) = s in
  Alcotest.(check bool) "multi-line template text" true
    (prop "template <class T>\nclass X {\n  int f();\n};")

let test_parse_error_reporting () =
  (match R.of_string "bogus line without item\n" with
   | exception R.Parse_error (1, _) -> ()
   | _ -> Alcotest.fail "expected parse error");
  match R.of_string "ro#1 f\nrsig banana\n" with
  | exception R.Parse_error (2, _) -> ()
  | _ -> Alcotest.fail "expected parse error on bad typeref"

let test_null_locations () =
  let pdb = P.create () in
  pdb.P.routines <-
    [ { P.ro_id = 1; ro_name = "f"; ro_loc = P.null_loc; ro_parent = P.Pnone;
        ro_acs = "NA"; ro_sig = P.Tyref 1; ro_link = "C++"; ro_store = "NA";
        ro_virt = "no"; ro_kind = "NA"; ro_static = false; ro_inline = false;
        ro_templ = None; ro_calls = []; ro_pos = P.null_extent; ro_defined = false } ];
  pdb.P.types <-
    [ { P.ty_id = 1; ty_name = "void ()"; ty_loc = P.null_loc; ty_parent = P.Pnone;
        ty_acs = "NA";
        ty_info = P.Yfunc { rett = P.Tyref 2; args = []; ellipsis = false;
                            cqual = false; exceptions = None };
        ty_names = [] };
      { P.ty_id = 2; ty_name = "void"; ty_loc = P.null_loc; ty_parent = P.Pnone;
        ty_acs = "NA"; ty_info = P.Ybuiltin { yikind = "NA" }; ty_names = [] } ];
  let s, s' = roundtrip pdb in
  Alcotest.(check string) "null locs roundtrip" s s'

let test_typeref_names () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  (* every type has a printable, non-empty name *)
  List.iter
    (fun (ty : P.type_item) ->
      let n = P.typeref_name pdb (P.Tyref ty.P.ty_id) in
      Alcotest.(check bool) ("type name nonempty: " ^ n) true (String.length n > 0))
    pdb.P.types

(* ------------------------------------------------------------------ *)
(* Property tests: random PDBs survive write/parse/write               *)
(* ------------------------------------------------------------------ *)

let gen_name =
  QCheck.Gen.(
    let id_char = oneof [ char_range 'a' 'z'; char_range 'A' 'Z'; return '_' ] in
    map (fun cs -> String.concat "" (List.map (String.make 1) cs)) (list_size (int_range 1 12) id_char))

let gen_loc nfiles =
  QCheck.Gen.(
    oneof
      [ return P.null_loc;
        map3
          (fun f l c -> { P.lfile = f; lline = l; lcol = c })
          (int_range 1 (max 1 nfiles)) (int_range 1 500) (int_range 1 120) ])

let gen_pdb : P.t QCheck.Gen.t =
  QCheck.Gen.(
    let* nfiles = int_range 1 4 in
    let* ntypes = int_range 1 6 in
    let* nclasses = int_range 0 4 in
    let* nroutines = int_range 0 5 in
    let* file_names = list_repeat nfiles gen_name in
    let files =
      List.mapi (fun i n -> { P.so_id = i + 1; so_name = n ^ ".h"; so_includes = [] }) file_names
    in
    let* type_names = list_repeat ntypes gen_name in
    let types =
      List.mapi
        (fun i n ->
          { P.ty_id = i + 1; ty_name = n; ty_loc = P.null_loc; ty_parent = P.Pnone;
            ty_acs = "NA"; ty_info = P.Ybuiltin { yikind = "int" }; ty_names = [] })
        type_names
    in
    let* class_names = list_repeat nclasses gen_name in
    let* class_locs = list_repeat nclasses (gen_loc nfiles) in
    let classes =
      List.mapi
        (fun i (n, l) ->
          { P.cl_id = i + 1; cl_name = n; cl_loc = l; cl_kind = "class";
            cl_parent = P.Pnone; cl_acs = "NA"; cl_templ = None; cl_stempl = None;
            cl_bases = []; cl_friends = []; cl_funcs = []; cl_members = [];
            cl_pos = P.null_extent })
        (List.combine class_names class_locs)
    in
    let* routine_specs =
      list_repeat nroutines (pair gen_name (gen_loc nfiles))
    in
    let routines =
      List.mapi
        (fun i (n, l) ->
          { P.ro_id = i + 1; ro_name = n; ro_loc = l; ro_parent = P.Pnone;
            ro_acs = "pub"; ro_sig = P.Tyref 1; ro_link = "C++"; ro_store = "NA";
            ro_virt = "no"; ro_kind = "NA"; ro_static = i mod 2 = 0;
            ro_inline = false; ro_templ = None; ro_calls = []; ro_pos = P.null_extent;
            ro_defined = i mod 3 = 0 })
        routine_specs
    in
    let pdb = P.create () in
    pdb.P.files <- files;
    pdb.P.types <- types;
    pdb.P.classes <- classes;
    pdb.P.routines <- routines;
    return pdb)

let prop_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random PDB write/parse/write stable"
    (QCheck.make gen_pdb) (fun pdb ->
      let s, s' = roundtrip pdb in
      s = s')

let prop_item_count =
  QCheck.Test.make ~count:100 ~name:"item count preserved by parse"
    (QCheck.make gen_pdb) (fun pdb ->
      let s = W.to_string pdb in
      P.item_count (R.of_string s) = P.item_count pdb)

let suite =
  [ Alcotest.test_case "empty roundtrip" `Quick test_empty;
    Alcotest.test_case "stack roundtrip" `Quick test_stack_roundtrip;
    Alcotest.test_case "krylov roundtrip" `Quick test_krylov_roundtrip;
    Alcotest.test_case "text escaping" `Quick test_text_escaping;
    Alcotest.test_case "parse error reporting" `Quick test_parse_error_reporting;
    Alcotest.test_case "null locations" `Quick test_null_locations;
    Alcotest.test_case "typeref names" `Quick test_typeref_names;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_item_count ]
