(* PDB format tests: writer/parser roundtrip, escaping, property tests,
   and cross-checks of the single-pass cursor parser against the seed
   reference parser (same structure on valid input, same Parse_error line
   numbers and messages on malformed input). *)

module P = Pdt_pdb.Pdb
module W = Pdt_pdb.Pdb_write
module R = Pdt_pdb.Pdb_parse
module Ref = Pdt_pdb.Pdb_parse_ref

let roundtrip pdb =
  let s = W.to_string pdb in
  let pdb' = R.of_string s in
  let s' = W.to_string pdb' in
  (s, s')

let test_empty () =
  let s, s' = roundtrip (P.create ()) in
  Alcotest.(check string) "empty roundtrip" s s'

let test_stack_roundtrip () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let s, s' = roundtrip pdb in
  Alcotest.(check string) "stack roundtrip" s s'

let test_krylov_roundtrip () =
  let vfs = Pdt_workloads.Pooma_like.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Pooma_like.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let s, s' = roundtrip pdb in
  Alcotest.(check string) "krylov roundtrip" s s'

let test_text_escaping () =
  Alcotest.(check string) "escape" "a\\nb\\\\c" (W.escape_text "a\nb\\c");
  Alcotest.(check string) "unescape" "a\nb\\c" (W.unescape_text "a\\nb\\\\c");
  let prop s = W.unescape_text (W.escape_text s) = s in
  Alcotest.(check bool) "multi-line template text" true
    (prop "template <class T>\nclass X {\n  int f();\n};")

let test_parse_error_reporting () =
  (match R.of_string "bogus line without item\n" with
   | exception R.Parse_error (1, _) -> ()
   | _ -> Alcotest.fail "expected parse error");
  match R.of_string "ro#1 f\nrsig banana\n" with
  | exception R.Parse_error (2, _) -> ()
  | _ -> Alcotest.fail "expected parse error on bad typeref"

let test_null_locations () =
  let pdb = P.create () in
  pdb.P.routines <-
    [ { P.ro_id = 1; ro_name = "f"; ro_loc = P.null_loc; ro_parent = P.Pnone;
        ro_acs = "NA"; ro_sig = P.Tyref 1; ro_link = "C++"; ro_store = "NA";
        ro_virt = "no"; ro_kind = "NA"; ro_static = false; ro_inline = false;
        ro_templ = None; ro_calls = []; ro_spawns = []; ro_du = []; ro_pos = P.null_extent; ro_defined = false } ];
  pdb.P.types <-
    [ { P.ty_id = 1; ty_name = "void ()"; ty_loc = P.null_loc; ty_parent = P.Pnone;
        ty_acs = "NA";
        ty_info = P.Yfunc { rett = P.Tyref 2; args = []; ellipsis = false;
                            cqual = false; exceptions = None };
        ty_names = [] };
      { P.ty_id = 2; ty_name = "void"; ty_loc = P.null_loc; ty_parent = P.Pnone;
        ty_acs = "NA"; ty_info = P.Ybuiltin { yikind = "NA" }; ty_names = [] } ];
  let s, s' = roundtrip pdb in
  Alcotest.(check string) "null locs roundtrip" s s'

let test_typeref_names () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  (* every type has a printable, non-empty name *)
  List.iter
    (fun (ty : P.type_item) ->
      let n = P.typeref_name pdb (P.Tyref ty.P.ty_id) in
      Alcotest.(check bool) ("type name nonempty: " ^ n) true (String.length n > 0))
    pdb.P.types

(* ------------------------------------------------------------------ *)
(* Property tests: random PDBs survive write/parse/write               *)
(* ------------------------------------------------------------------ *)

let gen_name =
  QCheck.Gen.(
    let id_char = oneof [ char_range 'a' 'z'; char_range 'A' 'Z'; return '_' ] in
    map (fun cs -> String.concat "" (List.map (String.make 1) cs)) (list_size (int_range 1 12) id_char))

let gen_loc nfiles =
  QCheck.Gen.(
    oneof
      [ return P.null_loc;
        map3
          (fun f l c -> { P.lfile = f; lline = l; lcol = c })
          (int_range 1 (max 1 nfiles)) (int_range 1 500) (int_range 1 120) ])

let gen_pdb : P.t QCheck.Gen.t =
  QCheck.Gen.(
    let* nfiles = int_range 1 4 in
    let* ntypes = int_range 1 6 in
    let* nclasses = int_range 0 4 in
    let* nroutines = int_range 0 5 in
    let* file_names = list_repeat nfiles gen_name in
    let files =
      List.mapi (fun i n -> { P.so_id = i + 1; so_name = n ^ ".h"; so_includes = [] }) file_names
    in
    let* type_names = list_repeat ntypes gen_name in
    let types =
      List.mapi
        (fun i n ->
          { P.ty_id = i + 1; ty_name = n; ty_loc = P.null_loc; ty_parent = P.Pnone;
            ty_acs = "NA"; ty_info = P.Ybuiltin { yikind = "int" }; ty_names = [] })
        type_names
    in
    let* class_names = list_repeat nclasses gen_name in
    let* class_locs = list_repeat nclasses (gen_loc nfiles) in
    let classes =
      List.mapi
        (fun i (n, l) ->
          { P.cl_id = i + 1; cl_name = n; cl_loc = l; cl_kind = "class";
            cl_parent = P.Pnone; cl_acs = "NA"; cl_templ = None; cl_stempl = None;
            cl_bases = []; cl_friends = []; cl_funcs = []; cl_members = [];
            cl_pos = P.null_extent })
        (List.combine class_names class_locs)
    in
    let* routine_specs =
      list_repeat nroutines (pair gen_name (gen_loc nfiles))
    in
    let routines =
      List.mapi
        (fun i (n, l) ->
          { P.ro_id = i + 1; ro_name = n; ro_loc = l; ro_parent = P.Pnone;
            ro_acs = "pub"; ro_sig = P.Tyref 1; ro_link = "C++"; ro_store = "NA";
            ro_virt = "no"; ro_kind = "NA"; ro_static = i mod 2 = 0;
            ro_inline = false; ro_templ = None; ro_calls = []; ro_spawns = [];
            ro_du = []; ro_pos = P.null_extent; ro_defined = i mod 3 = 0 })
        routine_specs
    in
    let pdb = P.create () in
    pdb.P.files <- files;
    pdb.P.types <- types;
    pdb.P.classes <- classes;
    pdb.P.routines <- routines;
    return pdb)

(* ------------------------------------------------------------------ *)
(* Cursor parser vs the seed reference parser                          *)
(* ------------------------------------------------------------------ *)

(* Each parser raises its own [Parse_error]; fold both (plus the raw
   [Failure] that ycon's Int64.of_string produces) into one comparable,
   printable outcome. *)
let outcome (parse : string -> P.t) (src : string) : string =
  match parse src with
  | _ -> "parsed"
  | exception R.Parse_error (l, m) -> Printf.sprintf "Parse_error line %d: %s" l m
  | exception Ref.Parse_error (l, m) -> Printf.sprintf "Parse_error line %d: %s" l m
  | exception Failure m -> "Failure: " ^ m

(* Malformed (and deliberately odd but accepted) inputs.  The interesting
   rows pin the reference parser's two-pass error ordering: structural
   errors (bad header ids, attributes outside a block) win over semantic
   errors on earlier lines. *)
let malformed_cases =
  [ "rloc so#1 1 1\n";                      (* attribute before any block *)
    "xx#zz name\n";                         (* unparseable header id *)
    "qq#1 x\n";                             (* unknown item prefix *)
    "ro#1 f\nrloc so#1 2\n";                (* truncated location *)
    "ro#1 f\nrloc NULL 0\n";                (* truncated NULL location *)
    "ro#1 f\nrloc so#1 x 3\n";              (* non-numeric line number *)
    "ro#1 f\nrloc na#1 2 3\n";              (* location on a non-file *)
    "ro#1 f\nrsig banana\n";                (* typeref without an id *)
    "ro#1 f\nrcall ro#2\n";                 (* rcall missing virt + loc *)
    "ro#1 f\nrcall xx#2 virt so#1 1 1\n";   (* rcall on a non-routine *)
    "ro#1 f\nbogus value\n";                (* unknown ro attribute *)
    "so#1 a.h\nbogus attr\n";               (* unknown so attribute *)
    "so#1 a.h\nsinc ty#2\n";                (* include of a non-file *)
    "cl#1 C\ncbase pub  no cl#2\n";         (* empty field: 4 cbase fields *)
    "cl#1 C\ncmloc so#1 1 1\n";             (* member attr without cmem *)
    "te#1 T\ntpos so#1 1 1 so#1 1 1 so#1 1\n"; (* truncated extent *)
    "ty#1 E\nykind enum\nycon a xyz\n";     (* Int64.of_string failure *)
    "ro#1 f\nrsig banana\nxx#zz nm\n";      (* late structural error wins *)
    "ro#1 f\nrsig banana\n\nrloc so#1 1 1\n"; (* ...so does late placement *)
    "ro#1 f\nrloc so#1 -2 0x10\n";          (* exotic ints: accepted *)
    "ty#1 X\nyqual weird\n";                (* unknown qualifier: ignored *)
    "ro#1 f\nrloc so#1 1 1 trailing junk\n" (* extra loc fields: ignored *)
  ]

let test_malformed_matches_reference () =
  List.iter
    (fun src ->
      Alcotest.(check string)
        (String.concat "; " (String.split_on_char '\n' src))
        (outcome Ref.of_string src) (outcome R.of_string src))
    malformed_cases

let test_cursor_matches_reference_stack () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  let s = W.to_string (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  Alcotest.(check bool) "structurally equal parse" true
    (R.of_string s = Ref.of_string s)

let test_interning_shares_names () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  let s = W.to_string (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let p1 = R.of_string s and p2 = R.of_string s in
  match (p1.P.routines, p2.P.routines) with
  | r1 :: _, r2 :: _ ->
      Alcotest.(check bool) "equal names" true (r1.P.ro_name = r2.P.ro_name);
      Alcotest.(check bool) "physically shared names" true
        (r1.P.ro_name == r2.P.ro_name)
  | _ -> Alcotest.fail "stack PDB has routines"

let prop_matches_reference =
  QCheck.Test.make ~count:100 ~name:"cursor parser = reference parser"
    (QCheck.make gen_pdb) (fun pdb ->
      let s = W.to_string pdb in
      R.of_string s = Ref.of_string s)

let prop_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random PDB write/parse/write stable"
    (QCheck.make gen_pdb) (fun pdb ->
      let s, s' = roundtrip pdb in
      s = s')

let prop_item_count =
  QCheck.Test.make ~count:100 ~name:"item count preserved by parse"
    (QCheck.make gen_pdb) (fun pdb ->
      let s = W.to_string pdb in
      P.item_count (R.of_string s) = P.item_count pdb)

let suite =
  [ Alcotest.test_case "empty roundtrip" `Quick test_empty;
    Alcotest.test_case "stack roundtrip" `Quick test_stack_roundtrip;
    Alcotest.test_case "krylov roundtrip" `Quick test_krylov_roundtrip;
    Alcotest.test_case "text escaping" `Quick test_text_escaping;
    Alcotest.test_case "parse error reporting" `Quick test_parse_error_reporting;
    Alcotest.test_case "null locations" `Quick test_null_locations;
    Alcotest.test_case "typeref names" `Quick test_typeref_names;
    Alcotest.test_case "malformed input matches reference parser" `Quick
      test_malformed_matches_reference;
    Alcotest.test_case "cursor parser matches reference on stack" `Quick
      test_cursor_matches_reference_stack;
    Alcotest.test_case "interning shares parsed names" `Quick
      test_interning_shares_names;
    QCheck_alcotest.to_alcotest prop_matches_reference;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_item_count ]
