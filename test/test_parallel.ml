(* Tests for the TAU parallel-profiling simulation, callpath profiling and
   runtime throttling. *)

module Rt = Pdt_tau.Runtime

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let instrumented_stencil () =
  let vfs = Pdt_workloads.Parallel_stencil.vfs () in
  let main = Pdt_workloads.Parallel_stencil.main_file in
  let c = Pdt.compile_exn ~vfs main in
  let d = Pdt_ductape.Ductape.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = Pdt_tau.Instrument.plan d in
  let vfs2, _ = Pdt_tau.Instrument.instrument_vfs vfs plan in
  (Pdt.compile_exn ~vfs:vfs2 main).Pdt.program

let test_mpi_builtins () =
  let vfs = Pdt_workloads.Parallel_stencil.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Parallel_stencil.main_file in
  let r = Pdt_tau.Interp.run ~mpi:(2, 8) c.Pdt.program in
  Alcotest.(check bool) "rank visible to the program" true
    (contains r.output "rank 2/8")

let test_ranks_run_spmd () =
  let prog = instrumented_stencil () in
  let rs = Pdt_tau.Parallel.run_ranks ~nranks:4 prog in
  Alcotest.(check int) "4 ranks" 4 (List.length rs);
  List.iteri
    (fun i (rr : Pdt_tau.Parallel.rank_result) ->
      Alcotest.(check int) "rank id" i rr.rank;
      Alcotest.(check int) "exit 0" 0 rr.result.exit_code;
      Alcotest.(check bool) "per-rank output" true
        (contains rr.result.output (Printf.sprintf "rank %d/4" i)))
    rs

let test_imbalance_detected () =
  let prog = instrumented_stencil () in
  let rs = Pdt_tau.Parallel.run_ranks ~nranks:4 prog in
  let aggs = Pdt_tau.Parallel.aggregate rs in
  let sweep =
    List.find (fun a -> contains a.Pdt_tau.Parallel.a_name "jacobi_sweep") aggs
  in
  (* the workload gives later ranks more work: max >> min *)
  Alcotest.(check bool) "imbalance visible" true
    (sweep.Pdt_tau.Parallel.a_incl_max
     > Int64.mul 2L sweep.Pdt_tau.Parallel.a_incl_min);
  Alcotest.(check int) "timer present on every rank" 4 sweep.Pdt_tau.Parallel.a_ranks;
  let summary = Pdt_tau.Parallel.format_summary rs in
  Alcotest.(check bool) "summary formats" true (contains summary "imbal%")

let test_rank_determinism () =
  let prog = instrumented_stencil () in
  let r1 = Pdt_tau.Parallel.run_ranks ~nranks:3 prog in
  let r2 = Pdt_tau.Parallel.run_ranks ~nranks:3 prog in
  Alcotest.(check string) "summaries identical"
    (Pdt_tau.Parallel.format_summary r1)
    (Pdt_tau.Parallel.format_summary r2)

(* ---------------- callpath ---------------- *)

let instrumented_stack () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let main = Pdt_workloads.Stack.main_file in
  let c = Pdt.compile_exn ~vfs main in
  let d = Pdt_ductape.Ductape.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = Pdt_tau.Instrument.plan d in
  let vfs2, _ = Pdt_tau.Instrument.instrument_vfs vfs plan in
  (Pdt.compile_exn ~vfs:vfs2 main).Pdt.program

let test_callpath_names () =
  let prog = instrumented_stack () in
  let r = Pdt_tau.Interp.run ~callpath:true prog in
  let names = List.map (fun (e : Rt.entry) -> e.e_name) (Rt.entries r.profile) in
  (* push is timed under its caller main *)
  Alcotest.(check bool) "parent => child timers" true
    (List.exists (fun n -> contains n "main [int ()] => push [Stack<int>]") names);
  (* and isEmpty appears under two different parents *)
  let isempty_paths = List.filter (fun n -> contains n "=> isEmpty") names in
  Alcotest.(check bool) "isEmpty split by call path" true
    (List.length isempty_paths >= 2)

let test_callpath_off_by_default () =
  let prog = instrumented_stack () in
  let r = Pdt_tau.Interp.run prog in
  let names = List.map (fun (e : Rt.entry) -> e.e_name) (Rt.entries r.profile) in
  Alcotest.(check bool) "flat names" false
    (List.exists (fun n -> contains n "=>") names)

(* ---------------- throttling ---------------- *)

let test_throttling () =
  let vfs = Pdt_workloads.Pooma_like.vfs ~n:16 () in
  let main = Pdt_workloads.Pooma_like.main_file in
  let c = Pdt.compile_exn ~vfs main in
  let d = Pdt_ductape.Ductape.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = Pdt_tau.Instrument.plan d in
  let vfs2, _ = Pdt_tau.Instrument.instrument_vfs vfs plan in
  let prog = (Pdt.compile_exn ~vfs:vfs2 main).Pdt.program in
  let full = Pdt_tau.Interp.run prog in
  (* throttle: timers beyond 100 calls with < 20 cycles/call stop timing *)
  let throttled = Pdt_tau.Interp.run ~throttle:(100, 20L) prog in
  let incl name (r : Pdt_tau.Interp.result) =
    List.fold_left
      (fun acc (e : Rt.entry) -> if contains e.e_name name then e.e_inclusive else acc)
      0L
      (Rt.entries r.profile)
  in
  let calls name (r : Pdt_tau.Interp.result) =
    List.fold_left
      (fun acc (e : Rt.entry) -> if contains e.e_name name then e.e_calls else acc)
      0
      (Rt.entries r.profile)
  in
  (* the hot cheap accessor stops accumulating time but keeps counting *)
  Alcotest.(check bool) "accessor time reduced" true
    (incl "at [" throttled < incl "at [" full);
  Alcotest.(check int) "calls still counted" (calls "at [" full)
    (calls "at [" throttled);
  (* behaviour is unchanged *)
  Alcotest.(check int) "same exit" full.exit_code throttled.exit_code;
  Alcotest.(check string) "same output" full.output throttled.output

let suite =
  [ Alcotest.test_case "mpi builtins" `Quick test_mpi_builtins;
    Alcotest.test_case "SPMD rank execution" `Quick test_ranks_run_spmd;
    Alcotest.test_case "imbalance detected" `Quick test_imbalance_detected;
    Alcotest.test_case "rank determinism" `Quick test_rank_determinism;
    Alcotest.test_case "callpath profiling" `Quick test_callpath_names;
    Alcotest.test_case "callpath off by default" `Quick test_callpath_off_by_default;
    Alcotest.test_case "runtime throttling" `Quick test_throttling ]
