(* The pdbd test battery (PR 8): protocol conformance, concurrency, and
   wire-level robustness.

   Conformance: a scripted session exercises every verb in the catalogue
   plus the error paths (unknown verb, malformed JSON, non-object
   request, bad arguments, version handshake) through Query.handle_line,
   and the full request/reply transcript is byte-pinned against
   test/golden/pdbd_session.txt — the reply encoding IS the protocol, so
   any change to it must leave a reviewable diff.  Regenerate with
   PDT_GOLDEN_REGEN=1 after an intentional protocol change.

   Concurrency: a live daemon (Unix socket, worker-domain pool) is
   hammered by client threads while reloads swap the snapshot under
   them.  Each generation serves a PDB with a different routine count,
   and every reply must be internally consistent — the advertised gen
   and the data must come from the same snapshot — with zero failed
   queries across the swaps.  Failures dump a pdbd-stress.log for CI to
   upload.

   Robustness: a seeded mutation fuzzer (truncations, bit flips,
   oversized payloads, pipelined garbage) runs ~2000 frames through
   handle_line, which must always return a structured one-line reply,
   and a socket-level subset checks the daemon survives the same abuse
   with at worst a dropped connection. *)

module J = Pdt_util.Json
module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape
module Snap = Pdt_serve.Snapshot
module Q = Pdt_serve.Query
module Dm = Pdt_serve.Daemon
module Cl = Pdt_serve.Client

let test_domains default =
  match Option.bind (Sys.getenv_opt "PDT_TEST_DOMAINS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

(* ---------------- deterministic in-memory sources ---------------- *)

(* the conformance PDB: the Stack workload, same for every generation *)
let stack_pdb (_gen : int) : P.t =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  Pdt_analyzer.Analyzer.run c.Pdt.program

let stack_holder () =
  Snap.load (Snap.In_memory { label = "stack"; produce = stack_pdb })

(* the stress PDB: generation g carries g marker functions, so the
   routine count identifies which snapshot a reply was answered from *)
let gen_source (gen : int) : string =
  let b = Buffer.create 256 in
  for i = 1 to gen do
    Printf.bprintf b "int marker%d(int x) { return x + %d; }\n" i i
  done;
  Buffer.add_string b "int main() { return marker1(0); }\n";
  Buffer.contents b

let gen_pdb (gen : int) : P.t =
  let c = Pdt.compile_string (gen_source gen) in
  Pdt_analyzer.Analyzer.run c.Pdt.program

let gen_holder () =
  Snap.load (Snap.In_memory { label = "genN"; produce = gen_pdb })

let routines_of_gen : (int, int) Hashtbl.t = Hashtbl.create 8

let expected_routines (gen : int) : int =
  match Hashtbl.find_opt routines_of_gen gen with
  | Some n -> n
  | None ->
      let n = List.length (gen_pdb gen).P.routines in
      Hashtbl.replace routines_of_gen gen n;
      n

(* ---------------- daemon harness ---------------- *)

let fresh_socket () =
  let f = Filename.temp_file "pdbd-test" ".sock" in
  Sys.remove f;
  f

let rec connect_retry ?(tries = 200) path =
  match Cl.connect path with
  | c -> c
  | exception _ when tries > 0 ->
      ignore (Unix.select [] [] [] 0.02);
      connect_retry ~tries:(tries - 1) path

let with_daemon ?(domains = test_domains 2) ?(max_line = Dm.default_config.Dm.max_line)
    ?(max_conns = Dm.default_config.Dm.max_conns) (holder : Snap.t)
    (f : string -> unit) : unit =
  let socket_path = fresh_socket () in
  let t = Dm.start ~config:{ Dm.socket_path; domains; max_line; max_conns } holder in
  Fun.protect ~finally:(fun () -> Dm.stop t) (fun () -> f socket_path)

let reply_ok (j : J.t) = J.member "ok" j = Some (J.Bool true)

let reply_gen (j : J.t) =
  match Option.bind (J.member "gen" j) J.to_num_opt with
  | Some f -> int_of_float f
  | None -> -1

let get_reply name = function
  | Some j -> j
  | None -> Alcotest.failf "%s: connection dropped" name

(* ---------------- conformance: the golden session ---------------- *)

let check_text_golden ~(name : string) (actual : string) : unit =
  let dir = Test_golden.golden_dir () in
  let path = Filename.concat dir name in
  if Sys.getenv_opt "PDT_GOLDEN_REGEN" = Some "1" then begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Test_golden.write_file path actual;
    Alcotest.fail
      (Printf.sprintf
         "regenerated %s (%d bytes) — unset PDT_GOLDEN_REGEN and rerun" path
         (String.length actual))
  end
  else begin
    if not (Sys.file_exists path) then
      Alcotest.fail
        (Printf.sprintf
           "missing golden %s — run PDT_GOLDEN_REGEN=1 dune exec test/main.exe \
            -- test pdbd" path);
    let expected = Test_golden.read_file path in
    if expected <> actual then
      Alcotest.fail
        (Printf.sprintf "%s: wire replies changed (golden %d bytes, actual %d)\n%s"
           name (String.length expected) (String.length actual)
           (Test_golden.diff expected actual))
  end

let test_conformance_session () =
  let holder = stack_holder () in
  let d = (Snap.current holder).Snap.dt in
  (* deterministic ids for the id-taking verbs, straight from the index *)
  let main_r =
    List.find (fun (r : P.routine_item) -> r.P.ro_name = "main") (D.routines d)
  in
  let callee =
    match D.callees d main_r with
    | ((_ : P.call), c) :: _ -> c
    | [] -> Alcotest.fail "stack main has no callees"
  in
  let templ = List.hd (D.templates d) in
  let inst =
    List.find (fun (c : P.class_item) -> c.P.cl_templ <> None) (D.classes d)
  in
  let file = List.hd (D.files d) in
  let b = Buffer.create 4096 in
  let send line =
    let reply, _disp = Q.handle_line holder line in
    Printf.bprintf b "> %s\n< %s\n" line reply
  in
  (* handshake + trivia *)
  send {|{"id":1,"verb":"hello","protocol":1}|};
  send {|{"id":2,"verb":"hello","protocol":99}|};
  send {|{"id":3,"verb":"hello"}|};
  send {|{"id":4,"verb":"ping"}|};
  send {|{"id":5,"verb":"info"}|};
  (* entity lookup *)
  send {|{"id":6,"verb":"list","kind":"class"}|};
  send {|{"id":7,"verb":"list","kind":"routine","offset":1,"limit":3}|};
  send {|{"id":8,"verb":"find","kind":"routine","name":"main"}|};
  send {|{"id":9,"verb":"find","kind":"routine","name":"push"}|};
  send {|{"id":10,"verb":"find","kind":"class","name":"nonexistent"}|};
  send (Printf.sprintf {|{"id":11,"verb":"item","kind":"routine","id":%d}|}
          main_r.P.ro_id);
  send (Printf.sprintf {|{"id":12,"verb":"item","kind":"class","id":%d}|}
          inst.P.cl_id);
  send (Printf.sprintf {|{"id":13,"verb":"item","kind":"file","id":%d}|}
          file.P.so_id);
  (* call graph *)
  send (Printf.sprintf {|{"id":14,"verb":"callees","id":%d}|} main_r.P.ro_id);
  send (Printf.sprintf {|{"id":15,"verb":"callers","id":%d}|} callee.P.ro_id);
  send {|{"id":16,"verb":"callgraph","depth":2}|};
  send (Printf.sprintf {|{"id":17,"verb":"callgraph","root":%d,"depth":1}|}
          main_r.P.ro_id);
  (* template <-> instantiation maps *)
  send (Printf.sprintf {|{"id":18,"verb":"instantiations","id":%d}|}
          templ.P.te_id);
  send (Printf.sprintf {|{"id":19,"verb":"templateof","kind":"class","id":%d}|}
          inst.P.cl_id);
  (* semantic analyses (define-use chains; spawn counts ride on item) *)
  let du_var =
    match main_r.P.ro_du with
    | v :: _ -> v.P.v_name
    | [] -> Alcotest.fail "stack main has no define-use data"
  in
  send (Printf.sprintf {|{"id":37,"verb":"defs","id":%d,"var":"%s"}|}
          main_r.P.ro_id du_var);
  send (Printf.sprintf {|{"id":38,"verb":"uses","id":%d,"var":"%s"}|}
          main_r.P.ro_id du_var);
  send (Printf.sprintf {|{"id":39,"verb":"duchain","id":%d,"var":"%s"}|}
          main_r.P.ro_id du_var);
  send (Printf.sprintf {|{"id":40,"verb":"defs","id":%d}|} main_r.P.ro_id);
  send (Printf.sprintf {|{"id":41,"verb":"duchain","id":%d,"var":"nosuchvar"}|}
          main_r.P.ro_id);
  (* tool views *)
  send {|{"id":20,"verb":"tree","which":"include"}|};
  send {|{"id":21,"verb":"tree","which":"class"}|};
  send {|{"id":22,"verb":"tree","which":"call"}|};
  send {|{"id":23,"verb":"stats"}|};
  send {|{"id":24,"verb":"stats","render":true}|};
  (* error paths *)
  send {|{"id":25,"verb":"frobnicate"}|};
  send {|{"id":26}|};
  send {|{"id":27,"verb":42}|};
  send {|[1,2,3]|};
  send {|{"id":28,"verb":"list","kind":"bogus"}|};
  send {|{"id":29,"verb":"item","kind":"routine"}|};
  send {|{"id":30,"verb":"callees","id":999999}|};
  send {|{"id":31,"verb":"tree","which":"sideways"}|};
  send {|{"id":32,"verb":"instantiations"}|};
  send {|not json at all|};
  send {|{"id":33,"verb":"ping","unclosed":|};
  (* reload (gen 2 serves the same stack PDB) and shutdown *)
  send {|{"id":34,"verb":"reload"}|};
  send {|{"id":35,"verb":"ping"}|};
  send {|{"id":36,"verb":"shutdown"}|};
  check_text_golden ~name:"pdbd_session.txt" (Buffer.contents b)

(* every line of the session must also be well-formed JSON with the
   envelope fields, independent of the golden bytes *)
let test_reply_envelope () =
  let holder = stack_holder () in
  List.iter
    (fun line ->
      let reply, _ = Q.handle_line holder line in
      match J.parse reply with
      | Error e -> Alcotest.failf "reply %S is not JSON: %s" reply e
      | Ok j ->
          Alcotest.(check bool) "has ok" true (J.member "ok" j <> None);
          Alcotest.(check bool) "has gen" true (J.member "gen" j <> None);
          Alcotest.(check bool) "has id" true (J.member "id" j <> None))
    [ {|{"id":1,"verb":"ping"}|}; {|{"verb":"info"}|}; {|garbage|}; {|[]|};
      {|{"id":"string-ids-fine","verb":"stats"}|};
      {|{"id":null,"verb":"nope"}|} ]

(* shutdown is the only disposition that stops the daemon *)
let test_dispositions () =
  let holder = stack_holder () in
  let disp line = snd (Q.handle_line holder line) in
  Alcotest.(check bool) "ping continues" true
    (disp {|{"verb":"ping"}|} = Q.Continue);
  Alcotest.(check bool) "garbage continues" true
    (disp {|]]]|} = Q.Continue);
  Alcotest.(check bool) "shutdown stops" true
    (disp {|{"verb":"shutdown"}|} = Q.Shutdown)

(* ---------------- live daemon: smoke + ordering + limits ------------ *)

let test_socket_smoke () =
  with_daemon (stack_holder ()) @@ fun socket ->
  let c = connect_retry socket in
  Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
  let hello =
    get_reply "hello"
      (Cl.request_json c (J.Obj [ ("verb", J.Str "hello"); ("protocol", J.Num 1.) ]))
  in
  Alcotest.(check bool) "hello ok" true (reply_ok hello);
  Alcotest.(check bool) "advertises verbs" true
    (match J.member "verbs" hello with
     | Some (J.List l) -> List.length l = 18
     | _ -> false);
  let find =
    get_reply "find"
      (Cl.request_json c
         (J.Obj
            [ ("verb", J.Str "find"); ("kind", J.Str "routine");
              ("name", J.Str "main") ]))
  in
  Alcotest.(check bool) "find ok" true (reply_ok find);
  let reload =
    get_reply "reload" (Cl.request_json c (J.Obj [ ("verb", J.Str "reload") ]))
  in
  Alcotest.(check bool) "reload ok" true (reply_ok reload);
  Alcotest.(check int) "reload to gen 2" 2 (reply_gen reload);
  let ping =
    get_reply "ping" (Cl.request_json c (J.Obj [ ("verb", J.Str "ping") ]))
  in
  Alcotest.(check int) "ping sees gen 2" 2 (reply_gen ping)

let test_pipelined_ordering () =
  with_daemon (stack_holder ()) @@ fun socket ->
  let c = connect_retry socket in
  Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
  (* 50 requests in ONE write; replies must come back in exact order *)
  let n = 50 in
  let batch = Buffer.create 1024 in
  for i = 0 to n - 1 do
    let verb = if i mod 3 = 0 then "ping" else if i mod 3 = 1 then "info" else "stats" in
    Printf.bprintf batch {|{"id":%d,"verb":"%s"}|} i verb;
    Buffer.add_char batch '\n'
  done;
  Cl.send_line c (String.sub (Buffer.contents batch) 0 (Buffer.length batch - 1));
  for i = 0 to n - 1 do
    match Cl.recv_line c with
    | None -> Alcotest.failf "connection dropped before reply %d" i
    | Some line -> (
        match J.parse line with
        | Ok j ->
            Alcotest.(check bool) "pipelined ok" true (reply_ok j);
            (match Option.bind (J.member "id" j) J.to_num_opt with
             | Some f ->
                 Alcotest.(check int)
                   (Printf.sprintf "reply %d in order" i)
                   i (int_of_float f)
             | None -> Alcotest.failf "reply %d has no numeric id" i)
        | Error e -> Alcotest.failf "reply %d unparseable: %s" i e)
  done

let test_oversized_line () =
  with_daemon ~max_line:256 (stack_holder ()) @@ fun socket ->
  (* just under the limit: answered normally *)
  let c1 = connect_retry socket in
  let padded =
    Printf.sprintf {|{"id":1,"verb":"ping","pad":"%s"}|} (String.make 180 'x')
  in
  let r = get_reply "padded ping" (Cl.request_json c1 (Option.get (Result.to_option (J.parse padded)))) in
  Alcotest.(check bool) "under limit ok" true (reply_ok r);
  Cl.close c1;
  (* way over: a structured too-large error, then the connection closes *)
  let c2 = connect_retry socket in
  Cl.send_line c2 (String.make 10_000 'a');
  (match Cl.recv_line c2 with
   | None -> Alcotest.fail "oversized line got no reply before close"
   | Some line -> (
       match J.parse line with
       | Ok j ->
           Alcotest.(check bool) "too-large is an error" false (reply_ok j);
           Alcotest.(check bool) "code too-large" true
             (match
                Option.bind (J.member "error" j) (fun e -> J.member "code" e)
              with
              | Some (J.Str "too-large") -> true
              | _ -> false)
       | Error e -> Alcotest.failf "too-large reply unparseable: %s" e));
  Alcotest.(check bool) "connection closed after too-large" true
    (Cl.recv_line c2 = None);
  Cl.close c2;
  (* the daemon itself is unharmed *)
  let c3 = connect_retry socket in
  let ping =
    get_reply "ping after abuse"
      (Cl.request_json c3 (J.Obj [ ("verb", J.Str "ping") ]))
  in
  Alcotest.(check bool) "daemon alive" true (reply_ok ping);
  Cl.close c3

let test_too_many_connections () =
  (* connections past max_conns get a structured rejection and a close;
     established clients are untouched, and a freed slot readmits *)
  with_daemon ~max_conns:2 (stack_holder ()) @@ fun socket ->
  let ping c name =
    reply_ok (get_reply name (Cl.request_json c (J.Obj [ ("verb", J.Str "ping") ])))
  in
  let c1 = connect_retry socket in
  let c2 = connect_retry socket in
  Alcotest.(check bool) "first client serves" true (ping c1 "c1 ping");
  Alcotest.(check bool) "second client serves" true (ping c2 "c2 ping");
  let c3 = connect_retry socket in
  (match Cl.recv_line c3 with
   | None -> Alcotest.fail "rejected connection got no reply before close"
   | Some line -> (
       match J.parse line with
       | Ok j ->
           Alcotest.(check bool) "rejection is an error" false (reply_ok j);
           (match
              Option.bind (J.member "error" j) (fun e -> J.member "code" e)
            with
            | Some (J.Str "too-many-connections") -> ()
            | _ -> Alcotest.failf "expected code too-many-connections: %s" line)
       | Error e -> Alcotest.failf "rejection reply unparseable: %s" e));
  Alcotest.(check bool) "rejected connection closed" true
    (Cl.recv_line c3 = None);
  Cl.close c3;
  Alcotest.(check bool) "established client unharmed" true (ping c1 "c1 again");
  Cl.close c1;
  (* the daemon reaps the disconnect on its next loop turn; retry until
     the freed slot readmits *)
  let rec readmitted tries =
    let c = connect_retry socket in
    match Cl.request_json c (J.Obj [ ("verb", J.Str "ping") ]) with
    | Some j when reply_ok j -> Cl.close c
    | _ ->
        Cl.close c;
        if tries = 0 then Alcotest.fail "slot never freed after disconnect"
        else begin
          ignore (Unix.select [] [] [] 0.02);
          readmitted (tries - 1)
        end
  in
  readmitted 200;
  Cl.close c2

(* ---------------- concurrency: snapshot isolation under reloads ----- *)

let test_stress_snapshot_isolation () =
  let clients = 16 in
  let queries = 40 in
  let reloads = 4 in
  let holder = gen_holder () in
  (* precompute the gen -> routine-count map before spawning anything *)
  for g = 1 to reloads + 2 do ignore (expected_routines g) done;
  with_daemon ~domains:(test_domains 4) holder @@ fun socket ->
  let failures = ref [] in
  let fail_mu = Mutex.create () in
  let record_failure msg =
    Mutex.lock fail_mu;
    failures := msg :: !failures;
    Mutex.unlock fail_mu
  in
  let done_count = Atomic.make 0 in
  let gens_seen = Array.make (reloads + 3) false in
  let client_body c () =
    match connect_retry socket with
    | exception e ->
        record_failure
          (Printf.sprintf "client %d: connect failed: %s" c (Printexc.to_string e))
    | conn ->
        Fun.protect ~finally:(fun () -> Cl.close conn) @@ fun () ->
        for q = 0 to queries - 1 do
          (match Cl.request_json conn (J.Obj [ ("verb", J.Str "stats") ]) with
           | None ->
               record_failure (Printf.sprintf "client %d q%d: dropped" c q)
           | Some j ->
               if not (reply_ok j) then
                 record_failure
                   (Printf.sprintf "client %d q%d: not ok: %s" c q (J.to_string j))
               else begin
                 let gen = reply_gen j in
                 let routines =
                   match
                     Option.bind (J.member "summary" j) (fun s ->
                         Option.bind (J.member "routines" s) J.to_num_opt)
                   with
                   | Some f -> int_of_float f
                   | None -> -1
                 in
                 if gen >= 1 && gen < Array.length gens_seen then
                   gens_seen.(gen) <- true;
                 (* THE isolation invariant: gen and data from one snap *)
                 if routines <> expected_routines gen then
                   record_failure
                     (Printf.sprintf
                        "client %d q%d: reply mixes snapshots: gen %d has %d \
                         routines, reply says %d"
                        c q gen (expected_routines gen) routines)
               end);
          Atomic.incr done_count
        done
  in
  let reloader () =
    match connect_retry socket with
    | exception e ->
        record_failure ("reloader: connect failed: " ^ Printexc.to_string e)
    | conn ->
        Fun.protect ~finally:(fun () -> Cl.close conn) @@ fun () ->
        let total = clients * queries in
        for k = 1 to reloads do
          let threshold = k * total / (reloads + 1) in
          while Atomic.get done_count < threshold do Thread.yield () done;
          match Cl.request_json conn (J.Obj [ ("verb", J.Str "reload") ]) with
          | Some j when reply_ok j -> ()
          | Some j -> record_failure ("reload failed: " ^ J.to_string j)
          | None -> record_failure "reload: connection dropped"
        done
  in
  let reload_thread = Thread.create reloader () in
  let threads = List.init clients (fun c -> Thread.create (client_body c) ()) in
  List.iter Thread.join threads;
  Thread.join reload_thread;
  if !failures <> [] then begin
    (* dump the evidence where CI can pick it up *)
    let oc = open_out "pdbd-stress.log" in
    List.iter (fun m -> output_string oc (m ^ "\n")) (List.rev !failures);
    close_out oc;
    Alcotest.failf "%d stress failures (see pdbd-stress.log); first: %s"
      (List.length !failures)
      (List.nth (List.rev !failures) 0)
  end;
  (* the run must actually have spanned generations *)
  Alcotest.(check bool) "saw the first generation" true gens_seen.(1);
  Alcotest.(check bool) "saw a post-reload generation" true
    (Array.exists (fun b -> b) (Array.sub gens_seen 2 (Array.length gens_seen - 2)))

(* concurrent reloads serialize and each gets its own generation *)
let test_concurrent_reloads () =
  let holder = gen_holder () in
  let n = 6 in
  let oks = Array.make n (-1) in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            match Snap.reload holder with
            | Ok (snap, _) -> oks.(i) <- snap.Snap.gen
            | Error _ -> ())
          ())
  in
  List.iter Thread.join threads;
  let gens = Array.to_list oks |> List.filter (fun g -> g > 0) in
  Alcotest.(check int) "all reloads succeeded" n (List.length gens);
  let sorted = List.sort_uniq compare gens in
  Alcotest.(check int) "each got a distinct generation" n (List.length sorted);
  Alcotest.(check int) "final gen" (n + 1) (Snap.current holder).Snap.gen

(* ---------------- wire fuzz ---------------- *)

(* xorshift64: deterministic, seedable, no Random state shared *)
let xorshift (state : int64 ref) : int =
  let x = !state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  state := x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

let fuzz_corpus =
  [ {|{"id":1,"verb":"ping"}|};
    {|{"id":2,"verb":"hello","protocol":1}|};
    {|{"id":3,"verb":"list","kind":"routine","limit":5}|};
    {|{"id":4,"verb":"find","kind":"routine","name":"main"}|};
    {|{"id":5,"verb":"callgraph","depth":2}|};
    {|{"id":6,"verb":"stats","render":true}|};
    {|{"id":7,"verb":"item","kind":"class","id":3}|};
    {|{"id":8,"verb":"tree","which":"call"}|} ]

let mutate (rng : int64 ref) (s : string) : string =
  let pick l = List.nth l (xorshift rng mod List.length l) in
  match xorshift rng mod 6 with
  | 0 ->
      (* truncate *)
      if s = "" then s else String.sub s 0 (xorshift rng mod String.length s)
  | 1 ->
      (* flip one bit *)
      if s = "" then s
      else begin
        let b = Bytes.of_string s in
        let i = xorshift rng mod Bytes.length b in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (xorshift rng mod 8))));
        Bytes.to_string b
      end
  | 2 ->
      (* splice two corpus entries at random cut points *)
      let t = pick fuzz_corpus in
      let cut x = if x = "" then 0 else xorshift rng mod String.length x in
      let cs = cut s and ct = cut t in
      String.sub s 0 cs ^ String.sub t ct (String.length t - ct)
  | 3 ->
      (* inject raw bytes, control chars and broken UTF-8 included *)
      let n = 1 + (xorshift rng mod 12) in
      let junk = String.init n (fun _ -> Char.chr (xorshift rng mod 256)) in
      let i = if s = "" then 0 else xorshift rng mod String.length s in
      String.sub s 0 i ^ junk ^ String.sub s i (String.length s - i)
  | 4 ->
      (* blow up a field value *)
      s ^ String.make (xorshift rng mod 2048) 'A'
  | _ ->
      (* deep-nest prefix: the depth guard's street test *)
      String.make (1 + (xorshift rng mod 700)) '[' ^ s

let test_fuzz_handle_line () =
  let holder = stack_holder () in
  let rng = ref 0x9E3779B97F4A7C15L in
  for i = 0 to 1999 do
    let base = List.nth fuzz_corpus (i mod List.length fuzz_corpus) in
    let rounds = 1 + (xorshift rng mod 3) in
    let frame = ref base in
    for _ = 1 to rounds do frame := mutate rng !frame done;
    (* newlines inside a frame would be two frames on the wire; the
       daemon's decoder splits them before handle_line ever runs *)
    let frame =
      String.map (fun c -> if c = '\n' then ' ' else c) !frame
    in
    match Q.handle_line holder frame with
    | reply, _disp ->
        if String.contains reply '\n' then
          Alcotest.failf "fuzz %d: reply spans lines for input %S" i frame;
        (match J.parse reply with
         | Ok j ->
             if J.member "ok" j = None then
               Alcotest.failf "fuzz %d: reply lacks ok for %S" i frame
         | Error e ->
             Alcotest.failf "fuzz %d: unparseable reply %S (%s)" i reply e)
    | exception e ->
        Alcotest.failf "fuzz %d: handle_line raised %s on %S" i
          (Printexc.to_string e) frame
  done

let test_fuzz_socket () =
  with_daemon ~max_line:4096 (stack_holder ()) @@ fun socket ->
  let rng = ref 0xC0FFEE123456789L in
  for i = 0 to 79 do
    let base = List.nth fuzz_corpus (i mod List.length fuzz_corpus) in
    let frame = mutate rng (mutate rng base) in
    let c = connect_retry socket in
    (* a blocking read must not hang the suite if the daemon misbehaves *)
    Unix.setsockopt_float c.Cl.fd Unix.SO_RCVTIMEO 30.0;
    (try
       Cl.send_line c frame;
       (* pipelined garbage: the daemon answers line by line or drops us *)
       Cl.send_line c {|{"id":"probe","verb":"ping"}|};
       let rec drain_until_probe budget =
         if budget = 0 then Alcotest.failf "fuzz-socket %d: no probe reply" i
         else
           match Cl.recv_line c with
           | None -> ()  (* dropped connection: acceptable outcome *)
           | Some line -> (
               match J.parse line with
               | Error e ->
                   Alcotest.failf "fuzz-socket %d: junk reply %S (%s)" i line e
               | Ok j ->
                   if J.member "id" j = Some (J.Str "probe") then ()
                   else drain_until_probe (budget - 1))
       in
       drain_until_probe 8
     with Sys_error _ | Unix.Unix_error _ -> ());
    Cl.close c
  done;
  (* whatever the fuzzer did, the daemon still answers cleanly *)
  let c = connect_retry socket in
  let ping =
    get_reply "ping after fuzz"
      (Cl.request_json c (J.Obj [ ("verb", J.Str "ping") ]))
  in
  Alcotest.(check bool) "daemon survived the fuzzer" true (reply_ok ping);
  Cl.close c

let suite =
  [ Alcotest.test_case "conformance: golden session" `Quick
      test_conformance_session;
    Alcotest.test_case "reply envelope always present" `Quick
      test_reply_envelope;
    Alcotest.test_case "dispositions" `Quick test_dispositions;
    Alcotest.test_case "socket smoke" `Quick test_socket_smoke;
    Alcotest.test_case "pipelined requests keep order" `Quick
      test_pipelined_ordering;
    Alcotest.test_case "too many connections: structured rejection" `Quick
      test_too_many_connections;
    Alcotest.test_case "oversized line: error then close" `Quick
      test_oversized_line;
    Alcotest.test_case "stress: snapshot isolation under reloads" `Slow
      test_stress_snapshot_isolation;
    Alcotest.test_case "concurrent reloads serialize" `Quick
      test_concurrent_reloads;
    Alcotest.test_case "fuzz: handle_line total" `Slow test_fuzz_handle_line;
    Alcotest.test_case "fuzz: socket survives abuse" `Slow test_fuzz_socket ]
