(* Tests for the structured tracing layer (lib/util/trace.ml) and its
   exporters: Chrome trace_event JSON validity, B/E nesting per track,
   agreement between the span stream and the Perf counters, instantiation
   span args vs sema's own log, and span-tree shape determinism across
   domain counts.  Also pins the monotonic-clock satellite: recorded
   durations are never negative. *)

module T = Pdt_util.Trace
module J = Pdt_util.Json
module B = Pdt_build.Build
module G = Pdt_workloads.Generator

let n_tus = 4

let build_traced ?cache_dir ~domains () =
  let vfs, sources = G.project_vfs ~n_tus () in
  T.start ();
  T.reset_counters ();
  let r =
    B.build ~options:{ B.default_options with domains; cache_dir } ~vfs sources
  in
  T.stop ();
  Alcotest.(check int) "clean build" 0 (r.B.failed + r.B.degraded);
  r

(* ---------------- the JSON module itself ---------------- *)

let test_json_roundtrip () =
  let check_ok s expect =
    match J.parse s with
    | Ok v -> Alcotest.(check bool) ("parse " ^ s) true (v = expect)
    | Error m -> Alcotest.fail (s ^ ": " ^ m)
  in
  check_ok "42" (J.Num 42.0);
  check_ok "[1, true, null]" (J.List [ J.Num 1.0; J.Bool true; J.Null ]);
  check_ok {|{"a": "b\nc", "d": [-1.5e2]}|}
    (J.Obj [ ("a", J.Str "b\nc"); ("d", J.List [ J.Num (-150.0) ]) ]);
  (match J.parse (J.escape "quote\" back\\slash \t\ncontrol\x01") with
   | Ok (J.Str s) ->
       Alcotest.(check string) "escape round-trips" "quote\" back\\slash \t\ncontrol\x01" s
   | _ -> Alcotest.fail "escaped string did not parse back");
  List.iter
    (fun bad ->
      match J.parse bad with
      | Ok _ -> Alcotest.fail ("accepted invalid JSON: " ^ bad)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

(* ---------------- clock and disabled-path behaviour ---------------- *)

(* the monotonic-clock satellite: Unix.gettimeofday could step backwards
   under NTP; CLOCK_MONOTONIC cannot, so durations are never negative *)
let test_durations_never_negative () =
  for _ = 1 to 10_000 do
    let t1 = Pdt_util.Perf.now_ns () in
    let t2 = Pdt_util.Perf.now_ns () in
    Alcotest.(check bool) "clock is monotonic" true (t2 >= t1)
  done;
  T.stop ();
  T.reset_counters ();
  for _ = 1 to 100 do
    Pdt_util.Perf.time "tick" (fun () -> ignore (Sys.opaque_identity 1))
  done;
  List.iter
    (fun (name, calls, ns) ->
      Alcotest.(check bool) (name ^ " duration >= 0") true (ns >= 0);
      Alcotest.(check bool) (name ^ " calls > 0") true (calls > 0))
    (T.counters ())

let test_disabled_span_is_passthrough () =
  T.stop ();
  T.reset_counters ();
  let r = T.span ~cat:"t" "off.span" (fun () -> 41 + 1) in
  Alcotest.(check int) "value" 42 r;
  (* a disabled span neither records an event nor touches its counter *)
  Alcotest.(check bool) "no counter" true
    (not (List.exists (fun (n, _, _) -> n = "off.span") (T.counters ())));
  (* timed, by contrast, feeds --stats even untraced *)
  ignore (T.timed ~cat:"t" "off.timed" (fun () -> 7));
  Alcotest.(check bool) "timed counter" true
    (List.exists (fun (n, _, _) -> n = "off.timed") (T.counters ()))

(* ---------------- chrome export well-formedness ---------------- *)

(* Validate the exporter's output the way tracecheck does: every event
   carries the schema fields, and per track the B/E events balance and
   nest.  Returns (tid, ph, name) per non-metadata event. *)
let validate_chrome (json : string) : (int * string * string) list =
  let doc =
    match J.parse json with
    | Ok d -> d
    | Error m -> Alcotest.fail ("trace is not valid JSON: " ^ m)
  in
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  let parsed =
    events
    |> List.map (fun ev ->
           let str k = Option.bind (J.member k ev) J.to_string_opt in
           let num k = Option.bind (J.member k ev) J.to_num_opt in
           let ph =
             match str "ph" with
             | Some ph when List.mem ph [ "B"; "E"; "i"; "M" ] -> ph
             | _ -> Alcotest.fail "event with bad ph"
           in
           let tid =
             match num "tid" with
             | Some t -> int_of_float t
             | None -> Alcotest.fail "event without tid"
           in
           let name =
             match str "name" with
             | Some n -> n
             | None -> Alcotest.fail "event without name"
           in
           if ph <> "M" then begin
             if num "ts" = None then Alcotest.fail "event without ts";
             if str "cat" = None then Alcotest.fail "event without cat"
           end;
           (tid, ph, name))
  in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (tid, ph, name) ->
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
      match ph with
      | "B" -> Hashtbl.replace stacks tid (name :: stack)
      | "E" -> (
          match stack with
          | top :: rest when top = name -> Hashtbl.replace stacks tid rest
          | top :: _ ->
              Alcotest.fail
                (Printf.sprintf "tid %d: E %s closes open %s" tid name top)
          | [] -> Alcotest.fail (Printf.sprintf "tid %d: stray E %s" tid name))
      | _ -> ())
    parsed;
  Hashtbl.iter
    (fun tid -> function
      | [] -> ()
      | top :: _ ->
          Alcotest.fail (Printf.sprintf "tid %d: %s never closed" tid top))
    stacks;
  parsed

let test_chrome_trace_validates () =
  ignore (build_traced ~domains:4 ());
  let events = validate_chrome (T.chrome_json ()) in
  let has name = List.exists (fun (_, ph, n) -> ph <> "M" && n = name) events in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("span " ^ name ^ " present") true (has name))
    [ "pp.include"; "lex.tokenize"; "parse.tu"; "sema.analyze";
      "sema.instantiate"; "build.unit"; "compile"; "pdb.write"; "pdb.merge";
      "pdb.merge_chunk"; "sched.queue_wait" ];
  (* one track per worker domain: > 1 tid when building on 4 domains *)
  let tids =
    List.sort_uniq compare (List.map (fun (t, _, _) -> t) events)
  in
  Alcotest.(check bool) "several tracks" true (List.length tids > 1);
  (* every track announces itself to Perfetto *)
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "thread_name metadata for tid %d" tid)
        true
        (List.exists (fun (t, ph, n) -> t = tid && ph = "M" && n = "thread_name") events))
    tids

let test_cache_spans_present () =
  let dir = Filename.temp_file "pdt-trace-test" ".cache" in
  Sys.remove dir;
  (* cold build fills the cache, warm build hits it; both are traced *)
  ignore (build_traced ~cache_dir:dir ~domains:2 ());
  let cold = validate_chrome (T.chrome_json ()) in
  let has l name = List.exists (fun (_, ph, n) -> ph <> "M" && n = name) l in
  Alcotest.(check bool) "cache.load span" true (has cold "cache.load");
  Alcotest.(check bool) "cache.miss marks" true (has cold "cache.miss");
  Alcotest.(check bool) "cache.store span" true (has cold "cache.store");
  ignore (build_traced ~cache_dir:dir ~domains:2 ());
  let warm = validate_chrome (T.chrome_json ()) in
  Alcotest.(check bool) "cache.hit marks" true (has warm "cache.hit")

(* ---------------- counters = span stream ---------------- *)

let test_stats_agree_with_trace () =
  ignore (build_traced ~domains:1 ());
  let rows = T.profile_rows () in
  let counters = T.counters () in
  (* for every span name, the --stats counter and the profile computed
     from the trace come from the same clock reads: equal, not close *)
  List.iter
    (fun (r : T.profile_row) ->
      match List.find_opt (fun (n, _, _) -> n = r.T.pname) counters with
      | None -> Alcotest.fail ("no counter for span " ^ r.T.pname)
      | Some (_, calls, ns) ->
          Alcotest.(check int) (r.T.pname ^ " calls") calls r.T.calls;
          Alcotest.(check bool) (r.T.pname ^ " total ns") true
            (Int64.of_int ns = r.T.inclusive_ns))
    rows;
  (* profile invariants *)
  List.iter
    (fun (r : T.profile_row) ->
      Alcotest.(check bool) (r.T.pname ^ " incl >= excl >= 0") true
        (r.T.inclusive_ns >= r.T.exclusive_ns && r.T.exclusive_ns >= 0L))
    rows;
  let row name = List.find (fun (r : T.profile_row) -> r.T.pname = name) rows in
  Alcotest.(check int) "one parse per unit" (n_tus + 1) (row "parse.tu").T.calls;
  Alcotest.(check int) "one build.unit per unit" (n_tus + 1)
    (row "build.unit").T.calls

(* ---------------- instantiation args match sema ---------------- *)

let test_instantiation_args_match_sema () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile ~vfs Pdt_workloads.Stack.main_file in
  Alcotest.(check bool) "workload compiles clean" false
    (Pdt_util.Diag.has_errors c.Pdt.diags);
  let diags = Pdt_util.Diag.create () in
  T.start ();
  let t = Pdt_sema.Sema.analyze_full ~diags c.Pdt.pp c.Pdt.tu in
  T.stop ();
  let log_names =
    List.map
      (fun (id, key) ->
        (Pdt_il.Il.template t.Pdt_sema.Sema.prog id).Pdt_il.Il.te_name
        ^ "<" ^ key ^ ">")
      (Pdt_sema.Sema.instantiation_log t)
  in
  let rec span_names acc (n : T.node) =
    let acc =
      if n.T.nname = "sema.instantiate" then
        match List.assoc_opt "name" n.T.nargs with
        | Some (T.Str s) -> s :: acc
        | _ -> Alcotest.fail "sema.instantiate span without name arg"
      else acc
    in
    List.fold_left span_names acc n.T.children
  in
  let traced_names =
    List.concat_map
      (fun (_, roots) -> List.fold_left span_names [] roots)
      (T.forest ())
  in
  Alcotest.(check bool) "sema instantiated something" true (log_names <> []);
  Alcotest.(check (list string)) "trace args = sema's instantiation log"
    (List.sort compare log_names)
    (List.sort compare traced_names)

(* ---------------- tree shape determinism ---------------- *)

let rec shape (n : T.node) : string =
  let args =
    match n.T.nargs with
    | [] -> ""
    | args ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 k ^ "="
                 ^ (match v with
                    | T.Str s -> s
                    | T.Int i -> string_of_int i
                    | T.Bool b -> string_of_bool b))
               args)
        ^ "}"
  in
  n.T.nname ^ args ^ "(" ^ String.concat "," (List.map shape n.T.children) ^ ")"

(* every build.unit subtree in the forest, keyed by its unit arg *)
let unit_shapes () : (string * string) list =
  let rec collect acc (n : T.node) =
    let acc =
      if n.T.nname = "build.unit" then
        match List.assoc_opt "unit" n.T.nargs with
        | Some (T.Str u) -> (u, shape n) :: acc
        | _ -> Alcotest.fail "build.unit span without unit arg"
      else acc
    in
    List.fold_left collect acc n.T.children
  in
  List.concat_map (fun (_, roots) -> List.fold_left collect [] roots) (T.forest ())
  |> List.sort compare

let test_tree_shape_deterministic_across_domains () =
  (* same workload, same seed: the span tree under each build.unit must
     not depend on how many domains the work was scheduled across
     (timestamps and track assignment of course do) *)
  ignore (build_traced ~domains:1 ());
  let seq = unit_shapes () in
  ignore (build_traced ~domains:8 ());
  let par = unit_shapes () in
  Alcotest.(check int) "one subtree per unit" (n_tus + 1) (List.length seq);
  Alcotest.(check (list (pair string string)))
    "per-unit span trees identical across 1 and 8 domains" seq par

let suite =
  [ Alcotest.test_case "json: parse/print round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "clock: durations never negative" `Quick
      test_durations_never_negative;
    Alcotest.test_case "disabled tracing is a no-op" `Quick
      test_disabled_span_is_passthrough;
    Alcotest.test_case "chrome export validates and nests" `Quick
      test_chrome_trace_validates;
    Alcotest.test_case "cache spans and hit/miss marks" `Quick
      test_cache_spans_present;
    Alcotest.test_case "--stats counters = trace spans" `Quick
      test_stats_agree_with_trace;
    Alcotest.test_case "instantiation spans carry sema's names" `Quick
      test_instantiation_args_match_sema;
    Alcotest.test_case "span tree shape deterministic across domains" `Quick
      test_tree_shape_deterministic_across_domains ]
