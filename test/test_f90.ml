(* Fortran 90 front-end tests: the paper's §6 language extension. *)

open Pdt_il.Il

let compile src =
  let diags = Pdt_util.Diag.create () in
  let prog = Pdt_f90.F90_sema.compile_string ~diags src in
  (prog, diags)

let compile_ok src =
  let prog, diags = compile src in
  if Pdt_util.Diag.has_errors diags then
    Alcotest.failf "F90 compile errors:\n%s" (Pdt_util.Diag.to_string diags);
  prog

let demo () = compile_ok Pdt_workloads.Fortran_demo.linear_algebra_f90

let find_routine prog name =
  match List.find_opt (fun r -> r.ro_name = name) (routines prog) with
  | Some r -> r
  | None -> Alcotest.failf "routine %s not found" name

let callee_names prog r =
  List.map (fun cs -> (routine prog cs.cs_callee).ro_name) (calls r)

let test_module_to_namespace () =
  let prog = demo () in
  match namespaces prog with
  | [ ns ] ->
      Alcotest.(check string) "module name" "linear_algebra" ns.na_name;
      Alcotest.(check bool) "module members recorded" true
        (List.length ns.na_members >= 7)
  | l -> Alcotest.failf "expected 1 namespace, got %d" (List.length l)

let test_derived_type_to_class () =
  let prog = demo () in
  let vec3 = List.find (fun c -> c.cl_name = "vec3") (classes prog) in
  Alcotest.(check string) "struct kind" "struct" (class_kind_to_string vec3.cl_kind);
  Alcotest.(check (list string)) "components as members" [ "x"; "y"; "z" ]
    (List.map (fun m -> m.dm_name) vec3.cl_members);
  Alcotest.(check string) "component type" "real"
    (type_name prog (List.hd vec3.cl_members).dm_type);
  (match vec3.cl_parent with
   | Pnamespace ns ->
       Alcotest.(check string) "nested in module" "linear_algebra"
         (namespace prog ns).na_name
   | _ -> Alcotest.fail "vec3 should live in the module")

let test_array_attributes () =
  let prog = demo () in
  let m3 = List.find (fun c -> c.cl_name = "matrix3") (classes prog) in
  let a = List.hd m3.cl_members in
  Alcotest.(check string) "dimension(3,3) becomes array type" "real [3] [3]"
    (type_name prog a.dm_type)

let test_routines_and_linkage () =
  let prog = demo () in
  let dot3 = find_routine prog "dot3" in
  Alcotest.(check string) "Fortran linkage" "Fortran" dot3.ro_link;
  Alcotest.(check string) "signature uses derived types" "real (vec3, vec3)"
    (type_name prog dot3.ro_sig);
  let scale3 = find_routine prog "scale3" in
  Alcotest.(check string) "subroutine returns void" "void (vec3, real)"
    (type_name prog scale3.ro_sig)

let test_call_edges () =
  let prog = demo () in
  let nv = find_routine prog "norm_vec3" in
  Alcotest.(check (list string)) "norm_vec3 calls dot3" [ "dot3" ]
    (callee_names prog nv);
  let main = find_routine prog "demo" in
  let names = callee_names prog main in
  Alcotest.(check bool) "program calls scale3" true (List.mem "scale3" names);
  Alcotest.(check bool) "program calls fact" true (List.mem "fact" names)

let test_generic_interface_resolution () =
  (* the paper: "Fortran interfaces will correspond to routines with
     aliases" — a call through the generic name resolves to a procedure *)
  let prog = demo () in
  let main = find_routine prog "demo" in
  let names = callee_names prog main in
  Alcotest.(check bool) "norm(a) resolved to norm_vec3" true
    (List.mem "norm_vec3" names);
  Alcotest.(check bool) "generic name itself is not a callee" false
    (List.mem "norm" names)

let test_recursion_edge () =
  let prog = demo () in
  let fact = find_routine prog "fact" in
  Alcotest.(check (list string)) "fact calls itself" [ "fact" ]
    (callee_names prog fact)

let test_pdb_emission () =
  let prog = demo () in
  let pdb = Pdt_analyzer.Analyzer.run prog in
  let s = Pdt_pdb.Pdb_write.to_string pdb in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "na item for module" true (contains "na#1 linear_algebra");
  Alcotest.(check bool) "Fortran rlink" true (contains "rlink Fortran");
  Alcotest.(check bool) "derived type class item" true (contains "ckind struct");
  (* and it roundtrips through the common PDB format *)
  let s' = Pdt_pdb.Pdb_write.to_string (Pdt_pdb.Pdb_parse.of_string s) in
  Alcotest.(check string) "roundtrip" s s'

let test_uniform_tools () =
  (* the §6 goal: language-independent tools work unchanged on Fortran PDBs *)
  let prog = demo () in
  let d = Pdt_ductape.Ductape.index (Pdt_analyzer.Analyzer.run prog) in
  Alcotest.(check (list string)) "pdbconv check clean" []
    (Pdt_tools.Pdbconv.check d);
  let root =
    List.find (fun (r : Pdt_pdb.Pdb.routine_item) -> r.ro_name = "demo")
      (Pdt_ductape.Ductape.routines d)
  in
  let out = Pdt_tools.Pdbtree.call_graph ~root d in
  let contains sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "call tree spans languages' common format" true
    (contains "`--> linear_algebra::norm_vec3");
  Alcotest.(check bool) "recursion cut works" true (contains "fact ...")

let test_lexer_basics () =
  let diags = Pdt_util.Diag.create () in
  let toks = Pdt_f90.F90_lexer.tokenize ~diags ~file:"t.f90" "X = 3.5e2 + N_total ! comment\n" in
  let spellings =
    List.filter_map
      (fun (tk : Pdt_f90.F90_lexer.tok) ->
        match tk.tok with
        | Pdt_f90.F90_lexer.Newline | Pdt_f90.F90_lexer.Eof -> None
        | t -> Some (Pdt_f90.F90_lexer.spelling t))
      toks
  in
  Alcotest.(check (list string)) "case folded, comment dropped"
    [ "x"; "="; "350."; "+"; "n_total" ] spellings

let test_continuation_lines () =
  let prog =
    compile_ok
      "subroutine s(a, &\n    b)\n  real :: a, b\n  a = b\nend subroutine s\n"
  in
  let s = find_routine prog "s" in
  Alcotest.(check int) "both args seen" 2 (List.length s.ro_params)

let suite =
  [ Alcotest.test_case "module -> namespace" `Quick test_module_to_namespace;
    Alcotest.test_case "derived type -> class" `Quick test_derived_type_to_class;
    Alcotest.test_case "array attributes" `Quick test_array_attributes;
    Alcotest.test_case "routines and linkage" `Quick test_routines_and_linkage;
    Alcotest.test_case "call edges" `Quick test_call_edges;
    Alcotest.test_case "generic interface resolution" `Quick
      test_generic_interface_resolution;
    Alcotest.test_case "recursive function edge" `Quick test_recursion_edge;
    Alcotest.test_case "PDB emission + roundtrip" `Quick test_pdb_emission;
    Alcotest.test_case "uniform tools over Fortran" `Quick test_uniform_tools;
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "continuation lines" `Quick test_continuation_lines ]
