(* Kitchen-sink integration tests: all mini-STL headers together, bigger
   programs end-to-end through compile -> PDB -> tools -> interpreter. *)

let run_ok src =
  let vfs = Pdt_util.Vfs.create () in
  Pdt_workloads.Ministl.mount vfs;
  let c = Pdt.compile_string ~vfs src in
  if Pdt_util.Diag.has_errors c.Pdt.diags then
    Alcotest.failf "compile errors:\n%s" (Pdt_util.Diag.to_string c.Pdt.diags);
  (c, Pdt_tau.Interp.run c.Pdt.program)

let test_all_headers_together () =
  let src =
    {|#include <vector.h>
#include <pair.h>
#include <list.h>
#include <algorithm.h>
#include <iostream.h>
#include <string.h>

int main() {
    vector<int> v;
    for (int i = 0; i < 8; i++)
        v.push_back(i * 3 % 7);
    pair<int, double> p = make_pair(2, 1.5);
    int hi = max(v[0], v[1]);
    int lo = min(v[0], v[1]);
    swap(hi, lo);
    list<int> l;
    l.push_back(42);
    cout << v.size() << " " << p.first << " " << hi << " " << lo << " "
         << l.back() << endl;
    return 0;
}
|}
  in
  let _, r = run_ok src in
  Alcotest.(check int) "exit" 0 r.exit_code;
  (* v = [0;3;6;2;5;1;4;0]; hi/lo = max/min(0,3) then swapped *)
  Alcotest.(check string) "output" "8 2 0 3 42\n" r.output

let test_pair_template_two_params () =
  let _, r =
    run_ok
      "#include <pair.h>\nint main() { pair<int, bool> p(7, true); return p.second ? p.first : 0; }"
  in
  Alcotest.(check int) "two-parameter template" 7 r.exit_code

let test_algorithm_swap_refs () =
  let _, r =
    run_ok
      "#include <algorithm.h>\nint main() { double a = 1.5; double b = 2.5; swap(a, b); return (int)(a * 10); }"
  in
  Alcotest.(check int) "swap through references" 25 r.exit_code

let test_string_builtin () =
  let _, r =
    run_ok
      "#include <string.h>\n#include <iostream.h>\n\
       int main() { string s(\"hello\"); string t(\" world\");\n\
       \  string u = s + t;\n  cout << u.c_str() << \"/\" << u.length() << endl;\n\
       \  return s == t ? 1 : 0; }"
  in
  Alcotest.(check string) "string ops" "hello world/11\n" r.output;
  Alcotest.(check int) "comparison" 0 r.exit_code

let test_list_of_template () =
  let _, r =
    run_ok
      "#include <list.h>\n#include <pair.h>\n\
       int main() {\n\
       \  list<pair<int, int> > l;\n\
       \  l.push_back(make_pair(1, 2));\n\
       \  l.push_back(make_pair(3, 4));\n\
       \  pair<int, int> last = l.back();\n\
       \  return last.first * 10 + last.second;\n}"
  in
  Alcotest.(check int) "list of pairs" 34 r.exit_code

let test_full_pipeline_on_big_program () =
  (* generator with everything cranked up: compile, analyze, html, merge,
     instrument, run — no crashes, consistent output *)
  let cfg =
    { Pdt_workloads.Generator.default_config with
      n_class_templates = 12; methods_per_class = 5; n_function_templates = 6;
      n_plain_classes = 6; n_instantiation_types = 4 }
  in
  let src = Pdt_workloads.Generator.single_file_program ~cfg () in
  let vfs = Pdt_util.Vfs.create () in
  Pdt_workloads.Ministl.mount vfs;
  Pdt_util.Vfs.add_file vfs "big.cpp" src;
  let c = Pdt.compile ~vfs "big.cpp" in
  Alcotest.(check bool) "no errors" false (Pdt_util.Diag.has_errors c.Pdt.diags);
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let d = Pdt_ductape.Ductape.index pdb in
  Alcotest.(check (list string)) "consistent" [] (Pdt_tools.Pdbconv.check d);
  Alcotest.(check bool) "many items" true (Pdt_pdb.Pdb.item_count pdb > 200);
  let pages = Pdt_tools.Pdbhtml.generate d in
  Alcotest.(check bool) "html ok" true (List.length pages > 20);
  let plan = Pdt_tau.Instrument.plan d in
  let vfs2, _ = Pdt_tau.Instrument.instrument_vfs vfs plan in
  let c2 = Pdt.compile ~vfs:vfs2 "big.cpp" in
  Alcotest.(check bool) "instrumented compiles" false
    (Pdt_util.Diag.has_errors c2.Pdt.diags);
  let r1 = Pdt_tau.Interp.run c.Pdt.program in
  let r2 = Pdt_tau.Interp.run c2.Pdt.program in
  Alcotest.(check int) "same exit" r1.exit_code r2.exit_code;
  Alcotest.(check bool) "profile non-empty" true
    (List.length (Pdt_tau.Pprof.rows r2.profile) > 5)

let test_stack_pdb_through_disk () =
  (* write the PDB to disk, read it back through the tools path *)
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
  let path = Filename.temp_file "pdt_test" ".pdb" in
  Pdt_pdb.Pdb_write.to_file pdb path;
  let d = Pdt_ductape.Ductape.of_file path in
  Sys.remove path;
  Alcotest.(check int) "same item count" (Pdt_pdb.Pdb.item_count pdb)
    (Pdt_pdb.Pdb.item_count (Pdt_ductape.Ductape.pdb d))

let suite =
  [ Alcotest.test_case "all mini-STL headers together" `Quick test_all_headers_together;
    Alcotest.test_case "pair: two type parameters" `Quick test_pair_template_two_params;
    Alcotest.test_case "algorithm swap by reference" `Quick test_algorithm_swap_refs;
    Alcotest.test_case "string builtin" `Quick test_string_builtin;
    Alcotest.test_case "list of pairs" `Quick test_list_of_template;
    Alcotest.test_case "full pipeline on big program" `Quick test_full_pipeline_on_big_program;
    Alcotest.test_case "PDB via the filesystem" `Quick test_stack_pdb_through_disk ]
