(* PDB-B (binary container) regression tests.

   The ASCII PDB stays the golden interchange format: every binary-side
   check below is phrased as "canonical ASCII in, canonical ASCII out",
   so a container bug can never hide behind a lossy decode.  The binary
   goldens under test/golden/*.pdbb are derived mechanically from the
   ASCII goldens (parse the .pdb, encode with Pdb_bin) — they pin the
   byte layout of format v1, so an accidental encoding change fails here
   even when the round trip still closes.

   Regenerating after an intentional format change:

     PDT_GOLDEN_REGEN=1 dune exec test/main.exe -- test pdb-bin

   (same convention as the ASCII goldens: regeneration fails the test so
   a stale PDT_GOLDEN_REGEN cannot greenlight CI). *)

module P = Pdt_pdb.Pdb
module W = Pdt_pdb.Pdb_write
module B = Pdt_pdb.Pdb_bin
module V = Pdt_pdb.Pdb_bin.View
module IO = Pdt_pdb.Pdb_io
module D = Pdt_ductape.Ductape
module G = Pdt_workloads.Generator

let golden_names = List.map fst Test_golden.corpus

let golden_ascii name : string =
  let path = Test_golden.golden_read_path name in
  if not (Sys.file_exists path) then
    Alcotest.fail
      (Printf.sprintf
         "missing ASCII golden %s — run PDT_GOLDEN_REGEN=1 dune exec test/main.exe -- test golden"
         path);
  Test_golden.read_file path

let golden_bin_path name =
  Filename.concat (Test_golden.golden_dir ()) (name ^ ".pdbb")

(* the .pdbb golden is a pure function of the .pdb golden *)
let produce_bin name : string = B.to_string (Pdt_pdb.Pdb_parse.of_string (golden_ascii name))

let with_tmp_file contents f =
  let path = Filename.temp_file "pdt_bin_test" ".pdbb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Test_golden.write_file path contents;
      f path)

(* ------------------------------------------------------------------ *)
(* Golden fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let check_bin_golden name () =
  let actual = produce_bin name in
  if Sys.getenv_opt "PDT_GOLDEN_REGEN" = Some "1" then begin
    let dir = Test_golden.golden_dir () in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".pdbb") in
    Test_golden.write_file path actual;
    Alcotest.fail
      (Printf.sprintf "regenerated %s (%d bytes) — unset PDT_GOLDEN_REGEN and rerun"
         path (String.length actual))
  end
  else begin
    let path = golden_bin_path name in
    if not (Sys.file_exists path) then
      Alcotest.fail
        (Printf.sprintf
           "missing binary golden %s — run PDT_GOLDEN_REGEN=1 dune exec test/main.exe -- test pdb-bin"
           path);
    let expected = Test_golden.read_file path in
    if expected <> actual then
      Alcotest.fail
        (Printf.sprintf
           "%s: PDB-B encoding changed (golden %d bytes, actual %d bytes)" name
           (String.length expected) (String.length actual))
  end

(* ------------------------------------------------------------------ *)
(* Lossless conversion: ASCII -> binary -> ASCII is byte-identical     *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_goldens () =
  List.iter
    (fun name ->
      let ascii = golden_ascii name in
      let bin = B.to_string (Pdt_pdb.Pdb_parse.of_string ascii) in
      Alcotest.(check string)
        (name ^ ": ascii -> binary -> ascii") ascii
        (W.to_string (B.of_string bin));
      (* and through the format-sniffing front door *)
      Alcotest.(check string)
        (name ^ ": via Pdb_io sniffing") ascii
        (W.to_string (IO.of_string bin)))
    golden_names

let test_sniffing () =
  let ascii = golden_ascii "stack" in
  let bin = B.to_string (Pdt_pdb.Pdb_parse.of_string ascii) in
  Alcotest.(check string) "ascii sniffed" "ascii" (IO.format_name (IO.sniff_string ascii));
  Alcotest.(check string) "binary sniffed" "binary" (IO.format_name (IO.sniff_string bin));
  Alcotest.(check bool) "is_binary_string" true (B.is_binary_string bin);
  Alcotest.(check bool) "ascii is not binary" false (B.is_binary_string ascii)

let test_mmap_of_file () =
  List.iter
    (fun name ->
      let ascii = golden_ascii name in
      let bin = B.to_string (Pdt_pdb.Pdb_parse.of_string ascii) in
      with_tmp_file bin (fun path ->
          Alcotest.(check string) (name ^ ": mmap load") ascii
            (W.to_string (B.of_file path));
          Alcotest.(check bool) (name ^ ": is_binary_file") true
            (B.is_binary_file path);
          Alcotest.(check string) (name ^ ": Pdb_io.of_file") ascii
            (W.to_string (IO.of_file path))))
    golden_names

(* ------------------------------------------------------------------ *)
(* Ductape sees the same program through either container              *)
(* ------------------------------------------------------------------ *)

let test_ductape_index_equality () =
  List.iter
    (fun name ->
      let ascii = golden_ascii name in
      let bin = B.to_string (Pdt_pdb.Pdb_parse.of_string ascii) in
      let da = D.of_string ascii and db = D.of_string bin in
      Alcotest.(check string) (name ^ ": indexed PDBs agree")
        (D.to_string da) (D.to_string db);
      Alcotest.(check int) (name ^ ": item counts agree")
        (List.length (D.items da)) (List.length (D.items db));
      (* the derived index structure (caller edges) must agree too *)
      let caller_names d =
        List.map
          (fun (r : P.routine_item) ->
            ( r.P.ro_name,
              List.sort compare
                (List.map (fun (c : P.routine_item) -> c.P.ro_id) (D.callers d r)) ))
          (D.routines d)
      in
      Alcotest.(check bool) (name ^ ": caller edges agree") true
        (caller_names da = caller_names db))
    golden_names

(* ------------------------------------------------------------------ *)
(* The zero-copy View agrees with the eager decoder                    *)
(* ------------------------------------------------------------------ *)

let test_view_counts () =
  List.iter
    (fun name ->
      let bin = produce_bin name in
      let pdb = B.of_string bin in
      let v = V.of_string bin in
      Alcotest.(check string) (name ^ ": version") pdb.P.version (V.version v);
      Alcotest.(check bool) (name ^ ": incomplete") pdb.P.incomplete (V.incomplete v);
      Alcotest.(check int) (name ^ ": diag_count") pdb.P.diag_count (V.diag_count v);
      Alcotest.(check int) (name ^ ": item_count") (P.item_count pdb) (V.item_count v);
      let expect =
        [ ("so", List.length pdb.P.files);
          ("na", List.length pdb.P.namespaces);
          ("te", List.length pdb.P.templates);
          ("ro", List.length pdb.P.routines);
          ("cl", List.length pdb.P.classes);
          ("ty", List.length pdb.P.types);
          ("ma", List.length pdb.P.pdb_macros) ]
      in
      List.iter
        (fun (kind, n) ->
          Alcotest.(check int) (name ^ ": " ^ kind ^ " count") n
            (List.assoc kind (V.counts v)))
        expect)
    golden_names

let test_view_by_id () =
  List.iter
    (fun name ->
      let bin = produce_bin name in
      let pdb = B.of_string bin in
      let v = V.of_string bin in
      List.iter
        (fun (r : P.routine_item) ->
          match V.routine_by_id v r.P.ro_id with
          | Some r' ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: ro#%d decodes identically" name r.P.ro_id)
                true (r = r')
          | None ->
              Alcotest.fail
                (Printf.sprintf "%s: ro#%d missing from view" name r.P.ro_id))
        pdb.P.routines;
      List.iter
        (fun (c : P.class_item) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: cl#%d decodes identically" name c.P.cl_id)
            true (V.class_by_id v c.P.cl_id = Some c))
        pdb.P.classes;
      List.iter
        (fun (f : P.source_file) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: so#%d decodes identically" name f.P.so_id)
            true (V.file_by_id v f.P.so_id = Some f))
        pdb.P.files;
      (* a miss is None, not an exception *)
      Alcotest.(check bool) (name ^ ": unknown id is None") true
        (V.routine_by_id v 987654 = None))
    golden_names

let test_view_at_and_find () =
  let bin = produce_bin "ministl" in
  let pdb = B.of_string bin in
  let v = V.of_string bin in
  (* sequential record access enumerates exactly the eager lists *)
  let all_at count at = List.init count at in
  Alcotest.(check bool) "routine_at enumerates routines" true
    (all_at (V.routine_count v) (V.routine_at v) = pdb.P.routines);
  Alcotest.(check bool) "class_at enumerates classes" true
    (all_at (V.class_count v) (V.class_at v) = pdb.P.classes);
  Alcotest.(check bool) "type_at enumerates types" true
    (all_at (V.type_count v) (V.type_at v) = pdb.P.types);
  (* name resolution without decoding: agrees with an eager scan *)
  (match V.find_routine v "main" with
  | Some r ->
      Alcotest.(check bool) "find_routine main" true
        (Some r = List.find_opt (fun (r : P.routine_item) -> r.P.ro_name = "main") pdb.P.routines)
  | None -> Alcotest.fail "ministl has a main");
  (match V.find_class v "vector<int>" with
  | Some c -> Alcotest.(check string) "find_class vector<int>" "vector<int>" c.P.cl_name
  | None -> Alcotest.fail "ministl has a vector<int> instantiation");
  (match V.find_template v "vector" with
  | Some te -> Alcotest.(check string) "find_template vector" "vector" te.P.te_name
  | None -> Alcotest.fail "ministl has a vector template");
  Alcotest.(check bool) "find_routine miss is None" true
    (V.find_routine v "no_such_routine_name" = None);
  (* out-of-range record index raises the container's own error *)
  (match V.routine_at v (V.routine_count v) with
  | exception B.Format_error _ -> ()
  | _ -> Alcotest.fail "out-of-range routine_at must raise Format_error")

let test_view_to_pdb () =
  List.iter
    (fun name ->
      let ascii = golden_ascii name in
      let bin = B.to_string (Pdt_pdb.Pdb_parse.of_string ascii) in
      Alcotest.(check string) (name ^ ": view to_pdb is lossless") ascii
        (W.to_string (V.to_pdb (V.of_string bin))))
    golden_names

(* ------------------------------------------------------------------ *)
(* Malformed input: Format_error or a clean decode, never a crash      *)
(* ------------------------------------------------------------------ *)

let attempt what bytes =
  (* both the eager decoder and the view must contain the damage *)
  let outcomes =
    [ (fun () -> ignore (B.of_string bytes));
      (fun () -> ignore (V.of_string bytes)) ]
  in
  List.iter
    (fun f ->
      match f () with
      | () -> ()
      | exception B.Format_error _ -> ()
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "%s: escaped with %s instead of Format_error" what
               (Printexc.to_string e)))
    outcomes

let test_truncation_sweep () =
  let base = produce_bin "ministl" in
  let n = String.length base in
  (* every cut inside the header/section-table region, then samples *)
  let cuts = ref [] in
  for len = 0 to min n 160 do cuts := len :: !cuts done;
  let step = max 1 (n / 97) in
  let len = ref 160 in
  while !len < n do
    cuts := !len :: !cuts;
    len := !len + step
  done;
  cuts := (n - 1) :: !cuts;
  List.iter
    (fun len ->
      if len >= 0 && len < n then
        attempt (Printf.sprintf "truncated to %d/%d bytes" len n)
          (String.sub base 0 len))
    !cuts

let test_bitflip_sweep () =
  let base = produce_bin "ministl" in
  let n = String.length base in
  let step = max 1 (n / 64) in
  let pos = ref 0 in
  while !pos < n do
    let b = Bytes.of_string base in
    Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0xFF));
    attempt (Printf.sprintf "byte %d/%d flipped" !pos n) (Bytes.to_string b);
    pos := !pos + step
  done

let test_garbage () =
  attempt "empty input" "";
  attempt "bare magic" "PDBB";
  attempt "magic + zeros" ("PDBB" ^ String.make 32 '\000');
  attempt "magic + 0xFF" ("PDBB" ^ String.make 64 '\255');
  (* wrong version must be rejected, not misdecoded *)
  let base = produce_bin "stack" in
  let b = Bytes.of_string base in
  Bytes.set b 4 '\099';
  (match B.of_string (Bytes.to_string b) with
  | exception B.Format_error _ -> ()
  | _ -> Alcotest.fail "future format version must raise Format_error")

(* ------------------------------------------------------------------ *)
(* Property: generated projects round-trip through the container       *)
(* ------------------------------------------------------------------ *)

let prop_bin_roundtrip =
  QCheck.Test.make ~count:8
    ~name:"pdb-b: merged generated projects round-trip byte-identically"
    QCheck.(int_range 0 300)
    (fun seed ->
      let cfg =
        { G.default_config with seed; n_class_templates = 3; methods_per_class = 2 }
      in
      let vfs, sources = G.project_vfs ~cfg ~n_tus:2 () in
      let pdbs =
        List.map
          (fun f -> Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs f).Pdt.program)
          sources
      in
      let merged = D.merge pdbs in
      let ascii = W.to_string merged in
      let bin = B.to_string merged in
      W.to_string (B.of_string bin) = ascii
      && W.to_string (V.to_pdb (V.of_string bin)) = ascii)

let suite =
  List.map
    (fun name ->
      Alcotest.test_case ("binary golden: " ^ name) `Quick (check_bin_golden name))
    golden_names
  @ [ Alcotest.test_case "ascii -> binary -> ascii byte-identical" `Quick
        test_roundtrip_goldens;
      Alcotest.test_case "format sniffing" `Quick test_sniffing;
      Alcotest.test_case "mmap of_file" `Quick test_mmap_of_file;
      Alcotest.test_case "ductape index equality across containers" `Quick
        test_ductape_index_equality;
      Alcotest.test_case "view: counts and header" `Quick test_view_counts;
      Alcotest.test_case "view: by-id lookup equals eager decode" `Quick
        test_view_by_id;
      Alcotest.test_case "view: record access and name resolution" `Quick
        test_view_at_and_find;
      Alcotest.test_case "view: to_pdb is lossless" `Quick test_view_to_pdb;
      Alcotest.test_case "truncation sweep never crashes" `Quick
        test_truncation_sweep;
      Alcotest.test_case "bit-flip sweep never crashes" `Quick test_bitflip_sweep;
      Alcotest.test_case "garbage and wrong-version input" `Quick test_garbage;
      QCheck_alcotest.to_alcotest prop_bin_roundtrip ]
