(* May-happen-in-parallel battery (the concurrency half of the semantic
   analyses).

   The MHP relation is derived at query time from the spawn/join
   primitives the front end records in the PDB, so the battery pins both
   layers: the spawn_site attribute itself (parse, persist, merge, build
   paths) and the relation computed over it.  Soundness cases assert
   known-concurrent pairs are present; precision cases assert
   known-sequential pairs are absent — an analysis that says "everything
   is parallel" fails the latter half.  The spawn/join syntax is
   contextual (plain identifiers elsewhere), which gets its own cases
   plus a mutation axis in the fuzz suite. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape
module A = Pdt_analyzer.Analyzer
module M = Pdt_analyzer.Mhp
module W = Pdt_pdb.Pdb_write
module B = Pdt_build.Build
module I = Pdt_build.Incremental
module Farm = Pdt_build.Farm
module F = Pdt_util.Fault
module Ps = Pdt_workloads.Parallel_spawn

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let ps_pdb () =
  let c = Pdt.compile_exn ~vfs:(Ps.vfs ()) Ps.main_file in
  A.run c.Pdt.program

let routine pdb name =
  match
    List.find_opt (fun (r : P.routine_item) -> r.P.ro_name = name) pdb.P.routines
  with
  | Some r -> r
  | None -> Alcotest.failf "routine %s not in PDB" name

let rid pdb name = (routine pdb name).P.ro_id

(* compile a micro program and answer may_parallel by routine name *)
let mhp_of src =
  let c = Pdt.compile_string src in
  if Pdt_util.Diag.has_errors c.Pdt.diags then
    Alcotest.failf "compile errors:\n%s" (Pdt_util.Diag.to_string c.Pdt.diags);
  let pdb = A.run c.Pdt.program in
  (pdb, M.compute pdb)

let para (pdb, m) a b = M.may_parallel m (rid pdb a) (rid pdb b)

(* ---------------- the spawn_site attribute ---------------- *)

let test_spawn_sites_recorded () =
  let pdb = ps_pdb () in
  let main = routine pdb "main" in
  let sites =
    List.map
      (fun (s : P.spawn) ->
        ( (Option.get (P.find_routine pdb s.P.sp_callee)).P.ro_name,
          s.P.sp_loc.P.lline,
          Option.map (fun (j : P.loc) -> j.P.lline) s.P.sp_join ))
      main.P.ro_spawns
  in
  Alcotest.(check (list (triple string int (option int))))
    "three sites, source order, joins resolved"
    [ ("work", 20, Some 22); ("helper", 23, Some 25); ("work", 24, Some 25) ]
    sites

let test_ascii_roundtrip_spawns () =
  let text = W.to_string (ps_pdb ()) in
  Alcotest.(check bool) "joined encoding" true
    (contains text "rspawn ro#1 so#1 20 5 joined so#1 22 5");
  let fast = Pdt_pdb.Pdb_parse.of_string text in
  let ref_ = Pdt_pdb.Pdb_parse_ref.of_string text in
  Alcotest.(check string) "fast parser round-trips" text (W.to_string fast);
  Alcotest.(check string) "reference parser agrees" text (W.to_string ref_)

let test_live_spawn_encoding () =
  (* a spawn that is never joined serializes as "live" and reads back *)
  let pdb, _ =
    mhp_of "int f() { return 1; }\nint main() { spawn f(); return 0; }"
  in
  (match (routine pdb "main").P.ro_spawns with
   | [ s ] -> Alcotest.(check bool) "join is None" true (s.P.sp_join = None)
   | l -> Alcotest.failf "expected one spawn site, got %d" (List.length l));
  let text = W.to_string pdb in
  Alcotest.(check bool) "live keyword" true (contains text " live");
  Alcotest.(check string) "round-trips" text
    (W.to_string (Pdt_pdb.Pdb_parse.of_string text))

let test_pdbb_roundtrip_spawns () =
  let pdb = ps_pdb () in
  let back = Pdt_pdb.Pdb_bin.of_string (Pdt_pdb.Pdb_bin.to_string pdb) in
  Alcotest.(check string) "PDB-B preserves spawn sites" (W.to_string pdb)
    (W.to_string back)

let test_merge_remaps_spawns () =
  let a = ps_pdb () in
  let b =
    A.run (Pdt.compile_exn ~vfs:(Pdt_workloads.Stack.vfs ())
             Pdt_workloads.Stack.main_file).Pdt.program
  in
  (* merge in both orders: callee ids are remapped, the relation survives *)
  let check_merged order =
    let m = D.merge order in
    let rel = M.compute m in
    Alcotest.(check bool) "work ∥ logline after merge" true
      (M.may_parallel rel (rid m "work") (rid m "logline"))
  in
  check_merged [ a; b ];
  check_merged [ b; a ];
  Alcotest.(check string) "merge is deterministic"
    (W.to_string (D.merge [ a; b ]))
    (W.to_string (D.merge [ ps_pdb (); b ]))

(* ---------------- the relation: soundness ---------------- *)

let test_oracle_pairs () =
  let pdb = ps_pdb () in
  let m = M.compute pdb in
  let name id = (Option.get (P.find_routine pdb id)).P.ro_name in
  let pairs =
    List.sort compare (List.map (fun (a, b) -> (name a, name b)) (M.pairs m))
  in
  Alcotest.(check (list (pair string string))) "exactly the oracle pairs"
    [ ("helper", "main"); ("work", "helper"); ("work", "logline");
      ("work", "main"); ("work", "work") ]
    (List.sort compare pairs)

let test_concurrent_routines () =
  let pdb = ps_pdb () in
  let m = M.compute pdb in
  let names =
    List.map
      (fun id -> (Option.get (P.find_routine pdb id)).P.ro_name)
      (M.concurrent_routines m)
  in
  Alcotest.(check (list string)) "every routine in some pair, once"
    [ "helper"; "logline"; "main"; "work" ]
    (List.sort compare names)

let test_spawned_routine_parallel_with_host () =
  let r =
    mhp_of
      "int f() { return 1; }\nint main() { spawn f(); join; return 0; }"
  in
  Alcotest.(check bool) "f ∥ main" true (para r "f" "main")

let test_call_in_window_is_concurrent () =
  let r =
    mhp_of
      "int f() { return 1; }\nint g() { return 2; }\n\
       int main() { spawn f(); g(); join; return 0; }"
  in
  Alcotest.(check bool) "f ∥ g (g called while f runs)" true (para r "f" "g")

let test_spawned_closure_is_concurrent () =
  (* spawn helper: everything helper may transitively call runs on the
     spawned thread, so its callees are concurrent with the host too *)
  let r =
    mhp_of
      "int w() { return 1; }\nint helper() { return w(); }\n\
       int main() { spawn helper(); join; return 0; }"
  in
  Alcotest.(check bool) "w ∥ main" true (para r "w" "main");
  Alcotest.(check bool) "helper ∥ main" true (para r "helper" "main")

let test_overlapping_spawns_cross () =
  let r =
    mhp_of
      "int f() { return 1; }\nint g() { return 2; }\n\
       int main() { spawn f(); spawn g(); join; return 0; }"
  in
  Alcotest.(check bool) "f ∥ g (both live at once)" true (para r "f" "g")

let test_live_spawn_reaches_later_calls () =
  (* no join: the spawned routine may still be running at every later
     call site *)
  let r =
    mhp_of
      "int f() { return 1; }\nint g() { return 2; }\n\
       int main() { spawn f(); return g(); }"
  in
  Alcotest.(check bool) "f ∥ g" true (para r "f" "g")

(* ---------------- the relation: precision ---------------- *)

let test_call_after_join_is_sequential () =
  let r =
    mhp_of
      "int f() { return 1; }\nint g() { return 2; }\n\
       int main() { spawn f(); join; g(); return 0; }"
  in
  Alcotest.(check bool) "g after join is NOT ∥ f" false (para r "f" "g")

let test_serial_routine_in_no_pair () =
  let pdb = ps_pdb () in
  let m = M.compute pdb in
  let serial = rid pdb "serial_part" in
  List.iter
    (fun (r : P.routine_item) ->
      Alcotest.(check bool)
        (Printf.sprintf "serial_part vs %s" r.P.ro_name)
        false
        (M.may_parallel m serial r.P.ro_id))
    pdb.P.routines

let test_join_by_name_is_selective () =
  (* join f closes only f's spawn; g stays live past the later call *)
  let r =
    mhp_of
      "int f() { return 1; }\nint g() { return 2; }\nint h() { return 3; }\n\
       int main() { spawn f(); spawn g(); join f; h(); return 0; }"
  in
  Alcotest.(check bool) "g (still live) ∥ h" true (para r "g" "h");
  Alcotest.(check bool) "f (joined) NOT ∥ h" false (para r "f" "h")

let test_no_spawns_no_pairs () =
  let _, m =
    mhp_of "int f() { return 1; }\nint main() { return f(); }"
  in
  Alcotest.(check int) "sequential program has an empty relation" 0
    (List.length (M.pairs m))

(* ---------------- syntax: contextual keywords and degradation -------- *)

let test_spawn_join_as_identifiers () =
  (* spawn/join are not reserved: ordinary code using the names still
     parses and records no spawn sites *)
  let pdb, m =
    mhp_of
      "int spawn = 1;\nint join = 2;\n\
       int main() { spawn = spawn + join; return spawn; }"
  in
  Alcotest.(check int) "no sites" 0
    (List.length (routine pdb "main").P.ro_spawns);
  Alcotest.(check int) "no pairs" 0 (List.length (M.pairs m))

let test_unmatched_join_warns () =
  let c =
    Pdt.compile_string
      "int f() { return 1; }\nint main() { join f; return 0; }"
  in
  Alcotest.(check bool) "no hard errors" false
    (Pdt_util.Diag.has_errors c.Pdt.diags);
  Alcotest.(check bool) "warning names the join" true
    (contains (Pdt_util.Diag.to_string c.Pdt.diags)
       "join does not match any outstanding spawn")

let test_spawn_of_non_call_degrades () =
  (* "spawn x;" is not a call: the statement falls back to an ordinary
     expression statement over an unknown name — diagnostics, no crash,
     and no spawn site *)
  let c = Pdt.compile_string "int main() { spawn 42 +; return 0; }" in
  Alcotest.(check bool) "recovered with diagnostics" true
    (Pdt_util.Diag.has_errors c.Pdt.diags
     || Pdt_util.Diag.to_string c.Pdt.diags <> "");
  let pdb = A.run c.Pdt.program in
  List.iter
    (fun (r : P.routine_item) ->
      Alcotest.(check int) "no site recorded" 0 (List.length r.P.ro_spawns))
    pdb.P.routines

(* ---------------- downstream consumers ---------------- *)

let test_pdbstats_mhp_lines () =
  let out = Pdt_tools.Pdbstats.report (D.index (ps_pdb ())) in
  Alcotest.(check bool) "spawn sites counted" true
    (contains out "spawn sites       : 3");
  Alcotest.(check bool) "pair count" true (contains out "MHP pairs         : 5")

let test_pdbtree_spawn_tag () =
  let out = Pdt_tools.Pdbtree.call_graph (D.index (ps_pdb ())) in
  Alcotest.(check bool) "spawned edges tagged" true
    (contains out "work (SPAWN)");
  Alcotest.(check bool) "sequential edges untagged" true
    (not (contains out "serial_part (SPAWN)"))

let test_tau_mhp_only_filter () =
  let d = D.index (ps_pdb ()) in
  let plan = Pdt_tau.Instrument.plan d in
  let filtered = Pdt_tau.Instrument.mhp_only d plan in
  let names l =
    List.sort_uniq compare
      (List.map (fun ir -> ir.Pdt_tau.Instrument.ir_name) l)
  in
  Alcotest.(check bool) "a strict subset of the full plan" true
    (List.length filtered < List.length plan && filtered <> []);
  Alcotest.(check (list string)) "exactly the concurrent routines"
    [ "helper"; "logline"; "main"; "work" ]
    (names filtered);
  Alcotest.(check bool) "serial_part excluded" true
    (not (List.mem "serial_part" (names filtered)))

let test_interp_schedule_is_deterministic () =
  (* the reference schedule runs a spawned call eagerly and join as a
     no-op, so the workload executes and returns serial_part(5) *)
  let c = Pdt.compile_exn ~vfs:(Ps.vfs ()) Ps.main_file in
  let r1 = Pdt_tau.Interp.run c.Pdt.program in
  let r2 = Pdt_tau.Interp.run c.Pdt.program in
  Alcotest.(check int) "exit code" 10 r1.Pdt_tau.Interp.exit_code;
  Alcotest.(check int) "two runs agree" r1.Pdt_tau.Interp.exit_code
    r2.Pdt_tau.Interp.exit_code

(* ---------------- build-path byte identity ---------------- *)

let fresh_dir () =
  let f = Filename.temp_file "pdt-mhp-test" ".cache" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let test_build_paths_byte_identical () =
  let reference =
    W.to_string
      (B.build ~options:{ B.default_options with domains = 1 }
         ~vfs:(Ps.vfs ()) [ Ps.main_file ])
        .B.merged
  in
  Alcotest.(check bool) "reference carries the attribute" true
    (contains reference "rspawn");
  let pool =
    B.build ~options:{ B.default_options with domains = 2 } ~vfs:(Ps.vfs ())
      [ Ps.main_file ]
  in
  Alcotest.(check string) "Domain pool bytes" reference
    (W.to_string pool.B.merged);
  let farm =
    Farm.build
      ~config:{ Farm.default_config with Farm.workers = 2 }
      ~options:B.default_options ~vfs:(Ps.vfs ()) [ Ps.main_file ]
  in
  Alcotest.(check string) "farm bytes" reference (W.to_string farm.B.merged);
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let incr =
    I.build
      ~options:
        { I.default_options with
          build = { B.default_options with domains = 1; cache_dir = Some dir } }
      ~vfs:(Ps.vfs ()) [ Ps.main_file ]
  in
  Alcotest.(check string) "incremental bytes" reference
    (W.to_string incr.I.merged)

(* ---------------- the fault site ---------------- *)

let test_mhp_fault_is_clean () =
  let pdb = ps_pdb () in
  let before = W.to_string pdb in
  (match
     F.with_faults ~sites:[ "analyzer.mhp" ] ~seed:5 ~rate:1.0 ~max_faults:1
       (fun () -> M.compute pdb)
   with
  | exception F.Injected _ -> ()
  | _ -> Alcotest.fail "armed mhp fault did not fire");
  (* the relation is derived — a crash mid-query mutates nothing *)
  Alcotest.(check string) "PDB untouched by the failed query" before
    (W.to_string pdb);
  let m = M.compute pdb in
  Alcotest.(check int) "clean retry answers" 5 (List.length (M.pairs m))

let suite =
  [ Alcotest.test_case "spawn sites recorded with joins" `Quick
      test_spawn_sites_recorded;
    Alcotest.test_case "ASCII round-trip, both parsers" `Quick
      test_ascii_roundtrip_spawns;
    Alcotest.test_case "live spawn encoding" `Quick test_live_spawn_encoding;
    Alcotest.test_case "PDB-B round-trip" `Quick test_pdbb_roundtrip_spawns;
    Alcotest.test_case "merge remaps callee ids" `Quick test_merge_remaps_spawns;
    Alcotest.test_case "oracle: exact pair set" `Quick test_oracle_pairs;
    Alcotest.test_case "oracle: concurrent routines" `Quick
      test_concurrent_routines;
    Alcotest.test_case "sound: spawned ∥ host" `Quick
      test_spawned_routine_parallel_with_host;
    Alcotest.test_case "sound: call inside window" `Quick
      test_call_in_window_is_concurrent;
    Alcotest.test_case "sound: spawned closure" `Quick
      test_spawned_closure_is_concurrent;
    Alcotest.test_case "sound: overlapping spawns" `Quick
      test_overlapping_spawns_cross;
    Alcotest.test_case "sound: live spawn reaches later calls" `Quick
      test_live_spawn_reaches_later_calls;
    Alcotest.test_case "precise: call after join" `Quick
      test_call_after_join_is_sequential;
    Alcotest.test_case "precise: serial routine in no pair" `Quick
      test_serial_routine_in_no_pair;
    Alcotest.test_case "precise: join by name is selective" `Quick
      test_join_by_name_is_selective;
    Alcotest.test_case "precise: no spawns, no pairs" `Quick
      test_no_spawns_no_pairs;
    Alcotest.test_case "spawn/join stay ordinary identifiers" `Quick
      test_spawn_join_as_identifiers;
    Alcotest.test_case "unmatched join warns" `Quick test_unmatched_join_warns;
    Alcotest.test_case "malformed spawn degrades" `Quick
      test_spawn_of_non_call_degrades;
    Alcotest.test_case "pdbstats mhp summary" `Quick test_pdbstats_mhp_lines;
    Alcotest.test_case "pdbtree SPAWN tag" `Quick test_pdbtree_spawn_tag;
    Alcotest.test_case "tau_instr --mhp-only filter" `Quick
      test_tau_mhp_only_filter;
    Alcotest.test_case "interp schedule deterministic" `Quick
      test_interp_schedule_is_deterministic;
    Alcotest.test_case "pool/farm/incremental byte identity" `Quick
      test_build_paths_byte_identical;
    Alcotest.test_case "fault mid-query stays clean" `Quick
      test_mhp_fault_is_clean ]
