(* TAU instrumentor + profiler tests (paper §4.1, Figures 6 and 7). *)

module D = Pdt_ductape.Ductape
module I = Pdt_tau.Instrument

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let compile_d vfs main =
  let c = Pdt.compile_exn ~vfs main in
  (c, D.index (Pdt_analyzer.Analyzer.run c.Pdt.program))

(* Figure 6: the kind filter and the CT( *this ) decision *)
let test_plan_figure6_filter () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let _, d = compile_d vfs Pdt_workloads.Stack.main_file in
  let plan = I.plan d in
  let by_name n = List.filter (fun ir -> ir.I.ir_name = n) plan in
  (* member function templates get CT( *this ) *)
  (match by_name "push" with
   | [ ir ] -> Alcotest.(check bool) "push uses CT(*this)" true ir.I.ir_use_ct_this
   | l -> Alcotest.failf "expected one push plan, got %d" (List.length l));
  (* plain functions do not *)
  (match by_name "main" with
   | [ ir ] -> Alcotest.(check bool) "main has no CT(*this)" false ir.I.ir_use_ct_this
   | l -> Alcotest.failf "expected one main plan, got %d" (List.length l));
  (* class templates themselves are not instrumented (only their members) *)
  Alcotest.(check bool) "plan sorted by location" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> I.loc_cmp a b <= 0 && sorted rest
       | _ -> true
     in
     sorted plan)

let test_plan_static_members_no_ct () =
  let src =
    "template <class T>\nclass S {\npublic:\n  static T make() { return T(); }\n};\n\
     template <class T> T freebie(T x) { return x; }\n\
     int main() { S<int>::make(); freebie(1); return 0; }"
  in
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.add_file vfs "main.cpp" src;
  let _, d = compile_d vfs "main.cpp" in
  let plan = I.plan d in
  List.iter
    (fun ir ->
      if ir.I.ir_name = "make" || ir.I.ir_name = "freebie" then
        Alcotest.(check bool)
          (ir.I.ir_name ^ " (static/free) has no CT(*this)")
          false ir.I.ir_use_ct_this)
    plan

let test_rewrite_inserts_after_brace () =
  let source = "int f(int x) {\n    return x;\n}\n" in
  let plan =
    [ { I.ir_name = "f"; ir_file = "t.cpp"; ir_line = 1; ir_col = 14;
        ir_signature = "int (int)"; ir_use_ct_this = false; ir_group = "TAU_USER" } ]
  in
  let out = I.rewrite ~file:"t.cpp" ~source plan in
  Alcotest.(check bool) "macro inserted" true
    (contains out "{ TAU_PROFILE(\"f\", \"int (int)\", TAU_USER);")

let test_rewrite_multiple_points_stable () =
  let source = "int a() { return 1; }\nint b() { return 2; }\n" in
  let mk name line col =
    { I.ir_name = name; ir_file = "t.cpp"; ir_line = line; ir_col = col;
      ir_signature = "int ()"; ir_use_ct_this = false; ir_group = "TAU_USER" }
  in
  let out = I.rewrite ~file:"t.cpp" ~source [ mk "a" 1 9; mk "b" 2 9 ] in
  Alcotest.(check bool) "a instrumented" true (contains out "TAU_PROFILE(\"a\"");
  Alcotest.(check bool) "b instrumented" true (contains out "TAU_PROFILE(\"b\"");
  (* both lines still end with their original bodies *)
  Alcotest.(check bool) "bodies preserved" true
    (contains out "return 1; }" && contains out "return 2; }")

let test_instrumented_program_same_behaviour () =
  (* instrumentation must not change program semantics *)
  let vfs = Pdt_workloads.Stack.vfs () in
  let c, d = compile_d vfs Pdt_workloads.Stack.main_file in
  let r_plain = Pdt_tau.Interp.run c.Pdt.program in
  let plan = I.plan d in
  let vfs2, _ = I.instrument_vfs vfs plan in
  let c2 = Pdt.compile_exn ~vfs:vfs2 Pdt_workloads.Stack.main_file in
  let r_instr = Pdt_tau.Interp.run c2.Pdt.program in
  Alcotest.(check int) "same exit code" r_plain.exit_code r_instr.exit_code;
  Alcotest.(check string) "same output" r_plain.output r_instr.output

let test_profile_contents () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let _, d = compile_d vfs Pdt_workloads.Stack.main_file in
  let plan = I.plan d in
  let vfs2, _ = I.instrument_vfs vfs plan in
  let c2 = Pdt.compile_exn ~vfs:vfs2 Pdt_workloads.Stack.main_file in
  let r = Pdt_tau.Interp.run c2.Pdt.program in
  let rows = Pdt_tau.Pprof.rows r.profile in
  let find name =
    List.find_opt (fun (n, _, _, _, _, _) -> contains n name) rows
  in
  (* CT( *this ) resolved the instantiation type at run time *)
  (match find "push [Stack<int>]" with
   | Some (_, calls, _, _, _, _) -> Alcotest.(check int) "push called 10x" 10 calls
   | None -> Alcotest.fail "push [Stack<int>] not in profile");
  (match find "topAndPop [Stack<int>]" with
   | Some (_, calls, _, _, _, _) -> Alcotest.(check int) "topAndPop 10x" 10 calls
   | None -> Alcotest.fail "topAndPop missing");
  (* isEmpty is called by topAndPop (10) and by the while condition (11) *)
  match find "isEmpty [Stack<int>]" with
  | Some (_, calls, _, _, _, _) -> Alcotest.(check int) "isEmpty 21x" 21 calls
  | None -> Alcotest.fail "isEmpty missing"

let test_inclusive_exclusive_invariants () =
  let vfs = Pdt_workloads.Pooma_like.vfs ~n:8 () in
  let _, d = compile_d vfs Pdt_workloads.Pooma_like.main_file in
  let plan = I.plan d in
  let vfs2, _ = I.instrument_vfs vfs plan in
  let c2 = Pdt.compile_exn ~vfs:vfs2 Pdt_workloads.Pooma_like.main_file in
  let r = Pdt_tau.Interp.run c2.Pdt.program in
  List.iter
    (fun (name, calls, _, excl, incl, pct) ->
      Alcotest.(check bool) (name ^ ": exclusive <= inclusive") true (excl <= incl);
      Alcotest.(check bool) (name ^ ": calls > 0") true (calls > 0);
      Alcotest.(check bool) (name ^ ": 0 <= %time <= 100") true
        (pct >= 0.0 && pct <= 100.001))
    (Pdt_tau.Pprof.rows r.profile);
  (* main's inclusive time is the maximum *)
  let rows = Pdt_tau.Pprof.rows r.profile in
  let main_incl =
    List.fold_left
      (fun acc (n, _, _, _, incl, _) -> if contains n "main" then incl else acc)
      0L rows
  in
  List.iter
    (fun (_, _, _, _, incl, _) ->
      Alcotest.(check bool) "main dominates" true (incl <= main_incl))
    rows

let test_profile_determinism () =
  let once () =
    let vfs = Pdt_workloads.Stack.vfs () in
    let _, d = compile_d vfs Pdt_workloads.Stack.main_file in
    let plan = I.plan d in
    let vfs2, _ = I.instrument_vfs vfs plan in
    let c2 = Pdt.compile_exn ~vfs:vfs2 Pdt_workloads.Stack.main_file in
    let r = Pdt_tau.Interp.run c2.Pdt.program in
    Pdt_tau.Pprof.format r.profile
  in
  Alcotest.(check string) "profiles identical across runs" (once ()) (once ())

let test_tracing () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let _, d = compile_d vfs Pdt_workloads.Stack.main_file in
  let plan = I.plan d in
  let vfs2, _ = I.instrument_vfs vfs plan in
  let c2 = Pdt.compile_exn ~vfs:vfs2 Pdt_workloads.Stack.main_file in
  let r = Pdt_tau.Interp.run ~tracing:true c2.Pdt.program in
  let events = Pdt_tau.Runtime.events r.profile in
  Alcotest.(check bool) "events recorded" true (List.length events > 40);
  (* events balance: every enter has an exit *)
  let enters =
    List.length (List.filter (function Pdt_tau.Runtime.Enter _ -> true | _ -> false) events)
  in
  let exits =
    List.length (List.filter (function Pdt_tau.Runtime.Exit _ -> true | _ -> false) events)
  in
  Alcotest.(check int) "balanced" enters exits;
  (* timestamps are monotone *)
  let stamps =
    List.map (function Pdt_tau.Runtime.Enter (_, ts) | Pdt_tau.Runtime.Exit (_, ts) -> ts) events
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone timestamps" true (monotone stamps)

let test_uninstrumented_profile_empty () =
  let vfs = Pdt_workloads.Stack.vfs () in
  let c = Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file in
  let r = Pdt_tau.Interp.run c.Pdt.program in
  Alcotest.(check int) "no profile entries" 0
    (List.length (Pdt_tau.Pprof.rows r.profile))

let suite =
  [ Alcotest.test_case "Figure 6 plan filter" `Quick test_plan_figure6_filter;
    Alcotest.test_case "static/free: no CT(*this)" `Quick test_plan_static_members_no_ct;
    Alcotest.test_case "rewrite inserts macro" `Quick test_rewrite_inserts_after_brace;
    Alcotest.test_case "rewrite multiple points" `Quick test_rewrite_multiple_points_stable;
    Alcotest.test_case "instrumentation preserves behaviour" `Quick
      test_instrumented_program_same_behaviour;
    Alcotest.test_case "profile contents (Fig 7)" `Quick test_profile_contents;
    Alcotest.test_case "inclusive/exclusive invariants" `Quick
      test_inclusive_exclusive_invariants;
    Alcotest.test_case "profile determinism" `Quick test_profile_determinism;
    Alcotest.test_case "event tracing" `Quick test_tracing;
    Alcotest.test_case "uninstrumented: empty profile" `Quick
      test_uninstrumented_profile_empty ]
