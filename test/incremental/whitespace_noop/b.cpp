#include "util.h"
int roundtrip(int x) { return half(twice(x)); }
