#ifndef UTIL_H
#define UTIL_H
int twice(int x);
int half(int x);
#endif
