int standalone(int x) { return x + 7; }
