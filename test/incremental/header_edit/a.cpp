#include "util.h"
int twice(int x) { return x * 2; }
int half(int x) { return x / 2; }
