#include "templ.h"
double pickd(double a, double b) { return max_of(a, b); }
