#include "templ.h"
int pick(int a, int b) { return max_of(a, b); }
