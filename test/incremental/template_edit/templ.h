#ifndef TEMPL_H
#define TEMPL_H
template <class T>
T max_of(T a, T b) {
  if (a < b) return b;
  return a;
}
#endif
