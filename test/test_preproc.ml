(* Unit tests for the preprocessor. *)

open Pdt_util
open Pdt_lex
open Pdt_pp

let run ?(files = []) main_src =
  let vfs = Vfs.create () in
  List.iter (fun (p, c) -> Vfs.add_file vfs p c) files;
  Vfs.add_file vfs "main.cpp" main_src;
  let diags = Diag.create () in
  let r = Preproc.run ~vfs ~diags "main.cpp" in
  (r, diags)

let spellings r = List.map (fun (t : Token.tok) -> Token.spelling t.tok) r.Preproc.tokens

let check ?files msg main expected =
  let r, _ = run ?files main in
  Alcotest.(check (list string)) msg expected (spellings r)

let test_object_macro () =
  check "simple" "#define N 10\nint x = N;" [ "int"; "x"; "="; "10"; ";" ];
  check "chained" "#define A B\n#define B 42\nA" [ "42" ];
  check "self-referential stops" "#define X X + 1\nX" [ "X"; "+"; "1" ]

let test_function_macro () =
  check "basic" "#define SQ(x) ((x)*(x))\nSQ(3)"
    [ "("; "("; "3"; ")"; "*"; "("; "3"; ")"; ")" ];
  check "two args" "#define ADD(a,b) a + b\nADD(1, 2)" [ "1"; "+"; "2" ];
  check "nested call" "#define SQ(x) ((x)*(x))\nSQ(SQ(2))"
    [ "("; "("; "("; "("; "2"; ")"; "*"; "("; "2"; ")"; ")"; ")"; "*";
      "("; "("; "("; "2"; ")"; "*"; "("; "2"; ")"; ")"; ")"; ")" ];
  check "not a call without parens" "#define F(x) x\nF + 1" [ "F"; "+"; "1" ];
  check "arg with commas in parens" "#define ID(x) x\nID(f(a, b))"
    [ "f"; "("; "a"; ","; "b"; ")" ]

let test_stringize_paste () =
  let r, _ = run "#define STR(x) #x\nSTR(hello world)" in
  (match r.Preproc.tokens with
   | [ { tok = Token.StringLit (_, "hello world"); _ } ] -> ()
   | ts ->
       Alcotest.failf "stringize: %s"
         (String.concat " " (List.map (fun (t : Token.tok) -> Token.describe t.tok) ts)));
  check "paste" "#define GLUE(a,b) a##b\nGLUE(foo, bar)" [ "foobar" ];
  check "paste to number" "#define GLUE(a,b) a##b\nGLUE(1, 2)" [ "12" ]

let test_conditionals () =
  check "ifdef taken" "#define A\n#ifdef A\nyes\n#endif" [ "yes" ];
  check "ifdef not taken" "#ifdef A\nyes\n#endif" [];
  check "ifndef guard" "#ifndef G\n#define G\nbody\n#endif\n#ifndef G\nagain\n#endif"
    [ "body" ];
  check "else branch" "#ifdef A\nyes\n#else\nno\n#endif" [ "no" ];
  check "elif" "#define V 2\n#if V == 1\none\n#elif V == 2\ntwo\n#else\nother\n#endif"
    [ "two" ];
  check "nested inactive" "#ifdef A\n#ifdef B\nx\n#endif\ny\n#endif\nz" [ "z" ];
  check "if defined()" "#define A 1\n#if defined(A) && A > 0\nok\n#endif" [ "ok" ];
  check "arith" "#if 2 * 3 + 1 == 7\nok\n#endif" [ "ok" ];
  check "ternary" "#if 1 ? 0 : 1\nbad\n#else\nok\n#endif" [ "ok" ];
  check "unknown ident is 0" "#if FOO\nbad\n#else\nok\n#endif" [ "ok" ]

let test_includes () =
  let files =
    [ ("inc/a.h", "#pragma once\nint a;\n#include \"b.h\"\n");
      ("inc/b.h", "int b;\n") ]
  in
  let r, _ =
    let vfs = Vfs.create ~include_paths:[ "inc" ] () in
    List.iter (fun (p, c) -> Vfs.add_file vfs p c) files;
    Vfs.add_file vfs "main.cpp" "#include <a.h>\nint m;\n";
    let diags = Diag.create () in
    (Preproc.run ~vfs ~diags "main.cpp", diags)
  in
  Alcotest.(check (list string)) "tokens"
    [ "int"; "a"; ";"; "int"; "b"; ";"; "int"; "m"; ";" ]
    (spellings r);
  let names = List.map (fun f -> f.Preproc.f_path) r.Preproc.source_files in
  Alcotest.(check (list string)) "file order" [ "main.cpp"; "inc/a.h"; "inc/b.h" ] names;
  let main_rec = List.hd r.Preproc.source_files in
  Alcotest.(check (list string)) "main includes" [ "inc/a.h" ] main_rec.Preproc.f_includes

let test_pragma_once () =
  let files = [ ("h.h", "#pragma once\nint h;\n") ] in
  check ~files "double include" "#include \"h.h\"\n#include \"h.h\"\n"
    [ "int"; "h"; ";" ]

let test_include_guard () =
  let files = [ ("g.h", "#ifndef G_H\n#define G_H\nint g;\n#endif\n") ] in
  check ~files "guarded double include" "#include \"g.h\"\n#include \"g.h\"\n"
    [ "int"; "g"; ";" ]

let test_undef () =
  check "undef" "#define A 1\n#undef A\n#ifdef A\nbad\n#endif\nA" [ "A" ]

let test_error_directive () =
  let vfs = Vfs.create () in
  Vfs.add_file vfs "main.cpp" "#error boom\n";
  let diags = Diag.create () in
  (try ignore (Preproc.run ~vfs ~diags "main.cpp") with Diag.Error _ -> ());
  Alcotest.(check bool) "has error" true (Diag.has_errors diags)

let test_macro_log () =
  let r, _ = run "#define A 1\n#define F(x) x+1\n#define A 1\n" in
  let names = List.map (fun m -> m.Preproc.m_name) r.Preproc.macros in
  Alcotest.(check (list string)) "log order" [ "A"; "F"; "A" ] names;
  let f = List.nth r.Preproc.macros 1 in
  Alcotest.(check bool) "function-like" true (f.Preproc.m_kind = Preproc.Function_like);
  Alcotest.(check (list string)) "params" [ "x" ] f.Preproc.m_params

let test_predefined () =
  let vfs = Vfs.create () in
  Vfs.add_file vfs "main.cpp" "#ifdef __PDT__\nok\n#endif\n";
  let diags = Diag.create () in
  let r = Preproc.run ~predefined:[ ("__PDT__", "1") ] ~vfs ~diags "main.cpp" in
  Alcotest.(check (list string)) "predefined visible" [ "ok" ]
    (List.map (fun (t : Token.tok) -> Token.spelling t.tok) r.Preproc.tokens)

let suite =
  [ Alcotest.test_case "object-like macros" `Quick test_object_macro;
    Alcotest.test_case "function-like macros" `Quick test_function_macro;
    Alcotest.test_case "stringize and paste" `Quick test_stringize_paste;
    Alcotest.test_case "conditionals" `Quick test_conditionals;
    Alcotest.test_case "includes and file records" `Quick test_includes;
    Alcotest.test_case "pragma once" `Quick test_pragma_once;
    Alcotest.test_case "include guards" `Quick test_include_guard;
    Alcotest.test_case "undef" `Quick test_undef;
    Alcotest.test_case "#error" `Quick test_error_directive;
    Alcotest.test_case "macro log for PDB" `Quick test_macro_log;
    Alcotest.test_case "predefined macros" `Quick test_predefined ]
