(* Template instantiation tests — the heart of the paper. *)

open Pdt_il.Il

let compile_ok ?(with_stl = false) src =
  let vfs = Pdt_util.Vfs.create () in
  if with_stl then Pdt_workloads.Ministl.mount vfs;
  let c = Pdt.compile_string ~vfs src in
  if Pdt_util.Diag.has_errors c.Pdt.diags then
    Alcotest.failf "compile errors:\n%s" (Pdt_util.Diag.to_string c.Pdt.diags);
  c.Pdt.program

let find_class prog name =
  match List.find_opt (fun c -> c.cl_name = name) (classes prog) with
  | Some c -> c
  | None ->
      Alcotest.failf "class %s not found (have: %s)" name
        (String.concat ", " (List.map (fun c -> c.cl_name) (classes prog)))

let member prog cls name =
  match find_member_funcs prog cls name with
  | r :: _ -> r
  | [] -> Alcotest.failf "member %s::%s not found" cls.cl_name name

let box_src =
  "template <class T>\nclass Box {\npublic:\n  Box() : v_(T()) { }\n\
   \  void set(const T & v) { v_ = v; }\n  const T & get() const { return v_; }\n\
   \  int unused_helper() { return 42; }\nprivate:\n  T v_;\n};\n"

let test_basic_instantiation () =
  let prog = compile_ok (box_src ^ "int main() { Box<int> b; b.set(3); return 0; }") in
  let b = find_class prog "Box<int>" in
  Alcotest.(check bool) "has template link" true (b.cl_template <> None);
  let te = template prog (Option.get b.cl_template) in
  Alcotest.(check string) "template name" "Box" te.te_name;
  Alcotest.(check string) "template kind" "class" (template_kind_to_string te.te_kind);
  (* member types substituted *)
  let v = List.find (fun m -> m.dm_name = "v_") b.cl_members in
  Alcotest.(check string) "field type" "int" (type_name prog v.dm_type)

let test_used_mode_laziness () =
  let prog = compile_ok (box_src ^ "int main() { Box<int> b; b.set(3); return 0; }") in
  let b = find_class prog "Box<int>" in
  Alcotest.(check bool) "set instantiated" true (member prog b "set").ro_defined;
  Alcotest.(check bool) "ctor instantiated" true (member prog b "Box").ro_defined;
  Alcotest.(check bool) "get NOT instantiated (unused)" false
    (member prog b "get").ro_defined;
  Alcotest.(check bool) "unused_helper NOT instantiated" false
    (member prog b "unused_helper").ro_defined

let test_instantiation_cache () =
  let prog =
    compile_ok
      (box_src
      ^ "int f() { Box<int> a; return 0; }\nint g() { Box<int> b; return 0; }\n\
         int main() { return f() + g(); }")
  in
  let boxes = List.filter (fun c -> c.cl_name = "Box<int>") (classes prog) in
  Alcotest.(check int) "single instantiation" 1 (List.length boxes)

let test_multiple_instantiations () =
  let prog =
    compile_ok
      (box_src
      ^ "int main() { Box<int> a; Box<double> b; Box<char> c; a.set(1); return 0; }")
  in
  ignore (find_class prog "Box<int>");
  ignore (find_class prog "Box<double>");
  ignore (find_class prog "Box<char>");
  let te =
    List.find (fun te -> te.te_name = "Box" && te.te_kind = Tk_class) (templates prog)
  in
  Alcotest.(check int) "3 instances recorded" 3 (List.length te.te_instances)

let test_nested_instantiation () =
  let prog =
    compile_ok
      (box_src ^ "int main() { Box<Box<int> > nested; return 0; }")
  in
  ignore (find_class prog "Box<Box<int>>");
  ignore (find_class prog "Box<int>")

let test_template_member_of_template_arg () =
  let prog = compile_ok ~with_stl:true
      "#include <vector.h>\n\
       template <class T>\nclass Stack {\npublic:\n  Stack() { }\n\
       \  void push(const T & x) { data_.push_back(x); }\n\
       \  int size() const { return data_.size(); }\nprivate:\n  vector<T> data_;\n};\n\
       int main() { Stack<double> s; s.push(1.5); return s.size(); }"
  in
  let stack = find_class prog "Stack<double>" in
  let v = List.find (fun m -> m.dm_name = "data_") stack.cl_members in
  Alcotest.(check string) "member instantiates vector" "vector<double>"
    (type_name prog v.dm_type);
  (* used-mode: push_back and size of vector<double> instantiated *)
  let vec = find_class prog "vector<double>" in
  Alcotest.(check bool) "vector::push_back defined" true
    (member prog vec "push_back").ro_defined

let test_out_of_line_member_template () =
  let prog =
    compile_ok
      "template <class T> class Pair {\npublic:\n  T first;\n  T sum() const;\n};\n\
       template <class T>\nT Pair<T>::sum() const { return first + first; }\n\
       int main() { Pair<int> p; p.first = 2; return p.sum(); }"
  in
  let pair = find_class prog "Pair<int>" in
  let sum = member prog pair "sum" in
  Alcotest.(check bool) "out-of-line body instantiated" true sum.ro_defined;
  (* rtempl points at the memfunc template, as in Figure 3 *)
  let te = template prog (Option.get sum.ro_template) in
  Alcotest.(check string) "memfunc template" "memfunc" (template_kind_to_string te.te_kind);
  Alcotest.(check string) "template name" "sum" te.te_name

let test_function_template_deduction () =
  let prog =
    compile_ok
      "template <class T> T max2(T a, T b) { if (a < b) return b; return a; }\n\
       int main() { int i = max2(1, 2); double d = max2(1.5, 2.5); return i; }"
  in
  let te = List.find (fun te -> te.te_kind = Tk_func) (templates prog) in
  Alcotest.(check int) "two instantiations" 2 (List.length te.te_instances);
  let insts =
    List.filter_map
      (fun (_, i) -> match i with Inst_routine r -> Some (routine prog r) | _ -> None)
      te.te_instances
  in
  let sigs = List.sort compare (List.map (fun r -> type_name prog r.ro_sig) insts) in
  Alcotest.(check (list string)) "deduced signatures"
    [ "double (double, double)"; "int (int, int)" ] sigs

let test_explicit_template_args () =
  let prog =
    compile_ok
      "template <class T> T zero() { return T(); }\n\
       int main() { return zero<int>(); }"
  in
  let te = List.find (fun te -> te.te_kind = Tk_func) (templates prog) in
  Alcotest.(check int) "instantiated explicitly" 1 (List.length te.te_instances)

let test_deduction_through_class () =
  let prog =
    compile_ok
      (box_src
      ^ "template <class T> T unwrap(const Box<T> & b) { return b.get(); }\n\
         int main() { Box<int> b; return unwrap(b); }")
  in
  let te =
    List.find (fun te -> te.te_name = "unwrap" && te.te_kind = Tk_func) (templates prog)
  in
  Alcotest.(check int) "deduced from Box<int>" 1 (List.length te.te_instances);
  (* deduction triggered get()'s instantiation *)
  let b = find_class prog "Box<int>" in
  Alcotest.(check bool) "get now defined" true (member prog b "get").ro_defined

let test_explicit_specialization () =
  let prog =
    compile_ok
      "template <class T> class Traits {\npublic:\n  int size() { return 1; }\n};\n\
       template <> class Traits<char> {\npublic:\n  int size() { return 99; }\n};\n\
       int main() { Traits<int> a; Traits<char> b; return a.size() + b.size(); }"
  in
  let ti = find_class prog "Traits<int>" in
  let tc = find_class prog "Traits<char>" in
  (* the primary instantiation has ctempl, the specialization records spec_of *)
  Alcotest.(check bool) "primary has template" true (ti.cl_template <> None);
  Alcotest.(check bool) "spec recorded" true (tc.cl_spec_of <> None);
  Alcotest.(check bool) "spec ctempl hidden by default (paper limitation)" true
    (tc.cl_template = None)

let test_partial_specialization () =
  let prog =
    compile_ok
      "template <class T> class Kind {\npublic:\n  int which() { return 0; }\n};\n\
       template <class T> class Kind<T *> {\npublic:\n  int which() { return 1; }\n};\n\
       int main() { Kind<int> a; Kind<int *> b; return a.which() + b.which(); }"
  in
  let a = find_class prog "Kind<int>" in
  let b = find_class prog "Kind<int *>" in
  Alcotest.(check bool) "primary used for Kind<int>" true (a.cl_template <> None);
  Alcotest.(check bool) "partial spec used for Kind<int *>" true (b.cl_spec_of <> None);
  (* behavioural check through the interpreter *)
  let wa = member prog a "which" and wb = member prog b "which" in
  Alcotest.(check bool) "both defined" true (wa.ro_defined && wb.ro_defined)

let test_fixed_mode_specialization_mapping () =
  let src =
    "template <class T> class Traits {\npublic:\n  int size() { return 1; }\n};\n\
     template <> class Traits<char> {\npublic:\n  int size() { return 99; }\n};\n\
     int main() { Traits<char> b; return b.size(); }"
  in
  let opts = { Pdt_sema.Sema.default_options with map_specializations = true } in
  let c = Pdt.compile_string ~opts src in
  let prog = c.Pdt.program in
  let tc = find_class prog "Traits<char>" in
  Alcotest.(check bool) "fixed mode maps specialization" true (tc.cl_template <> None)

let test_default_template_args () =
  let prog =
    compile_ok
      "template <class T = int> class Def {\npublic:\n  T v;\n};\n\
       int main() { Def<> d; d.v = 3; return d.v; }"
  in
  ignore (find_class prog "Def<int>")

let test_nontype_params () =
  let prog =
    compile_ok
      "template <class T, int N> class FixedArray {\npublic:\n  int capacity() { return N; }\nprivate:\n  T data[N];\n};\n\
       int main() { FixedArray<double, 16> a; return a.capacity(); }"
  in
  let fa = find_class prog "FixedArray<double, 16>" in
  let data = List.find (fun m -> m.dm_name = "data") fa.cl_members in
  Alcotest.(check string) "array sized by non-type arg" "double [16]"
    (type_name prog data.dm_type)

let test_explicit_instantiation () =
  let prog =
    compile_ok (box_src ^ "template class Box<long>;\nint main() { return 0; }")
  in
  let b = find_class prog "Box<long>" in
  (* explicit instantiation instantiates ALL members *)
  Alcotest.(check bool) "get defined" true (member prog b "get").ro_defined;
  Alcotest.(check bool) "unused_helper defined" true
    (member prog b "unused_helper").ro_defined

let test_used_mode_off () =
  let opts = { Pdt_sema.Sema.default_options with instantiate_used = false } in
  let c =
    Pdt.compile_string ~opts
      (box_src ^ "int f() { Box<int> b; return 0; }")
  in
  let t =
    let vfs = Pdt_util.Vfs.create () in
    ignore vfs;
    c.Pdt.program
  in
  let boxes = List.filter (fun cl -> cl.cl_name = "Box<int>") (classes t) in
  Alcotest.(check int) "no instantiation happened" 0 (List.length boxes)

let test_template_text_recorded () =
  let prog = compile_ok (box_src ^ "int main() { Box<int> b; return 0; }") in
  let te = List.find (fun te -> te.te_name = "Box") (templates prog) in
  Alcotest.(check bool) "ttext starts with template<...>" true
    (String.length te.te_text > 20 && String.sub te.te_text 0 8 = "template")

let test_member_chain_instantiation () =
  (* instantiating A<T> whose method uses B<T> must cascade on use *)
  let prog =
    compile_ok
      "template <class T> class B {\npublic:\n  T id(T x) { return x; }\n};\n\
       template <class T> class A {\npublic:\n  T go(T x) { B<T> b; return b.id(x); }\n};\n\
       int main() { A<int> a; return a.go(7); }"
  in
  let b = find_class prog "B<int>" in
  Alcotest.(check bool) "cascaded instantiation defined" true
    (List.exists (fun rid -> (routine prog rid).ro_defined) b.cl_funcs)

let test_self_referential_template () =
  (* a template whose member refers to its own instantiation must not loop *)
  let prog =
    compile_ok
      "template <class T> class Node {\npublic:\n  T value;\n  Node<T> *next;\n};\n\
       int main() { Node<int> n; n.next = 0; return 0; }"
  in
  let n = find_class prog "Node<int>" in
  let next = List.find (fun m -> m.dm_name = "next") n.cl_members in
  Alcotest.(check string) "self-referential member type" "Node<int> *"
    (type_name prog next.dm_type)

let suite =
  [ Alcotest.test_case "basic instantiation" `Quick test_basic_instantiation;
    Alcotest.test_case "used-mode laziness" `Quick test_used_mode_laziness;
    Alcotest.test_case "instantiation cache" `Quick test_instantiation_cache;
    Alcotest.test_case "multiple instantiations" `Quick test_multiple_instantiations;
    Alcotest.test_case "nested instantiation" `Quick test_nested_instantiation;
    Alcotest.test_case "template member types" `Quick test_template_member_of_template_arg;
    Alcotest.test_case "out-of-line member template" `Quick test_out_of_line_member_template;
    Alcotest.test_case "function template deduction" `Quick test_function_template_deduction;
    Alcotest.test_case "explicit template args" `Quick test_explicit_template_args;
    Alcotest.test_case "deduction through class args" `Quick test_deduction_through_class;
    Alcotest.test_case "explicit specialization" `Quick test_explicit_specialization;
    Alcotest.test_case "partial specialization" `Quick test_partial_specialization;
    Alcotest.test_case "fixed-mode spec mapping" `Quick test_fixed_mode_specialization_mapping;
    Alcotest.test_case "default template args" `Quick test_default_template_args;
    Alcotest.test_case "non-type parameters" `Quick test_nontype_params;
    Alcotest.test_case "explicit instantiation" `Quick test_explicit_instantiation;
    Alcotest.test_case "used mode off (automatic scheme)" `Quick test_used_mode_off;
    Alcotest.test_case "template text recorded" `Quick test_template_text_recorded;
    Alcotest.test_case "member chain instantiation" `Quick test_member_chain_instantiation;
    Alcotest.test_case "self-referential template" `Quick test_self_referential_template ]
