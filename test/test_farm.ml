(* The build-farm battery (PR 9): wire protocol, supervisor policy, and
   the worker-process fault axis of the robustness matrix.

   The headline is the farm injection matrix: >= 200 seeded schedules
   (site set x rate x seed x farm size) where pdbworker processes are
   SIGKILLed mid-unit, wedge (stop heartbeating), or tear their Result
   frame mid-write.  Every schedule must end in a merged PDB
   byte-identical to the fault-free reference or a clean per-unit
   diagnostic — never a hang, never an escaped exception, never a
   half-written cache entry — with respawns inside the configured
   budget, and the surviving shared cache must serve a convergent
   fault-free rebuild.

   Around the matrix: Farm_proto encode/decode round-trips and frame
   assembly, directed single-crash recovery per fault site (seed chosen
   so only the first worker life faults), the respawn-budget /
   pool-exhaustion path, Farm_unavailable, the shared
   Scheduler.reconcile lost-slot policy, and cross-process cache
   integrity: two concurrent `pdbbuild --farm` drivers on one cache
   directory, plus a seeded torn-write whose entry the next driver must
   quarantine. *)

module B = Pdt_build.Build
module C = Pdt_build.Cache
module S = Pdt_build.Scheduler
module F = Pdt_util.Fault
module FP = Pdt_build.Farm_proto
module Farm = Pdt_build.Farm
module G = Pdt_workloads.Generator

let pdb_string = Pdt_pdb.Pdb_write.to_string

let fresh_dir () =
  let f = Filename.temp_file "pdt-farm-test" ".cache" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let rec walk_files dir acc =
  Array.fold_left
    (fun acc f ->
      let p = Filename.concat dir f in
      if Sys.is_directory p then walk_files p acc else p :: acc)
    acc (Sys.readdir dir)

let no_residual_tmp dir =
  (not (Sys.file_exists dir))
  || List.for_all
       (fun path ->
         let f = Filename.basename path in
         let has_sub sub s =
           let ls = String.length sub and ln = String.length s in
           let rec go i =
             i + ls <= ln && (String.sub s i ls = sub || go (i + 1))
           in
           go 0
         in
         not (has_sub ".tmp." f))
       (walk_files dir [])

let read_file path =
  let ic = open_in_bin path in
  let c = really_input_string ic (in_channel_length ic) in
  close_in ic;
  c

let perf_calls name =
  match
    List.find_opt (fun (n, _, _) -> n = name) (Pdt_util.Perf.snapshot ())
  with
  | Some (_, calls, _) -> calls
  | None -> 0

let n_tus = 3

let project () = G.project_vfs ~n_tus ()

let build ?cache_dir ?(retries = 2) ~domains (vfs, sources) =
  B.build
    ~options:{ B.default_options with domains; cache_dir; retries }
    ~vfs sources

(* fault-free in-process merged bytes: the byte-identity reference for
   every farm build of the same project *)
let reference = lazy (pdb_string (build ~domains:1 (project ())).B.merged)

(* tight supervisor timings so crash/wedge schedules stay fast; liveness
   still generous next to the ~ms worker startup and unit cost *)
let farm_config ?(workers = 2) ?(max_respawns = 16) () =
  { Farm.default_config with
    workers;
    max_respawns;
    heartbeat_ms = 10;
    liveness_timeout = 0.6;
    unit_deadline = 30.0;
    backoff_initial = 0.01;
    backoff_max = 0.05 }

let farm_build ?(config = farm_config ()) ?cache_dir ?(retries = 2)
    (vfs, sources) =
  Farm.build ~config
    ~options:{ B.default_options with cache_dir; retries }
    ~vfs sources

(* Fault schedules reach worker processes through the environment; the
   variable cannot be unset portably, so "off" is the empty string (which
   both the driver and Fault.arm_from_env treat as no schedule). *)
let with_fault_env ?max_faults ~sites ~seed ~rate f =
  Unix.putenv F.env_var (F.spec_string ~sites ?max_faults ~seed ~rate ());
  Fun.protect ~finally:(fun () -> Unix.putenv F.env_var "") f

(* the worker binary, resolved exactly like the test driver binary in
   test_faults: from the test executable's sibling bin/ directory *)
let worker_exe () =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "pdbworker.exe")

let pdbbuild_exe () =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "pdbbuild.exe")

(* ---------------- wire protocol ---------------- *)

let sample_config () =
  let vfs, _ = project () in
  FP.config_of_options
    { B.default_options with cache_dir = Some "/tmp/x"; retries = 3 }
    ~vfs ~heartbeat_ms:40

let test_proto_roundtrip () =
  let check m =
    if FP.decode (FP.encode m) <> m then
      Alcotest.fail "message did not round-trip"
  in
  check (FP.Config (sample_config ()));
  check (FP.Hello { version = FP.version; pid = 12345 });
  check (FP.Unit { id = 7; source = "tu1.cpp" });
  check
    (FP.Result
       { id = 7; status = FP.S_compiled; message = ""; pdb = Some "PDB 1.0\n";
         seconds = 0.03125; deps = [ "tu1.cpp"; "generated.h" ];
         cone_truncated = false });
  check
    (FP.Result
       { id = 9; status = FP.S_failed; message = "it broke"; pdb = None;
         seconds = 1.5e-3; deps = []; cone_truncated = true });
  check (FP.Heartbeat { unit_id = FP.no_unit });
  check FP.Quit;
  (* hex-float seconds survive exactly, including awkward values *)
  List.iter
    (fun s ->
      match FP.decode (FP.encode (FP.Result
        { id = 0; status = FP.S_cached; message = ""; pdb = None;
          seconds = s; deps = []; cone_truncated = false })) with
      | FP.Result { seconds; _ } ->
          Alcotest.(check (float 0.0)) "seconds exact" s seconds
      | _ -> Alcotest.fail "wrong tag back")
    [ 0.0; 0.1; 1.0 /. 3.0; 12.345678901234567 ]

let test_proto_rejects_malformed () =
  let rejects what payload =
    match FP.decode payload with
    | exception FP.Proto_error _ -> ()
    | _ -> Alcotest.failf "%s decoded instead of failing" what
  in
  rejects "empty frame" "";
  rejects "unknown tag" "Zjunk";
  rejects "trailing bytes" (FP.encode FP.Quit ^ "x");
  let unit_frame = FP.encode (FP.Unit { id = 3; source = "a.cpp" }) in
  rejects "truncated body" (String.sub unit_frame 0 (String.length unit_frame - 2));
  (* a Config from a different protocol version is refused outright *)
  let cfg = FP.encode (FP.Config (sample_config ())) in
  let skewed = Bytes.of_string cfg in
  Bytes.set skewed 1 (Char.chr (FP.version + 1));
  rejects "version skew" (Bytes.to_string skewed)

let frame payload =
  let n = String.length payload in
  let b = Buffer.create (n + 4) in
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let test_assembler_reassembles_byte_stream () =
  let payloads =
    [ FP.encode (FP.Hello { version = 1; pid = 1 });
      FP.encode (FP.Heartbeat { unit_id = 2 });
      FP.encode
        (FP.Result
           { id = 2; status = FP.S_compiled; message = ""; pdb = Some "x";
             seconds = 0.5; deps = []; cone_truncated = false }) ]
  in
  let stream = String.concat "" (List.map frame payloads) in
  let asm = FP.Assembler.create () in
  let out = ref [] in
  (* worst-case chunking: one byte at a time *)
  String.iter
    (fun ch ->
      FP.Assembler.feed asm (Bytes.make 1 ch) 1;
      let rec drain () =
        match FP.Assembler.next asm with
        | Some p ->
            out := p :: !out;
            drain ()
        | None -> ()
      in
      drain ())
    stream;
  Alcotest.(check (list string)) "frames reassembled in order" payloads
    (List.rev !out);
  (* a torn trailing frame stays pending, never surfaces *)
  let torn = frame "abcdef" in
  FP.Assembler.feed asm
    (Bytes.of_string (String.sub torn 0 7))
    7;
  Alcotest.(check bool) "torn frame pending" true (FP.Assembler.next asm = None)

let test_assembler_rejects_absurd_length () =
  let asm = FP.Assembler.create () in
  let bogus = Bytes.of_string "\xff\xff\xff\x7f" in
  FP.Assembler.feed asm bogus 4;
  match FP.Assembler.next asm with
  | exception FP.Proto_error _ -> ()
  | _ -> Alcotest.fail "oversized length prefix must be a protocol error"

(* ---------------- the farm as a drop-in Build.build ---------------- *)

let test_farm_matches_inprocess_build () =
  let dir = fresh_dir () in
  let r = farm_build ~config:(farm_config ~workers:3 ()) ~cache_dir:dir (project ()) in
  Alcotest.(check int) "no failures" 0 r.B.failed;
  Alcotest.(check int) "every unit compiled" (n_tus + 1) r.B.compiled;
  Alcotest.(check string) "farm bytes == Domain-pool bytes"
    (Lazy.force reference) (pdb_string r.B.merged);
  Alcotest.(check bool) "cache populated under objects/" true
    (Sys.file_exists (Filename.concat dir "objects"));
  Alcotest.(check bool) "no residual tmp" true (no_residual_tmp dir);
  (* a second farm over the same cache is served from it *)
  let warm = farm_build ~cache_dir:dir (project ()) in
  Alcotest.(check int) "warm farm build all cached" (n_tus + 1) warm.B.cached;
  Alcotest.(check string) "warm bytes identical" (Lazy.force reference)
    (pdb_string warm.B.merged);
  rm_rf dir

let test_farm_single_worker () =
  let r = farm_build ~config:(farm_config ~workers:1 ()) (project ()) in
  Alcotest.(check int) "no failures" 0 r.B.failed;
  Alcotest.(check string) "single-worker farm identical" (Lazy.force reference)
    (pdb_string r.B.merged)

let test_farm_without_cache () =
  let r = farm_build (project ()) in
  Alcotest.(check int) "no failures" 0 r.B.failed;
  Alcotest.(check string) "cacheless farm identical" (Lazy.force reference)
    (pdb_string r.B.merged)

let test_farm_unavailable () =
  let config =
    { (farm_config ()) with Farm.worker_exe = Some "/nonexistent/pdbworker" }
  in
  match farm_build ~config (project ()) with
  | exception Farm.Farm_unavailable _ -> ()
  | _ -> Alcotest.fail "missing worker binary must raise Farm_unavailable"

(* ---------------- directed crashes: one life faults, build recovers -- *)

(* Sample site [site]'s seeded decision stream through the same skip
   mechanism the driver uses per spawn. *)
let fault_window ~site ~seed ~rate ~skip n =
  F.arm ~sites:[ site ] ~skip ~seed ~rate ();
  let l = List.init n (fun _ -> F.should site) in
  F.disarm ();
  l

(* A seed where the first worker life (spawn serial 1, skip 0) faults on
   its very first site occurrence while the next few lives (skip 1009k)
   stay clean for a whole build's worth of occurrences: the build must
   observe exactly one injected crash and still converge. *)
let find_recovery_seed ~site ~rate =
  let clean ~seed ~skip =
    List.for_all not (fault_window ~site ~seed ~rate ~skip 12)
  in
  let rec go seed =
    if seed > 4000 then
      Alcotest.failf "no recovery seed found for %s at rate %g" site rate
    else if
      List.hd (fault_window ~site ~seed ~rate ~skip:0 1)
      && clean ~seed ~skip:1009
      && clean ~seed ~skip:2018
      && clean ~seed ~skip:3027
    then seed
    else go (seed + 1)
  in
  go 1

let directed_crash_recovers ~site () =
  let rate = 0.05 in
  let seed = find_recovery_seed ~site ~rate in
  let dir = fresh_dir () in
  let deaths_before = perf_calls "farm.crash" + perf_calls "farm.kill" in
  let r =
    with_fault_env ~sites:[ site ] ~seed ~rate (fun () ->
        farm_build ~cache_dir:dir ~retries:2 (project ()))
  in
  Alcotest.(check int) (site ^ ": build recovered cleanly") 0 r.B.failed;
  Alcotest.(check string) (site ^ ": bytes identical after crash")
    (Lazy.force reference) (pdb_string r.B.merged);
  Alcotest.(check bool) (site ^ ": the crash was real") true
    (perf_calls "farm.crash" + perf_calls "farm.kill" > deaths_before);
  Alcotest.(check bool) (site ^ ": no residual tmp") true (no_residual_tmp dir);
  rm_rf dir

let test_kill_mid_unit_recovers = directed_crash_recovers ~site:"farm.worker.kill"
let test_wedge_recovers = directed_crash_recovers ~site:"farm.worker.wedge"
let test_torn_frame_recovers = directed_crash_recovers ~site:"farm.worker.torn"

let test_respawn_storm_fails_cleanly () =
  (* rate 1.0: every worker life dies on its first unit, so no unit can
     ever complete.  The supervisor must burn exactly its respawn budget,
     resolve every unit with a structured diagnostic, and return — the
     crash-only promise is "retried or cleanly failed", never a hang. *)
  let respawns_before = perf_calls "farm.respawn" in
  let dir = fresh_dir () in
  let t0 = Unix.gettimeofday () in
  let r =
    with_fault_env ~sites:[ "farm.worker.kill" ] ~seed:1 ~rate:1.0 (fun () ->
        farm_build
          ~config:(farm_config ~workers:2 ~max_respawns:3 ())
          ~cache_dir:dir (project ()))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "every unit failed" (n_tus + 1) r.B.failed;
  List.iter
    (fun (u : B.unit_result) ->
      match u.B.status with
      | B.Failed msg ->
          Alcotest.(check bool) "diagnostic is structured and nonempty" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "unit not failed under a total kill storm")
    r.B.units;
  Alcotest.(check int) "respawn budget burned exactly" 3
    (perf_calls "farm.respawn" - respawns_before);
  Alcotest.(check bool)
    (Printf.sprintf "pool exhaustion is prompt (%.1fs)" elapsed)
    true (elapsed < 30.0);
  (* the cache survived the storm: a fault-free build over it converges *)
  let recovered = build ~cache_dir:dir ~domains:1 (project ()) in
  Alcotest.(check int) "recovery build clean" 0 recovered.B.failed;
  Alcotest.(check string) "recovery bytes identical" (Lazy.force reference)
    (pdb_string recovered.B.merged);
  rm_rf dir

(* ---------------- the shared lost-slot policy ---------------- *)

let contains sub s =
  let ls = String.length sub and ln = String.length s in
  let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let test_reconcile_lost_slot_is_error () =
  let results = [| Some (Ok 1); None; Some (Error Exit) |] in
  let r = S.reconcile ~pool:"testpool" results in
  (match r.(0) with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "resolved slot must pass through");
  (match r.(1) with
  | Error (S.Worker_lost msg) ->
      Alcotest.(check bool) "lost-slot error names the pool" true
        (contains "testpool" msg)
  | _ -> Alcotest.fail "lost slot must become Worker_lost");
  match r.(2) with
  | Error Exit -> ()
  | _ -> Alcotest.fail "error slot must pass through"

exception Witness of string

let test_reconcile_witness_attributed_to_lost_slot () =
  let results = [| Some (Ok 1); None |] in
  let r = S.reconcile ~witness:(Witness "worker died") ~pool:"p" results in
  match r.(1) with
  | Error (Witness "worker died") -> ()
  | _ -> Alcotest.fail "witness exception must land on the lost slot"

let test_reconcile_witness_without_lost_slot_reraises () =
  match S.reconcile ~witness:(Witness "boom") ~pool:"p" [| Some (Ok 1) |] with
  | exception Witness "boom" -> ()
  | _ -> Alcotest.fail "unattributable witness must re-raise"

(* ---------------- the worker-process fault matrix ---------------- *)

let site_sets =
  [ ("kill", [ "farm.worker.kill" ]);
    ("wedge", [ "farm.worker.wedge" ]);
    ("torn-frame", [ "farm.worker.torn" ]);
    ("kill+wedge+torn",
     [ "farm.worker.kill"; "farm.worker.wedge"; "farm.worker.torn" ]) ]

let rates = [ 0.05; 0.25 ]

let matrix_farms =
  match Option.bind (Sys.getenv_opt "PDT_TEST_DOMAINS") int_of_string_opt with
  | Some n when n > 0 -> [ max 1 (min n 4) ]
  | _ -> [ 1; 3 ]

(* 4 site sets x 2 rates x seeds x farm sizes; sized so the sweep is
   always >= 200 schedules even when CI forces one farm size *)
let matrix_seeds =
  List.init (if List.length matrix_farms = 1 then 25 else 13) (fun i -> i + 1)

let check_farm_schedule ~label ~sites ~rate ~seed ~workers () =
  let dir = fresh_dir () in
  let fail fmt = Printf.ksprintf (fun m -> Alcotest.fail m) fmt in
  let respawns_before = perf_calls "farm.respawn" in
  let under_fire =
    try
      with_fault_env ~sites ~seed ~rate (fun () ->
          farm_build ~config:(farm_config ~workers ()) ~cache_dir:dir
            (project ()))
    with e -> fail "%s: escaped exception %s" label (Printexc.to_string e)
  in
  (* 1. every unit resolved to a structured status *)
  List.iter
    (fun (u : B.unit_result) ->
      match u.B.status with
      | B.Compiled | B.Cached -> ()
      | B.Failed msg ->
          if msg = "" then fail "%s: empty diagnostic for %s" label u.B.source
      | B.Degraded _ -> fail "%s: degraded unit on well-formed input" label
      | B.Skipped -> fail "%s: skipped unit without fail-fast" label)
    under_fire.B.units;
  (* 2. success => byte-identical to the fault-free build *)
  if under_fire.B.failed = 0 then begin
    if pdb_string under_fire.B.merged <> Lazy.force reference then
      fail "%s: clean farm build diverged from the fault-free PDB" label
  end;
  (* 3. respawns stayed inside the per-build budget *)
  let respawns = perf_calls "farm.respawn" - respawns_before in
  if respawns > (farm_config ~workers ()).Farm.max_respawns then
    fail "%s: %d respawns exceed the budget" label respawns;
  (* 4. no worker crash left a temp file behind *)
  if not (no_residual_tmp dir) then
    fail "%s: residual .tmp.* file in cache dir" label;
  (* 5. the shared cache serves no corrupt entry afterwards *)
  let recovered =
    try build ~cache_dir:dir ~domains:1 (project ())
    with e -> fail "%s: recovery build raised %s" label (Printexc.to_string e)
  in
  if recovered.B.failed <> 0 then
    fail "%s: recovery build failed over the surviving cache" label;
  if pdb_string recovered.B.merged <> Lazy.force reference then
    fail "%s: recovery build diverged from the fault-free PDB" label;
  rm_rf dir;
  under_fire.B.failed

let test_farm_fault_matrix () =
  let schedules = ref 0 in
  let deaths_before = perf_calls "farm.crash" + perf_calls "farm.kill" in
  let failed_units = ref 0 in
  List.iter
    (fun (name, sites) ->
      List.iter
        (fun rate ->
          List.iter
            (fun seed ->
              List.iter
                (fun workers ->
                  incr schedules;
                  let label =
                    Printf.sprintf "%s rate=%.2f seed=%d farm=%d" name rate
                      seed workers
                  in
                  failed_units :=
                    !failed_units
                    + check_farm_schedule ~label ~sites ~rate ~seed ~workers ())
                matrix_farms)
            matrix_seeds)
        rates)
    site_sets;
  Alcotest.(check bool)
    (Printf.sprintf "matrix swept >= 200 schedules (ran %d)" !schedules)
    true (!schedules >= 200);
  (* not vacuous: the sweep actually killed workers *)
  Alcotest.(check bool)
    (Printf.sprintf "the sweep drew blood (%d worker deaths, %d failed units)"
       (perf_calls "farm.crash" + perf_calls "farm.kill" - deaths_before)
       !failed_units)
    true
    (perf_calls "farm.crash" + perf_calls "farm.kill" > deaths_before)

(* ---------------- cross-process cache integrity ---------------- *)

let wait_code name pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s ->
      Alcotest.fail (Printf.sprintf "%s killed by signal %d" name s)
  | Unix.WSTOPPED _ -> Alcotest.fail (name ^ " stopped")

let spawn_pdbbuild ~sources ~out ~cache ~farm =
  let exe = pdbbuild_exe () in
  let log =
    Unix.openfile (out ^ ".log") [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let pid =
    Unix.create_process exe
      (Array.of_list
         ((exe :: sources)
         @ [ "-o"; out; "--cache-dir"; cache; "--farm"; string_of_int farm ]))
      Unix.stdin log log
  in
  Unix.close log;
  pid

let test_concurrent_farm_builders () =
  (* two farm drivers racing cold on one cache directory: both must exit
     clean with byte-identical merged PDBs, the shard locks and
     re-verify-under-lock discipline must produce zero quarantine false
     positives, and a third (in-process) build must be served entirely
     from the shared cache *)
  let dir = fresh_dir () in
  C.mkdir_p dir;
  let cache = Filename.concat dir "cache" in
  let sources = G.write_project ~n_tus ~dir () in
  let out1 = Filename.concat dir "m1.pdb"
  and out2 = Filename.concat dir "m2.pdb" in
  let p1 = spawn_pdbbuild ~sources ~out:out1 ~cache ~farm:2 in
  let p2 = spawn_pdbbuild ~sources ~out:out2 ~cache ~farm:2 in
  Alcotest.(check int) "first farm driver exits clean" 0 (wait_code "p1" p1);
  Alcotest.(check int) "second farm driver exits clean" 0 (wait_code "p2" p2);
  Alcotest.(check string) "both drivers produced identical bytes"
    (read_file out1) (read_file out2);
  Alcotest.(check bool) "no residual tmp file" true (no_residual_tmp cache);
  let quarantine = Filename.concat cache "quarantine" in
  Alcotest.(check bool) "zero quarantine false positives" true
    ((not (Sys.file_exists quarantine)) || Sys.readdir quarantine = [||]);
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let r = build ~cache_dir:cache ~domains:1 (vfs, sources) in
  Alcotest.(check int) "shared cache serves everything" (n_tus + 1) r.B.cached;
  Alcotest.(check string) "and the same bytes" (read_file out1)
    (pdb_string r.B.merged);
  rm_rf dir

let test_seeded_torn_write_quarantined_across_processes () =
  (* driver #1 runs with cache.write.torn armed in its workers: each
     worker's first store is torn, leaving corrupt entries behind a
     clean build (stores are write-behind).  Driver #2, fault-free, must
     quarantine those entries under the shard lock, recompile, and
     produce the same bytes. *)
  let dir = fresh_dir () in
  C.mkdir_p dir;
  let cache = Filename.concat dir "cache" in
  let sources = G.write_project ~n_tus ~dir () in
  let out1 = Filename.concat dir "m1.pdb"
  and out2 = Filename.concat dir "m2.pdb" in
  Unix.putenv F.env_var
    (F.spec_string ~sites:[ "cache.write.torn" ] ~max_faults:1 ~seed:3
       ~rate:1.0 ());
  let code1 =
    Fun.protect
      ~finally:(fun () -> Unix.putenv F.env_var "")
      (fun () ->
        wait_code "torn-writer"
          (spawn_pdbbuild ~sources ~out:out1 ~cache ~farm:2))
  in
  Alcotest.(check int) "torn-writing driver still exits clean" 0 code1;
  let code2 =
    wait_code "healer" (spawn_pdbbuild ~sources ~out:out2 ~cache ~farm:2)
  in
  Alcotest.(check int) "second driver exits clean" 0 code2;
  Alcotest.(check string) "bytes converge despite torn entries"
    (read_file out1) (read_file out2);
  let quarantine = Filename.concat cache "quarantine" in
  Alcotest.(check bool) "the torn entries were quarantined" true
    (Sys.file_exists quarantine && Sys.readdir quarantine <> [||]);
  Alcotest.(check bool) "no residual tmp file" true (no_residual_tmp cache);
  (* and the healed cache now serves a third build outright *)
  let vfs = Pdt_util.Vfs.create () in
  Pdt_util.Vfs.set_disk_fallback vfs true;
  let r = build ~cache_dir:cache ~domains:1 (vfs, sources) in
  Alcotest.(check int) "healed cache serves everything" (n_tus + 1) r.B.cached;
  rm_rf dir

(* ---------------- stale-tmp sweeping ---------------- *)

let test_sweep_reclaims_dead_pid_tmps () =
  let dir = fresh_dir () in
  let cache = C.create ~dir () in
  let shard = Filename.concat (Filename.concat dir "objects") "ab" in
  C.mkdir_p shard;
  (* a temp file from a pid that cannot exist: debris from a crashed
     worker; and one from our own live pid: an in-flight write *)
  let dead = Filename.concat shard "k.pdb.tmp.999999999.1" in
  let live =
    Filename.concat shard
      (Printf.sprintf "k2.pdb.tmp.%d.1" (Unix.getpid ()))
  in
  List.iter
    (fun p ->
      let oc = open_out_bin p in
      output_string oc "partial";
      close_out oc)
    [ dead; live ];
  let swept = C.sweep_stale_tmps cache in
  Alcotest.(check bool) "dead-pid tmp swept" false (Sys.file_exists dead);
  Alcotest.(check bool) "live-pid tmp untouched" true (Sys.file_exists live);
  Alcotest.(check bool) "sweep reports work" true (swept >= 1);
  rm_rf dir

let suite =
  let farm_gated name speed f =
    (* every farm test needs the worker binary next to pdbbuild.exe; a
       missing binary is a build-system regression, so fail loudly *)
    Alcotest.test_case name speed (fun () ->
        if not (Sys.file_exists (worker_exe ())) then
          Alcotest.failf "pdbworker.exe not built at %s" (worker_exe ());
        Unix.putenv "PDT_PDBWORKER" (worker_exe ());
        f ())
  in
  [ Alcotest.test_case "proto: messages round-trip" `Quick test_proto_roundtrip;
    Alcotest.test_case "proto: malformed frames are errors" `Quick
      test_proto_rejects_malformed;
    Alcotest.test_case "proto: assembler survives 1-byte chunking" `Quick
      test_assembler_reassembles_byte_stream;
    Alcotest.test_case "proto: absurd length prefix rejected" `Quick
      test_assembler_rejects_absurd_length;
    farm_gated "farm == in-process build, cold and warm" `Quick
      test_farm_matches_inprocess_build;
    farm_gated "farm of one worker" `Quick test_farm_single_worker;
    farm_gated "farm without a cache dir" `Quick test_farm_without_cache;
    Alcotest.test_case "missing worker binary raises Farm_unavailable" `Quick
      test_farm_unavailable;
    farm_gated "SIGKILL mid-unit: retried, bytes identical" `Quick
      test_kill_mid_unit_recovers;
    farm_gated "wedged worker: liveness kill, bytes identical" `Quick
      test_wedge_recovers;
    farm_gated "torn result frame: treated as crash, bytes identical" `Quick
      test_torn_frame_recovers;
    farm_gated "kill storm: respawn budget, clean failure" `Quick
      test_respawn_storm_fails_cleanly;
    Alcotest.test_case "reconcile: lost slot becomes Worker_lost" `Quick
      test_reconcile_lost_slot_is_error;
    Alcotest.test_case "reconcile: witness lands on the lost slot" `Quick
      test_reconcile_witness_attributed_to_lost_slot;
    Alcotest.test_case "reconcile: stray witness re-raises" `Quick
      test_reconcile_witness_without_lost_slot_reraises;
    farm_gated "farm fault matrix: >=200 seeded kill/wedge/torn schedules"
      `Slow test_farm_fault_matrix;
    farm_gated "two farm drivers share one cache" `Quick
      test_concurrent_farm_builders;
    farm_gated "seeded torn write quarantined cross-process" `Quick
      test_seeded_torn_write_quarantined_across_processes;
    Alcotest.test_case "stale-tmp sweep honors pid liveness" `Quick
      test_sweep_reclaims_dead_pid_tmps ]
