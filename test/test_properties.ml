(* Property-based tests (qcheck) for core data structures and invariants. *)

open Pdt_util

(* ------------------------------------------------------------------ *)
(* Lexer: rendering a token stream and re-lexing is the identity       *)
(* ------------------------------------------------------------------ *)

let gen_token : string QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [ (* identifiers *)
        map
          (fun (c, rest) ->
            String.make 1 c
            ^ String.concat "" (List.map (String.make 1) rest))
          (pair (char_range 'a' 'z') (list_size (int_range 0 6) (char_range 'a' 'z')));
        (* keywords *)
        oneofl [ "class"; "template"; "int"; "double"; "const"; "virtual"; "return" ];
        (* integers *)
        map string_of_int (int_range 0 99999);
        (* punctuators that survive adjacency when space-separated *)
        oneofl [ "+"; "-"; "*"; "/"; "::"; "=="; "<="; ">="; "("; ")"; "{"; "}";
                 ";"; ","; "&&"; "||"; "->"; "." ];
        (* strings *)
        map (fun s -> Printf.sprintf "%S" s)
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 8)) ])

let prop_lexer_roundtrip =
  QCheck.Test.make ~count:200 ~name:"lexer: render/relex identity"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) gen_token))
    (fun words ->
      let src = String.concat " " words in
      let diags = Diag.create () in
      let toks1 = Pdt_lex.Lexer.tokenize ~diags ~file:"p.cpp" src in
      let text = Pdt_lex.Token.text_of_toks toks1 in
      let toks2 = Pdt_lex.Lexer.tokenize ~diags ~file:"p.cpp" text in
      List.length toks1 = List.length toks2
      && List.for_all2
           (fun (a : Pdt_lex.Token.tok) (b : Pdt_lex.Token.tok) ->
             Pdt_lex.Token.equal_kind a.tok b.tok)
           toks1 toks2)

(* ------------------------------------------------------------------ *)
(* Preprocessor: #if evaluator agrees with a reference evaluator       *)
(* ------------------------------------------------------------------ *)

type iexpr =
  | L of int
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr
  | Lt of iexpr * iexpr
  | And of iexpr * iexpr
  | Or of iexpr * iexpr
  | Not of iexpr

let rec render = function
  | L n -> string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (render a) (render b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (render a) (render b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (render a) (render b)
  | Lt (a, b) -> Printf.sprintf "(%s < %s)" (render a) (render b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (render a) (render b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (render a) (render b)
  | Not a -> Printf.sprintf "!(%s)" (render a)

let rec ieval = function
  | L n -> Int64.of_int n
  | Add (a, b) -> Int64.add (ieval a) (ieval b)
  | Sub (a, b) -> Int64.sub (ieval a) (ieval b)
  | Mul (a, b) -> Int64.mul (ieval a) (ieval b)
  | Lt (a, b) -> if ieval a < ieval b then 1L else 0L
  | And (a, b) -> if ieval a <> 0L && ieval b <> 0L then 1L else 0L
  | Or (a, b) -> if ieval a <> 0L || ieval b <> 0L then 1L else 0L
  | Not a -> if ieval a = 0L then 1L else 0L

let gen_iexpr : iexpr QCheck.Gen.t =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map (fun v -> L v) (int_range 0 50)
        else
          oneof
            [ map (fun v -> L v) (int_range 0 50);
              map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Lt (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Not a) (self (n - 1)) ]))

let prop_preproc_if =
  QCheck.Test.make ~count:200 ~name:"preproc: #if agrees with reference"
    (QCheck.make gen_iexpr) (fun e ->
      let expected = ieval e <> 0L in
      let src = Printf.sprintf "#if %s\nyes\n#else\nno\n#endif\n" (render e) in
      let vfs = Vfs.create () in
      Vfs.add_file vfs "main.cpp" src;
      let diags = Diag.create () in
      let r = Pdt_pp.Preproc.run ~vfs ~diags "main.cpp" in
      match r.tokens with
      | [ { tok = Pdt_lex.Token.Ident got; _ } ] -> got = (if expected then "yes" else "no")
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Interpreter: integer expressions agree with a reference evaluator   *)
(* ------------------------------------------------------------------ *)

let prop_interp_arith =
  QCheck.Test.make ~count:100 ~name:"interp: int arithmetic agrees with reference"
    (QCheck.make gen_iexpr) (fun e ->
      (* C++ ints here are 64-bit in the interpreter; the reference uses
         Int64 too.  Print via cout to avoid exit-code truncation. *)
      let expected = ieval e in
      let src =
        Printf.sprintf
          "#include <iostream.h>\nint main() { cout << (%s) << endl; return 0; }"
          (* reuse C++ syntax: ! && || < + - * all match *)
          (render e)
      in
      let vfs = Vfs.create () in
      Pdt_workloads.Ministl.mount vfs;
      Vfs.add_file vfs "main.cpp" src;
      let c = Pdt.compile ~vfs "main.cpp" in
      if Diag.has_errors c.Pdt.diags then false
      else
        let r = Pdt_tau.Interp.run c.Pdt.program in
        (* booleans print as 1/0; both sides agree since the reference
           produces 1/0 for comparisons already *)
        String.trim r.output = Int64.to_string expected)

(* ------------------------------------------------------------------ *)
(* IL: type interning is idempotent and names are stable               *)
(* ------------------------------------------------------------------ *)

let gen_tykind prog : Pdt_il.Il.ty_kind QCheck.Gen.t =
  let open Pdt_il.Il in
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let base =
          oneofl
            [ Tbuiltin { bname = "int"; ykind = "int"; yikind = "int" };
              Tbuiltin { bname = "double"; ykind = "float"; yikind = "double" };
              Tbuiltin { bname = "bool"; ykind = "bool"; yikind = "char" } ]
        in
        if n <= 0 then base
        else
          oneof
            [ base;
              map (fun k -> Tptr (intern_type prog k)) (self (n / 2));
              map (fun k -> Tref (intern_type prog k)) (self (n / 2));
              map
                (fun k ->
                  Tqual { base = intern_type prog k; q_const = true; q_volatile = false })
                (self (n / 2));
              map (fun k -> Tarray (intern_type prog k, Some 4)) (self (n / 2)) ]))

let prop_intern_idempotent =
  let prog = Pdt_il.Il.create_program () in
  QCheck.Test.make ~count:200 ~name:"IL: intern_type is idempotent"
    (QCheck.make (gen_tykind prog)) (fun k ->
      let a = Pdt_il.Il.intern_type prog k in
      let b = Pdt_il.Il.intern_type prog k in
      a = b && Pdt_il.Il.type_name prog a = Pdt_il.Il.type_name prog b)

(* ------------------------------------------------------------------ *)
(* VFS path normalization                                              *)
(* ------------------------------------------------------------------ *)

let gen_path =
  QCheck.Gen.(
    map
      (fun segs -> String.concat "/" segs)
      (list_size (int_range 1 6) (oneofl [ "a"; "b"; "src"; ".."; "."; "include" ])))

let prop_normalize_idempotent =
  QCheck.Test.make ~count:200 ~name:"vfs: normalize is idempotent"
    (QCheck.make gen_path) (fun p ->
      let n = Vfs.normalize p in
      Vfs.normalize n = n)

let prop_normalize_no_dots =
  QCheck.Test.make ~count:200 ~name:"vfs: normalize removes interior . and non-leading .."
    (QCheck.make gen_path) (fun p ->
      let n = Vfs.normalize p in
      let segs = String.split_on_char '/' n in
      (* after a non-.. segment, no .. may follow *)
      let rec ok = function
        | ".." :: rest -> ok rest      (* leading .. may pile up *)
        | x :: rest -> x <> "." && List.for_all (fun s -> s <> "..") rest && ok' rest
        | [] -> true
      and ok' rest = List.for_all (fun s -> s <> "." ) rest in
      ok segs)

(* ------------------------------------------------------------------ *)
(* Workload generator determinism                                      *)
(* ------------------------------------------------------------------ *)

let prop_generator_deterministic =
  QCheck.Test.make ~count:25 ~name:"generator: same seed, same program"
    QCheck.(int_range 0 1000) (fun seed ->
      let cfg = { Pdt_workloads.Generator.default_config with seed } in
      Pdt_workloads.Generator.single_file_program ~cfg ()
      = Pdt_workloads.Generator.single_file_program ~cfg ())

let prop_generator_compiles =
  QCheck.Test.make ~count:15 ~name:"generator: every seed compiles cleanly"
    QCheck.(int_range 0 500) (fun seed ->
      let cfg =
        { Pdt_workloads.Generator.default_config with
          seed; n_class_templates = 4; methods_per_class = 3 }
      in
      let src = Pdt_workloads.Generator.single_file_program ~cfg () in
      let c = Pdt.compile_string src in
      not (Diag.has_errors c.Pdt.diags))

(* ------------------------------------------------------------------ *)
(* Merged multi-TU PDBs survive the on-disk format (the cache path)    *)
(* ------------------------------------------------------------------ *)

let prop_project_merge_roundtrip =
  QCheck.Test.make ~count:8
    ~name:"pdb: write/parse roundtrips the merged PDB of a generated project"
    QCheck.(int_range 0 300) (fun seed ->
      let cfg =
        { Pdt_workloads.Generator.default_config with
          seed; n_class_templates = 3; methods_per_class = 2 }
      in
      let vfs, sources = Pdt_workloads.Generator.project_vfs ~cfg ~n_tus:3 () in
      let pdbs =
        List.map
          (fun f -> Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs f).Pdt.program)
          sources
      in
      let merged = Pdt_ductape.Ductape.merge pdbs in
      (* the incremental cache stores exactly this serialization, so the
         roundtrip must be the identity on it *)
      let s = Pdt_pdb.Pdb_write.to_string merged in
      let s' = Pdt_pdb.Pdb_write.to_string (Pdt_pdb.Pdb_parse.of_string s) in
      s = s')

(* ------------------------------------------------------------------ *)
(* Incremental build: a random edit's delta rebuild is exact           *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* For random workloadgen projects and random single-file edits, the
   incremental rebuild must be byte-identical to a cold cacheless build
   of the edited tree, and its stats must partition the units:
   reanalyzed + reused = total.  Edit kind 4 is a whitespace-only edit
   (trailing blank line), which must re-analyze nothing. *)
let prop_incremental_edit_exact =
  QCheck.Test.make ~count:10
    ~name:"incremental: random edit rebuild = cold build bytes, stats partition units"
    QCheck.(pair (int_range 0 300) (int_range 0 4))
    (fun (seed, edit_kind) ->
      let module B = Pdt_build.Build in
      let module I = Pdt_build.Incremental in
      let n_tus = 3 in
      let cfg =
        { Pdt_workloads.Generator.default_config with
          seed; n_class_templates = 2; methods_per_class = 2 }
      in
      let vfs, sources = Pdt_workloads.Generator.project_vfs ~cfg ~n_tus () in
      let cache = Filename.temp_file "pdt-incr-prop" ".cache" in
      Sys.remove cache;
      Fun.protect ~finally:(fun () -> rm_rf cache) @@ fun () ->
      let options =
        { I.default_options with
          build =
            { B.default_options with domains = 1; cache_dir = Some cache } }
      in
      ignore (I.build ~options ~vfs sources);
      let target, addition =
        match edit_kind with
        | 0 -> ("generated.h", "\nint prop_edit_marker(int x);\n")
        | 4 -> ("main.cpp", "   \n")
        | k ->
            ( Printf.sprintf "tu%d.cpp" (k - 1),
              Printf.sprintf "\nint prop_edit_fn_%d() { return %d; }\n" k k )
      in
      (match Vfs.read_raw vfs target with
       | Some old -> Vfs.add_file vfs target (old ^ addition)
       | None -> QCheck.Test.fail_reportf "edit target %s missing" target);
      let r = I.build ~options ~vfs sources in
      let cold =
        B.build
          ~options:{ B.default_options with domains = 1; cache_dir = None }
          ~vfs sources
      in
      Pdt_pdb.Pdb_write.to_string r.I.merged
      = Pdt_pdb.Pdb_write.to_string cold.B.merged
      && r.I.reanalyzed + r.I.reused = List.length sources
      && (not r.I.fallback)
      && (edit_kind <> 4 || r.I.reanalyzed = 0))

(* ------------------------------------------------------------------ *)
(* Subst: the empty environment is the identity                        *)
(* ------------------------------------------------------------------ *)

let prop_subst_empty_identity =
  QCheck.Test.make ~count:50 ~name:"subst: empty env is identity on generated code"
    QCheck.(int_range 0 200) (fun seed ->
      let cfg =
        { Pdt_workloads.Generator.default_config with seed; n_class_templates = 2 }
      in
      let src = Pdt_workloads.Generator.single_file_program ~cfg () in
      let diags = Diag.create () in
      let toks = Pdt_lex.Lexer.tokenize ~diags ~file:"g.cpp" src in
      let tu = Pdt_parse.Parser.parse_translation_unit ~diags ~file:"g.cpp" toks in
      List.for_all
        (fun d -> Pdt_sema.Subst.subst_decl [] d = d)
        tu.Pdt_ast.Ast.tu_decls)

(* ------------------------------------------------------------------ *)
(* Interpreter: exit codes are stable under instrumentation            *)
(* ------------------------------------------------------------------ *)

let prop_instrumentation_preserves_semantics =
  QCheck.Test.make ~count:10 ~name:"tau: instrumentation never changes behaviour"
    QCheck.(int_range 0 300) (fun seed ->
      let cfg =
        { Pdt_workloads.Generator.default_config with
          seed; n_class_templates = 3; methods_per_class = 2 }
      in
      let src = Pdt_workloads.Generator.single_file_program ~cfg () in
      let vfs = Vfs.create () in
      Pdt_workloads.Ministl.mount vfs;
      Vfs.add_file vfs "g.cpp" src;
      let c = Pdt.compile ~vfs "g.cpp" in
      if Diag.has_errors c.Pdt.diags then false
      else begin
        let r1 = Pdt_tau.Interp.run c.Pdt.program in
        let d = Pdt_ductape.Ductape.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
        let plan = Pdt_tau.Instrument.plan d in
        let vfs2, _ = Pdt_tau.Instrument.instrument_vfs vfs plan in
        let c2 = Pdt.compile ~vfs:vfs2 "g.cpp" in
        if Diag.has_errors c2.Pdt.diags then false
        else
          let r2 = Pdt_tau.Interp.run c2.Pdt.program in
          r1.exit_code = r2.exit_code && r1.output = r2.output
      end)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lexer_roundtrip;
      prop_preproc_if;
      prop_interp_arith;
      prop_intern_idempotent;
      prop_normalize_idempotent;
      prop_normalize_no_dots;
      prop_generator_deterministic;
      prop_generator_compiles;
      prop_project_merge_roundtrip;
      prop_incremental_edit_exact;
      prop_subst_empty_identity;
      prop_instrumentation_preserves_semantics ]
