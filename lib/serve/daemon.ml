(** pdbd's socket server: one reader domain multiplexing connections with
    [select], a fixed pool of worker domains draining a shared work queue
    (the {!Pdt_build.Scheduler} queue, reused verbatim — same
    mutex/condition idiom, same drain-on-close semantics).

    Per-connection ordering: a connection's decoded lines go into its own
    pending queue, and the connection itself is the unit of work on the
    shared queue.  While a worker holds a connection it is marked busy
    and is never handed to a second worker, so pipelined requests are
    answered strictly in arrival order; when replies drain the worker
    either re-enqueues the connection (more lines waiting) or parks it
    until the reader sees new bytes.  Across connections, requests run
    in parallel on the pool, each against the one snapshot it grabbed at
    dispatch ({!Snapshot.current}).

    Robustness at the socket boundary: a line longer than [max_line]
    gets a structured [too-large] error and the connection is closed
    after the reply; a half-line that never completes is dropped with
    the connection on EOF; write failures (client went away) just close.
    Nothing a client sends can raise past {!Query.handle_line}, and the
    reader's [select] loop owns every file descriptor's lifecycle, so
    fds are closed exactly once.

    [select] bounds the daemon to file descriptors below [FD_SETSIZE]
    (1024 on Linux).  That bound is a {e handled condition}, not a latent
    crash: the reader admits at most [max_conns] concurrent connections
    (default 900 — headroom under FD_SETSIZE for the listen/wake fds and
    anything else the process holds); a connection beyond that is
    accepted, answered with a structured [too-many-connections] error,
    and closed immediately (counted under [serve.rejected]), so a client
    storm degrades to clean refusals instead of a failed [select].  A
    dedicated pdbd process comfortably serves the 512-client load point
    of bench B11; harnesses that need hundreds of concurrent connections
    should still fork the daemon (workloadgen does) since an in-process
    daemon shares its fd space with the clients. *)

module S = Pdt_build.Scheduler

type config = {
  socket_path : string;
  domains : int;       (** worker pool size; the reader is one more *)
  max_line : int;      (** request size bound, bytes *)
  max_conns : int;     (** concurrent-connection bound; connections past
                           it get a [too-many-connections] error + close
                           instead of risking the [select] fd limit *)
}

let default_config =
  { socket_path = "pdbd.sock"; domains = S.default_domains ();
    max_line = 1 lsl 20; max_conns = 900 }

type item =
  | Line of string
  | Oversized of int  (** observed length; the reply is an error + close *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  mutable leftover : string;  (** reader-only: bytes after the last LF *)
  pending : item Queue.t;     (** guarded by [mu] *)
  mutable busy : bool;        (** guarded by [mu]: a worker owns it *)
  mutable eof : bool;         (** reader saw EOF *)
  mutable drop_input : bool;  (** reader-only: oversized, stop decoding *)
  mutable closed : bool;      (** guarded by [mu]: finish + close *)
  mu : Mutex.t;
}

type t = {
  cfg : config;
  holder : Snapshot.t;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop_flag : bool Atomic.t;
  workq : conn S.queue;
  mutable reader : unit Domain.t option;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;  (** join-once guard *)
}

let wake (t : t) =
  try ignore (Unix.write_substring t.wake_w "!" 0 1) with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

let write_all fd (s : string) : bool =
  let n = String.length s in
  let rec go off =
    if off >= n then true
    else
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((EPIPE | EBADF | ECONNRESET), _, _) -> false
  in
  go 0

let handle_item (t : t) (conn : conn) (item : item) : unit =
  let reply, disp =
    match item with
    | Line line -> Query.handle_line t.holder line
    | Oversized n ->
        let gen = (Snapshot.current t.holder).Snapshot.gen in
        ( Pdt_util.Json.to_string
            (Query.error_reply ~id:Pdt_util.Json.Null ~gen "too-large"
               (Printf.sprintf "request line exceeds %d bytes (got %d)"
                  t.cfg.max_line n)),
          Query.Continue )
  in
  let sent =
    Pdt_util.Trace.timed ~cat:"serve" "serve.respond" @@ fun () ->
    write_all conn.fd (reply ^ "\n")
  in
  let close_now =
    (not sent) || (match item with Oversized _ -> true | Line _ -> false)
  in
  if close_now then begin
    Mutex.lock conn.mu;
    conn.closed <- true;
    Mutex.unlock conn.mu
  end;
  match disp with
  | Query.Shutdown ->
      Atomic.set t.stop_flag true;
      wake t
  | Query.Continue -> ()

let worker_loop (t : t) () =
  let rec loop () =
    match S.queue_pop t.workq with
    | None -> ()
    | Some conn ->
        Mutex.lock conn.mu;
        let item = Queue.take_opt conn.pending in
        Mutex.unlock conn.mu;
        (match item with
         | Some item -> handle_item t conn item
         | None -> ());
        Mutex.lock conn.mu;
        let more = (not (Queue.is_empty conn.pending)) && not conn.closed in
        if more then begin
          Mutex.unlock conn.mu;
          S.queue_push t.workq conn
        end
        else begin
          conn.busy <- false;
          Mutex.unlock conn.mu;
          (* the reader may be waiting to close this fd *)
          wake t
        end;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Reader side                                                         *)
(* ------------------------------------------------------------------ *)

(* Split freshly read bytes into protocol lines; returns decoded items
   and the new leftover.  A lone CR before the LF is stripped so `nc -C`
   and printf both work. *)
let decode_lines (data : string) : string list * string =
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        let stop = if i > !start && data.[i - 1] = '\r' then i - 1 else i in
        lines := String.sub data !start (stop - !start) :: !lines;
        start := i + 1
      end)
    data;
  (List.rev !lines, String.sub data !start (String.length data - !start))

let enqueue (t : t) (conn : conn) (item : item) : unit =
  Mutex.lock conn.mu;
  Queue.push item conn.pending;
  let grab = not conn.busy in
  if grab then conn.busy <- true;
  Mutex.unlock conn.mu;
  if grab then S.queue_push t.workq conn

let reader_loop (t : t) () =
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 64 in
  let next_cid = ref 0 in
  let rbuf = Bytes.create 65536 in
  let accept_one () =
    match Unix.accept t.listen_fd with
    | fd, _ when Hashtbl.length conns >= t.cfg.max_conns ->
        (* over the admission bound: a clean structured refusal, never a
           blown FD_SETSIZE.  The reply is best-effort — the client may
           already be gone — and the fd closes either way. *)
        Pdt_util.Trace.instant ~cat:"serve" "serve.reject";
        Pdt_util.Perf.record "serve.rejected" 0;
        let gen = (Snapshot.current t.holder).Snapshot.gen in
        let reply =
          Pdt_util.Json.to_string
            (Query.error_reply ~id:Pdt_util.Json.Null ~gen
               "too-many-connections"
               (Printf.sprintf "daemon at its %d-connection limit"
                  t.cfg.max_conns))
        in
        ignore (write_all fd (reply ^ "\n"));
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _ ->
        Pdt_util.Trace.instant ~cat:"serve" "serve.accept";
        Pdt_util.Perf.record "serve.accept" 0;
        incr next_cid;
        Hashtbl.replace conns !next_cid
          { fd; cid = !next_cid; leftover = ""; pending = Queue.create ();
            busy = false; eof = false; drop_input = false; closed = false;
            mu = Mutex.create () }
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  let read_conn (conn : conn) =
    match Unix.read conn.fd rbuf 0 (Bytes.length rbuf) with
    | 0 -> conn.eof <- true
    | n ->
        if conn.drop_input then ()
        else begin
          let data = conn.leftover ^ Bytes.sub_string rbuf 0 n in
          let lines, leftover = decode_lines data in
          List.iter
            (fun l ->
              if String.length l > t.cfg.max_line then begin
                conn.drop_input <- true;
                enqueue t conn (Oversized (String.length l))
              end
              else enqueue t conn (Line l))
            lines;
          if String.length leftover > t.cfg.max_line then begin
            conn.drop_input <- true;
            conn.leftover <- "";
            enqueue t conn (Oversized (String.length leftover))
          end
          else conn.leftover <- leftover
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> conn.eof <- true
  in
  (* close fds whose work is fully drained; only the reader closes *)
  let sweep () =
    let dead = ref [] in
    Hashtbl.iter
      (fun cid conn ->
        Mutex.lock conn.mu;
        let disposable =
          (not conn.busy) && Queue.is_empty conn.pending
          && (conn.closed || conn.eof)
        in
        Mutex.unlock conn.mu;
        if disposable then dead := (cid, conn) :: !dead)
      conns;
    List.iter
      (fun (cid, conn) ->
        (try Unix.close conn.fd with Unix.Unix_error _ -> ());
        Hashtbl.remove conns cid)
      !dead
  in
  let drain_wake () =
    match Unix.read t.wake_r rbuf 0 (Bytes.length rbuf) with
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  let rec loop accepting =
    sweep ();
    if Atomic.get t.stop_flag && accepting then begin
      (* stop: no new connections, let in-flight requests finish *)
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      loop false
    end
    else if (not accepting) && Hashtbl.length conns = 0 then ()
    else begin
      let fds =
        t.wake_r
        :: (if accepting then [ t.listen_fd ] else [])
        @ Hashtbl.fold
            (fun _ c acc ->
              Mutex.lock c.mu;
              let want = not (c.eof || c.closed) in
              Mutex.unlock c.mu;
              if want then c.fd :: acc else acc)
            conns []
      in
      match Unix.select fds [] [] 0.25 with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = t.wake_r then drain_wake ()
              else if accepting && fd = t.listen_fd then accept_one ()
              else
                Hashtbl.iter
                  (fun _ c -> if c.fd = fd then read_conn c)
                  conns)
            readable;
          if Atomic.get t.stop_flag && not accepting then begin
            (* second stop pass: the drain above is bounded by workers
               finishing their current items, which they always do *)
            sweep ();
            let idle = ref true in
            Hashtbl.iter
              (fun _ c ->
                Mutex.lock c.mu;
                if c.busy || not (Queue.is_empty c.pending) then idle := false;
                Mutex.unlock c.mu)
              conns;
            if !idle then begin
              Hashtbl.iter
                (fun _ c ->
                  try Unix.close c.fd with Unix.Unix_error _ -> ())
                conns;
              Hashtbl.reset conns
            end;
            loop false
          end
          else loop accepting
      | exception Unix.Unix_error (EINTR, _, _) -> loop accepting
      | exception Unix.Unix_error (EBADF, _, _) ->
          (* a connection died between sweep and select; next sweep
             collects it *)
          loop accepting
    end
  in
  (try loop true with e ->
     (* a reader crash must still let [wait] return — and must close
        every connection, so blocked clients see EOF instead of hanging
        on a reply that will never come *)
     prerr_endline ("pdbd: reader failed: " ^ Printexc.to_string e);
     (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
     Hashtbl.iter
       (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
       conns);
  S.queue_close t.workq

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(** Bind the socket and spawn the worker pool.  The reader is not yet
    running: follow with {!serve_background} (tests, load generators) or
    {!serve_foreground} (the pdbd binary, so signals land in the reader's
    [select] as EINTR). *)
let create ?(config = default_config) (holder : Snapshot.t) : t =
  (* a torn-down daemon's socket file must not block the next one *)
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  (* writes race client disconnects by design; EPIPE comes back as a
     Unix_error, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind listen_fd (ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 256;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    { cfg = config; holder; listen_fd; wake_r; wake_w;
      stop_flag = Atomic.make false; workq = S.queue_create ();
      reader = None; workers = []; stopped = false }
  in
  t.workers <-
    List.init (max 1 config.domains) (fun _ -> Domain.spawn (worker_loop t));
  t

(* joins whatever is joinable and releases the fds; idempotent *)
let teardown (t : t) : unit =
  Option.iter Domain.join t.reader;
  t.reader <- None;
  List.iter Domain.join t.workers;
  t.workers <- [];
  if not t.stopped then begin
    t.stopped <- true;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  end

(** Run the reader loop on the calling domain until shutdown (verb or
    {!request_stop}, including from a signal handler), then reclaim
    everything. *)
let serve_foreground (t : t) : unit =
  reader_loop t ();
  teardown t

(** Run the reader on its own domain and return immediately. *)
let serve_background (t : t) : unit =
  t.reader <- Some (Domain.spawn (reader_loop t))

(** {!create} + {!serve_background}: the one-call form the harnesses use. *)
let start ?config (holder : Snapshot.t) : t =
  let t = create ?config holder in
  serve_background t;
  t

(** Async-signal-safe stop request: flips the flag and wakes the reader;
    no joins, no allocation-heavy work. *)
let request_stop (t : t) : unit =
  Atomic.set t.stop_flag true;
  wake t

(** Block until the daemon stops (shutdown verb or {!stop}). *)
let wait (t : t) : unit = teardown t

(** Ask the daemon to stop and reclaim everything: in-flight requests
    finish and get their replies, then sockets close, domains join, and
    the socket file is unlinked. *)
let stop (t : t) : unit =
  request_stop t;
  wait t
