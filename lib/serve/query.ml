(** The pdbd wire protocol: line-oriented JSON requests over a byte
    stream (DESIGN.md §7).

    One request is one LF-terminated line holding a JSON object:

    {v {"id": 7, "verb": "find", "kind": "routine", "name": "main"} v}

    and one reply is one line holding a JSON object that echoes ["id"],
    carries ["ok"], and names the snapshot generation ["gen"] it was
    answered from.  Every code path — including malformed JSON, unknown
    verbs, bad arguments, and handler exceptions — produces a structured
    reply; {!handle_line} never raises and never writes to stdout, which
    is what makes the conformance goldens byte-pinnable and the daemon's
    input loop a safe trust boundary.

    Queries are verbs over one {!Snapshot.snap} grabbed exactly once at
    dispatch: entity lookup ([find]/[item]/[list]), call-graph slices
    ([callees]/[callers]/[callgraph]), template↔instantiation maps
    ([instantiations]/[templateof]), and the pdbtree/pdbstats views
    ([tree]/[stats]) rendered by the same {!Pdt_tools} cores the CLI
    tools print. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape
module J = Pdt_util.Json

let protocol_version = 1

(** Verb catalogue, in the order [hello] advertises it. *)
let verbs =
  [ "hello"; "ping"; "info"; "list"; "find"; "item"; "callees"; "callers";
    "callgraph"; "instantiations"; "templateof"; "defs"; "uses"; "duchain";
    "tree"; "stats"; "reload"; "shutdown" ]

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

let num (n : int) : J.t = J.Num (float_of_int n)

let jopt (f : 'a -> J.t) : 'a option -> J.t = function
  | Some x -> f x
  | None -> J.Null

let arg (req : J.t) (key : string) : J.t option = J.member key req

let str_arg req key = Option.bind (arg req key) J.to_string_opt

let int_arg req key =
  Option.bind (arg req key) (fun j ->
      match J.to_num_opt j with
      | Some f when Float.is_integer f -> Some (int_of_float f)
      | _ -> None)

let bool_arg req key =
  Option.bind (arg req key) (function J.Bool b -> Some b | _ -> None)

(* ------------------------------------------------------------------ *)
(* Item rendering                                                      *)
(* ------------------------------------------------------------------ *)

let loc_json (d : D.t) (l : P.loc) : J.t =
  if l = P.null_loc then J.Null
  else
    J.Obj
      [ ("file", jopt (fun (f : P.source_file) -> J.Str f.so_name) (D.file d l.lfile));
        ("line", num l.lline);
        ("col", num l.lcol) ]

let parent_json : P.parentref -> J.t = function
  | P.Pnone -> J.Null
  | P.Pcl id -> J.Obj [ ("kind", J.Str "class"); ("id", num id) ]
  | P.Pna id -> J.Obj [ ("kind", J.Str "namespace"); ("id", num id) ]

let kind_of_item : D.item -> string = function
  | D.File _ -> "file"
  | D.Macro _ -> "macro"
  | D.Type _ -> "type"
  | D.Template _ -> "template"
  | D.Namespace _ -> "namespace"
  | D.Class _ -> "class"
  | D.Routine _ -> "routine"

(** Compact reference: enough to re-query with [item]. *)
let summary (d : D.t) (it : D.item) : J.t =
  let name =
    match it with
    | D.Routine r -> D.routine_full_name d r
    | D.Class c -> D.class_full_name d c
    | it -> D.item_name d it
  in
  J.Obj
    [ ("kind", J.Str (kind_of_item it)); ("id", num (D.item_id it));
      ("name", J.Str name) ]

let routine_summary d (r : P.routine_item) = summary d (D.Routine r)
let class_summary d (c : P.class_item) = summary d (D.Class c)

(** Full rendering for the [item] verb: the shared pdbItem layer
    (location/parent/access) plus each kind's own attributes. *)
let detail (d : D.t) (it : D.item) : J.t =
  let common =
    match summary d it with
    | J.Obj kvs ->
        kvs
        @ [ ("loc", jopt (loc_json d) (D.item_location it));
            ("parent", jopt parent_json (D.item_parent it));
            ("access", jopt (fun a -> J.Str a) (D.item_access it));
            ("template", jopt num (D.item_template_of it)) ]
    | _ -> assert false
  in
  let extra =
    match it with
    | D.File f ->
        [ ("includes", J.List (List.map num f.P.so_includes)) ]
    | D.Macro m -> [ ("mkind", J.Str m.P.ma_kind); ("text", J.Str m.P.ma_text) ]
    | D.Type t ->
        [ ("ykind", J.Str (P.ykind_string t.P.ty_info));
          ("aliases", J.List (List.map (fun a -> J.Str a) t.P.ty_names)) ]
    | D.Template t ->
        [ ("tkind", J.Str t.P.te_kind); ("text", J.Str t.P.te_text) ]
    | D.Namespace n -> [ ("members", num (List.length n.P.na_members)) ]
    | D.Class c ->
        [ ("ckind", J.Str c.P.cl_kind);
          ("bases",
           J.List
             (List.map
                (fun (acs, virt, b) ->
                  J.Obj
                    [ ("access", J.Str acs); ("virtual", J.Bool virt);
                      ("class", class_summary d b) ])
                (D.bases d c)));
          ("derived", J.List (List.map (class_summary d) (D.derived d c)));
          ("methods", J.List (List.map (routine_summary d) (D.member_functions d c)));
          ("members", num (List.length c.P.cl_members)) ]
    | D.Routine r ->
        [ ("signature", J.Str (D.typeref_name d r.P.ro_sig));
          ("rkind", J.Str r.P.ro_kind);
          ("virtual", J.Str r.P.ro_virt);
          ("static", J.Bool r.P.ro_static);
          ("inline", J.Bool r.P.ro_inline);
          ("defined", J.Bool r.P.ro_defined);
          ("calls", num (List.length r.P.ro_calls));
          ("spawns", num (List.length r.P.ro_spawns));
          ("du_vars", num (List.length r.P.ro_du)) ]
  in
  J.Obj (common @ extra)

(* ------------------------------------------------------------------ *)
(* Kind dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let kinds = [ "file"; "macro"; "type"; "template"; "namespace"; "class"; "routine" ]

let items_of_kind (d : D.t) : string -> D.item list option = function
  | "file" -> Some (List.map (fun x -> D.File x) (D.files d))
  | "macro" -> Some (List.map (fun x -> D.Macro x) (D.macros d))
  | "type" -> Some (List.map (fun x -> D.Type x) (D.types d))
  | "template" -> Some (List.map (fun x -> D.Template x) (D.templates d))
  | "namespace" -> Some (List.map (fun x -> D.Namespace x) (D.namespaces d))
  | "class" -> Some (List.map (fun x -> D.Class x) (D.classes d))
  | "routine" -> Some (List.map (fun x -> D.Routine x) (D.routines d))
  | _ -> None

let item_of_kind_id (d : D.t) (kind : string) (id : int) : D.item option =
  match kind with
  | "file" -> Option.map (fun x -> D.File x) (D.file d id)
  | "macro" -> Option.map (fun x -> D.Macro x) (D.macro d id)
  | "type" -> Option.map (fun x -> D.Type x) (D.type_ d id)
  | "template" -> Option.map (fun x -> D.Template x) (D.template d id)
  | "namespace" -> Option.map (fun x -> D.Namespace x) (D.namespace d id)
  | "class" -> Option.map (fun x -> D.Class x) (D.class_ d id)
  | "routine" -> Option.map (fun x -> D.Routine x) (D.routine d id)
  | _ -> None

(** Name match for [find]: plain name always; routines and classes also
    answer to their qualified full name. *)
let item_matches (d : D.t) (name : string) (it : D.item) : bool =
  match it with
  | D.Routine r -> r.P.ro_name = name || D.routine_full_name d r = name
  | D.Class c -> c.P.cl_name = name || D.class_full_name d c = name
  | it -> D.item_name d it = name

(* ------------------------------------------------------------------ *)
(* Reply envelopes                                                     *)
(* ------------------------------------------------------------------ *)

exception Bad_args of string

let ok_reply ~id ~gen fields =
  J.Obj ([ ("id", id); ("ok", J.Bool true); ("gen", num gen) ] @ fields)

let error_reply ~id ~gen code msg =
  J.Obj
    [ ("id", id); ("ok", J.Bool false); ("gen", num gen);
      ("error", J.Obj [ ("code", J.Str code); ("message", J.Str msg) ]) ]

let require_kind req =
  match str_arg req "kind" with
  | Some k when List.mem k kinds -> k
  | Some k -> raise (Bad_args (Printf.sprintf "unknown kind %S" k))
  | None -> raise (Bad_args "missing \"kind\"")

let require_id req =
  match int_arg req "id" with
  | Some i -> i
  | None -> raise (Bad_args "missing or non-integer \"id\"")

let require_routine d req =
  let id = require_id req in
  match D.routine d id with
  | Some r -> r
  | None -> raise (Bad_args (Printf.sprintf "no routine ro#%d" id))

(* ------------------------------------------------------------------ *)
(* Verb handlers (each works on ONE snap, never re-reads the cell)     *)
(* ------------------------------------------------------------------ *)

let plural = function "class" -> "classes" | k -> k ^ "s"

let counts_json (d : D.t) : J.t =
  J.Obj
    (List.map
       (fun k ->
         (plural k,
          num (List.length (Option.get (items_of_kind d k)))))
       kinds)

let do_info (s : Snapshot.snap) =
  let pdb = D.pdb s.dt in
  [ ("label", J.Str s.label);
    ("format", J.Str s.format);
    ("mmap", J.Bool s.mmap);
    ("version", J.Str pdb.P.version);
    ("incomplete", J.Bool pdb.P.incomplete);
    ("diags", num pdb.P.diag_count);
    ("counts", counts_json s.dt);
    ("items", num (P.item_count pdb)) ]

let do_hello (s : Snapshot.snap) req =
  (match int_arg req "protocol" with
   | Some v when v <> protocol_version ->
       raise
         (Bad_args
            (Printf.sprintf "protocol %d not supported (server speaks %d)" v
               protocol_version))
   | _ -> ());
  [ ("server", J.Str "pdbd");
    ("protocol", num protocol_version);
    ("verbs", J.List (List.map (fun v -> J.Str v) verbs));
    ("pdb",
     J.Obj
       [ ("label", J.Str s.label); ("format", J.Str s.format);
         ("counts", counts_json s.dt) ]) ]

let do_list (s : Snapshot.snap) req =
  let kind = require_kind req in
  let items = Option.get (items_of_kind s.dt kind) in
  let total = List.length items in
  let offset = Option.value ~default:0 (int_arg req "offset") in
  let limit = Option.value ~default:total (int_arg req "limit") in
  if offset < 0 || limit < 0 then raise (Bad_args "negative offset/limit");
  let page =
    items
    |> List.filteri (fun i _ -> i >= offset && i < offset + limit)
    |> List.map (summary s.dt)
  in
  [ ("kind", J.Str kind); ("total", num total); ("items", J.List page) ]

let do_find (s : Snapshot.snap) req =
  let kind = require_kind req in
  let name =
    match str_arg req "name" with
    | Some n -> n
    | None -> raise (Bad_args "missing \"name\"")
  in
  let matches =
    List.filter (item_matches s.dt name) (Option.get (items_of_kind s.dt kind))
  in
  [ ("kind", J.Str kind); ("name", J.Str name);
    ("matches", J.List (List.map (summary s.dt) matches)) ]

let do_item (s : Snapshot.snap) req =
  let kind = require_kind req in
  let id = require_id req in
  match item_of_kind_id s.dt kind id with
  | Some it -> [ ("item", detail s.dt it) ]
  | None -> raise (Bad_args (Printf.sprintf "no %s with id %d" kind id))

let do_callees (s : Snapshot.snap) req =
  let r = require_routine s.dt req in
  [ ("routine", routine_summary s.dt r);
    ("callees",
     J.List
       (List.map
          (fun ((c : P.call), callee) ->
            J.Obj
              [ ("routine", routine_summary s.dt callee);
                ("virtual", J.Bool c.P.c_virt);
                ("loc", loc_json s.dt c.P.c_loc) ])
          (D.callees s.dt r))) ]

let do_callers (s : Snapshot.snap) req =
  let r = require_routine s.dt req in
  [ ("routine", routine_summary s.dt r);
    ("callers", J.List (List.map (routine_summary s.dt) (D.callers s.dt r))) ]

(** Breadth-first slice of the call graph: nodes and edges reachable from
    [root] in at most [depth] hops, cycles cut by the visited set. *)
let do_callgraph (s : Snapshot.snap) req =
  let d = s.dt in
  let root =
    match (int_arg req "root", str_arg req "root") with
    | Some id, _ -> D.routine d id
    | None, Some name ->
        List.find_opt
          (fun (r : P.routine_item) ->
            r.P.ro_name = name || D.routine_full_name d r = name)
          (D.routines d)
    | None, None ->
        List.find_opt (fun (r : P.routine_item) -> r.P.ro_name = "main")
          (D.routines d)
  in
  match root with
  | None -> raise (Bad_args "no such root routine")
  | Some root ->
      let depth = Option.value ~default:2 (int_arg req "depth") in
      if depth < 0 then raise (Bad_args "negative depth");
      let visited = Hashtbl.create 64 in
      let nodes = ref [] and edges = ref [] in
      let rec go (r : P.routine_item) k =
        if not (Hashtbl.mem visited r.P.ro_id) then begin
          Hashtbl.replace visited r.P.ro_id ();
          nodes := r :: !nodes;
          if k > 0 then
            List.iter
              (fun ((c : P.call), callee) ->
                edges := (r.P.ro_id, callee, c.P.c_virt) :: !edges;
                go callee (k - 1))
              (D.callees d r)
        end
      in
      go root depth;
      [ ("root", num root.P.ro_id);
        ("depth", num depth);
        ("nodes", J.List (List.rev_map (routine_summary d) !nodes));
        ("edges",
         J.List
           (List.rev_map
              (fun (from, (callee : P.routine_item), virt) ->
                J.Obj
                  [ ("from", num from); ("to", num callee.P.ro_id);
                    ("virtual", J.Bool virt) ])
              !edges)) ]

let do_instantiations (s : Snapshot.snap) req =
  let id = require_id req in
  match D.template s.dt id with
  | None -> raise (Bad_args (Printf.sprintf "no template te#%d" id))
  | Some te ->
      [ ("template", summary s.dt (D.Template te));
        ("instantiations",
         J.List (List.map (summary s.dt) (D.instantiations s.dt te))) ]

let do_templateof (s : Snapshot.snap) req =
  let kind = require_kind req in
  let id = require_id req in
  match item_of_kind_id s.dt kind id with
  | None -> raise (Bad_args (Printf.sprintf "no %s with id %d" kind id))
  | Some it ->
      let te =
        Option.bind (D.item_template_of it) (fun tid ->
            Option.map (fun t -> summary s.dt (D.Template t)) (D.template s.dt tid))
      in
      [ ("item", summary s.dt it); ("template", Option.value ~default:J.Null te) ]

(* ---- define-use chain verbs (PDB >= 1.1 semantic attributes) ---- *)

let require_var (r : P.routine_item) req =
  match str_arg req "var" with
  | None -> raise (Bad_args "missing \"var\"")
  | Some name -> (
      match List.find_opt (fun (v : P.du_var) -> v.P.v_name = name) r.P.ro_du with
      | Some v -> v
      | None ->
          raise
            (Bad_args
               (Printf.sprintf "no define-use data for %S in ro#%d" name r.P.ro_id)))

let du_use_json (d : D.t) (u : P.du_use) : J.t =
  J.Obj
    [ ("loc", loc_json d u.P.u_loc);
      ("reach", J.List (List.map num u.P.u_reach));
      ("uninit", J.Bool u.P.u_uninit) ]

let du_def_json (d : D.t) i (l : P.loc) : J.t =
  J.Obj [ ("index", num i); ("loc", loc_json d l) ]

let do_defs (s : Snapshot.snap) req =
  let r = require_routine s.dt req in
  let v = require_var r req in
  [ ("routine", routine_summary s.dt r);
    ("var", J.Str v.P.v_name);
    ("defs", J.List (List.mapi (du_def_json s.dt) v.P.v_defs));
    ("text", J.Str (Pdt_tools.Duct.defs_text s.dt r v)) ]

let do_uses (s : Snapshot.snap) req =
  let r = require_routine s.dt req in
  let v = require_var r req in
  [ ("routine", routine_summary s.dt r);
    ("var", J.Str v.P.v_name);
    ("uses", J.List (List.map (du_use_json s.dt) v.P.v_uses));
    ("text", J.Str (Pdt_tools.Duct.uses_text s.dt r v)) ]

let do_duchain (s : Snapshot.snap) req =
  let r = require_routine s.dt req in
  let v = require_var r req in
  [ ("routine", routine_summary s.dt r);
    ("var", J.Str v.P.v_name);
    ("chains",
     J.List
       (List.mapi
          (fun i l ->
            J.Obj
              [ ("def", du_def_json s.dt i l);
                ("uses",
                 J.List (List.map (du_use_json s.dt) (Pdt_tools.Duct.uses_of_def v i))) ])
          v.P.v_defs));
    ("uninit_uses",
     J.List
       (List.filter_map
          (fun (u : P.du_use) ->
            if u.P.u_uninit then Some (loc_json s.dt u.P.u_loc) else None)
          v.P.v_uses));
    ("text", J.Str (Pdt_tools.Duct.chain_text s.dt r v)) ]

let do_tree (s : Snapshot.snap) req =
  let which =
    match str_arg req "which" with
    | Some "include" -> `Include
    | Some "class" -> `Class
    | Some "call" -> `Call
    | Some w -> raise (Bad_args (Printf.sprintf "unknown tree %S" w))
    | None -> raise (Bad_args "missing \"which\" (include|class|call)")
  in
  let root =
    Option.bind (str_arg req "root") (fun name ->
        List.find_opt (fun (r : P.routine_item) -> r.P.ro_name = name)
          (D.routines s.dt))
  in
  [ ("which", J.Str (Option.get (str_arg req "which")));
    ("text", J.Str (Pdt_tools.Pdbtree.tree ~which ?root s.dt)) ]

let do_stats (s : Snapshot.snap) req =
  let sum = Pdt_tools.Pdbstats.summary s.dt in
  let fields = Pdt_tools.Pdbstats.summary_fields sum in
  let base =
    [ ("summary", J.Obj (List.map (fun (k, v) -> (k, num v)) fields)) ]
  in
  if bool_arg req "render" = Some true then
    base @ [ ("text", J.Str (Pdt_tools.Pdbstats.report s.dt)) ]
  else base

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

type disposition = Continue | Shutdown

(** Evaluate one parsed request against the holder.  Exactly one
    [Snapshot.current] read happens here; [reload] is the only verb that
    touches the cell again (through {!Snapshot.reload}'s mutex). *)
let handle_request (holder : Snapshot.t) (req : J.t) : J.t * disposition =
  let id = Option.value ~default:J.Null (J.member "id" req) in
  let snap = Snapshot.current holder in
  let gen = snap.Snapshot.gen in
  match J.member "verb" req with
  | None | Some (J.Null) ->
      (error_reply ~id ~gen "bad-request" "missing \"verb\"", Continue)
  | Some (J.Str verb) -> (
      let run fields = ok_reply ~id ~gen fields in
      try
        Pdt_util.Trace.timed ~cat:"serve" "serve.query"
          ~args:[ ("verb", Pdt_util.Trace.Str verb) ]
        @@ fun () ->
        match verb with
        | "hello" -> (run (do_hello snap req), Continue)
        | "ping" -> (run [ ("pong", J.Bool true) ], Continue)
        | "info" -> (run (do_info snap), Continue)
        | "list" -> (run (do_list snap req), Continue)
        | "find" -> (run (do_find snap req), Continue)
        | "item" -> (run (do_item snap req), Continue)
        | "callees" -> (run (do_callees snap req), Continue)
        | "callers" -> (run (do_callers snap req), Continue)
        | "callgraph" -> (run (do_callgraph snap req), Continue)
        | "instantiations" -> (run (do_instantiations snap req), Continue)
        | "templateof" -> (run (do_templateof snap req), Continue)
        | "defs" -> (run (do_defs snap req), Continue)
        | "uses" -> (run (do_uses snap req), Continue)
        | "duchain" -> (run (do_duchain snap req), Continue)
        | "tree" -> (run (do_tree snap req), Continue)
        | "stats" -> (run (do_stats snap req), Continue)
        | "shutdown" -> (run [ ("stopping", J.Bool true) ], Shutdown)
        | "reload" -> (
            match Snapshot.reload holder with
            | Ok (next, stats) ->
                ( ok_reply ~id ~gen:next.Snapshot.gen
                    [ ("reloaded", J.Bool true);
                      ("previous", num gen);
                      ("reanalyzed", num stats.Snapshot.reanalyzed);
                      ("reused", num stats.Snapshot.reused) ],
                  Continue )
            | Error msg ->
                (error_reply ~id ~gen "reload-failed" msg, Continue))
        | verb ->
            ( error_reply ~id ~gen "unknown-verb"
                (Printf.sprintf "unknown verb %S" verb),
              Continue )
      with
      | Bad_args msg -> (error_reply ~id ~gen "bad-args" msg, Continue)
      | e ->
          (* the last-resort net: a handler bug must degrade to a
             structured reply, never to a dropped daemon *)
          ( error_reply ~id ~gen "internal"
              (verb ^ ": " ^ Printexc.to_string e),
            Continue ))
  | Some _ ->
      (error_reply ~id ~gen "bad-request" "\"verb\" must be a string", Continue)

(** Decode, dispatch, and render one protocol line.  Total: any input
    byte string gets a one-line JSON reply. *)
let handle_line (holder : Snapshot.t) (line : string) : string * disposition =
  let reply, disp =
    match
      Pdt_util.Trace.timed ~cat:"serve" "serve.parse" @@ fun () ->
      J.parse line
    with
    | Error msg ->
        let gen = (Snapshot.current holder).Snapshot.gen in
        (error_reply ~id:J.Null ~gen "bad-json" msg, Continue)
    | Ok (J.Obj _ as req) -> handle_request holder req
    | Ok _ ->
        let gen = (Snapshot.current holder).Snapshot.gen in
        (error_reply ~id:J.Null ~gen "bad-request" "request must be a JSON object",
         Continue)
  in
  (J.to_string reply, disp)
