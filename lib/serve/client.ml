(** A minimal scripted pdbd client: one Unix-socket connection, one
    request line out, one reply line back.  Shared by the conformance and
    stress tests and by [workloadgen]'s load generator, so every harness
    speaks the protocol through the same few lines of code. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
}

let connect_once (socket_path : string) : t =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX socket_path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

(** Connect with a bounded retry-with-backoff loop.  A daemon that is
    still binding its socket (or restarting after a crash) surfaces as
    [ECONNREFUSED]/[ENOENT] for a moment; retrying those briefly makes
    every harness robust to startup races without hiding a daemon that is
    genuinely absent — after [tries] attempts (~2.5 s at the defaults)
    the last error propagates unchanged.  Other errors never retry. *)
let connect ?(tries = 8) ?(backoff = 0.02) (socket_path : string) : t =
  let rec go attempt delay =
    match connect_once socket_path with
    | c -> c
    | exception
        (Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) as e) ->
        if attempt >= tries then raise e
        else begin
          ignore (Unix.select [] [] [] delay);
          go (attempt + 1) (Float.min (delay *. 2.0) 0.8)
        end
  in
  go 1 backoff

let send_line (c : t) (line : string) : unit =
  let payload = line ^ "\n" in
  let n = String.length payload in
  let rec go off =
    if off < n then go (off + Unix.write_substring c.fd payload off (n - off))
  in
  go 0

(** Next reply line; [None] on EOF (server dropped the connection). *)
let recv_line (c : t) : string option =
  match input_line c.ic with
  | line -> Some line
  | exception End_of_file -> None

(** One round trip. *)
let request (c : t) (line : string) : string option =
  send_line c line;
  recv_line c

(** Round trip with a parsed request/reply. *)
let request_json (c : t) (req : Pdt_util.Json.t) : Pdt_util.Json.t option =
  match request c (Pdt_util.Json.to_string req) with
  | None -> None
  | Some reply -> (
      match Pdt_util.Json.parse reply with
      | Ok j -> Some j
      | Error _ -> None)

let close (c : t) : unit =
  (* ic wraps fd; close the fd once, ignore the wrapper *)
  try Unix.close c.fd with Unix.Unix_error _ -> ()
