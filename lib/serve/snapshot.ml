(** Immutable, atomically swappable program-database snapshots — the
    state model behind pdbd (ROADMAP item 1).

    A snapshot is a fully indexed {!Pdt_ductape.Ductape.t}: every hash
    table inside it is built at [index] time and never mutated afterwards,
    so any number of worker domains can read one snapshot concurrently
    without a lock.  The live snapshot sits in an [Atomic.t] cell; a
    reload builds the replacement off to the side and publishes it with a
    single [Atomic.set].  Requests grab the cell {e once} at dispatch
    time, which is the whole snapshot-isolation story: an in-flight query
    keeps the generation it started with, no matter how many swaps land
    while it runs, and a reply can never mix data from two generations.

    Reloads are serialized by a mutex (concurrent [reload] requests
    queue; each still gets its own generation).  A reload that fails —
    injected fault, vanished file, malformed container — leaves the old
    snapshot in place and reports the error; the daemon keeps answering
    from the generation it already has. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape
module I = Pdt_build.Incremental

(** Where the PDB comes from, and what [reload] means for it. *)
type source =
  | Pdb_file of string
      (** A merged PDB on disk (either container).  Reload re-reads the
          file — the producer is some external [pdbbuild]. *)
  | Project of {
      vfs : Pdt_util.Vfs.t;
      sources : string list;
      options : I.options;
    }
      (** A project served from its sources.  Reload runs the
          [pdbbuild --incremental] machinery ({!Pdt_build.Incremental},
          which splices through [Ductape.Delta]): unchanged dependency
          fingerprints are reused, so an edit-free reload touches
          nothing and an edit rebuilds only its cone. *)
  | In_memory of { label : string; produce : int -> P.t }
      (** Test harness source: [produce gen] builds generation [gen]'s
          PDB.  Lets the stress suite serve two distinguishable versions
          and prove no reply ever straddles a swap. *)

type reload_stats = {
  reanalyzed : int;  (** units recompiled (project sources only) *)
  reused : int;      (** units served by fingerprint/cache *)
}

type snap = {
  gen : int;          (** 1 for the initial load, +1 per reload *)
  dt : D.t;
  label : string;     (** what to call the database in replies *)
  format : string;    (** "ascii" | "binary" | "project" | "memory" *)
  mmap : bool;        (** binary container loaded through Pdb_bin.View *)
}

type t = {
  source : source;
  cell : snap Atomic.t;
  reload_mutex : Mutex.t;
}

let no_stats = { reanalyzed = 0; reused = 0 }

(* Load one generation from the source.  Any exception is the caller's
   problem: [load] propagates it (a daemon that cannot load its first
   snapshot should die loudly), [reload] turns it into [Error]. *)
let load_gen (source : source) (gen : int) : snap * reload_stats =
  Pdt_util.Trace.span ~cat:"serve" "serve.load"
    ~args:[ ("gen", Pdt_util.Trace.Int gen) ]
  @@ fun () ->
  match source with
  | Pdb_file path ->
      let fmt = Pdt_pdb.Pdb_io.sniff_file path in
      let pdb, mmap =
        match fmt with
        | Pdt_pdb.Pdb_io.Binary ->
            (* zero-copy open: mmap + validate + id index, then decode
               into the navigable model the query verbs need *)
            (Pdt_pdb.Pdb_bin.View.to_pdb (Pdt_pdb.Pdb_bin.View.of_file path), true)
        | Pdt_pdb.Pdb_io.Ascii -> (Pdt_pdb.Pdb_parse.of_file path, false)
      in
      ( { gen; dt = D.index pdb; label = path;
          format = Pdt_pdb.Pdb_io.format_name fmt; mmap },
        no_stats )
  | Project { vfs; sources; options } ->
      let r = I.build ~options ~vfs sources in
      ( { gen; dt = D.index r.I.merged;
          label = Printf.sprintf "project (%d units)" (List.length sources);
          format = "project"; mmap = false },
        { reanalyzed = r.I.reanalyzed; reused = r.I.reused } )
  | In_memory { label; produce } ->
      ({ gen; dt = D.index (produce gen); label; format = "memory"; mmap = false },
       no_stats)

let load (source : source) : t =
  let snap, _ = load_gen source 1 in
  { source; cell = Atomic.make snap; reload_mutex = Mutex.create () }

(** The live snapshot.  Callers must read this {e once} per request and
    use the returned value throughout — re-reading mid-request is how
    isolation would break. *)
let current (t : t) : snap = Atomic.get t.cell

let reload (t : t) : (snap * reload_stats, string) result =
  Mutex.lock t.reload_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reload_mutex) @@ fun () ->
  let next_gen = (Atomic.get t.cell).gen + 1 in
  Pdt_util.Trace.span ~cat:"serve" "serve.reload"
    ~args:[ ("gen", Pdt_util.Trace.Int next_gen) ]
  @@ fun () ->
  match
    Pdt_util.Fault.check "serve.reload";
    load_gen t.source next_gen
  with
  | snap, stats ->
      (* the one and only publication point: in-flight queries keep the
         snap value they already fetched; new requests see this one *)
      Atomic.set t.cell snap;
      Ok (snap, stats)
  | exception e ->
      let msg =
        match e with
        | Pdt_pdb.Pdb_parse.Parse_error (line, m) ->
            Printf.sprintf "PDB parse error at line %d: %s" line m
        | Pdt_pdb.Pdb_bin.Format_error m -> "PDB-B format error: " ^ m
        | Sys_error m -> m
        | Pdt_util.Fault.Injected site -> "injected fault at " ^ site
        | e -> Printexc.to_string e
      in
      Error msg
