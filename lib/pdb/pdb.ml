(** The program database (PDB) data model.

    A PDB is the compact, portable ASCII artifact the IL Analyzer produces
    (paper §3.2, Table 1, Figure 3).  It is self-contained: all references
    between items use item ids ([so#]/[ro#]/[cl#]/[ty#]/[te#]/[na#]/[ma#]).
    This module defines the in-memory representation; {!Pdb_write} and
    {!Pdb_parse} serialize it.  DUCTAPE ([pdt_ductape]) layers the navigable
    object API on top. *)

type loc = { lfile : int; lline : int; lcol : int }
(** A source position; [lfile] is a [so#] id, 0 meaning NULL. *)

let null_loc = { lfile = 0; lline = 0; lcol = 0 }

type extent = { hstart : loc; hstop : loc; bstart : loc; bstop : loc }
(** Header and body ranges, as in the [rpos]/[cpos]/[tpos] attributes. *)

let null_extent = { hstart = null_loc; hstop = null_loc; bstart = null_loc; bstop = null_loc }

(** Reference to a type: either a [ty#] item or directly a [cl#] item
    (Figure 3 shows [cmtype cl#63]). *)
type typeref = Tyref of int | Clref of int

(** Parent item of a nested entity. *)
type parentref = Pcl of int | Pna of int | Pnone

type source_file = {
  so_id : int;
  so_name : string;
  mutable so_includes : int list;
}

type ty_info =
  | Ybuiltin of { yikind : string }
  | Yptr of typeref
  | Yref of typeref
  | Ytref of { target : typeref; yconst : bool; yvolatile : bool }
  | Yarray of { elem : typeref; size : int option }
  | Yfunc of {
      rett : typeref;
      args : (typeref * bool) list;  (** type, has-default *)
      ellipsis : bool;
      cqual : bool;
      exceptions : typeref list option;
    }
  | Yenum of { constants : (string * int64) list }
  | Ytparam
  | Yerror

let ykind_string = function
  | Ybuiltin _ -> "builtin"
  | Yptr _ -> "ptr"
  | Yref _ -> "ref"
  | Ytref _ -> "tref"
  | Yarray _ -> "array"
  | Yfunc _ -> "func"
  | Yenum _ -> "enum"
  | Ytparam -> "tparam"
  | Yerror -> "error"

type type_item = {
  ty_id : int;
  ty_name : string;
  mutable ty_loc : loc;
  mutable ty_parent : parentref;
  mutable ty_acs : string;
  mutable ty_info : ty_info;
  mutable ty_names : string list;  (** typedef aliases *)
}

type member = {
  m_name : string;
  m_loc : loc;
  m_acs : string;
  m_kind : string;    (** "var" *)
  m_type : typeref;
  m_static : bool;
  m_mutable : bool;
}

type class_item = {
  cl_id : int;
  cl_name : string;
  mutable cl_loc : loc;
  mutable cl_kind : string;  (** class | struct | union *)
  mutable cl_parent : parentref;
  mutable cl_acs : string;
  mutable cl_templ : int option;   (** te# it instantiates *)
  mutable cl_stempl : int option;  (** primary template of a specialization
                                       ("fixed"-mode remedy) *)
  mutable cl_bases : (string * bool * int) list;  (** access, virtual, cl# *)
  mutable cl_friends : [ `Cl of int | `Ro of int ] list;
  mutable cl_funcs : (int * loc) list;            (** ro#, position *)
  mutable cl_members : member list;
  mutable cl_pos : extent;
}

type call = { c_callee : int; c_virt : bool; c_loc : loc }

type spawn = { sp_callee : int; sp_loc : loc; sp_join : loc option }
(** A [spawn f(...)] site inside a routine body: the spawned routine, the
    spawn position, and — when a [join] statement post-dominates it at the
    same nesting depth — the join position.  [sp_join = None] means the
    thread is still live when the routine returns ("escaping" spawn). *)

type du_use = { u_loc : loc; u_reach : int list; u_uninit : bool }
(** One use of a variable: its position, the indices (into the owning
    {!du_var}'s [v_defs]) of the definitions that reach it, and whether an
    uninitialized path reaches it too. *)

type du_var = { v_name : string; v_defs : loc list; v_uses : du_use list }
(** Intra-routine define-use chains for one local variable (or parameter):
    every definition site in source order, every use with its reaching-def
    index set. *)

(* The [rduuse] reach spec: definition indices ascending, then a trailing
   "u" when an uninitialized path also reaches the use; "-" when empty.
   Shared by both ASCII parsers so their semantics cannot drift. *)
let du_spec_of_use (u : du_use) : string =
  let parts =
    List.map string_of_int u.u_reach @ if u.u_uninit then [ "u" ] else []
  in
  match parts with [] -> "-" | _ -> String.concat "," parts

let du_use_of_spec (s : string) : (int list * bool) option =
  if s = "-" then Some ([], false)
  else
    let parts = String.split_on_char ',' s in
    let rec go acc uninit = function
      | [] -> Some (List.rev acc, uninit)
      | "u" :: rest -> go acc true rest
      | p :: rest -> (
          match int_of_string_opt p with
          | Some n when n >= 0 -> go (n :: acc) uninit rest
          | _ -> None)
    in
    go [] false parts

type routine_item = {
  ro_id : int;
  ro_name : string;
  mutable ro_loc : loc;
  mutable ro_parent : parentref;
  mutable ro_acs : string;
  mutable ro_sig : typeref;
  mutable ro_link : string;
  mutable ro_store : string;
  mutable ro_virt : string;   (** no | virt | pure *)
  mutable ro_kind : string;   (** NA | ctor | dtor | conv | op *)
  mutable ro_static : bool;
  mutable ro_inline : bool;
  mutable ro_templ : int option;
  mutable ro_calls : call list;
  mutable ro_spawns : spawn list;
  mutable ro_du : du_var list;
  mutable ro_pos : extent;
  mutable ro_defined : bool;
}

type template_item = {
  te_id : int;
  te_name : string;
  mutable te_loc : loc;
  mutable te_parent : parentref;
  mutable te_acs : string;
  mutable te_kind : string;  (** class | func | memfunc | statmem | memclass *)
  mutable te_text : string;
  mutable te_pos : extent;
}

type itemref =
  | Rso of int | Rro of int | Rcl of int | Rty of int
  | Rte of int | Rna of int | Rma of int

type namespace_item = {
  na_id : int;
  na_name : string;
  mutable na_loc : loc;
  mutable na_parent : parentref;
  mutable na_members : itemref list;
  mutable na_alias : string option;
}

type macro_item = {
  ma_id : int;
  ma_name : string;
  mutable ma_kind : string;
  mutable ma_text : string;
  mutable ma_loc : loc;
}

type t = {
  mutable version : string;
  mutable incomplete : bool;
      (** degraded compilation: the producing front end recovered from
          errors, so declarations in damaged regions may be missing *)
  mutable diag_count : int;
      (** number of error/fatal diagnostics behind [incomplete] *)
  mutable files : source_file list;
  mutable types : type_item list;
  mutable classes : class_item list;
  mutable routines : routine_item list;
  mutable templates : template_item list;
  mutable namespaces : namespace_item list;
  mutable pdb_macros : macro_item list;
}

(* Version history: "1.0" = structure dump (entities, call edges,
   templates); "1.1" adds the semantic attributes rspawn / rdu / rdudef /
   rduuse.  Readers accept both; tools warn (and render nothing) when a
   "1.0" PDB is asked for semantic data. *)
let current_version = "1.1"

(** True when [t] predates the semantic attributes (define-use chains and
    spawn sites) — i.e. was produced by a "1.0" writer. *)
let lacks_semantics t = t.version = "1.0"

let create () =
  { version = current_version; incomplete = false; diag_count = 0;
    files = []; types = []; classes = []; routines = [];
    templates = []; namespaces = []; pdb_macros = [] }

(** Parse the content of a [<PDB ...>] header line (the text between
    "<PDB " and ">"): a version word, optionally followed by
    ["incomplete <diag-count>"].  Shared by both PDB parsers. *)
let set_header t content =
  match String.split_on_char ' ' content with
  | version :: "incomplete" :: rest ->
      t.version <- version;
      t.incomplete <- true;
      (match rest with
       | [n] -> (match int_of_string_opt n with
                 | Some k -> t.diag_count <- k
                 | None -> ())
       | _ -> ())
  | version :: _ -> t.version <- version
  | [] -> ()

(* lookup helpers (PDBs are small enough that lists are fine; DUCTAPE builds
   hash indexes for the heavy tools) *)

let find_file t id = List.find_opt (fun f -> f.so_id = id) t.files
let find_type t id = List.find_opt (fun x -> x.ty_id = id) t.types
let find_class t id = List.find_opt (fun x -> x.cl_id = id) t.classes
let find_routine t id = List.find_opt (fun x -> x.ro_id = id) t.routines
let find_template t id = List.find_opt (fun x -> x.te_id = id) t.templates
let find_namespace t id = List.find_opt (fun x -> x.na_id = id) t.namespaces
let find_macro t id = List.find_opt (fun x -> x.ma_id = id) t.pdb_macros

(** Total number of items, of any kind. *)
let item_count t =
  List.length t.files + List.length t.types + List.length t.classes
  + List.length t.routines + List.length t.templates + List.length t.namespaces
  + List.length t.pdb_macros

(** Resolve a type reference to a display name. *)
let rec typeref_name t = function
  | Clref id -> (
      match find_class t id with Some c -> c.cl_name | None -> "<class?>")
  | Tyref id -> (
      match find_type t id with
      | Some ty -> if ty.ty_name <> "" then ty.ty_name else derived_name t ty
      | None -> "<type?>")

and derived_name t (ty : type_item) =
  match ty.ty_info with
  | Ybuiltin _ -> ty.ty_name
  | Yptr r -> typeref_name t r ^ " *"
  | Yref r -> typeref_name t r ^ " &"
  | Ytref { target; yconst; yvolatile } ->
      (if yconst then "const " else "")
      ^ (if yvolatile then "volatile " else "")
      ^ typeref_name t target
  | Yarray { elem; size } -> (
      match size with
      | Some n -> Printf.sprintf "%s [%d]" (typeref_name t elem) n
      | None -> typeref_name t elem ^ " []")
  | Yfunc { rett; args; ellipsis; cqual; _ } ->
      Printf.sprintf "%s (%s%s)%s" (typeref_name t rett)
        (String.concat ", " (List.map (fun (r, _) -> typeref_name t r) args))
        (if ellipsis then (if args = [] then "..." else ", ...") else "")
        (if cqual then " const" else "")
  | Yenum _ | Ytparam | Yerror -> ty.ty_name

(** Fully qualified name of a routine or class through its parent chain. *)
let rec parent_prefix t = function
  | Pnone -> ""
  | Pcl id -> (
      match find_class t id with
      | Some c -> parent_prefix t c.cl_parent ^ c.cl_name ^ "::"
      | None -> "")
  | Pna id -> (
      match find_namespace t id with
      | Some n -> parent_prefix t n.na_parent ^ n.na_name ^ "::"
      | None -> "")

let routine_full_name t (r : routine_item) = parent_prefix t r.ro_parent ^ r.ro_name
let class_full_name t (c : class_item) = parent_prefix t c.cl_parent ^ c.cl_name
