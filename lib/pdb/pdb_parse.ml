(** PDB deserialization: parses the ASCII format written by {!Pdb_write}.

    This is a single-pass cursor parser: it walks the raw source string
    once, tracking a position and a line number, and builds items in place
    as their attribute lines stream by.  Compared to the reference parser
    ({!Pdb_parse_ref}, the original implementation) it allocates no line
    list, no per-line trimmed copies and no intermediate block structures;
    item names and enumerated attribute values are routed through the
    global {!Pdt_util.Intern} pool so the many repeats across a project's
    PDBs are physically shared.

    Compatibility: the parse result is structurally identical to the
    reference parser's, and [Parse_error] line numbers match it, including
    its two-pass error ordering — the reference parser validates structure
    (item-id syntax, attributes inside blocks) over the whole file before
    it interprets any attribute, so a structural error on a late line wins
    over a semantic error on an early one.  This parser emulates that by
    deferring the first semantic error and continuing in a structure-only
    scan; tests in [test_pdb.ml] pin the behavior against the reference. *)

open Pdb

exception Parse_error of int * string
(** line number, message *)

(* A semantic ("pass 2") error, deferred so that structural ("pass 1")
   errors further down the file keep winning, as in the reference parser. *)
exception Pass2 of exn

let fail lineno fmt = Printf.ksprintf (fun m -> raise (Parse_error (lineno, m))) fmt
let fail2 lineno fmt = Printf.ksprintf (fun m -> raise (Pass2 (Parse_error (lineno, m)))) fmt

let sub src s e = String.sub src s (e - s)

let is_digit c = c >= '0' && c <= '9'

(* Digits-only value of src[s,e): -1 when empty, over-long (possible
   overflow) or any non-digit.  The callers fall back to the general
   (allocating) [int_of_sub] path on -1, so values this rejects still
   parse exactly as int_of_string would. *)
let digits src s e =
  if s >= e || e - s > 18 then -1
  else begin
    let rec go i acc =
      if i >= e then acc
      else
        let c = String.unsafe_get src i in
        if is_digit c then go (i + 1) ((acc * 10) + (Char.code c - 48)) else -1
    in
    go s 0
  end

(* int_of_string_opt over src[s,e), without allocating in the all-digit
   case; the fallback keeps the exotic forms int_of_string accepts
   (sign, 0x/0o/0b, underscores). *)
let int_of_sub src s e =
  match digits src s e with
  | -1 -> if s >= e then None else int_of_string_opt (sub src s e)
  | n -> Some n

(* does src[s,e) equal lit? *)
let word_is src s e lit =
  let n = String.length lit in
  e - s = n
  && (let rec go i =
        i >= n || (String.unsafe_get src (s + i) = String.unsafe_get lit i && go (i + 1))
      in
      go 0)

(* split "so#12" at src[s,e) into the '#' position and the numeric id.
   [structural] selects immediate vs deferred failure (header lines are
   validated structurally; ids inside attribute values are semantic). *)
let split_id_at ~structural src lineno s e =
  let bad () =
    let m = Printf.sprintf "malformed item id '%s'" (sub src s e) in
    if structural then raise (Parse_error (lineno, m))
    else raise (Pass2 (Parse_error (lineno, m)))
  in
  let rec hash i =
    if i >= e then -1 else if String.unsafe_get src i = '#' then i else hash (i + 1)
  in
  match hash s with
  | -1 -> bad ()
  | h -> (
      match int_of_sub src (h + 1) e with
      | Some n -> (h, n)
      | None -> bad ())

(* The reference fast path: a two-letter prefix, '#', then plain digits —
   the only shape the writer emits.  Returns -1 when the slice doesn't
   match [pq#<digits>], sending the caller to the general path (which
   also produces the errors). *)
let ref_fast src s e p q =
  if
    e - s > 3
    && String.unsafe_get src s = p
    && String.unsafe_get src (s + 1) = q
    && String.unsafe_get src (s + 2) = '#'
  then digits src (s + 3) e
  else -1

let parse_typeref src ln s e =
  match ref_fast src s e 't' 'y' with
  | -1 -> (
      match ref_fast src s e 'c' 'l' with
      | -1 ->
          let h, n = split_id_at ~structural:false src ln s e in
          if word_is src s h "ty" then Tyref n
          else if word_is src s h "cl" then Clref n
          else fail2 ln "expected type reference, got '%s#'" (sub src s h)
      | n -> Clref n)
  | n -> Tyref n

let parse_parentref src ln s e =
  match ref_fast src s e 'c' 'l' with
  | -1 -> (
      match ref_fast src s e 'n' 'a' with
      | -1 ->
          let h, n = split_id_at ~structural:false src ln s e in
          if word_is src s h "cl" then Pcl n
          else if word_is src s h "na" then Pna n
          else fail2 ln "expected parent reference, got '%s#'" (sub src s h)
      | n -> Pna n)
  | n -> Pcl n

let parse_itemref src ln s e =
  let h, n = split_id_at ~structural:false src ln s e in
  if word_is src s h "so" then Rso n
  else if word_is src s h "ro" then Rro n
  else if word_is src s h "cl" then Rcl n
  else if word_is src s h "ty" then Rty n
  else if word_is src s h "te" then Rte n
  else if word_is src s h "na" then Rna n
  else if word_is src s h "ma" then Rma n
  else fail2 ln "unknown item prefix '%s'" (sub src s h)

(* Space-separated fields of src[s,e), with String.split_on_char
   semantics: consecutive separators yield empty fields, and an empty
   region yields one empty field.  [next_field] reports the field bounds
   through the mutable [fs]/[fe] slots rather than an option so the
   per-field cost is zero allocations. *)
type fields = {
  fsrc : string;
  mutable fpos : int;
  flim : int;
  mutable fdone : bool;
  mutable fs : int;  (* start of the field just read *)
  mutable fe : int;  (* end of the field just read *)
}

let fields src s e = { fsrc = src; fpos = s; flim = e; fdone = false; fs = 0; fe = 0 }

let next_field f =
  if f.fdone then false
  else begin
    let s = f.fpos in
    let rec stop i =
      if i >= f.flim || String.unsafe_get f.fsrc i = ' ' then i else stop (i + 1)
    in
    let e = stop s in
    if e >= f.flim then f.fdone <- true else f.fpos <- e + 1;
    f.fs <- s;
    f.fe <- e;
    true
  end

(* A location from its three field ranges: "so#3 12 7" or "NULL 0 0".
   The fast path covers exactly what the writer emits — [so#<digits>] and
   two plain numbers — without allocating; anything else (negative or
   exotic integer spellings, malformed ids) drops to the general path,
   which also produces the errors. *)
let loc_slow src ln a a' b b' c c' =
  let h, fid = split_id_at ~structural:false src ln a a' in
  if word_is src a h "so" then
    match (int_of_sub src b b', int_of_sub src c c') with
    | Some l, Some col -> { lfile = fid; lline = l; lcol = col }
    | _ -> fail2 ln "malformed location"
  else fail2 ln "malformed location"

let loc_of_ranges src ln a a' b b' c c' =
  if word_is src a a' "NULL" then null_loc
  else
    let fid = ref_fast src a a' 's' 'o' in
    if fid >= 0 then begin
      let l = digits src b b' in
      let col = digits src c c' in
      if l >= 0 && col >= 0 then { lfile = fid; lline = l; lcol = col }
      else loc_slow src ln a a' b b' c c'
    end
    else loc_slow src ln a a' b b' c c'

(* "so#3 12 7" or "NULL 0 0" from a field stream: consumes exactly three
   fields; fewer is "truncated location". *)
let parse_loc_fields src ln fl =
  if not (next_field fl) then fail2 ln "truncated location";
  let a = fl.fs and a' = fl.fe in
  if not (next_field fl) then fail2 ln "truncated location";
  let b = fl.fs and b' = fl.fe in
  if not (next_field fl) then fail2 ln "truncated location";
  let c = fl.fs and c' = fl.fe in
  loc_of_ranges src ln a a' b b' c c'

(* Single-location attribute values (rloc, cloc, yloc, ...) are the most
   frequent value shape by far; this specialization scans the three fields
   directly, without a [fields] stream.  Trailing extra fields are ignored,
   as the stream version (and the reference parser) ignores them. *)
let parse_loc_value src ln s e =
  let rec stop i =
    if i >= e || String.unsafe_get src i = ' ' then i else stop (i + 1)
  in
  let a = s in
  let a' = stop a in
  if a' >= e then fail2 ln "truncated location";
  let b = a' + 1 in
  let b' = stop b in
  if b' >= e then fail2 ln "truncated location";
  let c = b' + 1 in
  let c' = stop c in
  loc_of_ranges src ln a a' b b' c c'

let parse_extent_value src ln s e =
  let fl = fields src s e in
  let hstart = parse_loc_fields src ln fl in
  let hstop = parse_loc_fields src ln fl in
  let bstart = parse_loc_fields src ln fl in
  let bstop = parse_loc_fields src ln fl in
  { hstart; hstop; bstart; bstop }

(* Accumulator for a ty item's kind-dependent attributes; ty_info is
   assembled when the block ends, as the reference parser does. *)
type ty_acc = {
  mutable a_kind : string;
  mutable a_ikind : string;
  mutable a_target : typeref;
  mutable a_const : bool;
  mutable a_vol : bool;
  mutable a_elem : typeref;
  mutable a_size : int option;
  mutable a_rett : typeref;
  mutable a_args : (typeref * bool) list;  (* reversed *)
  mutable a_ellip : bool;
  mutable a_excep : typeref list option;
  mutable a_cons : (string * int64) list;  (* reversed *)
  mutable a_names : string list;           (* reversed *)
}

(* The item under construction.  List-valued fields accumulate reversed
   (constant-time prepend) and are reversed once when the block ends. *)
type building =
  | Bso of source_file
  | Bna of namespace_item
  | Bte of template_item
  | Bro of routine_item * du_var option ref  (* the pending rdu variable *)
  | Bcl of class_item * member option ref  (* the pending cmem member *)
  | Bty of type_item * ty_acc
  | Bma of macro_item

let of_string (src : string) : t =
  (* injection site for parse-time corruption drills: raising (rather than
     mangling [src], which could yield a silently-wrong parse) keeps the
     fault visible as a transient the cache/build layers must absorb *)
  Pdt_util.Fault.check "pdb.parse";
  Pdt_util.Trace.timed ~cat:"pdb" "pdb.parse" @@ fun () ->
  (* canonical copy of src[s,e); allocation-free when already pooled *)
  let intern_sub s e = Pdt_util.Intern.intern_sub src s (e - s) in
  let len = String.length src in
  let t = create () in
  let files = ref [] and types = ref [] and classes = ref [] in
  let routines = ref [] and templates = ref [] and namespaces = ref [] in
  let macros = ref [] in
  let cur : building option ref = ref None in
  let deferred : exn option ref = ref None in
  (* once [deferred] is set we keep scanning structure only; [in_block]
     replaces [cur] as the attribute-placement state *)
  let in_block = ref false in
  let finalize () =
    (match !cur with
     | None -> ()
     | Some b ->
         (match b with
          | Bso f ->
              f.so_includes <- List.rev f.so_includes;
              files := f :: !files
          | Bna n ->
              n.na_members <- List.rev n.na_members;
              namespaces := n :: !namespaces
          | Bte te -> templates := te :: !templates
          | Bro (r, pv) ->
              (match !pv with
               | Some v ->
                   r.ro_du <-
                     { v with v_defs = List.rev v.v_defs;
                              v_uses = List.rev v.v_uses }
                     :: r.ro_du
               | None -> ());
              pv := None;
              r.ro_calls <- List.rev r.ro_calls;
              r.ro_spawns <- List.rev r.ro_spawns;
              r.ro_du <- List.rev r.ro_du;
              routines := r :: !routines
          | Bcl (c, pm) ->
              (match !pm with
               | Some m -> c.cl_members <- m :: c.cl_members
               | None -> ());
              pm := None;
              c.cl_bases <- List.rev c.cl_bases;
              c.cl_friends <- List.rev c.cl_friends;
              c.cl_funcs <- List.rev c.cl_funcs;
              c.cl_members <- List.rev c.cl_members;
              classes := c :: !classes
          | Bty (ty, a) ->
              ty.ty_info <-
                (match a.a_kind with
                 | "ptr" -> Yptr a.a_target
                 | "ref" -> Yref a.a_target
                 | "tref" ->
                     Ytref { target = a.a_target; yconst = a.a_const; yvolatile = a.a_vol }
                 | "array" -> Yarray { elem = a.a_elem; size = a.a_size }
                 | "func" ->
                     Yfunc { rett = a.a_rett; args = List.rev a.a_args;
                             ellipsis = a.a_ellip; cqual = a.a_const;
                             exceptions = a.a_excep }
                 | "enum" -> Yenum { constants = List.rev a.a_cons }
                 | "tparam" -> Ytparam
                 | "error" -> Yerror
                 | _ -> Ybuiltin { yikind = a.a_ikind });
              ty.ty_names <- List.rev a.a_names;
              types := ty :: !types
          | Bma m -> macros := m :: !macros);
         cur := None);
    in_block := false
  in
  (* one attribute line, dispatched against the current item.
     key = src[ks,ke), value = src[vs,ve).  For the high-volume kinds
     (ro/cl/ty) the key's second character narrows the linear [key]
     chain to one or two candidates; [key] still verifies the whole
     word, so near-misses fall through to [unknown] exactly as before. *)
  let attribute ln ks ke vs ve =
    let unknown what = fail2 ln "unknown %s attribute '%s'" what (sub src ks ke) in
    let key lit = word_is src ks ke lit in
    let c2 = if ke - ks >= 2 then String.unsafe_get src (ks + 1) else '\000' in
    match !cur with
    | None -> fail ln "attribute '%s' outside of an item block" (sub src ks ke)
    | Some (Bso f) ->
        if key "sinc" then begin
          let h, n = split_id_at ~structural:false src ln vs ve in
          if word_is src vs h "so" then f.so_includes <- n :: f.so_includes
          else fail2 ln "sinc expects so# reference"
        end
        else unknown "so"
    | Some (Bna n) ->
        if key "nloc" then n.na_loc <- parse_loc_value src ln vs ve
        else if key "nparent" then n.na_parent <- parse_parentref src ln vs ve
        else if key "nmem" then n.na_members <- parse_itemref src ln vs ve :: n.na_members
        else if key "nalias" then n.na_alias <- Some (intern_sub vs ve)
        else unknown "na"
    | Some (Bte te) ->
        if key "tloc" then te.te_loc <- parse_loc_value src ln vs ve
        else if key "tparent" then te.te_parent <- parse_parentref src ln vs ve
        else if key "tacs" then te.te_acs <- intern_sub vs ve
        else if key "tkind" then te.te_kind <- intern_sub vs ve
        else if key "ttext" then te.te_text <- Pdb_write.unescape_text (sub src vs ve)
        else if key "tpos" then te.te_pos <- parse_extent_value src ln vs ve
        else unknown "te"
    | Some (Bro (r, pv)) -> (
        match c2 with
        | 'l' ->
            if key "rloc" then r.ro_loc <- parse_loc_value src ln vs ve
            else if key "rlink" then r.ro_link <- intern_sub vs ve
            else unknown "ro"
        | 'c' ->
            if key "rclass" then r.ro_parent <- parse_parentref src ln vs ve
            else if key "rcall" then begin
              let fl = fields src vs ve in
              if not (next_field fl) then fail2 ln "malformed rcall";
              let a = fl.fs and a' = fl.fe in
              if not (next_field fl) then fail2 ln "malformed rcall";
              let b = fl.fs and b' = fl.fe in
              let h, callee = split_id_at ~structural:false src ln a a' in
              if word_is src a h "ro" then begin
                let l = parse_loc_fields src ln fl in
                r.ro_calls <-
                  { c_callee = callee; c_virt = word_is src b b' "virt"; c_loc = l }
                  :: r.ro_calls
              end
              else fail2 ln "rcall expects ro# reference"
            end
            else unknown "ro"
        | 'n' ->
            if key "rnspace" then r.ro_parent <- parse_parentref src ln vs ve
            else unknown "ro"
        | 'a' ->
            if key "racs" then r.ro_acs <- intern_sub vs ve else unknown "ro"
        | 's' ->
            if key "rsig" then r.ro_sig <- parse_typeref src ln vs ve
            else if key "rstore" then r.ro_store <- intern_sub vs ve
            else if key "rstatic" then r.ro_static <- true
            else if key "rspawn" then begin
              let fl = fields src vs ve in
              if not (next_field fl) then fail2 ln "malformed rspawn";
              let a = fl.fs and a' = fl.fe in
              let h, callee = split_id_at ~structural:false src ln a a' in
              if not (word_is src a h "ro") then
                fail2 ln "rspawn expects ro# reference";
              let l = parse_loc_fields src ln fl in
              if not (next_field fl) then fail2 ln "malformed rspawn";
              let j =
                if word_is src fl.fs fl.fe "joined" then
                  Some (parse_loc_fields src ln fl)
                else if word_is src fl.fs fl.fe "live" then None
                else fail2 ln "rspawn expects 'joined <loc>' or 'live'"
              in
              r.ro_spawns <-
                { sp_callee = callee; sp_loc = l; sp_join = j } :: r.ro_spawns
            end
            else unknown "ro"
        | 'v' ->
            if key "rvirt" then r.ro_virt <- intern_sub vs ve else unknown "ro"
        | 'k' ->
            if key "rkind" then r.ro_kind <- intern_sub vs ve else unknown "ro"
        | 'i' ->
            if key "rinline" then r.ro_inline <- true else unknown "ro"
        | 't' ->
            if key "rtempl" then begin
              let h, n = split_id_at ~structural:false src ln vs ve in
              if word_is src vs h "te" then r.ro_templ <- Some n
              else fail2 ln "rtempl expects te# reference"
            end
            else unknown "ro"
        | 'd' ->
            if key "rdef" then r.ro_defined <- true
            else if key "rdu" then begin
              (match !pv with
               | Some v ->
                   r.ro_du <-
                     { v with v_defs = List.rev v.v_defs;
                              v_uses = List.rev v.v_uses }
                     :: r.ro_du
               | None -> ());
              pv := Some { v_name = intern_sub vs ve; v_defs = []; v_uses = [] }
            end
            else if key "rdudef" || key "rduuse" then begin
              match !pv with
              | None -> fail2 ln "define-use attribute without rdu"
              | Some v ->
                  if key "rdudef" then
                    pv :=
                      Some { v with v_defs = parse_loc_value src ln vs ve :: v.v_defs }
                  else begin
                    let fl = fields src vs ve in
                    let l = parse_loc_fields src ln fl in
                    if not (next_field fl) then fail2 ln "malformed rduuse";
                    match du_use_of_spec (sub src fl.fs fl.fe) with
                    | None -> fail2 ln "malformed rduuse reach spec"
                    | Some (reach, uninit) ->
                        pv :=
                          Some
                            { v with
                              v_uses =
                                { u_loc = l; u_reach = reach; u_uninit = uninit }
                                :: v.v_uses }
                  end
            end
            else unknown "ro"
        | 'p' ->
            if key "rpos" then r.ro_pos <- parse_extent_value src ln vs ve
            else unknown "ro"
        | _ -> unknown "ro")
    | Some (Bcl (c, pm)) -> (
        match c2 with
        | 'l' ->
            if key "cloc" then c.cl_loc <- parse_loc_value src ln vs ve
            else unknown "cl"
        | 'k' ->
            if key "ckind" then c.cl_kind <- intern_sub vs ve else unknown "cl"
        | 'p' ->
            if key "cparent" then c.cl_parent <- parse_parentref src ln vs ve
            else if key "cpos" then c.cl_pos <- parse_extent_value src ln vs ve
            else unknown "cl"
        | 'a' ->
            if key "cacs" then c.cl_acs <- intern_sub vs ve else unknown "cl"
        | 't' ->
            if key "ctempl" then begin
              let h, n = split_id_at ~structural:false src ln vs ve in
              if word_is src vs h "te" then c.cl_templ <- Some n
              else fail2 ln "ctempl expects te# reference"
            end
            else unknown "cl"
        | 's' ->
            if key "cstempl" then begin
              let h, n = split_id_at ~structural:false src ln vs ve in
              if word_is src vs h "te" then c.cl_stempl <- Some n
              else fail2 ln "cstempl expects te# reference"
            end
            else unknown "cl"
        | 'b' ->
            if key "cbase" then begin
              let fl = fields src vs ve in
              if not (next_field fl) then fail2 ln "malformed cbase";
              let a = fl.fs and a' = fl.fe in
              if not (next_field fl) then fail2 ln "malformed cbase";
              let b = fl.fs and b' = fl.fe in
              if not (next_field fl) then fail2 ln "malformed cbase";
              let g = fl.fs and g' = fl.fe in
              if next_field fl then fail2 ln "malformed cbase";
              let h, base = split_id_at ~structural:false src ln g g' in
              if word_is src g h "cl" then
                c.cl_bases <-
                  (intern_sub a a', word_is src b b' "virt", base) :: c.cl_bases
              else fail2 ln "cbase expects cl# reference"
            end
            else unknown "cl"
        | 'f' ->
            if key "cfriend" then begin
              let h, n = split_id_at ~structural:false src ln vs ve in
              if word_is src vs h "cl" then c.cl_friends <- `Cl n :: c.cl_friends
              else if word_is src vs h "ro" then c.cl_friends <- `Ro n :: c.cl_friends
              else fail2 ln "cfriend expects cl# or ro#"
            end
            else if key "cfunc" then begin
              let fl = fields src vs ve in
              if not (next_field fl) then fail2 ln "malformed cfunc";
              let a = fl.fs and a' = fl.fe in
              let h, ro = split_id_at ~structural:false src ln a a' in
              if word_is src a h "ro" then begin
                let l = parse_loc_fields src ln fl in
                c.cl_funcs <- (ro, l) :: c.cl_funcs
              end
              else fail2 ln "cfunc expects ro# reference"
            end
            else unknown "cl"
        | 'm' ->
            if key "cmem" then begin
              (match !pm with
               | Some m -> c.cl_members <- m :: c.cl_members
               | None -> ());
              pm :=
                Some { m_name = intern_sub vs ve; m_loc = null_loc; m_acs = "NA";
                       m_kind = "var"; m_type = Tyref 0; m_static = false;
                       m_mutable = false }
            end
            else if key "cmloc" || key "cmacs" || key "cmkind" || key "cmtype"
                    || key "cmstatic" || key "cmmutable" then begin
              match !pm with
              | None -> fail2 ln "member attribute without cmem"
              | Some m ->
                  let m' =
                    if key "cmloc" then { m with m_loc = parse_loc_value src ln vs ve }
                    else if key "cmacs" then { m with m_acs = intern_sub vs ve }
                    else if key "cmkind" then { m with m_kind = intern_sub vs ve }
                    else if key "cmtype" then { m with m_type = parse_typeref src ln vs ve }
                    else if key "cmstatic" then { m with m_static = true }
                    else { m with m_mutable = true }
                  in
                  pm := Some m'
            end
            else unknown "cl"
        | _ -> unknown "cl")
    | Some (Bty (ty, a)) -> (
        match c2 with
        | 'l' ->
            if key "yloc" then ty.ty_loc <- parse_loc_value src ln vs ve
            else unknown "ty"
        | 'p' ->
            if key "yparent" then ty.ty_parent <- parse_parentref src ln vs ve
            else if key "yptr" then a.a_target <- parse_typeref src ln vs ve
            else unknown "ty"
        | 'a' ->
            if key "yacs" then ty.ty_acs <- intern_sub vs ve
            else if key "yargt" then begin
              let fl = fields src vs ve in
              if not (next_field fl) then fail2 ln "malformed yargt";
              let r = fl.fs and r' = fl.fe in
              if not (next_field fl) then
                a.a_args <- (parse_typeref src ln r r', false) :: a.a_args
              else begin
                let d = fl.fs and d' = fl.fe in
                if next_field fl then fail2 ln "malformed yargt";
                let tr = parse_typeref src ln r r' in
                a.a_args <- (tr, word_is src d d' "T") :: a.a_args
              end
            end
            else unknown "ty"
        | 'k' ->
            if key "ykind" then a.a_kind <- intern_sub vs ve else unknown "ty"
        | 'i' ->
            if key "yikind" then a.a_ikind <- intern_sub vs ve else unknown "ty"
        | 'r' ->
            if key "yref" then a.a_target <- parse_typeref src ln vs ve
            else if key "yrett" then a.a_rett <- parse_typeref src ln vs ve
            else unknown "ty"
        | 't' ->
            if key "ytref" then a.a_target <- parse_typeref src ln vs ve
            else unknown "ty"
        | 'q' ->
            if key "yqual" then begin
              if word_is src vs ve "const" then a.a_const <- true
              else if word_is src vs ve "volatile" then a.a_vol <- true
            end
            else unknown "ty"
        | 'e' ->
            if key "yelem" then a.a_elem <- parse_typeref src ln vs ve
            else if key "yellip" then a.a_ellip <- true
            else if key "yexcep" then begin
              let fl = fields src vs ve in
              let refs = ref [] in
              let rec go () =
                if next_field fl then begin
                  if fl.fe > fl.fs then
                    refs := parse_typeref src ln fl.fs fl.fe :: !refs;
                  go ()
                end
              in
              go ();
              a.a_excep <- Some (List.rev !refs)
            end
            else unknown "ty"
        | 's' ->
            if key "ysize" then a.a_size <- int_of_sub src vs ve
            else unknown "ty"
        | 'c' ->
            if key "ycon" then begin
              let fl = fields src vs ve in
              if not (next_field fl) then fail2 ln "malformed ycon";
              let n = fl.fs and n' = fl.fe in
              if not (next_field fl) then fail2 ln "malformed ycon";
              let v = fl.fs and v' = fl.fe in
              if next_field fl then fail2 ln "malformed ycon";
              let value =
                try Int64.of_string (sub src v v') with e -> raise (Pass2 e)
              in
              a.a_cons <- (intern_sub n n', value) :: a.a_cons
            end
            else unknown "ty"
        | 'n' ->
            if key "yname" then a.a_names <- intern_sub vs ve :: a.a_names
            else unknown "ty"
        | _ -> unknown "ty")
    | Some (Bma m) ->
        if key "makind" then m.ma_kind <- intern_sub vs ve
        else if key "matext" then m.ma_text <- Pdb_write.unescape_text (sub src vs ve)
        else if key "maloc" then m.ma_loc <- parse_loc_value src ln vs ve
        else unknown "ma"
  in
  (* a header line "prefix#id name": start building the new item *)
  let header ln hs he name_s name_e =
    let h, id = split_id_at ~structural:true src ln hs he in
    let nm = if name_s < name_e then intern_sub name_s name_e else "" in
    let b =
      if word_is src hs h "so" then Bso { so_id = id; so_name = nm; so_includes = [] }
      else if word_is src hs h "na" then
        Bna { na_id = id; na_name = nm; na_loc = null_loc; na_parent = Pnone;
              na_members = []; na_alias = None }
      else if word_is src hs h "te" then
        Bte { te_id = id; te_name = nm; te_loc = null_loc; te_parent = Pnone;
              te_acs = "NA"; te_kind = "class"; te_text = ""; te_pos = null_extent }
      else if word_is src hs h "ro" then
        Bro
          ({ ro_id = id; ro_name = nm; ro_loc = null_loc; ro_parent = Pnone;
             ro_acs = "NA"; ro_sig = Tyref 0; ro_link = "C++"; ro_store = "NA";
             ro_virt = "no"; ro_kind = "NA"; ro_static = false; ro_inline = false;
             ro_templ = None; ro_calls = []; ro_spawns = []; ro_du = [];
             ro_pos = null_extent; ro_defined = false },
           ref None)
      else if word_is src hs h "cl" then
        Bcl
          ({ cl_id = id; cl_name = nm; cl_loc = null_loc; cl_kind = "class";
             cl_parent = Pnone; cl_acs = "NA"; cl_templ = None; cl_stempl = None;
             cl_bases = []; cl_friends = []; cl_funcs = []; cl_members = [];
             cl_pos = null_extent },
           ref None)
      else if word_is src hs h "ty" then
        Bty
          ({ ty_id = id; ty_name = nm; ty_loc = null_loc; ty_parent = Pnone;
             ty_acs = "NA"; ty_info = Yerror; ty_names = [] },
           { a_kind = ""; a_ikind = ""; a_target = Tyref 0; a_const = false;
             a_vol = false; a_elem = Tyref 0; a_size = None; a_rett = Tyref 0;
             a_args = []; a_ellip = false; a_excep = None; a_cons = [];
             a_names = [] })
      else if word_is src hs h "ma" then
        Bma { ma_id = id; ma_name = nm; ma_kind = "def"; ma_text = "";
              ma_loc = null_loc }
      else fail2 ln "unknown item prefix '%s'" (sub src hs h)
    in
    cur := Some b;
    in_block := true
  in
  let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\012' in
  let pos = ref 0 and lineno = ref 0 in
  while !pos <= len do
    incr lineno;
    let ln = !lineno in
    let ls = !pos in
    let nl =
      (* index_from, not index_from_opt: memchr speed without the
         per-line [Some] allocation *)
      if ls >= len then len
      else
        match String.index_from src ls '\n' with
        | i -> i
        | exception Not_found -> len
    in
    pos := nl + 1;
    (* trim the line in place *)
    let s = ref ls and e = ref nl in
    while !s < !e && is_space (String.unsafe_get src !s) do incr s done;
    while !e > !s && is_space (String.unsafe_get src (!e - 1)) do decr e done;
    let s = !s and e = !e in
    if s >= e then finalize ()
    else if e - s > 5 && word_is src s (s + 5) "<PDB " then
      set_header t (sub src (s + 5) (e - 1))
    else begin
      (* key = up to the first space; value = the rest of the line *)
      let rec sp i = if i >= e || String.unsafe_get src i = ' ' then i else sp (i + 1) in
      let ke = sp s in
      let rec hash i =
        if i >= ke then -1 else if String.unsafe_get src i = '#' then i else hash (i + 1)
      in
      let is_header = hash s >= 0 in
      match !deferred with
      | Some _ ->
          (* structure-only continuation: validate ids and placement, as
             the reference parser's first pass does *)
          if is_header then begin
            ignore (split_id_at ~structural:true src ln s ke);
            in_block := true
          end
          else if not !in_block then
            fail ln "attribute '%s' outside of an item block" (sub src s ke)
      | None -> (
          try
            if is_header then begin
              finalize ();
              header ln s ke (if ke < e then ke + 1 else e) e
            end
            else begin
              let vs = if ke < e then ke + 1 else e in
              attribute ln s ke vs e
            end
          with Pass2 err ->
            deferred := Some err;
            cur := None;
            in_block := true)
    end
  done;
  (match !deferred with Some err -> raise err | None -> ());
  finalize ();
  t.files <- List.rev !files;
  t.types <- List.rev !types;
  t.classes <- List.rev !classes;
  t.routines <- List.rev !routines;
  t.templates <- List.rev !templates;
  t.namespaces <- List.rev !namespaces;
  t.pdb_macros <- List.rev !macros;
  t

let of_file path : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
