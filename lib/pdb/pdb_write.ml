(** PDB serialization: the compact ASCII format of Figure 3.

    Each item is a block: a first line [<prefix>#<id> <name>] followed by one
    attribute per line, and a blank line between items.  Multi-line text
    (template and macro bodies) is escaped.

    The emitters append to the output buffer directly — no [Printf] format
    interpretation and no intermediate strings on the per-line hot path.
    The [*_str] helpers remain for callers that want standalone fragments. *)

open Pdb

let escape_text s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string b "\\n"
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape_text s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 1 < n then begin
      (match s.[i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | '\\' -> Buffer.add_char b '\\'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
      go (i + 2)
    end
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

let add_int b n = Buffer.add_string b (string_of_int n)

let add_loc b (l : loc) =
  if l.lfile = 0 then Buffer.add_string b "NULL 0 0"
  else begin
    Buffer.add_string b "so#";
    add_int b l.lfile;
    Buffer.add_char b ' ';
    add_int b l.lline;
    Buffer.add_char b ' ';
    add_int b l.lcol
  end

let add_extent b (e : extent) =
  add_loc b e.hstart;
  Buffer.add_char b ' ';
  add_loc b e.hstop;
  Buffer.add_char b ' ';
  add_loc b e.bstart;
  Buffer.add_char b ' ';
  add_loc b e.bstop

let add_typeref b = function
  | Tyref id ->
      Buffer.add_string b "ty#";
      add_int b id
  | Clref id ->
      Buffer.add_string b "cl#";
      add_int b id

let add_itemref b r =
  let p, id =
    match r with
    | Rso id -> ("so#", id)
    | Rro id -> ("ro#", id)
    | Rcl id -> ("cl#", id)
    | Rty id -> ("ty#", id)
    | Rte id -> ("te#", id)
    | Rna id -> ("na#", id)
    | Rma id -> ("ma#", id)
  in
  Buffer.add_string b p;
  add_int b id

let in_buf n f =
  let b = Buffer.create n in
  f b;
  Buffer.contents b

let loc_str (l : loc) = in_buf 24 (fun b -> add_loc b l)
let extent_str (e : extent) = in_buf 96 (fun b -> add_extent b e)
let typeref_str r = in_buf 12 (fun b -> add_typeref b r)
let itemref_str r = in_buf 12 (fun b -> add_itemref b r)

let parent_str = function
  | Pcl id -> Some ("cl#" ^ string_of_int id)
  | Pna id -> Some ("na#" ^ string_of_int id)
  | Pnone -> None

let write_to_buffer (t : t) (b : Buffer.t) : unit =
  let str s = Buffer.add_string b s in
  let ch c = Buffer.add_char b c in
  let nl () = ch '\n' in
  (* "key value" for a string-valued attribute *)
  let kv k v = str k; ch ' '; str v; nl () in
  let kloc k l = str k; ch ' '; add_loc b l; nl () in
  let kextent k e = str k; ch ' '; add_extent b e; nl () in
  let ktyperef k r = str k; ch ' '; add_typeref b r; nl () in
  (* "key so#" ^ id — for attributes whose value is a single reference *)
  let kid k id = str k; add_int b id; nl () in
  let flag k = str k; nl () in
  let header prefix id name = str prefix; add_int b id; ch ' '; str name; nl () in
  let parent k = function
    | Pcl id -> str k; str " cl#"; add_int b id; nl ()
    | Pna id -> str k; str " na#"; add_int b id; nl ()
    | Pnone -> ()
  in
  str "<PDB ";
  str t.version;
  if t.incomplete then begin
    str " incomplete ";
    add_int b t.diag_count
  end;
  str ">\n";
  nl ();
  (* source files *)
  List.iter
    (fun f ->
      header "so#" f.so_id f.so_name;
      List.iter (fun i -> kid "sinc so#" i) f.so_includes;
      nl ())
    t.files;
  (* namespaces *)
  List.iter
    (fun n ->
      header "na#" n.na_id n.na_name;
      if n.na_loc <> null_loc then kloc "nloc" n.na_loc;
      parent "nparent" n.na_parent;
      List.iter (fun r -> str "nmem "; add_itemref b r; nl ()) n.na_members;
      Option.iter (fun a -> kv "nalias" a) n.na_alias;
      nl ())
    t.namespaces;
  (* templates *)
  List.iter
    (fun te ->
      header "te#" te.te_id te.te_name;
      if te.te_loc <> null_loc then kloc "tloc" te.te_loc;
      parent "tparent" te.te_parent;
      if te.te_acs <> "NA" then kv "tacs" te.te_acs;
      kv "tkind" te.te_kind;
      if te.te_text <> "" then kv "ttext" (escape_text te.te_text);
      if te.te_pos <> null_extent then kextent "tpos" te.te_pos;
      nl ())
    t.templates;
  (* routines *)
  List.iter
    (fun r ->
      header "ro#" r.ro_id r.ro_name;
      if r.ro_loc <> null_loc then kloc "rloc" r.ro_loc;
      (match r.ro_parent with
       | Pcl id -> kid "rclass cl#" id
       | Pna id -> kid "rnspace na#" id
       | Pnone -> ());
      if r.ro_acs <> "NA" then kv "racs" r.ro_acs;
      ktyperef "rsig" r.ro_sig;
      kv "rlink" r.ro_link;
      kv "rstore" r.ro_store;
      kv "rvirt" r.ro_virt;
      if r.ro_kind <> "NA" then kv "rkind" r.ro_kind;
      if r.ro_static then flag "rstatic";
      if r.ro_inline then flag "rinline";
      Option.iter (fun te -> kid "rtempl te#" te) r.ro_templ;
      List.iter
        (fun c ->
          str "rcall ro#";
          add_int b c.c_callee;
          str (if c.c_virt then " virt " else " no ");
          add_loc b c.c_loc;
          nl ())
        r.ro_calls;
      List.iter
        (fun s ->
          str "rspawn ro#";
          add_int b s.sp_callee;
          ch ' ';
          add_loc b s.sp_loc;
          (match s.sp_join with
           | Some j ->
               str " joined ";
               add_loc b j
           | None -> str " live");
          nl ())
        r.ro_spawns;
      List.iter
        (fun v ->
          kv "rdu" v.v_name;
          List.iter (fun l -> kloc "rdudef" l) v.v_defs;
          List.iter
            (fun u ->
              str "rduuse ";
              add_loc b u.u_loc;
              ch ' ';
              str (du_spec_of_use u);
              nl ())
            v.v_uses)
        r.ro_du;
      if r.ro_defined then flag "rdef";
      if r.ro_pos <> null_extent then kextent "rpos" r.ro_pos;
      nl ())
    t.routines;
  (* classes *)
  List.iter
    (fun c ->
      header "cl#" c.cl_id c.cl_name;
      if c.cl_loc <> null_loc then kloc "cloc" c.cl_loc;
      kv "ckind" c.cl_kind;
      parent "cparent" c.cl_parent;
      if c.cl_acs <> "NA" then kv "cacs" c.cl_acs;
      Option.iter (fun te -> kid "ctempl te#" te) c.cl_templ;
      Option.iter (fun te -> kid "cstempl te#" te) c.cl_stempl;
      List.iter
        (fun (acs, virt, base) ->
          str "cbase ";
          str acs;
          str (if virt then " virt cl#" else " no cl#");
          add_int b base;
          nl ())
        c.cl_bases;
      List.iter
        (function
          | `Cl id -> kid "cfriend cl#" id
          | `Ro id -> kid "cfriend ro#" id)
        c.cl_friends;
      List.iter
        (fun (ro, l) ->
          str "cfunc ro#";
          add_int b ro;
          ch ' ';
          add_loc b l;
          nl ())
        c.cl_funcs;
      List.iter
        (fun m ->
          kv "cmem" m.m_name;
          kloc "cmloc" m.m_loc;
          kv "cmacs" m.m_acs;
          kv "cmkind" m.m_kind;
          ktyperef "cmtype" m.m_type;
          if m.m_static then flag "cmstatic";
          if m.m_mutable then flag "cmmutable")
        c.cl_members;
      if c.cl_pos <> null_extent then kextent "cpos" c.cl_pos;
      nl ())
    t.classes;
  (* types *)
  List.iter
    (fun ty ->
      header "ty#" ty.ty_id ty.ty_name;
      if ty.ty_loc <> null_loc then kloc "yloc" ty.ty_loc;
      parent "yparent" ty.ty_parent;
      if ty.ty_acs <> "NA" then kv "yacs" ty.ty_acs;
      (match ty.ty_info with
       | Ybuiltin { yikind } ->
           kv "ykind" ty.ty_name;
           kv "yikind" yikind
       | Yptr r ->
           flag "ykind ptr";
           ktyperef "yptr" r
       | Yref r ->
           flag "ykind ref";
           ktyperef "yref" r
       | Ytref { target; yconst; yvolatile } ->
           flag "ykind tref";
           ktyperef "ytref" target;
           if yconst then flag "yqual const";
           if yvolatile then flag "yqual volatile"
       | Yarray { elem; size } ->
           flag "ykind array";
           ktyperef "yelem" elem;
           Option.iter (fun n -> str "ysize "; add_int b n; nl ()) size
       | Yfunc { rett; args; ellipsis; cqual; exceptions } ->
           flag "ykind func";
           ktyperef "yrett" rett;
           List.iter
             (fun (r, d) ->
               str "yargt ";
               add_typeref b r;
               str (if d then " T" else " F");
               nl ())
             args;
           if ellipsis then flag "yellip";
           if cqual then flag "yqual const";
           Option.iter
             (fun refs ->
               str "yexcep ";
               List.iteri
                 (fun i r ->
                   if i > 0 then ch ' ';
                   add_typeref b r)
                 refs;
               nl ())
             exceptions
       | Yenum { constants } ->
           flag "ykind enum";
           List.iter
             (fun (n, v) ->
               str "ycon ";
               str n;
               ch ' ';
               str (Int64.to_string v);
               nl ())
             constants
       | Ytparam -> flag "ykind tparam"
       | Yerror -> flag "ykind error");
      List.iter (fun n -> kv "yname" n) ty.ty_names;
      nl ())
    t.types;
  (* macros *)
  List.iter
    (fun m ->
      header "ma#" m.ma_id m.ma_name;
      kv "makind" m.ma_kind;
      if m.ma_text <> "" then kv "matext" (escape_text m.ma_text);
      if m.ma_loc <> null_loc then kloc "maloc" m.ma_loc;
      nl ())
    t.pdb_macros

let to_string (t : t) : string =
  Pdt_util.Trace.timed ~cat:"pdb" "pdb.write" @@ fun () ->
  let b = Buffer.create 65536 in
  write_to_buffer t b;
  Buffer.contents b

let to_file (t : t) path : unit =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
