(** PDB serialization: the compact ASCII format of Figure 3.

    Each item is a block: a first line [<prefix>#<id> <name>] followed by one
    attribute per line, and a blank line between items.  Multi-line text
    (template and macro bodies) is escaped. *)

open Pdb

let escape_text s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string b "\\n"
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape_text s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 1 < n then begin
      (match s.[i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | '\\' -> Buffer.add_char b '\\'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
      go (i + 2)
    end
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

let loc_str (l : loc) =
  if l.lfile = 0 then "NULL 0 0"
  else Printf.sprintf "so#%d %d %d" l.lfile l.lline l.lcol

let extent_str (e : extent) =
  Printf.sprintf "%s %s %s %s" (loc_str e.hstart) (loc_str e.hstop)
    (loc_str e.bstart) (loc_str e.bstop)

let typeref_str = function
  | Tyref id -> Printf.sprintf "ty#%d" id
  | Clref id -> Printf.sprintf "cl#%d" id

let parent_str = function
  | Pcl id -> Some (Printf.sprintf "cl#%d" id)
  | Pna id -> Some (Printf.sprintf "na#%d" id)
  | Pnone -> None

let itemref_str = function
  | Rso id -> Printf.sprintf "so#%d" id
  | Rro id -> Printf.sprintf "ro#%d" id
  | Rcl id -> Printf.sprintf "cl#%d" id
  | Rty id -> Printf.sprintf "ty#%d" id
  | Rte id -> Printf.sprintf "te#%d" id
  | Rna id -> Printf.sprintf "na#%d" id
  | Rma id -> Printf.sprintf "ma#%d" id

let write_to_buffer (t : t) (b : Buffer.t) : unit =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let blank () = Buffer.add_char b '\n' in
  line "<PDB %s>" t.version;
  blank ();
  (* source files *)
  List.iter
    (fun f ->
      line "so#%d %s" f.so_id f.so_name;
      List.iter (fun i -> line "sinc so#%d" i) f.so_includes;
      blank ())
    t.files;
  (* namespaces *)
  List.iter
    (fun n ->
      line "na#%d %s" n.na_id n.na_name;
      if n.na_loc <> null_loc then line "nloc %s" (loc_str n.na_loc);
      Option.iter (fun p -> line "nparent %s" p) (parent_str n.na_parent);
      List.iter (fun r -> line "nmem %s" (itemref_str r)) n.na_members;
      Option.iter (fun a -> line "nalias %s" a) n.na_alias;
      blank ())
    t.namespaces;
  (* templates *)
  List.iter
    (fun te ->
      line "te#%d %s" te.te_id te.te_name;
      if te.te_loc <> null_loc then line "tloc %s" (loc_str te.te_loc);
      Option.iter (fun p -> line "tparent %s" p) (parent_str te.te_parent);
      if te.te_acs <> "NA" then line "tacs %s" te.te_acs;
      line "tkind %s" te.te_kind;
      if te.te_text <> "" then line "ttext %s" (escape_text te.te_text);
      if te.te_pos <> null_extent then line "tpos %s" (extent_str te.te_pos);
      blank ())
    t.templates;
  (* routines *)
  List.iter
    (fun r ->
      line "ro#%d %s" r.ro_id r.ro_name;
      if r.ro_loc <> null_loc then line "rloc %s" (loc_str r.ro_loc);
      (match r.ro_parent with
       | Pcl id -> line "rclass cl#%d" id
       | Pna id -> line "rnspace na#%d" id
       | Pnone -> ());
      if r.ro_acs <> "NA" then line "racs %s" r.ro_acs;
      line "rsig %s" (typeref_str r.ro_sig);
      line "rlink %s" r.ro_link;
      line "rstore %s" r.ro_store;
      line "rvirt %s" r.ro_virt;
      if r.ro_kind <> "NA" then line "rkind %s" r.ro_kind;
      if r.ro_static then line "rstatic";
      if r.ro_inline then line "rinline";
      Option.iter (fun te -> line "rtempl te#%d" te) r.ro_templ;
      List.iter
        (fun c ->
          line "rcall ro#%d %s %s" c.c_callee
            (if c.c_virt then "virt" else "no")
            (loc_str c.c_loc))
        r.ro_calls;
      if r.ro_defined then line "rdef";
      if r.ro_pos <> null_extent then line "rpos %s" (extent_str r.ro_pos);
      blank ())
    t.routines;
  (* classes *)
  List.iter
    (fun c ->
      line "cl#%d %s" c.cl_id c.cl_name;
      if c.cl_loc <> null_loc then line "cloc %s" (loc_str c.cl_loc);
      line "ckind %s" c.cl_kind;
      Option.iter (fun p -> line "cparent %s" p) (parent_str c.cl_parent);
      if c.cl_acs <> "NA" then line "cacs %s" c.cl_acs;
      Option.iter (fun te -> line "ctempl te#%d" te) c.cl_templ;
      Option.iter (fun te -> line "cstempl te#%d" te) c.cl_stempl;
      List.iter
        (fun (acs, virt, base) ->
          line "cbase %s %s cl#%d" acs (if virt then "virt" else "no") base)
        c.cl_bases;
      List.iter
        (function
          | `Cl id -> line "cfriend cl#%d" id
          | `Ro id -> line "cfriend ro#%d" id)
        c.cl_friends;
      List.iter (fun (ro, l) -> line "cfunc ro#%d %s" ro (loc_str l)) c.cl_funcs;
      List.iter
        (fun m ->
          line "cmem %s" m.m_name;
          line "cmloc %s" (loc_str m.m_loc);
          line "cmacs %s" m.m_acs;
          line "cmkind %s" m.m_kind;
          line "cmtype %s" (typeref_str m.m_type);
          if m.m_static then line "cmstatic";
          if m.m_mutable then line "cmmutable")
        c.cl_members;
      if c.cl_pos <> null_extent then line "cpos %s" (extent_str c.cl_pos);
      blank ())
    t.classes;
  (* types *)
  List.iter
    (fun ty ->
      line "ty#%d %s" ty.ty_id ty.ty_name;
      if ty.ty_loc <> null_loc then line "yloc %s" (loc_str ty.ty_loc);
      Option.iter (fun p -> line "yparent %s" p) (parent_str ty.ty_parent);
      if ty.ty_acs <> "NA" then line "yacs %s" ty.ty_acs;
      (match ty.ty_info with
       | Ybuiltin { yikind } ->
           line "ykind %s" ty.ty_name;
           line "yikind %s" yikind
       | Yptr r ->
           line "ykind ptr";
           line "yptr %s" (typeref_str r)
       | Yref r ->
           line "ykind ref";
           line "yref %s" (typeref_str r)
       | Ytref { target; yconst; yvolatile } ->
           line "ykind tref";
           line "ytref %s" (typeref_str target);
           if yconst then line "yqual const";
           if yvolatile then line "yqual volatile"
       | Yarray { elem; size } ->
           line "ykind array";
           line "yelem %s" (typeref_str elem);
           Option.iter (fun n -> line "ysize %d" n) size
       | Yfunc { rett; args; ellipsis; cqual; exceptions } ->
           line "ykind func";
           line "yrett %s" (typeref_str rett);
           List.iter
             (fun (r, d) -> line "yargt %s %s" (typeref_str r) (if d then "T" else "F"))
             args;
           if ellipsis then line "yellip";
           if cqual then line "yqual const";
           Option.iter
             (fun refs ->
               line "yexcep %s" (String.concat " " (List.map typeref_str refs)))
             exceptions
       | Yenum { constants } ->
           line "ykind enum";
           List.iter (fun (n, v) -> line "ycon %s %Ld" n v) constants
       | Ytparam -> line "ykind tparam"
       | Yerror -> line "ykind error");
      List.iter (fun n -> line "yname %s" n) ty.ty_names;
      blank ())
    t.types;
  (* macros *)
  List.iter
    (fun m ->
      line "ma#%d %s" m.ma_id m.ma_name;
      line "makind %s" m.ma_kind;
      if m.ma_text <> "" then line "matext %s" (escape_text m.ma_text);
      if m.ma_loc <> null_loc then line "maloc %s" (loc_str m.ma_loc);
      blank ())
    t.pdb_macros

let to_string (t : t) : string =
  let b = Buffer.create 65536 in
  write_to_buffer t b;
  Buffer.contents b

let to_file (t : t) path : unit =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
