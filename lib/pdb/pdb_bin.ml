(** PDB-B: the binary, mmap-friendly PDB container (format version 2).

    The ASCII PDB of Figure 3 stays the golden interchange format — this
    module is the speed layer behind it.  A PDB-B file holds the exact
    same {!Pdb.t} model, laid out so a reader can decode it straight out
    of a [Bigarray]-mapped file: no tokenizing, no line splitting, no
    number parsing.  {!of_file} memory-maps the file and decodes
    fixed-width little-endian records; strings are materialized once from
    a deduplicated pool (and interned through {!Pdt_util.Intern}, so
    repeats are physically shared with ASCII-parsed PDBs in the same
    process).

    Layout (all integers little-endian 32-bit; see DESIGN.md for the
    normative spec):

    {v
    offset  size  field
    0       4     magic "PDBB"
    4       4     format version (2; version-1 files still decode)
    8       4     flags (bit 0: incomplete)
    12      4     diag_count
    16      4     version string id
    20      4     section count
    24      12*n  section table: (tag, byte offset, byte length)
    v}

    Sections (tags): 1 strings, 2 aux, 3 so, 4 na, 5 te, 6 ro, 7 cl,
    8 ty, 9 ma.  The strings section is [count], [count+1] cumulative
    offsets, then the raw blob.  The aux section is a flat array of u32
    words holding all variable-length payloads (include lists, members,
    calls, type info, ...), referenced from item records as
    (word offset, count) pairs.  Item sections are [count] fixed-width
    records.  Option fields use the sentinel 0xFFFFFFFF for [None].

    Robustness: every offset, string id and aux reference is
    bounds-checked during decode; malformed or truncated input raises
    {!Format_error} with a diagnostic — never an out-of-bounds access or
    a crash. *)

open Pdb

let magic = "PDBB"

(* Version 2 widens the ro record by four words — a spawn-list aux
   reference (fixed 8-word elements) and a define-use aux reference
   (variable-width payload, stored as word offset + word length).  The
   reader still accepts version-1 files: their narrower ro records decode
   with empty [ro_spawns]/[ro_du], which is exactly what a pre-semantic
   producer meant. *)
let format_version = 2
let min_format_version = 1
let none_sentinel = 0xFFFFFFFF
let header_bytes = 24

(* section tags *)
let sec_strings = 1
let sec_aux = 2
let sec_so = 3
let sec_na = 4
let sec_te = 5
let sec_ro = 6
let sec_cl = 7
let sec_ty = 8
let sec_ma = 9

let section_count = 9

(* fixed record widths, in u32 words *)
let so_words = 4
let na_words = 10
let te_words = 22
let ro_words = 34
let ro_words_v1 = 30  (* version-1 ro records lack the spawn/du refs *)
let cl_words = 31
let ty_words = 12
let ma_words = 7

exception Format_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

(* Values are stored as 32-bit two's complement.  Anything outside that
   range cannot round-trip, so the writer refuses it honestly instead of
   truncating. *)
let w32 (b : Buffer.t) (v : int) =
  if v < -0x8000_0000 || v > 0xFFFF_FFFF then
    err "integer %d exceeds the 32-bit record range of PDB-B" v;
  Buffer.add_int32_le b (Int32.of_int v)

type pool = {
  tbl : (string, int) Hashtbl.t;
  mutable rev : string list;  (* newest first *)
  mutable n : int;
  mutable bytes : int;
}

let pool_create () = { tbl = Hashtbl.create 1024; rev = []; n = 0; bytes = 0 }

let sid (p : pool) (s : string) : int =
  match Hashtbl.find_opt p.tbl s with
  | Some i -> i
  | None ->
      let i = p.n in
      Hashtbl.add p.tbl s i;
      p.rev <- s :: p.rev;
      p.n <- i + 1;
      p.bytes <- p.bytes + String.length s;
      i

type writer = {
  pool : pool;
  aux : Buffer.t;          (* the aux section payload, u32 words *)
  mutable aux_n : int;     (* words written so far *)
}

let aux_word (w : writer) v =
  w32 w.aux v;
  w.aux_n <- w.aux_n + 1

let wloc (b : Buffer.t) (l : loc) =
  w32 b l.lfile; w32 b l.lline; w32 b l.lcol

let wextent (b : Buffer.t) (e : extent) =
  wloc b e.hstart; wloc b e.hstop; wloc b e.bstart; wloc b e.bstop

let wtyperef (b : Buffer.t) = function
  | Tyref id -> w32 b 0; w32 b id
  | Clref id -> w32 b 1; w32 b id

let wparent (b : Buffer.t) = function
  | Pnone -> w32 b 0; w32 b 0
  | Pcl id -> w32 b 1; w32 b id
  | Pna id -> w32 b 2; w32 b id

let wopt (b : Buffer.t) = function
  | None -> w32 b none_sentinel
  | Some v -> w32 b v

let aux_loc (w : writer) (l : loc) =
  aux_word w l.lfile; aux_word w l.lline; aux_word w l.lcol

let aux_typeref (w : writer) = function
  | Tyref id -> aux_word w 0; aux_word w id
  | Clref id -> aux_word w 1; aux_word w id

(* An aux reference is the pair (first word index, element count); the
   writer returns it so the caller can embed it in the fixed record. *)
let aux_list (w : writer) (emit : 'a -> unit) (xs : 'a list) : int * int =
  let off = w.aux_n in
  List.iter emit xs;
  (off, List.length xs)

let encode_so w (b : Buffer.t) (f : source_file) =
  let off, n = aux_list w (fun i -> aux_word w i) f.so_includes in
  w32 b f.so_id;
  w32 b (sid w.pool f.so_name);
  w32 b off; w32 b n

let itemref_tag = function
  | Rso _ -> 0 | Rro _ -> 1 | Rcl _ -> 2 | Rty _ -> 3
  | Rte _ -> 4 | Rna _ -> 5 | Rma _ -> 6

let itemref_id = function
  | Rso i | Rro i | Rcl i | Rty i | Rte i | Rna i | Rma i -> i

let encode_na w (b : Buffer.t) (n : namespace_item) =
  let moff, mn =
    aux_list w
      (fun r -> aux_word w (itemref_tag r); aux_word w (itemref_id r))
      n.na_members
  in
  w32 b n.na_id;
  w32 b (sid w.pool n.na_name);
  wloc b n.na_loc;
  wparent b n.na_parent;
  (match n.na_alias with
   | None -> w32 b none_sentinel
   | Some a -> w32 b (sid w.pool a));
  w32 b moff; w32 b mn

let encode_te w (b : Buffer.t) (te : template_item) =
  w32 b te.te_id;
  w32 b (sid w.pool te.te_name);
  wloc b te.te_loc;
  wparent b te.te_parent;
  w32 b (sid w.pool te.te_acs);
  w32 b (sid w.pool te.te_kind);
  w32 b (sid w.pool te.te_text);
  wextent b te.te_pos

(* The define-use payload is variable-width (like ty_info), so it is
   referenced as (word offset, word length) and cursor-decoded.  Layout:
   [nvars], then per variable [name sid] [ndefs] ndefs*loc [nuses]
   nuses*([loc] [uninit] [nreach] nreach*[def index]). *)
let encode_du w (vars : du_var list) : int * int =
  match vars with
  | [] -> (0, 0)
  | _ ->
      let off = w.aux_n in
      aux_word w (List.length vars);
      List.iter
        (fun v ->
          aux_word w (sid w.pool v.v_name);
          aux_word w (List.length v.v_defs);
          List.iter (aux_loc w) v.v_defs;
          aux_word w (List.length v.v_uses);
          List.iter
            (fun u ->
              aux_loc w u.u_loc;
              aux_word w (if u.u_uninit then 1 else 0);
              aux_word w (List.length u.u_reach);
              List.iter (aux_word w) u.u_reach)
            v.v_uses)
        vars;
      (off, w.aux_n - off)

let encode_ro w (b : Buffer.t) (r : routine_item) =
  let coff, cn =
    aux_list w
      (fun c ->
        aux_word w c.c_callee;
        aux_word w (if c.c_virt then 1 else 0);
        aux_loc w c.c_loc)
      r.ro_calls
  in
  let soff, sn =
    aux_list w
      (fun s ->
        aux_word w s.sp_callee;
        aux_loc w s.sp_loc;
        match s.sp_join with
        | None ->
            aux_word w 0;
            aux_loc w null_loc
        | Some j ->
            aux_word w 1;
            aux_loc w j)
      r.ro_spawns
  in
  let duoff, dulen = encode_du w r.ro_du in
  w32 b r.ro_id;
  w32 b (sid w.pool r.ro_name);
  wloc b r.ro_loc;
  wparent b r.ro_parent;
  w32 b (sid w.pool r.ro_acs);
  wtyperef b r.ro_sig;
  w32 b (sid w.pool r.ro_link);
  w32 b (sid w.pool r.ro_store);
  w32 b (sid w.pool r.ro_virt);
  w32 b (sid w.pool r.ro_kind);
  w32 b
    ((if r.ro_static then 1 else 0)
     lor (if r.ro_inline then 2 else 0)
     lor if r.ro_defined then 4 else 0);
  wopt b r.ro_templ;
  w32 b coff; w32 b cn;
  wextent b r.ro_pos;
  w32 b soff; w32 b sn;
  w32 b duoff; w32 b dulen

let encode_cl w (b : Buffer.t) (c : class_item) =
  let boff, bn =
    aux_list w
      (fun (acs, virt, base) ->
        aux_word w (sid w.pool acs);
        aux_word w (if virt then 1 else 0);
        aux_word w base)
      c.cl_bases
  in
  let froff, frn =
    aux_list w
      (function
        | `Cl id -> aux_word w 0; aux_word w id
        | `Ro id -> aux_word w 1; aux_word w id)
      c.cl_friends
  in
  let fuoff, fun_ =
    aux_list w
      (fun (ro, l) -> aux_word w ro; aux_loc w l)
      c.cl_funcs
  in
  let moff, mn =
    aux_list w
      (fun m ->
        aux_word w (sid w.pool m.m_name);
        aux_loc w m.m_loc;
        aux_word w (sid w.pool m.m_acs);
        aux_word w (sid w.pool m.m_kind);
        aux_typeref w m.m_type;
        aux_word w (if m.m_static then 1 else 0);
        aux_word w (if m.m_mutable then 1 else 0))
      c.cl_members
  in
  w32 b c.cl_id;
  w32 b (sid w.pool c.cl_name);
  wloc b c.cl_loc;
  w32 b (sid w.pool c.cl_kind);
  wparent b c.cl_parent;
  w32 b (sid w.pool c.cl_acs);
  wopt b c.cl_templ;
  wopt b c.cl_stempl;
  w32 b boff; w32 b bn;
  w32 b froff; w32 b frn;
  w32 b fuoff; w32 b fun_;
  w32 b moff; w32 b mn;
  wextent b c.cl_pos

(* ty_info aux payload, first word is the kind tag *)
let encode_ty_info w (i : ty_info) : int * int =
  let off = w.aux_n in
  (match i with
   | Ybuiltin { yikind } -> aux_word w 0; aux_word w (sid w.pool yikind)
   | Yptr r -> aux_word w 1; aux_typeref w r
   | Yref r -> aux_word w 2; aux_typeref w r
   | Ytref { target; yconst; yvolatile } ->
       aux_word w 3;
       aux_typeref w target;
       aux_word w (if yconst then 1 else 0);
       aux_word w (if yvolatile then 1 else 0)
   | Yarray { elem; size } ->
       aux_word w 4;
       aux_typeref w elem;
       (match size with
        | None -> aux_word w 0; aux_word w 0
        | Some s -> aux_word w 1; aux_word w s)
   | Yfunc { rett; args; ellipsis; cqual; exceptions } ->
       aux_word w 5;
       aux_typeref w rett;
       aux_word w (if ellipsis then 1 else 0);
       aux_word w (if cqual then 1 else 0);
       aux_word w (List.length args);
       List.iter
         (fun (r, d) ->
           aux_typeref w r;
           aux_word w (if d then 1 else 0))
         args;
       (match exceptions with
        | None -> aux_word w 0
        | Some refs ->
            aux_word w 1;
            aux_word w (List.length refs);
            List.iter (aux_typeref w) refs)
   | Yenum { constants } ->
       aux_word w 6;
       aux_word w (List.length constants);
       List.iter
         (fun (n, v) ->
           aux_word w (sid w.pool n);
           aux_word w (Int64.to_int (Int64.logand v 0xFFFF_FFFFL));
           aux_word w (Int64.to_int (Int64.shift_right_logical v 32)))
         constants
   | Ytparam -> aux_word w 7
   | Yerror -> aux_word w 8);
  (off, w.aux_n - off)

let encode_ty w (b : Buffer.t) (ty : type_item) =
  let ioff, ilen = encode_ty_info w ty.ty_info in
  let noff, nn =
    aux_list w (fun n -> aux_word w (sid w.pool n)) ty.ty_names
  in
  w32 b ty.ty_id;
  w32 b (sid w.pool ty.ty_name);
  wloc b ty.ty_loc;
  wparent b ty.ty_parent;
  w32 b (sid w.pool ty.ty_acs);
  w32 b ioff; w32 b ilen;
  w32 b noff; w32 b nn

let encode_ma w (b : Buffer.t) (m : macro_item) =
  w32 b m.ma_id;
  w32 b (sid w.pool m.ma_name);
  w32 b (sid w.pool m.ma_kind);
  w32 b (sid w.pool m.ma_text);
  wloc b m.ma_loc

let pad4 (b : Buffer.t) =
  while Buffer.length b land 3 <> 0 do Buffer.add_char b '\000' done

let to_string (t : Pdb.t) : string =
  Pdt_util.Trace.timed ~cat:"pdb" "pdb.bin_write" @@ fun () ->
  let w = { pool = pool_create (); aux = Buffer.create 65536; aux_n = 0 } in
  let version_sid = sid w.pool t.version in
  let sec prefix_words count encode xs =
    let b = Buffer.create (4 + (count * prefix_words * 4)) in
    w32 b count;
    List.iter (encode w b) xs;
    b
  in
  let b_so = sec so_words (List.length t.files) encode_so t.files in
  let b_na = sec na_words (List.length t.namespaces) encode_na t.namespaces in
  let b_te = sec te_words (List.length t.templates) encode_te t.templates in
  let b_ro = sec ro_words (List.length t.routines) encode_ro t.routines in
  let b_cl = sec cl_words (List.length t.classes) encode_cl t.classes in
  let b_ty = sec ty_words (List.length t.types) encode_ty t.types in
  let b_ma = sec ma_words (List.length t.pdb_macros) encode_ma t.pdb_macros in
  (* strings: count, count+1 cumulative offsets, blob *)
  let strs = List.rev w.pool.rev in
  let b_str = Buffer.create (w.pool.bytes + (4 * (w.pool.n + 2))) in
  w32 b_str w.pool.n;
  let cum = ref 0 in
  w32 b_str 0;
  List.iter
    (fun s ->
      cum := !cum + String.length s;
      w32 b_str !cum)
    strs;
  List.iter (Buffer.add_string b_str) strs;
  pad4 b_str;
  (* aux section: count then the words *)
  let b_aux = Buffer.create (4 + Buffer.length w.aux) in
  w32 b_aux w.aux_n;
  Buffer.add_buffer b_aux w.aux;
  let sections =
    [ (sec_strings, b_str); (sec_aux, b_aux); (sec_so, b_so);
      (sec_na, b_na); (sec_te, b_te); (sec_ro, b_ro); (sec_cl, b_cl);
      (sec_ty, b_ty); (sec_ma, b_ma) ]
  in
  let out = Buffer.create (Buffer.length b_str + Buffer.length b_aux + 1024) in
  Buffer.add_string out magic;
  w32 out format_version;
  w32 out (if t.incomplete then 1 else 0);
  w32 out t.diag_count;
  w32 out version_sid;
  w32 out (List.length sections);
  let table_bytes = 12 * List.length sections in
  let pos = ref (header_bytes + table_bytes) in
  List.iter
    (fun (tag, sb) ->
      w32 out tag;
      w32 out !pos;
      w32 out (Buffer.length sb);
      pos := !pos + Buffer.length sb)
    sections;
  List.iter (fun (_, sb) -> Buffer.add_buffer out sb) sections;
  Buffer.contents out

let to_file (t : Pdb.t) (path : string) : unit =
  let s = to_string t in
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let blen (b : buf) = Bigarray.Array1.dim b

(* Unsigned little-endian u32 at byte offset [off].  The caller has
   validated the enclosing range, so the four loads are unchecked. *)
let u32 (b : buf) (off : int) : int =
  let g i = Char.code (Bigarray.Array1.unsafe_get b i) in
  g off lor (g (off + 1) lsl 8) lor (g (off + 2) lsl 16) lor (g (off + 3) lsl 24)

(* Signed interpretation, for line/column/size values. *)
let i32 (b : buf) (off : int) : int =
  let v = u32 b off in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

type reader = {
  buf : buf;
  strings : string Lazy.t array;
      (* extracted (and interned) from the blob on first use, so a
         partial decode — the on-demand {!View} — only pays for the
         strings its records actually reference *)
  aux_base : int;   (* byte offset of the first aux word *)
  aux_count : int;  (* words in the aux section *)
  rver : int;       (* the file's format version (1 or 2) *)
}

let fetch_string (r : reader) (id : int) (what : string) : string =
  if id < 0 || id >= Array.length r.strings then
    err "%s: string id %d out of range (pool has %d strings)" what id
      (Array.length r.strings);
  Lazy.force (Array.unsafe_get r.strings id)

(* Validate an aux reference and return the byte offset of its first
   word. *)
let aux_ref (r : reader) (off : int) (words : int) (what : string) : int =
  if off < 0 || words < 0 || off + words > r.aux_count then
    err "%s: aux reference [%d..%d) outside aux section of %d words" what off
      (off + words) r.aux_count;
  r.aux_base + (4 * off)

let rloc (b : buf) off =
  { lfile = i32 b off; lline = i32 b (off + 4); lcol = i32 b (off + 8) }

let rextent (b : buf) off =
  { hstart = rloc b off; hstop = rloc b (off + 12);
    bstart = rloc b (off + 24); bstop = rloc b (off + 36) }

let rtyperef (b : buf) off (what : string) =
  match u32 b off with
  | 0 -> Tyref (i32 b (off + 4))
  | 1 -> Clref (i32 b (off + 4))
  | n -> err "%s: invalid typeref tag %d" what n

let rparent (b : buf) off (what : string) =
  match u32 b off with
  | 0 -> Pnone
  | 1 -> Pcl (i32 b (off + 4))
  | 2 -> Pna (i32 b (off + 4))
  | n -> err "%s: invalid parent tag %d" what n

let ropt (b : buf) off =
  let v = u32 b off in
  if v = none_sentinel then None else Some (i32 b off)

(* Decode [n] aux elements of [words] u32 each through [f]; bounds are
   checked once for the whole run. *)
let aux_items (r : reader) off n words (what : string)
    (f : buf -> int -> 'a) : 'a list =
  let base = aux_ref r off (n * words) what in
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (f r.buf (base + (4 * i * words)) :: acc)
  in
  if n < 0 then err "%s: negative element count %d" what n;
  go (n - 1) []

let decode_so (r : reader) off : source_file =
  let b = r.buf in
  { so_id = i32 b off;
    so_name = fetch_string r (u32 b (off + 4)) "so name";
    so_includes =
      aux_items r (u32 b (off + 8)) (u32 b (off + 12)) 1 "so includes"
        (fun b o -> i32 b o) }

let decode_na (r : reader) off : namespace_item =
  let b = r.buf in
  let alias = u32 b (off + 28) in
  { na_id = i32 b off;
    na_name = fetch_string r (u32 b (off + 4)) "na name";
    na_loc = rloc b (off + 8);
    na_parent = rparent b (off + 20) "na parent";
    na_alias =
      (if alias = none_sentinel then None
       else Some (fetch_string r alias "na alias"));
    na_members =
      aux_items r (u32 b (off + 32)) (u32 b (off + 36)) 2 "na members"
        (fun b o ->
          let id = i32 b (o + 4) in
          match u32 b o with
          | 0 -> Rso id | 1 -> Rro id | 2 -> Rcl id | 3 -> Rty id
          | 4 -> Rte id | 5 -> Rna id | 6 -> Rma id
          | n -> err "na member: invalid itemref tag %d" n) }

let decode_te (r : reader) off : template_item =
  let b = r.buf in
  { te_id = i32 b off;
    te_name = fetch_string r (u32 b (off + 4)) "te name";
    te_loc = rloc b (off + 8);
    te_parent = rparent b (off + 20) "te parent";
    te_acs = fetch_string r (u32 b (off + 28)) "te acs";
    te_kind = fetch_string r (u32 b (off + 32)) "te kind";
    te_text = fetch_string r (u32 b (off + 36)) "te text";
    te_pos = rextent b (off + 40) }

(* Cursor-decoded define-use payload; see {!encode_du} for the layout. *)
let decode_du (r : reader) off len : du_var list =
  if len = 0 then []
  else begin
    let base = aux_ref r off len "ro du" in
    let stop = len in
    let pos = ref 0 in
    let need k =
      if !pos + k > stop then
        err "ro du: payload of %d words truncated at word %d" stop !pos
    in
    let word () =
      need 1;
      let v = u32 r.buf (base + (4 * !pos)) in
      incr pos;
      v
    in
    let dloc () =
      need 3;
      let l = rloc r.buf (base + (4 * !pos)) in
      pos := !pos + 3;
      l
    in
    let count what =
      let n = word () in
      if n > stop then err "ro du: bad %s count %d" what n;
      n
    in
    let read_list n f =
      let rec go i acc = if i = 0 then List.rev acc else go (i - 1) (f () :: acc) in
      go n []
    in
    let nvars = count "var" in
    read_list nvars (fun () ->
        let name = fetch_string r (word ()) "du var name" in
        let defs = read_list (count "def") dloc in
        let uses =
          read_list (count "use") (fun () ->
              let l = dloc () in
              let uninit = word () <> 0 in
              let reach = read_list (count "reach") word in
              { u_loc = l; u_reach = reach; u_uninit = uninit })
        in
        { v_name = name; v_defs = defs; v_uses = uses })
  end

let decode_ro (r : reader) off : routine_item =
  let b = r.buf in
  let flags = u32 b (off + 56) in
  { ro_id = i32 b off;
    ro_name = fetch_string r (u32 b (off + 4)) "ro name";
    ro_loc = rloc b (off + 8);
    ro_parent = rparent b (off + 20) "ro parent";
    ro_acs = fetch_string r (u32 b (off + 28)) "ro acs";
    ro_sig = rtyperef b (off + 32) "ro sig";
    ro_link = fetch_string r (u32 b (off + 40)) "ro link";
    ro_store = fetch_string r (u32 b (off + 44)) "ro store";
    ro_virt = fetch_string r (u32 b (off + 48)) "ro virt";
    ro_kind = fetch_string r (u32 b (off + 52)) "ro kind";
    ro_static = flags land 1 <> 0;
    ro_inline = flags land 2 <> 0;
    ro_defined = flags land 4 <> 0;
    ro_templ = ropt b (off + 60);
    ro_calls =
      aux_items r (u32 b (off + 64)) (u32 b (off + 68)) 5 "ro calls"
        (fun b o ->
          { c_callee = i32 b o;
            c_virt = u32 b (o + 4) <> 0;
            c_loc = rloc b (o + 8) });
    ro_spawns =
      (if r.rver < 2 then []
       else
         aux_items r (u32 b (off + 120)) (u32 b (off + 124)) 8 "ro spawns"
           (fun b o ->
             { sp_callee = i32 b o;
               sp_loc = rloc b (o + 4);
               sp_join =
                 (if u32 b (o + 16) = 0 then None else Some (rloc b (o + 20))) }));
    ro_du =
      (if r.rver < 2 then []
       else decode_du r (u32 b (off + 128)) (u32 b (off + 132)));
    ro_pos = rextent b (off + 72) }

let decode_cl (r : reader) off : class_item =
  let b = r.buf in
  { cl_id = i32 b off;
    cl_name = fetch_string r (u32 b (off + 4)) "cl name";
    cl_loc = rloc b (off + 8);
    cl_kind = fetch_string r (u32 b (off + 20)) "cl kind";
    cl_parent = rparent b (off + 24) "cl parent";
    cl_acs = fetch_string r (u32 b (off + 32)) "cl acs";
    cl_templ = ropt b (off + 36);
    cl_stempl = ropt b (off + 40);
    cl_bases =
      aux_items r (u32 b (off + 44)) (u32 b (off + 48)) 3 "cl bases"
        (fun b o ->
          (fetch_string r (u32 b o) "cl base acs",
           u32 b (o + 4) <> 0,
           i32 b (o + 8)));
    cl_friends =
      aux_items r (u32 b (off + 52)) (u32 b (off + 56)) 2 "cl friends"
        (fun b o ->
          let id = i32 b (o + 4) in
          match u32 b o with
          | 0 -> `Cl id
          | 1 -> `Ro id
          | n -> err "cl friend: invalid tag %d" n);
    cl_funcs =
      aux_items r (u32 b (off + 60)) (u32 b (off + 64)) 4 "cl funcs"
        (fun b o -> (i32 b o, rloc b (o + 4)));
    cl_members =
      aux_items r (u32 b (off + 68)) (u32 b (off + 72)) 10 "cl members"
        (fun b o ->
          { m_name = fetch_string r (u32 b o) "cl member name";
            m_loc = rloc b (o + 4);
            m_acs = fetch_string r (u32 b (o + 16)) "cl member acs";
            m_kind = fetch_string r (u32 b (o + 20)) "cl member kind";
            m_type = rtyperef b (o + 24) "cl member type";
            m_static = u32 b (o + 32) <> 0;
            m_mutable = u32 b (o + 36) <> 0 });
    cl_pos = rextent b (off + 76) }

(* ty_info payloads are variable width, so this decoder re-checks bounds
   as it walks: [need] asserts the next [k] words are inside the
   payload. *)
let decode_ty_info (r : reader) off len : ty_info =
  let base = aux_ref r off len "ty info" in
  let stop = len in
  let pos = ref 0 in
  let need k =
    if !pos + k > stop then
      err "ty info: payload of %d words truncated at word %d" stop !pos
  in
  let word () =
    need 1;
    let v = u32 r.buf (base + (4 * !pos)) in
    incr pos;
    v
  in
  let sword () =
    need 1;
    let v = i32 r.buf (base + (4 * !pos)) in
    incr pos;
    v
  in
  let tr what =
    need 2;
    let v = rtyperef r.buf (base + (4 * !pos)) what in
    pos := !pos + 2;
    v
  in
  (* in-order [n]-element list of [f ()] — the reads are stateful, so the
     evaluation order must be the storage order *)
  let read_list n f =
    let rec go i acc = if i = 0 then List.rev acc else go (i - 1) (f () :: acc) in
    go n []
  in
  if len < 1 then err "ty info: empty payload";
  match word () with
  | 0 -> Ybuiltin { yikind = fetch_string r (word ()) "ty ikind" }
  | 1 -> Yptr (tr "ty ptr")
  | 2 -> Yref (tr "ty ref")
  | 3 ->
      let target = tr "ty tref" in
      let c = word () <> 0 in
      let v = word () <> 0 in
      Ytref { target; yconst = c; yvolatile = v }
  | 4 ->
      let elem = tr "ty array elem" in
      let has = word () <> 0 in
      let size = sword () in
      Yarray { elem; size = (if has then Some size else None) }
  | 5 ->
      let rett = tr "ty func rett" in
      let ellipsis = word () <> 0 in
      let cqual = word () <> 0 in
      let nargs = word () in
      if nargs < 0 || nargs > stop then err "ty func: bad arg count %d" nargs;
      let args =
        read_list nargs (fun () ->
            let t = tr "ty func arg" in
            let d = word () <> 0 in
            (t, d))
      in
      let exceptions =
        if word () = 0 then None
        else begin
          let n = word () in
          if n < 0 || n > stop then err "ty func: bad exception count %d" n;
          Some (read_list n (fun () -> tr "ty func exception"))
        end
      in
      Yfunc { rett; args; ellipsis; cqual; exceptions }
  | 6 ->
      let n = word () in
      if n < 0 || n > stop then err "ty enum: bad constant count %d" n;
      Yenum
        { constants =
            read_list n (fun () ->
                let name = fetch_string r (word ()) "ty enum constant" in
                let lo = Int64.of_int (word ()) in
                let hi = Int64.of_int (word ()) in
                (name, Int64.logor lo (Int64.shift_left hi 32))) }
  | 7 -> Ytparam
  | 8 -> Yerror
  | n -> err "ty info: invalid kind tag %d" n

let decode_ty (r : reader) off : type_item =
  let b = r.buf in
  { ty_id = i32 b off;
    ty_name = fetch_string r (u32 b (off + 4)) "ty name";
    ty_loc = rloc b (off + 8);
    ty_parent = rparent b (off + 20) "ty parent";
    ty_acs = fetch_string r (u32 b (off + 28)) "ty acs";
    ty_info = decode_ty_info r (u32 b (off + 32)) (u32 b (off + 36));
    ty_names =
      aux_items r (u32 b (off + 40)) (u32 b (off + 44)) 1 "ty names"
        (fun b o -> fetch_string r (u32 b o) "ty name alias") }

let decode_ma (r : reader) off : macro_item =
  let b = r.buf in
  { ma_id = i32 b off;
    ma_name = fetch_string r (u32 b (off + 4)) "ma name";
    ma_kind = fetch_string r (u32 b (off + 8)) "ma kind";
    ma_text = fetch_string r (u32 b (off + 12)) "ma text";
    ma_loc = rloc b (off + 16) }

let extract_string (b : buf) (off : int) (len : int) : string =
  let bytes = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set bytes i (Bigarray.Array1.unsafe_get b (off + i))
  done;
  let s = Bytes.unsafe_to_string bytes in
  if len <= Pdt_util.Intern.max_len then Pdt_util.Intern.intern s else s

(* ------------------------------------------------------------------ *)
(* Section layout                                                     *)
(* ------------------------------------------------------------------ *)

(* Everything the eager decoder and the on-demand {!View} share:
   header validation, the section table, string-table monotonicity and
   per-kind record-section bounds.  O(sections + string count) u32
   reads, no allocation proportional to content size — this is the
   entire up-front cost of opening a mapped file. *)

let n_kinds = 7
let k_so = 0
let k_na = 1
let k_te = 2
let k_ro = 3
let k_cl = 4
let k_ty = 5
let k_ma = 6
let kind_tags = [| sec_so; sec_na; sec_te; sec_ro; sec_cl; sec_ty; sec_ma |]
let kind_words = [| so_words; na_words; te_words; ro_words; cl_words; ty_words; ma_words |]
let kind_names = [| "so"; "na"; "te"; "ro"; "cl"; "ty"; "ma" |]

(* Record width of kind [k] in a file of format version [ver]: only the
   ro record changed shape between versions. *)
let kind_words_v ver k =
  if k = k_ro && ver < 2 then ro_words_v1 else kind_words.(k)

type layout = {
  lay_ver : int;
  lay_flags : int;
  lay_diag_count : int;
  lay_version_sid : int;
  lay_str_count : int;
  lay_str_cum_base : int;   (* byte offset of the cumulative-offset table *)
  lay_str_blob_base : int;  (* byte offset of the string blob *)
  lay_aux_base : int;       (* byte offset of the first aux word *)
  lay_aux_count : int;      (* words in the aux section *)
  lay_sects : (int * int) array;
      (* per kind: byte offset of the first record, record count *)
}

let layout (b : buf) : layout =
  let total = blen b in
  if total < header_bytes then
    err "truncated header: %d bytes, need at least %d" total header_bytes;
  for i = 0 to 3 do
    if Bigarray.Array1.get b i <> magic.[i] then
      err "bad magic: not a PDB-B file"
  done;
  let ver = u32 b 4 in
  if ver < min_format_version || ver > format_version then
    err "unsupported PDB-B format version %d (reader supports %d..%d)" ver
      min_format_version format_version;
  let flags = u32 b 8 in
  let diag_count = i32 b 12 in
  let version_sid = u32 b 16 in
  let nsec = u32 b 20 in
  if nsec < 0 || nsec > 64 then err "implausible section count %d" nsec;
  if header_bytes + (12 * nsec) > total then
    err "section table of %d entries exceeds file size %d" nsec total;
  let sections = Hashtbl.create 16 in
  for i = 0 to nsec - 1 do
    let base = header_bytes + (12 * i) in
    let tag = u32 b base in
    let off = u32 b (base + 4) in
    let len = u32 b (base + 8) in
    if off < 0 || len < 0 || off + len > total then
      err "section %d (tag %d): range [%d..%d) exceeds file size %d" i tag off
        (off + len) total;
    if Hashtbl.mem sections tag then err "duplicate section tag %d" tag;
    Hashtbl.add sections tag (off, len)
  done;
  let section tag what =
    match Hashtbl.find_opt sections tag with
    | Some r -> r
    | None -> err "missing %s section (tag %d)" what tag
  in
  let str_off, str_len = section sec_strings "strings" in
  if str_len < 4 then err "strings section: %d bytes is too short" str_len;
  let str_count = u32 b str_off in
  if str_count < 0 || (4 * (str_count + 2)) > str_len then
    err "strings section: count %d does not fit in %d bytes" str_count str_len;
  let cum_base = str_off + 4 in
  let blob_base = cum_base + (4 * (str_count + 1)) in
  let blob_len = str_len - 4 - (4 * (str_count + 1)) in
  let last = ref 0 in
  for i = 0 to str_count do
    let v = u32 b (cum_base + (4 * i)) in
    if v < !last then err "strings section: offsets not monotonic at %d" i;
    last := v
  done;
  if !last > blob_len then
    err "strings section: blob needs %d bytes, only %d present" !last blob_len;
  let aux_off, aux_len = section sec_aux "aux" in
  if aux_len < 4 then err "aux section: %d bytes is too short" aux_len;
  let aux_count = u32 b aux_off in
  if aux_count < 0 || 4 + (4 * aux_count) > aux_len then
    err "aux section: count %d does not fit in %d bytes" aux_count aux_len;
  let sects =
    Array.init n_kinds (fun k ->
        let what = kind_names.(k) and words = kind_words_v ver k in
        let off, len = section kind_tags.(k) what in
        if len < 4 then err "%s section: %d bytes is too short" what len;
        let count = u32 b off in
        if count < 0 || 4 + (4 * words * count) > len then
          err "%s section: %d records of %d words do not fit in %d bytes" what
            count words len;
        (off + 4, count))
  in
  { lay_ver = ver; lay_flags = flags; lay_diag_count = diag_count;
    lay_version_sid = version_sid; lay_str_count = str_count;
    lay_str_cum_base = cum_base; lay_str_blob_base = blob_base;
    lay_aux_base = aux_off + 4; lay_aux_count = aux_count;
    lay_sects = sects }

let strings_of_layout (b : buf) (lay : layout) : string Lazy.t array =
  Array.init lay.lay_str_count (fun i ->
      let o = u32 b (lay.lay_str_cum_base + (4 * i)) in
      let o' = u32 b (lay.lay_str_cum_base + (4 * (i + 1))) in
      lazy (extract_string b (lay.lay_str_blob_base + o) (o' - o)))

let reader_of_layout (b : buf) (lay : layout) : reader =
  { buf = b; strings = strings_of_layout b lay;
    aux_base = lay.lay_aux_base; aux_count = lay.lay_aux_count;
    rver = lay.lay_ver }

let decode (b : buf) : Pdb.t =
  let lay = layout b in
  let r = reader_of_layout b lay in
  let items k decode_one =
    let base, count = lay.lay_sects.(k) in
    let words = kind_words_v lay.lay_ver k in
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (decode_one r (base + (4 * words * i)) :: acc)
    in
    go (count - 1) []
  in
  let t = Pdb.create () in
  t.version <- fetch_string r lay.lay_version_sid "header version";
  t.incomplete <- lay.lay_flags land 1 <> 0;
  t.diag_count <- lay.lay_diag_count;
  t.files <- items k_so decode_so;
  t.namespaces <- items k_na decode_na;
  t.templates <- items k_te decode_te;
  t.routines <- items k_ro decode_ro;
  t.classes <- items k_cl decode_cl;
  t.types <- items k_ty decode_ty;
  t.pdb_macros <- items k_ma decode_ma;
  t

let of_bigarray (b : buf) : Pdb.t =
  Pdt_util.Fault.check "pdb.bin_read";
  Pdt_util.Trace.timed ~cat:"pdb" "pdb.bin_read" @@ fun () -> decode b

let bigarray_of_string (s : string) : buf =
  let n = String.length s in
  let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b i (String.unsafe_get s i)
  done;
  b

let of_string (s : string) : Pdb.t = of_bigarray (bigarray_of_string s)

(* The zero-copy path: map the file and decode records straight out of
   the mapping.  The mapping lives as long as the Bigarray, i.e. until
   the last decoded value stops referencing it — decoded PDBs copy what
   they keep (strings), so the map is collectable as soon as decode
   returns. *)
let map_path (path : string) : buf =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < header_bytes then
        err "%s: truncated header: %d bytes, need at least %d" path size
          header_bytes;
      let g =
        Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]
      in
      Bigarray.array1_of_genarray g)

let of_file (path : string) : Pdb.t = of_bigarray (map_path path)

(* Format sniffing: a PDB-B file opens with "PDBB", the ASCII format
   with "<PDB ".  Used by {!Pdb_io} and the CLI tools. *)
let is_binary_string (s : string) : bool =
  String.length s >= 4 && String.sub s 0 4 = magic

let is_binary_file (path : string) : bool =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      let r =
        try
          let hd = really_input_string ic 4 in
          hd = magic
        with End_of_file -> false
      in
      close_in ic;
      r

(* ------------------------------------------------------------------ *)
(* On-demand view                                                     *)
(* ------------------------------------------------------------------ *)

(** Zero-copy, on-demand access to a mapped PDB-B file — the reason the
    records are fixed-width.  Opening validates the layout and builds a
    per-kind id→offset index by reading one u32 per record; nothing
    else is materialized.  Individual items decode straight out of the
    mapping when asked for, and only the strings those items reference
    are ever extracted from the blob.  The cost of [of_file] is
    therefore O(items) word reads — orders of magnitude under a full
    ASCII parse — which is the "cold index load" bench B10 measures. *)
module View = struct
  type t = {
    buf : buf;
    lay : layout;
    r : reader;
    ids : (int, int) Hashtbl.t array;
        (* per kind: item id -> byte offset of its record *)
    version : string;
    incomplete : bool;
    diag_count : int;
  }

  let of_bigarray (b : buf) : t =
    Pdt_util.Fault.check "pdb.bin_read";
    Pdt_util.Trace.timed ~cat:"pdb" "pdb.view_open" @@ fun () ->
    let lay = layout b in
    let r = reader_of_layout b lay in
    let ids =
      Array.init n_kinds (fun k ->
          let base, count = lay.lay_sects.(k) in
          let words = kind_words_v lay.lay_ver k in
          let h = Hashtbl.create (max 16 count) in
          for i = 0 to count - 1 do
            let off = base + (4 * words * i) in
            Hashtbl.replace h (i32 b off) off
          done;
          h)
    in
    { buf = b; lay; r; ids;
      version = fetch_string r lay.lay_version_sid "header version";
      incomplete = lay.lay_flags land 1 <> 0;
      diag_count = lay.lay_diag_count }

  let of_file (path : string) : t = of_bigarray (map_path path)
  let of_string (s : string) : t = of_bigarray (bigarray_of_string s)

  let version v = v.version
  let incomplete v = v.incomplete
  let diag_count v = v.diag_count

  let count v k = snd v.lay.lay_sects.(k)
  let file_count v = count v k_so
  let namespace_count v = count v k_na
  let template_count v = count v k_te
  let routine_count v = count v k_ro
  let class_count v = count v k_cl
  let type_count v = count v k_ty
  let macro_count v = count v k_ma

  let item_count v =
    let n = ref 0 in
    for k = 0 to n_kinds - 1 do n := !n + count v k done;
    !n

  (** Per-kind record counts, in section order: so na te ro cl ty ma. *)
  let counts v = List.init n_kinds (fun k -> (kind_names.(k), count v k))

  let at v k decode_one i =
    let base, n = v.lay.lay_sects.(k) in
    if i < 0 || i >= n then
      err "%s record index %d out of range (%d records)" kind_names.(k) i n;
    decode_one v.r (base + (4 * kind_words_v v.lay.lay_ver k * i))

  let file_at v i = at v k_so decode_so i
  let namespace_at v i = at v k_na decode_na i
  let template_at v i = at v k_te decode_te i
  let routine_at v i = at v k_ro decode_ro i
  let class_at v i = at v k_cl decode_cl i
  let type_at v i = at v k_ty decode_ty i
  let macro_at v i = at v k_ma decode_ma i

  let by_id v k decode_one id =
    Option.map (decode_one v.r) (Hashtbl.find_opt v.ids.(k) id)

  let file_by_id v id = by_id v k_so decode_so id
  let namespace_by_id v id = by_id v k_na decode_na id
  let template_by_id v id = by_id v k_te decode_te id
  let routine_by_id v id = by_id v k_ro decode_ro id
  let class_by_id v id = by_id v k_cl decode_cl id
  let type_by_id v id = by_id v k_ty decode_ty id
  let macro_by_id v id = by_id v k_ma decode_ma id

  let string_matches (b : buf) (off : int) (s : string) : bool =
    let n = String.length s in
    let rec go j =
      j >= n
      || (Bigarray.Array1.unsafe_get b (off + j) = String.unsafe_get s j
          && go (j + 1))
    in
    go 0

  (** Find the pool id of an exact string by scanning the blob in place —
      no extraction, so a miss allocates nothing. *)
  let find_string v (s : string) : int option =
    let b = v.buf and lay = v.lay in
    let n = String.length s in
    let cum i = u32 b (lay.lay_str_cum_base + (4 * i)) in
    let rec go i =
      if i >= lay.lay_str_count then None
      else
        let o = cum i in
        if cum (i + 1) - o = n && string_matches b (lay.lay_str_blob_base + o) s
        then Some i
        else go (i + 1)
    in
    go 0

  (* Every record kind stores its name sid in word 1, so a find-by-name
     is one blob scan for the sid plus one u32 scan over the records. *)
  let find_by_name v k decode_one name =
    match find_string v name with
    | None -> None
    | Some sid ->
        let base, n = v.lay.lay_sects.(k) in
        let words = kind_words_v v.lay.lay_ver k in
        let rec go i =
          if i >= n then None
          else
            let off = base + (4 * words * i) in
            if u32 v.buf (off + 4) = sid then Some (decode_one v.r off)
            else go (i + 1)
        in
        go 0

  let find_file v name = find_by_name v k_so decode_so name
  let find_routine v name = find_by_name v k_ro decode_ro name
  let find_class v name = find_by_name v k_cl decode_cl name
  let find_template v name = find_by_name v k_te decode_te name

  (** Materialize the whole PDB (same result as {!of_bigarray} on the
      underlying buffer). *)
  let to_pdb v : Pdb.t = decode v.buf
end
