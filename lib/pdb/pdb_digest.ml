(** Stable digest of a program database.

    Two PDBs have the same digest iff their canonical serializations are
    byte-identical.  [Pdb_write.to_string] already emits items in a fixed
    order (the in-memory list order, which the merge and the analyzer keep
    deterministic), so hashing the serialization gives a digest that is
    stable across processes — the build cache and the order-independence
    tests both key on it. *)

let of_string (s : string) : string = Digest.to_hex (Digest.string s)

let of_pdb (pdb : Pdb.t) : string = of_string (Pdb_write.to_string pdb)

(** Digest of a PDB file on disk, loaded (either container format) and
    re-serialized to canonical ASCII first, so that incidental formatting
    differences — including the choice of ASCII vs PDB-B container — do
    not change the digest. *)
let of_file (path : string) : string = of_pdb (Pdb_io.of_file path)
