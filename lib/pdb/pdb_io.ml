(** Format-agnostic PDB loading: sniff ASCII vs PDB-B and dispatch.

    The ASCII interchange format opens with ["<PDB "] and PDB-B with the
    ["PDBB"] magic, so the first four bytes decide.  Everything above the
    serialization layer (DUCTAPE, the CLI tools, the build cache) goes
    through here and handles both formats transparently.

    Errors stay format-specific — {!Pdb_parse.Parse_error} for ASCII,
    {!Pdb_bin.Format_error} for binary — so diagnostics keep their
    precise shape; callers that want one net should catch both. *)

type format = Ascii | Binary

let format_name = function Ascii -> "ascii" | Binary -> "binary"

let format_of_string = function
  | "ascii" -> Some Ascii
  | "binary" -> Some Binary
  | _ -> None

let sniff_string (s : string) : format =
  if Pdb_bin.is_binary_string s then Binary else Ascii

let sniff_file (path : string) : format =
  if Pdb_bin.is_binary_file path then Binary else Ascii

let of_string (s : string) : Pdb.t =
  match sniff_string s with
  | Binary -> Pdb_bin.of_string s
  | Ascii -> Pdb_parse.of_string s

let of_file (path : string) : Pdb.t =
  match sniff_file path with
  | Binary -> Pdb_bin.of_file path
  | Ascii -> Pdb_parse.of_file path

(** Serialize in the requested container format. *)
let to_string (fmt : format) (t : Pdb.t) : string =
  match fmt with
  | Ascii -> Pdb_write.to_string t
  | Binary -> Pdb_bin.to_string t

let to_file (fmt : format) (t : Pdb.t) (path : string) : unit =
  match fmt with
  | Ascii -> Pdb_write.to_file t path
  | Binary -> Pdb_bin.to_file t path
