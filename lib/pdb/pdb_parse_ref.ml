(** The seed PDB parser, kept as a reference implementation.

    This is the original multi-pass parser ([String.split_on_char] into
    lines, list-of-blocks intermediate, per-line [String.trim]).  The hot
    path now runs through the single-pass cursor parser in {!Pdb_parse};
    this module stays for two jobs:

    - tests cross-check that {!Pdb_parse} reports the same [Parse_error]
      line numbers on malformed input, and parses well-formed input to the
      same structure;
    - bench B7 measures the new parser's throughput against this one (the
      speedup recorded in [BENCH_pdb_io.json]). *)

open Pdb

exception Parse_error of int * string
(** line number, message *)

let fail lineno fmt = Printf.ksprintf (fun m -> raise (Parse_error (lineno, m))) fmt

(* split "so#12" into ("so", 12) *)
let split_id lineno s =
  match String.index_opt s '#' with
  | None -> fail lineno "malformed item id '%s'" s
  | Some i -> (
      let prefix = String.sub s 0 i in
      let num = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt num with
      | Some n -> (prefix, n)
      | None -> fail lineno "malformed item id '%s'" s)

let parse_typeref lineno s =
  match split_id lineno s with
  | "ty", n -> Tyref n
  | "cl", n -> Clref n
  | p, _ -> fail lineno "expected type reference, got '%s#'" p

let parse_parentref lineno s =
  match split_id lineno s with
  | "cl", n -> Pcl n
  | "na", n -> Pna n
  | p, _ -> fail lineno "expected parent reference, got '%s#'" p

let parse_itemref lineno s =
  match split_id lineno s with
  | "so", n -> Rso n
  | "ro", n -> Rro n
  | "cl", n -> Rcl n
  | "ty", n -> Rty n
  | "te", n -> Rte n
  | "na", n -> Rna n
  | "ma", n -> Rma n
  | p, _ -> fail lineno "unknown item prefix '%s'" p

(* parse "so#3 12 7" or "NULL 0 0" from a word list; returns loc and rest *)
let parse_loc_words lineno words =
  match words with
  | "NULL" :: _ :: _ :: rest -> (null_loc, rest)
  | f :: l :: c :: rest -> (
      match (split_id lineno f, int_of_string_opt l, int_of_string_opt c) with
      | ("so", fid), Some l, Some c -> ({ lfile = fid; lline = l; lcol = c }, rest)
      | _ -> fail lineno "malformed location")
  | _ -> fail lineno "truncated location"

let parse_loc lineno s = fst (parse_loc_words lineno (String.split_on_char ' ' s))

let parse_extent lineno s =
  let ws = String.split_on_char ' ' s in
  let hstart, ws = parse_loc_words lineno ws in
  let hstop, ws = parse_loc_words lineno ws in
  let bstart, ws = parse_loc_words lineno ws in
  let bstop, _ = parse_loc_words lineno ws in
  { hstart; hstop; bstart; bstop }

(* a block: header line + attribute lines *)
type block = {
  b_lineno : int;
  b_prefix : string;
  b_id : int;
  b_name : string;
  b_attrs : (int * string * string) list;  (* lineno, key, rest-of-line *)
}

let split_blocks (src : string) : string * block list =
  let lines = String.split_on_char '\n' src in
  let header = ref "1.0" in
  let blocks = ref [] in
  let cur : block option ref = ref None in
  let flush () =
    match !cur with
    | Some b ->
        blocks := { b with b_attrs = List.rev b.b_attrs } :: !blocks;
        cur := None
    | None -> ()
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" then flush ()
      else if String.length line > 5 && String.sub line 0 5 = "<PDB " then
        header := String.sub line 5 (String.length line - 6)
      else begin
        let key, rest =
          match String.index_opt line ' ' with
          | Some j ->
              (String.sub line 0 j, String.sub line (j + 1) (String.length line - j - 1))
          | None -> (line, "")
        in
        if String.contains key '#' then begin
          flush ();
          let prefix, id = split_id lineno key in
          cur := Some { b_lineno = lineno; b_prefix = prefix; b_id = id;
                        b_name = rest; b_attrs = [] }
        end
        else
          match !cur with
          | Some b -> cur := Some { b with b_attrs = (lineno, key, rest) :: b.b_attrs }
          | None -> fail lineno "attribute '%s' outside of an item block" key
      end)
    lines;
  flush ();
  (!header, List.rev !blocks)

let of_string (src : string) : t =
  let header, blocks = split_blocks src in
  let t = create () in
  set_header t header;
  let files = ref [] and types = ref [] and classes = ref [] in
  let routines = ref [] and templates = ref [] and namespaces = ref [] in
  let macros = ref [] in
  List.iter
    (fun b ->
      let ln = b.b_lineno in
      match b.b_prefix with
      | "so" ->
          let f = { so_id = b.b_id; so_name = b.b_name; so_includes = [] } in
          List.iter
            (fun (ln, k, v) ->
              match k with
              | "sinc" -> (
                  match split_id ln v with
                  | "so", n -> f.so_includes <- f.so_includes @ [ n ]
                  | _ -> fail ln "sinc expects so# reference")
              | _ -> fail ln "unknown so attribute '%s'" k)
            b.b_attrs;
          files := f :: !files
      | "na" ->
          let n =
            { na_id = b.b_id; na_name = b.b_name; na_loc = null_loc;
              na_parent = Pnone; na_members = []; na_alias = None }
          in
          List.iter
            (fun (ln, k, v) ->
              match k with
              | "nloc" -> n.na_loc <- parse_loc ln v
              | "nparent" -> n.na_parent <- parse_parentref ln v
              | "nmem" -> n.na_members <- n.na_members @ [ parse_itemref ln v ]
              | "nalias" -> n.na_alias <- Some v
              | _ -> fail ln "unknown na attribute '%s'" k)
            b.b_attrs;
          namespaces := n :: !namespaces
      | "te" ->
          let te =
            { te_id = b.b_id; te_name = b.b_name; te_loc = null_loc;
              te_parent = Pnone; te_acs = "NA"; te_kind = "class"; te_text = "";
              te_pos = null_extent }
          in
          List.iter
            (fun (ln, k, v) ->
              match k with
              | "tloc" -> te.te_loc <- parse_loc ln v
              | "tparent" -> te.te_parent <- parse_parentref ln v
              | "tacs" -> te.te_acs <- v
              | "tkind" -> te.te_kind <- v
              | "ttext" -> te.te_text <- Pdb_write.unescape_text v
              | "tpos" -> te.te_pos <- parse_extent ln v
              | _ -> fail ln "unknown te attribute '%s'" k)
            b.b_attrs;
          templates := te :: !templates
      | "ro" ->
          let r =
            { ro_id = b.b_id; ro_name = b.b_name; ro_loc = null_loc;
              ro_parent = Pnone; ro_acs = "NA"; ro_sig = Tyref 0; ro_link = "C++";
              ro_store = "NA"; ro_virt = "no"; ro_kind = "NA"; ro_static = false;
              ro_inline = false; ro_templ = None; ro_calls = []; ro_spawns = [];
              ro_du = []; ro_pos = null_extent; ro_defined = false }
          in
          let pending_du : du_var option ref = ref None in
          let flush_du () =
            match !pending_du with
            | Some v ->
                r.ro_du <- r.ro_du @ [ v ];
                pending_du := None
            | None -> ()
          in
          List.iter
            (fun (ln, k, v) ->
              match k with
              | "rloc" -> r.ro_loc <- parse_loc ln v
              | "rclass" -> r.ro_parent <- parse_parentref ln v
              | "rnspace" -> r.ro_parent <- parse_parentref ln v
              | "racs" -> r.ro_acs <- v
              | "rsig" -> r.ro_sig <- parse_typeref ln v
              | "rlink" -> r.ro_link <- v
              | "rstore" -> r.ro_store <- v
              | "rvirt" -> r.ro_virt <- v
              | "rkind" -> r.ro_kind <- v
              | "rstatic" -> r.ro_static <- true
              | "rinline" -> r.ro_inline <- true
              | "rtempl" -> (
                  match split_id ln v with
                  | "te", n -> r.ro_templ <- Some n
                  | _ -> fail ln "rtempl expects te# reference")
              | "rcall" -> (
                  match String.split_on_char ' ' v with
                  | callee :: virt :: rest -> (
                      match split_id ln callee with
                      | "ro", n ->
                          let l, _ = parse_loc_words ln rest in
                          r.ro_calls <-
                            r.ro_calls @ [ { c_callee = n; c_virt = virt = "virt"; c_loc = l } ]
                      | _ -> fail ln "rcall expects ro# reference")
                  | _ -> fail ln "malformed rcall")
              | "rspawn" -> (
                  match String.split_on_char ' ' v with
                  | callee :: rest -> (
                      match split_id ln callee with
                      | "ro", n -> (
                          let l, rest = parse_loc_words ln rest in
                          let sp =
                            match rest with
                            | [] -> fail ln "malformed rspawn"
                            | "joined" :: rest2 ->
                                let j, _ = parse_loc_words ln rest2 in
                                { sp_callee = n; sp_loc = l; sp_join = Some j }
                            | "live" :: _ ->
                                { sp_callee = n; sp_loc = l; sp_join = None }
                            | _ ->
                                fail ln "rspawn expects 'joined <loc>' or 'live'"
                          in
                          r.ro_spawns <- r.ro_spawns @ [ sp ])
                      | _ -> fail ln "rspawn expects ro# reference")
                  | [] -> fail ln "malformed rspawn")
              | "rdu" ->
                  flush_du ();
                  pending_du := Some { v_name = v; v_defs = []; v_uses = [] }
              | "rdudef" | "rduuse" -> (
                  match !pending_du with
                  | None -> fail ln "define-use attribute without rdu"
                  | Some dv ->
                      if k = "rdudef" then
                        pending_du :=
                          Some { dv with v_defs = dv.v_defs @ [ parse_loc ln v ] }
                      else
                        let l, rest =
                          parse_loc_words ln (String.split_on_char ' ' v)
                        in
                        (match rest with
                         | [] -> fail ln "malformed rduuse"
                         | spec :: _ -> (
                             match du_use_of_spec spec with
                             | None -> fail ln "malformed rduuse reach spec"
                             | Some (reach, uninit) ->
                                 pending_du :=
                                   Some
                                     { dv with
                                       v_uses =
                                         dv.v_uses
                                         @ [ { u_loc = l; u_reach = reach;
                                               u_uninit = uninit } ] })))
              | "rdef" -> r.ro_defined <- true
              | "rpos" -> r.ro_pos <- parse_extent ln v
              | _ -> fail ln "unknown ro attribute '%s'" k)
            b.b_attrs;
          flush_du ();
          routines := r :: !routines
      | "cl" ->
          let c =
            { cl_id = b.b_id; cl_name = b.b_name; cl_loc = null_loc;
              cl_kind = "class"; cl_parent = Pnone; cl_acs = "NA"; cl_templ = None;
              cl_stempl = None; cl_bases = []; cl_friends = []; cl_funcs = [];
              cl_members = []; cl_pos = null_extent }
          in
          let pending_member : member option ref = ref None in
          let flush_member () =
            match !pending_member with
            | Some m ->
                c.cl_members <- c.cl_members @ [ m ];
                pending_member := None
            | None -> ()
          in
          List.iter
            (fun (ln, k, v) ->
              match k with
              | "cloc" -> c.cl_loc <- parse_loc ln v
              | "ckind" -> c.cl_kind <- v
              | "cparent" -> c.cl_parent <- parse_parentref ln v
              | "cacs" -> c.cl_acs <- v
              | "ctempl" -> (
                  match split_id ln v with
                  | "te", n -> c.cl_templ <- Some n
                  | _ -> fail ln "ctempl expects te# reference")
              | "cstempl" -> (
                  match split_id ln v with
                  | "te", n -> c.cl_stempl <- Some n
                  | _ -> fail ln "cstempl expects te# reference")
              | "cbase" -> (
                  match String.split_on_char ' ' v with
                  | [ acs; virt; base ] -> (
                      match split_id ln base with
                      | "cl", n -> c.cl_bases <- c.cl_bases @ [ (acs, virt = "virt", n) ]
                      | _ -> fail ln "cbase expects cl# reference")
                  | _ -> fail ln "malformed cbase")
              | "cfriend" -> (
                  match split_id ln v with
                  | "cl", n -> c.cl_friends <- c.cl_friends @ [ `Cl n ]
                  | "ro", n -> c.cl_friends <- c.cl_friends @ [ `Ro n ]
                  | _ -> fail ln "cfriend expects cl# or ro#")
              | "cfunc" -> (
                  match String.split_on_char ' ' v with
                  | ro :: rest -> (
                      match split_id ln ro with
                      | "ro", n ->
                          let l, _ = parse_loc_words ln rest in
                          c.cl_funcs <- c.cl_funcs @ [ (n, l) ]
                      | _ -> fail ln "cfunc expects ro# reference")
                  | _ -> fail ln "malformed cfunc")
              | "cmem" ->
                  flush_member ();
                  pending_member :=
                    Some { m_name = v; m_loc = null_loc; m_acs = "NA"; m_kind = "var";
                           m_type = Tyref 0; m_static = false; m_mutable = false }
              | "cmloc" | "cmacs" | "cmkind" | "cmtype" | "cmstatic" | "cmmutable" -> (
                  match !pending_member with
                  | None -> fail ln "member attribute without cmem"
                  | Some m ->
                      let m' =
                        match k with
                        | "cmloc" -> { m with m_loc = parse_loc ln v }
                        | "cmacs" -> { m with m_acs = v }
                        | "cmkind" -> { m with m_kind = v }
                        | "cmtype" -> { m with m_type = parse_typeref ln v }
                        | "cmstatic" -> { m with m_static = true }
                        | _ -> { m with m_mutable = true }
                      in
                      pending_member := Some m')
              | "cpos" -> c.cl_pos <- parse_extent ln v
              | _ -> fail ln "unknown cl attribute '%s'" k)
            b.b_attrs;
          flush_member ();
          classes := c :: !classes
      | "ty" ->
          let info = ref Yerror in
          let loc = ref null_loc and parent = ref Pnone and acs = ref "NA" in
          let names = ref [] in
          let kind = ref "" in
          let yikind = ref "" and target = ref (Tyref 0) in
          let quals_const = ref false and quals_vol = ref false in
          let elem = ref (Tyref 0) and size = ref None in
          let rett = ref (Tyref 0) and args = ref [] and ellip = ref false in
          let excep = ref None in
          let constants = ref [] in
          List.iter
            (fun (ln, k, v) ->
              match k with
              | "yloc" -> loc := parse_loc ln v
              | "yparent" -> parent := parse_parentref ln v
              | "yacs" -> acs := v
              | "ykind" -> kind := v
              | "yikind" -> yikind := v
              | "yptr" | "yref" | "ytref" -> target := parse_typeref ln v
              | "yqual" ->
                  if v = "const" then quals_const := true
                  else if v = "volatile" then quals_vol := true
              | "yelem" -> elem := parse_typeref ln v
              | "ysize" -> size := int_of_string_opt v
              | "yrett" -> rett := parse_typeref ln v
              | "yargt" -> (
                  match String.split_on_char ' ' v with
                  | [ r; d ] -> args := !args @ [ (parse_typeref ln r, d = "T") ]
                  | [ r ] -> args := !args @ [ (parse_typeref ln r, false) ]
                  | _ -> fail ln "malformed yargt")
              | "yellip" -> ellip := true
              | "yexcep" ->
                  excep :=
                    Some
                      (List.map (parse_typeref ln)
                         (List.filter (fun s -> s <> "") (String.split_on_char ' ' v)))
              | "ycon" -> (
                  match String.split_on_char ' ' v with
                  | [ n; value ] -> constants := !constants @ [ (n, Int64.of_string value) ]
                  | _ -> fail ln "malformed ycon")
              | "yname" -> names := !names @ [ v ]
              | _ -> fail ln "unknown ty attribute '%s'" k)
            b.b_attrs;
          info :=
            (match !kind with
             | "ptr" -> Yptr !target
             | "ref" -> Yref !target
             | "tref" -> Ytref { target = !target; yconst = !quals_const; yvolatile = !quals_vol }
             | "array" -> Yarray { elem = !elem; size = !size }
             | "func" ->
                 Yfunc { rett = !rett; args = !args; ellipsis = !ellip;
                         cqual = !quals_const; exceptions = !excep }
             | "enum" -> Yenum { constants = !constants }
             | "tparam" -> Ytparam
             | "error" -> Yerror
             | _ -> Ybuiltin { yikind = !yikind });
          types :=
            { ty_id = b.b_id; ty_name = b.b_name; ty_loc = !loc; ty_parent = !parent;
              ty_acs = !acs; ty_info = !info; ty_names = !names }
            :: !types
      | "ma" ->
          let m =
            { ma_id = b.b_id; ma_name = b.b_name; ma_kind = "def"; ma_text = "";
              ma_loc = null_loc }
          in
          List.iter
            (fun (ln, k, v) ->
              match k with
              | "makind" -> m.ma_kind <- v
              | "matext" -> m.ma_text <- Pdb_write.unescape_text v
              | "maloc" -> m.ma_loc <- parse_loc ln v
              | _ -> fail ln "unknown ma attribute '%s'" k)
            b.b_attrs;
          macros := m :: !macros
      | p -> fail ln "unknown item prefix '%s'" p)
    blocks;
  t.files <- List.rev !files;
  t.types <- List.rev !types;
  t.classes <- List.rev !classes;
  t.routines <- List.rev !routines;
  t.templates <- List.rev !templates;
  t.namespaces <- List.rev !namespaces;
  t.pdb_macros <- List.rev !macros;
  t

let of_file path : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
