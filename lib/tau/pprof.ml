(** pprof-style profile reports (the textual face of Figure 7).

    TAU's [pprof] prints, per instrumented entity: %time, exclusive time,
    inclusive time, number of calls, child calls and name, sorted by
    inclusive time.  Times here are virtual cycles from the interpreter's
    deterministic cost model. *)

module Rt = Runtime

let format ?(title = "TAU profile") (p : Rt.t) : string =
  let entries = Rt.entries p in
  let total = Rt.total_time p in
  let b = Buffer.create 1024 in
  Printf.bprintf b "%s\n" title;
  Printf.bprintf b "%s\n" (String.make (String.length title) '-');
  Printf.bprintf b "%8s %12s %12s %8s %8s  %s\n" "%Time" "Exclusive" "Inclusive"
    "#Call" "#ChildCalls" "Name";
  List.iter
    (fun (e : Rt.entry) ->
      let pct =
        if total = 0L then 0.0
        else Int64.to_float e.e_inclusive /. Int64.to_float total *. 100.0
      in
      Printf.bprintf b "%8.1f %12Ld %12Ld %8d %8d  %s\n" pct e.e_exclusive
        e.e_inclusive e.e_calls e.e_child_calls e.e_name)
    entries;
  Buffer.contents b

(** Machine-readable rows: (name, calls, child calls, exclusive, inclusive,
    %time). *)
let rows (p : Rt.t) : (string * int * int * int64 * int64 * float) list =
  let total = Rt.total_time p in
  List.map
    (fun (e : Rt.entry) ->
      let pct =
        if total = 0L then 0.0
        else Int64.to_float e.e_inclusive /. Int64.to_float total *. 100.0
      in
      (e.e_name, e.e_calls, e.e_child_calls, e.e_exclusive, e.e_inclusive, pct))
    (Rt.entries p)

(** Event trace dump (TAU's tracing mode). *)
let format_trace (p : Rt.t) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun ev ->
      match ev with
      | Rt.Enter (name, ts) -> Printf.bprintf b "%12Ld ENTER %s\n" ts name
      | Rt.Exit (name, ts) -> Printf.bprintf b "%12Ld EXIT  %s\n" ts name)
    (Rt.events p);
  Buffer.contents b
