(** pprof-style profile reports (the textual face of Figure 7).

    TAU's [pprof] prints, per instrumented entity: %time, exclusive time,
    inclusive time, number of calls, child calls and name, sorted by
    inclusive time.  Times here are virtual cycles from the interpreter's
    deterministic cost model. *)

module Rt = Runtime

(** One row of a pprof report, decoupled from the interpreter's [Rt.entry]
    so other producers can borrow the exact format — the {!Pdt_util.Trace}
    flat-profile export renders compiler self-profiles through this very
    function, dogfooding the paper's own report layout. *)
type row = {
  r_name : string;
  r_calls : int;
  r_child_calls : int;
  r_exclusive : int64;
  r_inclusive : int64;
}

(** Render rows in pprof's layout, in the caller's order; [total] is the
    program total the %Time column is relative to. *)
let format_rows ?(title = "TAU profile") ~(total : int64) (rows : row list) :
    string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "%s\n" title;
  Printf.bprintf b "%s\n" (String.make (String.length title) '-');
  Printf.bprintf b "%8s %12s %12s %8s %8s  %s\n" "%Time" "Exclusive" "Inclusive"
    "#Call" "#ChildCalls" "Name";
  List.iter
    (fun r ->
      let pct =
        if total = 0L then 0.0
        else Int64.to_float r.r_inclusive /. Int64.to_float total *. 100.0
      in
      Printf.bprintf b "%8.1f %12Ld %12Ld %8d %8d  %s\n" pct r.r_exclusive
        r.r_inclusive r.r_calls r.r_child_calls r.r_name)
    rows;
  Buffer.contents b

let format ?(title = "TAU profile") (p : Rt.t) : string =
  format_rows ~title ~total:(Rt.total_time p)
    (List.map
       (fun (e : Rt.entry) ->
         { r_name = e.e_name; r_calls = e.e_calls;
           r_child_calls = e.e_child_calls; r_exclusive = e.e_exclusive;
           r_inclusive = e.e_inclusive })
       (Rt.entries p))

(** Machine-readable rows: (name, calls, child calls, exclusive, inclusive,
    %time). *)
let rows (p : Rt.t) : (string * int * int * int64 * int64 * float) list =
  let total = Rt.total_time p in
  List.map
    (fun (e : Rt.entry) ->
      let pct =
        if total = 0L then 0.0
        else Int64.to_float e.e_inclusive /. Int64.to_float total *. 100.0
      in
      (e.e_name, e.e_calls, e.e_child_calls, e.e_exclusive, e.e_inclusive, pct))
    (Rt.entries p)

(** Event trace dump (TAU's tracing mode). *)
let format_trace (p : Rt.t) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun ev ->
      match ev with
      | Rt.Enter (name, ts) -> Printf.bprintf b "%12Ld ENTER %s\n" ts name
      | Rt.Exit (name, ts) -> Printf.bprintf b "%12Ld EXIT  %s\n" ts name)
    (Rt.events p);
  Buffer.contents b
