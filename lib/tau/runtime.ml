(** The TAU measurement runtime: timers, profile table, event trace.

    In the paper, instrumented code linked against the TAU library collects
    run-time statistics.  Here the "runtime" is driven by the interpreter:
    entering an instrumented routine starts a timer; leaving stops it.  Time
    is measured in deterministic virtual cycles supplied by the interpreter's
    cost model, so profiles are exactly reproducible. *)

type entry = {
  e_name : string;
  mutable e_calls : int;
  mutable e_inclusive : int64;
  mutable e_exclusive : int64;
  mutable e_child_calls : int;
}

type timer = {
  t_name : string;
  t_start : int64;
  mutable t_child : int64;  (** cycles spent in instrumented children *)
}

type event = Enter of string * int64 | Exit of string * int64

type t = {
  table : (string, entry) Hashtbl.t;
  mutable stack : timer list;
  mutable events : event list;  (** reversed *)
  mutable tracing : bool;
  callpath : bool;
      (** TAU callpath mode: timer names become "parent => child" paths *)
  throttle : (int * int64) option;
      (** (call threshold, per-call cycle threshold): a timer exceeding the
          call count whose mean inclusive time is below the per-call
          threshold stops being measured (TAU's runtime throttling) *)
}

let create ?(tracing = false) ?(callpath = false) ?throttle () =
  { table = Hashtbl.create 64; stack = []; events = []; tracing; callpath;
    throttle }

let entry t name =
  match Hashtbl.find_opt t.table name with
  | Some e -> e
  | None ->
      let e =
        { e_name = name; e_calls = 0; e_inclusive = 0L; e_exclusive = 0L;
          e_child_calls = 0 }
      in
      Hashtbl.replace t.table name e;
      e

(** Start a timer.  Returns [false] when the timer is throttled (the caller
    must then not expect a matching {!exit_}). *)
let enter t name ~now =
  let name =
    if t.callpath then
      match t.stack with
      | parent :: _ -> parent.t_name ^ " => " ^ name
      | [] -> name
    else name
  in
  let e = entry t name in
  let throttled =
    match t.throttle with
    | Some (max_calls, min_percall) ->
        e.e_calls > max_calls
        && Int64.div e.e_inclusive (Int64.of_int (max e.e_calls 1)) < min_percall
    | None -> false
  in
  e.e_calls <- e.e_calls + 1;
  if throttled then false
  else begin
    (match t.stack with
     | parent :: _ ->
         (entry t parent.t_name).e_child_calls
         <- (entry t parent.t_name).e_child_calls + 1
     | [] -> ());
    t.stack <- { t_name = name; t_start = now; t_child = 0L } :: t.stack;
    if t.tracing then t.events <- Enter (name, now) :: t.events;
    true
  end

let exit_ t ~now =
  match t.stack with
  | [] -> ()
  | timer :: rest ->
      let inclusive = Int64.sub now timer.t_start in
      let exclusive = Int64.sub inclusive timer.t_child in
      let e = entry t timer.t_name in
      e.e_inclusive <- Int64.add e.e_inclusive inclusive;
      e.e_exclusive <- Int64.add e.e_exclusive exclusive;
      (match rest with
       | parent :: _ -> parent.t_child <- Int64.add parent.t_child inclusive
       | [] -> ());
      t.stack <- rest;
      if t.tracing then t.events <- Exit (timer.t_name, now) :: t.events

(** Unwind all open timers (e.g. after an uncaught exception). *)
let unwind t ~now = while t.stack <> [] do exit_ t ~now done

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> compare (b.e_inclusive, b.e_name) (a.e_inclusive, a.e_name))

let events t = List.rev t.events

let total_time t =
  (* inclusive time of top-level entries ≈ max inclusive *)
  List.fold_left (fun acc e -> max acc e.e_inclusive) 0L (entries t)
