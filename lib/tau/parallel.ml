(** Parallel profiling simulation.

    The paper's setting is "parallel and distributed code executing across
    heterogeneous platforms"; TAU aggregates per-node profiles.  Real MPI is
    outside this container, so parallel execution is simulated: the program
    is run once per rank with the builtin [mpi_rank()]/[mpi_size()]
    reporting different values (SPMD style), and the per-rank profiles are
    aggregated the way TAU's [pprof -s] does (mean / min / max over nodes). *)

module Rt = Runtime

(** The header exposing the simulated MPI queries to C++ sources. *)
let mpi_header =
  {|#ifndef PDT_MPI_H
#define PDT_MPI_H

int mpi_rank();
int mpi_size();

#endif
|}

let mount_mpi vfs = Pdt_util.Vfs.add_file vfs "/pdt/include/kai/mpi.h" mpi_header

type rank_result = { rank : int; result : Interp.result }

(** Run the program once per rank. *)
let run_ranks ?entry ?instrumented ?tracing ?callpath ?throttle ?max_steps
    ~nranks (prog : Pdt_il.Il.program) : rank_result list =
  List.init nranks (fun rank ->
      { rank;
        result =
          Interp.run ?entry ?instrumented ?tracing ?callpath ?throttle
            ?max_steps ~mpi:(rank, nranks) prog })

type agg = {
  a_name : string;
  a_ranks : int;           (** ranks in which the timer fired *)
  a_calls_total : int;
  a_incl_mean : float;
  a_incl_min : int64;
  a_incl_max : int64;
  a_excl_mean : float;
}

(** Cross-rank aggregation of the per-rank profiles. *)
let aggregate (rs : rank_result list) : agg list =
  let table : (string, (int * int64 * int64) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun rr ->
      List.iter
        (fun (e : Rt.entry) ->
          let cur =
            match Hashtbl.find_opt table e.e_name with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace table e.e_name l;
                l
          in
          cur := (e.e_calls, e.e_inclusive, e.e_exclusive) :: !cur)
        (Rt.entries rr.result.Interp.profile))
    rs;
  Hashtbl.fold
    (fun name samples acc ->
      let n = List.length !samples in
      let calls = List.fold_left (fun a (c, _, _) -> a + c) 0 !samples in
      let incls = List.map (fun (_, i, _) -> i) !samples in
      let excls = List.map (fun (_, _, e) -> e) !samples in
      let sum l = List.fold_left Int64.add 0L l in
      { a_name = name;
        a_ranks = n;
        a_calls_total = calls;
        a_incl_mean = Int64.to_float (sum incls) /. float_of_int n;
        a_incl_min = List.fold_left min Int64.max_int incls;
        a_incl_max = List.fold_left max 0L incls;
        a_excl_mean = Int64.to_float (sum excls) /. float_of_int n }
      :: acc)
    table []
  |> List.sort (fun a b -> compare (b.a_incl_mean, b.a_name) (a.a_incl_mean, a.a_name))

(** The pprof-style mean summary across ranks. *)
let format_summary ?(title = "TAU parallel profile (mean over ranks)")
    (rs : rank_result list) : string =
  let aggs = aggregate rs in
  let b = Buffer.create 1024 in
  Printf.bprintf b "%s\n%s\n" title (String.make (String.length title) '-');
  Printf.bprintf b "%6s %12s %12s %12s %8s %6s  %s\n" "ranks" "mean incl"
    "min incl" "max incl" "#calls" "imbal%" "Name";
  List.iter
    (fun a ->
      let imbalance =
        if a.a_incl_mean > 0.0 then
          (Int64.to_float a.a_incl_max -. a.a_incl_mean) /. a.a_incl_mean *. 100.0
        else 0.0
      in
      Printf.bprintf b "%6d %12.0f %12Ld %12Ld %8d %6.1f  %s\n" a.a_ranks
        a.a_incl_mean a.a_incl_min a.a_incl_max a.a_calls_total imbalance a.a_name)
    aggs;
  Buffer.contents b
