(** The TAU instrumentor (paper §4.1, Figure 6).

    Iterates over the PDB descriptions of functions and templates, plans
    which entities to annotate, and rewrites the original source files,
    inserting [TAU_PROFILE] measurement macros at the top of each routine
    body.  For member functions the type argument is [CT( *this )] so that the
    unique template instantiation is incorporated into the timer name at run
    time — exactly the strategy of Figure 6. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

(** One planned instrumentation: where to insert, and what. *)
type item_ref = {
  ir_name : string;          (** display name for the TAU_PROFILE label *)
  ir_file : string;
  ir_line : int;             (** line of the opening brace of the body *)
  ir_col : int;              (** column of the opening brace *)
  ir_signature : string;
  ir_use_ct_this : bool;     (** member function: add CT( *this ) *)
  ir_group : string;         (** TAU profile group *)
}

let loc_cmp a b =
  match compare a.ir_file b.ir_file with
  | 0 -> ( match compare a.ir_line b.ir_line with 0 -> compare a.ir_col b.ir_col | c -> c)
  | c -> c

(* body start of a fat item, if instrumentable *)
let body_start (pos : P.extent) =
  if pos.P.bstart = P.null_loc then None else Some pos.P.bstart

(** Plan instrumentation for the routines and templates defined in [file]
    (or everywhere when [file] is [None]).

    This is the Figure 6 algorithm: iterate [getTemplateVec()], keep only
    TE_MEMFUNC / TE_STATMEM / TE_FUNC kinds, and decide per kind whether the
    measured type needs [CT( *this )].  Non-template routines with bodies are
    instrumented as plain functions. *)
let plan ?file (d : D.t) : item_ref list =
  let file_name fid =
    match D.file d fid with Some f -> Some f.P.so_name | None -> None
  in
  let in_target (l : P.loc) =
    match (file, file_name l.P.lfile) with
    | None, Some _ -> true
    | Some want, Some got -> String.equal want got
    | _, None -> false
  in
  let items = ref [] in
  (* templates: the Figure 6 loop *)
  List.iter
    (fun (te : P.template_item) ->
      if in_target te.te_loc then begin                                   (* (1) *)
        let tekind = te.P.te_kind in
        if tekind = "memfunc" || tekind = "statmem" || tekind = "func" then begin
          (* (2): templates need some processing.  The kind tells whether to
             put a CT( *this ) in the type. *)
          match body_start te.P.te_pos with
          | None -> ()
          | Some b ->
              let use_ct =
                (* (3): no parent class for func/statmem; member functions
                   get CT( *this ) *)
                not (tekind = "func" || tekind = "statmem")
              in
              (match file_name b.P.lfile with
               | Some fn ->
                   items :=
                     { ir_name = te.P.te_name; ir_file = fn; ir_line = b.P.lline;
                       ir_col = b.P.lcol; ir_signature = "template";
                       ir_use_ct_this = use_ct; ir_group = "TAU_USER" }
                     :: !items
               | None -> ())
        end
      end)
    (D.templates d);
  (* member functions defined inline inside a class template: they have no
     memfunc template item of their own, but their instantiations' body
     positions all point at the pattern text, so instrumenting that location
     once covers every instantiation (CT( *this ) disambiguates at run
     time) *)
  List.iter
    (fun (r : P.routine_item) ->
      match r.P.ro_templ with
      | Some te_id
        when (match D.template d te_id with
              | Some te -> te.P.te_kind = "class" || te.P.te_kind = "memclass"
              | None -> false)
             && r.P.ro_defined && in_target r.P.ro_loc -> (
          match body_start r.P.ro_pos with
          | None -> ()
          | Some b -> (
              match file_name b.P.lfile with
              | Some fn ->
                  items :=
                    { ir_name = r.P.ro_name; ir_file = fn; ir_line = b.P.lline;
                      ir_col = b.P.lcol; ir_signature = "template";
                      ir_use_ct_this = not r.P.ro_static;
                      ir_group = "TAU_USER" }
                    :: !items
              | None -> ()))
      | _ -> ())
    (D.routines d);
  (* non-template routines defined in the target file *)
  List.iter
    (fun (r : P.routine_item) ->
      if r.P.ro_templ = None && r.P.ro_defined && in_target r.P.ro_loc then
        match body_start r.P.ro_pos with
        | None -> ()
        | Some b -> (
            match file_name b.P.lfile with
            | Some fn ->
                let is_member = match r.P.ro_parent with P.Pcl _ -> true | _ -> false in
                items :=
                  { ir_name = D.routine_full_name d r; ir_file = fn;
                    ir_line = b.P.lline; ir_col = b.P.lcol;
                    ir_signature = D.typeref_name d r.P.ro_sig;
                    ir_use_ct_this = is_member && not r.P.ro_static;
                    ir_group = "TAU_USER" }
                  :: !items
            | None -> ())
      )
    (D.routines d);
  (* multiple instantiations share one pattern body: dedupe by location *)
  let seen = Hashtbl.create 64 in
  let deduped =
    List.filter
      (fun ir ->
        let key = (ir.ir_file, ir.ir_line, ir.ir_col) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (List.rev !items)
  in
  List.sort loc_cmp deduped   (* sort(itemvec.begin(), itemvec.end(), locCmp) *)

(** Restrict a plan to routines the MHP analysis marks as possibly
    concurrent ([tau_instr --mhp-only]): instrument exactly where thread
    interleavings can happen, nothing else.  The filter matches plan
    entries by body location, so template patterns whose instantiations
    participate in MHP pairs are kept too. *)
let mhp_only (d : D.t) (plan : item_ref list) : item_ref list =
  let m = Pdt_analyzer.Mhp.compute (D.pdb d) in
  let keep = Hashtbl.create 32 in
  List.iter
    (fun id ->
      match D.routine d id with
      | Some r -> (
          match body_start r.P.ro_pos with
          | Some b -> (
              match D.file d b.P.lfile with
              | Some f -> Hashtbl.replace keep (f.P.so_name, b.P.lline, b.P.lcol) ()
              | None -> ())
          | None -> ())
      | None -> ())
    (Pdt_analyzer.Mhp.concurrent_routines m);
  List.filter (fun ir -> Hashtbl.mem keep (ir.ir_file, ir.ir_line, ir.ir_col)) plan

(** The text inserted after a routine's opening brace. *)
let macro_text (ir : item_ref) : string =
  let type_arg =
    if ir.ir_use_ct_this then "CT(*this)"
    else Printf.sprintf "%S" ir.ir_signature
  in
  Printf.sprintf " TAU_PROFILE(%S, %s, %s);" ir.ir_name type_arg ir.ir_group

(** Rewrite one source file, inserting the planned TAU macros.  [source] is
    the original text of [file]. *)
let rewrite ~file ~source (plan : item_ref list) : string =
  let for_file =
    List.filter (fun ir -> String.equal ir.ir_file file) plan
    (* bottom-up so earlier insertions don't shift later positions *)
    |> List.sort (fun a b -> loc_cmp b a)
  in
  let lines = String.split_on_char '\n' source |> Array.of_list in
  List.iter
    (fun ir ->
      let li = ir.ir_line - 1 in
      if li >= 0 && li < Array.length lines then begin
        let line = lines.(li) in
        (* insert right after the opening brace at (or after) ir_col *)
        let brace =
          let from = min (max 0 (ir.ir_col - 1)) (String.length line - 1) in
          let rec find i =
            if i >= String.length line then None
            else if line.[i] = '{' then Some i
            else find (i + 1)
          in
          match find (max from 0) with
          | Some i -> Some i
          | None -> find 0
        in
        match brace with
        | Some i ->
            let before = String.sub line 0 (i + 1) in
            let after = String.sub line (i + 1) (String.length line - i - 1) in
            lines.(li) <- before ^ macro_text ir ^ after
        | None ->
            (* body brace on a later line; look downward *)
            let rec scan li' =
              if li' < Array.length lines then
                match String.index_opt lines.(li') '{' with
                | Some i ->
                    let line' = lines.(li') in
                    let before = String.sub line' 0 (i + 1) in
                    let after = String.sub line' (i + 1) (String.length line' - i - 1) in
                    lines.(li') <- before ^ macro_text ir ^ after
                | None -> scan (li' + 1)
            in
            scan li
      end)
    for_file;
  String.concat "\n" (Array.to_list lines)

(** The declarations instrumented code needs; prepended by
    {!instrument_vfs} as a system header ([tau.h]). *)
let tau_header =
  {|#ifndef TAU_H
#define TAU_H

#define TAU_USER 0
#define TAU_DEFAULT 1

void TAU_PROFILE(const char *name, const char *type, int group);
const char *CT(...);

#endif
|}

(** Instrument all the planned files inside a VFS copy: returns a new VFS
    with rewritten sources (and [tau.h] mounted), ready for recompilation. *)
let instrument_vfs (vfs : Pdt_util.Vfs.t) (plan : item_ref list) :
    Pdt_util.Vfs.t * int =
  let out = Pdt_util.Vfs.copy vfs in
  (* rewrite each distinct file mentioned in the plan *)
  let files = List.sort_uniq compare (List.map (fun ir -> ir.ir_file) plan) in
  let count = ref 0 in
  List.iter
    (fun file ->
      match Pdt_util.Vfs.read_raw vfs file with
      | Some source ->
          let src' = rewrite ~file ~source plan in
          (* make the TAU declarations visible *)
          let src' = "#include <tau.h>\n" ^ src' in
          Pdt_util.Vfs.add_file out file src';
          incr count
      | None -> ())
    files;
  Pdt_util.Vfs.add_file out "/pdt/include/kai/tau.h" tau_header;
  (out, !count)

(* ------------------------------------------------------------------ *)
(* Selective instrumentation                                           *)
(* ------------------------------------------------------------------ *)

(** TAU's selective-instrumentation mechanism: an exclude list (and an
    optional include-only list) of routine names, with [*] wildcards. *)
type selection = {
  sel_exclude : string list;
  sel_include_only : string list option;
}

let no_selection = { sel_exclude = []; sel_include_only = None }

(* glob match with '*' wildcards *)
let glob_match pattern name =
  let np = String.length pattern and nn = String.length name in
  (* dp.(i) = set of pattern positions reachable after consuming i chars *)
  let rec go pi ni =
    if pi = np then ni = nn
    else if pattern.[pi] = '*' then
      go (pi + 1) ni || (ni < nn && go pi (ni + 1))
    else ni < nn && pattern.[pi] = name.[ni] && go (pi + 1) (ni + 1)
  in
  go 0 0

let selected sel name =
  let excluded = List.exists (fun p -> glob_match p name) sel.sel_exclude in
  let included =
    match sel.sel_include_only with
    | None -> true
    | Some pats -> List.exists (fun p -> glob_match p name) pats
  in
  included && not excluded

(** Parse a TAU-style selective instrumentation file:
    {v
    BEGIN_EXCLUDE_LIST
    matvec
    vector*
    END_EXCLUDE_LIST
    BEGIN_INCLUDE_LIST
    solve
    END_INCLUDE_LIST
    v} *)
let parse_selection (text : string) : selection =
  let lines = List.map String.trim (String.split_on_char '\n' text) in
  let exclude = ref [] and include_ = ref [] and has_include = ref false in
  let mode = ref `None in
  List.iter
    (fun line ->
      match line with
      | "" -> ()
      | "BEGIN_EXCLUDE_LIST" -> mode := `Exclude
      | "END_EXCLUDE_LIST" | "END_INCLUDE_LIST" -> mode := `None
      | "BEGIN_INCLUDE_LIST" ->
          mode := `Include;
          has_include := true
      | l when String.length l > 0 && l.[0] = '#' -> ()
      | l -> (
          match !mode with
          | `Exclude -> exclude := !exclude @ [ l ]
          | `Include -> include_ := !include_ @ [ l ]
          | `None -> ()))
    lines;
  { sel_exclude = !exclude;
    sel_include_only = (if !has_include then Some !include_ else None) }

(** Apply a selection to a plan (TAU applies it before rewriting). *)
let apply_selection (sel : selection) (plan : item_ref list) : item_ref list =
  List.filter (fun ir -> selected sel ir.ir_name) plan
