(** An interpreter for elaborated IL programs — the dynamic-analysis
    substrate.

    The paper's TAU workflow compiles instrumented C++ and runs it natively;
    in this reproduction the instrumented program runs on this interpreter
    instead (see DESIGN.md, substitutions).  It executes the AST bodies the
    front end attached to IL routines, dispatching member calls dynamically
    (so virtual dispatch falls out of the object's dynamic class), with:

    - a deterministic virtual-cycle cost model, so profiles are reproducible;
    - builtin implementations of the mini-STL ([vector], [ostream],
      [string]) and of the TAU measurement macros ([TAU_PROFILE], [CT]);
    - C++ exceptions mapped onto OCaml exceptions. *)

open Pdt_il
open Il
module Ast = Pdt_ast.Ast
module Rt = Runtime

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type value =
  | Vunit
  | Vint of int64
  | Vdouble of float
  | Vbool of bool
  | Vchar of int
  | Vstr of string
  | Vobj of obj
  | Vptr of value ref
  | Vnull
  | Varr of value ref array

and obj = {
  o_class : Il.class_id;
  o_fields : (string, value ref) Hashtbl.t;
  mutable o_builtin : builtin option;
}

and builtin =
  | Bvector of value ref array ref * int ref  (** storage, logical size *)
  | Bostream                                   (** writes to the state's output *)
  | Bstring of string ref

(* C++ control flow *)
exception Return_exc of value
exception Break_exc
exception Continue_exc
exception Cpp_exception of value

type frame = {
  mutable blocks : (string, value ref) Hashtbl.t list;  (** innermost first *)
  f_this : obj option;
  mutable f_timers : int;  (** TAU timers opened in this frame *)
  f_ret_ref : bool;  (** the routine returns a reference (T &) *)
}

type t = {
  prog : Il.program;
  globals : (string, value ref) Hashtbl.t;
  output : Buffer.t;
  profiler : Rt.t;
  mutable cycles : int64;
  mutable steps : int64;
  max_steps : int64;
  mutable max_depth : int;
  mutable depth : int;
  instrumented : bool;  (** whether TAU_PROFILE statements are honoured *)
  mpi : int * int;      (** simulated (rank, size) for mpi_rank()/mpi_size() *)
  class_by_name : (string, Il.class_id) Hashtbl.t;
      (** display name -> class; the IL is immutable during execution *)
}

(* ------------------------------------------------------------------ *)
(* Cost model (deterministic virtual cycles)                           *)
(* ------------------------------------------------------------------ *)

let cost_expr = 1L
let cost_call = 5L
let cost_builtin = 2L

let tick t c =
  t.cycles <- Int64.add t.cycles c;
  t.steps <- Int64.add t.steps 1L;
  if t.steps > t.max_steps then error "step limit exceeded (infinite loop?)"

(* ------------------------------------------------------------------ *)
(* Helpers over the IL                                                 *)
(* ------------------------------------------------------------------ *)

let class_base_name (c : Il.class_entity) =
  match String.index_opt c.cl_name '<' with
  | Some i -> String.sub c.cl_name 0 i
  | None -> c.cl_name

let rec member_funcs t (cl : Il.class_id) name : Il.routine_entity list =
  let c = Il.class_ t.prog cl in
  match Il.find_member_funcs t.prog c name with
  | [] ->
      let rec through = function
        | [] -> []
        | (b : Il.base_spec) :: rest -> (
            match member_funcs t b.ba_class name with
            | [] -> through rest
            | fs -> fs)
      in
      through c.cl_bases
  | fs -> fs

let rec all_data_members t (cl : Il.class_id) : Il.data_member list =
  let c = Il.class_ t.prog cl in
  List.concat_map (fun (b : Il.base_spec) -> all_data_members t b.ba_class) c.cl_bases
  @ c.cl_members

(* dynamic overload pick: by arity, then by value-kind proximity *)
let pick_overload_dyn t (cands : Il.routine_entity list) (args : value list) :
    Il.routine_entity option =
  let nargs = List.length args in
  let viable =
    List.filter
      (fun (r : Il.routine_entity) ->
        let nparams = List.length r.ro_params in
        let required =
          List.length (List.filter (fun p -> not p.pi_has_default) r.ro_params)
        in
        let ellipsis =
          match (Il.type_ t.prog r.ro_sig).ty_kind with
          | Tfunc { ellipsis; _ } -> ellipsis
          | _ -> false
        in
        nargs >= required && (nargs <= nparams || ellipsis))
      cands
  in
  let kind_score (p : Il.param_info) (v : value) =
    let pty = Il.strip_qual_ref t.prog p.pi_type in
    match ((Il.type_ t.prog pty).ty_kind, v) with
    | Tclass pc, Vobj o -> if pc = o.o_class then 3 else 2
    | Tclass _, _ -> 0
    | Tbuiltin { ykind = "int"; _ }, Vint _ -> 3
    | Tbuiltin { ykind = "float"; _ }, Vdouble _ -> 3
    | Tbuiltin { ykind = "bool"; _ }, Vbool _ -> 3
    | Tbuiltin { ykind = "char"; _ }, Vchar _ -> 3
    | Tbuiltin _, (Vint _ | Vdouble _ | Vbool _ | Vchar _) -> 2
    | Tptr _, (Vptr _ | Vnull | Vstr _) -> 3
    | _ -> 1
  in
  let score (r : Il.routine_entity) =
    let rec go ps vs acc =
      match (ps, vs) with
      | _, [] | [], _ -> acc
      | p :: ps', v :: vs' -> go ps' vs' (acc + kind_score p v)
    in
    go r.ro_params args 0
  in
  List.fold_left
    (fun best r ->
      match best with
      | None -> Some r
      | Some b -> if score r > score b then Some r else best)
    None viable

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let rec copy_value (v : value) : value =
  match v with
  | Vobj o -> Vobj (copy_obj o)
  | v -> v

and copy_obj (o : obj) : obj =
  let fields = Hashtbl.create (Hashtbl.length o.o_fields) in
  Hashtbl.iter (fun k cell -> Hashtbl.replace fields k (ref (copy_value !cell))) o.o_fields;
  { o_class = o.o_class;
    o_fields = fields;
    o_builtin =
      (match o.o_builtin with
       | Some (Bvector (store, size)) ->
           Some
             (Bvector
                (ref (Array.map (fun c -> ref (copy_value !c)) !store), ref !size))
       | Some (Bstring s) -> Some (Bstring (ref !s))
       | (Some Bostream | None) as b -> b) }

let truthy = function
  | Vbool b -> b
  | Vint n -> n <> 0L
  | Vdouble f -> f <> 0.0
  | Vchar c -> c <> 0
  | Vnull -> false
  | Vptr _ -> true
  | Vstr s -> s <> ""
  | Vunit -> false
  | Vobj _ | Varr _ -> true

let to_float = function
  | Vint n -> Int64.to_float n
  | Vdouble f -> f
  | Vbool b -> if b then 1.0 else 0.0
  | Vchar c -> float_of_int c
  | _ -> error "expected numeric value"

let to_int = function
  | Vint n -> n
  | Vdouble f -> Int64.of_float f
  | Vbool b -> if b then 1L else 0L
  | Vchar c -> Int64.of_int c
  | Vnull -> 0L
  | _ -> error "expected integer value"

let value_to_display_string = function
  | Vint n -> Int64.to_string n
  | Vdouble f ->
      (* C++ iostream default formatting: up to 6 significant digits *)
      let s = Printf.sprintf "%.6g" f in
      s
  | Vbool b -> if b then "1" else "0"
  | Vchar c -> String.make 1 (Char.chr (c land 0xff))
  | Vstr s -> s
  | Vnull -> "0"
  | Vunit -> ""
  | Vptr _ -> "<ptr>"
  | Vobj _ -> "<object>"
  | Varr _ -> "<array>"

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let create ?(instrumented = true) ?(tracing = false) ?callpath ?throttle
    ?(max_steps = 50_000_000L) ?(mpi = (0, 1)) (prog : Il.program) : t =
  let class_by_name = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id (c : Il.class_entity) ->
      if not (Hashtbl.mem class_by_name c.cl_name) then
        Hashtbl.replace class_by_name c.cl_name id)
    prog.Il.classes;
  { prog; globals = Hashtbl.create 64; output = Buffer.create 256;
    profiler = Rt.create ~tracing ?callpath ?throttle (); cycles = 0L;
    steps = 0L; max_steps; max_depth = 0; depth = 0;
    instrumented = true && instrumented; mpi; class_by_name }

(* type name of a value, used by the CT() macro *)
let type_name_of_value t = function
  | Vint _ -> "int"
  | Vdouble _ -> "double"
  | Vbool _ -> "bool"
  | Vchar _ -> "char"
  | Vstr _ -> "const char *"
  | Vobj o -> (Il.class_ t.prog o.o_class).cl_name
  | Vptr _ -> "<ptr>"
  | Vnull -> "<null>"
  | Vunit -> "void"
  | Varr _ -> "<array>"

(* default value for a type *)
let rec default_value t (ty : Il.type_id) : value =
  match (Il.type_ t.prog ty).ty_kind with
  | Tbuiltin { ykind = "int"; _ } -> Vint 0L
  | Tbuiltin { ykind = "float"; _ } -> Vdouble 0.0
  | Tbuiltin { ykind = "bool"; _ } -> Vbool false
  | Tbuiltin { ykind = "char"; _ } -> Vchar 0
  | Tbuiltin _ -> Vint 0L
  | Tqual { base; _ } -> default_value t base
  | Tref _ | Tptr _ -> Vnull
  | Tarray (elem, Some n) -> Varr (Array.init n (fun _ -> ref (default_value t elem)))
  | Tarray (_, None) -> Vnull
  | Tclass cl -> Vobj (make_object t cl)
  | Tenum _ -> Vint 0L
  | Tfunc _ | Ttparam _ | Terror -> Vnull

(* allocate an object with default-initialized fields (no ctor run) *)
and make_object t (cl : Il.class_id) : obj =
  let c = Il.class_ t.prog cl in
  let o = { o_class = cl; o_fields = Hashtbl.create 8; o_builtin = None } in
  (match class_base_name c with
   | "vector" -> o.o_builtin <- Some (Bvector (ref [||], ref 0))
   | "ostream" -> o.o_builtin <- Some Bostream
   | "string" -> o.o_builtin <- Some (Bstring (ref ""))
   | _ ->
       List.iter
         (fun (m : Il.data_member) ->
           if not m.dm_static then
             Hashtbl.replace o.o_fields m.dm_name (ref (default_value t m.dm_type)))
         (all_data_members t cl));
  o

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

let push_block (f : frame) = f.blocks <- Hashtbl.create 8 :: f.blocks
let pop_block (f : frame) =
  match f.blocks with [] -> () | _ :: rest -> f.blocks <- rest

let bind_local (f : frame) name cell =
  match f.blocks with
  | b :: _ -> Hashtbl.replace b name cell
  | [] -> error "no active block"

let rec find_local blocks name =
  match blocks with
  | [] -> None
  | b :: rest -> (
      match Hashtbl.find_opt b name with
      | Some c -> Some c
      | None -> find_local rest name)

let lookup_cell t (f : frame) name : value ref option =
  match find_local f.blocks name with
  | Some c -> Some c
  | None -> (
      (* implicit this->field *)
      match f.f_this with
      | Some o when Hashtbl.mem o.o_fields name -> Hashtbl.find_opt o.o_fields name
      | _ -> Hashtbl.find_opt t.globals name)

(* ------------------------------------------------------------------ *)
(* Binary operations on scalars                                        *)
(* ------------------------------------------------------------------ *)

let rec arith_binop op (a : value) (b : value) : value =
  let is_float = match (a, b) with Vdouble _, _ | _, Vdouble _ -> true | _ -> false in
  let bool v = Vbool v in
  match op with
  | "+" when is_float -> Vdouble (to_float a +. to_float b)
  | "-" when is_float -> Vdouble (to_float a -. to_float b)
  | "*" when is_float -> Vdouble (to_float a *. to_float b)
  | "/" when is_float -> Vdouble (to_float a /. to_float b)
  | "+" -> (
      match (a, b) with
      | Vstr x, Vstr y -> Vstr (x ^ y)
      | _ -> Vint (Int64.add (to_int a) (to_int b)))
  | "-" -> Vint (Int64.sub (to_int a) (to_int b))
  | "*" -> Vint (Int64.mul (to_int a) (to_int b))
  | "/" ->
      let d = to_int b in
      if d = 0L then raise (Cpp_exception (Vstr "division by zero"))
      else Vint (Int64.div (to_int a) d)
  | "%" ->
      let d = to_int b in
      if d = 0L then raise (Cpp_exception (Vstr "division by zero"))
      else Vint (Int64.rem (to_int a) d)
  | "<<" -> Vint (Int64.shift_left (to_int a) (Int64.to_int (to_int b)))
  | ">>" -> Vint (Int64.shift_right (to_int a) (Int64.to_int (to_int b)))
  | "&" -> Vint (Int64.logand (to_int a) (to_int b))
  | "|" -> Vint (Int64.logor (to_int a) (to_int b))
  | "^" -> Vint (Int64.logxor (to_int a) (to_int b))
  | "==" ->
      (match (a, b) with
       | Vstr x, Vstr y -> bool (x = y)
       | Vnull, (Vnull | Vptr _) | Vptr _, Vnull -> bool (a = Vnull && b = Vnull)
       | Vptr x, Vptr y -> bool (x == y)
       | _ when is_float -> bool (to_float a = to_float b)
       | _ -> bool (to_int a = to_int b))
  | "!=" -> (
      match arith_binop "==" a b with Vbool v -> bool (not v) | _ -> assert false)
  | "<" ->
      (match (a, b) with
       | Vstr x, Vstr y -> bool (x < y)
       | _ when is_float -> bool (to_float a < to_float b)
       | _ -> bool (to_int a < to_int b))
  | ">" ->
      (match (a, b) with
       | Vstr x, Vstr y -> bool (x > y)
       | _ when is_float -> bool (to_float a > to_float b)
       | _ -> bool (to_int a > to_int b))
  | "<=" -> (
      match arith_binop ">" a b with Vbool v -> bool (not v) | _ -> assert false)
  | ">=" -> (
      match arith_binop "<" a b with Vbool v -> bool (not v) | _ -> assert false)
  | op -> error "unsupported binary operator '%s'" op

(* ------------------------------------------------------------------ *)
(* Builtin class methods                                               *)
(* ------------------------------------------------------------------ *)

let vector_grow store size n =
  if n > Array.length !store then begin
    let bigger = Array.init (max n (2 * Array.length !store + 1)) (fun i ->
        if i < Array.length !store then !store.(i) else ref (Vint 0L))
    in
    store := bigger
  end;
  if n > !size then size := n

let builtin_method t (o : obj) (name : string) (args : value list) : value option =
  match (o.o_builtin, name) with
  | Some (Bvector (store, size)), _ -> (
      match (name, args) with
      | "vector", [] -> Some Vunit
      | "vector", [ n ] ->
          vector_grow store size (Int64.to_int (to_int n));
          Some Vunit
      | "~vector", _ -> Some Vunit
      | "size", [] -> Some (Vint (Int64.of_int !size))
      | "capacity", [] -> Some (Vint (Int64.of_int (Array.length !store)))
      | "empty", [] -> Some (Vbool (!size = 0))
      | "push_back", [ v ] ->
          vector_grow store size (!size + 1);
          !store.(!size - 1) := copy_value v;
          Some Vunit
      | "pop_back", [] ->
          if !size > 0 then size := !size - 1;
          Some Vunit
      | "operator[]", [ i ] ->
          let i = Int64.to_int (to_int i) in
          if i < 0 then raise (Cpp_exception (Vstr "vector index negative"))
          else begin
            vector_grow store size (i + 1);
            Some (Vptr !store.(i))  (* reference into the vector *)
          end
      | "front", [] -> if !size > 0 then Some (Vptr !store.(0)) else Some Vnull
      | "back", [] -> if !size > 0 then Some (Vptr !store.(!size - 1)) else Some Vnull
      | "clear", [] ->
          size := 0;
          Some Vunit
      | "resize", [ n ] ->
          let n = Int64.to_int (to_int n) in
          vector_grow store size n;
          size := n;
          Some Vunit
      | "reserve", [ n ] ->
          vector_grow store (ref !size) (Int64.to_int (to_int n));
          Some Vunit
      | _ -> None)
  | Some Bostream, "operator<<" -> (
      match args with
      | [ v ] ->
          Buffer.add_string t.output (value_to_display_string v);
          Some (Vobj o)
      | _ -> None)
  | Some (Bstring s), _ -> (
      match (name, args) with
      | "string", [] -> Some Vunit
      | "string", [ Vstr x ] ->
          s := x;
          Some Vunit
      | ("length" | "size"), [] -> Some (Vint (Int64.of_int (String.length !s)))
      | "empty", [] -> Some (Vbool (!s = ""))
      | "operator[]", [ i ] ->
          let i = Int64.to_int (to_int i) in
          if i >= 0 && i < String.length !s then Some (Vchar (Char.code !s.[i]))
          else Some (Vchar 0)
      | "operator+", [ other ] -> (
          match other with
          | Vobj { o_builtin = Some (Bstring s2); _ } ->
              let res = make_object t o.o_class in
              (match res.o_builtin with
               | Some (Bstring r) -> r := !s ^ !s2
               | _ -> ());
              Some (Vobj res)
          | Vstr x ->
              let res = make_object t o.o_class in
              (match res.o_builtin with
               | Some (Bstring r) -> r := !s ^ x
               | _ -> ());
              Some (Vobj res)
          | _ -> None)
      | "operator==", [ Vobj { o_builtin = Some (Bstring s2); _ } ] ->
          Some (Vbool (!s = !s2))
      | "operator<", [ Vobj { o_builtin = Some (Bstring s2); _ } ] ->
          Some (Vbool (!s < !s2))
      | "c_str", [] -> Some (Vstr !s)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* rvalue conversion: collapse references *)
let rec rvalue (v : value) : value =
  match v with Vptr cell when true -> rvalue_cell cell v | v -> v

and rvalue_cell cell orig =
  (* Vptr doubles as both pointer and reference; references auto-deref only
     through [deref_ref] at use sites, so keep pointers intact here *)
  ignore cell;
  orig

(* explicit reference dereference used where a value (not a cell) is needed *)
let deref = function Vptr cell -> !cell | v -> v

let rec eval t (f : frame) (e : Ast.expr) : value =
  tick t cost_expr;
  match e.Ast.e with
  | Ast.IntE n -> Vint n
  | Ast.FloatE x -> Vdouble x
  | Ast.CharE c -> Vchar c
  | Ast.StringE s -> Vstr s
  | Ast.BoolE b -> Vbool b
  | Ast.ThisE -> (
      (* 'this' is a pointer: wrap the receiver so *this and this->f work *)
      match f.f_this with
      | Some o -> Vptr (ref (Vobj o))
      | None -> error "'this' outside of member function")
  | Ast.IdE q -> deref (eval_name t f q)
  | Ast.Unary ("&", a) -> (
      match eval_lval t f a with
      | Some cell -> Vptr cell
      | None -> Vptr (ref (eval t f a)))
  | Ast.Unary ("*", a) -> (
      match eval t f a with
      | Vptr cell -> !cell
      | Vobj o -> (
          (* operator* on an object *)
          match call_method t o "operator*" [] with
          | Some v -> v
          | None -> error "no operator* on object")
      | Vnull -> raise (Cpp_exception (Vstr "null pointer dereference"))
      | v -> v)
  | Ast.Unary ("!", a) -> Vbool (not (truthy (deref (eval t f a))))
  | Ast.Unary ("-", a) -> (
      match deref (eval t f a) with
      | Vdouble x -> Vdouble (-.x)
      | v -> Vint (Int64.neg (to_int v)))
  | Ast.Unary ("+", a) -> deref (eval t f a)
  | Ast.Unary ("~", a) -> Vint (Int64.lognot (to_int (deref (eval t f a))))
  | Ast.Unary (("++" | "--") as op, a) -> (
      match eval_lval t f a with
      | Some cell ->
          let dv = if op = "++" then 1L else -1L in
          (match !cell with
           | Vdouble x -> cell := Vdouble (x +. Int64.to_float dv)
           | v -> cell := Vint (Int64.add (to_int v) dv));
          !cell
      | None -> (
          let v = deref (eval t f a) in
          match v with
          | Vobj o -> (
              match call_method t o ("operator" ^ op) [] with
              | Some r -> r
              | None -> error "no operator%s" op)
          | _ -> error "cannot increment non-lvalue"))
  | Ast.Unary (op, a) -> (
      match deref (eval t f a) with
      | Vobj o -> (
          match call_method t o ("operator" ^ op) [] with
          | Some v -> v
          | None -> error "no operator%s on object" op)
      | _ -> error "unsupported unary '%s'" op)
  | Ast.Postfix (("++" | "--") as op, a) -> (
      match eval_lval t f a with
      | Some cell ->
          let old = !cell in
          let dv = if op = "++" then 1L else -1L in
          (match old with
           | Vdouble x -> cell := Vdouble (x +. Int64.to_float dv)
           | v -> cell := Vint (Int64.add (to_int v) dv));
          old
      | None -> error "cannot increment non-lvalue")
  | Ast.Postfix (op, _) -> error "unsupported postfix '%s'" op
  | Ast.Binary ("&&", a, b) ->
      Vbool (truthy (deref (eval t f a)) && truthy (deref (eval t f b)))
  | Ast.Binary ("||", a, b) ->
      Vbool (truthy (deref (eval t f a)) || truthy (deref (eval t f b)))
  | Ast.Binary (op, a, b) -> (
      let va = deref (eval t f a) in
      match va with
      | Vobj o -> (
          let vb = deref (eval t f b) in
          match call_method t o ("operator" ^ op) [ vb ] with
          | Some v -> v
          | None -> (
              match free_operator t f op [ Vobj o; vb ] with
              | Some v -> v
              | None -> error "no operator%s for class %s" op
                          (Il.class_ t.prog o.o_class).cl_name))
      | _ ->
          let vb = deref (eval t f b) in
          (match vb with
           | Vobj o2 -> (
               (* e.g. 1 + obj via free operator *)
               match free_operator t f op [ va; Vobj o2 ] with
               | Some v -> v
               | None -> arith_binop op va vb)
           | _ -> arith_binop op va vb))
  | Ast.Assign (op, a, b) -> (
      let vb = deref (eval t f b) in
      match eval_lval t f a with
      | Some cell -> (
          match (!cell, op) with
          | Vobj o, _ when (Il.find_member_funcs t.prog (Il.class_ t.prog o.o_class)
                              ("operator" ^ op)) <> [] -> (
              match call_method t o ("operator" ^ op) [ vb ] with
              | Some v -> v
              | None -> error "operator%s failed" op)
          | Vobj o, "=" when o.o_builtin <> None -> (
              (* builtin copy assignment *)
              match vb with
              | Vobj src ->
                  let copy = copy_obj src in
                  (match (o.o_builtin, copy.o_builtin) with
                   | Some (Bvector (st, sz)), Some (Bvector (st', sz')) ->
                       st := !st';
                       sz := !sz'
                   | Some (Bstring s), Some (Bstring s') -> s := !s'
                   | _ -> ());
                  Vobj o
              | _ -> error "cannot assign non-object to builtin object")
          | _, "=" ->
              cell := copy_value vb;
              !cell
          | cur, _ ->
              let base_op = String.sub op 0 (String.length op - 1) in
              (match cur with
               | Vobj o -> (
                   match call_method t o ("operator" ^ op) [ vb ] with
                   | Some v -> v
                   | None -> error "no operator%s" op)
               | _ ->
                   cell := arith_binop base_op cur vb;
                   !cell))
      | None -> error "cannot assign to non-lvalue")
  | Ast.Cond (c, a, b) ->
      if truthy (deref (eval t f c)) then deref (eval t f a) else deref (eval t f b)
  | Ast.Call (callee, args) -> eval_call t f callee args
  | Ast.Member (oe, _, m) -> deref (eval_member t f oe m)
  | Ast.Index (a, i) -> (
      let va = deref (eval t f a) in
      let vi = deref (eval t f i) in
      match va with
      | Vobj o -> (
          match call_method t o "operator[]" [ vi ] with
          | Some v -> deref v
          | None -> error "no operator[] on class %s" (Il.class_ t.prog o.o_class).cl_name)
      | Varr cells ->
          let idx = Int64.to_int (to_int vi) in
          if idx < 0 || idx >= Array.length cells then
            raise (Cpp_exception (Vstr "array index out of range"))
          else !(cells.(idx))
      | Vptr cell -> (
          match !cell with
          | Varr cells ->
              let idx = Int64.to_int (to_int vi) in
              if idx < 0 || idx >= Array.length cells then
                raise (Cpp_exception (Vstr "array index out of range"))
              else !(cells.(idx))
          | v when to_int vi = 0L -> v
          | _ -> error "unsupported pointer indexing")
      | Vstr s ->
          let idx = Int64.to_int (to_int vi) in
          if idx >= 0 && idx < String.length s then Vchar (Char.code s.[idx]) else Vchar 0
      | _ -> error "cannot index this value")
  | Ast.CCast (ty, a) | Ast.NamedCast (_, ty, a) -> (
      let v = deref (eval t f a) in
      (* scalar conversions really convert; class/pointer casts pass through *)
      match Ast.unqual ty with
      | Ast.TBuiltin { base = `Int; _ } -> Vint (to_int v)
      | Ast.TBuiltin { base = `Double; _ } | Ast.TBuiltin { base = `Float; _ } ->
          Vdouble (to_float v)
      | Ast.TBuiltin { base = `Bool; _ } -> Vbool (truthy v)
      | Ast.TBuiltin { base = `Char; _ } -> Vchar (Int64.to_int (to_int v) land 0xff)
      | _ -> v)
  | Ast.Construct (ty, args) -> construct_from_type t f ty args e.Ast.eloc
  | Ast.New (ty, args, None) ->
      let v = construct_from_type t f ty (Option.value args ~default:[]) e.Ast.eloc in
      Vptr (ref v)
  | Ast.New (ty, _, Some n) ->
      let n = Int64.to_int (to_int (deref (eval t f n))) in
      let elem () =
        match lookup_class_of_asttype t ty with
        | Some cl -> Vobj (make_object t cl)
        | None -> Vint 0L
      in
      Vptr (ref (Varr (Array.init (max n 0) (fun _ -> ref (elem ())))))
  | Ast.Delete (_, a) ->
      ignore (eval t f a);
      Vunit
  | Ast.SizeofE _ | Ast.SizeofT _ -> Vint 8L
  | Ast.ThrowE (Some a) -> raise (Cpp_exception (deref (eval t f a)))
  | Ast.ThrowE None -> raise (Cpp_exception Vnull)
  | Ast.Comma (a, b) ->
      ignore (eval t f a);
      deref (eval t f b)

(* find the IL class named by an AST type (display-name based) *)
and lookup_class_of_asttype t (ty : Ast.type_expr) : Il.class_id option =
  Hashtbl.find_opt t.class_by_name (Ast.type_to_string (Ast.unqual ty))

and construct_from_type t f (ty : Ast.type_expr) (args : Ast.expr list) loc : value =
  ignore loc;
  let vargs = List.map (fun a -> deref (eval t f a)) args in
  match lookup_class_of_asttype t ty with
  | Some cl -> construct t cl vargs
  | None
    when (match ty with
          | Ast.TName { parts; _ } -> List.length parts >= 2
          | _ -> false) -> (
      (* qualified call parsed as a cast: Class::static_member(args) *)
      match ty with
      | Ast.TName { parts; global } -> (
          let front = List.filteri (fun i _ -> i < List.length parts - 1) parts in
          let last = List.nth parts (List.length parts - 1) in
          let cname =
            Ast.qual_name_to_string { Ast.global; parts = front }
          in
          match find_class_by_name t cname with
          | Some cl -> (
              match member_funcs t cl last.Ast.id with
              | [] -> error "no member '%s' in %s" last.Ast.id cname
              | cands -> (
                  match pick_overload_dyn t cands vargs with
                  | Some r -> invoke t r None vargs
                  | None -> error "no viable overload for %s::%s" cname last.Ast.id))
          | None -> error "unknown class '%s'" cname)
      | _ -> assert false)
  | None -> (
      (* scalar functional cast *)
      match (Ast.unqual ty, vargs) with
      | _, [] -> Vint 0L
      | Ast.TBuiltin { base = `Double; _ }, [ v ] -> Vdouble (to_float v)
      | Ast.TBuiltin { base = `Float; _ }, [ v ] -> Vdouble (to_float v)
      | Ast.TBuiltin { base = `Bool; _ }, [ v ] -> Vbool (truthy v)
      | Ast.TBuiltin { base = `Char; _ }, [ v ] -> Vchar (Int64.to_int (to_int v))
      | _, [ v ] -> (
          match v with
          | Vdouble _ -> Vint (to_int v)
          | v -> v)
      | _, v :: _ -> v)

(* construct an object of class [cl] with the given argument values *)
and construct t (cl : Il.class_id) (args : value list) : value =
  let o = make_object t cl in
  match args with
  | [ Vobj src ] when src.o_class = cl ->
      (* copy ctor semantics *)
      let copied = copy_obj src in
      Hashtbl.reset o.o_fields;
      Hashtbl.iter (fun k v -> Hashtbl.replace o.o_fields k v) copied.o_fields;
      o.o_builtin <- copied.o_builtin;
      Vobj o
  | _ ->
      let c = Il.class_ t.prog cl in
      let ctor_name = class_base_name c in
      (match builtin_method t o ctor_name args with
       | Some _ -> Vobj o
       | None ->
           let ctors =
             List.filter (fun r -> r.ro_kind = Rk_ctor)
               (List.map (Il.routine t.prog) c.cl_funcs)
           in
           (match pick_overload_dyn t ctors args with
            | Some ctor when ctor.ro_defined || ctor.ro_body <> None ->
                run_ctor t o cl ctor args
            | Some _ | None ->
                (* implicit / trivial constructor: still construct bases and
                   class-typed fields *)
                construct_bases_and_fields t o cl ~skip:[]);
           Vobj o)

(* run base-class and class-typed-field default constructors, except those
   named in [skip] (the explicit mem-initializer list) *)
and construct_bases_and_fields t (o : obj) (cl : Il.class_id) ~skip : unit =
  let c = Il.class_ t.prog cl in
  List.iter
    (fun (b : Il.base_spec) ->
      let bc = Il.class_ t.prog b.ba_class in
      let covered =
        List.mem bc.cl_name skip || List.mem (class_base_name bc) skip
      in
      if not covered then run_default_ctor t o b.ba_class)
    c.cl_bases;
  List.iter
    (fun (m : Il.data_member) ->
      if (not m.dm_static) && not (List.mem m.dm_name skip) then
        match Hashtbl.find_opt o.o_fields m.dm_name with
        | Some { contents = Vobj fo } -> run_default_ctor t fo fo.o_class
        | _ -> ())
    c.cl_members

and run_default_ctor t (o : obj) (cl : Il.class_id) : unit =
  let c = Il.class_ t.prog cl in
  match builtin_method t o (class_base_name c) [] with
  | Some _ -> ()
  | None -> (
      let ctors =
        List.filter (fun r -> r.ro_kind = Rk_ctor)
          (List.map (Il.routine t.prog) c.cl_funcs)
      in
      match pick_overload_dyn t ctors [] with
      | Some ctor when ctor.ro_defined || ctor.ro_body <> None ->
          run_ctor t o cl ctor []
      | Some _ | None -> construct_bases_and_fields t o cl ~skip:[])

and run_ctor t (o : obj) (cl : Il.class_id) (ctor : Il.routine_entity)
    (args : value list) : unit =
  let skip = List.map fst ctor.ro_inits in
  construct_bases_and_fields t o cl ~skip;
  ignore (invoke t ctor (Some o) args)

(* evaluate a qualified name to a reference cell (wrapped as Vptr) or value *)
and eval_name t (f : frame) (q : Ast.qual_name) : value =
  match q.Ast.parts with
  | [ { id; _ } ] -> (
      match lookup_cell t f id with
      | Some cell -> Vptr cell
      | None -> (
          (* enum constants resolved by sema are... not in IL bodies; look in
             IL enums *)
          match find_enum_constant t id with
          | Some v -> Vint v
          | None -> error "unbound identifier '%s'" id))
  | parts -> (
      (* qualified: try enum constant Class::CONST or namespace variable *)
      let last = (List.nth parts (List.length parts - 1)).Ast.id in
      match find_enum_constant t last with
      | Some v -> Vint v
      | None -> (
          match Hashtbl.find_opt t.globals (Ast.qual_name_to_string q) with
          | Some cell -> Vptr cell
          | None -> (
              match Hashtbl.find_opt t.globals last with
              | Some cell -> Vptr cell
              | None -> error "unbound name '%s'" (Ast.qual_name_to_string q))))

and find_enum_constant t name : int64 option =
  let found = ref None in
  Hashtbl.iter
    (fun _ (ty : Il.type_entity) ->
      match ty.ty_kind with
      | Tenum { constants; _ } -> (
          match List.find_opt (fun (n, _, _) -> n = name) constants with
          | Some (_, v, _) -> if !found = None then found := Some v
          | None -> ())
      | _ -> ())
    t.prog.Il.types;
  !found

(* lvalue evaluation: a mutable cell *)
and eval_lval t (f : frame) (e : Ast.expr) : value ref option =
  match e.Ast.e with
  | Ast.IdE q -> (
      match eval_name t f q with
      | Vptr cell -> Some cell
      | _ -> None)
  | Ast.Member (oe, _, m) -> (
      match eval_member t f oe m with
      | Vptr cell -> Some cell
      | _ -> None)
  | Ast.Index (a, i) -> (
      let va = deref (eval t f a) in
      let vi = deref (eval t f i) in
      match va with
      | Vobj o -> (
          match call_method t o "operator[]" [ vi ] with
          | Some (Vptr cell) -> Some cell
          | Some v -> Some (ref v)
          | None -> None)
      | Varr cells ->
          let idx = Int64.to_int (to_int vi) in
          if idx >= 0 && idx < Array.length cells then Some cells.(idx) else None
      | Vptr cell -> (
          match !cell with
          | Varr cells ->
              let idx = Int64.to_int (to_int vi) in
              if idx >= 0 && idx < Array.length cells then Some cells.(idx) else None
          | _ -> if to_int vi = 0L then Some cell else None)
      | _ -> None)
  | Ast.Unary ("*", a) -> (
      match deref (eval t f a) with
      | Vptr cell -> Some cell
      | _ -> None)
  | Ast.Call _ -> (
      (* calls returning T& yield a reference cell *)
      match eval t f e with
      | Vptr cell -> Some cell
      | _ -> None)
  | Ast.ThisE -> None
  | _ -> None

(* member access (field or zero-arg accessor reference): returns Vptr cell
   for fields *)
and eval_member t (f : frame) (oe : Ast.expr) (m : Ast.qual_name) : value =
  let recv = deref (eval t f oe) in
  let name = (Ast.last_part m).Ast.id in
  match recv with
  | Vobj o -> (
      match Hashtbl.find_opt o.o_fields name with
      | Some cell -> Vptr cell
      | None -> error "object of class %s has no field '%s'"
                  (Il.class_ t.prog o.o_class).cl_name name)
  | Vptr cell -> (
      match !cell with
      | Vobj o -> (
          match Hashtbl.find_opt o.o_fields name with
          | Some c -> Vptr c
          | None -> error "object has no field '%s'" name)
      | _ -> error "member access through non-object pointer")
  | Vnull -> raise (Cpp_exception (Vstr "null pointer member access"))
  | _ -> error "member access on non-object"

(* method call with dynamic dispatch *)
and call_method t (o : obj) (name : string) (args : value list) : value option =
  match builtin_method t o name args with
  | Some v -> Some v
  | None -> (
      match member_funcs t o.o_class name with
      | [] -> None
      | cands -> (
          match pick_overload_dyn t cands args with
          | Some r -> Some (invoke t r (Some o) args)
          | None -> None))

and free_operator t (f : frame) op (args : value list) : value option =
  ignore f;
  let name = "operator" ^ op in
  let cands = ref [] in
  Hashtbl.iter
    (fun _ (r : Il.routine_entity) ->
      if r.ro_name = name && r.ro_parent = Pnone then cands := r :: !cands)
    t.prog.Il.routines;
  match pick_overload_dyn t !cands args with
  | Some r -> Some (invoke t r None args)
  | None -> None

(* function-call expression *)
and eval_call t (f : frame) (callee : Ast.expr) (args : Ast.expr list) : value =
  match callee.Ast.e with
  | Ast.Member (oe, _, m) -> (
      let name = (Ast.last_part m).Ast.id in
      let recv = deref (eval t f oe) in
      let vargs = eval_args t f args in
      match recv with
      | Vobj o -> (
          match call_method t o name vargs with
          | Some v -> v
          | None -> error "no method '%s' on class %s" name
                      (Il.class_ t.prog o.o_class).cl_name)
      | Vptr cell -> (
          match !cell with
          | Vobj o -> (
              match call_method t o name vargs with
              | Some v -> v
              | None -> error "no method '%s'" name)
          | _ -> error "method call through non-object pointer")
      | Vnull -> raise (Cpp_exception (Vstr "null pointer method call"))
      | _ -> error "method call on non-object (%s)" name)
  | Ast.IdE q -> (
      let name = (Ast.last_part q).Ast.id in
      (* TAU measurement builtins *)
      match name with
      | "TAU_PROFILE" -> tau_profile t f args
      | "mpi_rank" -> Vint (Int64.of_int (fst t.mpi))
      | "mpi_size" -> Vint (Int64.of_int (snd t.mpi))
      | "CT" -> (
          match args with
          | [ a ] -> Vstr (type_name_of_value t (deref (eval t f a)))
          | _ -> Vstr "<CT?>")
      | _ -> (
          let vargs = eval_args t f args in
          (* member function of this? *)
          match f.f_this with
          | Some o when member_funcs t o.o_class name <> [] -> (
              match call_method t o name vargs with
              | Some v -> v
              | None -> error "member call '%s' failed" name)
          | _ -> (
              (* free function by (qualified) name *)
              match find_free_routines t q with
              | [] -> (
                  (* constructor call: Class(args) where parser kept IdE *)
                  match find_class_by_name t (Ast.qual_name_to_string q) with
                  | Some cl -> construct t cl vargs
                  | None -> error "call to unknown function '%s'"
                              (Ast.qual_name_to_string q))
              | cands -> (
                  match pick_overload_dyn t cands vargs with
                  | Some r -> invoke t r None vargs
                  | None -> error "no viable overload for '%s'" name))))
  | _ -> (
      let fv = deref (eval t f callee) in
      let vargs = eval_args t f args in
      match fv with
      | Vobj o -> (
          match call_method t o "operator()" vargs with
          | Some v -> v
          | None -> error "object is not callable")
      | _ -> error "value is not callable")

and eval_args t f args =
  List.map
    (fun (a : Ast.expr) ->
      (* pass references through so T& parameters can alias *)
      match eval_lval t f a with
      | Some cell -> Vptr cell
      | None -> deref (eval t f a))
    args

and find_free_routines t (q : Ast.qual_name) : Il.routine_entity list =
  let name = (Ast.last_part q).Ast.id in
  let out = ref [] in
  Hashtbl.iter
    (fun _ (r : Il.routine_entity) ->
      if r.ro_name = name
         && (match r.ro_parent with Pclass _ -> false | _ -> true)
      then out := r :: !out)
    t.prog.Il.routines;
  (* stable order: by id *)
  List.sort (fun a b -> compare a.Il.ro_id b.Il.ro_id) !out

and find_class_by_name t name : Il.class_id option =
  Hashtbl.find_opt t.class_by_name name

(* the TAU_PROFILE statement: start a timer bound to the current frame *)
and tau_profile t (f : frame) (args : Ast.expr list) : value =
  if t.instrumented then begin
    let name_of a = value_to_display_string (deref (eval t f a)) in
    let label =
      match args with
      | [ n ] -> name_of n
      | n :: ty :: _ ->
          let n = name_of n and ty = name_of ty in
          if ty = "" || ty = "0" then n else Printf.sprintf "%s [%s]" n ty
      | [] -> "<unnamed>"
    in
    if Rt.enter t.profiler label ~now:t.cycles then
      f.f_timers <- f.f_timers + 1
  end;
  Vunit

(* invoke a routine with an optional receiver *)
and invoke t (r : Il.routine_entity) (this_obj : obj option) (args : value list) :
    value =
  tick t cost_call;
  t.depth <- t.depth + 1;
  if t.depth > 10_000 then error "call stack overflow";
  t.max_depth <- max t.max_depth t.depth;
  let ret_ref =
    match (Il.type_ t.prog r.ro_sig).ty_kind with
    | Tfunc { rett; _ } -> (
        match (Il.type_ t.prog rett).ty_kind with Tref _ -> true | _ -> false)
    | _ -> false
  in
  let frame =
    { blocks = [ Hashtbl.create 8 ]; f_this = this_obj; f_timers = 0;
      f_ret_ref = ret_ref }
  in
  (* bind parameters: by-value params copy; reference params alias *)
  let rec bind (params : Il.param_info list) (args : value list) =
    match (params, args) with
    | [], _ -> ()
    | (p : Il.param_info) :: ps, arg :: rest ->
        let is_ref =
          match (Il.type_ t.prog p.pi_type).ty_kind with
          | Tref _ -> true
          | Tqual { base; _ } -> (
              match (Il.type_ t.prog base).ty_kind with Tref _ -> true | _ -> false)
          | _ -> false
        in
        let cell =
          match (arg, is_ref) with
          | Vptr c, true -> c
          | v, _ -> ref (copy_value (deref v))
        in
        (match p.pi_name with
         | Some n -> bind_local frame n cell
         | None -> ());
        bind ps rest
    | p :: ps, [] ->
        (* default argument *)
        (match (p.pi_default, p.pi_name) with
         | Some d, Some n ->
             let v = deref (eval t frame d) in
             bind_local frame n (ref v)
         | _ -> ());
        bind ps []
  in
  bind r.ro_params args;
  let finish v =
    (* close TAU timers opened in this frame *)
    for _ = 1 to frame.f_timers do
      Rt.exit_ t.profiler ~now:t.cycles
    done;
    t.depth <- t.depth - 1;
    v
  in
  (match this_obj with
   | Some o when r.ro_kind = Rk_ctor ->
       (* run member initializers *)
       List.iter
         (fun (name, init_args) ->
           let vargs = List.map (fun a -> deref (eval t frame a)) init_args in
           match Hashtbl.find_opt o.o_fields name with
           | Some cell -> (
               match (!cell, vargs) with
               | Vobj fo, _ -> (
                   let c = Il.class_ t.prog fo.o_class in
                   match builtin_method t fo (class_base_name c) vargs with
                   | Some _ -> ()
                   | None -> (
                       let ctors =
                         List.filter (fun r -> r.ro_kind = Rk_ctor)
                           (List.map (Il.routine t.prog) c.cl_funcs)
                       in
                       match pick_overload_dyn t ctors vargs with
                       | Some ctor -> ignore (invoke t ctor (Some fo) vargs)
                       | None -> ()))
               | _, [ v ] -> cell := copy_value v
               | _, _ -> ())
           | None -> (
               (* base class initializer *)
               let c = Il.class_ t.prog o.o_class in
               let base =
                 List.find_opt
                   (fun (b : Il.base_spec) ->
                     class_base_name (Il.class_ t.prog b.ba_class) = name
                     || (Il.class_ t.prog b.ba_class).cl_name = name)
                   c.cl_bases
               in
               match base with
               | Some b -> (
                   let bc = Il.class_ t.prog b.ba_class in
                   let ctors =
                     List.filter (fun r -> r.ro_kind = Rk_ctor)
                       (List.map (Il.routine t.prog) bc.cl_funcs)
                   in
                   match pick_overload_dyn t ctors vargs with
                   | Some ctor -> ignore (invoke t ctor (Some o) vargs)
                   | None -> ())
               | None -> ()))
         r.ro_inits
   | _ -> ());
  match r.ro_body with
  | None ->
      (* undefined routine: builtin or no-op *)
      finish Vunit
  | Some body -> (
      try
        exec_stmt t frame body;
        finish Vunit
      with
      | Return_exc v -> finish v
      | Cpp_exception _ as ex ->
          (* unwind this frame's timers, then propagate *)
          ignore (finish Vunit);
          raise ex)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec_stmt t (f : frame) (s : Ast.stmt) : unit =
  tick t cost_expr;
  match s.Ast.s with
  | Ast.SExpr None -> ()
  | Ast.SExpr (Some e) -> ignore (eval t f e)
  | Ast.SDecl vds -> List.iter (exec_local_decl t f) vds
  | Ast.SCompound ss ->
      push_block f;
      Fun.protect
        ~finally:(fun () -> pop_block f)
        (fun () -> List.iter (exec_stmt t f) ss)
  | Ast.SIf (c, a, b) ->
      if truthy (deref (eval t f c)) then exec_stmt t f a
      else Option.iter (exec_stmt t f) b
  | Ast.SWhile (c, body) -> (
      try
        while truthy (deref (eval t f c)) do
          try exec_stmt t f body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Ast.SDoWhile (body, c) -> (
      try
        let continue_ = ref true in
        while !continue_ do
          (try exec_stmt t f body with Continue_exc -> ());
          continue_ := truthy (deref (eval t f c))
        done
      with Break_exc -> ())
  | Ast.SFor (init, cond, step, body) -> (
      push_block f;
      Fun.protect
        ~finally:(fun () -> pop_block f)
        (fun () ->
          Option.iter (exec_stmt t f) init;
          try
            while
              match cond with
              | Some c -> truthy (deref (eval t f c))
              | None -> true
            do
              (try exec_stmt t f body with Continue_exc -> ());
              Option.iter (fun e -> ignore (eval t f e)) step
            done
          with Break_exc -> ()))
  | Ast.SReturn None -> raise (Return_exc Vunit)
  | Ast.SReturn (Some e) ->
      if f.f_ret_ref then
        (* preserve the reference so callers can assign through it *)
        match eval_lval t f e with
        | Some cell -> raise (Return_exc (Vptr cell))
        | None -> raise (Return_exc (eval t f e))
      else raise (Return_exc (deref (eval t f e)))
  | Ast.SBreak -> raise Break_exc
  | Ast.SContinue -> raise Continue_exc
  | Ast.SSwitch (e, cases) -> (
      let v = to_int (deref (eval t f e)) in
      let matching =
        let rec from = function
          | [] ->
              (* run default if present *)
              (match
                 List.find_opt (fun (c : Ast.switch_case) -> c.case_guard = None) cases
               with
               | Some d -> [ d ]
               | None -> [])
          | (c : Ast.switch_case) :: rest -> (
              match c.case_guard with
              | Some g when to_int (deref (eval t f g)) = v -> c :: rest
              | _ -> from rest)
        in
        from cases
      in
      try
        List.iter
          (fun (c : Ast.switch_case) -> List.iter (exec_stmt t f) c.case_body)
          matching
      with Break_exc -> ())
  | Ast.STry (body, handlers) -> (
      try exec_stmt t f body
      with Cpp_exception v ->
        let matches (h : Ast.handler) =
          match h.h_param with
          | None -> true
          | Some p -> (
              let rec strip = function
                | Ast.TConst ty | Ast.TVolatile ty | Ast.TRef ty -> strip ty
                | ty -> ty
              in
              match (v, strip p.Ast.ptype) with
              | Vobj o, ty -> (
                  let cname = Ast.type_to_string (Ast.unqual ty) in
                  let rec class_matches cl =
                    let c = Il.class_ t.prog cl in
                    c.cl_name = cname
                    || class_base_name c = cname
                    || List.exists
                         (fun (b : Il.base_spec) -> class_matches b.ba_class)
                         c.cl_bases
                  in
                  class_matches o.o_class)
              | Vint _, Ast.TBuiltin { base = `Int; _ } -> true
              | Vdouble _, Ast.TBuiltin { base = `Double; _ } -> true
              | Vstr _, _ -> (
                  match p.Ast.ptype with
                  | Ast.TPtr _ | Ast.TConst _ -> true
                  | _ -> false)
              | _ -> false)
        in
        (match List.find_opt matches handlers with
         | Some h ->
             push_block f;
             Fun.protect
               ~finally:(fun () -> pop_block f)
               (fun () ->
                 (match h.h_param with
                  | Some { Ast.pname = Some n; _ } -> bind_local f n (ref v)
                  | _ -> ());
                 exec_stmt t f h.h_body)
         | None -> raise (Cpp_exception v)))
  | Ast.SSpawn e ->
      (* deterministic sequential schedule: the spawned call executes
         eagerly at the spawn site, so join is a no-op *)
      ignore (eval t f e)
  | Ast.SJoin _ -> ()

and exec_local_decl t (f : frame) (vd : Ast.var_decl) : unit =
  (* recursive default for a declared type, handling nested arrays *)
  let rec default_of_asttype ty =
    match Ast.unqual ty with
    | Ast.TArray (elem, Some n) -> (
        match deref (eval t f n) with
        | Vint len ->
            Varr (Array.init (Int64.to_int len) (fun _ -> ref (default_of_asttype elem)))
        | _ -> Vnull)
    | Ast.TBuiltin { base = `Double; _ } | Ast.TBuiltin { base = `Float; _ } ->
        Vdouble 0.0
    | Ast.TBuiltin { base = `Bool; _ } -> Vbool false
    | Ast.TBuiltin { base = `Char; _ } -> Vchar 0
    | Ast.TPtr _ -> Vnull
    | ty -> (
        match lookup_class_of_asttype t ty with
        | Some cl -> construct t cl []
        | None -> Vint 0L)
  in
  let init_value =
    match vd.Ast.v_init with
    | Ast.NoInit -> default_of_asttype vd.Ast.v_type
    | Ast.EqInit e -> (
        let v = deref (eval t f e) in
        match (lookup_class_of_asttype t vd.Ast.v_type, v) with
        | Some cl, Vobj _ -> (
            match construct t cl [ v ] with
            | Vobj _ as res -> res
            | res -> res)
        | _ -> copy_value v)
    | Ast.CtorInit args -> (
        let vargs = List.map (fun a -> deref (eval t f a)) args in
        match lookup_class_of_asttype t vd.Ast.v_type with
        | Some cl -> construct t cl vargs
        | None -> ( match vargs with v :: _ -> copy_value v | [] -> Vint 0L))
  in
  (* reference locals alias their initializer *)
  let is_ref = match vd.Ast.v_type with Ast.TRef _ -> true | _ -> false in
  let cell =
    if is_ref then
      match vd.Ast.v_init with
      | Ast.EqInit e -> (
          match eval_lval t f e with Some c -> c | None -> ref init_value)
      | _ -> ref init_value
    else ref init_value
  in
  bind_local f vd.Ast.v_name cell

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)
(* ------------------------------------------------------------------ *)

let init_globals t =
  List.iter
    (fun (gv : Il.global_var) ->
      let base = Il.strip_qual_ref t.prog gv.gv_type in
      let v =
        match (Il.type_ t.prog base).ty_kind with
        | Tclass cl -> (
            let c = Il.class_ t.prog cl in
            match class_base_name c with
            | "ostream" | "istream" ->
                let o = make_object t cl in
                o.o_builtin <- Some Bostream;
                Vobj o
            | _ -> Vobj (make_object t cl))
        | _ -> default_value t base
      in
      let v = if gv.gv_name = "endl" then Vstr "\n" else v in
      Hashtbl.replace t.globals gv.gv_name (ref v))
    (Il.globals t.prog);
  (* frame for global initializers *)
  let gframe =
    { blocks = [ Hashtbl.create 4 ]; f_this = None; f_timers = 0; f_ret_ref = false }
  in
  List.iter
    (fun (gv : Il.global_var) ->
      match gv.gv_init with
      | Ast.EqInit e -> (
          match Hashtbl.find_opt t.globals gv.gv_name with
          | Some cell -> cell := copy_value (deref (eval t gframe e))
          | None -> ())
      | Ast.CtorInit _ | Ast.NoInit -> ())
    (Il.globals t.prog)

type result = {
  exit_code : int;
  output : string;
  cycles : int64;
  steps : int64;
  profile : Rt.t;
}

exception Uncaught of string * result

(** Run [main] (or a named entry routine). *)
let run ?(entry = "main") ?instrumented ?tracing ?callpath ?throttle ?max_steps
    ?mpi (prog : Il.program) : result =
  let t = create ?instrumented ?tracing ?callpath ?throttle ?max_steps ?mpi prog in
  init_globals t;
  let main =
    List.find_opt
      (fun (r : Il.routine_entity) ->
        r.ro_name = entry && (match r.ro_parent with Pclass _ -> false | _ -> true))
      (Il.routines prog)
  in
  match main with
  | None -> error "no entry routine '%s'" entry
  | Some main -> (
      let mk code =
        { exit_code = code; output = Buffer.contents t.output; cycles = t.cycles;
          steps = t.steps; profile = t.profiler }
      in
      try
        let v = invoke t main None [] in
        Rt.unwind t.profiler ~now:t.cycles;
        mk (Int64.to_int (to_int (match v with Vunit -> Vint 0L | v -> v)))
      with Cpp_exception v ->
        Rt.unwind t.profiler ~now:t.cycles;
        raise
          (Uncaught
             ( Printf.sprintf "uncaught C++ exception: %s" (type_name_of_value t v),
               mk 134 )))
