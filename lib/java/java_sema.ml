(** Java semantic analysis: elaborates parsed units into the common IL
    (the paper's §6 Java IL Analyzer, "with the PDB and DUCTAPE enhanced to
    accommodate Java's constructs").

    Correspondences:

    - {b package}    → namespace ([na#] item; dotted packages nest);
    - {b class}      → class ([cl#]) with [extends] as its base and
      [implements] interfaces as further bases;
    - {b interface}  → class item whose methods are pure virtual;
    - {b method}     → routine with [rlink Java]; instance methods are
      virtual by default (Java dispatch), [static]/[final]/ctors are not;
    - {b field}      → data member;
    - method bodies  → [rcall] edges, resolved through locals, fields,
      [this], static class references and [new]. *)

open Pdt_util
open Pdt_il
open Il
module A = Java_ast

type t = {
  prog : Il.program;
  diags : Diag.engine;
  classes_by_name : (string, Il.class_id) Hashtbl.t;  (* simple name *)
  mutable pending :
    (Il.routine_entity * A.method_ * Il.class_id) list;
}

let create ~diags () =
  { prog = Il.create_program (); diags; classes_by_name = Hashtbl.create 16;
    pending = [] }

let jtype_name = function
  | A.Jprim p -> p
  | A.Jclass path -> String.concat "." path
  | A.Jarray _ -> "<array>"

let rec resolve_type t (ty : A.jtype) : Il.type_id =
  match ty with
  | A.Jprim "int" -> Il.builtin_type t.prog ~bname:"int" ~ykind:"int" ~yikind:"int"
  | A.Jprim "long" -> Il.builtin_type t.prog ~bname:"long" ~ykind:"int" ~yikind:"long"
  | A.Jprim "short" -> Il.builtin_type t.prog ~bname:"short" ~ykind:"int" ~yikind:"short"
  | A.Jprim "byte" -> Il.builtin_type t.prog ~bname:"byte" ~ykind:"int" ~yikind:"char"
  | A.Jprim "boolean" ->
      Il.builtin_type t.prog ~bname:"boolean" ~ykind:"bool" ~yikind:"char"
  | A.Jprim "double" ->
      Il.builtin_type t.prog ~bname:"double" ~ykind:"float" ~yikind:"double"
  | A.Jprim "float" -> Il.builtin_type t.prog ~bname:"float" ~ykind:"float" ~yikind:"float"
  | A.Jprim "char" -> Il.builtin_type t.prog ~bname:"char" ~ykind:"char" ~yikind:"int"
  | A.Jprim "void" | A.Jprim _ -> Il.ty_void t.prog
  | A.Jclass path -> (
      let simple = List.nth path (List.length path - 1) in
      match Hashtbl.find_opt t.classes_by_name simple with
      | Some cl -> Il.intern_type t.prog (Tclass cl)
      | None ->
          (* unknown library type (String, Object, ...): model as an opaque
             builtin so signatures stay printable *)
          Il.builtin_type t.prog ~bname:(String.concat "." path) ~ykind:"class"
            ~yikind:"NA")
  | A.Jarray elem -> Il.intern_type t.prog (Tarray (resolve_type t elem, None))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let declare_package t (path : string list option) : Il.namespace_id option =
  match path with
  | None -> None
  | Some segs ->
      let parent = ref Pnone in
      let last = ref None in
      List.iter
        (fun seg ->
          let existing =
            List.find_opt
              (fun (n : Il.namespace_entity) ->
                n.na_name = seg && n.na_parent = !parent)
              (Il.namespaces t.prog)
          in
          let ns =
            match existing with
            | Some n -> n
            | None -> Il.add_namespace t.prog ~name:seg ~loc:Srcloc.dummy ~parent:!parent
          in
          parent := Pnamespace ns.na_id;
          last := Some ns.na_id)
        segs;
      !last

let method_signature t (m : A.method_) : Il.type_id * Il.param_info list =
  let params =
    List.map
      (fun (ty, n) ->
        { pi_name = Some n; pi_type = resolve_type t ty; pi_has_default = false;
          pi_default = None; pi_loc = m.A.md_loc })
      m.A.md_params
  in
  let rett =
    match m.A.md_ret with
    | Some ty -> resolve_type t ty
    | None -> Il.ty_void t.prog
  in
  let exceptions =
    match m.A.md_throws with
    | [] -> None
    | ts -> Some (List.map (fun path -> resolve_type t (A.Jclass path)) ts)
  in
  ( Il.intern_type t.prog
      (Tfunc
         { rett; params = List.map (fun p -> (p.pi_type, false)) params;
           ellipsis = false; cqual = false; exceptions }),
    params )

let declare_class t ns (cd : A.class_decl) : unit =
  let c =
    Il.add_class t.prog ~name:cd.A.cd_name
      ~kind:(if cd.A.cd_interface then Ckind_struct else Ckind_class)
      ~loc:cd.A.cd_loc
      ~parent:(match ns with Some n -> Pnamespace n | None -> Pnone)
      ~access:Acc_na
  in
  Hashtbl.replace t.classes_by_name cd.A.cd_name c.cl_id;
  c.cl_extent <-
    Srcloc.extent ~header:(Srcloc.range cd.A.cd_loc cd.A.cd_loc)
      ~body:(Srcloc.range cd.A.cd_loc cd.A.cd_end_loc) ();
  (match ns with
   | Some n ->
       let nent = Il.namespace t.prog n in
       nent.na_members <- Rclass c.cl_id :: nent.na_members
   | None -> ())

let elaborate_class t (cd : A.class_decl) : unit =
  let cl = Hashtbl.find t.classes_by_name cd.A.cd_name in
  let c = Il.class_ t.prog cl in
  (* bases: extends + implements, resolved within the compilation unit *)
  let base_of path =
    let simple = List.nth path (List.length path - 1) in
    Hashtbl.find_opt t.classes_by_name simple
  in
  let bases =
    (match cd.A.cd_extends with
     | Some p -> ( match base_of p with Some b -> [ (b, false) ] | None -> [])
     | None -> [])
    @ List.filter_map
        (fun p -> Option.map (fun b -> (b, true)) (base_of p))
        cd.A.cd_implements
  in
  c.cl_bases <-
    List.map
      (fun (b, _itf) -> { ba_access = Pub; ba_virtual = false; ba_class = b })
      bases;
  List.iter
    (fun (b, _) ->
      let bc = Il.class_ t.prog b in
      bc.cl_derived <- bc.cl_derived @ [ cl ])
    bases;
  (* fields *)
  c.cl_members <-
    List.map
      (fun (f : A.field) ->
        let access =
          if List.mem A.Mprivate f.fd_mods then Priv
          else if List.mem A.Mprotected f.fd_mods then Prot
          else Pub
        in
        { dm_name = f.A.fd_name; dm_loc = f.A.fd_loc; dm_access = access;
          dm_type = resolve_type t f.A.fd_type;
          dm_static = List.mem A.Mstatic f.fd_mods; dm_mutable = true })
      cd.A.cd_fields;
  (* methods *)
  List.iter
    (fun (m : A.method_) ->
      let sig_, params = method_signature t m in
      let ro =
        Il.add_routine t.prog ~name:m.A.md_name ~loc:m.A.md_loc ~parent:(Pclass cl)
          ~access:
            (if List.mem A.Mprivate m.md_mods then Priv
             else if List.mem A.Mprotected m.md_mods then Prot
             else Pub)
          ~sig_
      in
      ro.ro_link <- "Java";
      ro.ro_params <- params;
      ro.ro_static <- List.mem A.Mstatic m.md_mods;
      ro.ro_store <- (if ro.ro_static then "static" else "NA");
      ro.ro_kind <- (if m.A.md_ret = None then Rk_ctor else Rk_normal);
      (* Java instance methods dispatch virtually unless static/final/ctor *)
      ro.ro_virt <-
        (if cd.A.cd_interface && m.A.md_body = None then Virt_pure
         else if
           (not ro.ro_static) && ro.ro_kind <> Rk_ctor
           && not (List.mem A.Mfinal m.md_mods)
         then Virt_virtual
         else Virt_no);
      ro.ro_defined <- m.A.md_body <> None;
      ro.ro_extent <-
        Srcloc.extent ~header:(Srcloc.range m.A.md_loc m.A.md_loc)
          ~body:(Srcloc.range m.A.md_loc m.A.md_end_loc) ();
      c.cl_funcs <- c.cl_funcs @ [ ro.ro_id ];
      match m.A.md_body with
      | Some _ -> t.pending <- (ro, m, cl) :: t.pending
      | None -> ())
    cd.A.cd_methods

(* ------------------------------------------------------------------ *)
(* Bodies: call edges                                                  *)
(* ------------------------------------------------------------------ *)

let rec find_method t (cl : Il.class_id) name nargs : Il.routine_entity option =
  let c = Il.class_ t.prog cl in
  let here =
    List.filter
      (fun rid ->
        let r = Il.routine t.prog rid in
        r.ro_name = name && List.length r.ro_params = nargs)
      c.cl_funcs
  in
  match here with
  | rid :: _ -> Some (Il.routine t.prog rid)
  | [] ->
      let rec through = function
        | [] -> None
        | (b : Il.base_spec) :: rest -> (
            match find_method t b.ba_class name nargs with
            | Some r -> Some r
            | None -> through rest)
      in
      through c.cl_bases

let record_call (caller : Il.routine_entity) (callee : Il.routine_entity) loc =
  caller.ro_calls <-
    { cs_callee = callee.ro_id; cs_virtual = callee.ro_virt <> Virt_no; cs_loc = loc }
    :: caller.ro_calls

(* the declared class of a name path, through locals and fields *)
let rec class_of_path t locals (this_cl : Il.class_id) (path : string list) :
    Il.class_id option =
  match path with
  | [] -> None
  | [ "this" ] -> Some this_cl
  | first :: rest -> (
      let base =
        match Hashtbl.find_opt locals first with
        | Some ty -> Il.class_of_type t.prog ty
        | None -> (
            (* field of this? *)
            let c = Il.class_ t.prog this_cl in
            match
              List.find_opt (fun (m : Il.data_member) -> m.dm_name = first) c.cl_members
            with
            | Some m -> Il.class_of_type t.prog m.dm_type
            | None -> Hashtbl.find_opt t.classes_by_name first (* static ref *))
      in
      match (base, rest) with
      | Some cl, [] -> Some cl
      | Some cl, field :: rest' -> (
          let c = Il.class_ t.prog cl in
          match
            List.find_opt (fun (m : Il.data_member) -> m.dm_name = field) c.cl_members
          with
          | Some m -> (
              match Il.class_of_type t.prog m.dm_type with
              | Some cl' -> class_of_path t locals cl' (match rest' with [] -> [ "this" ] | _ -> rest')
              | None -> None)
          | None -> None)
      | None, _ -> None)

let rec walk_expr t locals (ro : Il.routine_entity) (this_cl : Il.class_id)
    (e : A.expr) : Il.type_id option =
  match e.A.e with
  | A.Jint _ | A.Jdouble _ | A.Jbool _ | A.Jstr _ | A.Jchar _ -> None
  | A.Jname path -> (
      match path with
      | [ v ] -> Hashtbl.find_opt locals v
      | _ ->
          Option.map
            (fun cl -> Il.intern_type t.prog (Tclass cl))
            (class_of_path t locals this_cl path))
  | A.Jcall (recv, m, args, call_loc) -> (
      List.iter (fun a -> ignore (walk_expr t locals ro this_cl a)) args;
      let nargs = List.length args in
      let target_class =
        match recv with
        | None -> Some this_cl
        | Some r -> (
            match r.A.e with
            | A.Jname path -> (
                match class_of_path t locals this_cl path with
                | Some cl -> Some cl
                | None -> None)
            | _ -> (
                match walk_expr t locals ro this_cl r with
                | Some ty -> Il.class_of_type t.prog ty
                | None -> None))
      in
      match target_class with
      | Some cl -> (
          match find_method t cl m nargs with
          | Some callee ->
              record_call ro callee call_loc;
              Some
                (match (Il.type_ t.prog callee.ro_sig).ty_kind with
                 | Tfunc { rett; _ } -> rett
                 | _ -> Il.ty_void t.prog)
          | None -> None)
      | None -> None)
  | A.Jnew (path, args) -> (
      List.iter (fun a -> ignore (walk_expr t locals ro this_cl a)) args;
      let simple = List.nth path (List.length path - 1) in
      match Hashtbl.find_opt t.classes_by_name simple with
      | Some cl ->
          (match find_method t cl simple (List.length args) with
           | Some ctor -> record_call ro ctor e.A.eloc
           | None -> ());
          Some (Il.intern_type t.prog (Tclass cl))
      | None -> None)
  | A.Jbin (_, a, b) ->
      let ta = walk_expr t locals ro this_cl a in
      ignore (walk_expr t locals ro this_cl b);
      ta
  | A.Jun (_, a) -> walk_expr t locals ro this_cl a
  | A.Jassign (a, b) ->
      ignore (walk_expr t locals ro this_cl b);
      walk_expr t locals ro this_cl a
  | A.Jindex (a, i) -> (
      ignore (walk_expr t locals ro this_cl i);
      match walk_expr t locals ro this_cl a with
      | Some ty -> (
          match (Il.type_ t.prog ty).ty_kind with
          | Tarray (elem, _) -> Some elem
          | _ -> None)
      | None -> None)
  | A.Jcast (ty, a) ->
      ignore (walk_expr t locals ro this_cl a);
      Some (resolve_type t ty)
  | A.Jcond (c, a, b) ->
      ignore (walk_expr t locals ro this_cl c);
      let ta = walk_expr t locals ro this_cl a in
      ignore (walk_expr t locals ro this_cl b);
      ta

let rec walk_stmt t locals ro this_cl (s : A.stmt) : unit =
  match s.A.s with
  | A.Jexpr e -> ignore (walk_expr t locals ro this_cl e)
  | A.Jlocal (ty, n, init) ->
      Hashtbl.replace locals n (resolve_type t ty);
      Option.iter (fun e -> ignore (walk_expr t locals ro this_cl e)) init
  | A.Jif (c, a, b) ->
      ignore (walk_expr t locals ro this_cl c);
      List.iter (walk_stmt t locals ro this_cl) a;
      List.iter (walk_stmt t locals ro this_cl) b
  | A.Jwhile (c, b) ->
      ignore (walk_expr t locals ro this_cl c);
      List.iter (walk_stmt t locals ro this_cl) b
  | A.Jfor (init, c, step, b) ->
      Option.iter (walk_stmt t locals ro this_cl) init;
      Option.iter (fun e -> ignore (walk_expr t locals ro this_cl e)) c;
      Option.iter (fun e -> ignore (walk_expr t locals ro this_cl e)) step;
      List.iter (walk_stmt t locals ro this_cl) b
  | A.Jreturn e -> Option.iter (fun e -> ignore (walk_expr t locals ro this_cl e)) e
  | A.Jthrow e -> ignore (walk_expr t locals ro this_cl e)
  | A.Jtry (b, catches, fin) ->
      List.iter (walk_stmt t locals ro this_cl) b;
      List.iter
        (fun (ty, n, cb) ->
          Hashtbl.replace locals n (resolve_type t ty);
          List.iter (walk_stmt t locals ro this_cl) cb)
        catches;
      Option.iter (List.iter (walk_stmt t locals ro this_cl)) fin
  | A.Jblock b -> List.iter (walk_stmt t locals ro this_cl) b
  | A.Jbreak | A.Jcontinue -> ()

let elaborate_body t ((ro : Il.routine_entity), (m : A.method_), cl) : unit =
  let locals = Hashtbl.create 16 in
  List.iter
    (fun (ty, n) -> Hashtbl.replace locals n (resolve_type t ty))
    m.A.md_params;
  (match m.A.md_body with
   | Some body -> List.iter (walk_stmt t locals ro cl) body
   | None -> ());
  (* Il.ro_calls stores reverse source order; Il.calls re-reverses *)
  ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let analyze ~diags ~file (u : A.unit_) : Il.program =
  let t = create ~diags () in
  let f = Il.add_file t.prog file in
  t.prog.Il.main_file <- Some f.fi_id;
  let ns = declare_package t u.A.u_package in
  (* two passes so classes can reference each other *)
  List.iter (declare_class t ns) u.A.u_classes;
  List.iter (elaborate_class t) u.A.u_classes;
  List.iter (elaborate_body t) (List.rev t.pending);
  ignore (jtype_name (A.Jprim "int"));
  t.prog

let compile_string ?(file = "Main.java") ~diags src : Il.program =
  let u = Java_parser.parse ~diags ~file src in
  analyze ~diags ~file u
