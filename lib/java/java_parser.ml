(** Parser for the Java subset, over the shared C++ token stream.

    Java keywords that C++ lacks ([package], [extends], ...) arrive as
    [Ident]s; shared keywords ([class], [public], [int], ...) arrive as
    [Kw]s, so the helpers below accept either form. *)

open Pdt_util
open Pdt_lex
open Java_ast

exception Parse_error of Srcloc.t * string

type t = { toks : Token.tok array; mutable pos : int; diags : Diag.engine }

let eof_tok : Token.tok =
  { tok = Token.Eof; loc = Srcloc.dummy; bol = false; space = false }

let cur t = if t.pos < Array.length t.toks then t.toks.(t.pos) else eof_tok
let peek t n =
  if t.pos + n < Array.length t.toks then t.toks.(t.pos + n) else eof_tok
let advance t = t.pos <- t.pos + 1
let loc t = (cur t).Token.loc

let err t fmt = Fmt.kstr (fun m -> raise (Parse_error (loc t, m))) fmt

(* a "word": identifier or keyword spelling *)
let word t =
  match (cur t).Token.tok with
  | Token.Ident s | Token.Kw s -> Some s
  | _ -> None

let check_word t s = word t = Some s
let eat_word t s = if check_word t s then (advance t; true) else false
let check_punct t p = match (cur t).Token.tok with Token.Punct q -> p = q | _ -> false
let eat_punct t p = if check_punct t p then (advance t; true) else false

let expect_punct t p =
  if not (eat_punct t p) then
    err t "expected '%s', found %s" p (Token.describe (cur t).Token.tok)

let expect_name t =
  match word t with
  | Some s ->
      advance t;
      s
  | None -> err t "expected name, found %s" (Token.describe (cur t).Token.tok)

let primitive_types =
  [ "int"; "boolean"; "double"; "float"; "long"; "short"; "byte"; "char"; "void" ]

let modifiers_of t =
  let mods = ref [] in
  let rec go () =
    match word t with
    | Some "public" -> advance t; mods := Mpublic :: !mods; go ()
    | Some "private" -> advance t; mods := Mprivate :: !mods; go ()
    | Some "protected" -> advance t; mods := Mprotected :: !mods; go ()
    | Some "static" -> advance t; mods := Mstatic :: !mods; go ()
    | Some "final" -> advance t; mods := Mfinal :: !mods; go ()
    | Some "abstract" -> advance t; mods := Mabstract :: !mods; go ()
    | Some "synchronized" | Some "native" | Some "transient" | Some "volatile" ->
        advance t; go ()
    | _ -> ()
  in
  go ();
  List.rev !mods

let rec parse_dotted t =
  let n = expect_name t in
  if check_punct t "."
     && (match (peek t 1).Token.tok with
         | Token.Ident _ | Token.Kw _ -> true
         | _ -> false)
  then begin
    advance t;
    n :: parse_dotted t
  end
  else [ n ]

let parse_type t : jtype =
  let base =
    match word t with
    | Some p when List.mem p primitive_types ->
        advance t;
        Jprim p
    | Some _ -> Jclass (parse_dotted t)
    | None -> err t "expected type, found %s" (Token.describe (cur t).Token.tok)
  in
  let rec arrays ty =
    if check_punct t "[" && (peek t 1).Token.tok = Token.Punct "]" then begin
      advance t;
      advance t;
      arrays (Jarray ty)
    end
    else ty
  in
  arrays base

(* does a type start here (for local-declaration disambiguation)?  Types are
   word [word .]* followed by a name, or a primitive *)
let starts_local_decl t =
  match word t with
  | Some p when List.mem p primitive_types -> true
  | Some _ -> (
      (* IDENT IDENT  or  IDENT [] IDENT  or  IDENT.IDENT ... IDENT IDENT *)
      let rec scan i =
        match ((peek t i).Token.tok, (peek t (i + 1)).Token.tok) with
        | (Token.Ident _ | Token.Kw _), Token.Punct "." -> scan (i + 2)
        | (Token.Ident _ | Token.Kw _), Token.Punct "[" -> (
            match ((peek t (i + 2)).Token.tok, (peek t (i + 3)).Token.tok) with
            | Token.Punct "]", Token.Ident _ -> true
            | _ -> false)
        | (Token.Ident _ | Token.Kw _), Token.Ident _ -> true
        | _ -> false
      in
      scan 0)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_prec = function
  | "*" | "/" | "%" -> 10
  | "+" | "-" -> 9
  | "<<" | ">>" -> 8
  | "<" | ">" | "<=" | ">=" -> 7
  | "==" | "!=" -> 6
  | "&" -> 5
  | "^" -> 4
  | "|" -> 3
  | "&&" -> 2
  | "||" -> 1
  | _ -> 0

let rec parse_expr t : expr =
  let lhs = parse_cond t in
  match (cur t).Token.tok with
  | Token.Punct "=" ->
      let l = loc t in
      advance t;
      let rhs = parse_expr t in
      { e = Jassign (lhs, rhs); eloc = l }
  | Token.Punct (("+=" | "-=" | "*=" | "/=") as op) ->
      (* desugar compound assignment *)
      let l = loc t in
      advance t;
      let rhs = parse_expr t in
      let base_op = String.sub op 0 1 in
      { e = Jassign (lhs, { e = Jbin (base_op, lhs, rhs); eloc = l }); eloc = l }
  | _ -> lhs

and parse_cond t : expr =
  let c = parse_binary t 1 in
  if eat_punct t "?" then begin
    let l = loc t in
    let a = parse_expr t in
    expect_punct t ":";
    let b = parse_expr t in
    { e = Jcond (c, a, b); eloc = l }
  end
  else c

and parse_binary t min_prec : expr =
  let lhs = ref (parse_unary t) in
  let continue_ = ref true in
  while !continue_ do
    match (cur t).Token.tok with
    | Token.Punct op when binop_prec op >= min_prec && binop_prec op > 0 ->
        let l = loc t in
        advance t;
        let rhs = parse_binary t (binop_prec op + 1) in
        lhs := { e = Jbin (op, !lhs, rhs); eloc = l }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary t : expr =
  let l = loc t in
  match (cur t).Token.tok with
  | Token.Punct (("!" | "-" | "~") as op) ->
      advance t;
      { e = Jun (op, parse_unary t); eloc = l }
  | Token.Punct ("++" | "--") ->
      (* prefix inc: desugar to assignment *)
      let op = match (cur t).Token.tok with Token.Punct p -> p | _ -> "++" in
      advance t;
      let target = parse_unary t in
      let one = { e = Jint 1L; eloc = l } in
      let op' = if op = "++" then "+" else "-" in
      { e = Jassign (target, { e = Jbin (op', target, one); eloc = l }); eloc = l }
  | Token.Punct "(" -> (
      (* cast or parenthesized *)
      match ((peek t 1).Token.tok, (peek t 2).Token.tok) with
      | (Token.Ident _ | Token.Kw _), Token.Punct ")"
        when (match (peek t 3).Token.tok with
              | Token.Ident _ | Token.IntLit _ | Token.FloatLit _ | Token.Punct "(" -> true
              | _ -> false)
             && (match (peek t 1).Token.tok with
                 | Token.Kw k -> List.mem k primitive_types
                 | Token.Ident i -> List.mem i primitive_types || i <> "" && i.[0] >= 'A' && i.[0] <= 'Z'
                 | _ -> false) ->
          advance t;
          let ty = parse_type t in
          expect_punct t ")";
          { e = Jcast (ty, parse_unary t); eloc = l }
      | _ ->
          advance t;
          let e = parse_expr t in
          expect_punct t ")";
          parse_postfix t e)
  | _ -> parse_primary t

and parse_args t : expr list =
  expect_punct t "(";
  if eat_punct t ")" then []
  else begin
    let rec go acc =
      let a = parse_expr t in
      if eat_punct t "," then go (a :: acc)
      else begin
        expect_punct t ")";
        List.rev (a :: acc)
      end
    in
    go []
  end

and parse_primary t : expr =
  let l = loc t in
  match (cur t).Token.tok with
  | Token.IntLit (_, v) ->
      advance t;
      parse_postfix t { e = Jint v; eloc = l }
  | Token.FloatLit (_, v) ->
      advance t;
      parse_postfix t { e = Jdouble v; eloc = l }
  | Token.StringLit (_, s) ->
      advance t;
      parse_postfix t { e = Jstr s; eloc = l }
  | Token.CharLit (_, c) ->
      advance t;
      parse_postfix t { e = Jchar c; eloc = l }
  | Token.Kw "true" ->
      advance t;
      { e = Jbool true; eloc = l }
  | Token.Kw "false" ->
      advance t;
      { e = Jbool false; eloc = l }
  | Token.Kw "this" ->
      advance t;
      parse_postfix t { e = Jname [ "this" ]; eloc = l }
  | Token.Kw "new" | Token.Ident "new" ->
      advance t;
      let cls = parse_dotted t in
      let args = if check_punct t "(" then parse_args t else [] in
      parse_postfix t { e = Jnew (cls, args); eloc = l }
  | Token.Ident _ | Token.Kw _ -> (
      let path = parse_dotted t in
      if check_punct t "(" then begin
        (* unqualified or dotted call: last component is the method *)
        let call_loc = l in
        let args = parse_args t in
        match List.rev path with
        | [ m ] -> parse_postfix t { e = Jcall (None, m, args, call_loc); eloc = l }
        | m :: rev_front ->
            let recv = { e = Jname (List.rev rev_front); eloc = l } in
            parse_postfix t { e = Jcall (Some recv, m, args, call_loc); eloc = l }
        | [] -> err t "empty call path"
      end
      else parse_postfix t { e = Jname path; eloc = l })
  | tok -> err t "expected expression, found %s" (Token.describe tok)

and parse_postfix t (e : expr) : expr =
  if eat_punct t "." then begin
    let l = loc t in
    let m = expect_name t in
    if check_punct t "(" then begin
      let args = parse_args t in
      parse_postfix t { e = Jcall (Some e, m, args, l); eloc = e.eloc }
    end
    else
      (* field access: extend a name path when possible *)
      match e.e with
      | Jname path -> parse_postfix t { e = Jname (path @ [ m ]); eloc = e.eloc }
      | _ -> parse_postfix t { e = Jcall (Some e, m, [], l); eloc = e.eloc }
  end
  else if check_punct t "[" && (peek t 1).Token.tok <> Token.Punct "]" then begin
    advance t;
    let i = parse_expr t in
    expect_punct t "]";
    parse_postfix t { e = Jindex (e, i); eloc = e.eloc }
  end
  else if check_punct t "++" || check_punct t "--" then begin
    let op = if check_punct t "++" then "+" else "-" in
    let l = loc t in
    advance t;
    let one = { e = Jint 1L; eloc = l } in
    { e = Jassign (e, { e = Jbin (op, e, one); eloc = l }); eloc = l }
  end
  else e

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt t : stmt =
  let l = loc t in
  match word t with
  | Some "if" ->
      advance t;
      expect_punct t "(";
      let c = parse_expr t in
      expect_punct t ")";
      let thn = parse_body t in
      let els = if eat_word t "else" then parse_body t else [] in
      { s = Jif (c, thn, els); sloc = l }
  | Some "while" ->
      advance t;
      expect_punct t "(";
      let c = parse_expr t in
      expect_punct t ")";
      { s = Jwhile (c, parse_body t); sloc = l }
  | Some "for" ->
      advance t;
      expect_punct t "(";
      let init =
        if check_punct t ";" then None else Some (parse_simple_stmt t)
      in
      expect_punct t ";";
      let cond = if check_punct t ";" then None else Some (parse_expr t) in
      expect_punct t ";";
      let step = if check_punct t ")" then None else Some (parse_expr t) in
      expect_punct t ")";
      { s = Jfor (init, cond, step, parse_body t); sloc = l }
  | Some "return" ->
      advance t;
      let e = if check_punct t ";" then None else Some (parse_expr t) in
      expect_punct t ";";
      { s = Jreturn e; sloc = l }
  | Some "throw" ->
      advance t;
      let e = parse_expr t in
      expect_punct t ";";
      { s = Jthrow e; sloc = l }
  | Some "break" ->
      advance t;
      expect_punct t ";";
      { s = Jbreak; sloc = l }
  | Some "continue" ->
      advance t;
      expect_punct t ";";
      { s = Jcontinue; sloc = l }
  | Some "try" ->
      advance t;
      let body = parse_block t in
      let catches = ref [] in
      while check_word t "catch" do
        advance t;
        expect_punct t "(";
        let ty = parse_type t in
        let n = expect_name t in
        expect_punct t ")";
        catches := (ty, n, parse_block t) :: !catches
      done;
      let fin = if eat_word t "finally" then Some (parse_block t) else None in
      { s = Jtry (body, List.rev !catches, fin); sloc = l }
  | _ when check_punct t "{" -> { s = Jblock (parse_block t); sloc = l }
  | _ ->
      let st = parse_simple_stmt t in
      expect_punct t ";";
      st

(* a local declaration or an expression, without the trailing ';' *)
and parse_simple_stmt t : stmt =
  let l = loc t in
  if starts_local_decl t then begin
    let ty = parse_type t in
    let n = expect_name t in
    let init = if eat_punct t "=" then Some (parse_expr t) else None in
    { s = Jlocal (ty, n, init); sloc = l }
  end
  else { s = Jexpr (parse_expr t); sloc = l }

and parse_block t : stmt list =
  expect_punct t "{";
  let rec go acc =
    if eat_punct t "}" then List.rev acc else go (parse_stmt t :: acc)
  in
  go []

and parse_body t : stmt list =
  if check_punct t "{" then parse_block t else [ parse_stmt t ]

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_class t ~interface : class_decl =
  let l = loc t in
  let name = expect_name t in
  let extends = if eat_word t "extends" then Some (parse_dotted t) else None in
  let implements = ref [] in
  if eat_word t "implements" then begin
    let rec go () =
      implements := !implements @ [ parse_dotted t ];
      if eat_punct t "," then go ()
    in
    go ()
  end;
  expect_punct t "{";
  let fields = ref [] and methods = ref [] in
  let rec members () =
    if check_punct t "}" then ()
    else begin
      let mods = modifiers_of t in
      let mloc = loc t in
      (* constructor: Name ( *)
      if word t = Some name && (peek t 1).Token.tok = Token.Punct "(" then begin
        advance t;
        let params = parse_params t in
        let throws = parse_throws t in
        let body = parse_block t in
        let end_loc = loc t in
        methods :=
          { md_mods = mods; md_ret = None; md_name = name; md_params = params;
            md_throws = throws; md_body = Some body; md_loc = mloc;
            md_end_loc = end_loc }
          :: !methods
      end
      else begin
        let ty = parse_type t in
        let n = expect_name t in
        if check_punct t "(" then begin
          let params = parse_params t in
          let throws = parse_throws t in
          let body, end_loc =
            if check_punct t "{" then begin
              let b = parse_block t in
              (Some b, loc t)
            end
            else begin
              expect_punct t ";";
              (None, loc t)
            end
          in
          methods :=
            { md_mods = mods; md_ret = Some ty; md_name = n; md_params = params;
              md_throws = throws; md_body = body; md_loc = mloc;
              md_end_loc = end_loc }
            :: !methods
        end
        else begin
          let init = if eat_punct t "=" then Some (parse_expr t) else None in
          expect_punct t ";";
          fields :=
            { fd_mods = mods; fd_type = ty; fd_name = n; fd_init = init;
              fd_loc = mloc }
            :: !fields
        end
      end;
      members ()
    end
  in
  members ();
  let end_loc = loc t in
  expect_punct t "}";
  { cd_mods = []; cd_interface = interface; cd_name = name; cd_extends = extends;
    cd_implements = !implements; cd_fields = List.rev !fields;
    cd_methods = List.rev !methods; cd_loc = l; cd_end_loc = end_loc }

and parse_params t : (jtype * string) list =
  expect_punct t "(";
  if eat_punct t ")" then []
  else begin
    let rec go acc =
      let ty = parse_type t in
      let n = expect_name t in
      if eat_punct t "," then go ((ty, n) :: acc)
      else begin
        expect_punct t ")";
        List.rev ((ty, n) :: acc)
      end
    in
    go []
  end

and parse_throws t : string list list =
  if eat_word t "throws" then begin
    let rec go acc =
      let c = parse_dotted t in
      if eat_punct t "," then go (c :: acc) else List.rev (c :: acc)
    in
    go []
  end
  else []

let parse ~diags ~file src : unit_ =
  let toks = Lexer.tokenize ~diags ~file src in
  let t = { toks = Array.of_list toks; pos = 0; diags } in
  let package = ref None and imports = ref [] and classes = ref [] in
  (try
     if eat_word t "package" then begin
       package := Some (parse_dotted t);
       expect_punct t ";"
     end;
     while check_word t "import" do
       advance t;
       imports := !imports @ [ parse_dotted t ];
       ignore (eat_punct t ";")
     done;
     let rec units () =
       match (cur t).Token.tok with
       | Token.Eof -> ()
       | _ ->
           ignore (modifiers_of t);
           if eat_word t "class" then classes := !classes @ [ parse_class t ~interface:false ]
           else if eat_word t "interface" then
             classes := !classes @ [ parse_class t ~interface:true ]
           else err t "expected class or interface, found %s"
                  (Token.describe (cur t).Token.tok);
           units ()
     in
     units ()
   with Parse_error (l, m) -> Diag.error diags l "%s" m);
  { u_package = !package; u_imports = !imports; u_classes = !classes; u_file = file }
