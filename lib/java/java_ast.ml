(** Abstract syntax for the Java subset (the paper's §6 Java IL Analyzer).

    Java's token grammar is close enough to C++'s that the front end reuses
    [Pdt_lex.Lexer]; Java-only keywords ([package], [import], [extends],
    [implements], [interface], [final], [abstract], [boolean], ...) arrive as
    identifiers and are recognized by the parser. *)

open Pdt_util

type jtype =
  | Jprim of string               (** int, boolean, double, char, long, void, float, byte, short *)
  | Jclass of string list         (** possibly qualified: java.lang.String *)
  | Jarray of jtype

type expr = { e : expr_kind; eloc : Srcloc.t }

and expr_kind =
  | Jint of int64
  | Jdouble of float
  | Jbool of bool
  | Jstr of string
  | Jchar of int
  | Jname of string list          (** a.b.c — variable, field path, or type *)
  | Jcall of expr option * string * expr list * Srcloc.t
      (** receiver (None = this/static-local), method, args, call site *)
  | Jnew of string list * expr list
  | Jbin of string * expr * expr
  | Jun of string * expr
  | Jassign of expr * expr
  | Jindex of expr * expr
  | Jcast of jtype * expr
  | Jcond of expr * expr * expr

type stmt = { s : stmt_kind; sloc : Srcloc.t }

and stmt_kind =
  | Jexpr of expr
  | Jlocal of jtype * string * expr option
  | Jif of expr * stmt list * stmt list
  | Jwhile of expr * stmt list
  | Jfor of stmt option * expr option * expr option * stmt list
  | Jreturn of expr option
  | Jthrow of expr
  | Jtry of stmt list * (jtype * string * stmt list) list * stmt list option
  | Jblock of stmt list
  | Jbreak
  | Jcontinue

type modifier = Mpublic | Mprivate | Mprotected | Mstatic | Mfinal | Mabstract

type field = {
  fd_mods : modifier list;
  fd_type : jtype;
  fd_name : string;
  fd_init : expr option;
  fd_loc : Srcloc.t;
}

type method_ = {
  md_mods : modifier list;
  md_ret : jtype option;           (** None = constructor *)
  md_name : string;
  md_params : (jtype * string) list;
  md_throws : string list list;
  md_body : stmt list option;      (** None = abstract / interface *)
  md_loc : Srcloc.t;
  md_end_loc : Srcloc.t;
}

type class_decl = {
  cd_mods : modifier list;
  cd_interface : bool;
  cd_name : string;
  cd_extends : string list option;
  cd_implements : string list list;
  cd_fields : field list;
  cd_methods : method_ list;
  cd_loc : Srcloc.t;
  cd_end_loc : Srcloc.t;
}

type unit_ = {
  u_package : string list option;
  u_imports : string list list;
  u_classes : class_decl list;
  u_file : string;
}
