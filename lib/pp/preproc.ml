(** C++ preprocessor.

    Consumes raw token streams (from [Pdt_lex.Lexer]) and produces the
    translation unit's expanded token stream, plus the two pieces of
    compile-time information the PDB reports about preprocessing:

    - the source-file inclusion relation ([so#] items with [sinc] lines), and
    - the table of macro definitions ([ma#] items).

    Supported directives: [#include], [#define] (object- and function-like,
    with [#] stringification and [##] pasting; variadic parameter lists are
    accepted but [__VA_ARGS__] is not expanded — extra arguments are
    dropped), [#undef], [#ifdef],
    [#ifndef], [#if]/[#elif]/[#else]/[#endif] with a full constant-expression
    evaluator, [#error], [#pragma once], and [#line] (ignored except for
    validation).  Macro re-expansion is prevented with hide sets. *)

open Pdt_util
open Pdt_lex

module SS = Set.Make (String)

type macro_kind = Object_like | Function_like

type macro = {
  m_name : string;
  m_kind : macro_kind;
  m_params : string list;        (** empty for object-like *)
  m_variadic : bool;
  m_body : Token.tok list;
  m_loc : Srcloc.t;
  m_text : string;               (** definition text, for the PDB [mtext] *)
}

(** One source file as seen by this compilation. *)
type file_record = {
  f_path : string;
  mutable f_includes : string list;  (** resolved paths, in inclusion order *)
}

type t = {
  vfs : Vfs.t;
  diags : Diag.engine;
  limits : Limits.t;
  macros : (string, macro) Hashtbl.t;
  mutable macro_log : macro list;          (* every definition, in order *)
  files : (string, file_record) Hashtbl.t;
  mutable file_order : string list;        (* first-seen order, reversed *)
  mutable pragma_once : SS.t;
  mutable include_stack : string list;
  mutable out : Token.tok list;            (* reversed output *)
  mutable reported_limits : SS.t;          (* budget breaches already recorded *)
  mutable depth_exceeded : bool;           (* an #include was skipped because
                                              the nesting budget was hit: the
                                              include cone is truncated *)
}

let create ?(predefined = []) ?(limits = Limits.default ()) ~vfs ~diags () =
  let t =
    { vfs; diags; limits; macros = Hashtbl.create 64; macro_log = [];
      files = Hashtbl.create 16; file_order = []; pragma_once = SS.empty;
      include_stack = []; out = []; reported_limits = SS.empty;
      depth_exceeded = false }
  in
  List.iter
    (fun (name, text) ->
      let body = Lexer.tokenize ~diags ~file:"<predefined>" text in
      let m =
        { m_name = name; m_kind = Object_like; m_params = []; m_variadic = false;
          m_body = body; m_loc = Srcloc.dummy; m_text = text }
      in
      Hashtbl.replace t.macros name m)
    predefined;
  t

(* Record a budget breach as a Fatal diagnostic, once per distinct limit —
   the construct that tripped it is abandoned, the TU keeps going. *)
let report_limit t loc e =
  let msg = Limits.describe e in
  if not (SS.mem msg t.reported_limits) then begin
    t.reported_limits <- SS.add msg t.reported_limits;
    Diag.fatal_note t.diags loc "%s" msg
  end

let file_record t path =
  match Hashtbl.find_opt t.files path with
  | Some r -> r
  | None ->
      let r = { f_path = path; f_includes = [] } in
      Hashtbl.replace t.files path r;
      t.file_order <- path :: t.file_order;
      r

(* ------------------------------------------------------------------ *)
(* Logical lines                                                       *)
(* ------------------------------------------------------------------ *)

(* Split a file's token list into logical lines: a directive line (starting
   with '#' at beginning of line) or a run of ordinary tokens up to the next
   bol-'#'. *)

type line =
  | Directive of Srcloc.t * Token.tok list  (* tokens after '#', same line *)
  | Text of Token.tok list

let split_lines toks =
  let rec go acc cur = function
    | [] ->
        let acc = if cur = [] then acc else Text (List.rev cur) :: acc in
        List.rev acc
    | (tk : Token.tok) :: rest when tk.bol && tk.tok = Token.Punct "#" ->
        let acc = if cur = [] then acc else Text (List.rev cur) :: acc in
        (* absorb tokens until the next bol token *)
        let rec take dts = function
          | (d : Token.tok) :: r when not d.bol -> take (d :: dts) r
          | r -> (List.rev dts, r)
        in
        let dtoks, rest = take [] rest in
        go (Directive (tk.loc, dtoks) :: acc) [] rest
    | tk :: rest -> go acc (tk :: cur) rest
  in
  go [] [] toks

(* ------------------------------------------------------------------ *)
(* Macro expansion                                                     *)
(* ------------------------------------------------------------------ *)

(* A pending token: a token plus the set of macro names that must not be
   re-expanded within it (hide set). *)
type ptok = { p : Token.tok; hide : SS.t }

let ptoks_of_toks toks = List.map (fun p -> { p; hide = SS.empty }) toks
let toks_of_ptoks ptoks = List.map (fun x -> x.p) ptoks

let stringize_arg (arg : ptok list) loc : Token.tok =
  let text = Token.text_of_toks (toks_of_ptoks arg) in
  let spelling = "\"" ^ String.concat "\\\"" (String.split_on_char '"' text) ^ "\"" in
  { tok = Token.StringLit (spelling, text); loc; bol = false; space = true }

let paste_tokens t (a : Token.tok) (b : Token.tok) : Token.tok =
  let s = Token.spelling a.tok ^ Token.spelling b.tok in
  match Lexer.tokenize ~diags:t.diags ~file:a.loc.Srcloc.file s with
  | [ one ] -> { one with loc = a.loc; bol = false; space = a.space }
  | _ ->
      Diag.error t.diags a.loc "pasting '%s' and '%s' does not give a valid token"
        (Token.spelling a.tok) (Token.spelling b.tok);
      a

(* Expand [input] fully.  [expanding] is the lexical hide context. *)
let rec expand t (input : ptok list) : ptok list =
  let rec go acc = function
    | [] -> List.rev acc
    | ({ p = { tok = Token.Ident name; _ }; hide } as x) :: rest
      when (not (SS.mem name hide)) && Hashtbl.mem t.macros name -> (
        let m = Hashtbl.find t.macros name in
        match m.m_kind with
        | Object_like ->
            let body = substitute t m [] x.p.loc (SS.add name hide) in
            go acc (body @ rest)
        | Function_like -> (
            match rest with
            | { p = { tok = Token.Punct "("; _ }; _ } :: _ -> (
                match collect_args t rest with
                | None ->
                    (* unterminated: treat as plain identifier *)
                    go (x :: acc) rest
                | Some (args, rest') ->
                    let nargs = List.length args in
                    let nparams = List.length m.m_params in
                    let ok =
                      if m.m_variadic then nargs >= nparams
                      else
                        nargs = nparams
                        || (nparams = 1 && nargs = 0) (* f() with one param: empty arg *)
                    in
                    if not ok then begin
                      Diag.error t.diags x.p.loc
                        "macro '%s' expects %d argument(s), got %d" name nparams
                        nargs;
                      go (x :: acc) rest'
                    end
                    else
                      let args =
                        if nparams = 1 && nargs = 0 then [ [] ] else args
                      in
                      let body =
                        substitute t m args x.p.loc (SS.add name hide)
                      in
                      go acc (body @ rest'))
            | _ -> go (x :: acc) rest))
    | x :: rest -> go (x :: acc) rest
  in
  go [] input

(* Collect macro call arguments: input starts at '('. *)
and collect_args t input : (ptok list list * ptok list) option =
  ignore t;
  match input with
  | { p = { tok = Token.Punct "("; _ }; _ } :: rest ->
      let rec go depth cur args = function
        | [] -> None
        | ({ p = { tok = Token.Punct "("; _ }; _ } as x) :: r ->
            go (depth + 1) (x :: cur) args r
        | { p = { tok = Token.Punct ")"; _ }; _ } :: r when depth = 0 ->
            let args = List.rev (List.rev cur :: args) in
            let args = match args with [ [] ] -> [] | a -> a in
            Some (args, r)
        | ({ p = { tok = Token.Punct ")"; _ }; _ } as x) :: r ->
            go (depth - 1) (x :: cur) args r
        | { p = { tok = Token.Punct ","; _ }; _ } :: r when depth = 0 ->
            go depth [] (List.rev cur :: args) r
        | x :: r -> go depth (x :: cur) args r
      in
      go 0 [] [] rest
  | _ -> None

(* Substitute arguments into a macro body, handle # and ##, then rescan.
   This is where expansion recurses and where token amplification happens,
   so both the macro-depth and per-TU token budgets are charged here: a
   depth breach abandons just this expansion (the name stays unexpanded
   upstream); a token-count breach aborts preprocessing via {!Limits.Exceeded},
   caught in {!run}. *)
and substitute t m (args : ptok list list) call_loc hide : ptok list =
  match Limits.enter_macro t.limits with
  | exception (Limits.Exceeded _ as e) ->
      report_limit t call_loc e;
      []
  | () ->
      Fun.protect ~finally:(fun () -> Limits.exit_macro t.limits) @@ fun () ->
      substitute_body t m args call_loc hide

and substitute_body t m (args : ptok list list) call_loc hide : ptok list =
  let param_index p =
    let rec idx i = function
      | [] -> None
      | q :: _ when String.equal p q -> Some i
      | _ :: r -> idx (i + 1) r
    in
    idx 0 m.m_params
  in
  let arg_for p =
    match param_index p with
    | Some i when i < List.length args -> Some (List.nth args i)
    | _ -> None
  in
  (* Pass 1: parameter replacement with # handling; produce a token list with
     arguments spliced in (arguments are pre-expanded except next to ##/#). *)
  let retok (tk : Token.tok) = { tk with loc = call_loc } in
  let rec subst acc = function
    | [] -> List.rev acc
    | ({ Token.tok = Token.Punct "#"; _ } as h) :: ({ Token.tok = Token.Ident p; _ }) :: rest
      when arg_for p <> None ->
        let arg = Option.get (arg_for p) in
        subst ({ p = stringize_arg arg (retok h).loc; hide } :: acc) rest
    | a :: { Token.tok = Token.Punct "##"; _ } :: b :: rest ->
        (* paste: resolve both sides without pre-expansion *)
        let side (tk : Token.tok) : ptok list =
          match tk.tok with
          | Token.Ident p when arg_for p <> None -> Option.get (arg_for p)
          | _ -> [ { p = retok tk; hide } ]
        in
        let left = side a in
        let right = side b in
        let pasted =
          match (List.rev left, right) with
          | [], r -> r
          | lrev, [] -> List.rev lrev
          | lx :: lrev, rx :: rr ->
              let joined = paste_tokens t lx.p rx.p in
              List.rev lrev @ ({ p = joined; hide } :: rr)
        in
        subst (List.rev_append pasted acc) rest
    | { Token.tok = Token.Ident p; _ } :: rest when arg_for p <> None ->
        let arg = Option.get (arg_for p) in
        let expanded = expand t arg in
        subst (List.rev_append expanded acc) rest
    | tk :: rest -> subst ({ p = retok tk; hide } :: acc) rest
  in
  let substituted = subst [] m.m_body in
  Limits.count_tokens t.limits (List.length substituted);
  (* Pass 2: rescan with the macro name hidden. *)
  expand t (List.map (fun x -> { x with hide = SS.union x.hide hide }) substituted)

(* ------------------------------------------------------------------ *)
(* #if expression evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* Replace defined(X)/defined X before macro expansion, then expand, then
   treat remaining identifiers as 0, and evaluate. *)
let eval_condition t loc (toks : Token.tok list) : bool =
  let rec replace_defined acc = function
    | [] -> List.rev acc
    | { Token.tok = Token.Ident "defined"; _ } :: rest -> (
        let mk v (l : Token.tok) =
          { l with Token.tok = Token.IntLit ((if v then "1" else "0"), if v then 1L else 0L) }
        in
        match rest with
        | ({ Token.tok = Token.Punct "("; _ })
          :: ({ Token.tok = Token.Ident n; _ } as idt)
          :: ({ Token.tok = Token.Punct ")"; _ }) :: r ->
            replace_defined (mk (Hashtbl.mem t.macros n) idt :: acc) r
        | ({ Token.tok = Token.Ident n; _ } as idt) :: r ->
            replace_defined (mk (Hashtbl.mem t.macros n) idt :: acc) r
        | _ ->
            Diag.error t.diags loc "malformed 'defined' operator";
            replace_defined acc rest)
    | tk :: rest -> replace_defined (tk :: acc) rest
  in
  let toks = replace_defined [] toks in
  let toks = toks_of_ptoks (expand t (ptoks_of_toks toks)) in
  (* Pratt parser over int64 *)
  let input = ref toks in
  let peek () = match !input with [] -> None | x :: _ -> Some x.Token.tok in
  let next () =
    match !input with
    | [] -> None
    | x :: r ->
        input := r;
        Some x.Token.tok
  in
  let expect_rparen () =
    match next () with
    | Some (Token.Punct ")") -> ()
    | _ -> Diag.error t.diags loc "expected ')' in #if expression"
  in
  let rec primary () : int64 =
    match next () with
    | Some (Token.IntLit (_, v)) -> v
    | Some (Token.CharLit (_, c)) -> Int64.of_int c
    | Some (Token.Kw "true") -> 1L
    | Some (Token.Kw "false") -> 0L
    | Some (Token.Ident _) -> 0L
    | Some (Token.Punct "(") ->
        let v = ternary () in
        expect_rparen ();
        v
    | Some (Token.Punct "!") -> if primary () = 0L then 1L else 0L
    | Some (Token.Punct "-") -> Int64.neg (primary ())
    | Some (Token.Punct "+") -> primary ()
    | Some (Token.Punct "~") -> Int64.lognot (primary ())
    | other ->
        Diag.error t.diags loc "bad token in #if expression%s"
          (match other with
           | Some tk -> ": " ^ Token.describe tk
           | None -> "");
        0L
  and binary min_prec =
    let prec = function
      | "*" | "/" | "%" -> 10
      | "+" | "-" -> 9
      | "<<" | ">>" -> 8
      | "<" | ">" | "<=" | ">=" -> 7
      | "==" | "!=" -> 6
      | "&" -> 5
      | "^" -> 4
      | "|" -> 3
      | "&&" -> 2
      | "||" -> 1
      | _ -> 0
    in
    let apply op a b =
      let bool v = if v then 1L else 0L in
      match op with
      | "*" -> Int64.mul a b
      | "/" -> if b = 0L then 0L else Int64.div a b
      | "%" -> if b = 0L then 0L else Int64.rem a b
      | "+" -> Int64.add a b
      | "-" -> Int64.sub a b
      | "<<" -> Int64.shift_left a (Int64.to_int b)
      | ">>" -> Int64.shift_right a (Int64.to_int b)
      | "<" -> bool (a < b)
      | ">" -> bool (a > b)
      | "<=" -> bool (a <= b)
      | ">=" -> bool (a >= b)
      | "==" -> bool (a = b)
      | "!=" -> bool (a <> b)
      | "&" -> Int64.logand a b
      | "^" -> Int64.logxor a b
      | "|" -> Int64.logor a b
      | "&&" -> bool (a <> 0L && b <> 0L)
      | "||" -> bool (a <> 0L || b <> 0L)
      | _ -> 0L
    in
    let rec loop lhs =
      match peek () with
      | Some (Token.Punct op) when prec op >= min_prec && prec op > 0 ->
          ignore (next ());
          let rhs =
            let r = primary () in
            loop_rhs r (prec op)
          in
          loop (apply op lhs rhs)
      | _ -> lhs
    and loop_rhs rhs above =
      match peek () with
      | Some (Token.Punct op) when prec op > above ->
          ignore (next ());
          let r = primary () in
          loop_rhs (apply op rhs (loop_rhs r (prec op))) above
      | _ -> rhs
    in
    loop (primary ())
  and ternary () =
    let c = binary 1 in
    match peek () with
    | Some (Token.Punct "?") ->
        ignore (next ());
        let a = ternary () in
        (match next () with
         | Some (Token.Punct ":") -> ()
         | _ -> Diag.error t.diags loc "expected ':' in #if expression");
        let b = ternary () in
        if c <> 0L then a else b
    | _ -> c
  in
  ternary () <> 0L

(* ------------------------------------------------------------------ *)
(* Directive processing                                                *)
(* ------------------------------------------------------------------ *)

type cond_state = {
  mutable active : bool;        (* this branch is live *)
  mutable taken : bool;         (* some branch already taken *)
  parent_active : bool;
}

let define_macro t loc (dtoks : Token.tok list) =
  match dtoks with
  | { tok = Token.Ident name; _ } :: rest
  | { tok = Token.Kw name; _ } :: rest -> (
      let mk kind params variadic body =
        let text =
          let params_text =
            match kind with
            | Object_like -> ""
            | Function_like ->
                "(" ^ String.concat ", " (params @ if variadic then [ "..." ] else [])
                ^ ")"
          in
          String.trim (name ^ params_text ^ " " ^ Token.text_of_toks body)
        in
        let m =
          { m_name = name; m_kind = kind; m_params = params;
            m_variadic = variadic; m_body = body; m_loc = loc; m_text = text }
        in
        (match Hashtbl.find_opt t.macros name with
         | Some old when old.m_text <> m.m_text ->
             Diag.warn t.diags loc "macro '%s' redefined" name
         | _ -> ());
        Hashtbl.replace t.macros name m;
        t.macro_log <- m :: t.macro_log
      in
      match rest with
      | { tok = Token.Punct "("; space = false; _ } :: after_paren ->
          (* function-like: parse parameter list *)
          let rec params acc variadic = function
            | { Token.tok = Token.Punct ")"; _ } :: body ->
                Some (List.rev acc, variadic, body)
            | { Token.tok = Token.Ident p; _ } :: { Token.tok = Token.Punct ","; _ } :: r ->
                params (p :: acc) variadic r
            | { Token.tok = Token.Ident p; _ } :: ({ Token.tok = Token.Punct ")"; _ } :: _ as r) ->
                params (p :: acc) variadic r
            | { Token.tok = Token.Punct "..."; _ } :: ({ Token.tok = Token.Punct ")"; _ } :: _ as r) ->
                params acc true r
            | _ -> None
          in
          (match params [] false after_paren with
           | Some (ps, variadic, body) -> mk Function_like ps variadic body
           | None -> Diag.error t.diags loc "malformed macro parameter list")
      | body -> mk Object_like [] false body)
  | _ -> Diag.error t.diags loc "#define requires a macro name"

let rec process_file t path : unit =
  if List.length t.include_stack >= t.limits.Limits.budgets.Limits.max_include_depth
  then begin
    (* the skipped file's whole subtree is missing from this TU: flag the
       truncation so build caches never treat the unit as reusable *)
    t.depth_exceeded <- true;
    (* report the actual chain, innermost last — the stack holds it *)
    Diag.fatal_note t.diags Srcloc.dummy
      "#include nesting too deep (budget %d); include chain: %s"
      t.limits.Limits.budgets.Limits.max_include_depth
      (String.concat " -> " (List.rev (path :: t.include_stack)))
  end
  else if SS.mem path t.pragma_once then ()
  else begin
    let go () =
      ignore (file_record t path);
      match Vfs.read_raw t.vfs path with
      | None -> Diag.fatal t.diags Srcloc.dummy "cannot open source file %s" path
      | Some src ->
          t.include_stack <- path :: t.include_stack;
          let toks = Lexer.tokenize ~diags:t.diags ~file:path src in
          let lines = split_lines toks in
          let conds : cond_state list ref = ref [] in
          let currently_active () =
            match !conds with [] -> true | c :: _ -> c.active
          in
          List.iter (fun line -> process_line t path conds currently_active line) lines;
          (match !conds with
           | [] -> ()
           | _ -> Diag.error t.diags Srcloc.dummy "unterminated #if in %s" path);
          t.include_stack <- List.tl t.include_stack
    in
    if Trace.on () then
      Trace.span ~cat:"pp" ~args:[ ("file", Trace.Str path) ] "pp.include" go
    else go ()
  end

and process_line t path conds currently_active line =
  match line with
  | Text toks ->
      if currently_active () then begin
        let expanded = expand t (ptoks_of_toks toks) in
        Limits.count_tokens t.limits (List.length expanded);
        t.out <- List.rev_append (toks_of_ptoks expanded) t.out
      end
  | Directive (loc, dtoks) -> (
      let name, rest =
        match dtoks with
        | { tok = Token.Ident n; _ } :: r -> (n, r)
        | { tok = Token.Kw n; _ } :: r -> (n, r)
        | { tok = Token.IntLit _; _ } :: _ -> ("line", [])  (* "# <n>" marker *)
        | [] -> ("", [])
        | d :: _ ->
            Diag.error t.diags loc "unknown preprocessing directive %s"
              (Token.describe d.tok);
            ("", [])
      in
      match name with
      | "ifdef" | "ifndef" ->
          let v =
            match rest with
            | { tok = Token.Ident n; _ } :: _ -> Hashtbl.mem t.macros n
            | _ ->
                Diag.error t.diags loc "#%s requires an identifier" name;
                false
          in
          let v = if name = "ifndef" then not v else v in
          let parent = currently_active () in
          conds := { active = parent && v; taken = v; parent_active = parent } :: !conds
      | "if" ->
          let parent = currently_active () in
          let v = if parent then eval_condition t loc rest else false in
          conds := { active = parent && v; taken = v; parent_active = parent } :: !conds
      | "elif" -> (
          match !conds with
          | [] -> Diag.error t.diags loc "#elif without #if"
          | c :: _ ->
              if c.taken then c.active <- false
              else begin
                let v = if c.parent_active then eval_condition t loc rest else false in
                c.active <- c.parent_active && v;
                c.taken <- v
              end)
      | "else" -> (
          match !conds with
          | [] -> Diag.error t.diags loc "#else without #if"
          | c :: _ ->
              c.active <- c.parent_active && not c.taken;
              c.taken <- true)
      | "endif" -> (
          match !conds with
          | [] -> Diag.error t.diags loc "#endif without #if"
          | _ :: r -> conds := r)
      | _ when not (currently_active ()) -> ()
      | "include" -> (
          let target =
            match rest with
            | [ { tok = Token.StringLit (_, f); _ } ] -> Some (f, false)
            | { tok = Token.Punct "<"; _ } :: r ->
                (* reassemble  <foo/bar.h>  *)
                let rec gather acc = function
                  | { Token.tok = Token.Punct ">"; _ } :: _ ->
                      Some (String.concat "" (List.rev acc), true)
                  | tk :: r -> gather (Token.spelling tk.Token.tok :: acc) r
                  | [] -> None
                in
                gather [] r
            | _ -> None
          in
          match target with
          | None -> Diag.error t.diags loc "malformed #include"
          | Some (name, system) -> (
              match Vfs.resolve_include t.vfs ~from:path ~system name with
              | None ->
                  (* recoverable: the rest of the TU still compiles, minus
                     whatever the missing header would have declared *)
                  Diag.error t.diags loc "cannot find include file '%s'" name
              | Some resolved ->
                  let r = file_record t path in
                  r.f_includes <- r.f_includes @ [ resolved ];
                  process_file t resolved))
      | "define" -> define_macro t loc rest
      | "undef" -> (
          match rest with
          | { tok = Token.Ident n; _ } :: _ -> Hashtbl.remove t.macros n
          | _ -> Diag.error t.diags loc "#undef requires an identifier")
      | "error" ->
          (* recorded, not raised: keep preprocessing to surface further
             diagnostics from the same TU *)
          Diag.error t.diags loc "#error %s" (Token.text_of_toks rest)
      | "warning" ->
          Diag.warn t.diags loc "#warning %s" (Token.text_of_toks rest)
      | "pragma" -> (
          match rest with
          | { tok = Token.Ident "once"; _ } :: _ ->
              t.pragma_once <- SS.add path t.pragma_once
          | _ -> () (* other pragmas ignored *))
      | "line" | "" -> ()
      | other -> Diag.error t.diags loc "unknown preprocessing directive #%s" other)

(** Result of preprocessing one translation unit. *)
type result = {
  tokens : Token.tok list;          (** the expanded token stream *)
  source_files : file_record list;  (** in first-seen order; head = main file *)
  macros : macro list;              (** every definition, in definition order *)
  include_depth_exceeded : bool;
      (** an [#include] was skipped because the nesting budget was hit;
          the token stream covers a truncated include cone.  Build caches
          must treat such a unit as non-reusable: the missing subtree's
          files are invisible to any dependency fingerprint. *)
}

(* The only exception [run] lets escape is [Diag.Error] for an unreadable
   file (an I/O failure, surfaced by [Vfs.read_raw]) — user-input problems
   (lexical errors, missing includes, [#error], budget breaches) are
   recorded in [diags] and yield a partial token stream instead. *)
let run ?(predefined = []) ?limits ~vfs ~diags path : result =
  let limits = match limits with Some l -> l | None -> Limits.default () in
  let t = create ~predefined ~limits ~vfs ~diags () in
  (try process_file t path
   with Limits.Exceeded _ as e -> report_limit t Srcloc.dummy e);
  {
    tokens = List.rev t.out;
    source_files =
      List.rev_map (fun p -> Hashtbl.find t.files p) t.file_order;
    macros = List.rev t.macro_log;
    include_depth_exceeded = t.depth_exceeded;
  }
