(** SILOON name mangling (paper §4.2).

    Templates and operators contain characters scripting languages cannot use
    in identifiers, so SILOON transforms names "to include information on
    types and qualifiers".  The scheme here is deterministic and reversible
    enough for tests: alphanumerics pass through; template brackets, scope
    separators, operators, spaces and qualifiers become readable tokens. *)

let mangle_char = function
  | '<' -> "_L"
  | '>' -> "_G"
  | ',' -> "_c"
  | ' ' -> ""
  | ':' -> "_"    (* '::' becomes '__' *)
  | '*' -> "_p"
  | '&' -> "_r"
  | '[' -> "_lb"
  | ']' -> "_rb"
  | '(' -> "_lp"
  | ')' -> "_rp"
  | '~' -> "_dtor_"
  | '+' -> "_plus"
  | '-' -> "_minus"
  | '=' -> "_eq"
  | '!' -> "_not"
  | '/' -> "_div"
  | '%' -> "_mod"
  | '^' -> "_xor"
  | '|' -> "_or"
  | c -> String.make 1 c

let mangle (name : string) : string =
  let b = Buffer.create (String.length name + 8) in
  String.iter (fun c -> Buffer.add_string b (mangle_char c)) name;
  Buffer.contents b

(** Mangled name of a routine including its parameter types, so overloads
    stay distinct: [Stack<int>::push(const int &)] →
    [Stack_Lint_G__push__const_int__r]. *)
let mangle_routine ~full_name ~param_types : string =
  let params = String.concat "_" (List.map mangle param_types) in
  if params = "" then mangle full_name else mangle full_name ^ "__" ^ params
