(** SILOON: Scripting Interface Languages for Object-Oriented Numerics
    (paper §4.2, Figure 8).

    From the PDB of a C++ library, SILOON generates

    - {b bridging code}: C++ functions with scripting-neutral signatures that
      register the user-designated library routines with SILOON's routine
      management structures and dispatch calls from the scripting side, and
    - {b wrapper code}: Perl and Python modules giving a natural
      object-oriented interface that calls the bridge.

    Only classes and routines actually present in the PDB are exported — for
    templates this means explicitly/implicitly instantiated entities only,
    reproducing the paper's "the user must explicitly instantiate such
    templates in the parsed code" behaviour.  [template_inventory] lists the
    *uninstantiated* templates too, implementing the "useful extension"
    §4.2 proposes (present a template list to the user for selection). *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

type exported_method = {
  em_routine : P.routine_item;
  em_mangled : string;
  em_params : (string * bool) list;  (** type display name, has-default *)
  em_return : string;
  em_kind : [ `Method | `Static | `Ctor | `Dtor | `Operator of string ];
  em_virtual : bool;
}

type exported_class = {
  ec_class : P.class_item;
  ec_mangled : string;
  ec_abstract : bool;
  ec_methods : exported_method list;
}

type exported_function = {
  ef_routine : P.routine_item;
  ef_mangled : string;
  ef_params : (string * bool) list;
  ef_return : string;
}

type plan = {
  classes : exported_class list;
  functions : exported_function list;
}

let sig_parts (d : D.t) (r : P.routine_item) : (string * bool) list * string =
  match (D.type_ d (match r.P.ro_sig with P.Tyref i -> i | P.Clref _ -> 0)) with
  | Some { P.ty_info = P.Yfunc { rett; args; _ }; _ } ->
      ( List.map (fun (tr, dflt) -> (D.typeref_name d tr, dflt)) args,
        D.typeref_name d rett )
  | _ -> ([], "void")

let method_kind (r : P.routine_item) =
  match r.P.ro_kind with
  | "ctor" -> `Ctor
  | "dtor" -> `Dtor
  | "op" -> `Operator r.P.ro_name
  | _ -> if r.P.ro_static then `Static else `Method

(** Build the export plan from a PDB.  Only public members are exported;
    implicitly generated ctors/dtors are kept so objects can be created and
    destroyed from scripts. *)
let plan (d : D.t) : plan =
  let classes =
    List.filter_map
      (fun (c : P.class_item) ->
        (* skip library-internal helper classes *)
        if String.length c.P.cl_name > 0 && c.P.cl_name.[0] = '<' then None
        else begin
          let methods =
            List.filter_map
              (fun (r : P.routine_item) ->
                if r.P.ro_acs = "pub" || r.P.ro_acs = "NA" then begin
                  let params, ret = sig_parts d r in
                  let mangled =
                    Mangle.mangle_routine
                      ~full_name:(D.routine_full_name d r)
                      ~param_types:(List.map fst params)
                  in
                  Some
                    { em_routine = r; em_mangled = mangled; em_params = params;
                      em_return = ret; em_kind = method_kind r;
                      em_virtual = r.P.ro_virt <> "no" }
                end
                else None)
              (D.member_functions d c)
          in
          let abstract =
            List.exists (fun (r : P.routine_item) -> r.P.ro_virt = "pure")
              (D.member_functions d c)
          in
          Some
            { ec_class = c; ec_mangled = Mangle.mangle (D.class_full_name d c);
              ec_abstract = abstract; ec_methods = methods }
        end)
      (D.classes d)
  in
  let functions =
    List.filter_map
      (fun (r : P.routine_item) ->
        match r.P.ro_parent with
        | P.Pcl _ -> None
        | _ ->
            if r.P.ro_name = "main" then None
            else begin
              let params, ret = sig_parts d r in
              Some
                { ef_routine = r;
                  ef_mangled =
                    Mangle.mangle_routine ~full_name:(D.routine_full_name d r)
                      ~param_types:(List.map fst params);
                  ef_params = params; ef_return = ret }
            end)
      (D.routines d)
  in
  { classes; functions }

(** Uninstantiated templates that could be offered to the user — the
    extension proposed at the end of §4.2. *)
let template_inventory (d : D.t) : (P.template_item * int) list =
  List.map (fun te -> (te, List.length (D.instantiations d te))) (D.templates d)

(* ------------------------------------------------------------------ *)
(* C++ bridge generation                                               *)
(* ------------------------------------------------------------------ *)

let is_scalar ty =
  match ty with
  | "int" | "long" | "short" | "unsigned" | "double" | "float" | "bool" | "char"
  | "void" -> true
  | _ -> false

let rec strip_cv_ref ty =
  let ty = String.trim ty in
  let strip_prefix p s =
    if String.length s >= String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match strip_prefix "const " ty with
  | Some rest -> strip_cv_ref rest
  | None ->
      if String.length ty > 0 && (ty.[String.length ty - 1] = '&') then
        strip_cv_ref (String.sub ty 0 (String.length ty - 1))
      else ty

(* the siloon_value accessor for a C++ type *)
let unmarshal ty var =
  let base = strip_cv_ref ty in
  if is_scalar base then Printf.sprintf "siloon_as_%s(%s)" base var
  else if base = "const char *" || base = "char *" then
    Printf.sprintf "siloon_as_string(%s)" var
  else Printf.sprintf "*(%s *)siloon_as_object(%s)" base var

let marshal ty expr =
  let base = strip_cv_ref ty in
  if base = "void" then Printf.sprintf "%s; return siloon_void()" expr
  else if is_scalar base then Printf.sprintf "return siloon_from_%s(%s)" base expr
  else Printf.sprintf "return siloon_from_object(new %s(%s))" base expr

(** Generate the language-independent C++ bridging code (Figure 8's
    "bridge/skeleton code"). *)
let generate_bridge (d : D.t) (p : plan) : string =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "// Bridging code generated by SILOON from the program database.";
  pr "// Links scripting languages with the user's C++ library (Figure 8).";
  pr "#include \"siloon_runtime.h\"";
  pr "";
  List.iter
    (fun ec ->
      let cname = D.class_full_name d ec.ec_class in
      pr "// ---- class %s ----" cname;
      List.iter
        (fun em ->
          let r = em.em_routine in
          let args_sig =
            String.concat ", "
              (List.mapi (fun i _ -> Printf.sprintf "siloon_value a%d" i) em.em_params)
          in
          let self_sig =
            match em.em_kind with
            | `Ctor | `Static -> args_sig
            | _ when args_sig = "" -> "siloon_value self"
            | _ -> "siloon_value self, " ^ args_sig
          in
          let call_args =
            String.concat ", "
              (List.mapi (fun i (ty, _) -> unmarshal ty (Printf.sprintf "a%d" i)) em.em_params)
          in
          pr "extern \"C\" siloon_value siloon_%s(%s) {" em.em_mangled self_sig;
          (match em.em_kind with
           | `Ctor ->
               if ec.ec_abstract then
                 pr "    return siloon_error(\"class %s is abstract\");" cname
               else
                 pr "    return siloon_from_object(new %s(%s));" cname call_args
           | `Dtor ->
               pr "    delete (%s *)siloon_as_object(self);" cname;
               pr "    return siloon_void();"
           | `Static ->
               pr "    %s;"
                 (marshal em.em_return
                    (Printf.sprintf "%s::%s(%s)" cname r.P.ro_name call_args))
           | `Method | `Operator _ ->
               pr "    %s *obj = (%s *)siloon_as_object(self);" cname cname;
               pr "    %s;"
                 (marshal em.em_return
                    (Printf.sprintf "obj->%s(%s)" r.P.ro_name call_args)));
          pr "}";
          pr "")
        ec.ec_methods)
    p.classes;
  List.iter
    (fun ef ->
      let args_sig =
        String.concat ", "
          (List.mapi (fun i _ -> Printf.sprintf "siloon_value a%d" i) ef.ef_params)
      in
      let call_args =
        String.concat ", "
          (List.mapi (fun i (ty, _) -> unmarshal ty (Printf.sprintf "a%d" i)) ef.ef_params)
      in
      pr "extern \"C\" siloon_value siloon_%s(%s) {" ef.ef_mangled args_sig;
      pr "    %s;"
        (marshal ef.ef_return
           (Printf.sprintf "%s(%s)" (D.routine_full_name d ef.ef_routine) call_args));
      pr "}";
      pr "")
    p.functions;
  (* registration with SILOON's routine management structures *)
  pr "void siloon_register_all(siloon_registry *reg) {";
  List.iter
    (fun ec ->
      List.iter
        (fun em ->
          pr "    siloon_register(reg, \"%s\", (siloon_fn)siloon_%s, %d);"
            em.em_mangled em.em_mangled (List.length em.em_params))
        ec.ec_methods)
    p.classes;
  List.iter
    (fun ef ->
      pr "    siloon_register(reg, \"%s\", (siloon_fn)siloon_%s, %d);" ef.ef_mangled
        ef.ef_mangled (List.length ef.ef_params))
    p.functions;
  pr "}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Perl wrappers                                                       *)
(* ------------------------------------------------------------------ *)

let perl_method_name (em : exported_method) =
  match em.em_kind with
  | `Ctor -> "new"
  | `Dtor -> "DESTROY"
  | `Operator op -> Mangle.mangle op
  | `Method | `Static -> em.em_routine.P.ro_name

(** Generate the Perl wrapper module (one package per class). *)
let generate_perl (d : D.t) (p : plan) ~module_name : string =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "# Perl wrappers generated by SILOON.";
  pr "package %s;" module_name;
  pr "use strict;";
  pr "use SILOON::Runtime qw(siloon_call);";
  pr "";
  List.iter
    (fun ec ->
      let pkg = ec.ec_mangled in
      pr "package %s::%s;" module_name pkg;
      pr "# wraps C++ %s %s" ec.ec_class.P.cl_kind (D.class_full_name d ec.ec_class);
      List.iter
        (fun em ->
          let name = perl_method_name em in
          let min_args =
            List.length (List.filter (fun (_, dflt) -> not dflt) em.em_params)
          in
          let max_args = List.length em.em_params in
          (match em.em_kind with
           | `Ctor ->
               pr "sub %s {" name;
               pr "    my ($class, @args) = @_;";
               pr "    die \"%s: expected %d..%d args\" if @args < %d || @args > %d;"
                 name min_args max_args min_args max_args;
               pr "    my $self = siloon_call('%s', @args);" em.em_mangled;
               pr "    return bless { _handle => $self }, $class;";
               pr "}"
           | `Dtor ->
               pr "sub DESTROY {";
               pr "    my ($self) = @_;";
               pr "    siloon_call('%s', $self->{_handle});" em.em_mangled;
               pr "}"
           | `Static ->
               pr "sub %s {" name;
               pr "    my ($class, @args) = @_;";
               pr "    return siloon_call('%s', @args);" em.em_mangled;
               pr "}"
           | `Method | `Operator _ ->
               pr "sub %s {" name;
               pr "    my ($self, @args) = @_;";
               pr "    return siloon_call('%s', $self->{_handle}, @args);" em.em_mangled;
               pr "}");
          pr "")
        ec.ec_methods)
    p.classes;
  if p.functions <> [] then begin
    pr "package %s::Functions;" module_name;
    List.iter
      (fun ef ->
        pr "sub %s {" ef.ef_routine.P.ro_name;
        pr "    return siloon_call('%s', @_);" ef.ef_mangled;
        pr "}";
        pr "")
      p.functions
  end;
  pr "1;";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Python wrappers                                                     *)
(* ------------------------------------------------------------------ *)

let python_class_name (d : D.t) (ec : exported_class) =
  ignore d;
  ec.ec_mangled

(** Generate the Python wrapper module. *)
let generate_python (d : D.t) (p : plan) ~module_name : string =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "# Python wrappers generated by SILOON.";
  pr "\"\"\"Scripting interface to the %s C++ library.\"\"\"" module_name;
  pr "import _siloon";
  pr "";
  List.iter
    (fun ec ->
      pr "class %s(object):" (python_class_name d ec);
      pr "    \"\"\"Wraps C++ %s %s\"\"\"" ec.ec_class.P.cl_kind
        (D.class_full_name d ec.ec_class);
      let ctors =
        List.filter (fun em -> em.em_kind = `Ctor) ec.ec_methods
      in
      (match ctors with
       | [] ->
           pr "    def __init__(self, *args):";
           pr "        self._handle = _siloon.call('%s_default_new', *args)" ec.ec_mangled
       | em :: _ ->
           pr "    def __init__(self, *args):";
           pr "        self._handle = _siloon.call('%s', *args)" em.em_mangled);
      List.iter
        (fun em ->
          match em.em_kind with
          | `Ctor -> ()
          | `Dtor ->
              pr "    def __del__(self):";
              pr "        _siloon.call('%s', self._handle)" em.em_mangled
          | `Static ->
              pr "    @staticmethod";
              pr "    def %s(*args):" em.em_routine.P.ro_name;
              pr "        return _siloon.call('%s', *args)" em.em_mangled
          | `Operator op ->
              let pyname =
                match op with
                | "operator+" -> "__add__"
                | "operator-" -> "__sub__"
                | "operator*" -> "__mul__"
                | "operator/" -> "__truediv__"
                | "operator==" -> "__eq__"
                | "operator!=" -> "__ne__"
                | "operator<" -> "__lt__"
                | "operator>" -> "__gt__"
                | "operator<=" -> "__le__"
                | "operator>=" -> "__ge__"
                | "operator[]" -> "__getitem__"
                | "operator()" -> "__call__"
                | op -> Mangle.mangle op
              in
              pr "    def %s(self, *args):" pyname;
              pr "        return _siloon.call('%s', self._handle, *args)" em.em_mangled
          | `Method ->
              pr "    def %s(self, *args):" em.em_routine.P.ro_name;
              pr "        return _siloon.call('%s', self._handle, *args)" em.em_mangled)
        ec.ec_methods;
      pr "")
    p.classes;
  List.iter
    (fun ef ->
      pr "def %s(*args):" ef.ef_routine.P.ro_name;
      pr "    return _siloon.call('%s', *args)" ef.ef_mangled;
      pr "")
    p.functions;
  Buffer.contents b
