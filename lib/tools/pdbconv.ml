(** pdbconv: converts the compact PDB format into a more readable form
    (Table 2).  References are resolved to names, positions to
    [file:line:col], and items are grouped under headers.  With
    [~check:true] it only validates the file and reports dangling
    references. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

let loc_str (d : D.t) (l : P.loc) =
  if l.P.lfile = 0 then "<none>"
  else
    match D.file d l.P.lfile with
    | Some f -> Printf.sprintf "%s:%d:%d" f.P.so_name l.P.lline l.P.lcol
    | None -> Printf.sprintf "so#%d?:%d:%d" l.P.lfile l.P.lline l.P.lcol

let extent_str d (e : P.extent) =
  Printf.sprintf "header %s .. %s, body %s .. %s"
    (loc_str d e.P.hstart) (loc_str d e.P.hstop)
    (loc_str d e.P.bstart) (loc_str d e.P.bstop)

let parent_str d = function
  | P.Pnone -> "<global>"
  | P.Pcl id -> (
      match D.class_ d id with
      | Some c -> "class " ^ c.P.cl_name
      | None -> Printf.sprintf "cl#%d?" id)
  | P.Pna id -> (
      match D.namespace d id with
      | Some n -> "namespace " ^ n.P.na_name
      | None -> Printf.sprintf "na#%d?" id)

(** Human-readable rendering of a whole PDB. *)
let convert (d : D.t) : string =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "Program database (version %s): %d items" (D.pdb d).P.version (P.item_count (D.pdb d));
  pr "";
  pr "=== Source files (%d) ===" (List.length (D.files d));
  List.iter
    (fun (f : P.source_file) ->
      pr "  [%d] %s" f.P.so_id f.P.so_name;
      List.iter
        (fun i ->
          match D.file d i with
          | Some g -> pr "      includes %s" g.P.so_name
          | None -> pr "      includes so#%d?" i)
        f.P.so_includes)
    (D.files d);
  pr "";
  pr "=== Namespaces (%d) ===" (List.length (D.namespaces d));
  List.iter
    (fun (n : P.namespace_item) ->
      pr "  [%d] %s  at %s" n.P.na_id n.P.na_name (loc_str d n.P.na_loc);
      (match n.P.na_alias with Some a -> pr "      alias for %s" a | None -> ());
      pr "      members: %d" (List.length n.P.na_members))
    (D.namespaces d);
  pr "";
  pr "=== Templates (%d) ===" (List.length (D.templates d));
  List.iter
    (fun (te : P.template_item) ->
      pr "  [%d] %s  (%s)  at %s" te.P.te_id te.P.te_name te.P.te_kind
        (loc_str d te.P.te_loc);
      pr "      parent: %s" (parent_str d te.P.te_parent);
      let insts = D.instantiations d te in
      if insts <> [] then
        pr "      instantiations: %s"
          (String.concat ", " (List.map (D.item_name d) insts)))
    (D.templates d);
  pr "";
  pr "=== Classes (%d) ===" (List.length (D.classes d));
  List.iter
    (fun (c : P.class_item) ->
      pr "  [%d] %s %s  at %s" c.P.cl_id c.P.cl_kind (D.class_full_name d c)
        (loc_str d c.P.cl_loc);
      (match c.P.cl_templ with
       | Some te -> (
           match D.template d te with
           | Some t -> pr "      instantiated from template %s" t.P.te_name
           | None -> pr "      instantiated from te#%d?" te)
       | None -> ());
      List.iter
        (fun (acs, virt, base) ->
          match D.class_ d base with
          | Some bc ->
              pr "      base: %s%s %s" acs (if virt then " virtual" else "") bc.P.cl_name
          | None -> pr "      base: cl#%d?" base)
        c.P.cl_bases;
      List.iter
        (fun (ro, _) ->
          match D.routine d ro with
          | Some r ->
              pr "      member function: %s %s" r.P.ro_name
                (D.typeref_name d r.P.ro_sig)
          | None -> pr "      member function: ro#%d?" ro)
        c.P.cl_funcs;
      List.iter
        (fun (m : P.member) ->
          pr "      member: %s %s  (%s, %s)" (D.typeref_name d m.P.m_type) m.P.m_name
            m.P.m_acs m.P.m_kind)
        c.P.cl_members)
    (D.classes d);
  pr "";
  pr "=== Routines (%d) ===" (List.length (D.routines d));
  List.iter
    (fun (r : P.routine_item) ->
      pr "  [%d] %s  at %s" r.P.ro_id (D.routine_full_name d r) (loc_str d r.P.ro_loc);
      pr "      signature: %s" (D.typeref_name d r.P.ro_sig);
      pr "      parent: %s  access: %s  linkage: %s  storage: %s  virtual: %s%s"
        (parent_str d r.P.ro_parent) r.P.ro_acs r.P.ro_link r.P.ro_store r.P.ro_virt
        (if r.P.ro_defined then "  defined" else "  declared only");
      (match r.P.ro_templ with
       | Some te -> (
           match D.template d te with
           | Some t -> pr "      instantiated from template %s (%s)" t.P.te_name t.P.te_kind
           | None -> pr "      instantiated from te#%d?" te)
       | None -> ());
      List.iter
        (fun ((call : P.call), callee) ->
          pr "      calls %s%s at %s"
            (D.routine_full_name d callee)
            (if call.P.c_virt then " (virtual)" else "")
            (loc_str d call.P.c_loc))
        (D.callees d r))
    (D.routines d);
  pr "";
  pr "=== Types (%d) ===" (List.length (D.types d));
  List.iter
    (fun (ty : P.type_item) ->
      pr "  [%d] %s  (%s)" ty.P.ty_id
        (D.typeref_name d (P.Tyref ty.P.ty_id))
        (P.ykind_string ty.P.ty_info);
      if ty.P.ty_names <> [] then
        pr "      typedef names: %s" (String.concat ", " ty.P.ty_names))
    (D.types d);
  pr "";
  pr "=== Macros (%d) ===" (List.length (D.macros d));
  List.iter
    (fun (m : P.macro_item) ->
      pr "  [%d] %s  (%s)  at %s" m.P.ma_id m.P.ma_name m.P.ma_kind (loc_str d m.P.ma_loc);
      if m.P.ma_text <> "" then pr "      text: %s" m.P.ma_text)
    (D.macros d);
  Buffer.contents b

(** Validate cross-references; returns the list of problems found. *)
let check (d : D.t) : string list =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let check_typeref ctx = function
    | P.Tyref 0 -> add "%s: null type reference" ctx
    | P.Tyref id -> if D.type_ d id = None then add "%s: dangling ty#%d" ctx id
    | P.Clref id -> if D.class_ d id = None then add "%s: dangling cl#%d" ctx id
  in
  let check_loc ctx (l : P.loc) =
    if l.P.lfile <> 0 && D.file d l.P.lfile = None then
      add "%s: dangling so#%d" ctx l.P.lfile
  in
  List.iter
    (fun (r : P.routine_item) ->
      let ctx = "ro#" ^ string_of_int r.P.ro_id in
      check_typeref ctx r.P.ro_sig;
      check_loc ctx r.P.ro_loc;
      (match r.P.ro_templ with
       | Some te -> if D.template d te = None then add "%s: dangling te#%d" ctx te
       | None -> ());
      List.iter
        (fun (c : P.call) ->
          if D.routine d c.P.c_callee = None then
            add "%s: dangling callee ro#%d" ctx c.P.c_callee;
          check_loc ctx c.P.c_loc)
        r.P.ro_calls)
    (D.routines d);
  List.iter
    (fun (c : P.class_item) ->
      let ctx = "cl#" ^ string_of_int c.P.cl_id in
      check_loc ctx c.P.cl_loc;
      List.iter (fun (_, _, b) -> if D.class_ d b = None then add "%s: dangling base cl#%d" ctx b)
        c.P.cl_bases;
      List.iter
        (fun (ro, _) -> if D.routine d ro = None then add "%s: dangling cfunc ro#%d" ctx ro)
        c.P.cl_funcs;
      List.iter (fun (m : P.member) -> check_typeref ctx m.P.m_type) c.P.cl_members)
    (D.classes d);
  List.rev !problems
