(** pdbtree: displays file inclusion, class hierarchy, and call graph trees
    (Table 2).  [print_func_tree] is a faithful port of the DUCTAPE routine
    shown in Figure 5 of the paper: it walks [callees] recursively, marks the
    current path ACTIVE to cut cycles (printing ["..."] at back edges), and
    tags virtual call sites with [(VIRTUAL)]. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

(** Degraded-compilation marker (PR 4's [incomplete] header attribute):
    [Some note] when the PDB was written after recovered front-end errors,
    so tree output can carry the caveat instead of silently presenting a
    partial program as whole. *)
let incomplete_note (d : D.t) : string option =
  if (D.pdb d).P.incomplete then
    Some
      (Printf.sprintf
         "WARNING: incomplete PDB (%d diagnostic%s recorded during \
          compilation); trees may be partial"
         (D.pdb d).P.diag_count
         (if (D.pdb d).P.diag_count = 1 then "" else "s"))
  else None

type flag = Active | Inactive

(* Figure 5, transliterated.  The C++ version stores the flag on the
   pdbRoutine object; we keep a side table. *)
let rec print_func_tree buf (d : D.t) (flags : (int, flag) Hashtbl.t)
    (r : P.routine_item) (level : int) : unit =
  Hashtbl.replace flags r.P.ro_id Active;
  let c = D.callees d r in                                             (* (1) *)
  List.iter
    (fun ((call : P.call), (rr : P.routine_item)) ->
      if level <> 0 || D.callees d rr <> [] then begin
        Buffer.add_string buf (String.make (max 0 ((level - 1) * 5)) ' ');
        if level <> 0 then Buffer.add_string buf "`--> ";
        Buffer.add_string buf (D.routine_full_name d rr);              (* (2) *)
        if call.P.c_virt then Buffer.add_string buf " (VIRTUAL)";
        (* semantic attribute (PDB >= 1.1): call edges mirrored by a spawn
           site run on their own thread *)
        if
          List.exists
            (fun (s : P.spawn) ->
              s.P.sp_callee = rr.P.ro_id
              && s.P.sp_loc.P.lfile = call.P.c_loc.P.lfile
              && s.P.sp_loc.P.lline = call.P.c_loc.P.lline)
            r.P.ro_spawns
        then Buffer.add_string buf " (SPAWN)";
        if Hashtbl.find_opt flags rr.P.ro_id = Some Active then
          Buffer.add_string buf " ...\n"
        else begin
          Buffer.add_char buf '\n';
          print_func_tree buf d flags rr (level + 1)                   (* (3) *)
        end
      end)
    c;
  Hashtbl.replace flags r.P.ro_id Inactive

(** The call graph tree as a string, rooted at [root] (default "main"). *)
let call_graph ?root (d : D.t) : string =
  let buf = Buffer.create 1024 in
  let flags = Hashtbl.create 64 in
  let roots =
    match root with
    | Some r -> [ r ]
    | None -> (
        match List.find_opt (fun (r : P.routine_item) -> r.P.ro_name = "main") (D.routines d) with
        | Some m -> [ m ]
        | None ->
            (* no main: print every routine that is not called by another *)
            List.filter (fun r -> D.callers d r = [] && r.P.ro_calls <> []) (D.routines d))
  in
  List.iter
    (fun r ->
      Buffer.add_string buf (D.routine_full_name d r);
      Buffer.add_char buf '\n';
      print_func_tree buf d flags r 1)
    roots;
  Buffer.contents buf

(** The source-file inclusion tree as a string. *)
let include_tree (d : D.t) : string =
  let buf = Buffer.create 256 in
  let rec go level (t : P.source_file D.tree) =
    Buffer.add_string buf (String.make (max 0 ((level - 1) * 5)) ' ');
    if level <> 0 then Buffer.add_string buf "`--> ";
    Buffer.add_string buf t.D.node.P.so_name;
    Buffer.add_char buf '\n';
    List.iter (go (level + 1)) t.D.children
  in
  (match D.include_tree d with Some t -> go 0 t | None -> ());
  Buffer.contents buf

(** The class hierarchy forest as a string. *)
let class_hierarchy (d : D.t) : string =
  let buf = Buffer.create 256 in
  let rec go level (t : P.class_item D.tree) =
    Buffer.add_string buf (String.make (max 0 ((level - 1) * 5)) ' ');
    if level <> 0 then Buffer.add_string buf "`--> ";
    Buffer.add_string buf (D.class_full_name d t.D.node);
    Buffer.add_char buf '\n';
    List.iter (go (level + 1)) t.D.children
  in
  List.iter (go 0) (D.class_hierarchy d);
  Buffer.contents buf

(** One entry point over the three tree views, so callers that receive
    the tree kind as data (the pdbtree CLI's [-t], the pdbd [tree] verb)
    share the dispatch instead of each re-matching strings. *)
let tree ~(which : [ `Include | `Class | `Call ]) ?root (d : D.t) : string =
  match which with
  | `Include -> include_tree d
  | `Call -> call_graph ?root d
  | `Class -> class_hierarchy d
