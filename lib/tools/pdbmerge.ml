(** pdbmerge: merges PDB files from separate compilations into one PDB file,
    eliminating duplicate template instantiations in the process (Table 2).

    The heavy lifting lives in {!Pdt_ductape.Ductape.merge}; this module adds
    the statistics reporting the command-line tool prints. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

type stats = {
  inputs : int;
  items_before : int;
  items_after : int;
  duplicate_instantiations : int;
      (** template-instantiation items (classes or routines with a
          [ctempl]/[rtempl]) that were eliminated as duplicates *)
}

let count_instantiations (pdb : P.t) =
  List.length (List.filter (fun (c : P.class_item) -> c.P.cl_templ <> None) pdb.P.classes)
  + List.length
      (List.filter (fun (r : P.routine_item) -> r.P.ro_templ <> None) pdb.P.routines)

let merge (pdbs : P.t list) : P.t * stats =
  let merged = D.merge pdbs in
  let before = List.fold_left (fun a p -> a + P.item_count p) 0 pdbs in
  let inst_before = List.fold_left (fun a p -> a + count_instantiations p) 0 pdbs in
  let inst_after = count_instantiations merged in
  ( merged,
    { inputs = List.length pdbs;
      items_before = before;
      items_after = P.item_count merged;
      duplicate_instantiations = inst_before - inst_after } )

let stats_to_string s =
  Printf.sprintf
    "merged %d PDB files: %d items -> %d items (%d duplicate template instantiations eliminated)"
    s.inputs s.items_before s.items_after s.duplicate_instantiations
