(** pdbstats: static software metrics over a program database.

    Not one of the paper's four utilities — it is the kind of tool the paper
    argues PDT makes cheap to build ("a tool of some complexity was easily
    implemented using the DUCTAPE API").  Computes, per routine, call fan-in
    and fan-out; per class, method/member counts, inheritance depth and
    coupling; and whole-program summary numbers. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

type routine_stats = {
  rs_name : string;
  rs_fan_out : int;   (** distinct callees *)
  rs_fan_in : int;    (** distinct callers *)
  rs_defined : bool;
}

type class_stats = {
  cs_name : string;
  cs_methods : int;
  cs_members : int;
  cs_bases : int;
  cs_depth : int;          (** inheritance depth (longest base chain) *)
  cs_derived : int;
  cs_coupling : int;       (** distinct other classes referenced by member
                               types and method signatures *)
  cs_instantiation : bool;
}

type summary = {
  n_routines : int;
  n_defined : int;
  n_classes : int;
  n_instantiations : int;
  n_call_edges : int;
  max_fan_out : int;
  max_fan_in : int;
  max_inheritance_depth : int;
  unreachable_from_main : int;  (** defined routines not reachable from main *)
  n_spawn_sites : int;
  n_du_vars : int;
  n_du_uses : int;
  n_uninit_uses : int;          (** uses flagged possibly-uninitialized *)
  n_mhp_pairs : int;            (** may-happen-in-parallel routine pairs *)
}

let dedup lst = List.sort_uniq compare lst

let routine_stats (d : D.t) : routine_stats list =
  List.map
    (fun (r : P.routine_item) ->
      { rs_name = D.routine_full_name d r;
        rs_fan_out = List.length (dedup (List.map (fun (c : P.call) -> c.c_callee) r.ro_calls));
        rs_fan_in =
          List.length (dedup (List.map (fun (x : P.routine_item) -> x.ro_id) (D.callers d r)));
        rs_defined = r.ro_defined })
    (D.routines d)

let rec inheritance_depth (d : D.t) seen (c : P.class_item) : int =
  if List.mem c.P.cl_id seen then 0
  else
    match D.bases d c with
    | [] -> 0
    | bs ->
        1
        + List.fold_left
            (fun acc (_, _, b) -> max acc (inheritance_depth d (c.P.cl_id :: seen) b))
            0 bs

let class_coupling (d : D.t) (c : P.class_item) : int =
  let of_typeref = function
    | P.Clref id when id <> c.P.cl_id -> [ id ]
    | _ -> []
  in
  let member_refs = List.concat_map (fun m -> of_typeref m.P.m_type) c.P.cl_members in
  let sig_refs =
    List.concat_map
      (fun (r : P.routine_item) ->
        match r.P.ro_sig with
        | P.Tyref id -> (
            match D.type_ d id with
            | Some { P.ty_info = P.Yfunc { rett; args; _ }; _ } ->
                of_typeref rett @ List.concat_map (fun (a, _) -> of_typeref a) args
            | _ -> [])
        | P.Clref _ -> [])
      (D.member_functions d c)
  in
  List.length (dedup (member_refs @ sig_refs))

let class_stats (d : D.t) : class_stats list =
  List.map
    (fun (c : P.class_item) ->
      { cs_name = D.class_full_name d c;
        cs_methods = List.length c.P.cl_funcs;
        cs_members = List.length c.P.cl_members;
        cs_bases = List.length c.P.cl_bases;
        cs_depth = inheritance_depth d [] c;
        cs_derived = List.length (D.derived d c);
        cs_coupling = class_coupling d c;
        cs_instantiation = c.P.cl_templ <> None })
    (D.classes d)

(* routines reachable from main over call edges *)
let reachable_from_main (d : D.t) : int list =
  match
    List.find_opt (fun (r : P.routine_item) -> r.P.ro_name = "main") (D.routines d)
  with
  | None -> []
  | Some main ->
      let seen = Hashtbl.create 64 in
      let rec go (r : P.routine_item) =
        if not (Hashtbl.mem seen r.P.ro_id) then begin
          Hashtbl.replace seen r.P.ro_id ();
          List.iter (fun (_, callee) -> go callee) (D.callees d r)
        end
      in
      go main;
      Hashtbl.fold (fun k () acc -> k :: acc) seen []

let summary (d : D.t) : summary =
  let rs = routine_stats d in
  let cs = class_stats d in
  let reach = reachable_from_main d in
  let unreachable =
    List.length
      (List.filter
         (fun (r : P.routine_item) ->
           r.P.ro_defined && r.P.ro_name <> "main" && not (List.mem r.P.ro_id reach))
         (D.routines d))
  in
  { n_routines = List.length rs;
    n_defined = List.length (List.filter (fun r -> r.rs_defined) rs);
    n_classes = List.length cs;
    n_instantiations = List.length (List.filter (fun c -> c.cs_instantiation) cs);
    n_call_edges =
      List.fold_left
        (fun acc (r : P.routine_item) -> acc + List.length r.P.ro_calls)
        0 (D.routines d);
    max_fan_out = List.fold_left (fun a r -> max a r.rs_fan_out) 0 rs;
    max_fan_in = List.fold_left (fun a r -> max a r.rs_fan_in) 0 rs;
    max_inheritance_depth = List.fold_left (fun a c -> max a c.cs_depth) 0 cs;
    unreachable_from_main = unreachable;
    n_spawn_sites =
      List.fold_left
        (fun acc (r : P.routine_item) -> acc + List.length r.P.ro_spawns)
        0 (D.routines d);
    n_du_vars =
      List.fold_left
        (fun acc (r : P.routine_item) -> acc + List.length r.P.ro_du)
        0 (D.routines d);
    n_du_uses =
      List.fold_left
        (fun acc (r : P.routine_item) ->
          acc
          + List.fold_left
              (fun a (v : P.du_var) -> a + List.length v.P.v_uses)
              0 r.P.ro_du)
        0 (D.routines d);
    n_uninit_uses =
      List.fold_left
        (fun acc (r : P.routine_item) ->
          acc
          + List.fold_left
              (fun a (v : P.du_var) ->
                a + List.length (List.filter (fun (u : P.du_use) -> u.P.u_uninit) v.P.v_uses))
              0 r.P.ro_du)
        0 (D.routines d);
    n_mhp_pairs = List.length (Pdt_analyzer.Mhp.pairs (Pdt_analyzer.Mhp.compute (D.pdb d))) }

(** The summary as labeled fields, in report order — the single source
    both the text {!report} and machine consumers (the pdbd [stats] verb)
    draw from, so the two can never disagree on a number. *)
let summary_fields (s : summary) : (string * int) list =
  [ ("routines", s.n_routines);
    ("defined", s.n_defined);
    ("classes", s.n_classes);
    ("instantiations", s.n_instantiations);
    ("call_edges", s.n_call_edges);
    ("max_fan_out", s.max_fan_out);
    ("max_fan_in", s.max_fan_in);
    ("max_inheritance_depth", s.max_inheritance_depth);
    ("unreachable_from_main", s.unreachable_from_main);
    ("spawn_sites", s.n_spawn_sites);
    ("du_vars", s.n_du_vars);
    ("du_uses", s.n_du_uses);
    ("uninit_uses", s.n_uninit_uses);
    ("mhp_pairs", s.n_mhp_pairs) ]

let report (d : D.t) : string =
  let b = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let s = summary d in
  pr "Program statistics";
  pr "------------------";
  (* degraded-compilation marker (PR 4): a PDB written after recovered
     front-end errors is usable but partial — say so before any numbers *)
  if (D.pdb d).P.incomplete then begin
    pr "WARNING: incomplete PDB (%d diagnostic%s recorded during compilation);"
      (D.pdb d).P.diag_count (if (D.pdb d).P.diag_count = 1 then "" else "s");
    pr "         the statistics below describe the recovered portion only";
    pr ""
  end;
  pr "routines          : %d (%d defined)" s.n_routines s.n_defined;
  pr "classes           : %d (%d template instantiations)" s.n_classes s.n_instantiations;
  pr "call edges        : %d" s.n_call_edges;
  pr "max fan-out       : %d" s.max_fan_out;
  pr "max fan-in        : %d" s.max_fan_in;
  pr "max inherit depth : %d" s.max_inheritance_depth;
  pr "dead (defined, unreachable from main): %d" s.unreachable_from_main;
  (* semantic analyses (define-use, spawn/MHP): absent — not zero — on
     databases written before version 1.1 *)
  if P.lacks_semantics (D.pdb d) then
    pr "semantic analyses  : not present (PDB version %s predates them)"
      (D.pdb d).P.version
  else begin
    pr "spawn sites       : %d" s.n_spawn_sites;
    pr "define-use        : %d vars, %d uses (%d possibly uninitialized)"
      s.n_du_vars s.n_du_uses s.n_uninit_uses;
    pr "MHP pairs         : %d" s.n_mhp_pairs
  end;
  pr "";
  pr "%-36s %7s %7s" "routine" "fan-out" "fan-in";
  List.iter
    (fun r -> pr "%-36s %7d %7d" r.rs_name r.rs_fan_out r.rs_fan_in)
    (List.filter (fun r -> r.rs_fan_out > 0 || r.rs_fan_in > 0) (routine_stats d));
  pr "";
  pr "%-24s %7s %7s %6s %6s %9s" "class" "methods" "members" "bases" "depth" "coupling";
  List.iter
    (fun c ->
      pr "%-24s %7d %7d %6d %6d %9d" c.cs_name c.cs_methods c.cs_members c.cs_bases
        c.cs_depth c.cs_coupling)
    (class_stats d);
  Buffer.contents b
