(** pdbduct: navigation over the semantic attributes (define-use chains
    and spawn sites) the analyzer stores in the PDB.

    The renderings here are the single source for both the [pdbduct] CLI
    and the pdbd [defs]/[uses]/[duchain] verbs' [text] fields, so the two
    can never drift apart — the same discipline pdbstats uses for its
    summary numbers. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

(** [Some note] when the database predates the semantic attributes
    (version 1.0): tools print the caveat and show empty relations
    instead of failing on old files. *)
let semantics_note (d : D.t) : string option =
  if P.lacks_semantics (D.pdb d) then
    Some
      "WARNING: PDB predates semantic attributes (version 1.0); define-use \
       chains and spawn sites are absent, not empty"
  else None

let loc_str (d : D.t) (l : P.loc) : string =
  if l = P.null_loc then "?"
  else
    let file =
      match D.file d l.P.lfile with
      | Some f -> f.P.so_name
      | None -> Printf.sprintf "so#%d" l.P.lfile
    in
    Printf.sprintf "%s:%d:%d" file l.P.lline l.P.lcol

(** Routine lookup by ["ro#N"], plain name, or qualified full name. *)
let find_routine (d : D.t) (key : string) : P.routine_item option =
  match
    if String.length key > 3 && String.sub key 0 3 = "ro#" then
      int_of_string_opt (String.sub key 3 (String.length key - 3))
    else None
  with
  | Some id -> D.routine d id
  | None ->
      List.find_opt
        (fun (r : P.routine_item) ->
          r.P.ro_name = key || D.routine_full_name d r = key)
        (D.routines d)

let var_in (r : P.routine_item) (name : string) : P.du_var option =
  List.find_opt (fun (v : P.du_var) -> v.P.v_name = name) r.P.ro_du

(** Uses reached by definition [i] of [v] (the forward chain walk). *)
let uses_of_def (v : P.du_var) (i : int) : P.du_use list =
  List.filter (fun (u : P.du_use) -> List.mem i u.P.u_reach) v.P.v_uses

(** Definitions reaching use [u] (the backward walk). *)
let defs_of_use (v : P.du_var) (u : P.du_use) : (int * P.loc) list =
  List.filter_map
    (fun i -> Option.map (fun l -> (i, l)) (List.nth_opt v.P.v_defs i))
    u.P.u_reach

(* ------------------------------------------------------------------ *)
(* Text renderings (shared CLI / pdbd)                                 *)
(* ------------------------------------------------------------------ *)

let vars_text (d : D.t) (r : P.routine_item) : string =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "define-use variables of %s:" (D.routine_full_name d r);
  if r.P.ro_du = [] then pr "  (none)"
  else
    List.iter
      (fun (v : P.du_var) ->
        pr "  %s: %d def%s, %d use%s" v.P.v_name (List.length v.P.v_defs)
          (if List.length v.P.v_defs = 1 then "" else "s")
          (List.length v.P.v_uses)
          (if List.length v.P.v_uses = 1 then "" else "s"))
      r.P.ro_du;
  Buffer.contents b

let defs_text (d : D.t) (r : P.routine_item) (v : P.du_var) : string =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "defs of %s in %s:" v.P.v_name (D.routine_full_name d r);
  if v.P.v_defs = [] then pr "  (never defined)"
  else List.iteri (fun i l -> pr "  [%d] %s" i (loc_str d l)) v.P.v_defs;
  Buffer.contents b

let use_suffix (u : P.du_use) : string =
  if u.P.u_uninit then " (maybe uninitialized)" else ""

let uses_text (d : D.t) (r : P.routine_item) (v : P.du_var) : string =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "uses of %s in %s:" v.P.v_name (D.routine_full_name d r);
  if v.P.v_uses = [] then pr "  (never used)"
  else
    List.iter
      (fun (u : P.du_use) ->
        pr "  %s <- defs [%s]%s" (loc_str d u.P.u_loc)
          (String.concat "," (List.map string_of_int u.P.u_reach))
          (use_suffix u))
      v.P.v_uses;
  Buffer.contents b

let chain_text (d : D.t) (r : P.routine_item) (v : P.du_var) : string =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "define-use chains of %s in %s:" v.P.v_name (D.routine_full_name d r);
  List.iteri
    (fun i l ->
      pr "  [%d] %s" i (loc_str d l);
      match uses_of_def v i with
      | [] -> pr "    (no uses reached)"
      | us -> List.iter (fun (u : P.du_use) -> pr "    -> %s%s" (loc_str d u.P.u_loc) (use_suffix u)) us)
    v.P.v_defs;
  List.iter
    (fun (u : P.du_use) ->
      if u.P.u_uninit then pr "  ! %s may be used uninitialized" (loc_str d u.P.u_loc))
    v.P.v_uses;
  Buffer.contents b

let spawns_text (d : D.t) (r : P.routine_item) : string =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "spawn sites of %s:" (D.routine_full_name d r);
  if r.P.ro_spawns = [] then pr "  (none)"
  else
    List.iter
      (fun (s : P.spawn) ->
        let callee =
          match D.routine d s.P.sp_callee with
          | Some c -> D.routine_full_name d c
          | None -> Printf.sprintf "ro#%d" s.P.sp_callee
        in
        match s.P.sp_join with
        | Some j -> pr "  %s at %s, joined at %s" callee (loc_str d s.P.sp_loc) (loc_str d j)
        | None -> pr "  %s at %s, live" callee (loc_str d s.P.sp_loc))
      r.P.ro_spawns;
  Buffer.contents b

let mhp_text (d : D.t) : string =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let m = Pdt_analyzer.Mhp.compute (D.pdb d) in
  let name id =
    match D.routine d id with
    | Some r -> D.routine_full_name d r
    | None -> Printf.sprintf "ro#%d" id
  in
  let pairs = Pdt_analyzer.Mhp.pairs m in
  pr "may-happen-in-parallel pairs: %d" (List.length pairs);
  List.iter (fun (a, b) -> pr "  %s <-> %s" (name a) (name b)) pairs;
  (match Pdt_analyzer.Mhp.concurrent_routines m with
   | [] -> ()
   | ids -> pr "concurrent routines: %s" (String.concat ", " (List.map name ids)));
  Buffer.contents b
