(** Recursive-descent parser for the Fortran 90 subset.

    Statement-oriented: the lexer delivers [Newline] separators, and each
    construct is introduced by a keyword, so the grammar is much simpler than
    C++'s.  Supported units: [module] (with [use], derived [type]s,
    [interface] blocks, variable declarations and a [contains] section),
    [program], and bare external [subroutine]/[function] definitions. *)

open Pdt_util
open F90_ast
module L = F90_lexer

exception Parse_error of Srcloc.t * string

type t = { toks : L.tok array; mutable pos : int; diags : Diag.engine }

let cur t = t.toks.(min t.pos (Array.length t.toks - 1))
let advance t = t.pos <- t.pos + 1
let loc t = (cur t).L.loc

let err t fmt =
  Fmt.kstr (fun m -> raise (Parse_error (loc t, m))) fmt

let check_ident t s =
  match (cur t).L.tok with L.Ident s' -> s = s' | _ -> false

let check_punct t p = match (cur t).L.tok with L.Punct p' -> p = p' | _ -> false

let eat_ident t s = if check_ident t s then (advance t; true) else false
let eat_punct t p = if check_punct t p then (advance t; true) else false

let expect_punct t p =
  if not (eat_punct t p) then err t "expected '%s', found %s" p (L.spelling (cur t).L.tok)

let expect_name t =
  match (cur t).L.tok with
  | L.Ident s when not (L.is_keyword s) ->
      advance t;
      s
  | L.Ident s ->
      (* Fortran keywords are not reserved; accept them as names where a
         name is required *)
      advance t;
      s
  | _ -> err t "expected name, found %s" (L.spelling (cur t).L.tok)

let skip_newlines t =
  while (match (cur t).L.tok with L.Newline -> true | _ -> false) do
    advance t
  done

let expect_eos t =
  (* end of statement *)
  match (cur t).L.tok with
  | L.Newline ->
      advance t;
      skip_newlines t
  | L.Eof -> ()
  | tok -> err t "expected end of statement, found %s" (L.spelling tok)

(* skip the rest of the current statement *)
let skip_statement t =
  while (match (cur t).L.tok with L.Newline | L.Eof -> false | _ -> true) do
    advance t
  done;
  skip_newlines t

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_prec = function
  | "**" -> 8
  | "*" | "/" -> 7
  | "+" | "-" -> 6
  | "==" | "/=" | "<" | ">" | "<=" | ">=" -> 5
  | ".and." -> 3
  | ".or." -> 2
  | _ -> 0

let rec parse_expr t = parse_binary t 1

and parse_binary t min_prec =
  let lhs = ref (parse_unary t) in
  let continue_ = ref true in
  while !continue_ do
    let op =
      match (cur t).L.tok with
      | L.Punct p when binop_prec p > 0 -> Some p
      | _ -> None
    in
    match op with
    | Some op when binop_prec op >= min_prec ->
        let l = loc t in
        advance t;
        let rhs = parse_binary t (binop_prec op + 1) in
        lhs := { e = Ebinop (op, !lhs, rhs); eloc = l }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary t =
  let l = loc t in
  match (cur t).L.tok with
  | L.Punct "-" ->
      advance t;
      { e = Eunop ("-", parse_unary t); eloc = l }
  | L.Punct "+" ->
      advance t;
      parse_unary t
  | _ -> parse_postfix t

and parse_postfix t =
  let prim = parse_primary t in
  let rec post e =
    if eat_punct t "%" then begin
      let field = expect_name t in
      post { e = Ecomponent (e, field); eloc = e.eloc }
    end
    else e
  in
  post prim

and parse_primary t =
  let l = loc t in
  match (cur t).L.tok with
  | L.Int_lit v ->
      advance t;
      { e = Eint v; eloc = l }
  | L.Real_lit v ->
      advance t;
      { e = Ereal v; eloc = l }
  | L.Str_lit s ->
      advance t;
      { e = Estr s; eloc = l }
  | L.Ident "true" | L.Ident "false" ->
      (* .true. / .false. arrive as  . true .  — the dot is consumed below *)
      let b = check_ident t "true" in
      advance t;
      { e = Elogical b; eloc = l }
  | L.Punct "." -> err t "unexpected '.'"
  | L.Ident name ->
      advance t;
      if eat_punct t "(" then begin
        let args = parse_args t in
        { e = Ecall (name, args); eloc = l }
      end
      else { e = Evar name; eloc = l }
  | L.Punct "(" ->
      advance t;
      let e = parse_expr t in
      expect_punct t ")";
      e
  | tok -> err t "expected expression, found %s" (L.spelling tok)

and parse_args t =
  if eat_punct t ")" then []
  else begin
    let rec go acc =
      let a = parse_expr t in
      if eat_punct t "," then go (a :: acc)
      else begin
        expect_punct t ")";
        List.rev (a :: acc)
      end
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

(* does the current statement start a variable declaration? *)
let starts_decl t =
  match (cur t).L.tok with
  | L.Ident ("integer" | "real" | "logical" | "character") -> true
  | L.Ident "type" -> (
      (* 'type(name)' is a declaration; 'type name' opens a derived type *)
      match t.toks.(t.pos + 1).L.tok with
      | L.Punct "(" -> true
      | _ -> false)
  | _ -> false

let parse_type_spec t : type_spec =
  match (cur t).L.tok with
  | L.Ident "integer" ->
      advance t;
      Tinteger
  | L.Ident "real" ->
      advance t;
      Treal
  | L.Ident "logical" ->
      advance t;
      Tlogical
  | L.Ident "character" ->
      advance t;
      let len = ref None in
      if eat_punct t "(" then begin
        (* character(len=10) or character(10) *)
        ignore (eat_ident t "len");
        ignore (eat_punct t "=");
        (match (cur t).L.tok with
         | L.Int_lit v ->
             advance t;
             len := Some (Int64.to_int v)
         | L.Punct "*" -> advance t
         | _ -> ());
        expect_punct t ")"
      end;
      Tcharacter !len
  | L.Ident "type" ->
      advance t;
      expect_punct t "(";
      let n = expect_name t in
      expect_punct t ")";
      Tderived n
  | tok -> err t "expected type specifier, found %s" (L.spelling tok)

(* attribute list between the type spec and '::' *)
let parse_attrs t : attr list =
  let attrs = ref [] in
  while eat_punct t "," do
    (match (cur t).L.tok with
     | L.Ident "dimension" ->
         advance t;
         expect_punct t "(";
         let rec dims acc =
           let d =
             match (cur t).L.tok with
             | L.Int_lit v ->
                 advance t;
                 Int64.to_int v
             | L.Punct ":" ->
                 advance t;
                 0
             | _ ->
                 (* expression extent: record as deferred *)
                 let _ = parse_expr t in
                 0
           in
           if eat_punct t "," then dims (d :: acc)
           else begin
             expect_punct t ")";
             List.rev (d :: acc)
           end
         in
         attrs := Adimension (dims []) :: !attrs
     | L.Ident "allocatable" ->
         advance t;
         attrs := Aallocatable :: !attrs
     | L.Ident "parameter" ->
         advance t;
         attrs := Aparameter :: !attrs
     | L.Ident "intent" ->
         advance t;
         expect_punct t "(";
         let which =
           match (cur t).L.tok with
           | L.Ident (("in" | "out" | "inout") as w) ->
               advance t;
               w
           | _ -> err t "expected in/out/inout"
         in
         (* 'intent(in out)' unsupported; plain forms only *)
         expect_punct t ")";
         attrs := Aintent which :: !attrs
     | L.Ident ("public" | "private") -> advance t
     | tok -> err t "unknown attribute %s" (L.spelling tok))
  done;
  List.rev !attrs

(* one declaration statement: TYPE [, attrs] :: name [(dims)] [= init], ... *)
let parse_var_decls t : var_decl list =
  let l = loc t in
  let ty = parse_type_spec t in
  let attrs = parse_attrs t in
  ignore (eat_punct t "::");
  let rec names acc =
    let vloc = loc t in
    let n = expect_name t in
    let attrs =
      if eat_punct t "(" then begin
        let rec dims acc' =
          let d =
            match (cur t).L.tok with
            | L.Int_lit v ->
                advance t;
                Int64.to_int v
            | L.Punct ":" ->
                advance t;
                0
            | _ ->
                let _ = parse_expr t in
                0
          in
          if eat_punct t "," then dims (d :: acc')
          else begin
            expect_punct t ")";
            List.rev (d :: acc')
          end
        in
        Adimension (dims []) :: attrs
      end
      else attrs
    in
    let init = if eat_punct t "=" then Some (parse_expr t) else None in
    let vd = { v_name = n; v_type = ty; v_attrs = attrs; v_init = init; v_loc = vloc } in
    if eat_punct t "," then names (vd :: acc) else List.rev (vd :: acc)
  in
  let ds = names [] in
  expect_eos t;
  ignore l;
  ds

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt t : stmt option =
  let l = loc t in
  match (cur t).L.tok with
  | L.Ident "call" ->
      advance t;
      let call_loc = loc t in
      let name = expect_name t in
      let args = if eat_punct t "(" then parse_args t else [] in
      expect_eos t;
      Some { s = Scall (name, args, call_loc); sloc = l }
  | L.Ident "if" ->
      advance t;
      expect_punct t "(";
      let cond = parse_expr t in
      expect_punct t ")";
      if eat_ident t "then" then begin
        expect_eos t;
        let then_body = parse_block t [ "else"; "elseif"; "endif"; "end" ] in
        let else_body =
          if check_ident t "else" then begin
            advance t;
            (* 'else if' not supported as chained; plain else *)
            expect_eos t;
            parse_block t [ "endif"; "end" ]
          end
          else []
        in
        (* endif / end if *)
        if eat_ident t "endif" then expect_eos t
        else if eat_ident t "end" then begin
          ignore (eat_ident t "if");
          expect_eos t
        end
        else err t "expected end if";
        Some { s = Sif (cond, then_body, else_body); sloc = l }
      end
      else begin
        (* single-statement if *)
        match parse_stmt t with
        | Some body -> Some { s = Sif (cond, [ body ], []); sloc = l }
        | None -> err t "expected statement after if (...)"
      end
  | L.Ident "do" ->
      advance t;
      if eat_ident t "while" then begin
        expect_punct t "(";
        let cond = parse_expr t in
        expect_punct t ")";
        expect_eos t;
        let body = parse_block t [ "enddo"; "end" ] in
        close_do t;
        Some { s = Sdo_while (cond, body); sloc = l }
      end
      else begin
        let var = expect_name t in
        expect_punct t "=";
        let lo = parse_expr t in
        expect_punct t ",";
        let hi = parse_expr t in
        let step = if eat_punct t "," then Some (parse_expr t) else None in
        expect_eos t;
        let body = parse_block t [ "enddo"; "end" ] in
        close_do t;
        Some { s = Sdo (Some var, Some lo, Some hi, step, body); sloc = l }
      end
  | L.Ident "return" ->
      advance t;
      expect_eos t;
      Some { s = Sreturn; sloc = l }
  | L.Ident "print" ->
      advance t;
      (* print *, e1, e2 *)
      ignore (eat_punct t "*");
      let args = ref [] in
      while eat_punct t "," do
        args := parse_expr t :: !args
      done;
      expect_eos t;
      Some { s = Sprint (List.rev !args); sloc = l }
  | L.Ident ("end" | "endif" | "enddo" | "else" | "elseif" | "contains") -> None
  | L.Eof -> None
  | _ ->
      (* assignment:  designator = expr *)
      let lhs = parse_postfix t in
      expect_punct t "=";
      let rhs = parse_expr t in
      expect_eos t;
      Some { s = Sassign (lhs, rhs); sloc = l }

and parse_block t terminators : stmt list =
  skip_newlines t;
  let rec go acc =
    match (cur t).L.tok with
    | L.Ident kw when List.mem kw terminators -> List.rev acc
    | L.Eof -> List.rev acc
    | _ -> (
        match parse_stmt t with
        | Some s -> go (s :: acc)
        | None -> List.rev acc)
  in
  go []

and close_do t =
  if eat_ident t "enddo" then expect_eos t
  else if eat_ident t "end" then begin
    ignore (eat_ident t "do");
    expect_eos t
  end
  else err t "expected end do"

(* ------------------------------------------------------------------ *)
(* Program units                                                       *)
(* ------------------------------------------------------------------ *)

let parse_routine t ~recursive ~kind : routine =
  let l = loc t in
  let name = expect_name t in
  let args =
    if eat_punct t "(" then begin
      if eat_punct t ")" then []
      else begin
        let rec go acc =
          let a = expect_name t in
          if eat_punct t "," then go (a :: acc)
          else begin
            expect_punct t ")";
            List.rev (a :: acc)
          end
        in
        go []
      end
    end
    else []
  in
  let result =
    if eat_ident t "result" then begin
      expect_punct t "(";
      let r = expect_name t in
      expect_punct t ")";
      Some r
    end
    else None
  in
  expect_eos t;
  (* declarations *)
  let decls = ref [] in
  let continue_decls = ref true in
  while !continue_decls do
    skip_newlines t;
    if check_ident t "implicit" then skip_statement t
    else if check_ident t "use" then skip_statement t
    else if starts_decl t then decls := !decls @ parse_var_decls t
    else continue_decls := false
  done;
  let body = parse_block t [ "end"; "contains" ] in
  let end_loc = loc t in
  if eat_ident t "end" then begin
    ignore
      (eat_ident t "subroutine" || eat_ident t "function" || eat_ident t "program");
    (match (cur t).L.tok with
     | L.Ident n when n = name -> advance t
     | _ -> ());
    expect_eos t
  end;
  { r_name = name; r_kind = kind; r_args = args; r_result = result;
    r_decls = !decls; r_body = body; r_loc = l; r_end_loc = end_loc;
    r_recursive = recursive }

let parse_derived_type t : derived_type =
  let l = loc t in
  (* 'type' consumed; optional :: *)
  ignore (eat_punct t "::");
  let name = expect_name t in
  expect_eos t;
  let fields = ref [] in
  skip_newlines t;
  while starts_decl t do
    fields := !fields @ parse_var_decls t;
    skip_newlines t
  done;
  let end_loc = loc t in
  if eat_ident t "end" then begin
    ignore (eat_ident t "type");
    (match (cur t).L.tok with
     | L.Ident n when n = name -> advance t
     | _ -> ());
    expect_eos t
  end
  else err t "expected end type";
  { dt_name = name; dt_fields = !fields; dt_loc = l; dt_end_loc = end_loc }

let parse_interface t : interface =
  let l = loc t in
  let name = expect_name t in
  expect_eos t;
  let procs = ref [] in
  skip_newlines t;
  let continue_ = ref true in
  while !continue_ do
    if check_ident t "module" then begin
      advance t;
      if not (eat_ident t "procedure") then err t "expected 'module procedure'";
      let rec names () =
        procs := !procs @ [ expect_name t ];
        if eat_punct t "," then names ()
      in
      names ();
      expect_eos t;
      skip_newlines t
    end
    else continue_ := false
  done;
  if eat_ident t "end" then begin
    ignore (eat_ident t "interface");
    (match (cur t).L.tok with
     | L.Ident n when n = name -> advance t
     | _ -> ());
    expect_eos t
  end
  else err t "expected end interface";
  { i_name = name; i_procedures = !procs; i_loc = l }

let parse_module t : module_unit =
  let l = loc t in
  let name = expect_name t in
  expect_eos t;
  let uses = ref [] and types = ref [] and decls = ref [] in
  let interfaces = ref [] and routines = ref [] in
  let in_contains = ref false in
  let finished = ref false in
  while not !finished do
    skip_newlines t;
    match (cur t).L.tok with
    | L.Ident "use" ->
        advance t;
        uses := !uses @ [ expect_name t ];
        skip_statement t
    | L.Ident "implicit" -> skip_statement t
    | L.Ident ("public" | "private") -> skip_statement t
    | L.Ident "type" when (match t.toks.(t.pos + 1).L.tok with
                           | L.Punct "(" -> false
                           | _ -> true) ->
        advance t;
        types := !types @ [ parse_derived_type t ]
    | L.Ident "interface" ->
        advance t;
        interfaces := !interfaces @ [ parse_interface t ]
    | L.Ident "contains" ->
        advance t;
        expect_eos t;
        in_contains := true
    | L.Ident "recursive" ->
        advance t;
        if eat_ident t "subroutine" then
          routines := !routines @ [ parse_routine t ~recursive:true ~kind:`Subroutine ]
        else if eat_ident t "function" then
          routines := !routines @ [ parse_routine t ~recursive:true ~kind:`Function ]
        else err t "expected subroutine or function after 'recursive'"
    | L.Ident ("pure") ->
        advance t
    | L.Ident "subroutine" ->
        advance t;
        routines := !routines @ [ parse_routine t ~recursive:false ~kind:`Subroutine ]
    | L.Ident "function" ->
        advance t;
        routines := !routines @ [ parse_routine t ~recursive:false ~kind:`Function ]
    | L.Ident ("integer" | "real" | "logical" | "character")
    | L.Ident "type" (* type( *) ->
        if !in_contains then finished := true else decls := !decls @ parse_var_decls t
    | L.Ident "end" -> finished := true
    | L.Eof -> finished := true
    | tok -> err t "unexpected %s in module" (L.spelling tok)
  done;
  let end_loc = loc t in
  if eat_ident t "end" then begin
    ignore (eat_ident t "module");
    (match (cur t).L.tok with
     | L.Ident n when n = name -> advance t
     | _ -> ());
    expect_eos t
  end;
  { m_name = name; m_uses = !uses; m_types = !types; m_decls = !decls;
    m_interfaces = !interfaces; m_routines = !routines; m_loc = l;
    m_end_loc = end_loc }

(* returns-type-prefixed function: 'integer function f(x)' *)
let try_typed_function t : routine option =
  match ((cur t).L.tok, t.toks.(t.pos + 1).L.tok) with
  | L.Ident ("integer" | "real" | "logical"), L.Ident "function" ->
      advance t;
      advance t;
      Some (parse_routine t ~recursive:false ~kind:`Function)
  | _ -> None

let parse ~diags ~file toks : compilation_unit =
  let t = { toks = Array.of_list toks; pos = 0; diags } in
  let units = ref [] in
  (try
     skip_newlines t;
     let finished = ref false in
     while not !finished do
       skip_newlines t;
       match (cur t).L.tok with
       | L.Eof -> finished := true
       | L.Ident "module" ->
           advance t;
           units := Pmodule (parse_module t) :: !units
       | L.Ident "program" ->
           advance t;
           units := Pprogram (parse_routine t ~recursive:false ~kind:`Subroutine) :: !units
       | L.Ident "recursive" ->
           advance t;
           if eat_ident t "subroutine" then
             units := Proutine (parse_routine t ~recursive:true ~kind:`Subroutine) :: !units
           else if eat_ident t "function" then
             units := Proutine (parse_routine t ~recursive:true ~kind:`Function) :: !units
           else err t "expected subroutine or function"
       | L.Ident "subroutine" ->
           advance t;
           units := Proutine (parse_routine t ~recursive:false ~kind:`Subroutine) :: !units
       | L.Ident "function" ->
           advance t;
           units := Proutine (parse_routine t ~recursive:false ~kind:`Function) :: !units
       | _ -> (
           match try_typed_function t with
           | Some r -> units := Proutine r :: !units
           | None -> err t "expected program unit, found %s" (L.spelling (cur t).L.tok))
     done
   with Parse_error (l, m) -> Diag.error diags l "%s" m);
  { cu_file = file; cu_units = List.rev !units }
