(** Abstract syntax for the Fortran 90 subset. *)

open Pdt_util

type type_spec =
  | Tinteger
  | Treal
  | Tlogical
  | Tcharacter of int option       (** character(len=n) *)
  | Tderived of string             (** type(name) *)

type attr =
  | Adimension of int list         (** declared extents; 0 = deferred *)
  | Aallocatable
  | Aparameter
  | Aintent of string              (** in | out | inout *)

type expr = { e : expr_kind; eloc : Srcloc.t }

and expr_kind =
  | Eint of int64
  | Ereal of float
  | Estr of string
  | Elogical of bool
  | Evar of string
  | Ecomponent of expr * string    (** v%field *)
  | Ecall of string * expr list    (** function reference or array element *)
  | Ebinop of string * expr * expr
  | Eunop of string * expr

type stmt = { s : stmt_kind; sloc : Srcloc.t }

and stmt_kind =
  | Sassign of expr * expr
  | Scall of string * expr list * Srcloc.t  (** call foo(args) *)
  | Sif of expr * stmt list * stmt list
  | Sdo of string option * expr option * expr option * expr option * stmt list
      (** do var = lo, hi [, step] / do while *)
  | Sdo_while of expr * stmt list
  | Sreturn
  | Sprint of expr list

type var_decl = {
  v_name : string;
  v_type : type_spec;
  v_attrs : attr list;
  v_init : expr option;
  v_loc : Srcloc.t;
}

type routine = {
  r_name : string;
  r_kind : [ `Subroutine | `Function ];
  r_args : string list;
  r_result : string option;                (** function result variable *)
  r_decls : var_decl list;
  r_body : stmt list;
  r_loc : Srcloc.t;
  r_end_loc : Srcloc.t;
  r_recursive : bool;
}

type derived_type = {
  dt_name : string;
  dt_fields : var_decl list;
  dt_loc : Srcloc.t;
  dt_end_loc : Srcloc.t;
}

type interface = {
  i_name : string;                          (** the generic name *)
  i_procedures : string list;               (** module procedures (aliases) *)
  i_loc : Srcloc.t;
}

type module_unit = {
  m_name : string;
  m_uses : string list;
  m_types : derived_type list;
  m_decls : var_decl list;
  m_interfaces : interface list;
  m_routines : routine list;
  m_loc : Srcloc.t;
  m_end_loc : Srcloc.t;
}

type program_unit =
  | Pmodule of module_unit
  | Pprogram of routine                     (** program NAME ... end program *)
  | Proutine of routine                     (** bare external routine *)

type compilation_unit = { cu_file : string; cu_units : program_unit list }
