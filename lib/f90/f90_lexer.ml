(** Free-form Fortran 90 lexer.

    Implements the paper's §6 plan ("A Fortran 90 IL Analyzer is currently
    being implemented"): a second language front end feeding the same
    program database.  Fortran is case-insensitive; identifiers and keywords
    are lowercased on the way in.  [!] starts a comment; [&] at end of line
    continues the statement; statements end at newline or [;]. *)

open Pdt_util

type token =
  | Ident of string                (** lowercased *)
  | Int_lit of int64
  | Real_lit of float
  | Str_lit of string
  | Punct of string
  | Newline                        (** statement separator *)
  | Eof

type tok = { tok : token; loc : Srcloc.t }

let keywords =
  [ "module"; "program"; "contains"; "end"; "subroutine"; "function"; "type";
    "interface"; "use"; "implicit"; "none"; "integer"; "real"; "logical";
    "character"; "call"; "if"; "then"; "else"; "elseif"; "endif"; "do";
    "enddo"; "while"; "return"; "result"; "intent"; "in"; "out"; "inout";
    "print"; "dimension"; "allocatable"; "parameter"; "public"; "private";
    "procedure"; "true"; "false"; "recursive"; "pure" ]

let is_keyword s = List.mem s keywords

let punctuators =
  [ "::"; "=>"; "=="; "/="; "<="; ">="; "**"; "("; ")"; ","; "="; "+"; "-";
    "*"; "/"; "<"; ">"; "%"; ";"; ":"; "'" ]

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  diags : Diag.engine;
}

let loc st = Srcloc.make ~file:st.file ~line:st.line ~col:st.col

let tokenize ~diags ~file src : tok list =
  let st = { src; file; pos = 0; line = 1; col = 1; diags } in
  let n = String.length src in
  let peek () = if st.pos < n then src.[st.pos] else '\000' in
  let peek2 () = if st.pos + 1 < n then src.[st.pos + 1] else '\000' in
  let advance () =
    let c = src.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    c
  in
  let out = ref [] in
  let emit tok l = out := { tok; loc = l } :: !out in
  let last_was_newline () =
    match !out with
    | [] -> true
    | { tok = Newline; _ } :: _ -> true
    | _ -> false
  in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_digit c = c >= '0' && c <= '9' in
  while st.pos < n do
    let l = loc st in
    let c = peek () in
    if c = ' ' || c = '\t' || c = '\r' then ignore (advance ())
    else if c = '!' then
      while st.pos < n && peek () <> '\n' do
        ignore (advance ())
      done
    else if c = '&' then begin
      (* continuation: skip to (and past) the newline *)
      ignore (advance ());
      while st.pos < n && peek () <> '\n' do
        ignore (advance ())
      done;
      if st.pos < n then ignore (advance ())
    end
    else if c = '\n' || c = ';' then begin
      ignore (advance ());
      if not (last_was_newline ()) then emit Newline l
    end
    else if is_alpha c then begin
      let start = st.pos in
      while st.pos < n && (is_alpha (peek ()) || is_digit (peek ())) do
        ignore (advance ())
      done;
      let s = String.lowercase_ascii (String.sub src start (st.pos - start)) in
      emit (Ident s) l
    end
    else if is_digit c then begin
      let start = st.pos in
      let is_real = ref false in
      while st.pos < n && is_digit (peek ()) do ignore (advance ()) done;
      if peek () = '.' && is_digit (peek2 ()) then begin
        is_real := true;
        ignore (advance ());
        while st.pos < n && is_digit (peek ()) do ignore (advance ()) done
      end;
      if peek () = 'e' || peek () = 'E' || peek () = 'd' || peek () = 'D' then begin
        let save = st.pos in
        ignore (advance ());
        if peek () = '+' || peek () = '-' then ignore (advance ());
        if is_digit (peek ()) then begin
          is_real := true;
          while st.pos < n && is_digit (peek ()) do ignore (advance ()) done
        end
        else st.pos <- save
      end;
      let s = String.sub src start (st.pos - start) in
      let s = String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c) s in
      if !is_real then emit (Real_lit (float_of_string s)) l
      else emit (Int_lit (Int64.of_string s)) l
    end
    else if c = '"' || c = '\'' then begin
      let quote = advance () in
      let b = Buffer.create 16 in
      let rec go () =
        if st.pos >= n || peek () = '\n' then
          Diag.error st.diags l "unterminated character literal"
        else
          let ch = advance () in
          if ch = quote then
            (* doubled quote = escaped quote *)
            if peek () = quote then begin
              Buffer.add_char b quote;
              ignore (advance ());
              go ()
            end
            else ()
          else begin
            Buffer.add_char b ch;
            go ()
          end
      in
      go ();
      emit (Str_lit (Buffer.contents b)) l
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            String.length p <= n - st.pos && String.sub src st.pos (String.length p) = p)
          punctuators
      in
      match matched with
      | Some p ->
          for _ = 1 to String.length p do ignore (advance ()) done;
          emit (Punct p) l
      | None ->
          Diag.error st.diags l "stray character '%c'" c;
          ignore (advance ())
    end
  done;
  List.rev ({ tok = Eof; loc = loc st } :: { tok = Newline; loc = loc st } :: !out)

let spelling = function
  | Ident s -> s
  | Int_lit v -> Int64.to_string v
  | Real_lit v -> string_of_float v
  | Str_lit s -> "'" ^ s ^ "'"
  | Punct p -> p
  | Newline -> "<newline>"
  | Eof -> "<eof>"
