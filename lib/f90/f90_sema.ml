(** Fortran 90 semantic analysis: elaborates parsed units into the same IL
    the C++ front end produces — the language-uniformity goal of the paper's
    §6: "if the Program Database Toolkit can make a language-specific parse
    tree accessible in a uniform manner, static analysis tools and other
    applications can be built that process different languages in a uniform
    and consistent way."

    The §6 correspondence table, implemented:

    - Fortran {b modules}       → namespaces ([na#] items);
    - Fortran {b derived types} → classes/structs ([cl#] items, fields as
      [cmem] members);
    - Fortran {b interfaces}    → routines with aliases: the generic name
      forms an overload set over its module procedures, and calls through
      the generic resolve to a specific procedure;
    - Fortran {b array features} → array types with extent attributes
      ([ty#] items of kind [array]);
    - subroutines/functions    → routines with [rlink Fortran] and the
      usual call edges ([rcall]). *)

open Pdt_util
open Pdt_il
open Il
module A = F90_ast

type t = {
  prog : Il.program;
  diags : Diag.engine;
  (* name -> symbol tables; Fortran has flat module scopes *)
  module_ns : (string, Il.namespace_id) Hashtbl.t;
  derived : (string, Il.class_id) Hashtbl.t;
  (* routine overload sets by (lowercased) name; generic interfaces add
     aliases pointing at several procedures *)
  procs : (string, Il.routine_id list ref) Hashtbl.t;
  mutable pending : (Il.routine_entity * A.routine * Il.namespace_id option) list;
}

let create ~diags () =
  { prog = Il.create_program (); diags; module_ns = Hashtbl.create 8;
    derived = Hashtbl.create 16; procs = Hashtbl.create 32; pending = [] }

let ty_integer t = Il.builtin_type t.prog ~bname:"integer" ~ykind:"int" ~yikind:"int"
let ty_real t = Il.builtin_type t.prog ~bname:"real" ~ykind:"float" ~yikind:"double"
let ty_logical t = Il.builtin_type t.prog ~bname:"logical" ~ykind:"bool" ~yikind:"char"
let ty_character t n =
  let ch = Il.builtin_type t.prog ~bname:"character" ~ykind:"char" ~yikind:"char" in
  match n with
  | Some n -> Il.intern_type t.prog (Tarray (ch, Some n))
  | None -> ch

let resolve_type t (ts : A.type_spec) ~loc : Il.type_id =
  match ts with
  | A.Tinteger -> ty_integer t
  | A.Treal -> ty_real t
  | A.Tlogical -> ty_logical t
  | A.Tcharacter n -> ty_character t n
  | A.Tderived name -> (
      match Hashtbl.find_opt t.derived name with
      | Some cl -> Il.intern_type t.prog (Tclass cl)
      | None ->
          Diag.error t.diags loc "unknown derived type '%s'" name;
          Il.ty_error t.prog)

(* apply dimension attributes: the paper's "array features specified with
   new attributes" *)
let apply_attrs t base (attrs : A.attr list) : Il.type_id =
  List.fold_left
    (fun ty a ->
      match a with
      | A.Adimension dims ->
          List.fold_left
            (fun ty d ->
              Il.intern_type t.prog (Tarray (ty, if d = 0 then None else Some d)))
            ty dims
      | A.Aallocatable | A.Aparameter | A.Aintent _ -> ty)
    base attrs

let var_type t (vd : A.var_decl) : Il.type_id =
  apply_attrs t (resolve_type t vd.A.v_type ~loc:vd.A.v_loc) vd.A.v_attrs

(* ------------------------------------------------------------------ *)
(* Declaration pass                                                    *)
(* ------------------------------------------------------------------ *)

let declare_derived_type t ns (dt : A.derived_type) : unit =
  let c =
    Il.add_class t.prog ~name:dt.A.dt_name ~kind:Ckind_struct ~loc:dt.A.dt_loc
      ~parent:(match ns with Some ns -> Pnamespace ns | None -> Pnone)
      ~access:Acc_na
  in
  Hashtbl.replace t.derived dt.A.dt_name c.cl_id;
  c.cl_extent <-
    Srcloc.extent
      ~header:(Srcloc.range dt.A.dt_loc dt.A.dt_loc)
      ~body:(Srcloc.range dt.A.dt_loc dt.A.dt_end_loc) ();
  c.cl_members <-
    List.rev_map
      (fun (f : A.var_decl) ->
        { dm_name = f.A.v_name; dm_loc = f.A.v_loc; dm_access = Pub;
          dm_type = var_type t f; dm_static = false; dm_mutable = true })
      dt.A.dt_fields;
  c.cl_members <- List.rev c.cl_members;
  c.cl_complete <- true;
  match ns with
  | Some ns ->
      let n = Il.namespace t.prog ns in
      n.na_members <- Rclass c.cl_id :: n.na_members
  | None -> ()

let routine_signature t (r : A.routine) : Il.type_id * Il.param_info list =
  let decl_of name =
    List.find_opt (fun (d : A.var_decl) -> d.A.v_name = name) r.A.r_decls
  in
  let params =
    List.map
      (fun arg ->
        let ty =
          match decl_of arg with
          | Some d -> var_type t d
          | None -> ty_real t  (* implicit typing fallback *)
        in
        { pi_name = Some arg; pi_type = ty; pi_has_default = false;
          pi_default = None; pi_loc = r.A.r_loc })
      r.A.r_args
  in
  let rett =
    match r.A.r_kind with
    | `Subroutine -> Il.ty_void t.prog
    | `Function -> (
        let result_name = Option.value r.A.r_result ~default:r.A.r_name in
        match decl_of result_name with
        | Some d -> var_type t d
        | None -> ty_real t)
  in
  let sig_ =
    Il.intern_type t.prog
      (Tfunc
         { rett; params = List.map (fun p -> (p.pi_type, false)) params;
           ellipsis = false; cqual = false; exceptions = None })
  in
  (sig_, params)

let declare_routine t ns (r : A.routine) : Il.routine_entity =
  let sig_, params = routine_signature t r in
  let ro =
    Il.add_routine t.prog ~name:r.A.r_name ~loc:r.A.r_loc
      ~parent:(match ns with Some ns -> Pnamespace ns | None -> Pnone)
      ~access:Acc_na ~sig_
  in
  ro.ro_link <- "Fortran";
  ro.ro_params <- params;
  ro.ro_defined <- true;
  ro.ro_extent <-
    Srcloc.extent
      ~header:(Srcloc.range r.A.r_loc r.A.r_loc)
      ~body:(Srcloc.range r.A.r_loc r.A.r_end_loc) ();
  (match Hashtbl.find_opt t.procs r.A.r_name with
   | Some rs -> rs := !rs @ [ ro.ro_id ]
   | None -> Hashtbl.replace t.procs r.A.r_name (ref [ ro.ro_id ]));
  (match ns with
   | Some ns ->
       let n = Il.namespace t.prog ns in
       n.na_members <- Rroutine ro.ro_id :: n.na_members
   | None -> ());
  t.pending <- (ro, r, ns) :: t.pending;
  ro

(* interfaces: the generic name aliases its module procedures *)
let declare_interface t ns (i : A.interface) : unit =
  ignore ns;
  let targets =
    List.concat_map
      (fun p ->
        match Hashtbl.find_opt t.procs p with
        | Some rs -> !rs
        | None ->
            Diag.warn t.diags i.A.i_loc
              "interface '%s' names unknown procedure '%s'" i.A.i_name p;
            [])
      i.A.i_procedures
  in
  match Hashtbl.find_opt t.procs i.A.i_name with
  | Some rs -> rs := !rs @ targets
  | None -> Hashtbl.replace t.procs i.A.i_name (ref targets)

(* ------------------------------------------------------------------ *)
(* Body pass: expression typing and call edges                         *)
(* ------------------------------------------------------------------ *)

let intrinsics =
  [ "sqrt"; "abs"; "mod"; "max"; "min"; "size"; "real"; "int"; "nint"; "sum";
    "dot_product"; "matmul"; "allocated"; "len"; "trim" ]

let rec expr_type t (locals : (string, Il.type_id) Hashtbl.t)
    (ro : Il.routine_entity) (e : A.expr) : Il.type_id =
  match e.A.e with
  | A.Eint _ -> ty_integer t
  | A.Ereal _ -> ty_real t
  | A.Estr _ -> ty_character t None
  | A.Elogical _ -> ty_logical t
  | A.Evar v -> (
      match Hashtbl.find_opt locals v with
      | Some ty -> ty
      | None -> ty_real t)
  | A.Ecomponent (base, field) -> (
      let bty = expr_type t locals ro base in
      match Il.class_of_type t.prog bty with
      | Some cl -> (
          let c = Il.class_ t.prog cl in
          match List.find_opt (fun m -> m.dm_name = field) c.cl_members with
          | Some m -> m.dm_type
          | None ->
              Diag.warn t.diags e.A.eloc "derived type '%s' has no component '%s'"
                c.cl_name field;
              Il.ty_error t.prog)
      | None -> Il.ty_error t.prog)
  | A.Ecall (name, args) -> (
      let arg_tys = List.map (expr_type t locals ro) args in
      (* array element reference? *)
      match Hashtbl.find_opt locals name with
      | Some ty -> (
          match (Il.type_ t.prog ty).ty_kind with
          | Tarray (elem, _) -> elem
          | _ -> ty)
      | None -> (
          match Hashtbl.find_opt t.procs name with
          | Some rs -> (
              match pick t !rs (List.length arg_tys) with
              | Some callee ->
                  record_call ro callee e.A.eloc;
                  ret_of t callee
              | None -> Il.ty_error t.prog)
          | None ->
              if not (List.mem name intrinsics) then
                Diag.warn t.diags e.A.eloc "unknown function '%s'" name;
              ty_real t))
  | A.Ebinop (op, a, b) -> (
      let ta = expr_type t locals ro a in
      let _ = expr_type t locals ro b in
      match op with
      | "==" | "/=" | "<" | ">" | "<=" | ">=" -> ty_logical t
      | _ -> ta)
  | A.Eunop (_, a) -> expr_type t locals ro a

and ret_of t (r : Il.routine_entity) : Il.type_id =
  match (Il.type_ t.prog r.ro_sig).ty_kind with
  | Tfunc { rett; _ } -> rett
  | _ -> Il.ty_error t.prog

and pick t rs nargs : Il.routine_entity option =
  (* interface resolution by arity (Fortran generic resolution, simplified) *)
  let cands = List.map (Il.routine t.prog) rs in
  match
    List.find_opt (fun (r : Il.routine_entity) -> List.length r.ro_params = nargs) cands
  with
  | Some r -> Some r
  | None -> ( match cands with r :: _ -> Some r | [] -> None)

and record_call (caller : Il.routine_entity) (callee : Il.routine_entity) loc :
    unit =
  caller.ro_calls <-
    { cs_callee = callee.ro_id; cs_virtual = false; cs_loc = loc } :: caller.ro_calls

let rec elab_stmt t locals (ro : Il.routine_entity) (s : A.stmt) : unit =
  match s.A.s with
  | A.Sassign (lhs, rhs) ->
      ignore (expr_type t locals ro lhs);
      ignore (expr_type t locals ro rhs)
  | A.Scall (name, args, call_loc) -> (
      let n = List.length args in
      List.iter (fun a -> ignore (expr_type t locals ro a)) args;
      match Hashtbl.find_opt t.procs name with
      | Some rs -> (
          match pick t !rs n with
          | Some callee -> record_call ro callee call_loc
          | None -> ())
      | None ->
          if not (List.mem name intrinsics) then
            Diag.warn t.diags call_loc "call to unknown subroutine '%s'" name)
  | A.Sif (c, a, b) ->
      ignore (expr_type t locals ro c);
      List.iter (elab_stmt t locals ro) a;
      List.iter (elab_stmt t locals ro) b
  | A.Sdo (var, lo, hi, step, body) ->
      Option.iter (fun v -> Hashtbl.replace locals v (ty_integer t)) var;
      List.iter
        (fun e -> Option.iter (fun e -> ignore (expr_type t locals ro e)) e)
        [ lo; hi; step ];
      List.iter (elab_stmt t locals ro) body
  | A.Sdo_while (c, body) ->
      ignore (expr_type t locals ro c);
      List.iter (elab_stmt t locals ro) body
  | A.Sreturn -> ()
  | A.Sprint args -> List.iter (fun a -> ignore (expr_type t locals ro a)) args

let elab_body t (ro : Il.routine_entity) (r : A.routine) : unit =
  let locals = Hashtbl.create 16 in
  List.iter
    (fun (d : A.var_decl) -> Hashtbl.replace locals d.A.v_name (var_type t d))
    r.A.r_decls;
  List.iter (elab_stmt t locals ro) r.A.r_body;
  (* Il.ro_calls stores reverse source order; Il.calls re-reverses *)
  ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let analyze ~diags ~file (cu : A.compilation_unit) : Il.program =
  let t = create ~diags () in
  let f = Il.add_file t.prog file in
  t.prog.Il.main_file <- Some f.fi_id;
  (* pass 1: declarations *)
  List.iter
    (fun unit ->
      match unit with
      | A.Pmodule m ->
          let ns =
            Il.add_namespace t.prog ~name:m.A.m_name ~loc:m.A.m_loc ~parent:Pnone
          in
          Hashtbl.replace t.module_ns m.A.m_name ns.na_id;
          List.iter (declare_derived_type t (Some ns.na_id)) m.A.m_types;
          List.iter (fun r -> ignore (declare_routine t (Some ns.na_id) r)) m.A.m_routines;
          List.iter (declare_interface t (Some ns.na_id)) m.A.m_interfaces;
          ns.na_members <- List.rev ns.na_members
      | A.Pprogram r | A.Proutine r -> ignore (declare_routine t None r))
    cu.A.cu_units;
  (* pass 2: bodies (call edges) *)
  List.iter (fun (ro, r, _) -> elab_body t ro r) (List.rev t.pending);
  t.prog

(** Convenience: lex + parse + analyze one Fortran source string. *)
let compile_string ?(file = "main.f90") ~diags src : Il.program =
  let toks = F90_lexer.tokenize ~diags ~file src in
  let cu = F90_parser.parse ~diags ~file toks in
  analyze ~diags ~file cu
