(** A workload written for the may-happen-in-parallel analysis: the
    spawn/join extension in all its shapes — a joined spawn with work on the
    main thread inside the window, two overlapping spawns (making the
    spawned closures concurrent with each other, and [work] concurrent with
    itself), a bare [join;] closing everything, and a strictly sequential
    tail that must {e not} appear in any MHP pair (the precision half of
    the test oracle). *)

let parallel_spawn_cpp =
  {|int work( int n ) {
    int s = 0;
    for( int i = 0; i < n; i++ )
        s += i;
    return s;
}

int helper( int n ) {
    return work( n ) + 1;
}

void logline( int v ) {
}

int serial_part( int n ) {
    return n * 2;
}

int main( ) {
    spawn work( 10 );
    logline( 1 );
    join work;
    spawn helper( 4 );
    spawn work( 8 );
    join;
    int tail = serial_part( 5 );
    return tail;
}
|}

let files = [ ("parallel_spawn.cpp", parallel_spawn_cpp) ]

let main_file = "parallel_spawn.cpp"

let vfs () =
  let vfs = Pdt_util.Vfs.create () in
  List.iter (fun (p, c) -> Pdt_util.Vfs.add_file vfs p c) files;
  vfs
