(** A workload written for the define-use chain analysis: small routines
    whose chains are easy to check by hand (the oracle lives in
    [test_duchains.ml]) yet cover the interesting shapes — parameters as
    initial definitions, a possibly-uninitialized use, definitions merging
    across an [if], a loop-carried compound assignment, and increment
    operators acting as use-then-define. *)

let duchain_demo_cpp =
  {|int source( ) { return 42; }

int branchy( int a, int b ) {
    int x = a;
    int y;
    if( a > b ) {
        x = b;
        y = 1;
    }
    int z = x + y;
    for( int i = 0; i < a; i++ )
        z += i;
    return z;
}

int main( ) {
    int s = source( );
    int t = branchy( s, 3 );
    return t;
}
|}

let files = [ ("duchain_demo.cpp", duchain_demo_cpp) ]

let main_file = "duchain_demo.cpp"

let vfs () =
  let vfs = Pdt_util.Vfs.create () in
  List.iter (fun (p, c) -> Pdt_util.Vfs.add_file vfs p c) files;
  vfs
