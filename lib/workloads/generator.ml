(** Deterministic generator of template-heavy C++ programs.

    Benchmarks need workloads of controllable size and shape: number of
    class templates, instantiation-chain depth (which drives the prelinker
    round count), member-function counts, and the number of translation
    units sharing instantiations (which drives pdbmerge's duplicate
    elimination).  Everything is seeded — same inputs, same program. *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed * 2654435761 + 12345) }

let next r =
  (* xorshift64* *)
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFL)

let pick r lst = List.nth lst (next r mod List.length lst)

type config = {
  seed : int;
  n_class_templates : int;   (** number of distinct class templates *)
  chain_depth : int;         (** each template's method uses the next one *)
  methods_per_class : int;
  n_function_templates : int;
  n_plain_classes : int;
  n_instantiation_types : int;  (** distinct type args used in main *)
}

let default_config =
  { seed = 42; n_class_templates = 8; chain_depth = 3; methods_per_class = 4;
    n_function_templates = 4; n_plain_classes = 4; n_instantiation_types = 3 }

let scalar_types = [ "int"; "double"; "char"; "long"; "bool" ]

(** The shared header defining all the templates. *)
let header (cfg : config) : string =
  let b = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let r = rng cfg.seed in
  pr "#ifndef GENERATED_H";
  pr "#define GENERATED_H";
  pr "";
  (* plain classes first *)
  for i = 0 to cfg.n_plain_classes - 1 do
    pr "class Plain%d {" i;
    pr "public:";
    pr "    Plain%d( ) : v_( %d ) { }" i (next r mod 100);
    pr "    int value( ) const { return v_; }";
    pr "    void bump( ) { v_ = v_ + 1; }";
    pr "private:";
    pr "    int v_;";
    pr "};";
    pr ""
  done;
  (* class templates; template k's work() uses template k+1 (chain) *)
  for k = cfg.n_class_templates - 1 downto 0 do
    pr "template <class T>";
    pr "class Node%d {" k;
    pr "public:";
    pr "    Node%d( ) : v_( T( ) ), count_( 0 ) { }" k;
    pr "    explicit Node%d( const T & v ) : v_( v ), count_( 0 ) { }" k;
    pr "    const T & get( ) const { return v_; }";
    pr "    void set( const T & v ) { v_ = v; count_ = count_ + 1; }";
    for m = 0 to cfg.methods_per_class - 1 do
      pr "    int method%d( int x ) {" m;
      pr "        int acc = x + %d;" (next r mod 10);
      if k + 1 < cfg.n_class_templates && m < cfg.chain_depth then begin
        pr "        Node%d<T> inner;" (k + 1);
        pr "        inner.set( v_ );";
        pr "        acc = acc + inner.method%d( x / 2 );" (m mod cfg.methods_per_class)
      end;
      pr "        count_ = count_ + 1;";
      pr "        return acc + count_;";
      pr "    }"
    done;
    pr "private:";
    pr "    T v_;";
    pr "    int count_;";
    pr "};";
    pr ""
  done;
  (* function templates *)
  for fi = 0 to cfg.n_function_templates - 1 do
    pr "template <class T>";
    pr "T combine%d( const T & a, const T & b ) {" fi;
    (match fi mod 3 with
     | 0 -> pr "    return a + b;"
     | 1 -> pr "    if( a < b ) return b; return a;"
     | _ -> pr "    T t = a; return t;");
    pr "}";
    pr ""
  done;
  pr "#endif";
  Buffer.contents b

(** A translation unit exercising a deterministic subset of the templates.
    Different [tu_index] values instantiate overlapping sets, so merging
    their PDBs eliminates duplicates. *)
let translation_unit ?(with_include = true) (cfg : config) ~tu_index : string =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let r = rng (cfg.seed + tu_index) in
  if with_include then begin
    pr "#include \"generated.h\"";
    pr ""
  end;
  let types =
    List.filteri (fun i _ -> i < cfg.n_instantiation_types) scalar_types
  in
  pr "int tu%d_driver( ) {" tu_index;
  pr "    int total = 0;";
  List.iteri
    (fun ti ty ->
      let k = (tu_index + ti) mod cfg.n_class_templates in
      pr "    {";
      pr "        Node%d<%s> node;" k ty;
      (match ty with
       | "double" -> pr "        node.set( 1.5 );"
       | "char" -> pr "        node.set( 'a' );"
       | "bool" -> pr "        node.set( true );"
       | _ -> pr "        node.set( %d );" (next r mod 50));
      pr "        total = total + node.method%d( %d );"
        (next r mod cfg.methods_per_class) (next r mod 20);
      pr "    }")
    types;
  (* function template uses *)
  for fi = 0 to cfg.n_function_templates - 1 do
    if (fi + tu_index) mod 2 = 0 then
      pr "    total = total + combine%d( %d, %d );" fi (next r mod 10) (next r mod 10)
  done;
  (* plain class use *)
  if cfg.n_plain_classes > 0 then begin
    pr "    Plain%d p;" (tu_index mod cfg.n_plain_classes);
    pr "    p.bump( );";
    pr "    total = total + p.value( );"
  end;
  pr "    return total;";
  pr "}";
  Buffer.contents b

(** A main file calling every TU driver. *)
let main_unit ~n_tus : string =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pr "#include \"generated.h\"";
  for i = 0 to n_tus - 1 do
    pr "int tu%d_driver( );" i
  done;
  pr "";
  pr "int main( ) {";
  pr "    int total = 0;";
  for i = 0 to n_tus - 1 do
    pr "    total = total + tu%d_driver( );" i
  done;
  pr "    return total %% 256;";
  pr "}";
  Buffer.contents b

(** A single-TU program (header + driver + main in one file), for
    parse/analysis throughput benches. *)
let single_file_program ?(cfg = default_config) () : string =
  header cfg ^ "\n" ^ translation_unit ~with_include:false cfg ~tu_index:0
  ^ "\nint main( ) { return tu0_driver( ) % 256; }\n"

(** A TU with a deliberate semantic error (an unknown type), for testing
    that a project build isolates per-unit failures. *)
let broken_unit ~tu_index : string =
  Printf.sprintf
    "#include \"generated.h\"\n\nint tu%d_driver( ) {\n    NoSuchType broken;\n    return 0;\n}\n"
    tu_index

(** A small Fortran 90 translation unit (one module, one function), for
    mixed-language project builds. *)
let fortran_unit ~tu_index : string =
  Printf.sprintf
    {|! generated Fortran unit %d
module gen%d_mod
  implicit none
contains
  function gen%d_scale(x) result(y)
    real :: x, y
    y = x * %d.0 + 1.0
  end function gen%d_scale
end module gen%d_mod
|}
    tu_index tu_index tu_index (tu_index + 2) tu_index tu_index

(** A small Java translation unit (one package-scoped class), for
    mixed-language project builds. *)
let java_unit ~tu_index : string =
  Printf.sprintf
    {|package gen;

public class Gen%d {
    private int base;
    public Gen%d(int b) { base = b; }
    public int apply(int x) { return x + base + %d; }
}
|}
    tu_index tu_index tu_index

(** The files of a multi-TU project as [(name, contents)] pairs:
    [generated.h] + [tu<i>.cpp] files + main. *)
let project_files ?(cfg = default_config) ~n_tus () : (string * string) list =
  [ ("generated.h", header cfg) ]
  @ List.init n_tus (fun i ->
        (Printf.sprintf "tu%d.cpp" i, translation_unit cfg ~tu_index:i))
  @ [ ("main.cpp", main_unit ~n_tus) ]

(** VFS for a multi-TU project: [generated.h] + [tu<i>.cpp] files + main. *)
let project_vfs ?(cfg = default_config) ~n_tus () :
    Pdt_util.Vfs.t * string list =
  let vfs = Pdt_util.Vfs.create () in
  Ministl.mount vfs;
  List.iter
    (fun (name, contents) -> Pdt_util.Vfs.add_file vfs name contents)
    (project_files ~cfg ~n_tus ());
  let sources =
    List.init n_tus (fun i -> Printf.sprintf "tu%d.cpp" i) @ [ "main.cpp" ]
  in
  (vfs, sources)

(** Like {!project_vfs} but with one Fortran and one Java unit alongside
    the C++ ones — the pdbbuild mixed-language scenario.  All three front
    ends feed the same PDB format, so the merge sees one project. *)
let mixed_project_vfs ?(cfg = default_config) ~n_tus () :
    Pdt_util.Vfs.t * string list =
  let vfs, cpp_sources = project_vfs ~cfg ~n_tus () in
  Pdt_util.Vfs.add_file vfs "gen0.f90" (fortran_unit ~tu_index:0);
  Pdt_util.Vfs.add_file vfs "Gen0.java" (java_unit ~tu_index:0);
  (vfs, cpp_sources @ [ "gen0.f90"; "Gen0.java" ])

(* ------------------------------------------------------------------ *)
(* PDB-level corpus scaling                                            *)
(* ------------------------------------------------------------------ *)

(** Deep-copy a PDB with [suffix] appended to every file and item name.
    Cross-references are by item id and stay valid unchanged; only the
    names (which the canonical merge deduplicates on) move, so [r]
    replicas of a project merge into a corpus [r]× the size instead of
    collapsing back to one copy.  This is how the scale benches
    synthesize production-size corpora — hundreds of MB of merged PDB —
    without paying hundreds of front-end compiles. *)
let replicate_pdb ~(suffix : string) (p : Pdt_pdb.Pdb.t) : Pdt_pdb.Pdb.t =
  let module P = Pdt_pdb.Pdb in
  let s n = if n = "" then n else n ^ suffix in
  { P.version = p.P.version;
    incomplete = p.P.incomplete;
    diag_count = p.P.diag_count;
    files =
      List.map
        (fun (f : P.source_file) ->
          { f with P.so_name = s f.P.so_name; so_includes = f.P.so_includes })
        p.P.files;
    types =
      List.map
        (fun (ty : P.type_item) -> { ty with P.ty_name = s ty.P.ty_name })
        p.P.types;
    classes =
      List.map
        (fun (c : P.class_item) -> { c with P.cl_name = s c.P.cl_name })
        p.P.classes;
    routines =
      List.map
        (fun (r : P.routine_item) -> { r with P.ro_name = s r.P.ro_name })
        p.P.routines;
    templates =
      List.map
        (fun (te : P.template_item) -> { te with P.te_name = s te.P.te_name })
        p.P.templates;
    namespaces =
      List.map
        (fun (n : P.namespace_item) -> { n with P.na_name = s n.P.na_name })
        p.P.namespaces;
    pdb_macros =
      List.map
        (fun (m : P.macro_item) -> { m with P.ma_name = s m.P.ma_name })
        p.P.pdb_macros }

(** [replicas] renamed copies of each PDB in [pdbs] (replica 0 keeps the
    original names), interleaved in replica-major order.  With [pdbs] the
    per-TU output of an [n]-TU project, the result models an
    [n × replicas]-TU project whose units share nothing nameable — the
    worst (largest) case for the merge. *)
let replicate_corpus ~(replicas : int) (pdbs : Pdt_pdb.Pdb.t list) :
    Pdt_pdb.Pdb.t list =
  List.concat
    (List.init replicas (fun r ->
         if r = 0 then pdbs
         else
           List.map (replicate_pdb ~suffix:(Printf.sprintf "_r%d" r)) pdbs))

(** Write a project to a real directory (for exercising the command-line
    drivers); returns the on-disk source paths in build order. *)
let write_project ?(cfg = default_config) ~n_tus ~dir () : string list =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, contents) ->
      let oc = open_out_bin (Filename.concat dir name) in
      output_string oc contents;
      close_out oc)
    (project_files ~cfg ~n_tus ());
  List.init n_tus (fun i -> Filename.concat dir (Printf.sprintf "tu%d.cpp" i))
  @ [ Filename.concat dir "main.cpp" ]
