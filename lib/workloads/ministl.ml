(** Miniature standard-library headers, written in the C++ subset.

    These play the role of KAI's 3.4c standard library headers in PDT 1.3:
    template-heavy system headers the front end must digest.  They are
    mounted under [/pdt/include/kai/] in the virtual file system (matching
    the path visible in Figure 3 of the paper). *)

let include_dir = "/pdt/include/kai"

let vector_h =
  {|#ifndef KAI_VECTOR_H
#define KAI_VECTOR_H

template <class T>
class vector {
public:
    vector( ) : data_( 0 ), size_( 0 ), cap_( 0 ) { }
    explicit vector( int n ) : data_( new T[ n ] ), size_( n ), cap_( n ) { }
    ~vector( ) { clear( ); }
    int size( ) const { return size_; }
    int capacity( ) const { return cap_; }
    bool empty( ) const { return size_ == 0; }
    void push_back( const T & x ) {
        if( size_ == cap_ )
            reserve( 2 * cap_ + 1 );
        data_[ size_++ ] = x;
    }
    void pop_back( ) { size_--; }
    T & operator[]( int i ) { return data_[ i ]; }
    const T & operator[]( int i ) const { return data_[ i ]; }
    T & front( ) { return data_[ 0 ]; }
    T & back( ) { return data_[ size_ - 1 ]; }
    void clear( ) { size_ = 0; }
    void resize( int n ) { reserve( n ); size_ = n; }
    void reserve( int n ) {
        if( n > cap_ )
            cap_ = n;
    }
private:
    T *data_;
    int size_;
    int cap_;
};

#endif
|}

let pair_h =
  {|#ifndef KAI_PAIR_H
#define KAI_PAIR_H

template <class A, class B>
class pair {
public:
    pair( ) : first( A( ) ), second( B( ) ) { }
    pair( const A & a, const B & b ) : first( a ), second( b ) { }
    A first;
    B second;
};

template <class A, class B>
pair<A, B> make_pair( const A & a, const B & b ) {
    return pair<A, B>( a, b );
}

#endif
|}

let list_h =
  {|#ifndef KAI_LIST_H
#define KAI_LIST_H

template <class T>
class list_node {
public:
    list_node( ) : next( 0 ), prev( 0 ) { }
    T value;
    list_node<T> *next;
    list_node<T> *prev;
};

template <class T>
class list {
public:
    list( ) : head_( 0 ), tail_( 0 ), size_( 0 ) { }
    int size( ) const { return size_; }
    bool empty( ) const { return size_ == 0; }
    void push_back( const T & x ) {
        list_node<T> *n = new list_node<T>( );
        n->value = x;
        n->prev = tail_;
        tail_ = n;
        size_++;
    }
    T & back( ) { return tail_->value; }
    void pop_back( ) {
        tail_ = tail_->prev;
        size_--;
    }
private:
    list_node<T> *head_;
    list_node<T> *tail_;
    int size_;
};

#endif
|}

let algorithm_h =
  {|#ifndef KAI_ALGORITHM_H
#define KAI_ALGORITHM_H

template <class T>
const T & max( const T & a, const T & b ) {
    if( a < b )
        return b;
    return a;
}

template <class T>
const T & min( const T & a, const T & b ) {
    if( b < a )
        return b;
    return a;
}

template <class T>
void swap( T & a, T & b ) {
    T tmp = a;
    a = b;
    b = tmp;
}

#endif
|}

let iostream_h =
  {|#ifndef KAI_IOSTREAM_H
#define KAI_IOSTREAM_H

class ostream {
public:
    ostream & operator<<( int x );
    ostream & operator<<( long x );
    ostream & operator<<( double x );
    ostream & operator<<( char c );
    ostream & operator<<( bool b );
    ostream & operator<<( const char *s );
};

class istream {
public:
    istream & operator>>( int & x );
    istream & operator>>( double & x );
};

extern ostream cout;
extern ostream cerr;
extern istream cin;
extern const char *endl;

#endif
|}

let string_h =
  {|#ifndef KAI_STRING_H
#define KAI_STRING_H

class string {
public:
    string( );
    string( const char *s );
    int length( ) const;
    int size( ) const;
    bool empty( ) const;
    char operator[]( int i ) const;
    string operator+( const string & other ) const;
    bool operator==( const string & other ) const;
    bool operator<( const string & other ) const;
    const char *c_str( ) const;
};

#endif
|}

let mpi_h =
  {|#ifndef PDT_MPI_H
#define PDT_MPI_H

int mpi_rank();
int mpi_size();

#endif
|}

let files =
  [ (include_dir ^ "/vector.h", vector_h);
    (include_dir ^ "/mpi.h", mpi_h);
    (include_dir ^ "/pair.h", pair_h);
    (include_dir ^ "/list.h", list_h);
    (include_dir ^ "/algorithm.h", algorithm_h);
    (include_dir ^ "/iostream.h", iostream_h);
    (include_dir ^ "/string.h", string_h) ]

(** Mount the mini-STL into a VFS and register its include directory. *)
let mount vfs =
  List.iter (fun (p, c) -> Pdt_util.Vfs.add_file vfs p c) files;
  Pdt_util.Vfs.add_include_path vfs include_dir
