(** The paper's running example: the templated array-based Stack (Figure 1),
    arranged in the exact file structure visible in the Figure 3 PDB excerpt:

    - [TestStackAr.cpp] (the main file) includes [StackAr.h];
    - [StackAr.h] includes [vector.h], [dsexceptions.h] and — so that
      templates are instantiated in the translation unit — the
      implementation file [StackAr.cpp] (the classic "inclusion model"). *)

let dsexceptions_h =
  {|#ifndef DSEXCEPTIONS_H
#define DSEXCEPTIONS_H

class Overflow { };
class Underflow { };
class OutOfMemory { };
class BadIterator { };

#endif
|}

let stackar_h =
  {|#ifndef STACKAR_H
#define STACKAR_H

#include <vector.h>
#include "dsexceptions.h"

template <class Object>
class Stack {
public:
    explicit Stack( int capacity = 10 );

    bool isEmpty( ) const;
    bool isFull( ) const;
    const Object & top( ) const;

    void makeEmpty( );
    void pop( );
    void push( const Object & x );
    Object topAndPop( );

private:
    vector<Object> theArray;
    int topOfStack;
};

#include "StackAr.cpp"

#endif
|}

let stackar_cpp =
  {|#ifndef STACKAR_CPP
#define STACKAR_CPP

#include "StackAr.h"

template <class Object>
Stack<Object>::Stack( int capacity ) : theArray( capacity ) {
    topOfStack = -1;
}

template <class Object>
bool Stack<Object>::isEmpty( ) const {
    return topOfStack == -1;
}

template <class Object>
bool Stack<Object>::isFull( ) const {
    return topOfStack == theArray.size( ) - 1;
}

template <class Object>
void Stack<Object>::makeEmpty( ) {
    topOfStack = -1;
}

template <class Object>
const Object & Stack<Object>::top( ) const {
    if( isEmpty( ) )
        throw Underflow( );
    return theArray[ topOfStack ];
}

template <class Object>
void Stack<Object>::pop( ) {
    if( isEmpty( ) )
        throw Underflow( );
    topOfStack--;
}

template <class Object>
void Stack<Object>::push( const Object & x ) {
    if( isFull( ) )
        throw Overflow( );
    theArray[ ++topOfStack ] = x;
}

template <class Object>
Object Stack<Object>::topAndPop( ) {
    if( isEmpty( ) )
        throw Underflow( );
    return theArray[ topOfStack-- ];
}

#endif
|}

let teststackar_cpp =
  {|#include <iostream.h>
#include "StackAr.h"

int main( ) {
    Stack<int> s;

    for( int i = 0; i < 10; i++ )
        s.push( i );

    while( !s.isEmpty( ) )
        cout << s.topAndPop( ) << endl;

    return 0;
}
|}

let files =
  [ ("dsexceptions.h", dsexceptions_h);
    ("StackAr.h", stackar_h);
    ("StackAr.cpp", stackar_cpp);
    ("TestStackAr.cpp", teststackar_cpp) ]

let main_file = "TestStackAr.cpp"

(** A VFS containing the Stack corpus plus the mini-STL headers. *)
let vfs () =
  let vfs = Pdt_util.Vfs.create () in
  Ministl.mount vfs;
  List.iter (fun (p, c) -> Pdt_util.Vfs.add_file vfs p c) files;
  vfs
