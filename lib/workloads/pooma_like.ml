(** A POOMA-like template workload: a miniature array/linear-algebra
    framework and a Krylov (conjugate-gradient) solver, written in the C++
    subset.

    The paper's §4.1 applies TAU+PDT to POOMA's Krylov solver (Figure 7).
    POOMA itself is long gone; this framework exercises the same analysis
    path — template classes ([Array1D], [Matrix]) with member functions that
    must be discovered, instantiated on use, instrumented, and profiled per
    instantiation. *)

let array_h =
  {|#ifndef POOMA_ARRAY_H
#define POOMA_ARRAY_H

#include <vector.h>

template <class T>
class Array1D {
public:
    Array1D( ) : n_( 0 ) { }
    explicit Array1D( int n ) : data_( n ), n_( n ) {
        for( int i = 0; i < n; i++ )
            data_[ i ] = T( );
    }
    int size( ) const { return n_; }
    T & operator[]( int i ) { return data_[ i ]; }
    const T & operator[]( int i ) const { return data_[ i ]; }
    void fill( const T & v ) {
        for( int i = 0; i < n_; i++ )
            data_[ i ] = v;
    }
private:
    vector<T> data_;
    int n_;
};

template <class T>
class Matrix {
public:
    Matrix( int rows, int cols ) : data_( rows * cols ), rows_( rows ), cols_( cols ) {
        for( int i = 0; i < rows * cols; i++ )
            data_[ i ] = T( );
    }
    int rows( ) const { return rows_; }
    int cols( ) const { return cols_; }
    T & at( int i, int j ) { return data_[ i * cols_ + j ]; }
    const T & at( int i, int j ) const { return data_[ i * cols_ + j ]; }
private:
    vector<T> data_;
    int rows_;
    int cols_;
};

#endif
|}

let blas_h =
  {|#ifndef POOMA_BLAS_H
#define POOMA_BLAS_H

#include "pooma_array.h"

template <class T>
T dot( const Array1D<T> & a, const Array1D<T> & b ) {
    T s = T( );
    for( int i = 0; i < a.size( ); i++ )
        s = s + a[ i ] * b[ i ];
    return s;
}

template <class T>
void axpy( const T & alpha, const Array1D<T> & x, Array1D<T> & y ) {
    for( int i = 0; i < y.size( ); i++ )
        y[ i ] = y[ i ] + alpha * x[ i ];
}

template <class T>
void scale_add( const Array1D<T> & x, const T & beta, Array1D<T> & y ) {
    for( int i = 0; i < y.size( ); i++ )
        y[ i ] = x[ i ] + beta * y[ i ];
}

template <class T>
void matvec( const Matrix<T> & A, const Array1D<T> & x, Array1D<T> & y ) {
    for( int i = 0; i < A.rows( ); i++ ) {
        T s = T( );
        for( int j = 0; j < A.cols( ); j++ )
            s = s + A.at( i, j ) * x[ j ];
        y[ i ] = s;
    }
}

#endif
|}

let krylov_h =
  {|#ifndef POOMA_KRYLOV_H
#define POOMA_KRYLOV_H

#include "pooma_blas.h"

template <class T>
class KrylovSolver {
public:
    KrylovSolver( int max_iters, double tol )
        : max_iters_( max_iters ), tol_( tol ), iters_( 0 ), residual_( 0.0 ) { }

    // Conjugate gradient; A must be symmetric positive definite.
    bool solve( const Matrix<T> & A, const Array1D<T> & b, Array1D<T> & x ) {
        int n = b.size( );
        Array1D<T> r( n );
        Array1D<T> p( n );
        Array1D<T> Ap( n );
        matvec( A, x, Ap );
        for( int i = 0; i < n; i++ ) {
            r[ i ] = b[ i ] - Ap[ i ];
            p[ i ] = r[ i ];
        }
        T rr = dot( r, r );
        iters_ = 0;
        while( iters_ < max_iters_ ) {
            if( rr < tol_ * tol_ )
                break;
            matvec( A, p, Ap );
            T pAp = dot( p, Ap );
            if( pAp == T( ) )
                break;
            T alpha = rr / pAp;
            axpy( alpha, p, x );
            T malpha = T( ) - alpha;
            axpy( malpha, Ap, r );
            T rr_new = dot( r, r );
            T beta = rr_new / rr;
            scale_add( r, beta, p );
            rr = rr_new;
            iters_ = iters_ + 1;
        }
        residual_ = rr;
        return rr < tol_ * tol_;
    }

    int iterations( ) const { return iters_; }
    double residual( ) const { return residual_; }

private:
    int max_iters_;
    double tol_;
    int iters_;
    double residual_;
};

#endif
|}

(** The driver: builds a 1-D Laplacian system and solves it with CG. *)
let main_cpp ~n ~max_iters =
  Printf.sprintf
    {|#include <iostream.h>
#include "pooma_krylov.h"

int main( ) {
    int n = %d;
    Matrix<double> A( n, n );
    for( int i = 0; i < n; i++ ) {
        A.at( i, i ) = 2.0;
        if( i > 0 )
            A.at( i, i - 1 ) = -1.0;
        if( i < n - 1 )
            A.at( i, i + 1 ) = -1.0;
    }
    Array1D<double> b( n );
    b.fill( 1.0 );
    Array1D<double> x( n );

    KrylovSolver<double> solver( %d, 1e-8 );
    bool converged = solver.solve( A, b, x );

    cout << "converged=" << converged << endl;
    cout << "iterations=" << solver.iterations( ) << endl;
    cout << "x0=" << x[ 0 ] << endl;
    return 0;
}
|}
    n max_iters

let files ?(n = 16) ?(max_iters = 200) () =
  [ ("pooma_array.h", array_h);
    ("pooma_blas.h", blas_h);
    ("pooma_krylov.h", krylov_h);
    ("krylov_main.cpp", main_cpp ~n ~max_iters) ]

let main_file = "krylov_main.cpp"

let vfs ?n ?max_iters () =
  let vfs = Pdt_util.Vfs.create () in
  Ministl.mount vfs;
  List.iter (fun (p, c) -> Pdt_util.Vfs.add_file vfs p c) (files ?n ?max_iters ());
  vfs
