(** Fortran 90 corpus for the second language front end (paper §6).

    A small numerical module in the style of HPC Fortran: a derived type,
    a generic interface, array arguments, and a driver program. *)

let linear_algebra_f90 =
  {|! A small linear-algebra module (Fortran 90)
module linear_algebra
  implicit none

  type vec3
    real :: x, y, z
  end type vec3

  type matrix3
    real, dimension(3,3) :: a
  end type matrix3

  interface norm
    module procedure norm_vec3, norm_scalar
  end interface norm

contains

  function dot3(a, b) result(d)
    type(vec3), intent(in) :: a, b
    real :: d
    d = a%x * b%x + a%y * b%y + a%z * b%z
  end function dot3

  function norm_vec3(v) result(n)
    type(vec3), intent(in) :: v
    real :: n
    n = sqrt(dot3(v, v))
  end function norm_vec3

  function norm_scalar(x) result(n)
    real, intent(in) :: x
    real :: n
    n = abs(x)
  end function norm_scalar

  subroutine scale3(v, s)
    type(vec3) :: v
    real, intent(in) :: s
    v%x = v%x * s
    v%y = v%y * s
    v%z = v%z * s
  end subroutine scale3

  subroutine matvec3(m, v, out)
    type(matrix3), intent(in) :: m
    type(vec3), intent(in) :: v
    type(vec3) :: out
    out%x = v%x
    out%y = v%y
    out%z = v%z
  end subroutine matvec3

  recursive function fact(n) result(f)
    integer, intent(in) :: n
    integer :: f
    if (n <= 1) then
      f = 1
    else
      f = n * fact(n - 1)
    endif
  end function fact

end module linear_algebra

program demo
  use linear_algebra
  type(vec3) :: a
  real :: n
  integer :: i, f
  a%x = 3.0
  a%y = 4.0
  a%z = 0.0
  do i = 1, 3
    call scale3(a, 2.0)
  end do
  n = norm(a)
  f = fact(5)
  print *, n, f
end program demo
|}

let main_file = "linear_algebra.f90"
