(** An SPMD stencil workload for the parallel-profiling simulation.

    A 1-D Jacobi heat-diffusion sweep with block domain decomposition: every
    rank smooths its own block of the domain.  The block sizes are made
    deliberately uneven (later ranks get more rows) so the cross-rank
    profile shows load imbalance — the kind of picture TAU exists to draw. *)

let stencil_cpp =
  {|#include <vector.h>
#include <iostream.h>
#include <mpi.h>

template <class T>
class Field {
public:
    explicit Field( int n ) : data_( n ), n_( n ) {
        for( int i = 0; i < n; i++ )
            data_[ i ] = T( );
    }
    int size( ) const { return n_; }
    T & operator[]( int i ) { return data_[ i ]; }
    const T & operator[]( int i ) const { return data_[ i ]; }
private:
    vector<T> data_;
    int n_;
};

template <class T>
void jacobi_sweep( Field<T> & u, Field<T> & tmp ) {
    int n = u.size( );
    for( int i = 1; i < n - 1; i++ )
        tmp[ i ] = 0.5 * ( u[ i - 1 ] + u[ i + 1 ] );
    for( int i = 1; i < n - 1; i++ )
        u[ i ] = tmp[ i ];
}

template <class T>
T block_sum( const Field<T> & u ) {
    T s = T( );
    for( int i = 0; i < u.size( ); i++ )
        s = s + u[ i ];
    return s;
}

int main( ) {
    int rank = mpi_rank( );
    int size = mpi_size( );

    // uneven decomposition: rank r gets 16 + 8*r points
    int local_n = 16 + 8 * rank;
    int sweeps = 10 + 5 * rank;

    Field<double> u( local_n );
    Field<double> tmp( local_n );
    u[ 0 ] = 1.0;
    u[ local_n - 1 ] = 1.0;

    for( int s = 0; s < sweeps; s++ )
        jacobi_sweep( u, tmp );

    double total = block_sum( u );
    cout << "rank " << rank << "/" << size
         << " n=" << local_n << " sum=" << total << endl;
    return 0;
}
|}

let main_file = "stencil.cpp"

let vfs () =
  let vfs = Pdt_util.Vfs.create () in
  Ministl.mount vfs;
  Pdt_util.Vfs.add_file vfs main_file stencil_cpp;
  vfs
