(** Abstract syntax for the C++ subset accepted by PDT's front end.

    The AST deliberately stays close to the surface syntax: semantic analysis
    ([pdt_sema]) elaborates it into the IL, resolving names, types, overloads
    and template instantiations.  Every node carries the source location the
    PDB will eventually report. *)

open Pdt_util

(* ------------------------------------------------------------------ *)
(* Names                                                               *)
(* ------------------------------------------------------------------ *)

(** One component of a possibly-qualified name, e.g. [Stack<int>] in
    [N::Stack<int>::push].  [targs = Some []] means an explicit empty
    argument list [name<>]. *)
type name_part = { id : string; targs : template_arg list option }

(** A (possibly) qualified name.  [global] is true for [::name]. *)
and qual_name = { global : bool; parts : name_part list }

and template_arg = TA_type of type_expr | TA_expr of expr

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

and builtin = {
  base : [ `Void | `Bool | `Char | `Wchar | `Int | `Float | `Double ];
  signedness : [ `Signed | `Unsigned ] option;
  length : [ `Short | `Long | `LongLong ] option;
}

and type_expr =
  | TName of qual_name        (** class / enum / typedef / template-id *)
  | TBuiltin of builtin
  | TPtr of type_expr
  | TRef of type_expr
  | TConst of type_expr
  | TVolatile of type_expr
  | TArray of type_expr * expr option
  | TFunc of type_expr * param list * bool  (** return, params, variadic *)

and param = {
  pname : string option;
  ptype : type_expr;
  pdefault : expr option;
  ploc : Srcloc.t;
}

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and expr = { e : expr_kind; eloc : Srcloc.t }

and expr_kind =
  | IntE of int64
  | FloatE of float
  | CharE of int
  | StringE of string
  | BoolE of bool
  | IdE of qual_name
  | ThisE
  | Unary of string * expr              (** prefix: ! ~ - + * & ++ -- *)
  | Postfix of string * expr            (** e++ e-- *)
  | Binary of string * expr * expr
  | Assign of string * expr * expr      (** = += -= *= /= %= &= |= ^= <<= >>= *)
  | Cond of expr * expr * expr
  | Call of expr * expr list
  | Member of expr * bool * qual_name   (** object, arrow?, member name *)
  | Index of expr * expr
  | CCast of type_expr * expr           (** (T)e *)
  | NamedCast of string * type_expr * expr  (** static_cast<T>(e) etc. *)
  | Construct of type_expr * expr list  (** T(args): functional cast / ctor *)
  | New of type_expr * expr list option * expr option (** type, ctor args, array size *)
  | Delete of bool * expr               (** array?, operand *)
  | SizeofE of expr
  | SizeofT of type_expr
  | ThrowE of expr option
  | Comma of expr * expr

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and stmt = { s : stmt_kind; sloc : Srcloc.t }

and stmt_kind =
  | SExpr of expr option
  | SDecl of var_decl list
  | SCompound of stmt list
  | SIf of expr * stmt * stmt option
  | SWhile of expr * stmt
  | SDoWhile of stmt * expr
  | SFor of stmt option * expr option * expr option * stmt
  | SReturn of expr option
  | SBreak
  | SContinue
  | SSwitch of expr * switch_case list
  | STry of stmt * handler list
  | SSpawn of expr
      (** [spawn f(args);] — run the call concurrently (threads extension) *)
  | SJoin of qual_name option
      (** [join;] waits for every outstanding spawn, [join f;] for the
          threads running [f] *)

and switch_case = { case_guard : expr option; case_body : stmt list }
(** [case_guard = None] is the [default:] label. *)

and handler = { h_param : param option; h_body : stmt }
(** [h_param = None] is [catch (...)]. *)

and var_decl = {
  v_name : string;
  v_type : type_expr;
  v_init : var_init;
  v_loc : Srcloc.t;
  v_storage : storage;
}

and var_init =
  | NoInit
  | EqInit of expr         (** T x = e; *)
  | CtorInit of expr list  (** T x(e1, e2); *)

and storage = { st_static : bool; st_extern : bool; st_mutable : bool; st_register : bool }

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

and access = Public | Protected | Private

and class_key = Class_key | Struct_key | Union_key

and base_spec = {
  b_access : access option;
  b_virtual : bool;
  b_name : qual_name;
  b_loc : Srcloc.t;
}

and class_def = {
  c_key : class_key;
  c_name : name_part option;    (** None for anonymous *)
  c_bases : base_spec list;
  c_members : decl list;
  c_header : Srcloc.range;      (** the "class Name : bases" part *)
  c_body : Srcloc.range option; (** braces extent; None = forward decl *)
}

and fn_quals = {
  q_const : bool;
  q_virtual : bool;
  q_static : bool;
  q_inline : bool;
  q_explicit : bool;
  q_extern : bool;
  q_pure : bool;                 (** = 0 *)
}

and func_kind = Fk_normal | Fk_ctor | Fk_dtor | Fk_conversion | Fk_operator of string

and func_def = {
  f_name : qual_name;            (** possibly qualified, for out-of-line defs *)
  f_kind : func_kind;
  f_ret : type_expr option;      (** None for ctor / dtor / conversion *)
  f_params : param list;
  f_variadic : bool;
  f_quals : fn_quals;
  f_inits : (string * expr list) list;  (** ctor mem-initializers *)
  f_throw : type_expr list option;      (** exception specification *)
  f_body : stmt option;
  f_header : Srcloc.range;
  f_body_range : Srcloc.range option;
}

and tparam =
  | TP_type of string * type_expr option         (** class T = D *)
  | TP_nontype of type_expr * string * expr option (** int N = e *)
  | TP_template of string                         (** template<...> class T *)

and decl = { d : decl_kind; dloc : Srcloc.t }

and decl_kind =
  | DNamespace of string option * decl list * Srcloc.range
  | DClass of class_def
  | DEnum of string option * (string * expr option * Srcloc.t) list
  | DTypedef of type_expr * string
  | DFunction of func_def
  | DVar of var_decl
  | DTemplate of tparam list * decl * string  (** params, pattern, source text *)
  | DUsing of qual_name * bool                (** name, is-namespace? *)
  | DAccess of access
  | DFriend of decl
  | DExplicitInst of decl                     (** template class Stack<int>; *)
  | DEmpty

type translation_unit = { tu_file : string; tu_decls : decl list }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let no_storage =
  { st_static = false; st_extern = false; st_mutable = false; st_register = false }

let no_quals =
  { q_const = false; q_virtual = false; q_static = false; q_inline = false;
    q_explicit = false; q_extern = false; q_pure = false }

let simple_name id = { global = false; parts = [ { id; targs = None } ] }

let last_part (q : qual_name) : name_part =
  match List.rev q.parts with
  | [] -> invalid_arg "Ast.last_part: empty qualified name"
  | p :: _ -> p

let builtin ?signedness ?length base = TBuiltin { base; signedness; length }

let int_type = builtin `Int
let void_type = builtin `Void
let bool_type = builtin `Bool
let double_type = builtin `Double

(** Strip top-level cv-qualifiers. *)
let rec unqual = function
  | TConst t | TVolatile t -> unqual t
  | t -> t

let rec pp_builtin ppf (b : builtin) =
  let prefix =
    (match b.signedness with
     | Some `Unsigned -> "unsigned "
     | Some `Signed -> "signed "
     | None -> "")
    ^ (match b.length with
       | Some `Short -> "short "
       | Some `Long -> "long "
       | Some `LongLong -> "long long "
       | None -> "")
  in
  (* canonical spelling drops the redundant "int": "long", "unsigned" *)
  let s =
    match b.base with
    | `Void -> "void" | `Bool -> "bool" | `Char -> prefix ^ "char"
    | `Wchar -> "wchar_t"
    | `Int -> if prefix = "" then "int" else String.trim prefix
    | `Float -> "float" | `Double -> prefix ^ "double"
  in
  Fmt.string ppf (String.trim s)

and pp_qual_name ppf (q : qual_name) =
  if q.global then Fmt.string ppf "::";
  Fmt.list ~sep:(Fmt.any "::") pp_name_part ppf q.parts

and pp_name_part ppf (p : name_part) =
  Fmt.string ppf p.id;
  match p.targs with
  | None -> ()
  | Some args ->
      Fmt.pf ppf "<%a>" (Fmt.list ~sep:(Fmt.any ", ") pp_template_arg) args

and pp_template_arg ppf = function
  | TA_type t -> pp_type ppf t
  | TA_expr e -> pp_expr ppf e

and pp_type ppf = function
  | TName q -> pp_qual_name ppf q
  | TBuiltin b -> pp_builtin ppf b
  | TPtr t -> Fmt.pf ppf "%a *" pp_type t
  | TRef t -> Fmt.pf ppf "%a &" pp_type t
  | TConst t -> Fmt.pf ppf "const %a" pp_type t
  | TVolatile t -> Fmt.pf ppf "volatile %a" pp_type t
  | TArray (t, None) -> Fmt.pf ppf "%a []" pp_type t
  | TArray (t, Some e) -> Fmt.pf ppf "%a [%a]" pp_type t pp_expr e
  | TFunc (r, ps, variadic) ->
      Fmt.pf ppf "%a (%a%s)" pp_type r
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf p -> pp_type ppf p.ptype))
        ps
        (if variadic then ", ..." else "")

and pp_expr ppf (e : expr) =
  match e.e with
  | IntE v -> Fmt.pf ppf "%Ld" v
  | FloatE v -> Fmt.pf ppf "%g" v
  | CharE c ->
      if c >= 32 && c < 127 then Fmt.pf ppf "'%c'" (Char.chr c)
      else Fmt.pf ppf "'\\x%02x'" c
  | StringE s -> Fmt.pf ppf "%S" s
  | BoolE b -> Fmt.bool ppf b
  | IdE q -> pp_qual_name ppf q
  | ThisE -> Fmt.string ppf "this"
  | Unary (op, e) -> Fmt.pf ppf "%s(%a)" op pp_expr e
  | Postfix (op, e) -> Fmt.pf ppf "(%a)%s" pp_expr e op
  | Binary (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a op pp_expr b
  | Assign (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a op pp_expr b
  | Cond (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Call (f, args) ->
      Fmt.pf ppf "%a(%a)" pp_expr f (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | Member (o, arrow, m) ->
      Fmt.pf ppf "%a%s%a" pp_expr o (if arrow then "->" else ".") pp_qual_name m
  | Index (a, i) -> Fmt.pf ppf "%a[%a]" pp_expr a pp_expr i
  | CCast (t, e) -> Fmt.pf ppf "(%a)%a" pp_type t pp_expr e
  | NamedCast (k, t, e) -> Fmt.pf ppf "%s<%a>(%a)" k pp_type t pp_expr e
  | Construct (t, args) ->
      Fmt.pf ppf "%a(%a)" pp_type t (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | New (t, args, None) ->
      Fmt.pf ppf "new %a(%a)" pp_type t
        (Fmt.list ~sep:(Fmt.any ", ") pp_expr)
        (Option.value args ~default:[])
  | New (t, _, Some n) -> Fmt.pf ppf "new %a[%a]" pp_type t pp_expr n
  | Delete (arr, e) -> Fmt.pf ppf "delete%s %a" (if arr then "[]" else "") pp_expr e
  | SizeofE e -> Fmt.pf ppf "sizeof(%a)" pp_expr e
  | SizeofT t -> Fmt.pf ppf "sizeof(%a)" pp_type t
  | ThrowE None -> Fmt.string ppf "throw"
  | ThrowE (Some e) -> Fmt.pf ppf "throw %a" pp_expr e
  | Comma (a, b) -> Fmt.pf ppf "(%a, %a)" pp_expr a pp_expr b

let qual_name_to_string q = Fmt.str "%a" pp_qual_name q
let type_to_string t = Fmt.str "%a" pp_type t
let expr_to_string e = Fmt.str "%a" pp_expr e
