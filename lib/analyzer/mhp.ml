(** May-happen-in-parallel over the PDB's spawn sites.

    The PDB stores the concurrency {e primitives} — per-routine spawn sites
    with their optional join locations ([rspawn]) — because primitives merge
    deterministically across translation units.  The MHP {e relation} is
    derived on demand from a merged database, here.

    The model is the paper's tool-framework one, kept deliberately simple:

    - [spawn f(...)] launches [f] on a new thread; everything [f] may
      transitively call (its call closure) runs concurrently with the
      spawning routine's continuation;
    - the continuation extends from the spawn site to the matching [join]
      (or to the end of the routine for a [live] spawn), so the host
      routine itself and every callee it invokes inside that window may
      happen in parallel with the spawned closure;
    - two spawns whose windows overlap make their two spawned closures
      concurrent with each other (this is what puts a routine in parallel
      with {e itself} when the same routine is spawned twice).

    Nesting is single-level: a spawn inside a spawned routine contributes
    its own pairs the same way, but no transitive "parallel with my
    spawner's spawner" closure is taken.  The relation is a sound
    over-approximation for the subset's structured spawn/join idiom and is
    exactly what drives [tau_instr --mhp-only] instrumentation selection. *)

open Pdt_util
module P = Pdt_pdb.Pdb

module Iset = Set.Make (Int)

module Pset = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

let norm a b = if a <= b then (a, b) else (b, a)

(* location ordering inside one source file; cross-file locations are
   incomparable and treated conservatively (inside the window) *)
let loc_le (a : P.loc) (b : P.loc) =
  a.P.lfile = b.P.lfile
  && (a.P.lline < b.P.lline || (a.P.lline = b.P.lline && a.P.lcol <= b.P.lcol))

let loc_lt (a : P.loc) (b : P.loc) = loc_le a b && a <> b

(* is [l] within the continuation window (sp_loc, join]? *)
let in_window (s : P.spawn) (l : P.loc) =
  if l = P.null_loc then true  (* unknown location: keep, stay sound *)
  else
    let after = if l.P.lfile = s.P.sp_loc.P.lfile then loc_lt s.P.sp_loc l else true in
    let before =
      match s.P.sp_join with
      | None -> true
      | Some j -> if l.P.lfile = j.P.lfile then loc_le l j else true
    in
    after && before

type t = {
  pairs : Pset.t;
  routines : (int, P.routine_item) Hashtbl.t;
}

(* transitive call closure of a routine, including itself *)
let closure (routines : (int, P.routine_item) Hashtbl.t) (root : int) : Iset.t =
  let seen = ref Iset.empty in
  let rec go id =
    if not (Iset.mem id !seen) then begin
      seen := Iset.add id !seen;
      match Hashtbl.find_opt routines id with
      | Some r -> List.iter (fun (c : P.call) -> go c.P.c_callee) r.P.ro_calls
      | None -> ()
    end
  in
  go root;
  !seen

(** Build the MHP relation for a (merged) database. *)
let compute (pdb : P.t) : t =
  Fault.check "analyzer.mhp";
  let routines = Hashtbl.create 64 in
  List.iter (fun (r : P.routine_item) -> Hashtbl.replace routines r.P.ro_id r) pdb.P.routines;
  let pairs = ref Pset.empty in
  let add a b = pairs := Pset.add (norm a b) !pairs in
  let cross a_set b_set =
    Iset.iter (fun a -> Iset.iter (fun b -> add a b) b_set) a_set
  in
  List.iter
    (fun (host : P.routine_item) ->
      match host.P.ro_spawns with
      | [] -> ()
      | spawns ->
          let spawned = List.map (fun (s : P.spawn) -> (s, closure routines s.P.sp_callee)) spawns in
          List.iter
            (fun ((s : P.spawn), cls) ->
              (* the spawned closure runs in parallel with the host's
                 continuation: the host routine itself... *)
              Iset.iter (fun x -> add x host.P.ro_id) cls;
              (* ...and every callee invoked inside the window — except the
                 spawned call edge itself, which the front end records on
                 the spawn statement's line *)
              List.iter
                (fun (c : P.call) ->
                  let is_spawn_edge =
                    c.P.c_callee = s.P.sp_callee
                    && c.P.c_loc.P.lfile = s.P.sp_loc.P.lfile
                    && c.P.c_loc.P.lline = s.P.sp_loc.P.lline
                  in
                  if (not is_spawn_edge) && in_window s c.P.c_loc then
                    cross cls (closure routines c.P.c_callee))
                host.P.ro_calls)
            spawned;
          (* overlapping spawns: s2 launched inside s1's window *)
          let rec overlaps = function
            | [] -> ()
            | ((s1 : P.spawn), cls1) :: rest ->
                List.iter
                  (fun ((s2 : P.spawn), cls2) ->
                    if in_window s1 s2.P.sp_loc || in_window s2 s1.P.sp_loc then
                      cross cls1 cls2)
                  rest;
                overlaps rest
          in
          overlaps spawned)
    pdb.P.routines;
  { pairs = !pairs; routines }

(** May routines [a] and [b] (PDB routine ids) happen in parallel? *)
let may_parallel (t : t) (a : int) (b : int) : bool = Pset.mem (norm a b) t.pairs

(** All pairs, sorted, each normalized [(lo, hi)]. *)
let pairs (t : t) : (int * int) list = Pset.elements t.pairs

(** Routine ids that participate in any MHP pair, sorted ascending — the
    instrumentation set for [tau_instr --mhp-only]. *)
let concurrent_routines (t : t) : int list =
  Iset.elements
    (Pset.fold (fun (a, b) acc -> Iset.add a (Iset.add b acc)) t.pairs Iset.empty)
