(** The IL Analyzer: walks the IL and emits a program database (paper §3.1).

    The analyzer runs one traversal per construct kind — source files,
    templates, routines, classes, types, namespaces, macros — exactly as the
    paper describes ("Separate traversals ... allow selection of the
    constructs to be reported"), and each traversal can be disabled through
    {!options} (the [pdbconv -c/-r/...] style selection).

    {b Template back-mapping.}  The EDG IL marks entities as instantiated but
    does not record which template produced them.  The paper's IL Analyzer
    compensates by building the template list in advance and scanning it to
    find the template whose definition location matches the instantiation's
    locations — and, as §3.1 admits, this fails for specializations, whose
    locations lie outside the primary template's definition.  [`Location]
    mode reproduces that algorithm (including the limitation); [`Il_ids]
    mode implements the remedy the paper proposes (template ids carried in
    the IL), mapping specializations correctly. *)

open Pdt_util
open Pdt_il
module P = Pdt_pdb.Pdb

type mapping = Location_based | Il_ids

type options = {
  mapping : mapping;
  emit_files : bool;
  emit_routines : bool;
  emit_classes : bool;
  emit_types : bool;
  emit_templates : bool;
  emit_namespaces : bool;
  emit_macros : bool;
}

let default_options =
  { mapping = Location_based; emit_files = true; emit_routines = true;
    emit_classes = true; emit_types = true; emit_templates = true;
    emit_namespaces = true; emit_macros = true }

type state = {
  prog : Il.program;
  opts : options;
  pdb : P.t;
  file_map : (Il.file_id, int) Hashtbl.t;
  class_map : (Il.class_id, int) Hashtbl.t;
  routine_map : (Il.routine_id, int) Hashtbl.t;
  type_map : (Il.type_id, int) Hashtbl.t;
  template_map : (Il.template_id, int) Hashtbl.t;
  namespace_map : (Il.namespace_id, int) Hashtbl.t;
  macro_map : (Il.macro_id, int) Hashtbl.t;
  file_by_name : (string, int) Hashtbl.t;
  (* the "list of templates created in advance" for location-based mapping *)
  mutable template_index : (Il.template_entity * int) list;
}

let mk_loc st (l : Srcloc.t) : P.loc =
  if Srcloc.is_dummy l then P.null_loc
  else
    match Hashtbl.find_opt st.file_by_name l.Srcloc.file with
    | Some fid -> { P.lfile = fid; lline = l.Srcloc.line; lcol = l.Srcloc.col }
    | None -> P.null_loc

let mk_extent st (e : Srcloc.extent) : P.extent =
  let r = function
    | Some (range : Srcloc.range) -> (mk_loc st range.Srcloc.start, mk_loc st range.Srcloc.stop)
    | None -> (P.null_loc, P.null_loc)
  in
  let hstart, hstop = r e.Srcloc.header in
  let bstart, bstop = r e.Srcloc.body in
  { P.hstart; hstop; bstart; bstop }

let access_str (a : Il.access) = Il.access_to_string a

(* ------------------------------------------------------------------ *)
(* Id pre-assignment                                                   *)
(* ------------------------------------------------------------------ *)

(* Assign PDB ids in creation order.  Classes that stand for IL class types
   get their ids first so type references can point at them. *)
let assign_ids st =
  let next = ref 1 in
  List.iter
    (fun (f : Il.file_entity) ->
      Hashtbl.replace st.file_map f.fi_id !next;
      Hashtbl.replace st.file_by_name f.fi_name !next;
      incr next)
    (Il.files st.prog);
  let next = ref 1 in
  List.iter
    (fun (n : Il.namespace_entity) ->
      Hashtbl.replace st.namespace_map n.na_id !next;
      incr next)
    (Il.namespaces st.prog);
  let next = ref 1 in
  List.iter
    (fun (te : Il.template_entity) ->
      Hashtbl.replace st.template_map te.te_id !next;
      incr next)
    (Il.templates st.prog);
  let next = ref 1 in
  List.iter
    (fun (r : Il.routine_entity) ->
      Hashtbl.replace st.routine_map r.ro_id !next;
      incr next)
    (Il.routines st.prog);
  let next = ref 1 in
  List.iter
    (fun (c : Il.class_entity) ->
      Hashtbl.replace st.class_map c.cl_id !next;
      incr next)
    (Il.classes st.prog);
  let next = ref 1 in
  List.iter
    (fun (ty : Il.type_entity) ->
      match ty.ty_kind with
      | Tclass _ -> ()  (* class types are referenced as cl# items *)
      | _ ->
          Hashtbl.replace st.type_map ty.ty_id !next;
          incr next)
    (Il.types st.prog);
  let next = ref 1 in
  List.iter
    (fun (m : Il.macro_entity) ->
      Hashtbl.replace st.macro_map m.ma_id !next;
      incr next)
    (Il.macros st.prog)

let typeref st (ty : Il.type_id) : P.typeref =
  match (Il.type_ st.prog ty).ty_kind with
  | Tclass c -> P.Clref (Hashtbl.find st.class_map c)
  | _ -> P.Tyref (Hashtbl.find st.type_map ty)

let parentref st : Il.parent -> P.parentref = function
  | Pclass c -> P.Pcl (Hashtbl.find st.class_map c)
  | Pnamespace n -> P.Pna (Hashtbl.find st.namespace_map n)
  | Pnone -> P.Pnone

(* ------------------------------------------------------------------ *)
(* Location-based template mapping                                     *)
(* ------------------------------------------------------------------ *)

(* Does [loc] fall within template [te]'s definition (header or body)? *)
let loc_within (te : Il.template_entity) (l : Srcloc.t) : bool =
  let within (r : Srcloc.range) =
    String.equal r.Srcloc.start.Srcloc.file l.Srcloc.file
    && Srcloc.compare r.Srcloc.start l <= 0
    && Srcloc.compare l r.Srcloc.stop <= 0
  in
  (match te.te_extent.Srcloc.header with Some r -> within r | None -> false)
  || (match te.te_extent.Srcloc.body with Some r -> within r | None -> false)

(* Scan the template list for the template containing this location. *)
let template_at st ~kind_filter (l : Srcloc.t) : int option =
  let rec scan = function
    | [] -> None
    | ((te : Il.template_entity), pdb_id) :: rest ->
        if kind_filter te.te_kind && loc_within te l then Some pdb_id else scan rest
  in
  scan st.template_index

let class_template_ref st (c : Il.class_entity) : int option * int option =
  (* returns (ctempl, cstempl) *)
  match st.opts.mapping with
  | Il_ids ->
      let f te = Option.bind (Hashtbl.find_opt st.template_map te) Option.some in
      ( Option.bind c.cl_template (fun te -> f te),
        Option.bind c.cl_spec_of (fun te -> f te) )
  | Location_based ->
      (* an entity is "instantiated" if its name carries template arguments;
         we then scan the template list by location *)
      if String.contains c.cl_name '<' then
        ( template_at st ~kind_filter:(fun k -> k = Tk_class || k = Tk_memclass)
            c.cl_loc,
          None )
      else (None, None)

let routine_template_ref st (r : Il.routine_entity) : int option =
  match st.opts.mapping with
  | Il_ids -> Option.bind r.ro_template (Hashtbl.find_opt st.template_map)
  | Location_based ->
      (* a routine is a template instantiation if its defining location lies
         within some function/memfunc template's definition *)
      let probe =
        match r.ro_extent.Srcloc.body with
        | Some b -> b.Srcloc.start
        | None -> r.ro_loc
      in
      template_at st
        ~kind_filter:(fun k -> k = Tk_func || k = Tk_memfunc || k = Tk_statmem
                               || k = Tk_class)
        probe

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let traverse_files st =
  st.pdb.P.files <-
    List.map
      (fun (f : Il.file_entity) ->
        { P.so_id = Hashtbl.find st.file_map f.fi_id;
          so_name = f.fi_name;
          so_includes =
            List.filter_map (Hashtbl.find_opt st.file_map) f.fi_includes })
      (Il.files st.prog)

let traverse_namespaces st =
  st.pdb.P.namespaces <-
    List.map
      (fun (n : Il.namespace_entity) ->
        { P.na_id = Hashtbl.find st.namespace_map n.na_id;
          na_name = n.na_name;
          na_loc = mk_loc st n.na_loc;
          na_parent = parentref st n.na_parent;
          na_members =
            List.rev_map
              (fun (r : Il.item_ref) ->
                match r with
                | Rclass c -> P.Rcl (Hashtbl.find st.class_map c)
                | Rroutine r -> P.Rro (Hashtbl.find st.routine_map r)
                | Rnamespace n -> P.Rna (Hashtbl.find st.namespace_map n)
                | Rtype ty -> (
                    match typeref st ty with
                    | P.Tyref i -> P.Rty i
                    | P.Clref i -> P.Rcl i)
                | Rtemplate te -> P.Rte (Hashtbl.find st.template_map te))
              n.na_members;
          na_alias = n.na_alias })
      (Il.namespaces st.prog)

let traverse_templates st =
  let items =
    List.map
      (fun (te : Il.template_entity) ->
        let pdb_id = Hashtbl.find st.template_map te.te_id in
        { P.te_id = pdb_id;
          te_name = te.te_name;
          te_loc = mk_loc st te.te_loc;
          te_parent = parentref st te.te_parent;
          te_acs = access_str te.te_access;
          te_kind = Il.template_kind_to_string te.te_kind;
          te_text = te.te_text;
          te_pos = mk_extent st te.te_extent })
      (Il.templates st.prog)
  in
  st.pdb.P.templates <- items;
  (* the advance list used for location-based instantiation mapping *)
  st.template_index <-
    List.map
      (fun (te : Il.template_entity) -> (te, Hashtbl.find st.template_map te.te_id))
      (Il.templates st.prog)

let traverse_routines st =
  st.pdb.P.routines <-
    List.map
      (fun (r : Il.routine_entity) ->
        { P.ro_id = Hashtbl.find st.routine_map r.ro_id;
          ro_name = r.ro_name;
          ro_loc = mk_loc st r.ro_loc;
          ro_parent = parentref st r.ro_parent;
          ro_acs = access_str r.ro_access;
          ro_sig = typeref st r.ro_sig;
          ro_link = r.ro_link;
          ro_store = r.ro_store;
          ro_virt = Il.virt_to_string r.ro_virt;
          ro_kind =
            (match r.ro_kind with
             | Rk_normal -> "NA"
             | Rk_ctor -> "ctor"
             | Rk_dtor -> "dtor"
             | Rk_conversion -> "conv"
             | Rk_operator -> "op");
          ro_static = r.ro_static;
          ro_inline = r.ro_inline;
          ro_templ = routine_template_ref st r;
          ro_calls =
            List.map
              (fun (cs : Il.call_site) ->
                { P.c_callee = Hashtbl.find st.routine_map cs.cs_callee;
                  c_virt = cs.cs_virtual;
                  c_loc = mk_loc st cs.cs_loc })
              (Il.calls r);
          ro_spawns =
            List.filter_map
              (fun (ss : Il.spawn_site) ->
                Option.map
                  (fun callee ->
                    { P.sp_callee = callee;
                      sp_loc = mk_loc st ss.ss_loc;
                      sp_join = Option.map (mk_loc st) ss.ss_join })
                  (Hashtbl.find_opt st.routine_map ss.ss_callee))
              (Il.spawns r);
          ro_du = Duchain.compute ~loc_of:(mk_loc st) r;
          ro_pos = mk_extent st r.ro_extent;
          ro_defined = r.ro_defined })
      (Il.routines st.prog)

let traverse_classes st =
  st.pdb.P.classes <-
    List.map
      (fun (c : Il.class_entity) ->
        let ctempl, cstempl = class_template_ref st c in
        { P.cl_id = Hashtbl.find st.class_map c.cl_id;
          cl_name = c.cl_name;
          cl_loc = mk_loc st c.cl_loc;
          cl_kind = Il.class_kind_to_string c.cl_kind;
          cl_parent = parentref st c.cl_parent;
          cl_acs = access_str c.cl_access;
          cl_templ = ctempl;
          cl_stempl = cstempl;
          cl_bases =
            List.map
              (fun (b : Il.base_spec) ->
                (access_str b.ba_access, b.ba_virtual, Hashtbl.find st.class_map b.ba_class))
              c.cl_bases;
          cl_friends =
            List.rev_map
              (function
                | Il.Friend_class fc -> `Cl (Hashtbl.find st.class_map fc)
                | Il.Friend_routine fr -> `Ro (Hashtbl.find st.routine_map fr))
              c.cl_friends;
          cl_funcs =
            List.map
              (fun rid ->
                let r = Il.routine st.prog rid in
                (Hashtbl.find st.routine_map rid, mk_loc st r.ro_loc))
              c.cl_funcs;
          cl_members =
            List.map
              (fun (m : Il.data_member) ->
                { P.m_name = m.dm_name;
                  m_loc = mk_loc st m.dm_loc;
                  m_acs = access_str m.dm_access;
                  m_kind = "var";
                  m_type = typeref st m.dm_type;
                  m_static = m.dm_static;
                  m_mutable = m.dm_mutable })
              c.cl_members;
          cl_pos = mk_extent st c.cl_extent })
      (Il.classes st.prog)

let traverse_types st =
  st.pdb.P.types <-
    List.filter_map
      (fun (ty : Il.type_entity) ->
        match ty.ty_kind with
        | Tclass _ -> None
        | k ->
            let info =
              match k with
              | Tbuiltin { yikind; _ } -> P.Ybuiltin { yikind }
              | Tptr inner -> P.Yptr (typeref st inner)
              | Tref inner -> P.Yref (typeref st inner)
              | Tqual { base; q_const; q_volatile } ->
                  P.Ytref { target = typeref st base; yconst = q_const; yvolatile = q_volatile }
              | Tarray (inner, n) -> P.Yarray { elem = typeref st inner; size = n }
              | Tfunc { rett; params; ellipsis; cqual; exceptions } ->
                  P.Yfunc
                    { rett = typeref st rett;
                      args = List.map (fun (p, d) -> (typeref st p, d)) params;
                      ellipsis; cqual;
                      exceptions = Option.map (List.map (typeref st)) exceptions }
              | Tenum { constants; _ } ->
                  P.Yenum { constants = List.map (fun (n, v, _) -> (n, v)) constants }
              | Ttparam _ -> P.Ytparam
              | Terror -> P.Yerror
              | Tclass _ -> assert false
            in
            Some
              { P.ty_id = Hashtbl.find st.type_map ty.ty_id;
                ty_name = Il.type_name st.prog ty.ty_id;
                ty_loc = mk_loc st ty.ty_loc;
                ty_parent = parentref st ty.ty_parent;
                ty_acs = access_str ty.ty_access;
                ty_info = info;
                ty_names = ty.ty_typedef_names })
      (Il.types st.prog)

let traverse_macros st =
  st.pdb.P.pdb_macros <-
    List.map
      (fun (m : Il.macro_entity) ->
        { P.ma_id = Hashtbl.find st.macro_map m.ma_id;
          ma_name = m.ma_name;
          ma_kind = m.ma_kind;
          ma_text = m.ma_text;
          ma_loc = mk_loc st m.ma_loc })
      (Il.macros st.prog)

(** Run the IL Analyzer over an IL program, producing a PDB. *)
let run ?(opts = default_options) (prog : Il.program) : P.t =
  let st =
    { prog; opts; pdb = P.create ();
      file_map = Hashtbl.create 16; class_map = Hashtbl.create 64;
      routine_map = Hashtbl.create 256; type_map = Hashtbl.create 256;
      template_map = Hashtbl.create 64; namespace_map = Hashtbl.create 16;
      macro_map = Hashtbl.create 64; file_by_name = Hashtbl.create 16;
      template_index = [] }
  in
  assign_ids st;
  if opts.emit_files then traverse_files st;
  if opts.emit_namespaces then traverse_namespaces st;
  if opts.emit_templates then traverse_templates st;
  if opts.emit_routines then traverse_routines st;
  if opts.emit_classes then traverse_classes st;
  if opts.emit_types then traverse_types st;
  if opts.emit_macros then traverse_macros st;
  st.pdb
