(** Intra-routine define-use chains (reaching definitions).

    A structural dataflow pass over the routine body AST: no CFG is built.
    The abstract state maps each tracked variable (parameter or local
    declared in the body) to the set of definition sites that may reach the
    current program point, plus a flag recording whether some path reaches
    the point with no definition at all (the "possibly uninitialized"
    verdict the PDB stores on the use).

    Control flow is handled by interpretation: branches fork the state and
    join by union; loops iterate to a fixpoint (the state lattice is finite
    — definition sites are syntactic — so iteration terminates).  Uses are
    recorded into per-location accumulators that union across iterations,
    which makes re-walking a loop body idempotent.

    Only simple unqualified names are tracked.  Member accesses, globals
    and qualified names fall outside the intra-routine relation and are
    ignored, exactly like the address-taken escape hatch: [&x] counts as a
    use and conservatively also as a definition (the pointer may write
    back). *)

open Pdt_util
open Pdt_il
module Ast = Pdt_ast.Ast
module P = Pdt_pdb.Pdb

module Smap = Map.Make (String)
module Lset = Set.Make (struct
  type t = Srcloc.t

  let compare = Stdlib.compare
end)

(* per-variable reaching state: definition sites that may reach here, and
   whether an undefined path also reaches here *)
type vstate = { reach : Lset.t; maybe_undef : bool }

type use_acc = {
  ua_loc : Srcloc.t;
  mutable ua_reach : Lset.t;
  mutable ua_undef : bool;
}

type var_acc = {
  va_name : string;
  mutable va_defs : Srcloc.t list;  (* first-seen order, reversed *)
  mutable va_uses : use_acc list;   (* first-seen order, reversed *)
  mutable va_use_at : (Srcloc.t, use_acc) Hashtbl.t;
}

type ctx = {
  vars : (string, var_acc) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let var_acc ctx name =
  match Hashtbl.find_opt ctx.vars name with
  | Some va -> va
  | None ->
      let va =
        { va_name = name; va_defs = []; va_uses = []; va_use_at = Hashtbl.create 4 }
      in
      Hashtbl.replace ctx.vars name va;
      ctx.order <- name :: ctx.order;
      va

let note_def ctx name loc =
  let va = var_acc ctx name in
  if not (List.exists (fun l -> Stdlib.compare l loc = 0) va.va_defs) then
    va.va_defs <- loc :: va.va_defs

let note_use ctx name loc (st : vstate) =
  let va = var_acc ctx name in
  let ua =
    match Hashtbl.find_opt va.va_use_at loc with
    | Some ua -> ua
    | None ->
        let ua = { ua_loc = loc; ua_reach = Lset.empty; ua_undef = false } in
        Hashtbl.replace va.va_use_at loc ua;
        va.va_uses <- ua :: va.va_uses;
        ua
  in
  ua.ua_reach <- Lset.union ua.ua_reach st.reach;
  ua.ua_undef <- ua.ua_undef || st.maybe_undef

(* ------------------------------------------------------------------ *)
(* Abstract state                                                      *)
(* ------------------------------------------------------------------ *)

let merge_state (a : vstate Smap.t) (b : vstate Smap.t) : vstate Smap.t =
  Smap.union
    (fun _ x y ->
      Some
        { reach = Lset.union x.reach y.reach;
          maybe_undef = x.maybe_undef || y.maybe_undef })
    a b

let state_equal (a : vstate Smap.t) (b : vstate Smap.t) : bool =
  Smap.equal
    (fun x y -> Lset.equal x.reach y.reach && x.maybe_undef = y.maybe_undef)
    a b

let define env name loc = Smap.add name { reach = Lset.singleton loc; maybe_undef = false } env

let declare_undef env name = Smap.add name { reach = Lset.empty; maybe_undef = true } env

(* a use of [name] observes the current state; untracked names (not in the
   environment: globals, members, shadowing oddities) are ignored *)
let observe ctx env name loc =
  match Smap.find_opt name env with
  | Some st -> note_use ctx name loc st
  | None -> ()

let simple (q : Ast.qual_name) : string option =
  match q with
  | { Ast.global = false; parts = [ { Ast.id; targs = None } ] } -> Some id
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Walk                                                                *)
(* ------------------------------------------------------------------ *)

let rec walk_expr ctx env (e : Ast.expr) : vstate Smap.t =
  match e.Ast.e with
  | Ast.IntE _ | Ast.FloatE _ | Ast.CharE _ | Ast.StringE _ | Ast.BoolE _
  | Ast.ThisE | Ast.SizeofT _ ->
      env
  | Ast.IdE q ->
      (match simple q with Some n -> observe ctx env n e.Ast.eloc | None -> ());
      env
  | Ast.Assign (op, ({ Ast.e = Ast.IdE q; eloc = lloc } as _lhs), rhs) -> (
      match simple q with
      | Some n when Smap.mem n env ->
          let env = walk_expr ctx env rhs in
          (* compound assignment reads the target before writing it *)
          if not (String.equal op "=") then observe ctx env n lloc;
          note_def ctx n lloc;
          define env n lloc
      | _ ->
          let env = walk_expr ctx env rhs in
          env)
  | Ast.Assign (_, lhs, rhs) ->
      let env = walk_expr ctx env rhs in
      walk_expr ctx env lhs
  | Ast.Unary (("++" | "--"), { Ast.e = Ast.IdE q; eloc = lloc }) -> (
      match simple q with
      | Some n when Smap.mem n env ->
          observe ctx env n lloc;
          note_def ctx n lloc;
          define env n lloc
      | _ -> env)
  | Ast.Postfix (_, { Ast.e = Ast.IdE q; eloc = lloc }) -> (
      match simple q with
      | Some n when Smap.mem n env ->
          observe ctx env n lloc;
          note_def ctx n lloc;
          define env n lloc
      | _ -> env)
  | Ast.Unary ("&", ({ Ast.e = Ast.IdE q; eloc = lloc } as a)) -> (
      (* address-taken: a use, and conservatively a definition (the callee
         may write through the pointer) *)
      match simple q with
      | Some n when Smap.mem n env ->
          observe ctx env n lloc;
          note_def ctx n lloc;
          define env n lloc
      | _ -> walk_expr ctx env a)
  | Ast.Unary (_, a) | Ast.Postfix (_, a) -> walk_expr ctx env a
  | Ast.Binary (_, a, b) ->
      let env = walk_expr ctx env a in
      walk_expr ctx env b
  | Ast.Cond (c, a, b) ->
      let env = walk_expr ctx env c in
      let ea = walk_expr ctx env a in
      let eb = walk_expr ctx env b in
      merge_state ea eb
  | Ast.Call (f, args) ->
      let env = walk_expr ctx env f in
      List.fold_left (fun env a -> walk_expr ctx env a) env args
  | Ast.Member (o, _, _) -> walk_expr ctx env o
  | Ast.Index (a, i) ->
      let env = walk_expr ctx env a in
      walk_expr ctx env i
  | Ast.CCast (_, a) | Ast.NamedCast (_, _, a) | Ast.SizeofE a -> walk_expr ctx env a
  | Ast.Construct (_, args) ->
      List.fold_left (fun env a -> walk_expr ctx env a) env args
  | Ast.New (_, args, size) ->
      let env =
        match args with
        | Some args -> List.fold_left (fun env a -> walk_expr ctx env a) env args
        | None -> env
      in
      (match size with Some sz -> walk_expr ctx env sz | None -> env)
  | Ast.Delete (_, a) -> walk_expr ctx env a
  | Ast.ThrowE a -> ( match a with Some a -> walk_expr ctx env a | None -> env)
  | Ast.Comma (a, b) ->
      let env = walk_expr ctx env a in
      walk_expr ctx env b

and walk_stmt ctx env (s : Ast.stmt) : vstate Smap.t =
  match s.Ast.s with
  | Ast.SExpr None -> env
  | Ast.SExpr (Some e) -> walk_expr ctx env e
  | Ast.SDecl vds ->
      List.fold_left
        (fun env (vd : Ast.var_decl) ->
          match vd.Ast.v_init with
          | Ast.NoInit ->
              ignore (var_acc ctx vd.Ast.v_name);
              declare_undef env vd.Ast.v_name
          | Ast.EqInit e ->
              let env = walk_expr ctx env e in
              note_def ctx vd.Ast.v_name vd.Ast.v_loc;
              define env vd.Ast.v_name vd.Ast.v_loc
          | Ast.CtorInit args ->
              let env = List.fold_left (fun env a -> walk_expr ctx env a) env args in
              note_def ctx vd.Ast.v_name vd.Ast.v_loc;
              define env vd.Ast.v_name vd.Ast.v_loc)
        env vds
  | Ast.SCompound ss -> List.fold_left (fun env s -> walk_stmt ctx env s) env ss
  | Ast.SIf (c, a, b) ->
      let env = walk_expr ctx env c in
      let ea = walk_stmt ctx env a in
      let eb = match b with Some b -> walk_stmt ctx env b | None -> env in
      merge_state ea eb
  | Ast.SWhile (c, b) ->
      let head env = walk_expr ctx env c in
      fixpoint ctx (head env) (fun env -> head (walk_stmt ctx env b))
  | Ast.SDoWhile (b, c) ->
      let once env = walk_expr ctx (walk_stmt ctx env b) c in
      fixpoint ctx (once env) once
  | Ast.SFor (i, c, st, b) ->
      let env = match i with Some i -> walk_stmt ctx env i | None -> env in
      let head env =
        match c with Some c -> walk_expr ctx env c | None -> env
      in
      let iter env =
        let env = walk_stmt ctx env b in
        let env = match st with Some st -> walk_expr ctx env st | None -> env in
        head env
      in
      fixpoint ctx (head env) iter
  | Ast.SReturn e -> ( match e with Some e -> walk_expr ctx env e | None -> env)
  | Ast.SBreak | Ast.SContinue -> env
  | Ast.SSwitch (e, cases) ->
      let env = walk_expr ctx env e in
      List.fold_left
        (fun acc (c : Ast.switch_case) ->
          let env =
            match c.Ast.case_guard with
            | Some g -> walk_expr ctx env g
            | None -> env
          in
          let env =
            List.fold_left (fun env s -> walk_stmt ctx env s) env c.Ast.case_body
          in
          merge_state acc env)
        env cases
  | Ast.STry (b, hs) ->
      let eb = walk_stmt ctx env b in
      List.fold_left
        (fun acc (h : Ast.handler) -> merge_state acc (walk_stmt ctx eb h.Ast.h_body))
        eb hs
  | Ast.SSpawn e -> walk_expr ctx env e
  | Ast.SJoin _ -> env

(* iterate [step] from [env] until the state stops growing; the use
   accumulators union across iterations, so repeated walks are safe *)
and fixpoint _ctx (env : vstate Smap.t) (step : vstate Smap.t -> vstate Smap.t) :
    vstate Smap.t =
  let rec go env n =
    if n > 64 then env  (* belt and braces: the lattice is finite anyway *)
    else
      let env' = merge_state env (step env) in
      if state_equal env env' then env' else go env' (n + 1)
  in
  go env 0

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Compute the define-use chains for one routine, rendering source
    locations through [loc_of] (the analyzer's file-id mapping).  Routines
    without a body yield the empty relation. *)
let compute ~(loc_of : Srcloc.t -> P.loc) (r : Il.routine_entity) : P.du_var list =
  match r.Il.ro_body with
  | None -> []
  | Some body ->
      Fault.check "analyzer.du";
      let ctx = { vars = Hashtbl.create 16; order = [] } in
      (* parameters are definitions at their declaration site *)
      let env =
        List.fold_left
          (fun env (p : Il.param_info) ->
            match p.Il.pi_name with
            | Some n ->
                note_def ctx n p.Il.pi_loc;
                define env n p.Il.pi_loc
            | None -> env)
          Smap.empty r.Il.ro_params
      in
      ignore (walk_stmt ctx env body);
      List.rev_map
        (fun name ->
          let va = Hashtbl.find ctx.vars name in
          let defs = List.rev va.va_defs in
          let index_of loc =
            let rec go i = function
              | [] -> None
              | d :: rest -> if Stdlib.compare d loc = 0 then Some i else go (i + 1) rest
            in
            go 0 defs
          in
          { P.v_name = name;
            v_defs = List.map loc_of defs;
            v_uses =
              List.rev_map
                (fun ua ->
                  { P.u_loc = loc_of ua.ua_loc;
                    u_reach =
                      List.sort_uniq Stdlib.compare
                        (List.filter_map index_of (Lset.elements ua.ua_reach));
                    u_uninit = ua.ua_undef })
                va.va_uses })
        ctx.order
