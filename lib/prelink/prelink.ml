(** Simulation of EDG's {e automatic} template instantiation scheme
    (paper §2).

    Under the automatic scheme, compiling each source file produces an object
    file plus a template-information file of {e potential} instantiations.
    At link time the prelinker finds references to undefined template
    entities, assigns each instantiation to some translation unit's
    instantiation-request file, and re-compiles those files; newly
    instantiated code can itself require further instantiations, so the
    assign/recompile cycle repeats until closure.  Crucially, §2 notes that
    "this process does not record and instantiate templates in the IL, where
    information is accessible by an analysis tool" — which is why PDT uses
    the "used" mode instead.

    This module replays that fixed point over the instantiation dependency
    graph of a fully-analyzed (used-mode) IL program: round 0 contains the
    instantiations referenced directly from non-template code; each
    subsequent round contains the instantiations newly referenced by the
    previous round's code.  The number of rounds is the number of prelinker
    passes; the per-round request counts and recompile totals quantify the
    §2 comparison (bench B1). *)

open Pdt_il

(** One instantiated entity (node of the dependency graph). *)
type node = Nclass of Il.class_id | Nroutine of Il.routine_id

type report = {
  rounds : int;                   (** prelinker assign/recompile passes *)
  recompiles : int;               (** total recompilations performed *)
  requests_per_round : int list;  (** newly assigned instantiations, per round *)
  total_instantiations : int;
  used_mode_il_entities : int;
      (** instantiated entities visible in the IL under "used" mode *)
  automatic_mode_il_entities : int;
      (** instantiated entities visible in the IL under the automatic scheme:
          none (they live in object files only) *)
  max_dependency_depth : int;
}

let is_instantiated_class (c : Il.class_entity) =
  c.cl_template <> None || c.cl_spec_of <> None

let is_instantiated_routine (p : Il.program) (r : Il.routine_entity) =
  r.ro_template <> None
  ||
  match r.ro_parent with
  | Pclass cl -> is_instantiated_class (Il.class_ p cl)
  | _ -> false

(* the instantiation node owning a routine, if any *)
let owner_node (p : Il.program) (r : Il.routine_entity) : node option =
  match r.ro_parent with
  | Pclass cl when is_instantiated_class (Il.class_ p cl) -> Some (Nclass cl)
  | _ -> if r.ro_template <> None then Some (Nroutine r.ro_id) else None

(* instantiations referenced from a routine's call edges *)
let refs_of_routine (p : Il.program) (r : Il.routine_entity) : node list =
  List.filter_map
    (fun (cs : Il.call_site) ->
      let callee = Il.routine p cs.cs_callee in
      owner_node p callee)
    (Il.calls r)

(* instantiations referenced by a class's data members (member of type
   vector<int> requires vector<int>) *)
let refs_of_class (p : Il.program) (c : Il.class_entity) : node list =
  List.filter_map
    (fun (m : Il.data_member) ->
      match Il.class_of_type p m.dm_type with
      | Some cl when is_instantiated_class (Il.class_ p cl) -> Some (Nclass cl)
      | _ -> None)
    c.cl_members

(* everything a node's code requires *)
let deps (p : Il.program) (n : node) : node list =
  let of_routines rs = List.concat_map (refs_of_routine p) rs in
  match n with
  | Nclass cl ->
      let c = Il.class_ p cl in
      refs_of_class p c
      @ of_routines (List.map (Il.routine p) c.cl_funcs)
  | Nroutine ro -> refs_of_routine p (Il.routine p ro)

let node_equal a b =
  match (a, b) with
  | Nclass x, Nclass y -> x = y
  | Nroutine x, Nroutine y -> x = y
  | _ -> false

let node_name (p : Il.program) = function
  | Nclass cl -> (Il.class_ p cl).cl_name
  | Nroutine ro -> Il.routine_full_name p (Il.routine p ro)

(** Run the prelinker fixed point over [prog] (which must have been analyzed
    in used mode, so the full dependency graph is present).
    [translation_units] is the number of TUs the program is notionally split
    into (each round recompiles every TU that received a request; with one
    TU each round is one recompile). *)
let simulate ?(translation_units = 1) (prog : Il.program) : report =
  (* round 0 seeds: instantiations referenced from non-instantiated code *)
  let seeds =
    List.concat_map
      (fun (r : Il.routine_entity) ->
        if is_instantiated_routine prog r then [] else refs_of_routine prog r)
      (Il.routines prog)
  in
  let dedup nodes =
    List.fold_left
      (fun acc n -> if List.exists (node_equal n) acc then acc else n :: acc)
      [] nodes
    |> List.rev
  in
  let seeds = dedup seeds in
  let done_ = ref [] in
  let rounds = ref 0 in
  let recompiles = ref 0 in
  let per_round = ref [] in
  let frontier = ref seeds in
  while !frontier <> [] do
    incr rounds;
    per_round := List.length !frontier :: !per_round;
    (* each round recompiles the TUs that received requests *)
    recompiles := !recompiles + min translation_units (List.length !frontier);
    done_ := !done_ @ !frontier;
    let next =
      dedup (List.concat_map (deps prog) !frontier)
      |> List.filter (fun n -> not (List.exists (node_equal n) !done_))
    in
    frontier := next
  done;
  let used_entities =
    List.length (List.filter is_instantiated_class (Il.classes prog))
    + List.length (List.filter (fun r -> r.Il.ro_template <> None) (Il.routines prog))
  in
  (* dependency depth: longest chain among the rounds *)
  {
    rounds = !rounds;
    recompiles = !recompiles;
    requests_per_round = List.rev !per_round;
    total_instantiations = List.length !done_;
    used_mode_il_entities = used_entities;
    automatic_mode_il_entities = 0;
    max_dependency_depth = !rounds;
  }

let report_to_string (r : report) : string =
  Printf.sprintf
    "prelink simulation: %d round(s), %d recompile(s), %d instantiation(s) \
     [per round: %s]\n\
     IL entities visible to analysis tools: used mode = %d, automatic mode = %d"
    r.rounds r.recompiles r.total_instantiations
    (String.concat ", " (List.map string_of_int r.requests_per_round))
    r.used_mode_il_entities r.automatic_mode_il_entities
